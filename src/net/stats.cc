#include "src/net/stats.h"

#include "src/base/codec_util.h"
#include "src/base/string_util.h"
#include "src/base/varint.h"
#include "src/obs/json.h"

namespace cmif {
namespace net {
namespace {

// Bounds a corrupted count can't push the decoder past.
constexpr std::uint64_t kMaxExemplars = 64;
constexpr std::uint64_t kMaxBreakers = 1024;

}  // namespace

std::string EncodeStatsSnapshot(const StatsSnapshot& snapshot, std::uint8_t version) {
  std::string out;
  PutVarint64(out, snapshot.uptime_us);
  PutVarint64(out, snapshot.connections);
  PutVarint64(out, snapshot.rejected);
  PutVarint64(out, snapshot.requests);
  PutVarint64(out, snapshot.protocol_errors);
  PutVarint64(out, snapshot.failed);
  PutVarint64(out, snapshot.degraded);
  PutVarint64(out, snapshot.queue_depth);
  PutVarint64(out, snapshot.request_count);
  PutF64(out, snapshot.request_ms_min);
  PutF64(out, snapshot.request_ms_max);
  PutF64(out, snapshot.request_ms_mean);
  PutF64(out, snapshot.request_ms_p50);
  PutF64(out, snapshot.request_ms_p95);
  PutF64(out, snapshot.request_ms_p99);
  PutVarint64(out, snapshot.exemplar_trace_ids.size());
  for (std::uint64_t id : snapshot.exemplar_trace_ids) {
    PutVarint64(out, id);
  }
  PutVarint64(out, snapshot.cache_hits);
  PutVarint64(out, snapshot.cache_misses);
  PutVarint64(out, snapshot.cache_stale_hits);
  PutVarint64(out, snapshot.cache_evictions);
  PutVarint64(out, snapshot.cache_entries);
  PutVarint64(out, snapshot.pcache_enabled ? 1 : 0);
  PutVarint64(out, snapshot.pcache_hits);
  PutVarint64(out, snapshot.pcache_misses);
  PutVarint64(out, snapshot.pcache_writes);
  PutVarint64(out, snapshot.pcache_quarantined);
  PutVarint64(out, snapshot.pcache_entries);
  PutVarint64(out, snapshot.pcache_disk_bytes);
  PutVarint64(out, snapshot.breakers.size());
  for (const auto& [site, state] : snapshot.breakers) {
    PutString(out, site);
    PutVarint64(out, state);
  }
  PutVarint64(out, snapshot.breaker_opens);
  PutVarint64(out, snapshot.anomalies);
  PutVarint64(out, snapshot.traces_sampled);
  PutF64(out, snapshot.sample_rate);
  if (version >= 4) {
    PutVarint64(out, snapshot.streams);
    PutVarint64(out, snapshot.stream_chunks);
    PutVarint64(out, snapshot.stream_bytes);
    PutVarint64(out, snapshot.stream_full_bytes);
    PutVarint64(out, snapshot.stream_resumes);
    PutVarint64(out, snapshot.stream_stalls);
  }
  return out;
}

StatusOr<StatsSnapshot> DecodeStatsSnapshot(std::string_view payload, std::uint8_t version) {
  StatsSnapshot s;
  std::size_t pos = 0;
  CMIF_ASSIGN_OR_RETURN(s.uptime_us, GetVarint64(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(s.connections, GetVarint64(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(s.rejected, GetVarint64(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(s.requests, GetVarint64(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(s.protocol_errors, GetVarint64(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(s.failed, GetVarint64(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(s.degraded, GetVarint64(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(s.queue_depth, GetVarint64(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(s.request_count, GetVarint64(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(s.request_ms_min, GetF64(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(s.request_ms_max, GetF64(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(s.request_ms_mean, GetF64(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(s.request_ms_p50, GetF64(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(s.request_ms_p95, GetF64(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(s.request_ms_p99, GetF64(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(std::uint64_t exemplars, GetVarint64(payload, &pos));
  if (exemplars > kMaxExemplars) {
    return DataLossError(StrFormat("exemplar count %llu exceeds the cap",
                                   static_cast<unsigned long long>(exemplars)));
  }
  s.exemplar_trace_ids.reserve(exemplars);
  for (std::uint64_t i = 0; i < exemplars; ++i) {
    CMIF_ASSIGN_OR_RETURN(std::uint64_t id, GetVarint64(payload, &pos));
    if (id == 0) {
      return DataLossError("zero exemplar trace id");
    }
    s.exemplar_trace_ids.push_back(id);
  }
  CMIF_ASSIGN_OR_RETURN(s.cache_hits, GetVarint64(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(s.cache_misses, GetVarint64(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(s.cache_stale_hits, GetVarint64(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(s.cache_evictions, GetVarint64(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(s.cache_entries, GetVarint64(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(std::uint64_t pcache_enabled, GetVarint64(payload, &pos));
  if (pcache_enabled > 1) {
    return DataLossError(StrFormat("pcache_enabled flag %llu is not a bool",
                                   static_cast<unsigned long long>(pcache_enabled)));
  }
  s.pcache_enabled = pcache_enabled == 1;
  CMIF_ASSIGN_OR_RETURN(s.pcache_hits, GetVarint64(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(s.pcache_misses, GetVarint64(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(s.pcache_writes, GetVarint64(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(s.pcache_quarantined, GetVarint64(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(s.pcache_entries, GetVarint64(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(s.pcache_disk_bytes, GetVarint64(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(std::uint64_t breakers, GetVarint64(payload, &pos));
  if (breakers > kMaxBreakers || breakers > payload.size()) {
    return DataLossError(StrFormat("breaker count %llu exceeds bounds",
                                   static_cast<unsigned long long>(breakers)));
  }
  s.breakers.reserve(breakers);
  for (std::uint64_t i = 0; i < breakers; ++i) {
    CMIF_ASSIGN_OR_RETURN(std::string site, GetString(payload, &pos));
    CMIF_ASSIGN_OR_RETURN(std::uint64_t state, GetVarint64(payload, &pos));
    if (state > 2) {  // fault::BreakerState has exactly closed/open/half-open
      return DataLossError(StrFormat("unknown breaker state %llu at offset %zu",
                                     static_cast<unsigned long long>(state), pos));
    }
    s.breakers.emplace_back(std::move(site), static_cast<std::uint8_t>(state));
  }
  CMIF_ASSIGN_OR_RETURN(s.breaker_opens, GetVarint64(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(s.anomalies, GetVarint64(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(s.traces_sampled, GetVarint64(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(s.sample_rate, GetF64(payload, &pos));
  if (s.sample_rate < 0 || s.sample_rate > 1) {
    return DataLossError(StrFormat("sample rate %g outside [0, 1]", s.sample_rate));
  }
  if (version >= 4) {
    CMIF_ASSIGN_OR_RETURN(s.streams, GetVarint64(payload, &pos));
    CMIF_ASSIGN_OR_RETURN(s.stream_chunks, GetVarint64(payload, &pos));
    CMIF_ASSIGN_OR_RETURN(s.stream_bytes, GetVarint64(payload, &pos));
    CMIF_ASSIGN_OR_RETURN(s.stream_full_bytes, GetVarint64(payload, &pos));
    CMIF_ASSIGN_OR_RETURN(s.stream_resumes, GetVarint64(payload, &pos));
    CMIF_ASSIGN_OR_RETURN(s.stream_stalls, GetVarint64(payload, &pos));
  }
  if (pos != payload.size()) {
    return DataLossError(StrFormat("%zu trailing bytes after stats snapshot at offset %zu",
                                   payload.size() - pos, pos));
  }
  return s;
}

std::string StatsSnapshotJson(const StatsSnapshot& s) {
  std::string out = "{\n";
  auto field = [&out](std::string_view key, std::string value, bool last = false) {
    out += "  ";
    out += obs::JsonQuote(key);
    out += ": ";
    out += value;
    out += last ? "\n" : ",\n";
  };
  field("uptime_s", obs::JsonNumber(static_cast<double>(s.uptime_us) / 1e6));
  field("connections", obs::JsonNumber(static_cast<std::int64_t>(s.connections)));
  field("rejected", obs::JsonNumber(static_cast<std::int64_t>(s.rejected)));
  field("requests", obs::JsonNumber(static_cast<std::int64_t>(s.requests)));
  field("protocol_errors", obs::JsonNumber(static_cast<std::int64_t>(s.protocol_errors)));
  field("failed", obs::JsonNumber(static_cast<std::int64_t>(s.failed)));
  field("degraded", obs::JsonNumber(static_cast<std::int64_t>(s.degraded)));
  field("queue_depth", obs::JsonNumber(static_cast<std::int64_t>(s.queue_depth)));
  double uptime_s = static_cast<double>(s.uptime_us) / 1e6;
  field("request_rate_rps",
        obs::JsonNumber(uptime_s > 0 ? static_cast<double>(s.requests) / uptime_s : 0.0));
  std::string request_ms = "{";
  request_ms += "\"count\": " + obs::JsonNumber(static_cast<std::int64_t>(s.request_count));
  request_ms += ", \"min\": " + obs::JsonNumber(s.request_ms_min);
  request_ms += ", \"max\": " + obs::JsonNumber(s.request_ms_max);
  request_ms += ", \"mean\": " + obs::JsonNumber(s.request_ms_mean);
  request_ms += ", \"p50\": " + obs::JsonNumber(s.request_ms_p50);
  request_ms += ", \"p95\": " + obs::JsonNumber(s.request_ms_p95);
  request_ms += ", \"p99\": " + obs::JsonNumber(s.request_ms_p99);
  request_ms += "}";
  field("request_ms", std::move(request_ms));
  std::string exemplars = "[";
  for (std::size_t i = 0; i < s.exemplar_trace_ids.size(); ++i) {
    if (i > 0) exemplars += ", ";
    exemplars += StrFormat("\"%016llx\"",
                           static_cast<unsigned long long>(s.exemplar_trace_ids[i]));
  }
  exemplars += "]";
  field("exemplar_trace_ids", std::move(exemplars));
  std::string cache = "{";
  cache += "\"hits\": " + obs::JsonNumber(static_cast<std::int64_t>(s.cache_hits));
  cache += ", \"misses\": " + obs::JsonNumber(static_cast<std::int64_t>(s.cache_misses));
  cache += ", \"stale_hits\": " + obs::JsonNumber(static_cast<std::int64_t>(s.cache_stale_hits));
  cache += ", \"evictions\": " + obs::JsonNumber(static_cast<std::int64_t>(s.cache_evictions));
  cache += ", \"entries\": " + obs::JsonNumber(static_cast<std::int64_t>(s.cache_entries));
  double lookups = static_cast<double>(s.cache_hits + s.cache_misses);
  cache += ", \"hit_rate\": " +
           obs::JsonNumber(lookups > 0 ? static_cast<double>(s.cache_hits) / lookups : 0.0);
  cache += "}";
  field("mapping_cache", std::move(cache));
  if (s.pcache_enabled) {
    std::string pcache = "{";
    pcache += "\"hits\": " + obs::JsonNumber(static_cast<std::int64_t>(s.pcache_hits));
    pcache += ", \"misses\": " + obs::JsonNumber(static_cast<std::int64_t>(s.pcache_misses));
    pcache += ", \"writes\": " + obs::JsonNumber(static_cast<std::int64_t>(s.pcache_writes));
    pcache +=
        ", \"quarantined\": " + obs::JsonNumber(static_cast<std::int64_t>(s.pcache_quarantined));
    pcache += ", \"entries\": " + obs::JsonNumber(static_cast<std::int64_t>(s.pcache_entries));
    pcache += ", \"disk_bytes\": " + obs::JsonNumber(static_cast<std::int64_t>(s.pcache_disk_bytes));
    pcache += "}";
    field("persistent_cache", std::move(pcache));
  } else {
    field("persistent_cache", "null");
  }
  std::string breakers = "{";
  for (std::size_t i = 0; i < s.breakers.size(); ++i) {
    if (i > 0) breakers += ", ";
    breakers += obs::JsonQuote(s.breakers[i].first);
    breakers += ": ";
    switch (s.breakers[i].second) {
      case 1:
        breakers += "\"open\"";
        break;
      case 2:
        breakers += "\"half-open\"";
        break;
      default:
        breakers += "\"closed\"";
        break;
    }
  }
  breakers += "}";
  field("breakers", std::move(breakers));
  std::string streaming = "{";
  streaming += "\"streams\": " + obs::JsonNumber(static_cast<std::int64_t>(s.streams));
  streaming += ", \"chunks\": " + obs::JsonNumber(static_cast<std::int64_t>(s.stream_chunks));
  streaming += ", \"bytes\": " + obs::JsonNumber(static_cast<std::int64_t>(s.stream_bytes));
  streaming +=
      ", \"full_bytes\": " + obs::JsonNumber(static_cast<std::int64_t>(s.stream_full_bytes));
  streaming += ", \"resumes\": " + obs::JsonNumber(static_cast<std::int64_t>(s.stream_resumes));
  streaming += ", \"stalls\": " + obs::JsonNumber(static_cast<std::int64_t>(s.stream_stalls));
  streaming += "}";
  field("streaming", std::move(streaming));
  field("breaker_opens", obs::JsonNumber(static_cast<std::int64_t>(s.breaker_opens)));
  field("anomalies", obs::JsonNumber(static_cast<std::int64_t>(s.anomalies)));
  field("traces_sampled", obs::JsonNumber(static_cast<std::int64_t>(s.traces_sampled)));
  field("trace_sample_rate", obs::JsonNumber(s.sample_rate), /*last=*/true);
  out += "}\n";
  return out;
}

}  // namespace net
}  // namespace cmif
