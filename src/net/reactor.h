// The epoll event loop under the NetServer: one reactor thread owns every
// connection's state machine (accept → read bytes → assemble frames →
// hand off → buffer response bytes → flush), so ThreadPool workers never
// block on sockets and thousands of idle connections cost one fd each, not
// one thread each.
//
// Threading contract: the reactor thread is the only one that touches
// sockets, buffers, and epoll. All handlers (on_frame / on_eof / on_desync /
// on_close) run on the reactor thread and must not block — a compile takes
// milliseconds, so the server's on_frame only decodes and enqueues into the
// RequestScheduler. Cross-thread calls (SendFrame / CloseConnection from
// workers, Stop from anywhere) post to a mailbox and wake the loop through a
// self-pipe; called *from* a handler they apply immediately, preserving
// same-thread ordering. The mailbox is FIFO: frames reach the socket in the
// order SendFrame was called, so a caller that needs responses in request
// order (the server's per-connection sequencer) must serialize its SendFrame
// calls — the server holds its sequencer lock across the hand-off.
//
// Defenses owned here: a connection cap (excess accepts get a kError frame
// and an immediate close), the "net.accept" fault site (flaky front end
// drops the handshake), the partial-frame timeout (a slow-loris peer that
// trickles a frame for longer than partial_frame_timeout_ms is dropped —
// idle connections *between* frames are legitimate and live forever), and
// the "net.partial_write" fault site (a flush attempt transiently moves one
// byte, exercising short-write resumption).
#ifndef SRC_NET_REACTOR_H_
#define SRC_NET_REACTOR_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/base/mutex.h"
#include "src/base/socket.h"
#include "src/base/status.h"
#include "src/net/wire.h"

namespace cmif {
namespace net {

struct ReactorOptions {
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = ephemeral; Reactor::port() after Start()
  int accept_backlog = 64;
  // Open-connection cap; one more gets a kError(kResourceExhausted) frame.
  std::size_t max_connections = 1024;
  // Age limit for a partially received frame (slow-loris defense); 0 = off.
  std::int64_t partial_frame_timeout_ms = 10000;
  WireLimits limits;
};

class Reactor {
 public:
  // A complete frame arrived. Runs on the reactor thread; must not block.
  using FrameHandler = std::function<void(std::uint64_t conn_id, Frame frame)>;
  // The peer half-closed its read side cleanly. The connection stays open
  // for writes (pipelined responses may still be in flight); the server
  // calls CloseConnection once its last response for this conn is posted.
  using EofHandler = std::function<void(std::uint64_t conn_id)>;
  // The inbound stream desynchronized (kDataLoss). The connection can still
  // write — the conventional reply is a kError frame then CloseConnection.
  using DesyncHandler = std::function<void(std::uint64_t conn_id, const Status& error)>;
  // The connection is gone (exactly once per accepted connection).
  using CloseHandler = std::function<void(std::uint64_t conn_id, const Status& reason)>;

  Reactor(ReactorOptions options, FrameHandler on_frame, EofHandler on_eof,
          DesyncHandler on_desync, CloseHandler on_close);
  ~Reactor();
  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  // Binds + listens, then spawns the reactor thread.
  Status Start();

  // Closes the listener; existing connections keep being served. Safe from
  // any thread; idempotent.
  void StopAccepting();

  // Stops the loop: closes the listener, stops reading, flushes buffered
  // responses for up to drain_timeout_ms, closes every connection (on_close
  // fires for each), and joins the thread. Idempotent.
  void Stop(std::int64_t drain_timeout_ms = 2000);

  int port() const { return listener_.port(); }

  // Queues one frame on a connection (any thread). close_after closes the
  // connection once the frame (and everything queued before it) is flushed.
  // kNotFound when the connection is already gone — a response racing a
  // disconnect, not an error worth propagating to anyone.
  Status SendFrame(std::uint64_t conn_id, FrameType type, std::string_view payload,
                   std::uint8_t version = kWireVersion, bool close_after = false);

  // Closes a connection after flushing anything already queued (any thread).
  void CloseConnection(std::uint64_t conn_id);

  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t rejected_capacity = 0;  // over max_connections
    std::uint64_t accept_faults = 0;      // net.accept injections
    std::uint64_t desyncs = 0;
    std::uint64_t slow_loris_drops = 0;   // partial-frame timeouts
    std::size_t open = 0;
  };
  Stats stats() const CMIF_EXCLUDES(mu_);

 private:
  struct Conn {
    std::uint64_t id = 0;
    Socket socket;
    FrameAssembler assembler;
    std::string out;            // buffered response bytes
    std::size_t out_pos = 0;    // flushed prefix of `out`
    std::uint32_t events = 0;   // current epoll interest mask
    bool close_after_flush = false;
    bool read_eof = false;      // peer half-closed; stop reading
    bool desynced = false;      // stop reading; conn dies after error flush
    // Destruction is deferred to the end of the loop iteration so handler
    // callbacks never see a freed Conn; MarkDead flips this.
    bool is_dead = false;
    Status death_reason;
    std::int64_t partial_since_us = 0;  // first byte of an incomplete frame
    explicit Conn(Socket s) : socket(std::move(s)) {}
    bool dead() const { return is_dead; }
  };

  struct Op {
    enum class Kind { kSend, kClose, kStopAccepting, kStop } kind = Kind::kClose;
    std::uint64_t conn_id = 0;
    std::string bytes;          // pre-encoded frame (kSend)
    bool close_after = false;
    std::int64_t drain_timeout_ms = 0;  // kStop
  };

  void Run();
  void HandleAccept();
  void HandleReadable(Conn& conn);
  void HandleWritable(Conn& conn);
  void FlushOut(Conn& conn);
  void UpdateInterest(Conn& conn);
  void MarkDead(Conn& conn, Status reason);
  void DestroyConn(std::uint64_t conn_id, const Status& reason);
  void ApplyOp(Op op);
  void PostOp(Op op) CMIF_EXCLUDES(mu_);
  bool OnReactorThread() const;
  void SweepPartialFrames(std::int64_t now_us);
  Status SendFrameLocked(std::uint64_t conn_id, std::string encoded, bool close_after);

  const ReactorOptions options_;
  const FrameHandler on_frame_;
  const EofHandler on_eof_;
  const DesyncHandler on_desync_;
  const CloseHandler on_close_;

  ListenSocket listener_;
  int epoll_fd_ = -1;
  int wake_read_fd_ = -1;
  std::thread thread_;
  // Atomics so SendFrame/CloseConnection stay safe from any thread even when
  // racing Stop(): started_ gates re-entry into Stop, reactor_tid_ identifies
  // the loop thread without touching thread_ (which Stop concurrently joins).
  // Set at the top of Run(), cleared after the join — a default-constructed
  // id never matches a live thread.
  std::atomic<bool> started_{false};
  std::atomic<std::thread::id> reactor_tid_{};

  // Reactor-thread-only state (no lock: single owner).
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  std::uint64_t next_conn_id_ = 1;
  bool accepting_ = true;
  bool stopping_ = false;
  std::int64_t drain_deadline_us_ = 0;

  mutable Mutex mu_;
  std::vector<Op> mailbox_ CMIF_GUARDED_BY(mu_);
  // The self-pipe write end is guarded so PostOp's wake can never race the
  // close in Stop() (worst case a write to a recycled fd); Stop joins the
  // loop thread before closing it under the lock.
  int wake_write_fd_ CMIF_GUARDED_BY(mu_) = -1;
  Stats stats_ CMIF_GUARDED_BY(mu_);
};

}  // namespace net
}  // namespace cmif

#endif  // SRC_NET_REACTOR_H_
