// The CMIF presentation client: one persistent connection to a NetServer
// with transport-level recovery. Requests are read-only compiles, hence
// idempotent, so the client may retry a whole round trip after any transport
// failure: it reconnects and resends under the serve layer's RetryPolicy.
// A kDataLoss from the wire (corrupt frame in either direction) also drops
// the connection and retries — the stream is desynchronized, but a fresh
// connection starts clean — which is how a chaos replay over the socket
// still answers 100% of requests.
#ifndef SRC_NET_CLIENT_H_
#define SRC_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/socket.h"
#include "src/base/status.h"
#include "src/fault/retry.h"
#include "src/net/protocol.h"
#include "src/net/stats.h"
#include "src/net/stream.h"
#include "src/net/wire.h"

namespace cmif {
namespace net {

struct NetClientOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  // Socket read/write deadline per call; 0 = none.
  int io_timeout_ms = 10000;
  // Transport retry ladder (reconnect + resend). max_attempts = 1 disables
  // retries entirely.
  fault::RetryPolicy retry;
  WireLimits limits;
  // The frame version this client speaks (the server mirrors it per frame).
  // Set to kMinWireVersion (2) to act as a legacy client: deadline_ms is
  // then dropped from requests and batch calls are refused locally. Values
  // outside [kMinWireVersion, kWireVersion] are clamped at construction.
  std::uint8_t wire_version = kWireVersion;
};

// What PresentStream delivered. `streamed` distinguishes the chunked path
// from the blob fallback (a v<4 peer, or a server that answered a plain
// response); either way `response` carries the presentation and `blocks`
// the delivered payloads in delivery order (empty on the v<4 fallback,
// where blocks never travel).
struct StreamResult {
  PresentResponse response;
  std::vector<WireBlock> blocks;
  bool streamed = false;
  // Identity of the delivered stream (0 on the blob fallback); pass it to
  // ReportStreamStalls once playback has measured its stalls.
  std::uint64_t stream_id = 0;
  std::uint64_t chunks_received = 0;
  std::uint64_t bytes_streamed = 0;
  // Mid-stream reconnects that resumed at a chunk boundary.
  std::uint64_t resumes = 0;
  // Integrity restarts: the end-to-end payload hash failed, so the stream
  // was refetched from chunk 0 (a resume would replay the corrupt bytes).
  std::uint64_t restarts = 0;
};

// Not thread-safe: one client per thread (connections are cheap; the server
// handles each one sequentially anyway).
class NetClient {
 public:
  explicit NetClient(NetClientOptions options);

  // One request round trip, with transport retries. A successfully
  // transported answer is returned whole — including kFailed outcomes, whose
  // error sits inside the response — while transport and protocol failures
  // (connect refused, desync, overload rejection) are the StatusOr error.
  //
  // When `request.trace` is valid it is installed for the call's duration,
  // the round trip records a "net-client-request" span, and the wire copy's
  // parent_span_id is that span's id — so a sampled server hands back spans
  // that nest under the client's own timeline.
  StatusOr<PresentResponse> Present(const PresentRequest& request);

  // Streamed delivery (wire v4+): a kStreamRequest answered by
  // kStreamBegin + kStreamChunk* + kStreamEnd, reassembled and
  // integrity-checked. Falls back to a plain Present() — silently — when
  // this client speaks v<4, or when the server answers a kResponse or
  // kError instead of a stream (an older server rejects the v4 frame at
  // the header; requests are idempotent, so re-asking plainly is safe).
  // Transport failures mid-stream reconnect and *resume* at the last
  // contiguous chunk boundary; an end-to-end hash mismatch restarts from
  // chunk 0. Both consume the retry budget (options.retry.max_attempts).
  StatusOr<StreamResult> PresentStream(const PresentRequest& request,
                                       std::uint64_t chunk_bytes = kDefaultChunkBytes);

  // Reports playback stalls attributed to a delivered stream (the
  // StreamResult's stream_id) as a one-way kStreamAck, feeding the server's
  // stream_stalls counter. PresentStream's own completion ack carries the
  // chunk count but zero stalls — stalls only exist once a player has run
  // against the delivered blocks, so the caller sends them afterwards.
  // Best-effort telemetry: a failure harms nothing and is safe to ignore.
  Status ReportStreamStalls(std::uint64_t stream_id, std::uint64_t stalls);

  // Many requests in one kBatchRequest frame (wire v3+; kInvalidArgument
  // when this client is configured for v2 or the batch exceeds
  // kMaxBatchMessages). Responses answer positionally; shed/degraded
  // outcomes sit inside their PresentResponse like in Present().
  StatusOr<std::vector<PresentResponse>> PresentBatch(
      const std::vector<PresentRequest>& requests);

  // Liveness probe: a kPing frame echoed back as kPong.
  Status Ping();

  // Fetches the server's live telemetry (a kStatsRequest round trip).
  StatusOr<StatsSnapshot> FetchStats();

  // Drops the connection; the next call reconnects.
  void Disconnect();
  bool connected() const { return socket_.valid(); }

  // Reconnections performed after the initial connect (a transport-recovery
  // count for tests and the chaos bench).
  std::uint64_t reconnects() const { return reconnects_; }

  // The (clamped) wire version this client sends.
  std::uint8_t wire_version() const { return options_.wire_version; }

 private:
  Status EnsureConnected();
  // Sends one frame and reads the answer on the current connection. Any
  // failure (including kDataLoss desync) disconnects and maps to
  // kUnavailable so the retry wrapper re-runs it.
  StatusOr<Frame> RoundTripOnce(FrameType type, const std::string& payload);
  StatusOr<Frame> RoundTrip(FrameType type, const std::string& payload);
  // Expects kResponse and decodes its PresentResponse (disconnecting on a
  // malformed one).
  StatusOr<PresentResponse> DecodePresentFrame(Frame frame);

  NetClientOptions options_;
  Socket socket_;
  bool ever_connected_ = false;
  std::uint64_t reconnects_ = 0;
};

}  // namespace net
}  // namespace cmif

#endif  // SRC_NET_CLIENT_H_
