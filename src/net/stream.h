// Streamed block delivery (wire v4). A presentation today ships as one
// canonical blob with every block resolved up front; the paper's central
// claim — a solved temporal structure makes documents *transportable* —
// means the schedule itself tells the transport when each block is needed.
// The stream frames exploit that:
//
//   client                                server
//     kStreamRequest  ───────────────▶      solve / fetch from cache
//     ◀─────────────── kStreamBegin         schedule prefix + chunk manifest
//     ◀─────────────── kStreamChunk 0..n-1  block bytes in prefetch order
//     ◀─────────────── kStreamEnd           total count + payload hash
//     kStreamAck      ───────────────▶      delivery telemetry
//
// The payload is one logical byte string — every manifest block's canonical
// encoding concatenated in delivery order — carved into fixed-size chunks.
// Chunk boundaries therefore double as resume points: after a mid-stream
// disconnect the client re-sends kStreamRequest naming the stream id and
// its contiguous chunk count, and the server resumes from that boundary.
// All codecs follow the protocol.h discipline: truncated, malformed, or
// implausible payloads are structured kDataLoss with byte offsets, never a
// crash or unbounded allocation.
#ifndef SRC_NET_STREAM_H_
#define SRC_NET_STREAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/media_time.h"
#include "src/base/status.h"
#include "src/net/protocol.h"
#include "src/net/wire.h"

namespace cmif {
namespace net {

// Default chunk payload size. Small enough that a constrained link delivers
// the first chunk quickly, large enough that framing overhead stays noise.
inline constexpr std::uint64_t kDefaultChunkBytes = 64u << 10;
// Bounds a peer will accept for a declared chunk size; outside = kDataLoss.
inline constexpr std::uint64_t kMinChunkBytes = 256;
inline constexpr std::uint64_t kMaxChunkBytes = 4u << 20;
// Manifest entries per stream (mirrors kMaxWireBlocks).
inline constexpr std::uint64_t kMaxStreamBlocks = 4096;

// Opens a stream (or resumes one): the inner PresentRequest is served
// exactly as a kRequest would be; the stream fields govern delivery only.
struct StreamRequest {
  PresentRequest request;
  // Desired chunk payload size; the server clamps into
  // [kMinChunkBytes, kMaxChunkBytes].
  std::uint64_t chunk_bytes = kDefaultChunkBytes;
  // Resume: the stream id a previous kStreamBegin announced and how many
  // contiguous chunks (from 0) the client already holds. 0/0 = fresh
  // stream. A stale id (the document changed) restarts from chunk 0.
  std::uint64_t resume_stream_id = 0;
  std::uint64_t resume_chunks = 0;
};

// One manifest entry: a block the schedule references, in delivery order.
struct StreamBlockInfo {
  std::string descriptor_id;
  // Size of the block's canonical payload encoding
  // (src/media/block_codec.h EncodeBlockPayload).
  std::uint64_t bytes = 0;
  // Earliest schedule time any event needs this block.
  MediaTime first_need;
};

// The stream's first frame: everything the client needs to start playback
// (the solved presentation) plus the delivery plan for the block bytes.
struct StreamBegin {
  // Identifies the stream for chunks/acks/resume. Deterministic for a given
  // compiled presentation + chunk size (DeriveStreamId), so a resumed
  // request reaches the same byte stream or cleanly restarts.
  std::uint64_t stream_id = 0;
  // The ordinary response (presentation body, hash, outcome, spans) — the
  // playable prefix. Never carries inline blocks; those follow as chunks.
  PresentResponse prefix;
  // Blocks in delivery (prefetch) order; concatenating their canonical
  // payloads in this order yields the stream's logical byte string.
  std::vector<StreamBlockInfo> manifest;
  // Actual chunk size (the server's clamp of the requested one).
  std::uint64_t chunk_bytes = kDefaultChunkBytes;
  // ceil(total payload bytes / chunk_bytes); must agree with the manifest.
  std::uint64_t total_chunks = 0;
  // Fnv1a64 over the logical byte string — end-to-end integrity.
  std::uint64_t payload_hash = 0;
  // First chunk index this response will send (0 for a fresh stream, the
  // validated resume boundary otherwise).
  std::uint64_t resumed_from = 0;
};

struct StreamChunk {
  std::uint64_t stream_id = 0;
  std::uint64_t chunk_index = 0;
  // Exactly chunk_bytes long except the final chunk.
  std::string payload;
};

// Client → server delivery telemetry (feeds the server's stream counters;
// resume is driven by StreamRequest, not acks).
struct StreamAck {
  std::uint64_t stream_id = 0;
  std::uint64_t chunks_received = 0;
  // Playback stalls the client attributes to late chunks.
  std::uint64_t stalls = 0;
};

struct StreamEnd {
  std::uint64_t stream_id = 0;
  std::uint64_t total_chunks = 0;
  std::uint64_t payload_hash = 0;
};

std::string EncodeStreamRequest(const StreamRequest& request,
                                std::uint8_t version = kWireVersion);
StatusOr<StreamRequest> DecodeStreamRequest(std::string_view payload,
                                            std::uint8_t version = kWireVersion);

std::string EncodeStreamBegin(const StreamBegin& begin, std::uint8_t version = kWireVersion);
StatusOr<StreamBegin> DecodeStreamBegin(std::string_view payload,
                                        std::uint8_t version = kWireVersion);

std::string EncodeStreamChunk(const StreamChunk& chunk, std::uint8_t version = kWireVersion);
StatusOr<StreamChunk> DecodeStreamChunk(std::string_view payload,
                                        std::uint8_t version = kWireVersion);

std::string EncodeStreamAck(const StreamAck& ack, std::uint8_t version = kWireVersion);
StatusOr<StreamAck> DecodeStreamAck(std::string_view payload,
                                    std::uint8_t version = kWireVersion);

std::string EncodeStreamEnd(const StreamEnd& end, std::uint8_t version = kWireVersion);
StatusOr<StreamEnd> DecodeStreamEnd(std::string_view payload,
                                    std::uint8_t version = kWireVersion);

// ceil(total_bytes / chunk_bytes); 0 bytes = 0 chunks. chunk_bytes > 0.
std::uint64_t StreamChunkCount(std::uint64_t total_bytes, std::uint64_t chunk_bytes);

// Deterministic stream identity: same presentation, same payload, same
// chunking → same id, so resume hits the same byte stream; any change
// (recompile, different chunk size) changes the id and forces a restart.
std::uint64_t DeriveStreamId(std::uint64_t presentation_hash, std::uint64_t payload_hash,
                             std::uint64_t chunk_bytes);

// Client-side chunk reassembly. Strictly sequential: chunks must arrive in
// index order from StreamBegin::resumed_from (the wire is a TCP stream; a
// gap means desync, answered with kDataLoss). Tracks the contiguous chunk
// count for resume and carves per-block payloads once complete.
class StreamReassembler {
 public:
  // Adopts the manifest/chunking of `begin`. `resumed_payload` is the byte
  // prefix a resuming client already holds — exactly
  // min(begin.resumed_from * begin.chunk_bytes, total payload bytes), the
  // latter when every chunk arrived but kStreamEnd did not (the final chunk
  // may be short). Empty for fresh streams.
  Status Begin(const StreamBegin& begin, std::string resumed_payload = {});

  // Validates stream id, sequential index, and chunk size, then appends.
  Status Feed(const StreamChunk& chunk);

  // Contiguous chunks held from index 0 (the resume boundary to send on
  // reconnect).
  std::uint64_t chunks_received() const { return chunks_received_; }
  bool complete() const { return begun_ && chunks_received_ == total_chunks_; }
  // The contiguous payload prefix received so far.
  const std::string& bytes() const { return payload_; }

  // Cross-checks the trailer against the manifest (count + Fnv1a64) and
  // carves the logical byte string into per-block payloads, manifest order.
  StatusOr<std::vector<WireBlock>> Finish(const StreamEnd& end) const;

 private:
  bool begun_ = false;
  std::uint64_t stream_id_ = 0;
  std::uint64_t chunk_bytes_ = 0;
  std::uint64_t total_chunks_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t payload_hash_ = 0;
  std::uint64_t chunks_received_ = 0;
  std::vector<StreamBlockInfo> manifest_;
  std::string payload_;
};

}  // namespace net
}  // namespace cmif

#endif  // SRC_NET_STREAM_H_
