// Pluggable request scheduling between the reactor and the worker pool, in
// the style of the sledge serverless runtime's FIFO/EDF scheduler choice.
// The reactor admits decoded requests here; ThreadPool workers drain them.
//
//  - kFifo reproduces the old blocking server's behavior: strict admission
//    order, deadlines ignored. Under overload every request queues and tail
//    latency balloons — that is the baseline the fig13 overload bench
//    quantifies.
//  - kEdf orders the queue by absolute deadline (earliest first; deadline-
//    free requests sort last, FIFO among themselves) and *refuses* work it
//    can no longer serve: a request whose deadline has already passed at
//    admission is shed with kResourceExhausted instead of queued, and one
//    whose deadline expires while queued is marked expired at dequeue so the
//    server can degrade it (stale cache) rather than burn a worker on a
//    full compile nobody is waiting for.
//
// Admission is also where backpressure lives: both policies shed when the
// queue is at max_queue_depth (the structured alternative to an unbounded
// queue OOM). Time comes from an injectable fault::Clock so scheduler unit
// tests drive expiry with a FakeClock, and all shared state is under an
// annotated cmif::Mutex (clang -Wthread-safety checks the locking).
#ifndef SRC_NET_SCHEDULER_H_
#define SRC_NET_SCHEDULER_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string_view>
#include <vector>

#include "src/base/mutex.h"
#include "src/base/status.h"
#include "src/fault/clock.h"

namespace cmif {
namespace net {

enum class SchedPolicy : std::uint8_t {
  kFifo = 0,
  kEdf = 1,
};

std::string_view SchedPolicyName(SchedPolicy policy);
// Parses "fifo" / "edf" (the --sched flag values); kInvalidArgument otherwise.
StatusOr<SchedPolicy> ParseSchedPolicy(std::string_view name);

struct SchedulerOptions {
  SchedPolicy policy = SchedPolicy::kFifo;
  // Queue-full shed threshold. Sized to survive a burst, not to hide
  // sustained overload: on a 1-vCPU runner 256 queued compiles is already
  // seconds of backlog.
  std::size_t max_queue_depth = 256;
  // Time source for deadlines; nullptr = fault::GlobalClock().
  fault::Clock* clock = nullptr;
};

// A bounded two-policy priority queue of opaque work items.
class RequestScheduler {
 public:
  // One admitted unit of work. The scheduler never runs `work`; workers
  // dequeue an item and invoke it themselves with the queue-wait metadata
  // filled in.
  struct Item {
    std::uint64_t seq = 0;            // admission order
    std::int64_t deadline_us = 0;     // absolute on the scheduler clock; 0 = none
    std::int64_t enqueue_us = 0;
    std::int64_t queue_wait_us = 0;   // filled at dequeue
    // kEdf only: the deadline passed while the item sat in the queue. The
    // item is still returned (the caller owns the degrade-vs-fail decision);
    // kFifo never sets this — ignoring deadlines is its contract.
    bool expired = false;
    std::function<void(Item&)> work;
  };

  struct Stats {
    std::uint64_t enqueued = 0;
    std::uint64_t dequeued = 0;
    std::uint64_t shed_queue_full = 0;
    std::uint64_t shed_expired = 0;     // refused at admission (kEdf)
    std::uint64_t expired_in_queue = 0; // dequeued past their deadline (kEdf)
    std::size_t depth = 0;
    std::size_t max_depth = 0;
    double total_queue_wait_ms = 0;
  };

  explicit RequestScheduler(SchedulerOptions options = {});
  RequestScheduler(const RequestScheduler&) = delete;
  RequestScheduler& operator=(const RequestScheduler&) = delete;

  // Admits one request. deadline_ms is relative (0 = none; negative = the
  // budget is already spent) and converted to an absolute deadline now;
  // returns kResourceExhausted when the queue is full (both policies) or the
  // deadline is already blown (kEdf) — the caller answers the client with a
  // structured shed response.
  Status Enqueue(std::int64_t deadline_ms, std::function<void(Item&)> work)
      CMIF_EXCLUDES(mu_);

  // Pops the next item per policy; nullopt when idle. Fills queue_wait_us
  // and (kEdf) the expired flag.
  std::optional<Item> Dequeue() CMIF_EXCLUDES(mu_);

  SchedPolicy policy() const { return options_.policy; }
  std::size_t depth() const CMIF_EXCLUDES(mu_);
  Stats stats() const CMIF_EXCLUDES(mu_);

 private:
  std::int64_t NowMicros() const;

  const SchedulerOptions options_;
  fault::Clock* const clock_;

  mutable Mutex mu_;
  std::uint64_t next_seq_ CMIF_GUARDED_BY(mu_) = 0;
  // kFifo: a plain deque. kEdf: a min-heap on (deadline, seq) — deadline 0
  // sorts after every real deadline, so deadline-free work runs only when
  // nothing urgent waits.
  std::deque<Item> fifo_ CMIF_GUARDED_BY(mu_);
  std::vector<Item> heap_ CMIF_GUARDED_BY(mu_);
  Stats stats_ CMIF_GUARDED_BY(mu_);
};

}  // namespace net
}  // namespace cmif

#endif  // SRC_NET_SCHEDULER_H_
