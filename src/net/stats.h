// Live server telemetry: the payload of a kStatsResponse frame. A
// StatsSnapshot is the server's RED metrics (request rate, errors, duration
// percentiles with exemplar trace ids), MappingCache effectiveness, circuit
// breaker states, and queue depth — everything `cmif_tool stats <host:port>`
// needs to render one JSON health report without the server exporting files.
//
// The wire form follows the protocol conventions of src/net/protocol.h:
// varint-prefixed fields in fixed order, f64 as 8-byte LE bit patterns,
// kDataLoss on truncation, out-of-range enums, or trailing bytes — so the
// decoder survives the same fuzz-mutation battery as the request/response
// messages.
#ifndef SRC_NET_STATS_H_
#define SRC_NET_STATS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/base/status.h"
#include "src/net/wire.h"

namespace cmif {
namespace net {

// One point-in-time view of a running NetServer. All counters are
// since-startup totals; rates are for the caller to derive from two
// snapshots (or from uptime).
struct StatsSnapshot {
  // Server lifetime in microseconds at snapshot time.
  std::uint64_t uptime_us = 0;

  // Connection ladder (NetServer::Stats).
  std::uint64_t connections = 0;
  std::uint64_t rejected = 0;
  std::uint64_t requests = 0;
  std::uint64_t protocol_errors = 0;

  // Request outcome ladder beyond plain success.
  std::uint64_t failed = 0;
  std::uint64_t degraded = 0;

  // Requests parked in the acceptor queue right now.
  std::uint64_t queue_depth = 0;

  // Duration distribution (milliseconds) over every handled request.
  std::uint64_t request_count = 0;
  double request_ms_min = 0;
  double request_ms_max = 0;
  double request_ms_mean = 0;
  double request_ms_p50 = 0;
  double request_ms_p95 = 0;
  double request_ms_p99 = 0;

  // Recent sampled trace ids — jump-off points from a slow percentile to a
  // concrete timeline.
  std::vector<std::uint64_t> exemplar_trace_ids;

  // MappingCache effectiveness.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_stale_hits = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_entries = 0;

  // Persistent (disk-tier) cache health; all zero when the server runs
  // without --cache-dir (pcache_enabled distinguishes "disabled" from
  // "enabled but idle").
  bool pcache_enabled = false;
  std::uint64_t pcache_hits = 0;
  std::uint64_t pcache_misses = 0;
  std::uint64_t pcache_writes = 0;
  std::uint64_t pcache_quarantined = 0;
  std::uint64_t pcache_entries = 0;
  std::uint64_t pcache_disk_bytes = 0;

  // Circuit breakers: (site name, state) where state is a
  // fault::BreakerState value (0 closed, 1 open, 2 half-open).
  std::vector<std::pair<std::string, std::uint8_t>> breakers;
  std::uint64_t breaker_opens = 0;

  // Tracing health.
  std::uint64_t anomalies = 0;
  std::uint64_t traces_sampled = 0;
  double sample_rate = 0;

  // Streamed delivery (wire v4; all zero when decoded from a v<4 frame).
  // stream_bytes counts chunk payload bytes actually sent;
  // stream_full_bytes is what full (blob) delivery of the same streams
  // would have sent — the difference is what resume-at-chunk-boundary saved.
  std::uint64_t streams = 0;
  std::uint64_t stream_chunks = 0;
  std::uint64_t stream_bytes = 0;
  std::uint64_t stream_full_bytes = 0;
  std::uint64_t stream_resumes = 0;
  std::uint64_t stream_stalls = 0;
};

// The stats codec is versioned like every other wire message: the streaming
// section is a v4 tail, so a v3 `cmif_tool stats` still parses a v4
// server's answer to its v3 request (the server mirrors frame versions).
std::string EncodeStatsSnapshot(const StatsSnapshot& snapshot,
                                std::uint8_t version = kWireVersion);
StatusOr<StatsSnapshot> DecodeStatsSnapshot(std::string_view payload,
                                            std::uint8_t version = kWireVersion);

// Renders the snapshot as one pretty-printed JSON object (the `cmif_tool
// stats` output). Trace ids render as 16-hex-digit strings to match the
// trace_id args in Chrome trace exports.
std::string StatsSnapshotJson(const StatsSnapshot& snapshot);

}  // namespace net
}  // namespace cmif

#endif  // SRC_NET_STATS_H_
