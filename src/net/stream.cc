#include "src/net/stream.h"

#include <algorithm>

#include "src/base/codec_util.h"
#include "src/base/string_util.h"
#include "src/base/varint.h"

namespace cmif {
namespace net {
namespace {

// Plausibility caps: a corrupted varint must fail structurally, not turn
// into an unbounded allocation or an absurd-but-parseable message.
constexpr std::uint64_t kMaxPlausibleChunks = 1ull << 40;
constexpr std::uint64_t kMaxPlausibleBlockBytes = 1ull << 40;

}  // namespace

std::string EncodeStreamRequest(const StreamRequest& request, std::uint8_t version) {
  std::string out;
  PutString(out, EncodeRequest(request.request, version));
  PutVarint64(out, request.chunk_bytes);
  PutVarint64(out, request.resume_stream_id);
  PutVarint64(out, request.resume_chunks);
  return out;
}

StatusOr<StreamRequest> DecodeStreamRequest(std::string_view payload, std::uint8_t version) {
  StreamRequest request;
  std::size_t pos = 0;
  CMIF_ASSIGN_OR_RETURN(std::string inner, GetString(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(request.request, DecodeRequest(inner, version));
  CMIF_ASSIGN_OR_RETURN(request.chunk_bytes, GetVarint64(payload, &pos));
  // The server clamps small requests up to kMinChunkBytes; zero or beyond
  // the hard ceiling is corruption, not a preference.
  if (request.chunk_bytes == 0 || request.chunk_bytes > kMaxChunkBytes) {
    return DataLossError(StrFormat("implausible chunk size %llu",
                                   static_cast<unsigned long long>(request.chunk_bytes)));
  }
  CMIF_ASSIGN_OR_RETURN(request.resume_stream_id, GetVarint64(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(request.resume_chunks, GetVarint64(payload, &pos));
  if (request.resume_chunks > kMaxPlausibleChunks) {
    return DataLossError(StrFormat("implausible resume chunk count %llu",
                                   static_cast<unsigned long long>(request.resume_chunks)));
  }
  if (request.resume_stream_id == 0 && request.resume_chunks != 0) {
    return DataLossError("resume chunk count without a stream id");
  }
  CMIF_RETURN_IF_ERROR(CheckFullyConsumed(payload, pos));
  return request;
}

std::string EncodeStreamBegin(const StreamBegin& begin, std::uint8_t version) {
  std::string out;
  PutVarint64(out, begin.stream_id);
  PutString(out, EncodeResponse(begin.prefix, version));
  PutVarint64(out, begin.manifest.size());
  for (const StreamBlockInfo& info : begin.manifest) {
    PutString(out, info.descriptor_id);
    PutVarint64(out, info.bytes);
    PutMediaTime(out, info.first_need);
  }
  PutVarint64(out, begin.chunk_bytes);
  PutVarint64(out, begin.total_chunks);
  PutVarint64(out, begin.payload_hash);
  PutVarint64(out, begin.resumed_from);
  return out;
}

StatusOr<StreamBegin> DecodeStreamBegin(std::string_view payload, std::uint8_t version) {
  StreamBegin begin;
  std::size_t pos = 0;
  CMIF_ASSIGN_OR_RETURN(begin.stream_id, GetVarint64(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(std::string inner, GetString(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(begin.prefix, DecodeResponse(inner, version));
  if (!begin.prefix.blocks.empty()) {
    return DataLossError("stream prefix carries inline blocks");
  }
  CMIF_ASSIGN_OR_RETURN(std::uint64_t count, GetVarint64(payload, &pos));
  // Each manifest entry costs >= 4 bytes on the wire, so a count beyond
  // payload size (or the hard cap) is corruption.
  if (count > kMaxStreamBlocks || count > payload.size()) {
    return DataLossError(StrFormat("manifest block count %llu exceeds bounds",
                                   static_cast<unsigned long long>(count)));
  }
  begin.manifest.reserve(count);
  std::uint64_t total_bytes = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    StreamBlockInfo info;
    CMIF_ASSIGN_OR_RETURN(info.descriptor_id, GetString(payload, &pos));
    CMIF_ASSIGN_OR_RETURN(info.bytes, GetVarint64(payload, &pos));
    if (info.bytes > kMaxPlausibleBlockBytes) {
      return DataLossError(StrFormat("implausible block size %llu at offset %zu",
                                     static_cast<unsigned long long>(info.bytes), pos));
    }
    CMIF_ASSIGN_OR_RETURN(info.first_need, GetMediaTime(payload, &pos));
    if (info.first_need.is_negative()) {
      return DataLossError(StrFormat("negative first-need time at offset %zu", pos));
    }
    total_bytes += info.bytes;
    begin.manifest.push_back(std::move(info));
  }
  CMIF_ASSIGN_OR_RETURN(begin.chunk_bytes, GetVarint64(payload, &pos));
  if (begin.chunk_bytes < kMinChunkBytes || begin.chunk_bytes > kMaxChunkBytes) {
    return DataLossError(StrFormat("chunk size %llu outside [%llu, %llu]",
                                   static_cast<unsigned long long>(begin.chunk_bytes),
                                   static_cast<unsigned long long>(kMinChunkBytes),
                                   static_cast<unsigned long long>(kMaxChunkBytes)));
  }
  CMIF_ASSIGN_OR_RETURN(begin.total_chunks, GetVarint64(payload, &pos));
  if (begin.total_chunks != StreamChunkCount(total_bytes, begin.chunk_bytes)) {
    return DataLossError(StrFormat("chunk count %llu disagrees with the manifest (%llu bytes)",
                                   static_cast<unsigned long long>(begin.total_chunks),
                                   static_cast<unsigned long long>(total_bytes)));
  }
  CMIF_ASSIGN_OR_RETURN(begin.payload_hash, GetVarint64(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(begin.resumed_from, GetVarint64(payload, &pos));
  if (begin.resumed_from > begin.total_chunks) {
    return DataLossError(StrFormat("resume point %llu past the %llu-chunk stream",
                                   static_cast<unsigned long long>(begin.resumed_from),
                                   static_cast<unsigned long long>(begin.total_chunks)));
  }
  CMIF_RETURN_IF_ERROR(CheckFullyConsumed(payload, pos));
  return begin;
}

std::string EncodeStreamChunk(const StreamChunk& chunk, std::uint8_t version) {
  (void)version;
  std::string out;
  PutVarint64(out, chunk.stream_id);
  PutVarint64(out, chunk.chunk_index);
  PutString(out, chunk.payload);
  return out;
}

StatusOr<StreamChunk> DecodeStreamChunk(std::string_view payload, std::uint8_t version) {
  (void)version;
  StreamChunk chunk;
  std::size_t pos = 0;
  CMIF_ASSIGN_OR_RETURN(chunk.stream_id, GetVarint64(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(chunk.chunk_index, GetVarint64(payload, &pos));
  if (chunk.chunk_index > kMaxPlausibleChunks) {
    return DataLossError(StrFormat("implausible chunk index %llu",
                                   static_cast<unsigned long long>(chunk.chunk_index)));
  }
  CMIF_ASSIGN_OR_RETURN(chunk.payload, GetString(payload, &pos));
  if (chunk.payload.empty() || chunk.payload.size() > kMaxChunkBytes) {
    return DataLossError(StrFormat("chunk payload of %zu bytes outside (0, %llu]",
                                   chunk.payload.size(),
                                   static_cast<unsigned long long>(kMaxChunkBytes)));
  }
  CMIF_RETURN_IF_ERROR(CheckFullyConsumed(payload, pos));
  return chunk;
}

std::string EncodeStreamAck(const StreamAck& ack, std::uint8_t version) {
  (void)version;
  std::string out;
  PutVarint64(out, ack.stream_id);
  PutVarint64(out, ack.chunks_received);
  PutVarint64(out, ack.stalls);
  return out;
}

StatusOr<StreamAck> DecodeStreamAck(std::string_view payload, std::uint8_t version) {
  (void)version;
  StreamAck ack;
  std::size_t pos = 0;
  CMIF_ASSIGN_OR_RETURN(ack.stream_id, GetVarint64(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(ack.chunks_received, GetVarint64(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(ack.stalls, GetVarint64(payload, &pos));
  if (ack.chunks_received > kMaxPlausibleChunks || ack.stalls > kMaxPlausibleChunks) {
    return DataLossError("implausible ack counters");
  }
  CMIF_RETURN_IF_ERROR(CheckFullyConsumed(payload, pos));
  return ack;
}

std::string EncodeStreamEnd(const StreamEnd& end, std::uint8_t version) {
  (void)version;
  std::string out;
  PutVarint64(out, end.stream_id);
  PutVarint64(out, end.total_chunks);
  PutVarint64(out, end.payload_hash);
  return out;
}

StatusOr<StreamEnd> DecodeStreamEnd(std::string_view payload, std::uint8_t version) {
  (void)version;
  StreamEnd end;
  std::size_t pos = 0;
  CMIF_ASSIGN_OR_RETURN(end.stream_id, GetVarint64(payload, &pos));
  CMIF_ASSIGN_OR_RETURN(end.total_chunks, GetVarint64(payload, &pos));
  if (end.total_chunks > kMaxPlausibleChunks) {
    return DataLossError(StrFormat("implausible chunk count %llu",
                                   static_cast<unsigned long long>(end.total_chunks)));
  }
  CMIF_ASSIGN_OR_RETURN(end.payload_hash, GetVarint64(payload, &pos));
  CMIF_RETURN_IF_ERROR(CheckFullyConsumed(payload, pos));
  return end;
}

std::uint64_t StreamChunkCount(std::uint64_t total_bytes, std::uint64_t chunk_bytes) {
  return total_bytes == 0 ? 0 : (total_bytes + chunk_bytes - 1) / chunk_bytes;
}

std::uint64_t DeriveStreamId(std::uint64_t presentation_hash, std::uint64_t payload_hash,
                             std::uint64_t chunk_bytes) {
  std::uint64_t id = Fnv1a64("cmif-stream");
  id = Fnv1a64Combine(id, presentation_hash);
  id = Fnv1a64Combine(id, payload_hash);
  id = Fnv1a64Combine(id, chunk_bytes);
  // 0 means "no stream" in resume fields; nudge the (astronomically
  // unlikely) collision off it.
  return id == 0 ? 1 : id;
}

Status StreamReassembler::Begin(const StreamBegin& begin, std::string resumed_payload) {
  std::uint64_t total_bytes = 0;
  for (const StreamBlockInfo& info : begin.manifest) {
    total_bytes += info.bytes;
  }
  // The prefix for chunk boundary k is k * chunk_bytes, except that the
  // final chunk may be short: a client that held every chunk but lost the
  // connection before kStreamEnd resumes with exactly total_bytes.
  const std::uint64_t expected_prefix =
      std::min(begin.resumed_from * begin.chunk_bytes, total_bytes);
  if (begin.resumed_from > begin.total_chunks ||
      resumed_payload.size() != expected_prefix) {
    return DataLossError(StrFormat("resume prefix of %zu bytes disagrees with chunk %llu boundary",
                                   resumed_payload.size(),
                                   static_cast<unsigned long long>(begin.resumed_from)));
  }
  begun_ = true;
  stream_id_ = begin.stream_id;
  chunk_bytes_ = begin.chunk_bytes;
  total_chunks_ = begin.total_chunks;
  total_bytes_ = total_bytes;
  payload_hash_ = begin.payload_hash;
  chunks_received_ = begin.resumed_from;
  manifest_ = begin.manifest;
  payload_ = std::move(resumed_payload);
  return Status::Ok();
}

Status StreamReassembler::Feed(const StreamChunk& chunk) {
  if (!begun_) {
    return FailedPreconditionError("chunk before stream begin");
  }
  if (chunk.stream_id != stream_id_) {
    return DataLossError(StrFormat("chunk for stream %016llx on stream %016llx",
                                   static_cast<unsigned long long>(chunk.stream_id),
                                   static_cast<unsigned long long>(stream_id_)));
  }
  if (chunk.chunk_index != chunks_received_) {
    return DataLossError(StrFormat("chunk %llu out of order (expected %llu)",
                                   static_cast<unsigned long long>(chunk.chunk_index),
                                   static_cast<unsigned long long>(chunks_received_)));
  }
  if (chunk.chunk_index >= total_chunks_) {
    return DataLossError(StrFormat("chunk %llu past the %llu-chunk stream",
                                   static_cast<unsigned long long>(chunk.chunk_index),
                                   static_cast<unsigned long long>(total_chunks_)));
  }
  std::uint64_t expected = chunk.chunk_index + 1 == total_chunks_
                               ? total_bytes_ - (total_chunks_ - 1) * chunk_bytes_
                               : chunk_bytes_;
  if (chunk.payload.size() != expected) {
    return DataLossError(StrFormat("chunk %llu carries %zu bytes (expected %llu)",
                                   static_cast<unsigned long long>(chunk.chunk_index),
                                   chunk.payload.size(),
                                   static_cast<unsigned long long>(expected)));
  }
  payload_.append(chunk.payload);
  ++chunks_received_;
  return Status::Ok();
}

StatusOr<std::vector<WireBlock>> StreamReassembler::Finish(const StreamEnd& end) const {
  if (!begun_ || !complete()) {
    return FailedPreconditionError(StrFormat("stream incomplete (%llu of %llu chunks)",
                                             static_cast<unsigned long long>(chunks_received_),
                                             static_cast<unsigned long long>(total_chunks_)));
  }
  if (end.stream_id != stream_id_ || end.total_chunks != total_chunks_ ||
      end.payload_hash != payload_hash_) {
    return DataLossError("stream trailer disagrees with stream begin");
  }
  if (payload_.size() != total_bytes_) {
    return DataLossError(StrFormat("reassembled %zu bytes (manifest declares %llu)",
                                   payload_.size(),
                                   static_cast<unsigned long long>(total_bytes_)));
  }
  if (Fnv1a64(payload_) != payload_hash_) {
    return DataLossError("stream payload hash mismatch after reassembly");
  }
  std::vector<WireBlock> blocks;
  blocks.reserve(manifest_.size());
  std::size_t offset = 0;
  for (const StreamBlockInfo& info : manifest_) {
    WireBlock block;
    block.descriptor_id = info.descriptor_id;
    block.payload = payload_.substr(offset, info.bytes);
    offset += info.bytes;
    blocks.push_back(std::move(block));
  }
  return blocks;
}

}  // namespace net
}  // namespace cmif
