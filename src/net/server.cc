#include "src/net/server.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <utility>

#include "src/base/string_util.h"
#include "src/fault/fault.h"
#include "src/net/presentation_wire.h"
#include "src/obs/obs.h"
#include "src/obs/trace.h"

namespace {

std::uint64_t SteadyNowMicros() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

}  // namespace

namespace cmif {
namespace net {

NetServer::NetServer(ServeLoop& loop, NetServerOptions options)
    : loop_(loop), options_(std::move(options)) {
  if (options_.workers < 1) {
    options_.workers = 1;
  }
  if (options_.max_queue_depth < 1) {
    options_.max_queue_depth = 1;
  }
  if (options_.max_connections < 1) {
    options_.max_connections = 1;
  }
}

NetServer::~NetServer() { Stop(); }

Status NetServer::Start() {
  if (running_.load(std::memory_order_relaxed)) {
    return FailedPreconditionError("server already started");
  }
  documents_.clear();
  profiles_.clear();
  const ServeCorpus& corpus = loop_.corpus();
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    documents_[corpus.document(i).name] = i;
  }
  const std::vector<SystemProfile>& profiles = loop_.options().profiles;
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    profiles_[profiles[i].name] = i;
  }

  SchedulerOptions sched;
  sched.policy = options_.sched_policy;
  sched.max_queue_depth = options_.max_queue_depth;
  scheduler_ = std::make_unique<RequestScheduler>(sched);
  pool_ = std::make_unique<ThreadPool>(options_.workers);

  ReactorOptions reactor;
  reactor.host = options_.host;
  reactor.port = options_.port;
  reactor.accept_backlog = options_.accept_backlog;
  reactor.max_connections = options_.max_connections;
  reactor.partial_frame_timeout_ms = options_.partial_frame_timeout_ms;
  reactor.limits = options_.limits;
  reactor_ = std::make_unique<Reactor>(
      std::move(reactor),
      [this](std::uint64_t conn_id, Frame frame) { OnFrame(conn_id, std::move(frame)); },
      [this](std::uint64_t conn_id) { OnEof(conn_id); },
      [this](std::uint64_t conn_id, const Status& error) { OnDesync(conn_id, error); },
      [this](std::uint64_t conn_id, const Status&) { OnClosed(conn_id); });
  Status started = reactor_->Start();
  if (!started.ok()) {
    reactor_.reset();
    pool_.reset();
    scheduler_.reset();
    return started;
  }
  {
    MutexLock lock(mu_);
    draining_ = false;
  }
  started_us_ = SteadyNowMicros();
  running_.store(true, std::memory_order_relaxed);
  return Status::Ok();
}

void NetServer::Stop() {
  if (!running_.exchange(false, std::memory_order_relaxed)) {
    return;
  }
  // Graceful ordering: no new connections, no new admissions, every admitted
  // request answered, buffered responses flushed on the wire — and only then
  // is the worker pool torn down.
  reactor_->StopAccepting();
  {
    MutexLock lock(mu_);
    draining_ = true;
    while (outstanding_ > 0) {
      idle_cv_.Wait(lock);
    }
  }
  reactor_->Stop();
  {
    const Reactor::Stats reactor_stats = reactor_->stats();
    MutexLock lock(mu_);
    stats_.connections += reactor_stats.accepted;
    stats_.rejected += reactor_stats.rejected_capacity;
    conns_.clear();
    if (obs::Enabled()) {
      obs::GetGauge("net.queue_depth").Set(0);
    }
  }
  pool_.reset();
}

NetServer::Stats NetServer::stats() const {
  Stats snapshot;
  {
    MutexLock lock(mu_);
    snapshot = stats_;
  }
  if (running_.load(std::memory_order_relaxed) && reactor_) {
    const Reactor::Stats reactor_stats = reactor_->stats();
    snapshot.connections += reactor_stats.accepted;
    snapshot.rejected += reactor_stats.rejected_capacity;
  }
  return snapshot;
}

RequestScheduler::Stats NetServer::scheduler_stats() const {
  return scheduler_ ? scheduler_->stats() : RequestScheduler::Stats{};
}

std::uint64_t NetServer::AssignSlot(std::uint64_t conn_id) {
  MutexLock lock(mu_);
  ConnState& conn = conns_[conn_id];
  const std::uint64_t slot = conn.next_slot++;
  conn.slots.emplace_back();
  return slot;
}

void NetServer::CompleteSlot(std::uint64_t conn_id, std::uint64_t slot, FrameType type,
                             std::string payload, std::uint8_t version, bool close_after) {
  std::vector<OutFrame> frames(1);
  frames[0].type = type;
  frames[0].payload = std::move(payload);
  CompleteSlotFrames(conn_id, slot, std::move(frames), version, close_after);
}

void NetServer::CompleteSlotFrames(std::uint64_t conn_id, std::uint64_t slot,
                                   std::vector<OutFrame> frames, std::uint8_t version,
                                   bool close_after) {
  // The ready prefix is popped AND handed to the reactor while still holding
  // mu_. Releasing the lock between the pop and SendFrame would open a race:
  // a worker completing slot N+1 could post its response to the reactor's
  // FIFO mailbox before the preempted worker that popped slot N, flushing
  // responses out of request order (clients match responses positionally —
  // the protocol has no request ids). SendFrame only takes the reactor's own
  // mailbox lock and the reactor never acquires mu_ while holding it, so
  // there is no lock cycle. A multi-frame slot (a stream) is posted to the
  // mailbox frame-by-frame inside the same locked section, so its sequence
  // is as atomic as a single response.
  MutexLock lock(mu_);
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) {
    return;  // connection died while the request was in flight
  }
  ConnState& conn = it->second;
  if (slot < conn.base_slot) {
    return;
  }
  const std::size_t index = static_cast<std::size_t>(slot - conn.base_slot);
  if (index >= conn.slots.size()) {
    return;
  }
  Slot& pending = conn.slots[index];
  pending.ready = true;
  pending.close_after = close_after;
  pending.version = version;
  pending.frames = std::move(frames);
  while (!conn.slots.empty() && conn.slots.front().ready) {
    Slot next = std::move(conn.slots.front());
    conn.slots.pop_front();
    ++conn.base_slot;
    // conn.eof && slots.empty() can only hold on the final pop, so this is
    // the old "close once the pipeline drains after EOF" condition.
    const bool close = next.close_after || (conn.eof && conn.slots.empty());
    // kNotFound (connection raced away) is not worth propagating: the
    // response had nowhere to go.
    for (std::size_t i = 0; i < next.frames.size(); ++i) {
      const bool last = i + 1 == next.frames.size();
      (void)reactor_->SendFrame(conn_id, next.frames[i].type, next.frames[i].payload,
                                next.version, close && last);
    }
  }
}

void NetServer::BumpProtocolErrors() {
  MutexLock lock(mu_);
  ++stats_.protocol_errors;
}

PresentResponse NetServer::ShedResponse(const Status& reason) const {
  PresentResponse response;
  response.outcome = ServeOutcome::kFailed;
  response.attempts = 0;
  response.error = reason;
  response.shed = true;
  return response;
}

void NetServer::OnFrame(std::uint64_t conn_id, Frame frame) {
  switch (frame.type) {
    case FrameType::kPing: {
      const std::uint64_t slot = AssignSlot(conn_id);
      CompleteSlot(conn_id, slot, FrameType::kPong, std::move(frame.payload), frame.version);
      return;
    }
    case FrameType::kStatsRequest: {
      // A telemetry probe, not a compile: answered inline with a snapshot of
      // the live counters so monitoring never queues behind a slow request.
      const std::uint64_t slot = AssignSlot(conn_id);
      CompleteSlot(conn_id, slot, FrameType::kStatsResponse,
                   EncodeStatsSnapshot(Snapshot(), frame.version), frame.version);
      return;
    }
    case FrameType::kRequest: {
      StatusOr<PresentRequest> request = DecodeRequest(frame.payload, frame.version);
      if (!request.ok()) {
        BumpProtocolErrors();
        const std::uint64_t slot = AssignSlot(conn_id);
        CompleteSlot(conn_id, slot, FrameType::kError, EncodeWireStatus(request.status()),
                     frame.version, /*close_after=*/true);
        return;
      }
      const std::uint64_t slot = AssignSlot(conn_id);
      const std::uint8_t version = frame.version;
      Admit(std::move(*request),
            [this, conn_id, slot, version](PresentResponse response,
                                           std::shared_ptr<const CompiledPresentation>) {
              CompleteSlot(conn_id, slot, FrameType::kResponse,
                           EncodeResponse(response, version), version);
            });
      return;
    }
    case FrameType::kStreamRequest: {
      StatusOr<StreamRequest> request = DecodeStreamRequest(frame.payload, frame.version);
      if (!request.ok()) {
        BumpProtocolErrors();
        const std::uint64_t slot = AssignSlot(conn_id);
        CompleteSlot(conn_id, slot, FrameType::kError, EncodeWireStatus(request.status()),
                     frame.version, /*close_after=*/true);
        return;
      }
      const std::uint64_t slot = AssignSlot(conn_id);
      const std::uint8_t version = frame.version;
      auto stream = std::make_shared<StreamRequest>(std::move(*request));
      // The stream prefix must never carry inline blocks (chunks are the
      // delivery path); a client asking for both gets the stream.
      stream->request.want_blocks = false;
      PresentRequest inner = stream->request;
      Admit(std::move(inner),
            [this, conn_id, slot, version, stream](
                PresentResponse response,
                std::shared_ptr<const CompiledPresentation> presentation) {
              CompleteStream(conn_id, slot, *stream, std::move(response),
                             std::move(presentation), version);
            });
      return;
    }
    case FrameType::kStreamAck: {
      // One-way delivery telemetry: no response slot. A malformed ack still
      // desynchronizes the stream's framing contract, so it errors + closes
      // like any other bad payload.
      StatusOr<StreamAck> ack = DecodeStreamAck(frame.payload, frame.version);
      if (!ack.ok()) {
        BumpProtocolErrors();
        const std::uint64_t slot = AssignSlot(conn_id);
        CompleteSlot(conn_id, slot, FrameType::kError, EncodeWireStatus(ack.status()),
                     frame.version, /*close_after=*/true);
        return;
      }
      stream_stalls_.fetch_add(ack->stalls, std::memory_order_relaxed);
      return;
    }
    case FrameType::kBatchRequest: {
      StatusOr<std::vector<PresentRequest>> requests =
          DecodeBatchRequest(frame.payload, frame.version);
      if (!requests.ok()) {
        BumpProtocolErrors();
        const std::uint64_t slot = AssignSlot(conn_id);
        CompleteSlot(conn_id, slot, FrameType::kError, EncodeWireStatus(requests.status()),
                     frame.version, /*close_after=*/true);
        return;
      }
      const std::uint64_t slot = AssignSlot(conn_id);
      const std::uint8_t version = frame.version;
      if (requests->empty()) {
        CompleteSlot(conn_id, slot, FrameType::kBatchResponse, EncodeBatchResponse({}, version),
                     version);
        return;
      }
      // Each batch element is scheduled independently (EDF interleaves them
      // with every other connection's work); the batch answers as one frame
      // once the last element lands.
      auto batch = std::make_shared<BatchState>();
      batch->responses.resize(requests->size());
      batch->remaining.store(requests->size(), std::memory_order_relaxed);
      for (std::size_t i = 0; i < requests->size(); ++i) {
        Admit(std::move((*requests)[i]),
              [this, conn_id, slot, version, batch, i](
                  PresentResponse response, std::shared_ptr<const CompiledPresentation>) {
                batch->responses[i] = std::move(response);
                if (batch->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
                  CompleteSlot(conn_id, slot, FrameType::kBatchResponse,
                               EncodeBatchResponse(batch->responses, version), version);
                }
              });
      }
      return;
    }
    default: {
      BumpProtocolErrors();
      const std::uint64_t slot = AssignSlot(conn_id);
      CompleteSlot(conn_id, slot, FrameType::kError,
                   EncodeWireStatus(InvalidArgumentError(StrFormat(
                       "unexpected %s frame",
                       std::string(FrameTypeName(frame.type)).c_str()))),
                   frame.version, /*close_after=*/true);
      return;
    }
  }
}

void NetServer::OnEof(std::uint64_t conn_id) {
  bool close_now = false;
  {
    MutexLock lock(mu_);
    ConnState& conn = conns_[conn_id];
    conn.eof = true;
    close_now = conn.slots.empty();
  }
  if (close_now) {
    reactor_->CloseConnection(conn_id);
  }
}

void NetServer::OnDesync(std::uint64_t conn_id, const Status& error) {
  BumpProtocolErrors();
  // The error frame takes a slot like any response, so pipelined requests
  // already in flight still answer (in order) before the connection drops.
  // Encoded at the minimum supported version: after a desync we no longer
  // know what the peer speaks, and v2 is readable by everyone.
  const std::uint64_t slot = AssignSlot(conn_id);
  CompleteSlot(conn_id, slot, FrameType::kError, EncodeWireStatus(error), kMinWireVersion,
               /*close_after=*/true);
}

void NetServer::OnClosed(std::uint64_t conn_id) {
  MutexLock lock(mu_);
  conns_.erase(conn_id);
}

void NetServer::Admit(PresentRequest request, Completion done) {
  // Wraps `done` with the per-request accounting every completion path
  // (served, degraded, shed) shares.
  auto finish = [this, done = std::move(done)](
                    PresentResponse response,
                    std::shared_ptr<const CompiledPresentation> presentation) {
    if (response.outcome == ServeOutcome::kFailed) {
      failed_.fetch_add(1, std::memory_order_relaxed);
    } else if (response.outcome == ServeOutcome::kDegraded) {
      degraded_.fetch_add(1, std::memory_order_relaxed);
    }
    {
      MutexLock lock(mu_);
      ++stats_.requests;
      if (response.shed) {
        ++stats_.shed;
      }
    }
    if (obs::Enabled()) {
      obs::GetCounter("net.server.requests").Add();
    }
    done(std::move(response), std::move(presentation));
  };

  bool draining = false;
  {
    MutexLock lock(mu_);
    draining = draining_;
    if (!draining) {
      ++outstanding_;
    }
  }
  if (draining) {
    finish(ShedResponse(UnavailableError("server draining")), nullptr);
    return;
  }

  const std::int64_t deadline_ms =
      request.deadline_ms > 0 ? request.deadline_ms : options_.default_deadline_ms;
  auto work = [this, request = std::move(request),
               finish](RequestScheduler::Item& item) mutable {
    std::shared_ptr<const CompiledPresentation> presentation;
    PresentResponse response = Process(request, item, &presentation);
    finish(std::move(response), std::move(presentation));
    MutexLock lock(mu_);
    if (--outstanding_ == 0) {
      idle_cv_.NotifyAll();
    }
  };
  Status admitted = scheduler_->Enqueue(deadline_ms, std::move(work));
  if (!admitted.ok()) {
    finish(ShedResponse(admitted), nullptr);
    MutexLock lock(mu_);
    if (--outstanding_ == 0) {
      idle_cv_.NotifyAll();
    }
    return;
  }
  if (obs::Enabled()) {
    obs::GetGauge("net.queue_depth").Set(static_cast<std::int64_t>(scheduler_->depth()));
  }
  // The ticket pattern: the pool's own queue stays FIFO, but each ticket
  // dequeues from the scheduler at execution time, so EDF decides which
  // admitted request the freed worker actually runs.
  pool_->Run([this] {
    std::optional<RequestScheduler::Item> item = scheduler_->Dequeue();
    if (item && item->work) {
      item->work(*item);
    }
  });
}

PresentResponse NetServer::Process(const PresentRequest& request,
                                   const RequestScheduler::Item& item,
                                   std::shared_ptr<const CompiledPresentation>* presentation) {
  const auto start = std::chrono::steady_clock::now();
  // Adopt the client's trace context, or start a server-local trace for the
  // configured fraction of untraced requests. The context is installed for
  // the whole handling scope so every span below (serve, pipeline, sched)
  // carries the trace id.
  obs::TraceContext ctx = request.trace;
  if (!ctx.valid() && options_.trace_sample_rate > 0) {
    ctx = obs::NewTrace(options_.trace_sample_rate);
  }
  PresentResponse response;
  bool sampled = false;
  const double queue_wait_ms = static_cast<double>(item.queue_wait_us) / 1000.0;
  {
    obs::ScopedTrace scoped_trace(ctx);
    obs::Span span("net-request");
    obs::ScopedLatency latency("net.request_ms");
    span.Annotate("document", request.document);
    span.Annotate("sched_policy", std::string(SchedPolicyName(scheduler_->policy())));
    span.Annotate("queue_wait_ms", queue_wait_ms);
    if (request.deadline_ms > 0) {
      span.Annotate("deadline_ms", request.deadline_ms);
    }
    if (obs::Enabled() && item.queue_wait_us > 0) {
      // The queue wait already happened (it started at enqueue, on the
      // reactor thread) — emit it as an explicit-timing span so `request
      // --trace` shows time-in-queue ahead of the serve spans.
      const double now_us = obs::detail::NowMicros();
      obs::EmitSpan("net-queue", now_us - static_cast<double>(item.queue_wait_us),
                    static_cast<double>(item.queue_wait_us),
                    {{"policy",
                      "\"" + std::string(SchedPolicyName(scheduler_->policy())) + "\""}});
    }
    if (item.expired) {
      response = request.allow_degraded
                     ? HandleExpired(request, presentation)
                     : ShedResponse(ResourceExhaustedError(
                           "deadline expired in scheduler queue"));
    } else {
      response = HandleRequest(request, presentation);
    }
    response.queue_ms = queue_wait_ms;
    span.Annotate("outcome", std::string(ServeOutcomeName(response.outcome)));
    if (response.shed) {
      span.Annotate("shed", std::int64_t{1});
    }
    // Read back through CurrentTrace(): an anomaly during handling (retry,
    // breaker open, degraded compile) force-samples an unsampled trace.
    sampled = ctx.valid() && obs::CurrentTrace().sampled;
  }
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
          .count();
  request_ms_.Record(elapsed_ms);

  if (sampled && obs::Enabled()) {
    // Harvest this trace's spans (removing them — a long-lived server's span
    // memory stays bounded) and hand them back on the response.
    std::vector<obs::SpanRecord> harvested = obs::TakeTraceSpans(ctx.trace_id);
    std::sort(harvested.begin(), harvested.end(),
              [](const obs::SpanRecord& a, const obs::SpanRecord& b) {
                return a.start_us < b.start_us;
              });
    if (harvested.size() > options_.max_response_spans) {
      harvested.resize(options_.max_response_spans);
    }
    response.server_spans.reserve(harvested.size());
    for (const obs::SpanRecord& record : harvested) {
      WireSpan wire;
      wire.name = record.name;
      wire.id = record.id;
      wire.parent_id = record.parent_id;
      wire.trace_id = record.trace_id;
      wire.start_us = record.start_us;
      wire.duration_us = record.duration_us;
      wire.tid = record.tid;
      response.server_spans.push_back(std::move(wire));
    }
    traces_sampled_.fetch_add(1, std::memory_order_relaxed);
    MutexLock lock(mu_);
    if (exemplars_.size() < kMaxExemplars) {
      exemplars_.push_back(ctx.trace_id);
    } else {
      exemplars_[exemplar_next_ % kMaxExemplars] = ctx.trace_id;
    }
    ++exemplar_next_;
  }
  return response;
}

PresentResponse NetServer::HandleExpired(const PresentRequest& request,
                                         std::shared_ptr<const CompiledPresentation>* presentation) {
  const Status reason = ResourceExhaustedError("deadline expired in scheduler queue");
  PresentResponse response;
  auto doc = documents_.find(request.document);
  if (doc == documents_.end()) {
    response.error = NotFoundError("unknown document '" + request.document + "'");
    return response;
  }
  ServeRequest serve_request;
  serve_request.document = doc->second;
  if (!request.profile.empty()) {
    auto profile = profiles_.find(request.profile);
    if (profile == profiles_.end()) {
      response.error = NotFoundError("unknown profile '" + request.profile + "'");
      return response;
    }
    serve_request.profile = profile->second;
  }
  ServeResponse served = loop_.ServeStale(serve_request, reason);
  response.attempts = served.attempts;
  response.cache_hit = served.cache_hit;
  response.error = served.error;
  if (!served.served()) {
    // Nothing cached either: the request is shed outright.
    return ShedResponse(reason);
  }
  response.outcome = served.outcome;
  if (served.outcome == ServeOutcome::kDegraded) {
    MutexLock lock(mu_);
    ++stats_.degraded_deadline;
  }
  if (presentation != nullptr) {
    *presentation = served.presentation;
  }
  std::string body = SerializePresentation(*served.presentation, request.channels);
  response.presentation_hash = Fnv1a64(body);
  if (request.want_body) {
    response.presentation = std::move(body);
  }
  return response;
}

StatsSnapshot NetServer::Snapshot() const {
  StatsSnapshot snapshot;
  snapshot.uptime_us =
      running_.load(std::memory_order_relaxed) ? SteadyNowMicros() - started_us_ : 0;
  const Stats totals = stats();
  snapshot.connections = totals.connections;
  snapshot.rejected = totals.rejected;
  snapshot.requests = totals.requests;
  snapshot.protocol_errors = totals.protocol_errors;
  snapshot.queue_depth = scheduler_ ? scheduler_->depth() : 0;
  {
    MutexLock lock(mu_);
    snapshot.exemplar_trace_ids = exemplars_;
  }
  snapshot.failed = failed_.load(std::memory_order_relaxed);
  snapshot.degraded = degraded_.load(std::memory_order_relaxed);
  snapshot.request_count = request_ms_.count();
  snapshot.request_ms_min = request_ms_.min();
  snapshot.request_ms_max = request_ms_.max();
  snapshot.request_ms_mean = request_ms_.mean();
  snapshot.request_ms_p50 = request_ms_.Percentile(50);
  snapshot.request_ms_p95 = request_ms_.Percentile(95);
  snapshot.request_ms_p99 = request_ms_.Percentile(99);
  const MappingCache::Stats cache = loop_.cache().stats();
  snapshot.cache_hits = static_cast<std::uint64_t>(cache.hits);
  snapshot.cache_misses = static_cast<std::uint64_t>(cache.misses);
  snapshot.cache_stale_hits = static_cast<std::uint64_t>(cache.stale_hits);
  snapshot.cache_evictions = static_cast<std::uint64_t>(cache.evictions);
  snapshot.cache_entries = static_cast<std::uint64_t>(cache.entries);
  if (PersistentCache* pcache = loop_.pcache()) {
    const PersistentCache::Stats disk = pcache->stats();
    snapshot.pcache_enabled = true;
    snapshot.pcache_hits = disk.hits;
    snapshot.pcache_misses = disk.misses;
    snapshot.pcache_writes = disk.writes;
    snapshot.pcache_quarantined = disk.quarantined;
    snapshot.pcache_entries = static_cast<std::uint64_t>(disk.entries);
    snapshot.pcache_disk_bytes = disk.disk_bytes;
  }
  for (const auto& [site, state] : loop_.breakers().States()) {
    snapshot.breakers.emplace_back(site, static_cast<std::uint8_t>(state));
  }
  snapshot.breaker_opens = static_cast<std::uint64_t>(loop_.breakers().TotalOpens());
  snapshot.anomalies = obs::AnomalyCount();
  snapshot.traces_sampled = traces_sampled_.load(std::memory_order_relaxed);
  snapshot.sample_rate = options_.trace_sample_rate;
  snapshot.streams = streams_.load(std::memory_order_relaxed);
  snapshot.stream_chunks = stream_chunks_.load(std::memory_order_relaxed);
  snapshot.stream_bytes = stream_bytes_.load(std::memory_order_relaxed);
  snapshot.stream_full_bytes = stream_full_bytes_.load(std::memory_order_relaxed);
  snapshot.stream_resumes = stream_resumes_.load(std::memory_order_relaxed);
  snapshot.stream_stalls = stream_stalls_.load(std::memory_order_relaxed);
  return snapshot;
}

PresentResponse NetServer::HandleRequest(const PresentRequest& request,
                                         std::shared_ptr<const CompiledPresentation>* presentation) {
  PresentResponse response;
  auto doc = documents_.find(request.document);
  if (doc == documents_.end()) {
    response.error = NotFoundError("unknown document '" + request.document + "'");
    return response;
  }
  ServeRequest serve_request;
  serve_request.document = doc->second;
  if (!request.profile.empty()) {
    auto profile = profiles_.find(request.profile);
    if (profile == profiles_.end()) {
      response.error = NotFoundError("unknown profile '" + request.profile + "'");
      return response;
    }
    serve_request.profile = profile->second;
  }

  ServeResponse served = loop_.Serve(serve_request);
  response.attempts = served.attempts;
  response.cache_hit = served.cache_hit;
  response.error = served.error;
  if (!served.served() ||
      (served.outcome == ServeOutcome::kDegraded && !request.allow_degraded)) {
    response.outcome = ServeOutcome::kFailed;
    if (response.error.ok()) {
      response.error = UnavailableError("degraded response refused by request");
    }
    return response;
  }
  response.outcome = served.outcome;
  if (presentation != nullptr) {
    *presentation = served.presentation;
  }
  std::string body = SerializePresentation(*served.presentation, request.channels);
  response.presentation_hash = Fnv1a64(body);
  if (request.want_body) {
    response.presentation = std::move(body);
  }
  if (request.want_blocks) {
    // v4 blob delivery: the same plan the stream path would send, inline.
    // A plan failure leaves blocks empty rather than failing a request that
    // already served its presentation.
    StatusOr<StreamPlan> plan = BuildPlanFor(request, *served.presentation);
    if (plan.ok()) {
      response.blocks.reserve(plan->blocks.size());
      for (const PrefetchBlock& block : plan->blocks) {
        WireBlock wire;
        wire.descriptor_id = block.descriptor_id;
        wire.payload = plan->bytes.substr(static_cast<std::size_t>(block.offset),
                                          static_cast<std::size_t>(block.bytes));
        response.blocks.push_back(std::move(wire));
      }
    }
  }
  return response;
}

StatusOr<StreamPlan> NetServer::BuildPlanFor(const PresentRequest& request,
                                             const CompiledPresentation& presentation) const {
  const std::vector<SystemProfile>& profiles = loop_.options().profiles;
  SystemProfile profile;
  if (!profiles.empty()) {
    profile = profiles[0];
    if (!request.profile.empty()) {
      auto it = profiles_.find(request.profile);
      if (it != profiles_.end()) {
        profile = profiles[it->second];
      }
    }
  }
  const ServeCorpus& corpus = loop_.corpus();
  return corpus.store().WithRead([&](const DescriptorStore& store) {
    return corpus.blocks().WithRead([&](const BlockStore& blocks) {
      return BuildStreamPlan(presentation, store, blocks, profile, request.channels);
    });
  });
}

void NetServer::CompleteStream(std::uint64_t conn_id, std::uint64_t slot,
                               const StreamRequest& stream, PresentResponse response,
                               std::shared_ptr<const CompiledPresentation> presentation,
                               std::uint8_t version) {
  // Nothing to stream (failed/shed serve, or a v<4 frame that should not
  // have carried a stream request): answer the plain response — the client
  // treats a kResponse where it expected kStreamBegin as its blob fallback.
  StatusOr<StreamPlan> plan = InternalError("no presentation");
  if (version >= 4 && presentation != nullptr && !response.shed &&
      response.outcome != ServeOutcome::kFailed) {
    plan = BuildPlanFor(stream.request, *presentation);
  }
  if (!plan.ok()) {
    CompleteSlot(conn_id, slot, FrameType::kResponse, EncodeResponse(response, version),
                 version);
    return;
  }

  const std::uint64_t chunk_bytes =
      std::clamp<std::uint64_t>(stream.chunk_bytes, kMinChunkBytes, kMaxChunkBytes);
  const std::uint64_t total_chunks = StreamChunkCount(plan->total_bytes(), chunk_bytes);
  const std::uint64_t stream_id =
      DeriveStreamId(response.presentation_hash, plan->payload_hash, chunk_bytes);
  // A resume is honored only when it names this exact byte stream; anything
  // else (a recompile, a different chunk size) restarts from chunk 0.
  std::uint64_t resumed_from = 0;
  if (stream.resume_stream_id == stream_id && stream.resume_chunks <= total_chunks) {
    resumed_from = stream.resume_chunks;
  }

  StreamBegin begin;
  begin.stream_id = stream_id;
  begin.prefix = std::move(response);
  begin.prefix.blocks.clear();  // chunks are the delivery path
  begin.chunk_bytes = chunk_bytes;
  begin.total_chunks = total_chunks;
  begin.payload_hash = plan->payload_hash;
  begin.resumed_from = resumed_from;
  begin.manifest.reserve(plan->blocks.size());
  for (const PrefetchBlock& block : plan->blocks) {
    StreamBlockInfo info;
    info.descriptor_id = block.descriptor_id;
    info.bytes = block.bytes;
    info.first_need = block.first_need;
    begin.manifest.push_back(std::move(info));
  }

  std::vector<OutFrame> frames;
  frames.reserve(static_cast<std::size_t>(total_chunks - resumed_from) + 2);
  frames.push_back({FrameType::kStreamBegin, EncodeStreamBegin(begin, version)});
  std::uint64_t chunks_sent = 0;
  std::uint64_t bytes_sent = 0;
  bool cut = false;
  for (std::uint64_t index = resumed_from; index < total_chunks; ++index) {
    // Chunk-level chaos: a "drop" cuts the stream mid-flight (the client
    // reconnects and resumes at its chunk boundary); a "corrupt" flips
    // payload bytes *before* framing, so the frame CRC passes and only the
    // end-to-end payload hash catches it.
    if (!fault::InjectPoint("net.chunk.drop").ok()) {
      cut = true;
      break;
    }
    StreamChunk chunk;
    chunk.stream_id = stream_id;
    chunk.chunk_index = index;
    const std::uint64_t offset = index * chunk_bytes;
    chunk.payload = plan->bytes.substr(
        static_cast<std::size_t>(offset),
        static_cast<std::size_t>(std::min<std::uint64_t>(chunk_bytes,
                                                         plan->total_bytes() - offset)));
    fault::MaybeCorrupt("net.chunk.corrupt", chunk.payload);
    ++chunks_sent;
    bytes_sent += chunk.payload.size();
    frames.push_back({FrameType::kStreamChunk, EncodeStreamChunk(chunk, version)});
  }
  if (!cut) {
    StreamEnd end;
    end.stream_id = stream_id;
    end.total_chunks = total_chunks;
    end.payload_hash = plan->payload_hash;
    frames.push_back({FrameType::kStreamEnd, EncodeStreamEnd(end, version)});
  }

  streams_.fetch_add(1, std::memory_order_relaxed);
  stream_chunks_.fetch_add(chunks_sent, std::memory_order_relaxed);
  stream_bytes_.fetch_add(bytes_sent, std::memory_order_relaxed);
  stream_full_bytes_.fetch_add(plan->total_bytes(), std::memory_order_relaxed);
  if (resumed_from > 0) {
    stream_resumes_.fetch_add(1, std::memory_order_relaxed);
  }
  if (obs::Enabled()) {
    obs::GetCounter("net.server.streams").Add();
    obs::GetCounter("net.server.stream_chunks").Add(static_cast<std::int64_t>(chunks_sent));
  }
  // A cut stream closes the connection after the partial flush, exactly
  // like a mid-transfer network failure would.
  CompleteSlotFrames(conn_id, slot, std::move(frames), version, /*close_after=*/cut);
}

}  // namespace net
}  // namespace cmif
