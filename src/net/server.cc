#include "src/net/server.h"

#include <sys/socket.h>

#include <utility>

#include "src/base/string_util.h"
#include "src/fault/fault.h"
#include "src/net/presentation_wire.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"

namespace cmif {
namespace net {

NetServer::NetServer(ServeLoop& loop, NetServerOptions options)
    : loop_(loop), options_(std::move(options)) {
  if (options_.workers < 1) {
    options_.workers = 1;
  }
  if (options_.max_pending_connections < 1) {
    options_.max_pending_connections = 1;
  }
}

NetServer::~NetServer() { Stop(); }

Status NetServer::Start() {
  if (running_) {
    return FailedPreconditionError("server already started");
  }
  const ServeCorpus& corpus = loop_.corpus();
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    documents_[corpus.document(i).name] = i;
  }
  const std::vector<SystemProfile>& profiles = loop_.options().profiles;
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    profiles_[profiles[i].name] = i;
  }
  CMIF_RETURN_IF_ERROR(listener_.Listen(options_.host, options_.port, options_.accept_backlog));
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = false;
  }
  running_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  worker_threads_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    worker_threads_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::Ok();
}

void NetServer::Stop() {
  if (!running_) {
    return;
  }
  listener_.Close();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    // Unblock workers parked in connection reads. The worker owns the fd and
    // closes it only after deregistering under mu_, so these fds are live.
    for (int fd : live_fds_) {
      ::shutdown(fd, SHUT_RDWR);
    }
  }
  queue_cv_.notify_all();
  accept_thread_.join();
  for (std::thread& worker : worker_threads_) {
    worker.join();
  }
  worker_threads_.clear();
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.clear();
    if (obs::Enabled()) {
      obs::GetGauge("net.queue_depth").Set(0);
    }
  }
  running_ = false;
}

NetServer::Stats NetServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void NetServer::AcceptLoop() {
  for (;;) {
    StatusOr<Socket> accepted = listener_.Accept();
    if (!accepted.ok()) {
      return;  // listener closed (Stop) or hard listener error
    }
    Socket socket = std::move(accepted).value();
    // The accept fault site models a flaky front end: the connection is
    // dropped right after the handshake and the client retries.
    if (fault::Enabled() && !fault::InjectPoint("net.accept").ok()) {
      continue;  // socket destructor closes the connection
    }
    socket.SetTimeouts(options_.io_timeout_ms, options_.io_timeout_ms);
    socket.SetNoDelay();
    bool rejected = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        return;
      }
      if (pending_.size() >= options_.max_pending_connections) {
        rejected = true;
        ++stats_.rejected;
      } else {
        ++stats_.connections;
        pending_.push_back(std::move(socket));
        if (obs::Enabled()) {
          obs::GetGauge("net.queue_depth").Set(static_cast<std::int64_t>(pending_.size()));
        }
      }
    }
    if (rejected) {
      if (obs::Enabled()) {
        obs::GetCounter("net.rejected").Add();
      }
      // Best effort: tell the client why before closing.
      WriteFrame(socket, FrameType::kError,
                 EncodeWireStatus(ResourceExhaustedError(StrFormat(
                     "server overloaded: %zu connections pending", options_.max_pending_connections))));
    } else {
      queue_cv_.notify_one();
    }
  }
}

void NetServer::WorkerLoop() {
  for (;;) {
    Socket socket;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !pending_.empty(); });
      if (stopping_) {
        return;
      }
      socket = std::move(pending_.front());
      pending_.pop_front();
      if (obs::Enabled()) {
        obs::GetGauge("net.queue_depth").Set(static_cast<std::int64_t>(pending_.size()));
      }
      live_fds_.insert(socket.fd());
    }
    HandleConnection(std::move(socket));
  }
}

void NetServer::HandleConnection(Socket socket) {
  if (obs::Enabled()) {
    obs::GetCounter("net.server.connections").Add();
  }
  for (;;) {
    StatusOr<std::optional<Frame>> frame = ReadFrame(socket, options_.limits);
    bool drop = false;
    if (!frame.ok()) {
      // A corrupt frame gets a structured answer before the drop; transport
      // errors (EOF mid-frame, timeout, Stop's shutdown) just drop.
      if (frame.status().code() == StatusCode::kDataLoss) {
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.protocol_errors;
        }
        WriteFrame(socket, FrameType::kError, EncodeWireStatus(frame.status()));
      }
      drop = true;
    } else if (!frame->has_value()) {
      drop = true;  // clean EOF: the client is done
    } else if (!HandleFrame(socket, **frame).ok()) {
      drop = true;
    }
    if (drop) {
      std::lock_guard<std::mutex> lock(mu_);
      live_fds_.erase(socket.fd());
      break;
    }
  }
  // The fd is deregistered; Stop() can no longer shut it down, so closing
  // it here (by ~Socket) cannot race a recycled descriptor.
}

Status NetServer::HandleFrame(Socket& socket, const Frame& frame) {
  switch (frame.type) {
    case FrameType::kPing:
      return WriteFrame(socket, FrameType::kPong, frame.payload);
    case FrameType::kRequest:
      break;
    default: {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.protocol_errors;
      }
      WriteFrame(socket, FrameType::kError,
                 EncodeWireStatus(InvalidArgumentError(
                     StrFormat("unexpected %s frame", std::string(FrameTypeName(frame.type)).c_str()))));
      return InvalidArgumentError("unexpected frame type");
    }
  }

  obs::Span span("net-request");
  obs::ScopedLatency latency("net.request_ms");
  StatusOr<PresentRequest> request = DecodeRequest(frame.payload);
  if (!request.ok()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.protocol_errors;
    }
    WriteFrame(socket, FrameType::kError, EncodeWireStatus(request.status()));
    return request.status();  // kDataLoss: payload desync, drop
  }
  span.Annotate("document", request->document);
  PresentResponse response = HandleRequest(*request);
  span.Annotate("outcome", std::string(ServeOutcomeName(response.outcome)));
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.requests;
  }
  if (obs::Enabled()) {
    obs::GetCounter("net.server.requests").Add();
  }
  return WriteFrame(socket, FrameType::kResponse, EncodeResponse(response));
}

PresentResponse NetServer::HandleRequest(const PresentRequest& request) {
  PresentResponse response;
  auto doc = documents_.find(request.document);
  if (doc == documents_.end()) {
    response.error = NotFoundError("unknown document '" + request.document + "'");
    return response;
  }
  ServeRequest serve_request;
  serve_request.document = doc->second;
  if (!request.profile.empty()) {
    auto profile = profiles_.find(request.profile);
    if (profile == profiles_.end()) {
      response.error = NotFoundError("unknown profile '" + request.profile + "'");
      return response;
    }
    serve_request.profile = profile->second;
  }

  ServeResponse served = loop_.Serve(serve_request);
  response.attempts = served.attempts;
  response.cache_hit = served.cache_hit;
  response.error = served.error;
  if (!served.served() ||
      (served.outcome == ServeOutcome::kDegraded && !request.allow_degraded)) {
    response.outcome = ServeOutcome::kFailed;
    if (response.error.ok()) {
      response.error = UnavailableError("degraded response refused by request");
    }
    return response;
  }
  response.outcome = served.outcome;
  std::string body = SerializePresentation(*served.presentation, request.channels);
  response.presentation_hash = Fnv1a64(body);
  if (request.want_body) {
    response.presentation = std::move(body);
  }
  return response;
}

}  // namespace net
}  // namespace cmif
