#include "src/net/server.h"

#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/base/string_util.h"
#include "src/fault/fault.h"
#include "src/net/presentation_wire.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"
#include "src/obs/trace.h"

namespace {

std::uint64_t SteadyNowMicros() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

}  // namespace

namespace cmif {
namespace net {

NetServer::NetServer(ServeLoop& loop, NetServerOptions options)
    : loop_(loop), options_(std::move(options)) {
  if (options_.workers < 1) {
    options_.workers = 1;
  }
  if (options_.max_pending_connections < 1) {
    options_.max_pending_connections = 1;
  }
}

NetServer::~NetServer() { Stop(); }

Status NetServer::Start() {
  if (running_) {
    return FailedPreconditionError("server already started");
  }
  const ServeCorpus& corpus = loop_.corpus();
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    documents_[corpus.document(i).name] = i;
  }
  const std::vector<SystemProfile>& profiles = loop_.options().profiles;
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    profiles_[profiles[i].name] = i;
  }
  CMIF_RETURN_IF_ERROR(listener_.Listen(options_.host, options_.port, options_.accept_backlog));
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = false;
  }
  running_ = true;
  started_us_ = SteadyNowMicros();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  worker_threads_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    worker_threads_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::Ok();
}

void NetServer::Stop() {
  if (!running_) {
    return;
  }
  listener_.Close();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    // Unblock workers parked in connection reads. The worker owns the fd and
    // closes it only after deregistering under mu_, so these fds are live.
    for (int fd : live_fds_) {
      ::shutdown(fd, SHUT_RDWR);
    }
  }
  queue_cv_.notify_all();
  accept_thread_.join();
  for (std::thread& worker : worker_threads_) {
    worker.join();
  }
  worker_threads_.clear();
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.clear();
    if (obs::Enabled()) {
      obs::GetGauge("net.queue_depth").Set(0);
    }
  }
  running_ = false;
}

NetServer::Stats NetServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void NetServer::AcceptLoop() {
  for (;;) {
    StatusOr<Socket> accepted = listener_.Accept();
    if (!accepted.ok()) {
      return;  // listener closed (Stop) or hard listener error
    }
    Socket socket = std::move(accepted).value();
    // The accept fault site models a flaky front end: the connection is
    // dropped right after the handshake and the client retries.
    if (fault::Enabled() && !fault::InjectPoint("net.accept").ok()) {
      continue;  // socket destructor closes the connection
    }
    socket.SetTimeouts(options_.io_timeout_ms, options_.io_timeout_ms);
    socket.SetNoDelay();
    bool rejected = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        return;
      }
      if (pending_.size() >= options_.max_pending_connections) {
        rejected = true;
        ++stats_.rejected;
      } else {
        ++stats_.connections;
        pending_.push_back(std::move(socket));
        if (obs::Enabled()) {
          obs::GetGauge("net.queue_depth").Set(static_cast<std::int64_t>(pending_.size()));
        }
      }
    }
    if (rejected) {
      if (obs::Enabled()) {
        obs::GetCounter("net.rejected").Add();
      }
      // Best effort: tell the client why before closing.
      WriteFrame(socket, FrameType::kError,
                 EncodeWireStatus(ResourceExhaustedError(StrFormat(
                     "server overloaded: %zu connections pending", options_.max_pending_connections))));
    } else {
      queue_cv_.notify_one();
    }
  }
}

void NetServer::WorkerLoop() {
  for (;;) {
    Socket socket;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !pending_.empty(); });
      if (stopping_) {
        return;
      }
      socket = std::move(pending_.front());
      pending_.pop_front();
      if (obs::Enabled()) {
        obs::GetGauge("net.queue_depth").Set(static_cast<std::int64_t>(pending_.size()));
      }
      live_fds_.insert(socket.fd());
    }
    HandleConnection(std::move(socket));
  }
}

void NetServer::HandleConnection(Socket socket) {
  if (obs::Enabled()) {
    obs::GetCounter("net.server.connections").Add();
  }
  for (;;) {
    StatusOr<std::optional<Frame>> frame = ReadFrame(socket, options_.limits);
    bool drop = false;
    if (!frame.ok()) {
      // A corrupt frame gets a structured answer before the drop; transport
      // errors (EOF mid-frame, timeout, Stop's shutdown) just drop.
      if (frame.status().code() == StatusCode::kDataLoss) {
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.protocol_errors;
        }
        WriteFrame(socket, FrameType::kError, EncodeWireStatus(frame.status()));
      }
      drop = true;
    } else if (!frame->has_value()) {
      drop = true;  // clean EOF: the client is done
    } else if (!HandleFrame(socket, **frame).ok()) {
      drop = true;
    }
    if (drop) {
      std::lock_guard<std::mutex> lock(mu_);
      live_fds_.erase(socket.fd());
      break;
    }
  }
  // The fd is deregistered; Stop() can no longer shut it down, so closing
  // it here (by ~Socket) cannot race a recycled descriptor.
}

Status NetServer::HandleFrame(Socket& socket, const Frame& frame) {
  switch (frame.type) {
    case FrameType::kPing:
      return WriteFrame(socket, FrameType::kPong, frame.payload);
    case FrameType::kStatsRequest:
      // A telemetry probe, not a compile: answered inline with a snapshot of
      // the live counters so monitoring never queues behind a slow request.
      return WriteFrame(socket, FrameType::kStatsResponse,
                        EncodeStatsSnapshot(Snapshot()));
    case FrameType::kRequest:
      break;
    default: {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.protocol_errors;
      }
      WriteFrame(socket, FrameType::kError,
                 EncodeWireStatus(InvalidArgumentError(
                     StrFormat("unexpected %s frame", std::string(FrameTypeName(frame.type)).c_str()))));
      return InvalidArgumentError("unexpected frame type");
    }
  }

  auto start = std::chrono::steady_clock::now();
  StatusOr<PresentRequest> request = DecodeRequest(frame.payload);
  if (!request.ok()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.protocol_errors;
    }
    WriteFrame(socket, FrameType::kError, EncodeWireStatus(request.status()));
    return request.status();  // kDataLoss: payload desync, drop
  }

  // Adopt the client's trace context, or start a server-local trace for the
  // configured fraction of untraced requests. The context is installed for
  // the whole handling scope so every span below (serve, pipeline, sched)
  // carries the trace id.
  obs::TraceContext ctx = request->trace;
  if (!ctx.valid() && options_.trace_sample_rate > 0) {
    ctx = obs::NewTrace(options_.trace_sample_rate);
  }
  PresentResponse response;
  bool sampled = false;
  {
    obs::ScopedTrace scoped_trace(ctx);
    obs::Span span("net-request");
    obs::ScopedLatency latency("net.request_ms");
    span.Annotate("document", request->document);
    response = HandleRequest(*request);
    span.Annotate("outcome", std::string(ServeOutcomeName(response.outcome)));
    // Read back through CurrentTrace(): an anomaly during handling (retry,
    // breaker open, degraded compile) force-samples an unsampled trace.
    sampled = ctx.valid() && obs::CurrentTrace().sampled;
  }
  double elapsed_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
          .count();
  request_ms_.Record(elapsed_ms);
  if (response.outcome == ServeOutcome::kFailed) {
    failed_.fetch_add(1, std::memory_order_relaxed);
  } else if (response.outcome == ServeOutcome::kDegraded) {
    degraded_.fetch_add(1, std::memory_order_relaxed);
  }

  if (sampled && obs::Enabled()) {
    // Harvest this trace's spans (removing them — a long-lived server's span
    // memory stays bounded) and hand them back on the response.
    std::vector<obs::SpanRecord> harvested = obs::TakeTraceSpans(ctx.trace_id);
    std::sort(harvested.begin(), harvested.end(),
              [](const obs::SpanRecord& a, const obs::SpanRecord& b) {
                return a.start_us < b.start_us;
              });
    if (harvested.size() > options_.max_response_spans) {
      harvested.resize(options_.max_response_spans);
    }
    response.server_spans.reserve(harvested.size());
    for (const obs::SpanRecord& record : harvested) {
      WireSpan wire;
      wire.name = record.name;
      wire.id = record.id;
      wire.parent_id = record.parent_id;
      wire.trace_id = record.trace_id;
      wire.start_us = record.start_us;
      wire.duration_us = record.duration_us;
      wire.tid = record.tid;
      response.server_spans.push_back(std::move(wire));
    }
    traces_sampled_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    if (exemplars_.size() < kMaxExemplars) {
      exemplars_.push_back(ctx.trace_id);
    } else {
      exemplars_[exemplar_next_ % kMaxExemplars] = ctx.trace_id;
    }
    ++exemplar_next_;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.requests;
  }
  if (obs::Enabled()) {
    static obs::Counter& requests = obs::GetCounter("net.server.requests");
    requests.Add();
  }
  return WriteFrame(socket, FrameType::kResponse, EncodeResponse(response));
}

StatsSnapshot NetServer::Snapshot() const {
  StatsSnapshot snapshot;
  snapshot.uptime_us = running_ ? SteadyNowMicros() - started_us_ : 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot.connections = stats_.connections;
    snapshot.rejected = stats_.rejected;
    snapshot.requests = stats_.requests;
    snapshot.protocol_errors = stats_.protocol_errors;
    snapshot.queue_depth = pending_.size();
    snapshot.exemplar_trace_ids = exemplars_;
  }
  snapshot.failed = failed_.load(std::memory_order_relaxed);
  snapshot.degraded = degraded_.load(std::memory_order_relaxed);
  snapshot.request_count = request_ms_.count();
  snapshot.request_ms_min = request_ms_.min();
  snapshot.request_ms_max = request_ms_.max();
  snapshot.request_ms_mean = request_ms_.mean();
  snapshot.request_ms_p50 = request_ms_.Percentile(50);
  snapshot.request_ms_p95 = request_ms_.Percentile(95);
  snapshot.request_ms_p99 = request_ms_.Percentile(99);
  const MappingCache::Stats cache = loop_.cache().stats();
  snapshot.cache_hits = static_cast<std::uint64_t>(cache.hits);
  snapshot.cache_misses = static_cast<std::uint64_t>(cache.misses);
  snapshot.cache_stale_hits = static_cast<std::uint64_t>(cache.stale_hits);
  snapshot.cache_evictions = static_cast<std::uint64_t>(cache.evictions);
  snapshot.cache_entries = static_cast<std::uint64_t>(cache.entries);
  for (const auto& [site, state] : loop_.breakers().States()) {
    snapshot.breakers.emplace_back(site, static_cast<std::uint8_t>(state));
  }
  snapshot.breaker_opens = static_cast<std::uint64_t>(loop_.breakers().TotalOpens());
  snapshot.anomalies = obs::AnomalyCount();
  snapshot.traces_sampled = traces_sampled_.load(std::memory_order_relaxed);
  snapshot.sample_rate = options_.trace_sample_rate;
  return snapshot;
}

PresentResponse NetServer::HandleRequest(const PresentRequest& request) {
  PresentResponse response;
  auto doc = documents_.find(request.document);
  if (doc == documents_.end()) {
    response.error = NotFoundError("unknown document '" + request.document + "'");
    return response;
  }
  ServeRequest serve_request;
  serve_request.document = doc->second;
  if (!request.profile.empty()) {
    auto profile = profiles_.find(request.profile);
    if (profile == profiles_.end()) {
      response.error = NotFoundError("unknown profile '" + request.profile + "'");
      return response;
    }
    serve_request.profile = profile->second;
  }

  ServeResponse served = loop_.Serve(serve_request);
  response.attempts = served.attempts;
  response.cache_hit = served.cache_hit;
  response.error = served.error;
  if (!served.served() ||
      (served.outcome == ServeOutcome::kDegraded && !request.allow_degraded)) {
    response.outcome = ServeOutcome::kFailed;
    if (response.error.ok()) {
      response.error = UnavailableError("degraded response refused by request");
    }
    return response;
  }
  response.outcome = served.outcome;
  std::string body = SerializePresentation(*served.presentation, request.channels);
  response.presentation_hash = Fnv1a64(body);
  if (request.want_body) {
    response.presentation = std::move(body);
  }
  return response;
}

}  // namespace net
}  // namespace cmif
