#include "src/net/presentation_wire.h"

#include <algorithm>
#include <unordered_set>

#include "src/base/string_util.h"
#include "src/doc/node.h"
#include "src/media/media_type.h"

namespace cmif {
namespace net {
namespace {

bool ChannelSelected(const std::vector<std::string>& channels, std::string_view channel) {
  if (channels.empty()) {
    return true;
  }
  return std::find(channels.begin(), channels.end(), channel) != channels.end();
}

void AppendTime(std::string& out, MediaTime t) {
  // Exact rational, never a float: "num/den" (den omitted when 1).
  out += t.ToString();
}

}  // namespace

std::string SerializePresentation(const CompiledPresentation& presentation,
                                  const std::vector<std::string>& channels) {
  std::string out;
  out += "(presentation\n";

  // Map bindings, in map order, restricted to the selection.
  out += " (map\n";
  for (const ChannelBinding& binding : presentation.map.bindings()) {
    if (!ChannelSelected(channels, binding.channel)) {
      continue;
    }
    if (!binding.region.empty()) {
      out += StrFormat("  (bind %s region %s)\n", QuoteString(binding.channel).c_str(),
                       QuoteString(binding.region).c_str());
    } else {
      out += StrFormat("  (bind %s speaker %s volume %d)\n", QuoteString(binding.channel).c_str(),
                       QuoteString(binding.speaker).c_str(), binding.volume);
    }
  }
  out += " )\n";

  // Schedule first collects which descriptors a selection keeps, so the
  // filter section below can be restricted consistently.
  std::unordered_set<std::string> kept_descriptors;
  std::string schedule_text;
  schedule_text += StrFormat(" (schedule feasible %d makespan ",
                             presentation.schedule.feasible ? 1 : 0);
  AppendTime(schedule_text, presentation.schedule.schedule.MakeSpan());
  schedule_text += "\n";
  for (const ScheduledEvent& scheduled : presentation.schedule.schedule.events()) {
    if (!ChannelSelected(channels, scheduled.event.channel)) {
      continue;
    }
    if (!scheduled.event.descriptor_id.empty()) {
      kept_descriptors.insert(scheduled.event.descriptor_id);
    }
    schedule_text += StrFormat(
        "  (event %s channel %s medium %s descriptor %s begin ",
        QuoteString(scheduled.event.node ? scheduled.event.node->DisplayPath() : "").c_str(),
        QuoteString(scheduled.event.channel).c_str(),
        std::string(MediaTypeName(scheduled.event.medium)).c_str(),
        QuoteString(scheduled.event.descriptor_id).c_str());
    AppendTime(schedule_text, scheduled.begin);
    schedule_text += " end ";
    AppendTime(schedule_text, scheduled.end);
    schedule_text += ")\n";
  }
  for (const std::string& arc : presentation.schedule.dropped_arcs) {
    schedule_text += StrFormat("  (dropped-arc %s)\n", QuoteString(arc).c_str());
  }
  schedule_text += " )\n";

  // Filter plans, in plan order; only plans a selected event still uses.
  out += " (filter\n";
  for (const FilterPlan& plan : presentation.filter.plans) {
    if (!channels.empty() && kept_descriptors.count(plan.descriptor_id) == 0) {
      continue;
    }
    out += StrFormat("  (plan %s bytes %lld -> %lld supported %d",
                     QuoteString(plan.descriptor_id).c_str(),
                     static_cast<long long>(plan.bytes_before),
                     static_cast<long long>(plan.bytes_after), plan.supported ? 1 : 0);
    for (const FilterOp& op : plan.ops) {
      out += StrFormat(" (op %s %d %d)", std::string(FilterOpKindName(op.kind)).c_str(), op.arg1,
                       op.arg2);
    }
    out += ")\n";
  }
  out += " )\n";

  out += schedule_text;
  out += ")\n";
  return out;
}

std::uint64_t PresentationHash(const CompiledPresentation& presentation,
                               const std::vector<std::string>& channels) {
  return Fnv1a64(SerializePresentation(presentation, channels));
}

}  // namespace net
}  // namespace cmif
