#include "src/attr/attr_list.h"

namespace cmif {

AttrList AttrList::FromAttrs(std::vector<Attr> attrs) {
  AttrList out;
  for (Attr& attr : attrs) {
    out.Set(std::move(attr.name), std::move(attr.value));
  }
  return out;
}

Status AttrList::Add(std::string name, AttrValue value) {
  if (Has(name)) {
    return AlreadyExistsError("attribute '" + name + "' already present in list");
  }
  attrs_.push_back(Attr{std::move(name), std::move(value)});
  return Status::Ok();
}

void AttrList::Set(std::string name, AttrValue value) {
  if (AttrValue* existing = FindMutable(name)) {
    *existing = std::move(value);
    return;
  }
  attrs_.push_back(Attr{std::move(name), std::move(value)});
}

bool AttrList::Remove(std::string_view name) {
  for (auto it = attrs_.begin(); it != attrs_.end(); ++it) {
    if (it->name == name) {
      attrs_.erase(it);
      return true;
    }
  }
  return false;
}

const AttrValue* AttrList::Find(std::string_view name) const {
  for (const Attr& attr : attrs_) {
    if (attr.name == name) {
      return &attr.value;
    }
  }
  return nullptr;
}

AttrValue* AttrList::FindMutable(std::string_view name) {
  for (Attr& attr : attrs_) {
    if (attr.name == name) {
      return &attr.value;
    }
  }
  return nullptr;
}

namespace {
Status MissingError(std::string_view name) {
  return NotFoundError("attribute '" + std::string(name) + "' not present");
}
}  // namespace

StatusOr<std::string> AttrList::GetId(std::string_view name) const {
  const AttrValue* v = Find(name);
  if (v == nullptr) {
    return MissingError(name);
  }
  return v->AsId();
}

StatusOr<std::int64_t> AttrList::GetNumber(std::string_view name) const {
  const AttrValue* v = Find(name);
  if (v == nullptr) {
    return MissingError(name);
  }
  return v->AsNumber();
}

StatusOr<std::string> AttrList::GetString(std::string_view name) const {
  const AttrValue* v = Find(name);
  if (v == nullptr) {
    return MissingError(name);
  }
  return v->AsString();
}

StatusOr<MediaTime> AttrList::GetTime(std::string_view name) const {
  const AttrValue* v = Find(name);
  if (v == nullptr) {
    return MissingError(name);
  }
  return v->AsTime();
}

std::string AttrList::GetIdOr(std::string_view name, std::string fallback) const {
  const AttrValue* v = Find(name);
  if (v == nullptr || !v->is_id()) {
    return fallback;
  }
  return v->id();
}

std::int64_t AttrList::GetNumberOr(std::string_view name, std::int64_t fallback) const {
  const AttrValue* v = Find(name);
  if (v == nullptr || !v->is_number()) {
    return fallback;
  }
  return v->number();
}

std::string AttrList::GetStringOr(std::string_view name, std::string fallback) const {
  const AttrValue* v = Find(name);
  if (v == nullptr || !v->is_string()) {
    return fallback;
  }
  return v->string();
}

MediaTime AttrList::GetTimeOr(std::string_view name, MediaTime fallback) const {
  const AttrValue* v = Find(name);
  if (v == nullptr) {
    return fallback;
  }
  auto t = v->AsTime();
  return t.ok() ? *t : fallback;
}

void AttrList::MergeFrom(const AttrList& overlay) {
  for (const Attr& attr : overlay.attrs_) {
    Set(attr.name, attr.value);
  }
}

void AttrList::FillDefaultsFrom(const AttrList& defaults) {
  for (const Attr& attr : defaults.attrs_) {
    if (!Has(attr.name)) {
      attrs_.push_back(attr);
    }
  }
}

std::string AttrList::ToString() const {
  return AttrValue::List(attrs_).ToString();
}

}  // namespace cmif
