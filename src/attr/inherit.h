// Attribute inheritance. "Some attributes set properties that are 'inherited'
// by children (and arbitrary levels of grandchildren) of the node on which
// they are set unless explicitly overridden" (section 5.2). This module works
// on chains of attribute lists (root → ... → node) so it stays independent of
// the document tree representation in src/doc.
#ifndef SRC_ATTR_INHERIT_H_
#define SRC_ATTR_INHERIT_H_

#include <optional>
#include <span>

#include "src/attr/attr_list.h"
#include "src/attr/registry.h"
#include "src/attr/style.h"
#include "src/base/status.h"

namespace cmif {

// The attribute lists from the root (front) down to the node (back).
using AttrChain = std::span<const AttrList* const>;

// Effective value of `name` at the node at the end of `chain`:
//   1. the node's own attribute, else the node's expanded styles,
//   2. if `name` is inherited per `registry`: the nearest ancestor's own
//      attribute or expanded-style attribute, walking toward the root.
// Returns nullopt when unset everywhere. Style expansion errors propagate.
StatusOr<std::optional<AttrValue>> ResolveAttribute(AttrChain chain, std::string_view name,
                                                    const AttrRegistry& registry,
                                                    const StyleDictionary& styles);

// The node's full effective attribute list: expanded styles overlaid by own
// attributes, plus every inherited attribute visible from ancestors that the
// node does not override. The "style" attribute itself is consumed, never
// emitted.
StatusOr<AttrList> EffectiveAttrs(AttrChain chain, const AttrRegistry& registry,
                                  const StyleDictionary& styles);

}  // namespace cmif

#endif  // SRC_ATTR_INHERIT_H_
