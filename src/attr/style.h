// Style dictionary. "There is one attribute, 'style', which is a shorthand
// for placing a set of attributes on a node. ... Style definitions may refer
// to other style definitions as long as no style refers to itself, directly
// or indirectly" (section 5.2, Figure 7).
#ifndef SRC_ATTR_STYLE_H_
#define SRC_ATTR_STYLE_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/attr/attr_list.h"
#include "src/base/status.h"

namespace cmif {

// Named sets of attributes, normally stored on the root node's style_dict
// attribute. A definition body may itself carry a "style" attribute naming
// base styles; expansion is recursive with cycle detection.
class StyleDictionary {
 public:
  StyleDictionary() = default;

  // Defines a style; error if the name exists or is not a valid ID.
  Status Define(std::string name, AttrList body);

  // The raw (unexpanded) definition, or nullptr.
  const AttrList* Find(std::string_view name) const;
  bool Has(std::string_view name) const { return Find(name) != nullptr; }
  std::size_t size() const { return styles_.size(); }

  // Fully expands a style: base styles first (in listed order), own
  // attributes override. Errors: NotFound for unknown names,
  // FailedPrecondition for cyclic definitions. The returned list never
  // contains a "style" attribute.
  StatusOr<AttrList> Expand(std::string_view name) const;

  // Expands a node's "style" attribute value: either a single ID or a LIST
  // whose entries are ID-valued attributes; later styles override earlier.
  StatusOr<AttrList> ExpandStyleValue(const AttrValue& value) const;

  // Checks every definition for unknown references and cycles.
  Status Validate() const;

  // Conversion to/from the root node's style_dict attribute value: a LIST
  // of (style_name -> LIST body) attributes.
  AttrValue ToAttrValue() const;
  static StatusOr<StyleDictionary> FromAttrValue(const AttrValue& value);

  // Names in definition order.
  std::vector<std::string> Names() const;

 private:
  Status ExpandInto(std::string_view name, AttrList& out,
                    std::vector<std::string>& in_progress) const;

  std::vector<std::pair<std::string, AttrList>> styles_;
};

}  // namespace cmif

#endif  // SRC_ATTR_STYLE_H_
