#include "src/attr/inherit.h"

namespace cmif {
namespace {

// The level's own attributes overlaid on its expanded styles.
StatusOr<AttrList> LevelAttrs(const AttrList& own, const StyleDictionary& styles) {
  AttrList out;
  if (const AttrValue* style = own.Find(kAttrStyle)) {
    CMIF_ASSIGN_OR_RETURN(out, styles.ExpandStyleValue(*style));
  }
  for (const Attr& attr : own.attrs()) {
    if (attr.name != kAttrStyle) {
      out.Set(attr.name, attr.value);
    }
  }
  return out;
}

}  // namespace

StatusOr<std::optional<AttrValue>> ResolveAttribute(AttrChain chain, std::string_view name,
                                                    const AttrRegistry& registry,
                                                    const StyleDictionary& styles) {
  if (chain.empty()) {
    return std::optional<AttrValue>();
  }
  bool inherited = registry.IsInherited(name);
  // Walk from the node toward the root; the nearest setting wins.
  for (std::size_t i = chain.size(); i-- > 0;) {
    const AttrList& own = *chain[i];
    if (const AttrValue* v = own.Find(name)) {
      return std::optional<AttrValue>(*v);
    }
    if (const AttrValue* style = own.Find(kAttrStyle)) {
      CMIF_ASSIGN_OR_RETURN(AttrList expanded, styles.ExpandStyleValue(*style));
      if (const AttrValue* v = expanded.Find(name)) {
        return std::optional<AttrValue>(*v);
      }
    }
    if (!inherited) {
      break;  // only the node's own level applies
    }
  }
  return std::optional<AttrValue>();
}

StatusOr<AttrList> EffectiveAttrs(AttrChain chain, const AttrRegistry& registry,
                                  const StyleDictionary& styles) {
  AttrList out;
  if (chain.empty()) {
    return out;
  }
  // Ancestors first (root outward), contributing only inherited attributes;
  // then the node's own level contributes everything. Nearer levels override.
  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    CMIF_ASSIGN_OR_RETURN(AttrList level, LevelAttrs(*chain[i], styles));
    for (const Attr& attr : level.attrs()) {
      if (registry.IsInherited(attr.name)) {
        out.Set(attr.name, attr.value);
      }
    }
  }
  CMIF_ASSIGN_OR_RETURN(AttrList own, LevelAttrs(*chain.back(), styles));
  out.MergeFrom(own);
  return out;
}

}  // namespace cmif
