#include "src/attr/registry.h"

#include <sstream>

namespace cmif {

const AttrRegistry& AttrRegistry::Standard() {
  static const AttrRegistry* const kStandard = [] {
    auto* r = new AttrRegistry();
    auto add = [r](std::string_view name, std::optional<AttrKind> kind, bool inherited,
                   unsigned placement, std::string_view description) {
      Status s = r->Register(AttrSpec{std::string(name), kind, inherited, placement,
                                      std::string(description)});
      (void)s;
    };
    add(kAttrName, AttrKind::kId, false, kOnAnyNode,
        "Node name; optional, unique among direct siblings; used by sync arcs");
    add(kAttrStyleDict, AttrKind::kList, false, kOnRoot,
        "Defines named styles; root node only; definitions may not be cyclic");
    add(kAttrStyle, std::nullopt, false, kOnAnyNode,
        "One or more style names applied to this node, looked up in the root style_dict");
    add(kAttrChannelDict, AttrKind::kList, false, kOnRoot,
        "Defines synchronization channels and their media; root node only");
    add(kAttrChannel, AttrKind::kId, true, kOnAnyNode,
        "Channel this node's data is directed to; inherited unless overridden");
    add(kAttrFile, AttrKind::kString, true, kOnAnyNode,
        "Data descriptor used by external nodes; inherited so several nodes share one file");
    add(kAttrTFormatting, AttrKind::kList, false, kOnAnyNode,
        "Text formatting shorthand (font, size, indent, vspace); prefer styles");
    add(kAttrSlice, AttrKind::kList, false, kOnExt,
        "Subsection (begin/length) of a binary file used by an external node");
    add(kAttrCrop, AttrKind::kList, false, kOnLeaf, "Subimage (x y w h) of an image");
    add(kAttrClip, AttrKind::kList, false, kOnLeaf, "Part (begin/length) of a sound fragment");
    add(kAttrDuration, AttrKind::kTime, false, kOnAnyNode,
        "Presentation duration of this node's event; overrides the descriptor length");
    add(kAttrMedium, AttrKind::kId, false, kOnImm,
        "Medium of immediate data (default text)");
    add(kAttrTitle, AttrKind::kString, false, kOnAnyNode, "Human-readable title");
    return r;
  }();
  return *kStandard;
}

Status AttrRegistry::Register(AttrSpec spec) {
  if (Find(spec.name) != nullptr) {
    return AlreadyExistsError("attribute spec '" + spec.name + "' already registered");
  }
  specs_.push_back(std::move(spec));
  return Status::Ok();
}

const AttrSpec* AttrRegistry::Find(std::string_view name) const {
  for (const AttrSpec& spec : specs_) {
    if (spec.name == name) {
      return &spec;
    }
  }
  return nullptr;
}

bool AttrRegistry::IsInherited(std::string_view name) const {
  const AttrSpec* spec = Find(name);
  return spec != nullptr && spec->inherited;
}

std::string AttrRegistry::ToTable() const {
  std::ostringstream os;
  os << "Attribute        Kind     Inh  Description\n";
  os << "---------------  -------  ---  -----------\n";
  for (const AttrSpec& spec : specs_) {
    std::string kind = spec.kind.has_value() ? std::string(AttrKindName(*spec.kind)) : "any";
    os << spec.name;
    for (std::size_t i = spec.name.size(); i < 17; ++i) {
      os << ' ';
    }
    os << kind;
    for (std::size_t i = kind.size(); i < 9; ++i) {
      os << ' ';
    }
    os << (spec.inherited ? "yes  " : "no   ") << spec.description << "\n";
  }
  return os.str();
}

}  // namespace cmif
