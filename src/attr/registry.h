// The standard-attribute registry (paper Figure 7). CMIF "makes only minimal
// assumptions about the types of attributes" — arbitrary names are legal and
// passed through uninterpreted — but the standard attributes carry defined
// semantics: an expected value kind, an inheritance rule, and placement
// restrictions ("some attributes are allowed on all nodes; others only on
// certain node types", section 5.2). The validator consults this registry.
#ifndef SRC_ATTR_REGISTRY_H_
#define SRC_ATTR_REGISTRY_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/attr/value.h"
#include "src/base/status.h"

namespace cmif {

// Placement bits: which node kinds an attribute may appear on.
inline constexpr unsigned kOnRoot = 1u << 0;  // the root node only
inline constexpr unsigned kOnSeq = 1u << 1;
inline constexpr unsigned kOnPar = 1u << 2;
inline constexpr unsigned kOnExt = 1u << 3;
inline constexpr unsigned kOnImm = 1u << 4;
inline constexpr unsigned kOnLeaf = kOnExt | kOnImm;
inline constexpr unsigned kOnAnyNode = kOnRoot | kOnSeq | kOnPar | kOnExt | kOnImm;

// Standard attribute names (Figure 7, plus the implementation-defined
// duration/medium/title used throughout this library).
inline constexpr std::string_view kAttrName = "name";
inline constexpr std::string_view kAttrStyleDict = "style_dict";
inline constexpr std::string_view kAttrStyle = "style";
inline constexpr std::string_view kAttrChannelDict = "channel_dict";
inline constexpr std::string_view kAttrChannel = "channel";
inline constexpr std::string_view kAttrFile = "file";
inline constexpr std::string_view kAttrTFormatting = "t_formatting";
inline constexpr std::string_view kAttrSlice = "slice";
inline constexpr std::string_view kAttrCrop = "crop";
inline constexpr std::string_view kAttrClip = "clip";
inline constexpr std::string_view kAttrDuration = "duration";
inline constexpr std::string_view kAttrMedium = "medium";
inline constexpr std::string_view kAttrTitle = "title";

// The registered semantics of one standard attribute.
struct AttrSpec {
  std::string name;
  // Expected value kind; nullopt means any kind is accepted.
  std::optional<AttrKind> kind;
  // True if the attribute propagates to children unless overridden.
  bool inherited = false;
  // Bitmask of kOn* placement flags.
  unsigned placement = kOnAnyNode;
  // One-line human description (Figure 7's right column).
  std::string description;
};

// A set of attribute specs. `Standard()` holds the Figure-7 table; callers
// may build extended registries for application-specific attributes.
class AttrRegistry {
 public:
  AttrRegistry() = default;

  // The built-in standard registry (Figure 7 + duration/medium/title).
  static const AttrRegistry& Standard();

  // Registers a spec; error if the name is already registered.
  Status Register(AttrSpec spec);

  // nullptr when the name is not a registered standard attribute. Unknown
  // attributes are NOT errors — CMIF passes them through.
  const AttrSpec* Find(std::string_view name) const;

  // True if the attribute is marked inherited. Unknown attributes do not
  // inherit.
  bool IsInherited(std::string_view name) const;

  const std::vector<AttrSpec>& specs() const { return specs_; }

  // Renders the registry as the Figure-7 style two-column table.
  std::string ToTable() const;

 private:
  std::vector<AttrSpec> specs_;
};

}  // namespace cmif

#endif  // SRC_ATTR_REGISTRY_H_
