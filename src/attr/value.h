// Attribute values. Section 5.2 of the paper defines four value forms:
// ID (a word without embedded spaces), NUMBER, STRING (quoted, spaces
// allowed), and value* (a set of pointers to other attributes, i.e. a nested
// attribute list). We add TIME, an exact rational used by durations, offsets
// and delays, so that timing never round-trips through floating point.
#ifndef SRC_ATTR_VALUE_H_
#define SRC_ATTR_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "src/base/media_time.h"
#include "src/base/status.h"

namespace cmif {

class AttrValue;

// One named attribute. Names are IDs; "each name may occur at most once in
// each list for each node" (section 5.2) — AttrList enforces that.
struct Attr;

// The kind tag of an AttrValue.
enum class AttrKind {
  kId = 0,
  kNumber,
  kString,
  kTime,
  kList,
};

// Human-readable kind name ("ID", "NUMBER", ...).
std::string_view AttrKindName(AttrKind kind);

// A strongly-typed ID (distinct from STRING in the concrete syntax).
struct IdValue {
  std::string value;
  bool operator==(const IdValue& other) const = default;
};

// A tagged value: ID | NUMBER | STRING | TIME | nested attribute list.
class AttrValue {
 public:
  // Defaults to the empty string value.
  AttrValue() : value_(std::string()) {}

  static AttrValue Id(std::string id) { return AttrValue(IdValue{std::move(id)}); }
  static AttrValue Number(std::int64_t n) { return AttrValue(n); }
  static AttrValue String(std::string s) { return AttrValue(std::move(s)); }
  static AttrValue Time(MediaTime t) { return AttrValue(t); }
  static AttrValue List(std::vector<Attr> attrs);

  AttrKind kind() const;

  bool is_id() const { return kind() == AttrKind::kId; }
  bool is_number() const { return kind() == AttrKind::kNumber; }
  bool is_string() const { return kind() == AttrKind::kString; }
  bool is_time() const { return kind() == AttrKind::kTime; }
  bool is_list() const { return kind() == AttrKind::kList; }

  // Unchecked accessors: the caller must have verified the kind.
  const std::string& id() const { return std::get<IdValue>(value_).value; }
  std::int64_t number() const { return std::get<std::int64_t>(value_); }
  const std::string& string() const { return std::get<std::string>(value_); }
  MediaTime time() const { return std::get<MediaTime>(value_); }
  const std::vector<Attr>& list() const;
  std::vector<Attr>& mutable_list();

  // Checked accessors, for callers handling untrusted documents.
  StatusOr<std::string> AsId() const;
  StatusOr<std::int64_t> AsNumber() const;
  StatusOr<std::string> AsString() const;
  StatusOr<MediaTime> AsTime() const;

  // Deep structural equality.
  bool operator==(const AttrValue& other) const;
  bool operator!=(const AttrValue& other) const { return !(*this == other); }

  // Concrete-syntax rendering, e.g. `"a string"`, `12`, `3/25`, `(a 1 b 2)`.
  std::string ToString() const;

 private:
  template <typename T>
  explicit AttrValue(T v) : value_(std::move(v)) {}

  std::variant<IdValue, std::int64_t, std::string, MediaTime, std::vector<Attr>> value_;
};

struct Attr {
  std::string name;
  AttrValue value;
  bool operator==(const Attr& other) const { return name == other.name && value == other.value; }
};

}  // namespace cmif

#endif  // SRC_ATTR_VALUE_H_
