#include "src/attr/value.h"

#include "src/base/string_util.h"

namespace cmif {

std::string_view AttrKindName(AttrKind kind) {
  switch (kind) {
    case AttrKind::kId:
      return "ID";
    case AttrKind::kNumber:
      return "NUMBER";
    case AttrKind::kString:
      return "STRING";
    case AttrKind::kTime:
      return "TIME";
    case AttrKind::kList:
      return "LIST";
  }
  return "?";
}

AttrValue AttrValue::List(std::vector<Attr> attrs) { return AttrValue(std::move(attrs)); }

AttrKind AttrValue::kind() const {
  return static_cast<AttrKind>(value_.index());
}

const std::vector<Attr>& AttrValue::list() const { return std::get<std::vector<Attr>>(value_); }

std::vector<Attr>& AttrValue::mutable_list() { return std::get<std::vector<Attr>>(value_); }

StatusOr<std::string> AttrValue::AsId() const {
  if (!is_id()) {
    return InvalidArgumentError(std::string("expected ID value, got ") +
                                std::string(AttrKindName(kind())));
  }
  return id();
}

StatusOr<std::int64_t> AttrValue::AsNumber() const {
  if (!is_number()) {
    return InvalidArgumentError(std::string("expected NUMBER value, got ") +
                                std::string(AttrKindName(kind())));
  }
  return number();
}

StatusOr<std::string> AttrValue::AsString() const {
  if (!is_string()) {
    return InvalidArgumentError(std::string("expected STRING value, got ") +
                                std::string(AttrKindName(kind())));
  }
  return string();
}

StatusOr<MediaTime> AttrValue::AsTime() const {
  if (is_time()) {
    return time();
  }
  if (is_number()) {
    // Whole-second NUMBERs are accepted where a TIME is expected.
    return MediaTime::Seconds(number());
  }
  return InvalidArgumentError(std::string("expected TIME value, got ") +
                              std::string(AttrKindName(kind())));
}

bool AttrValue::operator==(const AttrValue& other) const { return value_ == other.value_; }

std::string AttrValue::ToString() const {
  switch (kind()) {
    case AttrKind::kId:
      return id();
    case AttrKind::kNumber:
      return std::to_string(number());
    case AttrKind::kString:
      return QuoteString(string());
    case AttrKind::kTime: {
      // Distinguish whole-second TIMEs from NUMBERs with an explicit "/1".
      MediaTime t = time();
      if (t.den() == 1) {
        return std::to_string(t.num()) + "/1";
      }
      return t.ToString();
    }
    case AttrKind::kList: {
      std::string out = "(";
      bool first = true;
      for (const Attr& attr : list()) {
        if (!first) {
          out += ' ';
        }
        first = false;
        out += attr.name;
        out += ' ';
        out += attr.value.ToString();
      }
      out += ')';
      return out;
    }
  }
  return "?";
}

}  // namespace cmif
