#include "src/attr/style.h"

#include <algorithm>

#include "src/attr/registry.h"
#include "src/base/string_util.h"

namespace cmif {

Status StyleDictionary::Define(std::string name, AttrList body) {
  if (!IsValidId(name)) {
    return InvalidArgumentError("style name '" + name + "' is not a valid ID");
  }
  if (Has(name)) {
    return AlreadyExistsError("style '" + name + "' already defined");
  }
  styles_.emplace_back(std::move(name), std::move(body));
  return Status::Ok();
}

const AttrList* StyleDictionary::Find(std::string_view name) const {
  for (const auto& [style_name, body] : styles_) {
    if (style_name == name) {
      return &body;
    }
  }
  return nullptr;
}

Status StyleDictionary::ExpandInto(std::string_view name, AttrList& out,
                                   std::vector<std::string>& in_progress) const {
  if (std::find(in_progress.begin(), in_progress.end(), name) != in_progress.end()) {
    return FailedPreconditionError("style '" + std::string(name) +
                                   "' refers to itself, directly or indirectly");
  }
  const AttrList* body = Find(name);
  if (body == nullptr) {
    return NotFoundError("style '" + std::string(name) + "' is not defined");
  }
  in_progress.emplace_back(name);
  // Base styles first so own attributes override them.
  if (const AttrValue* base = body->Find(kAttrStyle)) {
    if (base->is_id()) {
      CMIF_RETURN_IF_ERROR(ExpandInto(base->id(), out, in_progress));
    } else if (base->is_list()) {
      for (const Attr& ref : base->list()) {
        if (!ref.value.is_id()) {
          return InvalidArgumentError("style list entries must be ID-valued");
        }
        CMIF_RETURN_IF_ERROR(ExpandInto(ref.value.id(), out, in_progress));
      }
    } else {
      return InvalidArgumentError("style attribute must be an ID or a list of IDs");
    }
  }
  for (const Attr& attr : body->attrs()) {
    if (attr.name != kAttrStyle) {
      out.Set(attr.name, attr.value);
    }
  }
  in_progress.pop_back();
  return Status::Ok();
}

StatusOr<AttrList> StyleDictionary::Expand(std::string_view name) const {
  AttrList out;
  std::vector<std::string> in_progress;
  CMIF_RETURN_IF_ERROR(ExpandInto(name, out, in_progress));
  return out;
}

StatusOr<AttrList> StyleDictionary::ExpandStyleValue(const AttrValue& value) const {
  AttrList out;
  std::vector<std::string> in_progress;
  if (value.is_id()) {
    CMIF_RETURN_IF_ERROR(ExpandInto(value.id(), out, in_progress));
    return out;
  }
  if (value.is_list()) {
    for (const Attr& ref : value.list()) {
      if (!ref.value.is_id()) {
        return InvalidArgumentError("style list entries must be ID-valued");
      }
      CMIF_RETURN_IF_ERROR(ExpandInto(ref.value.id(), out, in_progress));
    }
    return out;
  }
  return InvalidArgumentError("style attribute must be an ID or a list of IDs");
}

Status StyleDictionary::Validate() const {
  for (const auto& [name, body] : styles_) {
    (void)body;
    AttrList scratch;
    std::vector<std::string> in_progress;
    CMIF_RETURN_IF_ERROR(ExpandInto(name, scratch, in_progress));
  }
  return Status::Ok();
}

AttrValue StyleDictionary::ToAttrValue() const {
  std::vector<Attr> entries;
  entries.reserve(styles_.size());
  for (const auto& [name, body] : styles_) {
    entries.push_back(Attr{name, AttrValue::List(body.attrs())});
  }
  return AttrValue::List(std::move(entries));
}

StatusOr<StyleDictionary> StyleDictionary::FromAttrValue(const AttrValue& value) {
  if (!value.is_list()) {
    return InvalidArgumentError("style_dict must be a LIST value");
  }
  StyleDictionary dict;
  for (const Attr& entry : value.list()) {
    if (!entry.value.is_list()) {
      return InvalidArgumentError("style definition '" + entry.name + "' must be a LIST");
    }
    CMIF_RETURN_IF_ERROR(dict.Define(entry.name, AttrList::FromAttrs(entry.value.list())));
  }
  return dict;
}

std::vector<std::string> StyleDictionary::Names() const {
  std::vector<std::string> names;
  names.reserve(styles_.size());
  for (const auto& [name, body] : styles_) {
    (void)body;
    names.push_back(name);
  }
  return names;
}

}  // namespace cmif
