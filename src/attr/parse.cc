#include "src/attr/parse.h"

#include <cctype>

#include "src/base/string_util.h"

namespace cmif {
namespace {

bool IsInteger(std::string_view text) {
  if (text.empty()) {
    return false;
  }
  std::size_t i = text[0] == '-' || text[0] == '+' ? 1 : 0;
  if (i >= text.size()) {
    return false;
  }
  for (; i < text.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(text[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

StatusOr<AttrValue> ClassifyWord(const Token& token) {
  const std::string& text = token.text;
  if (IsInteger(text)) {
    return AttrValue::Number(std::strtoll(text.c_str(), nullptr, 10));
  }
  std::size_t slash = text.find('/');
  if (slash != std::string::npos && IsInteger(text.substr(0, slash)) &&
      IsInteger(text.substr(slash + 1))) {
    CMIF_ASSIGN_OR_RETURN(MediaTime t, ParseMediaTime(text));
    return AttrValue::Time(t);
  }
  if (text.find('.') != std::string::npos) {
    // Decimal literals are TIMEs too ("1.5" seconds).
    auto t = ParseMediaTime(text);
    if (t.ok()) {
      return AttrValue::Time(*t);
    }
  }
  if (!IsValidId(text)) {
    return DataLossError(StrFormat("line %d: '%s' is not a valid ID, number or time",
                                   token.line, text.c_str()));
  }
  return AttrValue::Id(text);
}

StatusOr<AttrValue> ParseAttrValue(Lexer& lexer) {
  CMIF_ASSIGN_OR_RETURN(Token token, lexer.Next());
  switch (token.kind) {
    case TokenKind::kString:
      return AttrValue::String(token.text);
    case TokenKind::kWord:
      return ClassifyWord(token);
    case TokenKind::kLParen: {
      CMIF_ASSIGN_OR_RETURN(AttrList list, ParseAttrListBody(lexer));
      return AttrValue::List(list.attrs());
    }
    default:
      return DataLossError(StrFormat("line %d: expected a value, got %s", token.line,
                                     std::string(TokenKindName(token.kind)).c_str()));
  }
}

StatusOr<AttrList> ParseAttrList(Lexer& lexer) {
  CMIF_RETURN_IF_ERROR(lexer.Expect(TokenKind::kLParen).status());
  return ParseAttrListBody(lexer);
}

StatusOr<AttrList> ParseAttrListBody(Lexer& lexer) {
  AttrList out;
  while (true) {
    CMIF_ASSIGN_OR_RETURN(Token token, lexer.Next());
    if (token.kind == TokenKind::kRParen) {
      return out;
    }
    if (token.kind != TokenKind::kWord) {
      return DataLossError(StrFormat("line %d: expected attribute name, got %s", token.line,
                                     std::string(TokenKindName(token.kind)).c_str()));
    }
    if (!IsValidId(token.text)) {
      return DataLossError(StrFormat("line %d: attribute name '%s' is not a valid ID",
                                     token.line, token.text.c_str()));
    }
    CMIF_ASSIGN_OR_RETURN(AttrValue value, ParseAttrValue(lexer));
    Status added = out.Add(token.text, std::move(value));
    if (!added.ok()) {
      return DataLossError(StrFormat("line %d: duplicate attribute '%s' in list", token.line,
                                     token.text.c_str()));
    }
  }
}

}  // namespace cmif
