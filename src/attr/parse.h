// Token-stream parsing of attribute values and lists. Shared by the CMIF
// document parser (src/fmt) and the DDBMS catalog parser (src/ddbms).
//
// Value syntax: a quoted token is a STRING; "(name value ...)" is a LIST;
// a bare word is a NUMBER when it is an optionally-signed integer, a TIME
// when it is "N/D", and an ID otherwise.
#ifndef SRC_ATTR_PARSE_H_
#define SRC_ATTR_PARSE_H_

#include "src/attr/attr_list.h"
#include "src/attr/value.h"
#include "src/base/lexer.h"
#include "src/base/status.h"

namespace cmif {

// Classifies a bare word into NUMBER / TIME / ID per the rules above.
StatusOr<AttrValue> ClassifyWord(const Token& token);

// Parses one value: string, word, or parenthesized list.
StatusOr<AttrValue> ParseAttrValue(Lexer& lexer);

// Parses "(name value name value ...)" starting at the '('. Duplicate names
// are a DataLoss error (the paper's one-name-per-list rule).
StatusOr<AttrList> ParseAttrList(Lexer& lexer);

// Parses the body of a list after the '(' has been consumed, up to and
// including the ')'.
StatusOr<AttrList> ParseAttrListBody(Lexer& lexer);

}  // namespace cmif

#endif  // SRC_ATTR_PARSE_H_
