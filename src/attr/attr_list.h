// An ordered attribute list with the paper's uniqueness rule: "each name may
// occur at most once in each list for each node" (section 5.2).
#ifndef SRC_ATTR_ATTR_LIST_H_
#define SRC_ATTR_ATTR_LIST_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/attr/value.h"
#include "src/base/status.h"

namespace cmif {

// Small ordered map from attribute name to value. Order is preserved for
// serialization fidelity; lookups are linear (lists are small by design —
// the paper's structural nodes carry a handful of attributes each).
class AttrList {
 public:
  AttrList() = default;
  // Builds from attrs; later duplicates silently win (used by merges).
  static AttrList FromAttrs(std::vector<Attr> attrs);

  // Adds a new attribute; error if the name already exists.
  Status Add(std::string name, AttrValue value);
  // Adds or replaces.
  void Set(std::string name, AttrValue value);
  // Removes by name. Returns true if something was removed.
  bool Remove(std::string_view name);

  // Pointer into the list, or nullptr when absent.
  const AttrValue* Find(std::string_view name) const;
  AttrValue* FindMutable(std::string_view name);
  bool Has(std::string_view name) const { return Find(name) != nullptr; }

  // Typed lookups with error reporting (NotFound / InvalidArgument).
  StatusOr<std::string> GetId(std::string_view name) const;
  StatusOr<std::int64_t> GetNumber(std::string_view name) const;
  StatusOr<std::string> GetString(std::string_view name) const;
  StatusOr<MediaTime> GetTime(std::string_view name) const;

  // Typed lookups with a default when the attribute is absent. Kind
  // mismatches still fall back to the default.
  std::string GetIdOr(std::string_view name, std::string fallback) const;
  std::int64_t GetNumberOr(std::string_view name, std::int64_t fallback) const;
  std::string GetStringOr(std::string_view name, std::string fallback) const;
  MediaTime GetTimeOr(std::string_view name, MediaTime fallback) const;

  // Copies every attribute of `overlay` into this list, replacing clashes.
  void MergeFrom(const AttrList& overlay);
  // Copies only the attributes of `defaults` that are absent here.
  void FillDefaultsFrom(const AttrList& defaults);

  const std::vector<Attr>& attrs() const { return attrs_; }
  std::size_t size() const { return attrs_.size(); }
  bool empty() const { return attrs_.empty(); }

  bool operator==(const AttrList& other) const { return attrs_ == other.attrs_; }

  // Concrete-syntax rendering: "(name value name value ...)".
  std::string ToString() const;

 private:
  std::vector<Attr> attrs_;
};

}  // namespace cmif

#endif  // SRC_ATTR_ATTR_LIST_H_
