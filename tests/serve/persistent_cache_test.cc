#include "src/serve/persistent_cache.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/net/presentation_wire.h"
#include "src/serve/serve.h"

namespace cmif {
namespace {

namespace fs = std::filesystem;

std::unique_ptr<ServeCorpus> Corpus(int documents) {
  auto corpus = BuildNewsCorpus(documents);
  EXPECT_TRUE(corpus.ok()) << corpus.status();
  return std::move(corpus).value();
}

// A fresh per-test cache directory under the gtest temp root.
std::string CacheDir(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) / ("pcache_" + name);
  fs::remove_all(dir);
  return dir.string();
}

MappingCacheKey KeyFor(const ServeCorpus& corpus, std::size_t document,
                       const std::string& profile) {
  MappingCacheKey key;
  key.document_hash = corpus.document(document).document_hash;
  key.channel_hash = corpus.document(document).channel_hash;
  key.profile = profile;
  key.store_generation = corpus.store().generation();
  return key;
}

// Compiles one (document, profile) fresh, bypassing every cache tier.
std::shared_ptr<const CompiledPresentation> CompileFresh(ServeCorpus& corpus,
                                                         const ServeRequest& request) {
  ServeOptions options;
  options.threads = 1;
  options.use_cache = false;
  ServeLoop loop(corpus, options);
  auto compiled = loop.Handle(request);
  EXPECT_TRUE(compiled.ok()) << compiled.status();
  return std::move(compiled).value();
}

TEST(CompiledWireFormatTest, SerializeParseRoundTripIsByteIdentical) {
  auto corpus = Corpus(2);
  ServeRequest request;
  request.document = 1;
  auto compiled = CompileFresh(*corpus, request);
  ASSERT_NE(compiled, nullptr);

  std::string payload = SerializeCompiledPresentation(*compiled);
  ASSERT_FALSE(payload.empty());
  const Document& document = corpus->document(1).document;
  auto parsed = corpus->store().WithRead([&](const DescriptorStore& store) {
    return ParseCompiledPresentation(payload, document, store);
  });
  ASSERT_TRUE(parsed.ok()) << parsed.status();

  // The contract: a reconstructed entry is indistinguishable on the wire.
  EXPECT_EQ(net::SerializePresentation(*parsed, {}), net::SerializePresentation(*compiled, {}));
  EXPECT_EQ(net::PresentationHash(*parsed, {}), net::PresentationHash(*compiled, {}));
  // And the second serialization is byte-stable too (deterministic output).
  EXPECT_EQ(SerializeCompiledPresentation(*parsed), payload);
}

TEST(CompiledWireFormatTest, ParseRejectsEventListMismatch) {
  auto corpus = Corpus(2);
  // Document 0 has one story, document 1 has two: an entry serialized from
  // one must not reconstruct against the other.
  auto compiled = CompileFresh(*corpus, ServeRequest{.document = 1, .profile = 0});
  std::string payload = SerializeCompiledPresentation(*compiled);
  auto parsed = corpus->store().WithRead([&](const DescriptorStore& store) {
    return ParseCompiledPresentation(payload, corpus->document(0).document, store);
  });
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kDataLoss) << parsed.status();
}

TEST(PersistentCacheTest, PutThenGetAcrossReopen) {
  auto corpus = Corpus(1);
  std::string dir = CacheDir("reopen");
  ServeRequest request;
  auto compiled = CompileFresh(*corpus, request);
  MappingCacheKey key = KeyFor(*corpus, 0, WorkstationProfile().name);

  {
    auto cache = PersistentCache::Open(dir);
    ASSERT_TRUE(cache.ok()) << cache.status();
    EXPECT_TRUE((*cache)->Put(key, compiled));
    (*cache)->Flush();
    EXPECT_EQ((*cache)->stats().writes, 1u);
    EXPECT_GT((*cache)->stats().disk_bytes, 0u);
  }

  auto cache = PersistentCache::Open(dir);
  ASSERT_TRUE(cache.ok()) << cache.status();
  EXPECT_EQ((*cache)->stats().entries, 1u);
  EXPECT_EQ((*cache)->stats().orphans_adopted, 0u);
  auto hit = corpus->store().WithRead([&](const DescriptorStore& store) {
    return (*cache)->Get(key, corpus->document(0).document, store);
  });
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(net::PresentationHash(*hit, {}), net::PresentationHash(*compiled, {}));
  EXPECT_EQ((*cache)->stats().hits, 1u);
}

TEST(PersistentCacheTest, GenerationMismatchIsAMiss) {
  auto corpus = Corpus(1);
  std::string dir = CacheDir("generation");
  auto compiled = CompileFresh(*corpus, ServeRequest{});
  MappingCacheKey key = KeyFor(*corpus, 0, WorkstationProfile().name);
  auto cache = PersistentCache::Open(dir);
  ASSERT_TRUE(cache.ok()) << cache.status();
  ASSERT_TRUE((*cache)->Put(key, compiled));
  (*cache)->Flush();

  // Any catalog mutation bumps the generation; the disk entry is orphaned.
  corpus->store().WithWrite([](DescriptorStore&) { return 0; });
  MappingCacheKey newer = KeyFor(*corpus, 0, WorkstationProfile().name);
  ASSERT_NE(newer.store_generation, key.store_generation);
  auto hit = corpus->store().WithRead([&](const DescriptorStore& store) {
    return (*cache)->Get(newer, corpus->document(0).document, store);
  });
  EXPECT_EQ(hit, nullptr);
  EXPECT_EQ((*cache)->stats().misses, 1u);
  EXPECT_EQ((*cache)->stats().quarantined, 0u);
}

TEST(PersistentCacheTest, BitFlippedPayloadIsQuarantinedOnRead) {
  auto corpus = Corpus(1);
  std::string dir = CacheDir("bitflip");
  auto compiled = CompileFresh(*corpus, ServeRequest{});
  MappingCacheKey key = KeyFor(*corpus, 0, WorkstationProfile().name);
  {
    auto cache = PersistentCache::Open(dir);
    ASSERT_TRUE(cache.ok()) << cache.status();
    ASSERT_TRUE((*cache)->Put(key, compiled));
    (*cache)->Flush();
  }
  // Flip one payload byte of the single entry file.
  fs::path entry;
  for (const auto& file : fs::directory_iterator(fs::path(dir) / "entries")) {
    entry = file.path();
  }
  ASSERT_FALSE(entry.empty());
  {
    std::fstream io(entry, std::ios::in | std::ios::out | std::ios::binary);
    io.seekp(-2, std::ios::end);
    char byte = 0;
    io.seekg(-2, std::ios::end);
    io.get(byte);
    io.seekp(-2, std::ios::end);
    io.put(static_cast<char>(byte ^ 0x40));
  }

  auto cache = PersistentCache::Open(dir);
  ASSERT_TRUE(cache.ok()) << cache.status();
  // The startup scan trusts the journaled size; the CRC fails on first read.
  auto hit = corpus->store().WithRead([&](const DescriptorStore& store) {
    return (*cache)->Get(key, corpus->document(0).document, store);
  });
  EXPECT_EQ(hit, nullptr);
  EXPECT_EQ((*cache)->stats().quarantined, 1u);
  EXPECT_EQ((*cache)->stats().entries, 0u);
  EXPECT_FALSE(fs::exists(entry));
  EXPECT_TRUE(fs::exists(fs::path(dir) / "quarantine" / entry.filename()));
  // Retry: the quarantined entry is gone from the index — a plain miss.
  hit = corpus->store().WithRead([&](const DescriptorStore& store) {
    return (*cache)->Get(key, corpus->document(0).document, store);
  });
  EXPECT_EQ(hit, nullptr);
  EXPECT_EQ((*cache)->stats().quarantined, 1u);
}

TEST(PersistentCacheTest, TruncatedEntryIsQuarantinedAtOpen) {
  auto corpus = Corpus(1);
  std::string dir = CacheDir("truncate");
  auto compiled = CompileFresh(*corpus, ServeRequest{});
  MappingCacheKey key = KeyFor(*corpus, 0, WorkstationProfile().name);
  {
    auto cache = PersistentCache::Open(dir);
    ASSERT_TRUE(cache.ok()) << cache.status();
    ASSERT_TRUE((*cache)->Put(key, compiled));
    (*cache)->Flush();
  }
  fs::path entry;
  for (const auto& file : fs::directory_iterator(fs::path(dir) / "entries")) {
    entry = file.path();
  }
  fs::resize_file(entry, fs::file_size(entry) / 2);

  auto cache = PersistentCache::Open(dir);
  ASSERT_TRUE(cache.ok()) << cache.status();
  EXPECT_EQ((*cache)->stats().quarantined, 1u);
  EXPECT_EQ((*cache)->stats().entries, 0u);
}

TEST(PersistentCacheTest, OrphanedEntryIsVerifiedAndAdopted) {
  auto corpus = Corpus(1);
  std::string dir = CacheDir("orphan");
  auto compiled = CompileFresh(*corpus, ServeRequest{});
  MappingCacheKey key = KeyFor(*corpus, 0, WorkstationProfile().name);
  {
    auto cache = PersistentCache::Open(dir);
    ASSERT_TRUE(cache.ok()) << cache.status();
    ASSERT_TRUE((*cache)->Put(key, compiled));
    (*cache)->Flush();
  }
  // Simulate a crash between rename and journal append.
  fs::remove(fs::path(dir) / "manifest.journal");

  {
    auto cache = PersistentCache::Open(dir);
    ASSERT_TRUE(cache.ok()) << cache.status();
    EXPECT_EQ((*cache)->stats().orphans_adopted, 1u);
    EXPECT_EQ((*cache)->stats().entries, 1u);
    auto hit = corpus->store().WithRead([&](const DescriptorStore& store) {
      return (*cache)->Get(key, corpus->document(0).document, store);
    });
    EXPECT_NE(hit, nullptr);
  }
  // Adoption re-journaled the entry: the next Open trusts it again.
  auto cache = PersistentCache::Open(dir);
  ASSERT_TRUE(cache.ok()) << cache.status();
  EXPECT_EQ((*cache)->stats().orphans_adopted, 0u);
  EXPECT_EQ((*cache)->stats().entries, 1u);
}

TEST(PersistentCacheTest, TornJournalTailIsDropped) {
  auto corpus = Corpus(1);
  std::string dir = CacheDir("tornjournal");
  auto compiled = CompileFresh(*corpus, ServeRequest{});
  MappingCacheKey key = KeyFor(*corpus, 0, WorkstationProfile().name);
  {
    auto cache = PersistentCache::Open(dir);
    ASSERT_TRUE(cache.ok()) << cache.status();
    ASSERT_TRUE((*cache)->Put(key, compiled));
    (*cache)->Flush();
  }
  {
    std::ofstream journal(fs::path(dir) / "manifest.journal", std::ios::app | std::ios::binary);
    journal << "deadbeef commit torn-half-a-li";  // no newline: a torn append
  }
  auto cache = PersistentCache::Open(dir);
  ASSERT_TRUE(cache.ok()) << cache.status();
  EXPECT_GE((*cache)->stats().journal_torn, 1u);
  EXPECT_EQ((*cache)->stats().entries, 1u);  // the committed entry survives
  EXPECT_EQ((*cache)->stats().quarantined, 0u);
}

TEST(PersistentCacheTest, TmpLeftoversAreWipedAtOpen) {
  std::string dir = CacheDir("tmpwipe");
  fs::create_directories(fs::path(dir) / "tmp");
  { std::ofstream(fs::path(dir) / "tmp" / "half.cpe.tmp") << "torn"; }
  auto cache = PersistentCache::Open(dir);
  ASSERT_TRUE(cache.ok()) << cache.status();
  EXPECT_TRUE(fs::is_empty(fs::path(dir) / "tmp"));
}

TEST(PersistentCacheTest, FullQueueDropsWrites) {
  auto corpus = Corpus(1);
  std::string dir = CacheDir("queuefull");
  auto compiled = CompileFresh(*corpus, ServeRequest{});
  MappingCacheKey key = KeyFor(*corpus, 0, WorkstationProfile().name);
  PersistentCache::Options options;
  options.max_pending_writes = 0;
  auto cache = PersistentCache::Open(dir, options);
  ASSERT_TRUE(cache.ok()) << cache.status();
  EXPECT_FALSE((*cache)->Put(key, compiled));
  EXPECT_EQ((*cache)->stats().dropped_writes, 1u);
  EXPECT_EQ((*cache)->stats().writes, 0u);
}

TEST(PersistentCacheTest, ListVerifyPurge) {
  auto corpus = Corpus(2);
  std::string dir = CacheDir("tooling");
  {
    auto cache = PersistentCache::Open(dir);
    ASSERT_TRUE(cache.ok()) << cache.status();
    for (std::size_t i = 0; i < 2; ++i) {
      auto compiled = CompileFresh(*corpus, ServeRequest{.document = i, .profile = 0});
      ASSERT_TRUE((*cache)->Put(KeyFor(*corpus, i, WorkstationProfile().name), compiled));
    }
    (*cache)->Flush();
  }
  auto listed = PersistentCache::List(dir);
  ASSERT_TRUE(listed.ok()) << listed.status();
  ASSERT_EQ(listed->size(), 2u);
  for (const PersistentCache::EntryInfo& info : *listed) {
    EXPECT_TRUE(info.journaled);
    EXPECT_GT(info.bytes, 0u);
    EXPECT_EQ(info.profile, WorkstationProfile().name);
  }
  auto verify = PersistentCache::Verify(dir);
  ASSERT_TRUE(verify.ok()) << verify.status();
  EXPECT_EQ(verify->checked, 2u);
  EXPECT_EQ(verify->ok, 2u);
  EXPECT_TRUE(verify->corrupt.empty());

  // Corrupt one file: Verify reports it, read-only.
  fs::path first;
  for (const auto& file : fs::directory_iterator(fs::path(dir) / "entries")) {
    first = file.path();
    break;
  }
  { std::ofstream(first, std::ios::app | std::ios::binary) << "x"; }
  verify = PersistentCache::Verify(dir);
  ASSERT_TRUE(verify.ok());
  EXPECT_EQ(verify->ok, 1u);
  ASSERT_EQ(verify->corrupt.size(), 1u);
  EXPECT_TRUE(fs::exists(first));  // verify never moves files

  ASSERT_TRUE(PersistentCache::Purge(dir).ok());
  EXPECT_TRUE(fs::is_empty(fs::path(dir) / "entries"));
  EXPECT_FALSE(fs::exists(fs::path(dir) / "manifest.journal"));
}

TEST(ServeLoopPcacheTest, DiskTierWarmsARestartedLoop) {
  auto corpus = Corpus(3);
  std::string dir = CacheDir("serveloop");
  ServeOptions options;
  options.threads = 1;
  options.cache_dir = dir;

  std::vector<std::uint64_t> hashes;
  {
    ServeLoop loop(*corpus, options);
    ASSERT_NE(loop.pcache(), nullptr) << loop.pcache_status();
    for (std::size_t i = 0; i < corpus->size(); ++i) {
      ServeResponse response = loop.Serve(ServeRequest{.document = i, .profile = 0});
      ASSERT_TRUE(response.served());
      EXPECT_FALSE(response.cache_hit);  // cold: every tier misses
      hashes.push_back(net::PresentationHash(*response.presentation, {}));
    }
    loop.pcache()->Flush();
    EXPECT_EQ(loop.pcache()->stats().writes, corpus->size());
  }

  // "Restart": a fresh loop over the same corpus and directory. The memory
  // cache is cold, so every hit below comes from disk.
  ServeLoop loop(*corpus, options);
  ASSERT_NE(loop.pcache(), nullptr) << loop.pcache_status();
  for (std::size_t i = 0; i < corpus->size(); ++i) {
    ServeResponse response = loop.Serve(ServeRequest{.document = i, .profile = 0});
    ASSERT_TRUE(response.served());
    EXPECT_TRUE(response.cache_hit);
    EXPECT_TRUE(response.disk_hit);
    EXPECT_EQ(net::PresentationHash(*response.presentation, {}), hashes[i]);
    // Promotion: the same request again hits memory, not disk.
    ServeResponse again = loop.Serve(ServeRequest{.document = i, .profile = 0});
    EXPECT_TRUE(again.cache_hit);
    EXPECT_FALSE(again.disk_hit);
  }
  EXPECT_EQ(loop.pcache()->stats().hits, corpus->size());
}

}  // namespace
}  // namespace cmif
