// The serve loop's recovery ladder: worker exceptions surface as counted
// errors (regression for the silently-absorbed-exception bug), failed
// compiles degrade to stale cache entries without ever re-entering the cache
// as healthy, and the per-document breaker fails fast.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>

#include "src/fault/clock.h"
#include "src/fault/fault.h"
#include "src/serve/serve.h"

namespace cmif {
namespace {

class GlobalFakeClock {
 public:
  GlobalFakeClock() { fault::SetGlobalClockForTest(&clock_); }
  ~GlobalFakeClock() { fault::SetGlobalClockForTest(nullptr); }
  fault::FakeClock* operator->() { return &clock_; }

 private:
  fault::FakeClock clock_;
};

std::unique_ptr<ServeCorpus> Corpus(int documents) {
  auto corpus = BuildNewsCorpus(documents);
  EXPECT_TRUE(corpus.ok()) << corpus.status();
  return std::move(corpus).value();
}

ServeOptions RecoveryOptions() {
  ServeOptions options;
  options.threads = 1;
  options.enable_degraded = true;
  options.retry.max_attempts = 2;
  options.retry.initial_backoff_ms = 1;
  options.retry.jitter = 0;
  return options;
}

// Regression: an exception escaping a worker used to be absorbed by the
// future machinery — the run "succeeded" with silently missing requests. It
// must complete and count the throw as both an exception and an error.
TEST(ServeRecoveryTest, WorkerExceptionsAreCountedAsErrors) {
  auto corpus = Corpus(2);
  ServeOptions options;
  options.threads = 2;
  std::atomic<int> calls{0};
  options.request_hook = [&calls](const ServeRequest&) {
    if (calls.fetch_add(1, std::memory_order_relaxed) % 10 == 3) {
      throw std::runtime_error("hook blew up");
    }
  };
  ServeLoop loop(*corpus, options);
  std::vector<ServeRequest> trace = GenerateTrace(corpus->size(), 50, options);
  auto stats = loop.Run(trace);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->requests, 50u);
  EXPECT_EQ(stats->exceptions, 5u);
  EXPECT_GE(stats->errors, stats->exceptions) << "every exception is also an error";
  EXPECT_EQ(stats->errors, stats->exceptions) << "nothing else should fail in this run";
}

TEST(ServeRecoveryTest, FailureWithoutStaleEntryIsFailedNotDegraded) {
  auto corpus = Corpus(1);
  ServeLoop loop(*corpus, RecoveryOptions());
  ServeRequest request;
  request.document = 9;  // out of range: nothing cached, nothing to degrade to
  ServeResponse response = loop.Serve(request);
  EXPECT_EQ(response.outcome, ServeOutcome::kFailed);
  EXPECT_FALSE(response.served());
  EXPECT_FALSE(response.error.ok());
}

TEST(MappingCacheStaleTest, GetStaleIgnoresGenerationAndPrefersFreshest) {
  MappingCache cache(8);
  MappingCacheKey key;
  key.document_hash = 1;
  key.channel_hash = 2;
  key.profile = "workstation";
  auto old_entry = std::make_shared<const CompiledPresentation>();
  auto new_entry = std::make_shared<const CompiledPresentation>();
  key.store_generation = 3;
  cache.Put(key, old_entry);
  key.store_generation = 7;
  cache.Put(key, new_entry);

  key.store_generation = 9;  // current generation: a regular Get misses
  EXPECT_EQ(cache.Get(key), nullptr);
  EXPECT_EQ(cache.GetStale(key), new_entry) << "stale lookup picks the freshest generation";

  MappingCacheKey other = key;
  other.profile = "personal";
  EXPECT_EQ(cache.GetStale(other), nullptr) << "profile must still match exactly";

  MappingCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.stale_hits, 1u);
  EXPECT_EQ(stats.hits, 0u) << "degraded lookups never masquerade as healthy hits";
}

#ifndef CMIF_FAULT_DISABLED

fault::FaultPlan CompileFailPlan(double p) {
  fault::FaultPlan plan;
  plan.seed = 5;
  fault::FaultSiteConfig config;
  config.transient_p = p;
  plan.sites.emplace_back("serve.compile", config);
  return plan;
}

TEST(ServeRecoveryTest, DegradedServesStaleAndNeverCachesIt) {
  GlobalFakeClock clock;
  auto corpus = Corpus(1);
  ServeLoop loop(*corpus, RecoveryOptions());
  ServeRequest request;

  // Prime one healthy compile into the cache, then invalidate it.
  ServeResponse healthy = loop.Serve(request);
  ASSERT_EQ(healthy.outcome, ServeOutcome::kHealthy);
  ASSERT_NE(healthy.presentation, nullptr);
  corpus->store().WithWrite([](DescriptorStore&) { return 0; });

  {
    fault::ScopedPlan chaos(CompileFailPlan(1.0));
    ServeResponse degraded = loop.Serve(request);
    EXPECT_EQ(degraded.outcome, ServeOutcome::kDegraded);
    EXPECT_TRUE(degraded.served());
    EXPECT_EQ(degraded.presentation, healthy.presentation)
        << "the degraded answer is the stale pre-invalidation compile";
    EXPECT_EQ(degraded.error.code(), StatusCode::kUnavailable);
    EXPECT_EQ(degraded.attempts, 2) << "retries were exhausted before degrading";
  }
  EXPECT_EQ(loop.cache().stats().stale_hits, 1u);

  // The degraded response must not have been cached under the current
  // generation: with the faults gone, the next request compiles fresh.
  MappingCache::Stats before = loop.cache().stats();
  ServeResponse fresh = loop.Serve(request);
  EXPECT_EQ(fresh.outcome, ServeOutcome::kHealthy);
  EXPECT_EQ(loop.cache().stats().hits, before.hits) << "no healthy hit for a degraded entry";
  EXPECT_EQ(loop.cache().stats().misses, before.misses + 1);

  // And the fresh compile IS cached: the request after it hits.
  ServeResponse warm = loop.Serve(request);
  EXPECT_TRUE(warm.cache_hit);
}

TEST(ServeRecoveryTest, RetriesTurnTransientFaultsIntoRecoveredResponses) {
  GlobalFakeClock clock;
  auto corpus = Corpus(1);
  ServeOptions options = RecoveryOptions();
  options.retry.max_attempts = 8;
  ServeLoop loop(*corpus, options);
  fault::ScopedPlan chaos(CompileFailPlan(0.5));
  bool saw_recovered = false;
  for (int i = 0; i < 12 && !saw_recovered; ++i) {
    // Each generation bump forces the next request through the compile path.
    corpus->store().WithWrite([](DescriptorStore&) { return 0; });
    ServeResponse response = loop.Serve(ServeRequest{});
    ASSERT_NE(response.outcome, ServeOutcome::kFailed) << response.error;
    if (response.outcome == ServeOutcome::kRecovered) {
      saw_recovered = true;
      EXPECT_GT(response.attempts, 1);
      EXPECT_NE(response.presentation, nullptr);
    }
  }
  EXPECT_TRUE(saw_recovered) << "a 0.5 fault rate with 8 attempts must recover at least once";
}

TEST(ServeRecoveryTest, OpenBreakerFailsFastWithoutCompiling) {
  GlobalFakeClock clock;
  auto corpus = Corpus(1);
  ServeOptions options = RecoveryOptions();
  options.retry.max_attempts = 1;  // each request = one compile failure
  options.compile_breaker.failure_threshold = 2;
  options.compile_breaker.open_ms = 60'000;
  ServeLoop loop(*corpus, options);
  ServeRequest request;

  ServeResponse healthy = loop.Serve(request);
  ASSERT_EQ(healthy.outcome, ServeOutcome::kHealthy);
  corpus->store().WithWrite([](DescriptorStore&) { return 0; });

  {
    fault::ScopedPlan chaos(CompileFailPlan(1.0));
    fault::ResetCounts();
    ASSERT_EQ(loop.Serve(request).outcome, ServeOutcome::kDegraded);
    ASSERT_EQ(loop.Serve(request).outcome, ServeOutcome::kDegraded);
    EXPECT_EQ(fault::Counts().probes, 2u);
    // Threshold reached: the document's breaker is open and the next request
    // is answered without touching the compile path (no new probes).
    ServeResponse fast = loop.Serve(request);
    EXPECT_EQ(fast.outcome, ServeOutcome::kDegraded);
    EXPECT_EQ(fault::Counts().probes, 2u) << "an open breaker must not attempt a compile";
    EXPECT_NE(fast.error.message().find("breaker open"), std::string::npos)
        << fast.error.message();
  }
}

#endif  // CMIF_FAULT_DISABLED

}  // namespace
}  // namespace cmif
