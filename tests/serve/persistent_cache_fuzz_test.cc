// Format fuzzing for the persistent cache entry/manifest format: every
// truncation boundary, every header bit flip, and sampled payload bit flips
// must end in exactly one of two states — the entry is quarantined, or it is
// served byte-identical to the pristine compile. Never a crash, never a
// wrong presentation.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include "src/net/presentation_wire.h"
#include "src/serve/persistent_cache.h"
#include "src/serve/serve.h"

namespace cmif {
namespace {

namespace fs = std::filesystem;

struct Fixture {
  std::unique_ptr<ServeCorpus> corpus;
  std::shared_ptr<const CompiledPresentation> compiled;
  std::uint64_t pristine_hash = 0;
  MappingCacheKey key;
  std::string file;   // entry file name for `key`
  std::string image;  // pristine on-disk entry bytes (header + payload)
  std::string journal;  // pristine manifest.journal bytes
};

Fixture BuildFixture(const std::string& dir) {
  Fixture fx;
  auto corpus = BuildNewsCorpus(1);
  EXPECT_TRUE(corpus.ok()) << corpus.status();
  fx.corpus = std::move(corpus).value();

  ServeOptions options;
  options.threads = 1;
  options.use_cache = false;
  ServeLoop loop(*fx.corpus, options);
  auto compiled = loop.Handle(ServeRequest{});
  EXPECT_TRUE(compiled.ok()) << compiled.status();
  fx.compiled = std::move(compiled).value();
  fx.pristine_hash = net::PresentationHash(*fx.compiled, {});

  fx.key.document_hash = fx.corpus->document(0).document_hash;
  fx.key.channel_hash = fx.corpus->document(0).channel_hash;
  fx.key.profile = WorkstationProfile().name;
  fx.key.store_generation = fx.corpus->store().generation();
  fx.file = PersistentCacheFileName(fx.key);

  fs::remove_all(dir);
  auto cache = PersistentCache::Open(dir);
  EXPECT_TRUE(cache.ok()) << cache.status();
  EXPECT_TRUE((*cache)->Put(fx.key, fx.compiled));
  (*cache)->Flush();
  cache->reset();

  std::ifstream in(fs::path(dir) / "entries" / fx.file, std::ios::binary);
  fx.image.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  EXPECT_FALSE(fx.image.empty());
  std::ifstream jin(fs::path(dir) / "manifest.journal", std::ios::binary);
  fx.journal.assign(std::istreambuf_iterator<char>(jin), std::istreambuf_iterator<char>());
  EXPECT_FALSE(fx.journal.empty());
  return fx;
}

void WriteBytes(const fs::path& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Opens the cache over one mutated entry image and checks the invariant:
// quarantined, or served with the pristine presentation hash. Returns true
// when the mutant was quarantined.
bool CheckMutant(const std::string& dir, Fixture& fx, std::string_view image,
                 bool with_journal, const std::string& what) {
  WriteBytes(fs::path(dir) / "entries" / fx.file, image);
  if (with_journal) {
    WriteBytes(fs::path(dir) / "manifest.journal", fx.journal);
  } else {
    fs::remove(fs::path(dir) / "manifest.journal");
  }
  auto cache = PersistentCache::Open(dir);
  EXPECT_TRUE(cache.ok()) << what << ": " << cache.status();
  if (!cache.ok()) {
    return false;
  }
  PersistentCache::Stats stats = (*cache)->stats();
  bool quarantined = stats.quarantined > 0;
  if (!quarantined) {
    // The mutant survived verification — it must serve the exact pristine
    // presentation (e.g. the mutation was in bytes nothing reads).
    auto hit = fx.corpus->store().WithRead([&](const DescriptorStore& store) {
      return (*cache)->Get(fx.key, fx.corpus->document(0).document, store);
    });
    stats = (*cache)->stats();
    if (hit != nullptr) {
      EXPECT_EQ(net::PresentationHash(*hit, {}), fx.pristine_hash)
          << what << ": corrupt entry served with a different presentation";
    } else {
      // The lazy read-time CRC caught it instead of the startup scan.
      EXPECT_GT(stats.quarantined, 0u) << what << ": miss without quarantine";
      quarantined = stats.quarantined > 0;
    }
  }
  // Reset for the next mutant: drop anything quarantined.
  cache->reset();
  std::error_code ec;
  fs::remove(fs::path(dir) / "quarantine" / fx.file, ec);
  fs::remove(fs::path(dir) / "entries" / fx.file, ec);
  return quarantined;
}

TEST(PersistentCacheFuzzTest, TruncationAtEveryByteBoundary) {
  std::string dir = (fs::path(::testing::TempDir()) / "pcache_fuzz_trunc").string();
  Fixture fx = BuildFixture(dir);
  // Every strict prefix, as an orphan (full verification path) — a torn
  // write that survived the rename but lost its journal record.
  std::size_t quarantined = 0;
  for (std::size_t len = 0; len < fx.image.size(); ++len) {
    quarantined += CheckMutant(dir, fx, std::string_view(fx.image).substr(0, len),
                               /*with_journal=*/false, "orphan truncated to " + std::to_string(len))
                       ? 1
                       : 0;
  }
  // A truncated entry can never reconstruct the presentation: all quarantined.
  EXPECT_EQ(quarantined, fx.image.size());
}

TEST(PersistentCacheFuzzTest, TruncationWithJournalRecord) {
  std::string dir = (fs::path(::testing::TempDir()) / "pcache_fuzz_trunc_j").string();
  Fixture fx = BuildFixture(dir);
  // The journal vouches for the full entry; the file on disk is shorter
  // (lost cache-flush). The cheap startup size check must catch every case.
  std::size_t quarantined = 0;
  for (std::size_t len = 0; len < fx.image.size(); ++len) {
    quarantined +=
        CheckMutant(dir, fx, std::string_view(fx.image).substr(0, len),
                    /*with_journal=*/true, "journaled truncated to " + std::to_string(len))
            ? 1
            : 0;
  }
  EXPECT_EQ(quarantined, fx.image.size());
}

TEST(PersistentCacheFuzzTest, EveryBitFlipOnHeader) {
  std::string dir = (fs::path(::testing::TempDir()) / "pcache_fuzz_hdr").string();
  Fixture fx = BuildFixture(dir);
  std::size_t header_end = fx.image.find('\n');
  ASSERT_NE(header_end, std::string::npos);
  ++header_end;  // include the newline itself
  std::size_t quarantined = 0;
  for (std::size_t byte = 0; byte < header_end; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutant = fx.image;
      mutant[byte] = static_cast<char>(mutant[byte] ^ (1 << bit));
      quarantined += CheckMutant(dir, fx, mutant, /*with_journal=*/false,
                                 "header bit " + std::to_string(byte * 8 + bit))
                         ? 1
                         : 0;
    }
  }
  // Every header field is load-bearing (magic, version, key, size, CRC), so
  // every single-bit flip must be caught.
  EXPECT_EQ(quarantined, header_end * 8);
}

TEST(PersistentCacheFuzzTest, SampledPayloadBitFlips) {
  std::string dir = (fs::path(::testing::TempDir()) / "pcache_fuzz_payload").string();
  Fixture fx = BuildFixture(dir);
  std::size_t header_end = fx.image.find('\n');
  ASSERT_NE(header_end, std::string::npos);
  ++header_end;
  // Every 13th bit of the payload: cheap enough to run always, dense enough
  // to cover every byte. The payload CRC catches each one.
  std::size_t quarantined = 0;
  std::size_t tried = 0;
  for (std::size_t bit = 0; bit < (fx.image.size() - header_end) * 8; bit += 13) {
    std::string mutant = fx.image;
    std::size_t byte = header_end + bit / 8;
    mutant[byte] = static_cast<char>(mutant[byte] ^ (1 << (bit % 8)));
    quarantined += CheckMutant(dir, fx, mutant, /*with_journal=*/false,
                               "payload bit " + std::to_string(bit))
                       ? 1
                       : 0;
    ++tried;
  }
  EXPECT_EQ(quarantined, tried);
}

TEST(PersistentCacheFuzzTest, JournalLineBitFlipsNeverCrashOrMisindex) {
  std::string dir = (fs::path(::testing::TempDir()) / "pcache_fuzz_journal").string();
  Fixture fx = BuildFixture(dir);
  // Flip every bit of the (single-line) journal, keeping the entry file
  // pristine. Whatever the journal claims, the entry itself is intact: it is
  // either trusted (journal still parses and matches), or falls back to the
  // orphan path and is adopted. Either way it must serve correctly.
  for (std::size_t bit = 0; bit < fx.journal.size() * 8; ++bit) {
    std::string mutant = fx.journal;
    mutant[bit / 8] = static_cast<char>(mutant[bit / 8] ^ (1 << (bit % 8)));
    WriteBytes(fs::path(dir) / "entries" / fx.file, fx.image);
    WriteBytes(fs::path(dir) / "manifest.journal", mutant);
    auto cache = PersistentCache::Open(dir);
    ASSERT_TRUE(cache.ok()) << cache.status();
    PersistentCache::Stats stats = (*cache)->stats();
    if (stats.entries == 1) {
      auto hit = fx.corpus->store().WithRead([&](const DescriptorStore& store) {
        return (*cache)->Get(fx.key, fx.corpus->document(0).document, store);
      });
      ASSERT_NE(hit, nullptr) << "journal bit " << bit;
      EXPECT_EQ(net::PresentationHash(*hit, {}), fx.pristine_hash) << "journal bit " << bit;
    } else {
      // A corrupt journal line that still CRC-parses but names our file with
      // the wrong size/CRC makes the startup check quarantine the (intact)
      // entry. That is within contract — conservative, never wrong — but it
      // must be the only other outcome.
      EXPECT_EQ(stats.quarantined, 1u) << "journal bit " << bit;
    }
    cache->reset();
    std::error_code ec;
    fs::remove(fs::path(dir) / "quarantine" / fx.file, ec);
    fs::remove(fs::path(dir) / "entries" / fx.file, ec);
  }
}

}  // namespace
}  // namespace cmif
