// The prefetch planner's contract (src/serve/prefetch.h): delivery order is
// the schedule's must-start order, offsets tile the payload exactly, the
// hash is end-to-end, channel restriction mirrors response serialization,
// fetch failures degrade to placeholders instead of failing the stream, and
// an infeasible schedule yields an empty plan. All of it deterministic —
// the same plan backs both chunked streaming and v4 blob delivery, so any
// nondeterminism here would break resume and the differential harness.
#include "src/serve/prefetch.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/api/cmif.h"
#include "src/base/string_util.h"
#include "src/media/block_codec.h"
#include "src/news/evening_news.h"
#include "src/pipeline/pipeline.h"

namespace cmif {
namespace {

struct Compiled {
  std::unique_ptr<ServeCorpus> corpus;
  CompiledPresentation presentation;
};

Compiled CompileNewsDocument() {
  Compiled c;
  auto corpus = BuildNewsCorpus(1);
  EXPECT_TRUE(corpus.ok()) << corpus.status();
  c.corpus = std::move(corpus).value();
  PipelineOptions options;
  options.profile = WorkstationProfile();
  auto report = c.corpus->store().WithRead([&](const DescriptorStore& store) {
    return c.corpus->blocks().WithRead([&](const BlockStore& blocks) {
      return api::Compile(c.corpus->document(0).document, store, blocks, options);
    });
  });
  EXPECT_TRUE(report.ok()) << report.status();
  c.presentation.map = report->presentation_map;
  c.presentation.filter = report->filter;
  c.presentation.schedule = report->schedule;
  return c;
}

StatusOr<StreamPlan> PlanFor(const Compiled& c,
                             const std::vector<std::string>& channels = {}) {
  return c.corpus->store().WithRead([&](const DescriptorStore& store) {
    return c.corpus->blocks().WithRead([&](const BlockStore& blocks) {
      return BuildStreamPlan(c.presentation, store, blocks, WorkstationProfile(),
                             channels);
    });
  });
}

TEST(PrefetchPlanTest, TilesThePayloadInMustStartOrder) {
  Compiled c = CompileNewsDocument();
  auto plan = PlanFor(c);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_FALSE(plan->blocks.empty()) << "news documents reference block content";
  EXPECT_FALSE(plan->degraded);
  EXPECT_EQ(plan->payload_hash, Fnv1a64(plan->bytes));

  std::uint64_t offset = 0;
  std::set<std::string> seen;
  for (std::size_t i = 0; i < plan->blocks.size(); ++i) {
    const PrefetchBlock& block = plan->blocks[i];
    EXPECT_EQ(block.offset, offset) << "block " << i << " leaves a gap";
    EXPECT_GT(block.bytes, 0u) << i;
    offset += block.bytes;
    EXPECT_TRUE(seen.insert(block.descriptor_id).second)
        << "descriptor " << block.descriptor_id << " planned twice";
    // A block can never be required before its transfer must begin.
    EXPECT_LE(block.must_start_by, block.first_need) << i;
    if (i > 0) {
      EXPECT_LE(plan->blocks[i - 1].must_start_by, block.must_start_by)
          << "delivery order must be ascending must-start at block " << i;
    }
    // Every planned payload is a decodable canonical block encoding.
    auto decoded = DecodeBlockPayload(
        std::string_view(plan->bytes)
            .substr(static_cast<std::size_t>(block.offset),
                    static_cast<std::size_t>(block.bytes)));
    EXPECT_TRUE(decoded.ok()) << block.descriptor_id << ": " << decoded.status();
  }
  EXPECT_EQ(offset, plan->total_bytes());
}

TEST(PrefetchPlanTest, IsDeterministic) {
  Compiled c = CompileNewsDocument();
  auto first = PlanFor(c);
  auto second = PlanFor(c);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->bytes, second->bytes);
  EXPECT_EQ(first->payload_hash, second->payload_hash);
  ASSERT_EQ(first->blocks.size(), second->blocks.size());
  for (std::size_t i = 0; i < first->blocks.size(); ++i) {
    EXPECT_EQ(first->blocks[i].descriptor_id, second->blocks[i].descriptor_id) << i;
    EXPECT_EQ(first->blocks[i].offset, second->blocks[i].offset) << i;
  }
}

TEST(PrefetchPlanTest, ChannelRestrictionPlansASubset) {
  Compiled c = CompileNewsDocument();
  auto full = PlanFor(c);
  ASSERT_TRUE(full.ok()) << full.status();
  auto audio = PlanFor(c, {"audio"});
  ASSERT_TRUE(audio.ok()) << audio.status();
  EXPECT_LT(audio->blocks.size(), full->blocks.size());
  EXPECT_LT(audio->total_bytes(), full->total_bytes());
  std::set<std::string> all;
  for (const PrefetchBlock& block : full->blocks) {
    all.insert(block.descriptor_id);
  }
  for (const PrefetchBlock& block : audio->blocks) {
    EXPECT_TRUE(all.count(block.descriptor_id))
        << block.descriptor_id << " not in the unrestricted plan";
  }
  // A selection naming no real channel plans nothing.
  auto none = PlanFor(c, {"no-such-channel"});
  ASSERT_TRUE(none.ok()) << none.status();
  EXPECT_TRUE(none->blocks.empty());
  EXPECT_TRUE(none->bytes.empty());
}

TEST(PrefetchPlanTest, MissingDescriptorsDegradeAndSkip) {
  Compiled c = CompileNewsDocument();
  auto full = PlanFor(c);
  ASSERT_TRUE(full.ok()) << full.status();
  ASSERT_FALSE(full->blocks.empty());
  // A descriptor the schedule references vanishes from the store (an edit
  // raced the request): nothing can stand in for it, so its block is
  // skipped, the plan is flagged degraded — and still tiles and hashes.
  const std::string victim = full->blocks.front().descriptor_id;
  BlockStore empty;
  auto degraded = c.corpus->store().WithRead([&](const DescriptorStore& store) {
    DescriptorStore pruned = store;
    EXPECT_TRUE(pruned.Remove(victim));
    return BuildStreamPlan(c.presentation, pruned, empty, WorkstationProfile());
  });
  ASSERT_TRUE(degraded.ok()) << degraded.status();
  EXPECT_TRUE(degraded->degraded);
  EXPECT_EQ(degraded->blocks.size(), full->blocks.size() - 1);
  EXPECT_EQ(degraded->payload_hash, Fnv1a64(degraded->bytes));
  std::uint64_t offset = 0;
  for (const PrefetchBlock& block : degraded->blocks) {
    EXPECT_NE(block.descriptor_id, victim);
    EXPECT_EQ(block.offset, offset);
    offset += block.bytes;
    auto decoded = DecodeBlockPayload(
        std::string_view(degraded->bytes)
            .substr(static_cast<std::size_t>(block.offset),
                    static_cast<std::size_t>(block.bytes)));
    EXPECT_TRUE(decoded.ok()) << block.descriptor_id << ": " << decoded.status();
  }
  EXPECT_EQ(offset, degraded->total_bytes());
}

TEST(PrefetchPlanTest, InfeasibleScheduleYieldsAnEmptyPlan) {
  Compiled c = CompileNewsDocument();
  c.presentation.schedule.feasible = false;
  auto plan = PlanFor(c);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_TRUE(plan->blocks.empty());
  EXPECT_TRUE(plan->bytes.empty());
  EXPECT_FALSE(plan->degraded);
}

}  // namespace
}  // namespace cmif
