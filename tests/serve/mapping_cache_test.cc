#include "src/serve/mapping_cache.h"

#include <gtest/gtest.h>

#include <memory>

namespace cmif {
namespace {

MappingCacheKey Key(std::uint64_t doc, const std::string& profile = "workstation",
                    std::uint64_t generation = 0) {
  MappingCacheKey key;
  key.document_hash = doc;
  key.channel_hash = doc ^ 0x5555;
  key.store_generation = generation;
  key.profile = profile;
  return key;
}

std::shared_ptr<const CompiledPresentation> Entry(const std::string& channel) {
  auto entry = std::make_shared<CompiledPresentation>();
  EXPECT_TRUE(entry->map.BindRegion(channel, "main").ok());
  return entry;
}

TEST(MappingCacheTest, MissThenHit) {
  MappingCache cache(4);
  EXPECT_EQ(cache.Get(Key(1)), nullptr);
  cache.Put(Key(1), Entry("video"));
  auto hit = cache.Get(Key(1));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->map.bindings().size(), 1u);
  MappingCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes_saved, 0u);
}

TEST(MappingCacheTest, DistinctKeyComponentsAreDistinctEntries) {
  MappingCache cache(8);
  cache.Put(Key(1, "workstation", 0), Entry("a"));
  EXPECT_EQ(cache.Get(Key(2, "workstation", 0)), nullptr);  // other document hash
  EXPECT_EQ(cache.Get(Key(1, "personal", 0)), nullptr);     // other profile
  EXPECT_EQ(cache.Get(Key(1, "workstation", 1)), nullptr);  // newer generation
  EXPECT_NE(cache.Get(Key(1, "workstation", 0)), nullptr);
}

TEST(MappingCacheTest, EvictsLeastRecentlyUsed) {
  MappingCache cache(2);
  cache.Put(Key(1), Entry("a"));
  cache.Put(Key(2), Entry("b"));
  EXPECT_NE(cache.Get(Key(1)), nullptr);  // refresh 1; 2 is now LRU
  cache.Put(Key(3), Entry("c"));          // evicts 2
  EXPECT_EQ(cache.Get(Key(2)), nullptr);
  EXPECT_NE(cache.Get(Key(1)), nullptr);
  EXPECT_NE(cache.Get(Key(3)), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(MappingCacheTest, HeldEntrySurvivesEviction) {
  MappingCache cache(1);
  cache.Put(Key(1), Entry("a"));
  auto held = cache.Get(Key(1));
  ASSERT_NE(held, nullptr);
  cache.Put(Key(2), Entry("b"));  // evicts key 1
  EXPECT_EQ(cache.Get(Key(1)), nullptr);
  // The response in flight is unaffected by the eviction.
  EXPECT_EQ(held->map.bindings().size(), 1u);
}

TEST(MappingCacheTest, PutReplacesExistingKey) {
  MappingCache cache(2);
  cache.Put(Key(1), Entry("old"));
  cache.Put(Key(1), Entry("new"));
  auto hit = cache.Get(Key(1));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->map.bindings()[0].channel, "new");
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(MappingCacheTest, ClearDropsEntriesKeepsStats) {
  MappingCache cache(4);
  cache.Put(Key(1), Entry("a"));
  EXPECT_NE(cache.Get(Key(1)), nullptr);
  cache.Clear();
  EXPECT_EQ(cache.Get(Key(1)), nullptr);
  MappingCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST(MappingCacheTest, CapacityClampedToOne) {
  MappingCache cache(0);
  EXPECT_EQ(cache.capacity(), 1u);
  cache.Put(Key(1), Entry("a"));
  cache.Put(Key(2), Entry("b"));
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(MappingCacheTest, GetStaleDoesNotRefreshRecency) {
  // A degraded lookup must not promote its entry: the stale path is a
  // last-resort read, not a signal the entry is hot. If GetStale spliced,
  // entry 2 (not 1) would be evicted below.
  MappingCache cache(2);
  cache.Put(Key(1, "workstation", 0), Entry("a"));  // becomes LRU
  cache.Put(Key(2, "workstation", 0), Entry("b"));
  EXPECT_NE(cache.GetStale(Key(1, "workstation", 5)), nullptr);
  cache.Put(Key(3, "workstation", 0), Entry("c"));  // evicts 1, not 2
  EXPECT_EQ(cache.Get(Key(1, "workstation", 0)), nullptr);
  EXPECT_NE(cache.Get(Key(2, "workstation", 0)), nullptr);
  EXPECT_NE(cache.Get(Key(3, "workstation", 0)), nullptr);
}

TEST(MappingCacheTest, GetStaleMissLeavesStatsUntouched) {
  MappingCache cache(4);
  cache.Put(Key(1), Entry("a"));
  EXPECT_EQ(cache.GetStale(Key(2)), nullptr);  // nothing matches at all
  MappingCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.stale_hits, 0u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u) << "a degraded probe is not a regular miss";
}

TEST(MappingCacheTest, GetStaleHitDoesNotCountSavedBytes) {
  // bytes_saved measures healthy compiles avoided; a stale fallback did not
  // avoid the compile — the compile failed — so it must not inflate the
  // counter.
  MappingCache cache(4);
  cache.Put(Key(1, "workstation", 0), Entry("a"));
  EXPECT_NE(cache.GetStale(Key(1, "workstation", 9)), nullptr);
  MappingCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.stale_hits, 1u);
  EXPECT_EQ(stats.bytes_saved, 0u);
}

TEST(MappingCacheTest, GetStaleFallsBackAfterFreshestGenerationEvicted) {
  // Eviction interplay: once the freshest generation is evicted, the stale
  // path serves the next-freshest survivor rather than nothing.
  MappingCache cache(2);
  auto old_entry = Entry("old");
  auto new_entry = Entry("new");
  cache.Put(Key(1, "workstation", 3), old_entry);
  cache.Put(Key(1, "workstation", 7), new_entry);
  EXPECT_EQ(cache.GetStale(Key(1, "workstation", 9)), new_entry);
  EXPECT_NE(cache.Get(Key(1, "workstation", 3)), nullptr);  // make gen 7 the LRU
  cache.Put(Key(2, "workstation", 0), Entry("c"));          // evicts gen 7
  EXPECT_EQ(cache.GetStale(Key(1, "workstation", 9)), old_entry);
}

}  // namespace
}  // namespace cmif
