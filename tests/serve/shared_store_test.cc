// Concurrency hammer for the shared ddbms wrappers: N threads mix captures
// (writes) with point gets and attribute queries (reads) over one store.
// These are the TSan targets of the CI thread-sanitizer job; assertions are
// deliberately coarse (no lost writes, consistent copies, generation
// monotonic) because the interesting property is the absence of data races.
#include "src/ddbms/shared_store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/attr/attr_list.h"
#include "src/base/string_util.h"
#include "src/media/data_block.h"
#include "src/media/text.h"

namespace cmif {
namespace {

DataDescriptor MakeDescriptor(const std::string& id, std::int64_t bytes) {
  AttrList attrs;
  attrs.Set("medium", AttrValue::Id("text"));
  attrs.Set("bytes", AttrValue::Number(bytes));
  return DataDescriptor(id, std::move(attrs));
}

TEST(SharedDescriptorStoreTest, PointOpsRoundTrip) {
  SharedDescriptorStore store;
  EXPECT_TRUE(store.Add(MakeDescriptor("a", 10)).ok());
  EXPECT_FALSE(store.Add(MakeDescriptor("a", 10)).ok());  // duplicate id
  store.Upsert(MakeDescriptor("b", 20));
  EXPECT_EQ(store.size(), 2u);
  auto copy = store.GetCopy("b");
  ASSERT_TRUE(copy.has_value());
  EXPECT_EQ(copy->DeclaredBytes(), 20);
  EXPECT_FALSE(store.GetCopy("missing").has_value());
  EXPECT_TRUE(store.Remove("a"));
  EXPECT_EQ(store.size(), 1u);
}

TEST(SharedDescriptorStoreTest, GenerationBumpsOnEveryWriteSection) {
  SharedDescriptorStore store;
  EXPECT_EQ(store.generation(), 0u);
  store.Upsert(MakeDescriptor("a", 1));
  EXPECT_EQ(store.generation(), 1u);
  store.WithWrite([](DescriptorStore& inner) {
    inner.Upsert(MakeDescriptor("b", 2));
    inner.Upsert(MakeDescriptor("c", 3));
    return 0;
  });
  EXPECT_EQ(store.generation(), 2u);  // one section, one bump
  (void)store.GetCopy("a");
  EXPECT_EQ(store.generation(), 2u);  // reads never bump
}

TEST(SharedDescriptorStoreTest, ConcurrentCaptureAndQueryHammer) {
  SharedDescriptorStore store;
  constexpr int kWriters = 4;
  constexpr int kReaders = 4;
  constexpr int kPerWriter = 200;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&store, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        store.Upsert(MakeDescriptor(StrFormat("w%d-d%d", w, i), w * 1000 + i));
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&store, &stop, &reads, r] {
      Query query = Query::Eq("medium", AttrValue::Id("text"));
      std::uint64_t local = 0;
      // do-while: every reader completes at least one pass even if the
      // writers finish before this thread is first scheduled (single-core
      // machines), so the reads>0 assertion below is deterministic.
      do {
        std::vector<DataDescriptor> results = store.ExecuteCopy(query);
        for (const DataDescriptor& descriptor : results) {
          // Every copied-out descriptor must be internally consistent.
          ASSERT_FALSE(descriptor.id().empty());
        }
        auto copy = store.GetCopy(StrFormat("w%d-d%d", r % kWriters, 0));
        if (copy.has_value()) {
          ASSERT_EQ(copy->id(), StrFormat("w%d-d%d", r % kWriters, 0));
        }
        ++local;
      } while (!stop.load(std::memory_order_relaxed));
      reads.fetch_add(local, std::memory_order_relaxed);
    });
  }
  for (int w = 0; w < kWriters; ++w) {
    threads[w].join();
  }
  stop.store(true, std::memory_order_relaxed);
  for (int t = kWriters; t < kWriters + kReaders; ++t) {
    threads[t].join();
  }

  EXPECT_EQ(store.size(), static_cast<std::size_t>(kWriters * kPerWriter));
  EXPECT_EQ(store.generation(), static_cast<std::uint64_t>(kWriters * kPerWriter));
  EXPECT_GT(reads.load(), 0u);
}

TEST(SharedBlockStoreTest, ConcurrentPutAndGetHammer) {
  SharedBlockStore store;
  constexpr int kWriters = 3;
  constexpr int kPerWriter = 50;
  std::atomic<bool> stop{false};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&store, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        DataBlock block =
            DataBlock::FromText(TextBlock(StrFormat("payload %d/%d", w, i), TextFormatting{}));
        store.Set(StrFormat("w%d-b%d", w, i), std::move(block));
      }
    });
  }
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&store, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        (void)store.TotalBytes();
        if (store.Has("w0-b0")) {
          ASSERT_TRUE(store.Get("w0-b0").ok());
        }
      }
    });
  }
  for (std::thread& writer : threads) {
    writer.join();
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& reader : readers) {
    reader.join();
  }

  EXPECT_EQ(store.size(), static_cast<std::size_t>(kWriters * kPerWriter));
  EXPECT_GT(store.TotalBytes(), 0u);
}

TEST(ShardedRwLockTest, ManyConcurrentReadersOneWriter) {
  ShardedRwLock lock(4);
  EXPECT_EQ(lock.stripes(), 4);
  int shared_value = 0;
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        ShardedRwLock::ReadGuard guard(lock);
        int value = shared_value;
        ASSERT_GE(value, 0);
      }
    });
  }
  for (int i = 0; i < 1000; ++i) {
    ShardedRwLock::WriteGuard guard(lock);
    ++shared_value;
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& reader : readers) {
    reader.join();
  }
  EXPECT_EQ(shared_value, 1000);
}

}  // namespace
}  // namespace cmif
