#include "src/serve/serve.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "src/news/evening_news.h"
#include "src/pipeline/pipeline.h"

namespace cmif {
namespace {

std::unique_ptr<ServeCorpus> Corpus(int documents) {
  auto corpus = BuildNewsCorpus(documents);
  EXPECT_TRUE(corpus.ok()) << corpus.status();
  return std::move(corpus).value();
}

TEST(ServeCorpusTest, MergesVariantCatalogsIntoOneStore) {
  auto corpus = Corpus(3);
  EXPECT_EQ(corpus->size(), 3u);
  // Variants share story-prefix descriptors: the merged store is smaller
  // than the sum of the three catalogs but covers the largest variant.
  EXPECT_GT(corpus->store().size(), 0u);
  auto one_story = BuildEveningNews(NewsOptions{});
  ASSERT_TRUE(one_story.ok());
  EXPECT_GE(corpus->store().size(), one_story->store.size());
  // Distinct corpus slots never share a document hash, even with equal text.
  std::set<std::uint64_t> hashes;
  for (std::size_t i = 0; i < corpus->size(); ++i) {
    hashes.insert(corpus->document(i).document_hash);
  }
  EXPECT_EQ(hashes.size(), corpus->size());
}

TEST(ServeTraceTest, DeterministicUnderFixedSeed) {
  ServeOptions options;
  options.seed = 42;
  options.zipf_skew = 1.0;
  std::vector<ServeRequest> a = GenerateTrace(8, 500, options);
  std::vector<ServeRequest> b = GenerateTrace(8, 500, options);
  ASSERT_EQ(a.size(), 500u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].document, b[i].document);
    EXPECT_EQ(a[i].profile, b[i].profile);
  }
  options.seed = 43;
  std::vector<ServeRequest> c = GenerateTrace(8, 500, options);
  bool differs = false;
  for (std::size_t i = 0; i < c.size(); ++i) {
    differs = differs || c[i].document != a[i].document || c[i].profile != a[i].profile;
  }
  EXPECT_TRUE(differs);
}

TEST(ServeTraceTest, ZipfSkewConcentratesOnHotDocuments) {
  ServeOptions options;
  options.zipf_skew = 1.0;
  std::vector<ServeRequest> trace = GenerateTrace(16, 2000, options);
  std::size_t hot = 0;
  for (const ServeRequest& request : trace) {
    if (request.document == 0) {
      ++hot;
    }
  }
  // Rank 0 carries ~29% of Zipf(1.0) mass over 16 documents; uniform would
  // be 6.25%. Use a loose threshold to stay seed-robust.
  EXPECT_GT(hot, trace.size() / 6);
}

TEST(ServeLoopTest, CacheHitIsBitIdenticalToColdPath) {
  auto corpus = Corpus(2);
  ServeOptions options;
  options.threads = 1;
  ServeLoop loop(*corpus, options);

  ServeRequest request;
  request.document = 1;
  request.profile = 1;  // personal profile exercises filter planning
  auto cold = loop.Handle(request);
  ASSERT_TRUE(cold.ok()) << cold.status();
  EXPECT_EQ(loop.cache().stats().misses, 1u);

  auto warm = loop.Handle(request);
  ASSERT_TRUE(warm.ok()) << warm.status();
  EXPECT_EQ(loop.cache().stats().hits, 1u);
  EXPECT_EQ((*warm)->map.Serialize(), (*cold)->map.Serialize());

  // The compiled mapping must equal what a direct pipeline run produces.
  const ServeDocument& doc = corpus->document(request.document);
  auto direct = corpus->store().WithRead([&](const DescriptorStore& store) {
    return corpus->blocks().WithRead([&](const BlockStore& blocks) {
      PipelineOptions pipeline_options;
      pipeline_options.profile = options.profiles[request.profile];
      return CompilePresentation(doc.document, store, blocks, pipeline_options);
    });
  });
  ASSERT_TRUE(direct.ok()) << direct.status();
  EXPECT_EQ((*warm)->map.Serialize(), direct->presentation_map.Serialize());
  EXPECT_EQ((*warm)->filter.plans.size(), direct->filter.plans.size());
  EXPECT_EQ((*warm)->schedule.schedule.events().size(), direct->schedule.schedule.events().size());
}

TEST(ServeLoopTest, StoreMutationInvalidatesCachedCompilations) {
  auto corpus = Corpus(1);
  ServeLoop loop(*corpus, ServeOptions{});
  ServeRequest request;
  ASSERT_TRUE(loop.Handle(request).ok());
  ASSERT_TRUE(loop.Handle(request).ok());
  EXPECT_EQ(loop.cache().stats().hits, 1u);

  // Any write section bumps the generation; the next request recompiles.
  corpus->store().WithWrite([](DescriptorStore&) { return 0; });
  ASSERT_TRUE(loop.Handle(request).ok());
  MappingCache::Stats stats = loop.cache().stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
}

TEST(ServeLoopTest, DisabledCacheAlwaysCompiles) {
  auto corpus = Corpus(1);
  ServeOptions options;
  options.use_cache = false;
  ServeLoop loop(*corpus, options);
  ServeRequest request;
  ASSERT_TRUE(loop.Handle(request).ok());
  ASSERT_TRUE(loop.Handle(request).ok());
  MappingCache::Stats stats = loop.cache().stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
}

TEST(ServeLoopTest, RejectsOutOfRangeRequests) {
  auto corpus = Corpus(1);
  ServeLoop loop(*corpus, ServeOptions{});
  ServeRequest request;
  request.document = 5;
  EXPECT_EQ(loop.Handle(request).status().code(), StatusCode::kInvalidArgument);
}

TEST(ServeLoopTest, EveningNewsIntegrationAtFourThreads) {
  auto corpus = Corpus(4);
  ServeOptions options;
  options.threads = 4;
  options.seed = 7;
  ServeLoop loop(*corpus, options);
  std::vector<ServeRequest> trace = GenerateTrace(corpus->size(), 200, options);
  auto stats = loop.Run(trace);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->requests, 200u);
  EXPECT_EQ(stats->errors, 0u);
  EXPECT_EQ(stats->cache_hits + stats->cache_misses, 200u);
  // 4 documents x 2 profiles = 8 distinct compilations; concurrent workers
  // may stampede on a not-yet-filled key, so at most one extra miss per
  // worker per key.
  EXPECT_LE(stats->cache_misses, 8u * 4u);
  EXPECT_GE(stats->cache_hits, 200u - 8u * 4u);
  EXPECT_GT(stats->throughput_rps, 0.0);
  EXPECT_GE(stats->p99_ms, stats->p50_ms);
  EXPECT_FALSE(stats->Summary().empty());

  // A second pass over the same trace is fully warm.
  auto warm = loop.Run(trace);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->cache_misses, 0u);
  EXPECT_EQ(warm->cache_hits, 200u);
}

TEST(ServeLoopTest, ConcurrentRequestsWithConcurrentCaptures) {
  // The integration-level race check: serve traffic while a writer keeps
  // capturing new descriptors into the shared store.
  auto corpus = Corpus(2);
  ServeOptions options;
  options.threads = 4;
  ServeLoop loop(*corpus, options);
  std::vector<ServeRequest> trace = GenerateTrace(corpus->size(), 100, options);

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    int i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      AttrList attrs;
      attrs.Set("medium", AttrValue::Id("text"));
      corpus->store().Upsert(DataDescriptor("hammer-" + std::to_string(i++), std::move(attrs)));
    }
  });
  auto stats = loop.Run(trace);
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->errors, 0u);
  EXPECT_EQ(stats->requests, 100u);
}

}  // namespace
}  // namespace cmif
