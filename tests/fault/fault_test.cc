#include "src/fault/fault.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/fault/clock.h"

namespace cmif {
namespace fault {
namespace {

class GlobalFakeClock {
 public:
  GlobalFakeClock() { SetGlobalClockForTest(&clock_); }
  ~GlobalFakeClock() { SetGlobalClockForTest(nullptr); }
  FakeClock* operator->() { return &clock_; }

 private:
  FakeClock clock_;
};

TEST(FaultPlanTest, ParseFullSpec) {
  auto plan = FaultPlan::Parse(
      "seed=42;ddbms.block.get:transient=0.05,latency=0.1@20ms;serve.compile:stall=0.01@250ms");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->seed, 42u);
  ASSERT_EQ(plan->sites.size(), 2u);
  EXPECT_EQ(plan->sites[0].first, "ddbms.block.get");
  EXPECT_DOUBLE_EQ(plan->sites[0].second.transient_p, 0.05);
  EXPECT_DOUBLE_EQ(plan->sites[0].second.latency_p, 0.1);
  EXPECT_EQ(plan->sites[0].second.latency_ms, 20);
  EXPECT_EQ(plan->sites[1].first, "serve.compile");
  EXPECT_DOUBLE_EQ(plan->sites[1].second.stall_p, 0.01);
  EXPECT_EQ(plan->sites[1].second.stall_ms, 250);
}

TEST(FaultPlanTest, ParseRejectsBadSpecs) {
  // Known sites throughout, so each spec is rejected for the reason under
  // test rather than tripping the unknown-site check first.
  EXPECT_FALSE(FaultPlan::Parse("no-colon-here").ok());
  EXPECT_FALSE(FaultPlan::Parse("serve.compile:mystery=0.5").ok());
  EXPECT_FALSE(FaultPlan::Parse("serve.compile:transient=1.5").ok());
  EXPECT_FALSE(FaultPlan::Parse("serve.compile:transient=0.6,latency=0.6").ok());  // sum > 1
  EXPECT_FALSE(FaultPlan::Parse("serve.compile:latency=0.5@-3ms").ok());
  EXPECT_FALSE(FaultPlan::Parse(":transient=0.5").ok());  // empty site
}

TEST(FaultPlanTest, ParseRejectsUnknownSites) {
  // A typo'd site would silently arm nothing; Parse must fail loudly and
  // name the known registry in the error.
  auto plan = FaultPlan::Parse("ddbms.blok.get:transient=0.5");
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(plan.status().message().find("unknown fault site 'ddbms.blok.get'"),
            std::string::npos)
      << plan.status();
  EXPECT_NE(plan.status().message().find("ddbms.block.get"), std::string::npos) << plan.status();
  // One bad entry poisons the whole spec, even when others are valid.
  EXPECT_FALSE(FaultPlan::Parse("serve.compile:transient=0.1;nope.nope:transient=0.1").ok());
  // A registered site that merely prefix-shares a name is not a match.
  EXPECT_FALSE(FaultPlan::Parse("serve.compiler:transient=0.1").ok());
}

TEST(FaultPlanTest, ParseAcceptsPrefixAndFamilyPatterns) {
  // Prefix patterns cover whole subsystems ("net" arms every net.* probe).
  EXPECT_TRUE(FaultPlan::Parse("net:transient=0.1").ok());
  EXPECT_TRUE(FaultPlan::Parse("fs.pcache:transient=0.1").ok());
  // Family specialization: "player.device" is registered as a family root,
  // so per-channel specializations under it are real probes.
  EXPECT_TRUE(FaultPlan::Parse("player.device:transient=0.1").ok());
  EXPECT_TRUE(FaultPlan::Parse("player.device.video:transient=0.1").ok());
  // Exact new pcache sites round-trip too.
  EXPECT_TRUE(FaultPlan::Parse("fs.pcache.write:corrupt=0.2").ok());
  EXPECT_TRUE(FaultPlan::Parse("fs.pcache.rename:transient=0.1").ok());
}

TEST(FaultPlanTest, KnownFaultSiteRegistry) {
  const std::vector<std::string_view>& sites = KnownFaultSites();
  ASSERT_FALSE(sites.empty());
  for (std::string_view site : sites) {
    EXPECT_TRUE(IsKnownFaultSitePattern(site)) << site;
  }
  EXPECT_FALSE(IsKnownFaultSitePattern(""));
  EXPECT_FALSE(IsKnownFaultSitePattern("fs.pcache.writes"));
#ifndef CMIF_FAULT_DISABLED
  // SetPlan stays unrestricted: tests may arm ad-hoc sites directly.
  FaultPlan adhoc;
  FaultSiteConfig config;
  config.transient_p = 1;
  adhoc.sites.emplace_back("totally.made.up", config);
  ScopedPlan scoped(adhoc);
  EXPECT_EQ(InjectPoint("totally.made.up").code(), StatusCode::kUnavailable);
#endif
}

TEST(FaultPlanTest, ToStringRoundTrips) {
  auto plan = FaultPlan::Parse(
      "seed=7;ddbms.block.get:transient=0.05,latency=0.1@20ms,stall=0.01@100ms;"
      "ddbms.persist.read:corrupt=0.25");
  ASSERT_TRUE(plan.ok());
  auto reparsed = FaultPlan::Parse(plan->ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(reparsed->seed, plan->seed);
  ASSERT_EQ(reparsed->sites.size(), plan->sites.size());
  for (std::size_t i = 0; i < plan->sites.size(); ++i) {
    EXPECT_EQ(reparsed->sites[i].first, plan->sites[i].first);
    EXPECT_DOUBLE_EQ(reparsed->sites[i].second.transient_p, plan->sites[i].second.transient_p);
    EXPECT_DOUBLE_EQ(reparsed->sites[i].second.corrupt_p, plan->sites[i].second.corrupt_p);
    EXPECT_EQ(reparsed->sites[i].second.latency_ms, plan->sites[i].second.latency_ms);
    EXPECT_EQ(reparsed->sites[i].second.stall_ms, plan->sites[i].second.stall_ms);
  }
}

TEST(FaultPlanTest, StandardChaosPlanEscalates) {
  EXPECT_TRUE(StandardChaosPlan(0).empty());
  FaultPlan level1 = StandardChaosPlan(1);
  FaultPlan level3 = StandardChaosPlan(3);
  ASSERT_FALSE(level1.empty());
  ASSERT_EQ(level1.sites.size(), level3.sites.size());
  EXPECT_GT(level3.sites[0].second.transient_p, level1.sites[0].second.transient_p);
  // The ladder's spec form parses back.
  EXPECT_TRUE(FaultPlan::Parse(level1.ToString()).ok());
}

#ifdef CMIF_FAULT_DISABLED

TEST(FaultProbeTest, DisabledBuildCompilesProbesToNoops) {
  ScopedPlan chaos(StandardChaosPlan(3));
  EXPECT_FALSE(Enabled());
  EXPECT_TRUE(InjectPoint("ddbms.block.get").ok());
  DeviceFault fault = InjectDeviceFault("player.device.video");
  EXPECT_FALSE(fault.drop);
  EXPECT_EQ(fault.extra_latency_ms, 0);
  std::string payload = "payload";
  EXPECT_FALSE(MaybeCorrupt("ddbms.persist.read", payload));
  EXPECT_EQ(payload, "payload");
}

#else  // probes compiled in

FaultPlan SingleSite(const std::string& site, FaultSiteConfig config, std::uint64_t seed = 9) {
  FaultPlan plan;
  plan.seed = seed;
  plan.sites.emplace_back(site, config);
  return plan;
}

TEST(FaultProbeTest, DisabledWithoutPlanAndAfterClear) {
  EXPECT_FALSE(Enabled());
  {
    FaultSiteConfig config;
    config.transient_p = 1.0;
    ScopedPlan chaos(SingleSite("x", config));
    EXPECT_TRUE(Enabled());
  }
  EXPECT_FALSE(Enabled());
  EXPECT_TRUE(InjectPoint("x").ok());
}

TEST(FaultProbeTest, TransientAlwaysFailsWithUnavailable) {
  FaultSiteConfig config;
  config.transient_p = 1.0;
  ScopedPlan chaos(SingleSite("ddbms.block.get", config));
  Status status = InjectPoint("ddbms.block.get");
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(Counts().transient, 1u);
  EXPECT_EQ(Counts().probes, 1u);
}

TEST(FaultProbeTest, UnmatchedSiteNeverFaults) {
  FaultSiteConfig config;
  config.transient_p = 1.0;
  ScopedPlan chaos(SingleSite("ddbms.block.get", config));
  EXPECT_TRUE(InjectPoint("serve.compile").ok());
  // Prefix matching needs a '.' boundary: "ddbms.block.getx" is a different
  // site, "ddbms.block.get.sub" is covered.
  EXPECT_TRUE(InjectPoint("ddbms.block.getx").ok());
  EXPECT_EQ(InjectPoint("ddbms.block.get.sub").code(), StatusCode::kUnavailable);
}

TEST(FaultProbeTest, DeterministicSequenceReplaysExactly) {
  FaultSiteConfig config;
  config.transient_p = 0.5;
  auto sequence = [&](std::uint64_t seed) {
    ScopedPlan chaos(SingleSite("site", config, seed));
    std::vector<bool> failed;
    for (int i = 0; i < 64; ++i) {
      failed.push_back(!InjectPoint("site").ok());
    }
    return failed;
  };
  std::vector<bool> first = sequence(9);
  std::vector<bool> second = sequence(9);
  EXPECT_EQ(first, second) << "same plan seed must replay the same fault sequence";
  EXPECT_NE(first, sequence(10)) << "different seed should diverge";
  // A 0.5 plan should actually fault sometimes and pass sometimes.
  std::size_t failures = 0;
  for (bool f : first) {
    failures += f ? 1 : 0;
  }
  EXPECT_GT(failures, 0u);
  EXPECT_LT(failures, first.size());
}

TEST(FaultProbeTest, LatencySleepsOnTheGlobalClock) {
  GlobalFakeClock clock;
  FaultSiteConfig config;
  config.latency_p = 1.0;
  config.latency_ms = 15;
  ScopedPlan chaos(SingleSite("slow", config));
  EXPECT_TRUE(InjectPoint("slow").ok());
  EXPECT_EQ(clock->slept_micros(), 15'000);
  EXPECT_EQ(Counts().latency, 1u);
}

TEST(FaultProbeTest, LatencyExceedingDeadlineFails) {
  GlobalFakeClock clock;
  FaultSiteConfig config;
  config.latency_p = 1.0;
  config.latency_ms = 15;
  ScopedPlan chaos(SingleSite("slow", config));
  ScopedDeadline deadline(5);
  Status status = InjectPoint("slow");
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  // The sleep was clamped to the 5 ms budget — the probe cannot overshoot.
  EXPECT_EQ(clock->slept_micros(), 5'000);
}

TEST(FaultProbeTest, StallIsDeadlineClampedAndAlwaysFails) {
  GlobalFakeClock clock;
  FaultSiteConfig config;
  config.stall_p = 1.0;
  config.stall_ms = 250;
  ScopedPlan chaos(SingleSite("hang", config));
  {
    ScopedDeadline deadline(20);
    EXPECT_EQ(InjectPoint("hang").code(), StatusCode::kUnavailable);
    EXPECT_EQ(clock->slept_micros(), 20'000) << "stall must not outlive the deadline";
  }
  // Without a deadline the stall runs its full length, then still fails.
  EXPECT_EQ(InjectPoint("hang").code(), StatusCode::kUnavailable);
  EXPECT_EQ(clock->slept_micros(), 20'000 + 250'000);
  EXPECT_EQ(Counts().stall, 2u);
}

TEST(FaultProbeTest, DeviceFaultsNeverSleep) {
  GlobalFakeClock clock;
  FaultSiteConfig config;
  config.latency_p = 0.5;
  config.transient_p = 0.5;
  ScopedPlan chaos(SingleSite("player.device", config));
  bool saw_drop = false;
  bool saw_latency = false;
  for (int i = 0; i < 64; ++i) {
    DeviceFault fault = InjectDeviceFault("player.device.video");
    saw_drop = saw_drop || fault.drop;
    saw_latency = saw_latency || fault.extra_latency_ms > 0;
  }
  EXPECT_TRUE(saw_drop);
  EXPECT_TRUE(saw_latency);
  EXPECT_EQ(clock->slept_micros(), 0) << "playback faults are virtual-time only";
}

TEST(FaultProbeTest, CorruptionMutatesDeterministically) {
  FaultSiteConfig config;
  config.corrupt_p = 1.0;
  const std::string original(64, 'a');
  auto corrupt_once = [&] {
    ScopedPlan chaos(SingleSite("ddbms.persist.read", config));
    std::string payload = original;
    EXPECT_TRUE(MaybeCorrupt("ddbms.persist.read", payload));
    return payload;
  };
  std::string first = corrupt_once();
  EXPECT_NE(first, original);
  EXPECT_EQ(first.size(), original.size());
  EXPECT_EQ(first, corrupt_once()) << "corruption positions derive from the seed";
}

TEST(FaultProbeTest, InjectPointIgnoresCorruptBand) {
  FaultSiteConfig config;
  config.corrupt_p = 1.0;
  ScopedPlan chaos(SingleSite("x", config));
  for (int i = 0; i < 16; ++i) {
    EXPECT_TRUE(InjectPoint("x").ok());
  }
  EXPECT_EQ(Counts().corrupt, 0u);
}

#endif  // CMIF_FAULT_DISABLED

}  // namespace
}  // namespace fault
}  // namespace cmif
