#include "src/fault/circuit_breaker.h"

#include <gtest/gtest.h>

namespace cmif {
namespace fault {
namespace {

class GlobalFakeClock {
 public:
  GlobalFakeClock() { SetGlobalClockForTest(&clock_); }
  ~GlobalFakeClock() { SetGlobalClockForTest(nullptr); }
  FakeClock* operator->() { return &clock_; }

 private:
  FakeClock clock_;
};

BreakerOptions TestOptions() {
  BreakerOptions options;
  options.failure_threshold = 3;
  options.open_ms = 100;
  options.half_open_successes = 2;
  options.half_open_probes = 2;
  return options;
}

TEST(CircuitBreakerTest, StaysClosedBelowThreshold) {
  GlobalFakeClock clock;
  CircuitBreaker breaker(TestOptions());
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.Allow());
  // A success resets the consecutive-failure count.
  breaker.RecordSuccess();
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.opens(), 0u);
}

TEST(CircuitBreakerTest, OpensAtThresholdAndFailsFast) {
  GlobalFakeClock clock;
  CircuitBreaker breaker(TestOptions());
  for (int i = 0; i < 3; ++i) {
    breaker.RecordFailure();
  }
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.opens(), 1u);
  EXPECT_FALSE(breaker.Allow());
  EXPECT_FALSE(breaker.Allow());
  EXPECT_EQ(breaker.rejected(), 2u);
}

TEST(CircuitBreakerTest, OpenToHalfOpenToClosed) {
  GlobalFakeClock clock;
  CircuitBreaker breaker(TestOptions());
  for (int i = 0; i < 3; ++i) {
    breaker.RecordFailure();
  }
  EXPECT_FALSE(breaker.Allow());

  clock->AdvanceMicros(100 * 1000);  // the open window elapses
  EXPECT_TRUE(breaker.Allow());      // first probe transitions to half-open
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_TRUE(breaker.Allow());      // second probe fits the round
  EXPECT_FALSE(breaker.Allow());     // probe budget exhausted
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.Allow());
}

TEST(CircuitBreakerTest, HalfOpenFailureReopensImmediately) {
  GlobalFakeClock clock;
  CircuitBreaker breaker(TestOptions());
  for (int i = 0; i < 3; ++i) {
    breaker.RecordFailure();
  }
  clock->AdvanceMicros(100 * 1000);
  EXPECT_TRUE(breaker.Allow());
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  breaker.RecordFailure();  // one failed probe is enough
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.opens(), 2u);
  EXPECT_FALSE(breaker.Allow());
  // The reopened window is timed from the failure, not the original open.
  clock->AdvanceMicros(99 * 1000);
  EXPECT_FALSE(breaker.Allow());
  clock->AdvanceMicros(2 * 1000);
  EXPECT_TRUE(breaker.Allow());
}

TEST(CircuitBreakerTest, SuccessWhileClosedIsCheapNoop) {
  GlobalFakeClock clock;
  CircuitBreaker breaker(TestOptions());
  for (int i = 0; i < 100; ++i) {
    breaker.RecordSuccess();
  }
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.opens(), 0u);
  EXPECT_EQ(breaker.rejected(), 0u);
}

TEST(BreakerSetTest, StableAddressesPerKey) {
  GlobalFakeClock clock;
  BreakerSet set(TestOptions());
  CircuitBreaker* video = &set.For("video");
  CircuitBreaker* audio = &set.For("audio");
  EXPECT_NE(video, audio);
  EXPECT_EQ(&set.For("video"), video);
  EXPECT_EQ(&set.For("audio"), audio);
}

TEST(BreakerSetTest, StatesAndTotalOpens) {
  GlobalFakeClock clock;
  BreakerSet set(TestOptions());
  for (int i = 0; i < 3; ++i) {
    set.For("video").RecordFailure();
  }
  set.For("audio").RecordSuccess();
  auto states = set.States();
  ASSERT_EQ(states.size(), 2u);
  EXPECT_EQ(states["video"], BreakerState::kOpen);
  EXPECT_EQ(states["audio"], BreakerState::kClosed);
  EXPECT_EQ(set.TotalOpens(), 1u);
}

}  // namespace
}  // namespace fault
}  // namespace cmif
