#include "src/fault/retry.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/base/status.h"

namespace cmif {
namespace fault {
namespace {

class GlobalFakeClock {
 public:
  GlobalFakeClock() { SetGlobalClockForTest(&clock_); }
  ~GlobalFakeClock() { SetGlobalClockForTest(nullptr); }
  FakeClock* operator->() { return &clock_; }

 private:
  FakeClock clock_;
};

RetryPolicy NoJitterPolicy() {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_ms = 4;
  policy.multiplier = 2.0;
  policy.max_backoff_ms = 100;
  policy.jitter = 0;
  return policy;
}

TEST(BackoffTest, ExponentialWithoutJitter) {
  RetryPolicy policy = NoJitterPolicy();
  EXPECT_EQ(BackoffDelayMs(policy, 2), 4);
  EXPECT_EQ(BackoffDelayMs(policy, 3), 8);
  EXPECT_EQ(BackoffDelayMs(policy, 4), 16);
  EXPECT_EQ(BackoffDelayMs(policy, 5), 32);
}

TEST(BackoffTest, CappedAtMaxBackoff) {
  RetryPolicy policy = NoJitterPolicy();
  policy.max_backoff_ms = 10;
  EXPECT_EQ(BackoffDelayMs(policy, 2), 4);
  EXPECT_EQ(BackoffDelayMs(policy, 3), 8);
  EXPECT_EQ(BackoffDelayMs(policy, 4), 10);
  EXPECT_EQ(BackoffDelayMs(policy, 9), 10);
}

TEST(BackoffTest, JitterIsDeterministicAndBounded) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 16;
  policy.jitter = 0.5;
  policy.seed = 7;
  for (int attempt = 2; attempt <= 6; ++attempt) {
    std::int64_t a = BackoffDelayMs(policy, attempt, /*salt=*/123);
    std::int64_t b = BackoffDelayMs(policy, attempt, /*salt=*/123);
    EXPECT_EQ(a, b) << "same (seed, salt, attempt) must give the same delay";
    EXPECT_GE(a, 1);
    EXPECT_LE(a, policy.max_backoff_ms);
  }
  // Different salts decorrelate the jitter stream (not equal for every
  // attempt; a single collision is fine).
  bool any_difference = false;
  for (int attempt = 2; attempt <= 6; ++attempt) {
    if (BackoffDelayMs(policy, attempt, 1) != BackoffDelayMs(policy, attempt, 2)) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(RetryTest, FirstSuccessNeedsNoSleep) {
  GlobalFakeClock clock;
  int calls = 0;
  int attempts = 0;
  Status status = Retry(
      NoJitterPolicy(),
      [&] {
        ++calls;
        return Status::Ok();
      },
      /*salt=*/0, &attempts);
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(attempts, 1);
  EXPECT_EQ(clock->slept_micros(), 0);
}

TEST(RetryTest, RetriesUnavailableWithExactBackoff) {
  GlobalFakeClock clock;
  int calls = 0;
  int attempts = 0;
  Status status = Retry(
      NoJitterPolicy(),
      [&]() -> Status {
        ++calls;
        if (calls < 3) {
          return UnavailableError("transient");
        }
        return Status::Ok();
      },
      /*salt=*/0, &attempts);
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(attempts, 3);
  // Slept exactly the backoff before attempts 2 and 3: 4 ms + 8 ms.
  EXPECT_EQ(clock->slept_micros(), (4 + 8) * 1000);
}

TEST(RetryTest, ExhaustsAttemptsAndReturnsLastError) {
  GlobalFakeClock clock;
  int calls = 0;
  Status status = Retry(NoJitterPolicy(), [&]() -> Status {
    ++calls;
    return UnavailableError("still down");
  });
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(clock->slept_micros(), (4 + 8 + 16) * 1000);
}

TEST(RetryTest, NonRetryableReturnsImmediately) {
  GlobalFakeClock clock;
  int calls = 0;
  Status status = Retry(NoJitterPolicy(), [&]() -> Status {
    ++calls;
    return InvalidArgumentError("permanent");
  });
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(clock->slept_micros(), 0);
}

TEST(RetryTest, WorksWithStatusOr) {
  GlobalFakeClock clock;
  int calls = 0;
  auto result = Retry(NoJitterPolicy(), [&]() -> StatusOr<int> {
    ++calls;
    if (calls < 2) {
      return UnavailableError("transient");
    }
    return 42;
  });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(calls, 2);
}

TEST(RetryTest, AttemptDeadlineBoundsEachAttempt) {
  GlobalFakeClock clock;
  RetryPolicy policy = NoJitterPolicy();
  policy.attempt_deadline_ms = 25;
  std::vector<std::int64_t> budgets;
  Status status = Retry(policy, [&]() -> Status {
    budgets.push_back(RemainingDeadlineMicros());
    return UnavailableError("transient");
  });
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  ASSERT_EQ(budgets.size(), 4u);
  for (std::int64_t budget : budgets) {
    EXPECT_EQ(budget, 25'000) << "each attempt gets a fresh deadline";
  }
  EXPECT_FALSE(DeadlineExpired());  // restored after the last attempt
}

TEST(RetryTest, ZeroAttemptsStillRunsOnce) {
  RetryPolicy policy = NoJitterPolicy();
  policy.max_attempts = 0;
  int calls = 0;
  Status status = Retry(policy, [&]() -> Status {
    ++calls;
    return UnavailableError("transient");
  });
  EXPECT_EQ(calls, 1);
  EXPECT_FALSE(status.ok());
}

}  // namespace
}  // namespace fault
}  // namespace cmif
