#include "src/fault/clock.h"

#include <gtest/gtest.h>

namespace cmif {
namespace fault {
namespace {

class GlobalFakeClock {
 public:
  explicit GlobalFakeClock(std::int64_t start_micros = 0) : clock_(start_micros) {
    SetGlobalClockForTest(&clock_);
  }
  ~GlobalFakeClock() { SetGlobalClockForTest(nullptr); }
  FakeClock& operator*() { return clock_; }
  FakeClock* operator->() { return &clock_; }

 private:
  FakeClock clock_;
};

TEST(FakeClockTest, SleepAdvancesInsteadOfBlocking) {
  FakeClock clock(1000);
  EXPECT_EQ(clock.NowMicros(), 1000);
  clock.SleepMicros(500);
  EXPECT_EQ(clock.NowMicros(), 1500);
  EXPECT_EQ(clock.slept_micros(), 500);
  clock.SleepMicros(-10);  // negative is a no-op
  EXPECT_EQ(clock.NowMicros(), 1500);
  clock.AdvanceMicros(250);
  EXPECT_EQ(clock.NowMicros(), 1750);
  EXPECT_EQ(clock.slept_micros(), 500);  // advances are not sleeps
}

TEST(FakeClockTest, GlobalOverrideAndRestore) {
  {
    GlobalFakeClock fake(42);
    EXPECT_EQ(GlobalClock().NowMicros(), 42);
  }
  // Back on the system clock: time moves forward on its own epoch.
  std::int64_t a = GlobalClock().NowMicros();
  std::int64_t b = GlobalClock().NowMicros();
  EXPECT_GE(b, a);
}

TEST(ScopedDeadlineTest, NoDeadlineByDefault) {
  EXPECT_FALSE(DeadlineExpired());
  EXPECT_GT(RemainingDeadlineMicros(), std::int64_t{1000} * 1000 * 1000 * 1000);
}

TEST(ScopedDeadlineTest, BoundsAndExpires) {
  GlobalFakeClock fake;
  ScopedDeadline deadline(10);  // 10 ms
  EXPECT_EQ(RemainingDeadlineMicros(), 10'000);
  EXPECT_FALSE(DeadlineExpired());
  fake->AdvanceMicros(9'000);
  EXPECT_EQ(RemainingDeadlineMicros(), 1'000);
  fake->AdvanceMicros(2'000);
  EXPECT_TRUE(DeadlineExpired());
  EXPECT_LE(RemainingDeadlineMicros(), 0);
}

TEST(ScopedDeadlineTest, NestedKeepsTighterBoundAndRestores) {
  GlobalFakeClock fake;
  ScopedDeadline outer(100);
  EXPECT_EQ(RemainingDeadlineMicros(), 100'000);
  {
    ScopedDeadline inner(10);
    EXPECT_EQ(RemainingDeadlineMicros(), 10'000);
    {
      // A looser nested deadline must not extend the inner bound.
      ScopedDeadline looser(50);
      EXPECT_EQ(RemainingDeadlineMicros(), 10'000);
    }
    EXPECT_EQ(RemainingDeadlineMicros(), 10'000);
  }
  EXPECT_EQ(RemainingDeadlineMicros(), 100'000);
}

TEST(ScopedDeadlineTest, NonPositiveBudgetIsNoDeadline) {
  ScopedDeadline none(0);
  EXPECT_FALSE(DeadlineExpired());
  ScopedDeadline negative(-5);
  EXPECT_FALSE(DeadlineExpired());
}

}  // namespace
}  // namespace fault
}  // namespace cmif
