// Full-system scenarios: author -> validate -> transport -> filter ->
// schedule -> play, across capability profiles, with navigation. These are
// the paper's claims exercised end to end.
#include <gtest/gtest.h>

#include "src/ddbms/persist.h"
#include "src/doc/stats.h"
#include "src/doc/validate.h"
#include "src/fmt/parser.h"
#include "src/fmt/writer.h"
#include "src/news/evening_news.h"
#include "src/pipeline/pipeline.h"
#include "src/sched/navigate.h"

namespace cmif {
namespace {

TEST(EndToEndTest, AuthorTransportFilterPlay) {
  // System A: author and serialize (structure + catalog, no media bytes).
  NewsOptions news_options;
  news_options.stories = 2;
  auto workload = BuildEveningNews(news_options);
  ASSERT_TRUE(workload.ok());
  auto document_text = WriteDocument(workload->document);
  ASSERT_TRUE(document_text.ok());
  auto catalog_text = WriteCatalog(workload->store);
  ASSERT_TRUE(catalog_text.ok());
  // The transported artifacts are tiny compared to the referenced media.
  DocumentStats stats = ComputeStats(workload->document, &workload->store);
  EXPECT_LT(document_text->size() + catalog_text->size(), stats.referenced_bytes / 50);

  // System B: parse, validate, run the pipeline on a weak profile.
  auto document_b = ParseDocument(*document_text);
  ASSERT_TRUE(document_b.ok());
  auto store_b = ReadCatalog(*catalog_text);
  ASSERT_TRUE(store_b.ok());
  EXPECT_TRUE(ValidateDocument(*document_b, &*store_b).ok());

  PipelineOptions pipeline_options;
  pipeline_options.profile = PersonalSystemProfile();
  BlockStore no_blocks;
  auto report = RunPipeline(*document_b, *store_b, no_blocks, pipeline_options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->schedule.feasible);
  EXPECT_TRUE(report->playback.trace.Verify().ok());
}

TEST(EndToEndTest, SeekResumePlaysTail) {
  auto workload = BuildEveningNews(NewsOptions{});
  ASSERT_TRUE(workload.ok());
  auto events = CollectEvents(workload->document, &workload->store);
  ASSERT_TRUE(events.ok());
  auto scheduled = ComputeSchedule(workload->document, *events);
  ASSERT_TRUE(scheduled.ok() && scheduled->feasible);

  MediaTime seek = MediaTime::Seconds(20);
  SeekAnalysis analysis = AnalyzeSeek(workload->document, scheduled->schedule, seek);
  PlayerOptions options;
  options.start_at = seek;
  auto resumed = Play(workload->document, scheduled->schedule, &workload->store, options);
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ(resumed->events_skipped, analysis.skipped.size());
  EXPECT_EQ(resumed->trace.size(),
            scheduled->schedule.events().size() - analysis.skipped.size());
}

TEST(EndToEndTest, HardSyncSurvivesSlowDeviceViaFreeze) {
  // On the portable profile the document freezes rather than breaking must
  // arcs; relative synchronization is preserved in the trace.
  NewsOptions news_options;
  news_options.stories = 1;
  auto workload = BuildEveningNews(news_options);
  ASSERT_TRUE(workload.ok());
  auto events = CollectEvents(workload->document, &workload->store);
  ASSERT_TRUE(events.ok());
  auto scheduled = ComputeSchedule(workload->document, *events);
  ASSERT_TRUE(scheduled.ok() && scheduled->feasible);

  PlayerOptions options;
  options.profile = PortableMonoProfile();
  auto run = Play(workload->document, scheduled->schedule, &workload->store, options);
  ASSERT_TRUE(run.ok());
  ASSERT_GT(run->trace.FreezeCount(), 0u);
  // Relative order per channel survived every freeze.
  EXPECT_TRUE(run->trace.Verify().ok());
}

TEST(EndToEndTest, DescriptorOnlyManipulationNeverTouchesMedia) {
  // The section-6 claim: everything up to playback works on a store with no
  // media payloads at all (attributes only).
  auto workload = BuildEveningNews(NewsOptions{});
  ASSERT_TRUE(workload.ok());
  DescriptorStore attribute_only;
  for (const DataDescriptor& d : workload->store.descriptors()) {
    ASSERT_TRUE(attribute_only.Add(DataDescriptor(d.id(), d.attrs())).ok());
  }
  EXPECT_TRUE(ValidateDocument(workload->document, &attribute_only).ok());
  auto events = CollectEvents(workload->document, &attribute_only);
  ASSERT_TRUE(events.ok());
  auto scheduled = ComputeSchedule(workload->document, *events);
  ASSERT_TRUE(scheduled.ok());
  EXPECT_TRUE(scheduled->feasible);
  auto plan = PlanDocumentFilter(workload->document, attribute_only, PersonalSystemProfile());
  ASSERT_TRUE(plan.ok());
  EXPECT_GT(plan->plans.size(), 0u);
}

TEST(EndToEndTest, CatalogTransportPreservesQueries) {
  auto workload = BuildEveningNews(NewsOptions{});
  ASSERT_TRUE(workload.ok());
  auto restored = ReadCatalog(*WriteCatalog(workload->store));
  ASSERT_TRUE(restored.ok());
  restored->CreateIndex("medium");
  auto query = ParseQuery("medium=video");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(restored->Execute(*query).size(),
            workload->store.ExecuteScan(*query).size());
}

}  // namespace
}  // namespace cmif
