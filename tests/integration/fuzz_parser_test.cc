// Failure injection on the transport layer: mutated, truncated and garbage
// inputs must never crash the parsers — they return kDataLoss (or parse, if
// the mutation happens to stay well-formed). Runs hundreds of deterministic
// mutations over the serialized Evening News and descriptor catalog.
#include <gtest/gtest.h>

#include "src/base/random.h"
#include "src/ddbms/persist.h"
#include "src/fmt/parser.h"
#include "src/fmt/writer.h"
#include "src/news/evening_news.h"

namespace cmif {
namespace {

std::string NewsText() {
  static const std::string* const kText = [] {
    auto workload = BuildEveningNews(NewsOptions{});
    auto text = WriteDocument(workload->document);
    return new std::string(std::move(text).value());
  }();
  return *kText;
}

std::string CatalogText() {
  static const std::string* const kText = [] {
    auto workload = BuildEveningNews(NewsOptions{});
    auto text = WriteCatalog(workload->store);
    return new std::string(std::move(text).value());
  }();
  return *kText;
}

std::string Mutate(std::string text, Rng& rng) {
  switch (rng.NextBelow(4)) {
    case 0: {  // truncate
      text.resize(rng.NextBelow(text.size() + 1));
      break;
    }
    case 1: {  // flip one byte
      if (!text.empty()) {
        std::size_t pos = static_cast<std::size_t>(rng.NextBelow(text.size()));
        text[pos] = static_cast<char>(rng.NextBelow(256));
      }
      break;
    }
    case 2: {  // delete a span
      if (text.size() > 2) {
        std::size_t pos = static_cast<std::size_t>(rng.NextBelow(text.size() - 1));
        std::size_t len = static_cast<std::size_t>(
            rng.NextBelow(std::min<std::uint64_t>(text.size() - pos, 40)));
        text.erase(pos, len);
      }
      break;
    }
    default: {  // insert noise
      std::size_t pos = static_cast<std::size_t>(rng.NextBelow(text.size() + 1));
      std::string noise;
      for (int i = 0; i < 8; ++i) {
        noise.push_back("()\"; abc0/-"[rng.NextBelow(11)]);
      }
      text.insert(pos, noise);
      break;
    }
  }
  return text;
}

class ParserFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ParserFuzz, MutatedDocumentsNeverCrash) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7349 + 11);
  std::string base = NewsText();
  for (int round = 0; round < 50; ++round) {
    std::string mutated = Mutate(base, rng);
    auto parsed = ParseDocument(mutated);  // must not crash or hang
    if (parsed.ok()) {
      // Accidentally-valid documents must re-serialize.
      EXPECT_TRUE(WriteDocument(*parsed).ok());
    }
  }
}

TEST_P(ParserFuzz, MutatedCatalogsNeverCrash) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 911 + 3);
  std::string base = CatalogText();
  for (int round = 0; round < 50; ++round) {
    std::string mutated = Mutate(base, rng);
    auto parsed = ReadCatalog(mutated);
    if (parsed.ok()) {
      EXPECT_TRUE(WriteCatalog(*parsed).ok());
    }
  }
}

TEST_P(ParserFuzz, PureGarbageIsRejectedCleanly) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 101);
  std::string garbage;
  for (int i = 0; i < 200; ++i) {
    garbage.push_back(static_cast<char>(rng.NextBelow(256)));
  }
  EXPECT_FALSE(ParseDocument(garbage).ok());
  EXPECT_FALSE(ReadCatalog(garbage).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range(0, 8));

std::string NestedSeqDocument(int levels) {
  std::string deep = "(cmif ";
  for (int i = 0; i < levels; ++i) {
    deep += "(seq () ";
  }
  deep += "(imm () \"x\")";
  for (int i = 0; i < levels; ++i) {
    deep += ")";
  }
  deep += ")";
  return deep;
}

TEST(ParserFuzzTest, DeeplyNestedInputDoesNotOverflowQuickly) {
  // The parser recurses per nesting level, so hostile input must hit the
  // depth cap as a clean error — not a stack overflow (sanitizer builds,
  // with their larger frames, would crash first without the cap).
  auto rejected = ParseDocument(NestedSeqDocument(2000));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kDataLoss);

  // Well beyond any real document, but under the cap: parses fine.
  auto parsed = ParseDocument(NestedSeqDocument(200));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->root().SubtreeSize(), 201u);
}

}  // namespace
}  // namespace cmif
