// Property: serialize(parse(serialize(doc))) is a fixed point, and parsing
// recovers the exact structure (kinds, names, attributes, arcs, payloads)
// for arbitrary generated documents. This is the transportability claim of
// the paper's abstract made executable.
#include <gtest/gtest.h>

#include "src/fmt/parser.h"
#include "src/fmt/writer.h"
#include "src/gen/docgen.h"
#include "src/news/evening_news.h"

namespace cmif {
namespace {

// Structural equality of two trees.
void ExpectSameTree(const Node& a, const Node& b, const std::string& where) {
  EXPECT_EQ(a.kind(), b.kind()) << where;
  EXPECT_EQ(a.attrs(), b.attrs()) << where;
  EXPECT_EQ(a.arcs(), b.arcs()) << where;
  if (a.kind() == NodeKind::kImm) {
    EXPECT_EQ(a.immediate_data(), b.immediate_data()) << where;
  }
  ASSERT_EQ(a.child_count(), b.child_count()) << where;
  for (std::size_t i = 0; i < a.child_count(); ++i) {
    ExpectSameTree(a.ChildAt(i), b.ChildAt(i), where + "/" + std::to_string(i));
  }
}

class RoundTripProperty : public ::testing::TestWithParam<int> {};

TEST_P(RoundTripProperty, GeneratedDocumentsSurviveTransport) {
  GenOptions options;
  options.seed = static_cast<std::uint64_t>(GetParam()) * 97 + 13;
  options.target_leaves = 30 + GetParam() * 5;
  options.arcs_per_composite = 0.7;
  auto workload = GenerateRandomDocument(options);
  ASSERT_TRUE(workload.ok()) << workload.status();

  auto text = WriteDocument(workload->document);
  ASSERT_TRUE(text.ok()) << text.status();
  auto parsed = ParseDocument(*text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();

  // Dictionaries survive.
  EXPECT_EQ(parsed->channels().size(), workload->document.channels().size());
  EXPECT_EQ(parsed->styles().size(), workload->document.styles().size());

  // Serialization is a fixed point.
  auto text2 = WriteDocument(*parsed);
  ASSERT_TRUE(text2.ok());
  EXPECT_EQ(*text, *text2);

  // The tree is structurally identical except for the dictionaries the
  // writer stores on the root; compare children subtree by subtree.
  ASSERT_EQ(parsed->root().child_count(), workload->document.root().child_count());
  for (std::size_t i = 0; i < parsed->root().child_count(); ++i) {
    ExpectSameTree(workload->document.root().ChildAt(i), parsed->root().ChildAt(i),
                   "child " + std::to_string(i));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripProperty, ::testing::Range(0, 15));

TEST(RoundTripNewsTest, EveningNewsSurvivesTransport) {
  auto workload = BuildEveningNews(NewsOptions{});
  ASSERT_TRUE(workload.ok());
  auto text = WriteDocument(workload->document);
  ASSERT_TRUE(text.ok());
  auto parsed = ParseDocument(*text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  auto text2 = WriteDocument(*parsed);
  ASSERT_TRUE(text2.ok());
  EXPECT_EQ(*text, *text2);
  for (std::size_t i = 0; i < parsed->root().child_count(); ++i) {
    ExpectSameTree(workload->document.root().ChildAt(i), parsed->root().ChildAt(i),
                   "news child " + std::to_string(i));
  }
}

}  // namespace
}  // namespace cmif
