// Schedule invariants over generated documents:
//  - the earliest schedule satisfies every constraint exactly;
//  - parents contain their children in time;
//  - seq children never overlap; channel events never overlap;
//  - transport (serialize + parse) preserves the schedule to the tick.
#include <gtest/gtest.h>

#include "src/fmt/parser.h"
#include "src/fmt/writer.h"
#include "src/gen/docgen.h"
#include "src/sched/conflict.h"

namespace cmif {
namespace {

class ScheduleProperty : public ::testing::TestWithParam<int> {};

TEST_P(ScheduleProperty, InvariantsHold) {
  GenOptions options;
  options.seed = static_cast<std::uint64_t>(GetParam()) * 131 + 3;
  // Any failure below must name the generating seed, so the log alone
  // reproduces it (cmif_tool check --seeds <seed>).
  SCOPED_TRACE(testing::Message() << "docgen seed=" << options.seed);
  options.target_leaves = 50;
  options.arcs_per_composite = 0.6;
  auto workload = GenerateRandomDocument(options);
  ASSERT_TRUE(workload.ok()) << workload.status();
  const Document& doc = workload->document;

  auto events = CollectEvents(doc, &workload->store);
  ASSERT_TRUE(events.ok()) << events.status();
  auto result = ComputeSchedule(doc, *events);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result->feasible);
  const Schedule& schedule = result->schedule;

  // Containment: every node lies within its parent's interval.
  doc.root().Visit([&](const Node& node) {
    if (node.parent() == nullptr) {
      return;
    }
    auto begin = schedule.BeginOf(node);
    auto end = schedule.EndOf(node);
    auto parent_begin = schedule.BeginOf(*node.parent());
    auto parent_end = schedule.EndOf(*node.parent());
    ASSERT_TRUE(begin.ok() && end.ok() && parent_begin.ok() && parent_end.ok());
    EXPECT_GE(*begin, *parent_begin) << node.DisplayPath();
    EXPECT_LE(*end, *parent_end) << node.DisplayPath();
    EXPECT_LE(*begin, *end) << node.DisplayPath();
  });

  // Seq children are ordered without overlap.
  doc.root().Visit([&](const Node& node) {
    if (node.kind() != NodeKind::kSeq) {
      return;
    }
    for (std::size_t i = 0; i + 1 < node.child_count(); ++i) {
      auto prev_end = schedule.EndOf(node.ChildAt(i));
      auto next_begin = schedule.BeginOf(node.ChildAt(i + 1));
      ASSERT_TRUE(prev_end.ok() && next_begin.ok());
      EXPECT_LE(*prev_end, *next_begin) << node.DisplayPath() << " child " << i;
    }
  });

  // Channel events do not overlap ("linear time order", section 3.1).
  for (const ChannelDef& channel : doc.channels().channels()) {
    MediaTime last_end = MediaTime::Seconds(-1);
    for (const ScheduledEvent& scheduled : schedule.events()) {
      if (scheduled.event.channel != channel.name) {
        continue;
      }
      EXPECT_GE(scheduled.begin, std::max(last_end, MediaTime())) << channel.name;
      last_end = scheduled.end;
    }
  }
}

TEST_P(ScheduleProperty, TransportPreservesTiming) {
  GenOptions options;
  options.seed = static_cast<std::uint64_t>(GetParam()) * 57 + 29;
  SCOPED_TRACE(testing::Message() << "docgen seed=" << options.seed);
  options.target_leaves = 30;
  auto workload = GenerateRandomDocument(options);
  ASSERT_TRUE(workload.ok()) << workload.status();

  auto events = CollectEvents(workload->document, &workload->store);
  ASSERT_TRUE(events.ok());
  auto before = ComputeSchedule(workload->document, *events);
  ASSERT_TRUE(before.ok() && before->feasible);

  auto text = WriteDocument(workload->document);
  ASSERT_TRUE(text.ok());
  auto parsed = ParseDocument(*text);
  ASSERT_TRUE(parsed.ok());
  auto events_after = CollectEvents(*parsed, &workload->store);
  ASSERT_TRUE(events_after.ok());
  auto after = ComputeSchedule(*parsed, *events_after);
  ASSERT_TRUE(after.ok() && after->feasible);

  ASSERT_EQ(before->schedule.events().size(), after->schedule.events().size());
  for (std::size_t i = 0; i < before->schedule.events().size(); ++i) {
    EXPECT_EQ(before->schedule.events()[i].begin, after->schedule.events()[i].begin) << i;
    EXPECT_EQ(before->schedule.events()[i].end, after->schedule.events()[i].end) << i;
  }
  EXPECT_EQ(before->schedule.MakeSpan(), after->schedule.MakeSpan());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleProperty, ::testing::Range(0, 10));

}  // namespace
}  // namespace cmif
