// End-to-end chaos: the Evening News serve trace and the full playback
// pipeline under StandardChaosPlan. These are the test-suite form of the
// fig12_chaos acceptance numbers — completion stays >= 99% under the
// standard plan and sync arcs never break — plus the determinism contract
// that the same chaos seed replays the same run.
//
// These tests sleep through injected latency on the real clock, so they are
// registered with an explicit ctest TIMEOUT (see tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "src/fault/fault.h"
#include "src/news/evening_news.h"
#include "src/pipeline/pipeline.h"
#include "src/serve/serve.h"

namespace cmif {
namespace {

constexpr std::uint64_t kChaosSeed = 42;
constexpr int kStandardLevel = 2;

ServeOptions ChaosOptions(int threads) {
  ServeOptions options;
  options.threads = threads;
  options.seed = 12;
  options.enable_degraded = true;
  options.retry.max_attempts = 4;
  options.retry.attempt_deadline_ms = 500;
  return options;
}

#ifndef CMIF_FAULT_DISABLED

TEST(ChaosServeTest, StandardPlanKeepsCompletionAboveNinetyNinePercent) {
  auto corpus = BuildNewsCorpus(4);
  ASSERT_TRUE(corpus.ok()) << corpus.status();
  ServeOptions options = ChaosOptions(4);
  ServeLoop loop(**corpus, options);
  std::vector<ServeRequest> trace = GenerateTrace((*corpus)->size(), 128, options);

  // A warm server (the steady-state shape): prime fault-free, then
  // invalidate so the chaos pass compiles cold with stale entries to fall
  // back on.
  auto prime = loop.Run(trace);
  ASSERT_TRUE(prime.ok()) << prime.status();
  ASSERT_EQ(prime->errors, 0u);
  (*corpus)->store().WithWrite([](DescriptorStore&) { return 0; });

  fault::InjectionCounts counts;
  auto stats = [&] {
    fault::ScopedPlan chaos(fault::StandardChaosPlan(kStandardLevel, kChaosSeed));
    fault::ResetCounts();
    auto run = loop.Run(trace);
    counts = fault::Counts();
    return run;
  }();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->requests, 128u);
  // The acceptance bar: >= 99% of requests produce a presentation.
  EXPECT_LE(stats->errors * 100, stats->requests) << stats->Summary();
  EXPECT_GT(counts.probes, 0u) << "the chaos pass must actually exercise the fault sites";
}

TEST(ChaosServeTest, SingleThreadedChaosRunReplaysExactly) {
  auto run = [] {
    auto corpus = BuildNewsCorpus(3);
    EXPECT_TRUE(corpus.ok());
    ServeOptions options = ChaosOptions(1);
    ServeLoop loop(**corpus, options);
    std::vector<ServeRequest> trace = GenerateTrace((*corpus)->size(), 48, options);
    fault::ScopedPlan chaos(fault::StandardChaosPlan(kStandardLevel, kChaosSeed));
    fault::ResetCounts();
    auto stats = loop.Run(trace);
    fault::InjectionCounts counts = fault::Counts();
    EXPECT_TRUE(stats.ok());
    return std::make_tuple(stats->errors, stats->degraded, stats->recovered, counts.probes,
                           counts.transient, counts.latency, counts.stall);
  };
  EXPECT_EQ(run(), run()) << "one worker + one seed must replay decision for decision";
}

TEST(ChaosPlaybackTest, FullPipelineDegradesWithoutSyncViolations) {
  NewsOptions news;
  news.stories = 2;
  news.materialize_media = true;
  auto workload = BuildEveningNews(news);
  ASSERT_TRUE(workload.ok()) << workload.status();
  PipelineOptions options;
  options.profile = PersonalSystemProfile();
  options.apply_filters = true;
  options.enable_degradation = true;
  options.player.enable_degradation = true;
  auto report = [&] {
    fault::ScopedPlan chaos(fault::StandardChaosPlan(kStandardLevel, kChaosSeed));
    return RunPipeline(workload->document, workload->store, workload->blocks, options);
  }();
  ASSERT_TRUE(report.ok()) << report.status();
  // Degradation may or may not fire at this seed's draw — but a violation or
  // an inconsistent trace is a failure regardless.
  EXPECT_TRUE(report->playback.trace.Verify().ok());
  EXPECT_EQ(report->playback.sync_violations, 0u);
  EXPECT_GT(report->playback.trace.size(), 0u);
}

TEST(ChaosPlaybackTest, RecoveryStageShieldsPlaybackFromBlockLoss) {
  NewsOptions news;
  news.stories = 1;
  news.materialize_media = true;  // store-key content is what the stage recovers
  auto workload = BuildEveningNews(news);
  ASSERT_TRUE(workload.ok()) << workload.status();
  PipelineOptions options;
  options.apply_filters = true;
  options.enable_degradation = true;
  options.retry.max_attempts = 3;
  options.retry.initial_backoff_ms = 1;
  // Every store fetch fails permanently: without the recovery stage the
  // pipeline would error out; with it, every store-backed block becomes a
  // placeholder and the run completes.
  fault::FaultPlan plan;
  plan.seed = kChaosSeed;
  fault::FaultSiteConfig config;
  config.transient_p = 1.0;
  plan.sites.emplace_back("ddbms.block.get", config);
  auto report = [&] {
    fault::ScopedPlan chaos(std::move(plan));
    return RunPipeline(workload->document, workload->store, workload->blocks, options);
  }();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GT(report->degradation.blocks_placeholder, 0u);
  EXPECT_TRUE(report->degradation.degraded());
  EXPECT_FALSE(report->degradation.placeholder_ids.empty());
}

#endif  // CMIF_FAULT_DISABLED

}  // namespace
}  // namespace cmif
