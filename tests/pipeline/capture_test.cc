#include "src/pipeline/capture.h"

#include <gtest/gtest.h>

namespace cmif {
namespace {

TEST(CaptureTest, DescriptorOnlyModeProducesNoMediaBytes) {
  DescriptorStore store;
  BlockStore blocks;
  CaptureSession capture(store, blocks, /*materialize=*/false);
  ASSERT_TRUE(capture.CaptureSpeech("voice", MediaTime::Seconds(4), 7).ok());
  ASSERT_TRUE(capture.CaptureFlyingBird("bird", MediaTime::Seconds(2)).ok());
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(blocks.size(), 0u);  // nothing materialized
  // Descriptors still declare realistic sizes and durations from attributes.
  const DataDescriptor* voice = store.Get("voice");
  ASSERT_NE(voice, nullptr);
  EXPECT_EQ(voice->Medium(), MediaType::kAudio);
  EXPECT_EQ(voice->DeclaredDuration(), MediaTime::Seconds(4));
  EXPECT_EQ(voice->DeclaredBytes(), 4 * 8000 * 2);
  EXPECT_EQ(*voice->attrs().GetNumber(kDescRate), 8000);
  EXPECT_TRUE(std::holds_alternative<GeneratorSpec>(voice->content()));
}

TEST(CaptureTest, MaterializedModeFillsBlockStore) {
  DescriptorStore store;
  BlockStore blocks;
  CaptureSession capture(store, blocks, /*materialize=*/true);
  ASSERT_TRUE(capture.CaptureTone("beep", MediaTime::Millis(100), 440).ok());
  EXPECT_EQ(blocks.size(), 1u);
  const DataDescriptor* beep = store.Get("beep");
  ASSERT_NE(beep, nullptr);
  // Content is a store key; resolving yields the actual audio.
  auto block = ResolveContent(*beep, blocks);
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(block->audio().frames(), 800u);
}

TEST(CaptureTest, VideoAttributesDeclared) {
  DescriptorStore store;
  BlockStore blocks;
  CaptureSession capture(store, blocks, false);
  ASSERT_TRUE(capture.CaptureTalkingHead("head", MediaTime::Seconds(2), 1, 80, 60, 20).ok());
  const DataDescriptor* head = store.Get("head");
  ASSERT_NE(head, nullptr);
  EXPECT_EQ(*head->attrs().GetNumber(kDescWidth), 80);
  EXPECT_EQ(*head->attrs().GetNumber(kDescHeight), 60);
  EXPECT_EQ(*head->attrs().GetNumber(kDescRate), 20);
  EXPECT_EQ(head->DeclaredBytes(), 2 * 20 * 80 * 60 * 3);
}

TEST(CaptureTest, GraphicAndTextCapture) {
  DescriptorStore store;
  BlockStore blocks;
  CaptureSession capture(store, blocks, false);
  ASSERT_TRUE(capture.CaptureGraphic("card", 5, 32, 24, "test pattern").ok());
  ASSERT_TRUE(capture.CaptureText("note", "hello there", "greeting").ok());
  EXPECT_EQ(store.Get("card")->Medium(), MediaType::kGraphic);
  EXPECT_EQ(*store.Get("card")->attrs().GetString(kDescKeywords), "test pattern");
  // Text is always inline.
  EXPECT_TRUE(std::holds_alternative<DataBlock>(store.Get("note")->content()));
  BlockStore empty;
  auto note = ResolveContent(*store.Get("note"), empty);
  ASSERT_TRUE(note.ok());
  EXPECT_EQ(note->text().text(), "hello there");
}

TEST(CaptureTest, DuplicateIdsRejected) {
  DescriptorStore store;
  BlockStore blocks;
  CaptureSession capture(store, blocks, false);
  ASSERT_TRUE(capture.CaptureTone("x", MediaTime::Millis(10), 440).ok());
  EXPECT_EQ(capture.CaptureTone("x", MediaTime::Millis(10), 440).code(),
            StatusCode::kAlreadyExists);
}

TEST(CaptureTest, DescriptorOnlyAndMaterializedAgreeOnAttributes) {
  DescriptorStore store_a;
  BlockStore blocks_a;
  CaptureSession lazy(store_a, blocks_a, false);
  ASSERT_TRUE(lazy.CaptureSpeech("v", MediaTime::Seconds(1), 3).ok());

  DescriptorStore store_b;
  BlockStore blocks_b;
  CaptureSession eager(store_b, blocks_b, true);
  ASSERT_TRUE(eager.CaptureSpeech("v", MediaTime::Seconds(1), 3).ok());

  // The declared size/duration must match what materialization produces.
  EXPECT_EQ(store_a.Get("v")->DeclaredBytes(), store_b.Get("v")->DeclaredBytes());
  EXPECT_EQ(store_a.Get("v")->DeclaredDuration(), store_b.Get("v")->DeclaredDuration());
}

}  // namespace
}  // namespace cmif
