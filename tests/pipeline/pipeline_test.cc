#include "src/pipeline/pipeline.h"

#include <gtest/gtest.h>

#include "src/news/evening_news.h"

namespace cmif {
namespace {

TEST(PipelineTest, DescriptorOnlyRunCompletes) {
  auto workload = BuildEveningNews(NewsOptions{});
  ASSERT_TRUE(workload.ok());
  PipelineOptions options;
  auto report = RunPipeline(workload->document, workload->store, workload->blocks, options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->validation.ok());
  EXPECT_TRUE(report->schedule.feasible);
  EXPECT_GT(report->playback.trace.size(), 0u);
  EXPECT_TRUE(report->playback.trace.Verify().ok());
  // All six stages ran.
  EXPECT_EQ(report->stages.size(), 6u);
  EXPECT_GT(report->TotalMillis(), 0.0);
  // Descriptor-only mode: no filter-apply stage ran.
  EXPECT_DOUBLE_EQ(report->DescriptorOnlyMillis(), report->TotalMillis());
}

TEST(PipelineTest, ApplyFiltersStageTouchesData) {
  NewsOptions news_options;
  news_options.stories = 1;
  news_options.materialize_media = true;
  auto workload = BuildEveningNews(news_options);
  ASSERT_TRUE(workload.ok());
  PipelineOptions options;
  options.profile = PersonalSystemProfile();
  options.apply_filters = true;
  auto report = RunPipeline(workload->document, workload->store, workload->blocks, options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->stages.size(), 7u);  // + filter-apply
  EXPECT_LT(report->DescriptorOnlyMillis(), report->TotalMillis());
  EXPECT_LT(report->filter.total_bytes_after, report->filter.total_bytes_before);
}

TEST(PipelineTest, ValidationFailureStopsThePipeline) {
  Document doc;
  Node* leaf = *doc.root().AddChild(NodeKind::kExt);  // no file, no channel
  (void)leaf;
  DescriptorStore store;
  BlockStore blocks;
  auto report = RunPipeline(doc, store, blocks, PipelineOptions{});
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition);
}

TEST(PipelineTest, SummaryMentionsStagesAndOutcome) {
  auto workload = BuildEveningNews(NewsOptions{});
  ASSERT_TRUE(workload.ok());
  auto report =
      RunPipeline(workload->document, workload->store, workload->blocks, PipelineOptions{});
  ASSERT_TRUE(report.ok());
  std::string summary = report->Summary();
  for (const char* fragment : {"validate", "present-map", "filter-plan", "schedule", "play",
                               "feasible"}) {
    EXPECT_NE(summary.find(fragment), std::string::npos) << fragment;
  }
}

TEST(PipelineTest, PresentationMapBindsEveryChannel) {
  auto workload = BuildEveningNews(NewsOptions{});
  ASSERT_TRUE(workload.ok());
  auto report =
      RunPipeline(workload->document, workload->store, workload->blocks, PipelineOptions{});
  ASSERT_TRUE(report.ok());
  for (const ChannelDef& channel : workload->document.channels().channels()) {
    EXPECT_NE(report->presentation_map.Find(channel.name), nullptr) << channel.name;
  }
  // Preferences from the channel extras were honored.
  EXPECT_EQ(report->presentation_map.Find("video")->region, "main");
  EXPECT_EQ(report->presentation_map.Find("caption")->region, "caption_strip");
}

TEST(PipelineModeTest, CompileOnlySkipsPlayback) {
  auto workload = BuildEveningNews(NewsOptions{});
  ASSERT_TRUE(workload.ok());
  PipelineOptions options;
  options.mode = PipelineMode::kCompileOnly;
  auto report = RunPipeline(workload->document, workload->store, workload->blocks, options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->schedule.feasible);
  // Five stages: validate, present-map, filter-plan, collect-events, schedule.
  EXPECT_EQ(report->stages.size(), 5u);
  for (const StageTiming& stage : report->stages) {
    EXPECT_NE(stage.stage, "play");
  }
  EXPECT_EQ(report->playback.trace.size(), 0u);
}

TEST(PipelineModeTest, CompilePresentationCarriesNoPlaybackFields) {
  auto workload = BuildEveningNews(NewsOptions{});
  ASSERT_TRUE(workload.ok());
  auto compiled =
      CompilePresentation(workload->document, workload->store, workload->blocks, PipelineOptions{});
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  EXPECT_TRUE(compiled->validation.ok());
  EXPECT_TRUE(compiled->schedule.feasible);
  EXPECT_EQ(compiled->stages.size(), 5u);
  // CompileReport has no playback member at all; its summary says nothing
  // about playback, while a played PipelineReport's does.
  EXPECT_EQ(compiled->Summary().find("playback"), std::string::npos);
  auto played =
      RunPipeline(workload->document, workload->store, workload->blocks, PipelineOptions{});
  ASSERT_TRUE(played.ok());
  EXPECT_NE(played->Summary().find("playback"), std::string::npos);
  // The compile-only stages match the full run's compile prefix.
  EXPECT_EQ(compiled->presentation_map.Serialize(), played->presentation_map.Serialize());
  EXPECT_EQ(compiled->schedule.schedule.events().size(),
            played->schedule.schedule.events().size());
}

TEST(PipelineTest, SlowerProfileFreezesMore) {
  auto workload = BuildEveningNews(NewsOptions{});
  ASSERT_TRUE(workload.ok());
  PipelineOptions fast;
  fast.profile = WorkstationProfile();
  auto fast_report = RunPipeline(workload->document, workload->store, workload->blocks, fast);
  ASSERT_TRUE(fast_report.ok());
  PipelineOptions slow;
  slow.profile = PersonalSystemProfile();
  auto slow_report = RunPipeline(workload->document, workload->store, workload->blocks, slow);
  ASSERT_TRUE(slow_report.ok());
  EXPECT_GE(slow_report->playback.trace.FreezeCount(),
            fast_report->playback.trace.FreezeCount());
}

}  // namespace
}  // namespace cmif
