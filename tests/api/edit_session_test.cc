#include "src/api/edit_session.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "src/doc/builder.h"
#include "src/sched/conflict.h"
#include "src/serve/serve.h"

namespace cmif {
namespace {

namespace fs = std::filesystem;

// seq of two rigid text events plus one lower-bound-only must arc a.end ->
// b.begin — the smallest document where a retune stays on the dirty-cone
// path.
StatusOr<Document> TwoEventDoc() {
  DocBuilder builder;
  builder.DefineChannel("txt", MediaType::kText);
  builder.ImmText("a", "x").OnChannel("txt").WithDuration(MediaTime::Seconds(1));
  builder.ImmText("b", "y").OnChannel("txt").WithDuration(MediaTime::Seconds(2));
  builder.ToRoot();
  SyncArc arc;
  arc.source = *NodePath::Parse("a");
  arc.dest = *NodePath::Parse("b");
  arc.source_edge = ArcEdge::kEnd;
  arc.max_delay = std::nullopt;  // unbounded window: retunes stay incremental
  builder.Arc(arc);
  return builder.Build();
}

std::unique_ptr<api::EditSession> MustOpen(const Document& document) {
  DescriptorStore store;
  auto session = api::EditSession::Open(document, store);
  EXPECT_TRUE(session.ok()) << session.status();
  return std::move(session).value();
}

// -- EditOp textual round trip ----------------------------------------------

TEST(EditOpTest, FormatParseRoundTrip) {
  const char* lines[] = {
      "add-node /s e4 imm txt",
      "add-node / part seq",
      "remove-node /s/e4",
      "add-arc / a end b begin must 1 -1/4 inf",
      "add-arc /s x begin y end may 0 0 3/2",
      "remove-arc /s 2",
      "retune-arc / 0 1 -1/2 inf",
      "retune-arc /s 3 0 0 5",
  };
  for (const char* line : lines) {
    auto op = ParseEditOp(line);
    ASSERT_TRUE(op.ok()) << line << ": " << op.status();
    EXPECT_EQ(FormatEditOp(*op), line);
    // Parse is a left inverse of Format, not just a string identity.
    auto reparsed = ParseEditOp(FormatEditOp(*op));
    ASSERT_TRUE(reparsed.ok());
    EXPECT_EQ(FormatEditOp(*reparsed), line);
  }
}

TEST(EditOpTest, ParseRejectsMalformedLines) {
  const char* bad[] = {
      "frobnicate / 0",                          // unknown verb
      "add-arc / a end b begin must 1 -1",       // missing max-delay
      "retune-arc / zero 1 0 inf",               // non-numeric index
      "add-node / e1 composite txt",             // unknown node kind
      "add-arc / a middle b begin must 0 0 inf"  // bad edge name
  };
  for (const char* line : bad) {
    EXPECT_FALSE(ParseEditOp(line).ok()) << line;
  }
  // Relative paths parse (syntax only) but are rejected when applied.
  auto relative = ParseEditOp("add-node relative e1 imm txt");
  ASSERT_TRUE(relative.ok());
  Document doc(NodeKind::kSeq);
  EXPECT_FALSE(ApplyEdit(doc, *relative).ok());
}

// -- Recompile deltas --------------------------------------------------------

TEST(EditSessionTest, RetuneTakesTheIncrementalPath) {
  auto doc = TwoEventDoc();
  ASSERT_TRUE(doc.ok()) << doc.status();
  auto session = MustOpen(*doc);
  EXPECT_EQ(session->generation(), 1u);

  auto report = session->Apply("retune-arc / 0 2 0 inf");
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(session->pending_ops(), 1u);
  auto delta = session->Recompile();
  ASSERT_TRUE(delta.ok()) << delta.status();
  EXPECT_EQ(delta->generation, 2u);
  EXPECT_TRUE(delta->incremental);
  EXPECT_FALSE(delta->structure_changed);
  EXPECT_EQ(delta->ops_applied, 1u);
  EXPECT_GT(delta->changed_points, 0u);

  // The retuned offset actually moved the schedule: b now starts 2s after
  // a's end instead of immediately.
  auto b = session->document().root().Resolve(*NodePath::Parse("b"));
  ASSERT_TRUE(b.ok());
  auto begin = session->schedule().BeginOf(**b);
  ASSERT_TRUE(begin.ok());
  EXPECT_EQ(*begin, MediaTime::Seconds(3));
}

TEST(EditSessionTest, RecompileWithoutEditsIsANoOp) {
  auto doc = TwoEventDoc();
  ASSERT_TRUE(doc.ok());
  auto session = MustOpen(*doc);
  auto delta = session->Recompile();
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(delta->generation, 1u);
  EXPECT_EQ(delta->ops_applied, 0u);
  EXPECT_EQ(session->generation(), 1u);
}

TEST(EditSessionTest, ArcAddAndRemoveAreStructural) {
  auto doc = TwoEventDoc();
  ASSERT_TRUE(doc.ok());
  auto session = MustOpen(*doc);

  ASSERT_TRUE(session->Apply("add-arc / a begin b begin must 2 0 inf").ok());
  auto added = session->Recompile();
  ASSERT_TRUE(added.ok()) << added.status();
  EXPECT_TRUE(added->structure_changed);
  EXPECT_EQ(added->generation, 2u);

  ASSERT_TRUE(session->Apply("remove-arc / 1").ok());
  auto removed = session->Recompile();
  ASSERT_TRUE(removed.ok()) << removed.status();
  EXPECT_TRUE(removed->structure_changed);
  EXPECT_EQ(removed->generation, 3u);
  EXPECT_EQ(session->document().root().arcs().size(), 1u);
}

TEST(EditSessionTest, NodeSurgeryRebuildsAndStaysCorrect) {
  auto doc = TwoEventDoc();
  ASSERT_TRUE(doc.ok());
  auto session = MustOpen(*doc);
  ASSERT_TRUE(session->Apply("add-node / c imm txt").ok());
  auto delta = session->Recompile();
  ASSERT_TRUE(delta.ok()) << delta.status();
  EXPECT_TRUE(delta->structure_changed);
  EXPECT_FALSE(delta->incremental);  // node surgery renumbers points
  auto c = session->document().root().Resolve(*NodePath::Parse("c"));
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(session->schedule().BeginOf(**c).ok());
}

// -- Structured conflict surfacing -------------------------------------------

TEST(EditSessionTest, InfeasibleEditSurfacesParseableConflict) {
  auto doc = TwoEventDoc();
  ASSERT_TRUE(doc.ok());
  auto session = MustOpen(*doc);

  // b must begin exactly 1s before... a, which the seq/channel order forbids.
  ASSERT_TRUE(session->Apply("add-arc / b begin a begin must 1 0 0").ok());
  auto delta = session->Recompile();
  ASSERT_FALSE(delta.ok());
  EXPECT_EQ(delta.status().code(), StatusCode::kFailedPrecondition);
  auto conflict = ConflictFromStatus(delta.status());
  ASSERT_TRUE(conflict.ok()) << delta.status();
  EXPECT_FALSE(conflict->cycle.empty());

  // The session keeps its last-good schedule and generation...
  EXPECT_EQ(session->generation(), 1u);
  // ...and recovers once the contradiction is edited away.
  ASSERT_TRUE(session->Apply("remove-arc / 1").ok());
  auto recovered = session->Recompile();
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered->generation, 2u);
}

TEST(ConflictStatusTest, ToStatusFromStatusRoundTrip) {
  Conflict conflict;
  conflict.cls = ConflictClass::kAuthoring;
  conflict.description = "the document's synchronization constraints contradict each other";
  conflict.cycle = {"arc a -> b on /", "duration of /b", "channel 'txt' order /a -> /b"};
  Status status = ConflictToStatus(conflict);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  auto parsed = ConflictFromStatus(status);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->cls, conflict.cls);
  EXPECT_EQ(parsed->description, conflict.description);
  EXPECT_EQ(parsed->cycle, conflict.cycle);
  // Non-conflict statuses are rejected, not misparsed.
  EXPECT_FALSE(ConflictFromStatus(Status::Ok()).ok());
  EXPECT_FALSE(ConflictFromStatus(InvalidArgumentError("nope")).ok());
  EXPECT_FALSE(ConflictFromStatus(FailedPreconditionError("plain failure")).ok());
}

// -- Publish: cache invalidation through the serve stack ----------------------

TEST(EditSessionTest, PublishInvalidatesMappingAndPersistentCaches) {
  auto corpus = BuildNewsCorpus(1);
  ASSERT_TRUE(corpus.ok()) << corpus.status();
  const fs::path dir = fs::temp_directory_path() / "cmif_edit_session_pcache";
  fs::remove_all(dir);
  ServeOptions options;
  options.threads = 1;
  options.cache_dir = dir.string();
  {
    ServeLoop loop(**corpus, options);
    ASSERT_NE(loop.pcache(), nullptr);

    ServeRequest request;
    ServeResponse first = loop.Serve(request);
    ASSERT_TRUE(first.served());
    EXPECT_FALSE(first.cache_hit);
    ServeResponse second = loop.Serve(request);
    ASSERT_TRUE(second.served());
    EXPECT_TRUE(second.cache_hit);

    const std::uint64_t old_hash = (*corpus)->document(0).document_hash;
    const std::uint64_t old_generation = (*corpus)->store().generation();

    // Edit the served document and publish the new revision into slot 0.
    DescriptorStore store =
        (*corpus)->store().WithRead([](const DescriptorStore& s) { return s; });
    auto session = api::EditSession::Open((*corpus)->document(0).document, store);
    ASSERT_TRUE(session.ok()) << session.status();
    ASSERT_TRUE((*session)->Apply("add-node / epilogue imm caption").ok());
    ASSERT_TRUE((*session)->Recompile().ok());
    ASSERT_TRUE((*session)->Publish(**corpus, 0).ok());

    // The slot's identity changed, so every cached compile of the old revision
    // is unreachable: the next request misses both tiers and recompiles.
    EXPECT_NE((*corpus)->document(0).document_hash, old_hash);
    EXPECT_GT((*corpus)->store().generation(), old_generation);
    ServeResponse republished = loop.Serve(request);
    ASSERT_TRUE(republished.served()) << republished.error;
    EXPECT_FALSE(republished.cache_hit);
    EXPECT_FALSE(republished.disk_hit);
    // The republished revision caches normally from then on.
    ServeResponse warm = loop.Serve(request);
    ASSERT_TRUE(warm.served());
    EXPECT_TRUE(warm.cache_hit);
  }
  // The loop (and with it the write-behind committer) is down; the directory
  // can be removed without racing an in-flight commit.
  fs::remove_all(dir);
}

}  // namespace
}  // namespace cmif
