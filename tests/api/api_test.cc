// The cmif::api facade contract: the four entry points work end to end, the
// exported names are aliases (not copies) of the internal types, and the
// facade alone is enough to drive load -> compile -> play -> serve -> fetch
// over the wire — the exact surface tools, benches, and embeddings build on.
#include "src/api/cmif.h"

#include <gtest/gtest.h>

#include <type_traits>

#include "src/ddbms/persist.h"
#include "src/fmt/writer.h"
#include "src/news/evening_news.h"

namespace cmif {
namespace {

TEST(ApiTest, AliasesAreTheInternalTypes) {
  static_assert(std::is_same_v<api::PipelineOptions, PipelineOptions>);
  static_assert(std::is_same_v<api::CompileReport, CompileReport>);
  static_assert(std::is_same_v<api::PipelineReport, PipelineReport>);
  static_assert(std::is_same_v<api::ServeLoop, ServeLoop>);
  static_assert(std::is_same_v<api::NetClient, net::NetClient>);
  static_assert(std::is_same_v<api::PresentRequest, net::PresentRequest>);
  SUCCEED();
}

TEST(ApiTest, LoadDocumentRoundTripsThroughWriter) {
  auto workload = BuildEveningNews(NewsOptions{});
  ASSERT_TRUE(workload.ok());
  auto text = WriteDocument(workload->document);
  ASSERT_TRUE(text.ok());
  auto document = api::LoadDocument(*text);
  ASSERT_TRUE(document.ok()) << document.status();
  EXPECT_EQ(document->root().SubtreeSize(), workload->document.root().SubtreeSize());
  auto catalog_text = WriteCatalog(workload->store);
  ASSERT_TRUE(catalog_text.ok());
  auto store = api::LoadCatalog(*catalog_text);
  ASSERT_TRUE(store.ok()) << store.status();
  EXPECT_EQ(store->size(), workload->store.size());
}

TEST(ApiTest, LoadErrorsAreStructured) {
  EXPECT_FALSE(api::LoadDocument("(not a cmif document").ok());
  EXPECT_FALSE(api::LoadCatalog("(garbage").ok());
}

TEST(ApiTest, CompileNeverPlays) {
  auto workload = BuildEveningNews(NewsOptions{});
  ASSERT_TRUE(workload.ok());
  auto compiled =
      api::Compile(workload->document, workload->store, workload->blocks);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  EXPECT_TRUE(compiled->schedule.feasible);
  EXPECT_EQ(compiled->stages.size(), 5u);
  // Even an explicit play request cannot make Compile play.
  api::PipelineOptions options;
  options.mode = api::PipelineMode::kCompileAndPlay;
  auto still_compiled = api::Compile(workload->document, workload->store, workload->blocks, options);
  ASSERT_TRUE(still_compiled.ok());
  EXPECT_EQ(still_compiled->stages.size(), 5u);
}

TEST(ApiTest, PlayHonorsMode) {
  auto workload = BuildEveningNews(NewsOptions{});
  ASSERT_TRUE(workload.ok());
  auto played = api::Play(workload->document, workload->store, workload->blocks);
  ASSERT_TRUE(played.ok()) << played.status();
  EXPECT_GT(played->playback.trace.size(), 0u);
  api::PipelineOptions options;
  options.mode = api::PipelineMode::kCompileOnly;
  auto compiled = api::Play(workload->document, workload->store, workload->blocks, options);
  ASSERT_TRUE(compiled.ok());
  EXPECT_EQ(compiled->playback.trace.size(), 0u);
}

TEST(ApiTest, ServeRunsATrace) {
  auto corpus = api::BuildNewsCorpus(2);
  ASSERT_TRUE(corpus.ok()) << corpus.status();
  api::ServeOptions options;
  options.threads = 2;
  auto trace = api::GenerateTrace((*corpus)->size(), 32, options);
  auto stats = api::Serve(**corpus, options, trace);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->requests, 32u);
  EXPECT_EQ(stats->errors, 0u);
}

TEST(ApiTest, FullNetworkedDeliveryThroughTheFacadeOnly) {
  auto corpus = api::BuildNewsCorpus(1);
  ASSERT_TRUE(corpus.ok());
  api::ServeOptions options;
  options.threads = 1;
  api::ServeLoop loop(**corpus, options);
  api::NetServer server(loop);
  ASSERT_TRUE(server.Start().ok());
  api::NetClientOptions client_options;
  client_options.port = server.port();
  api::NetClient client(client_options);
  api::PresentRequest request;
  request.document = (*corpus)->document(0).name;
  auto response = client.Present(request);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->outcome, api::ServeOutcome::kHealthy);
  EXPECT_FALSE(response->presentation.empty());
  server.Stop();
}

}  // namespace
}  // namespace cmif
