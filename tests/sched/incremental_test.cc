#include "src/sched/incremental.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/doc/builder.h"
#include "src/doc/event.h"
#include "src/gen/docgen.h"
#include "src/sched/solver.h"

namespace cmif {
namespace {

struct Compiled {
  Document doc{NodeKind::kSeq};
  std::vector<EventDescriptor> events;
  TimeGraph graph = *TimeGraph::Build(Document(), {});
};

Compiled Compile(StatusOr<Document> doc_or) {
  Compiled c;
  EXPECT_TRUE(doc_or.ok()) << doc_or.status();
  c.doc = std::move(doc_or).value();
  auto events = CollectEvents(c.doc, nullptr);
  EXPECT_TRUE(events.ok()) << events.status();
  c.events = std::move(events).value();
  auto graph = TimeGraph::Build(c.doc, c.events);
  EXPECT_TRUE(graph.ok()) << graph.status();
  c.graph = std::move(graph).value();
  return c;
}

// seq of three rigid events. Each fixed duration is an equality weld, and
// the seq join welds the root's end onto the last child's end; everything
// else (seq/channel order) is lower-bound-only and stays acyclic.
StatusOr<Document> ChainDoc() {
  DocBuilder builder;
  builder.DefineChannel("txt", MediaType::kText);
  for (int i = 0; i < 3; ++i) {
    builder.ImmText(std::string(1, static_cast<char>('a' + i)), "x")
        .OnChannel("txt")
        .WithDuration(MediaTime::Seconds(i + 1));
  }
  return builder.Build();
}

// Same chain plus a finite window b -> c: the window's forward+backward edge
// pair welds the two events into one rigid cluster.
StatusOr<Document> WindowDoc() {
  DocBuilder builder;
  builder.DefineChannel("txt", MediaType::kText);
  for (int i = 0; i < 3; ++i) {
    builder.ImmText(std::string(1, static_cast<char>('a' + i)), "x")
        .OnChannel("txt")
        .WithDuration(MediaTime::Seconds(i + 1));
  }
  builder.ToRoot();
  SyncArc window;
  window.source = *NodePath::Parse("b");
  window.dest = *NodePath::Parse("c");
  window.source_edge = ArcEdge::kEnd;
  window.max_delay = MediaTime::Seconds(2);
  builder.Arc(window);
  return builder.Build();
}

void ExpectSameLabels(const SolveResult& a, const SolveResult& b) {
  ASSERT_EQ(a.feasible, b.feasible);
  if (!a.feasible) {
    ASSERT_FALSE(a.conflict_cycle.empty());
    EXPECT_EQ(a.conflict_cycle, b.conflict_cycle);
    return;
  }
  ASSERT_EQ(a.earliest.size(), b.earliest.size());
  for (std::size_t i = 0; i < a.earliest.size(); ++i) {
    EXPECT_EQ(a.earliest[i], b.earliest[i]) << "earliest[" << i << "]";
    EXPECT_EQ(a.latest[i], b.latest[i]) << "latest[" << i << "]";
  }
}

// -- SccCondensation goldens ------------------------------------------------

std::vector<std::size_t> SortedComponentSizes(const SccCondensation& scc) {
  std::vector<std::size_t> sizes;
  for (const auto& members : scc.members) {
    sizes.push_back(members.size());
  }
  std::sort(sizes.begin(), sizes.end());
  return sizes;
}

TEST(SccCondensationTest, RigidLeavesWeldBeginEndPairs) {
  Compiled c = Compile(ChainDoc());
  SccCondensation scc = SccCondensation::Build(c.graph);
  // 8 points -> 4 rigid clusters: the root begin alone, a and b welded into
  // begin/end pairs by their fixed durations, and c's pair plus the root end
  // (seq join equality) as a three-point cluster.
  EXPECT_EQ(scc.comp_count, 4u);
  EXPECT_EQ(SortedComponentSizes(scc), (std::vector<std::size_t>{1, 2, 2, 3}));
}

TEST(SccCondensationTest, FiniteWindowWeldsOneComponent) {
  Compiled c = Compile(WindowDoc());
  SccCondensation scc = SccCondensation::Build(c.graph);
  // The finite b->c window pairs a forward edge with a backward one, fusing
  // b's two-point weld with c's three-point cluster: {1,2,2,3} becomes
  // {1,2,5}.
  EXPECT_EQ(scc.comp_count, 3u);
  EXPECT_EQ(SortedComponentSizes(scc), (std::vector<std::size_t>{1, 2, 5}));
}

TEST(SccCondensationTest, ComponentIdsAreReverseTopological) {
  Compiled c = Compile(WindowDoc());
  SccCondensation scc = SccCondensation::Build(c.graph);
  // Backward orientation: every enabled constraint contributes from -> to,
  // so a cross-component constraint must satisfy comp[from] > comp[to].
  for (std::size_t i = 0; i < c.graph.constraints().size(); ++i) {
    const Constraint& constraint = c.graph.constraints()[i];
    if (c.graph.IsDisabled(i)) {
      continue;
    }
    int cf = scc.comp[static_cast<std::size_t>(constraint.from)];
    int ct = scc.comp[static_cast<std::size_t>(constraint.to)];
    if (cf != ct) {
      EXPECT_GT(cf, ct) << constraint.label;
    }
  }
}

TEST(SccCondensationTest, SamePartitionIgnoresNumberingButNotGrouping) {
  Compiled chain = Compile(ChainDoc());
  Compiled window = Compile(WindowDoc());
  SccCondensation a = SccCondensation::Build(chain.graph);
  SccCondensation b = SccCondensation::Build(window.graph);
  EXPECT_TRUE(a.SamePartition(a));
  EXPECT_TRUE(b.SamePartition(b));
  EXPECT_FALSE(a.SamePartition(b));
}

// -- Condensed full solve == direct solve ------------------------------------

TEST(IncrementalSolverTest, CondensedStrategyMatchesDirectAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    GenOptions options;
    options.target_leaves = 24;
    options.arcs_per_composite = 1.2;
    options.tight_windows = (seed % 2) == 0;  // alternate feasible/conflicted
    options.seed = seed;
    auto workload = GenerateRandomDocument(options);
    ASSERT_TRUE(workload.ok()) << workload.status();
    auto events = CollectEvents(workload->document, &workload->store);
    ASSERT_TRUE(events.ok()) << events.status();
    auto graph = TimeGraph::Build(workload->document, *events);
    ASSERT_TRUE(graph.ok()) << graph.status();
    SolveOptions condensed;
    condensed.strategy = SolveOptions::Strategy::kCondensed;
    ExpectSameLabels(Solve(*graph, condensed), SolveStn(*graph));
  }
}

// -- Dirty-cone resolves -----------------------------------------------------

TEST(IncrementalSolverTest, RetuneResolvesOnlyTheDirtyCone) {
  Compiled c = Compile(ChainDoc());
  IncrementalSolver solver(c.graph);
  ASSERT_TRUE(solver.FullSolve().feasible);
  ASSERT_TRUE(solver.tick_mode());
  EXPECT_FALSE(solver.last_incremental());
  EXPECT_EQ(solver.last_cone_points(), c.graph.point_count());
  SolveResult before = solver.result();

  // Retune the last event's duration weld: only c's end (and the root end
  // hanging off it) is downstream, so the cone must exclude a/b entirely.
  auto node = c.doc.root().Resolve(*NodePath::Parse("c"));
  ASSERT_TRUE(node.ok());
  std::size_t touched = c.graph.constraints().size();
  auto begin = c.graph.PointOf(**node, PointKind::kBegin);
  auto end = c.graph.PointOf(**node, PointKind::kEnd);
  ASSERT_TRUE(begin.ok() && end.ok());
  for (std::size_t i = 0; i < c.graph.constraints().size(); ++i) {
    const Constraint& constraint = c.graph.constraints()[i];
    if (constraint.from == *begin && constraint.to == *end) {
      touched = i;
      break;
    }
  }
  ASSERT_LT(touched, c.graph.constraints().size());
  const Constraint& weld = c.graph.constraints()[touched];
  ASSERT_TRUE(c.graph
                  .UpdateConstraintBounds(touched, MediaTime::Seconds(4),
                                          MediaTime::Seconds(4), weld.label)
                  .ok());
  const SolveResult& after = solver.ResolveRetuned({touched});
  ASSERT_TRUE(after.feasible);
  EXPECT_TRUE(solver.last_incremental());
  EXPECT_LT(solver.last_cone_points(), c.graph.point_count());
  // The cone bound shows in the work counters too: the warm re-solve must
  // propagate strictly less than the full solve of the same mutated graph.
  SolveResult full_again = SolveStn(c.graph);
  EXPECT_LT(after.stats.propagations, full_again.stats.propagations);

  // Out-of-cone labels are byte-identical to the previous solve; the fresh
  // solve of the mutated graph agrees everywhere.
  SolveResult fresh = SolveStn(c.graph);
  ASSERT_TRUE(fresh.feasible);
  for (std::size_t i = 0; i < fresh.earliest.size(); ++i) {
    EXPECT_EQ(after.earliest[i], fresh.earliest[i]) << "earliest[" << i << "]";
    EXPECT_EQ(after.latest[i], fresh.latest[i]) << "latest[" << i << "]";
  }
  auto begin_a = c.graph.PointOf(*c.doc.root().Resolve(*NodePath::Parse("a")).value(),
                                 PointKind::kBegin);
  ASSERT_TRUE(begin_a.ok());
  EXPECT_EQ(after.earliest[static_cast<std::size_t>(*begin_a)],
            before.earliest[static_cast<std::size_t>(*begin_a)]);
}

TEST(IncrementalSolverTest, WarmStartMatchesScratchUnderEditStorm) {
  GenOptions options;
  options.target_leaves = 30;
  options.arcs_per_composite = 1.5;
  options.tight_windows = false;
  options.seed = 7;
  auto workload = GenerateRandomDocument(options);
  ASSERT_TRUE(workload.ok()) << workload.status();
  auto events = CollectEvents(workload->document, &workload->store);
  ASSERT_TRUE(events.ok());
  auto graph = TimeGraph::Build(workload->document, *events);
  ASSERT_TRUE(graph.ok());
  IncrementalSolver solver(*graph);
  ASSERT_TRUE(solver.FullSolve().feasible);

  // Storm: retune every explicit-arc constraint in turn, widening its lower
  // bound, and check the warm-started labels against a from-scratch solve of
  // the same mutated graph after every step.
  int retunes = 0;
  for (std::size_t i = 0; i < graph->constraints().size(); ++i) {
    const Constraint& constraint = graph->constraints()[i];
    if (constraint.origin != ConstraintOrigin::kExplicitArc || graph->IsDisabled(i) ||
        constraint.hi.has_value()) {
      continue;
    }
    MediaTime lo = constraint.lo - MediaTime::Rational(retunes % 3 + 1, 4);
    ASSERT_TRUE(graph->UpdateConstraintBounds(i, lo, std::nullopt, constraint.label).ok());
    const SolveResult& warm = solver.ResolveRetuned({i});
    ExpectSameLabels(warm, SolveStn(*graph));
    ++retunes;
  }
  ASSERT_GT(retunes, 0) << "generated document carried no retunable arcs";
}

TEST(IncrementalSolverTest, InfeasibleRetuneFallsBackToCanonicalCycle) {
  Compiled c = Compile(WindowDoc());
  IncrementalSolver solver(c.graph);
  ASSERT_TRUE(solver.FullSolve().feasible);

  // Retune the window into contradiction: forcing c to begin strictly
  // before b ends fights the channel-order constraint (c after b), closing
  // a negative cycle.
  std::size_t window = c.graph.constraints().size();
  for (std::size_t i = 0; i < c.graph.constraints().size(); ++i) {
    if (c.graph.constraints()[i].origin == ConstraintOrigin::kExplicitArc) {
      window = i;
      break;
    }
  }
  ASSERT_LT(window, c.graph.constraints().size());
  ASSERT_TRUE(c.graph
                  .UpdateConstraintBounds(window, MediaTime::Seconds(-1),
                                          MediaTime::Seconds(-1),
                                          c.graph.constraints()[window].label)
                  .ok());
  const SolveResult& warm = solver.ResolveRetuned({window});
  ASSERT_FALSE(warm.feasible);
  EXPECT_FALSE(solver.last_incremental());
  // The reported cycle is canonical: exactly what a direct solve reports.
  SolveResult direct = SolveStn(c.graph);
  ASSERT_FALSE(direct.feasible);
  EXPECT_EQ(warm.conflict_cycle, direct.conflict_cycle);
}

TEST(IncrementalSolverTest, StructuralEditRecondensesOrFallsBack) {
  Compiled c = Compile(ChainDoc());
  IncrementalSolver solver(c.graph);
  ASSERT_TRUE(solver.FullSolve().feasible);
  SccCondensation before = solver.condensation();

  // Appending a lower-bound-only arc keeps every component a singleton: the
  // partition survives and the resolve stays incremental.
  auto a = c.doc.root().Resolve(*NodePath::Parse("a"));
  auto b = c.doc.root().Resolve(*NodePath::Parse("b"));
  ASSERT_TRUE(a.ok() && b.ok());
  auto from = c.graph.PointOf(**a, PointKind::kBegin);
  auto to = c.graph.PointOf(**b, PointKind::kBegin);
  ASSERT_TRUE(from.ok() && to.ok());
  Constraint added;
  added.from = *from;
  added.to = *to;
  added.lo = MediaTime::Seconds(1);
  added.origin = ConstraintOrigin::kExplicitArc;
  added.label = "test arc a->b";
  ASSERT_TRUE(c.graph.AddConstraint(added).ok());
  const SolveResult& warm = solver.ResolveStructural({c.graph.constraints().size() - 1});
  ASSERT_TRUE(warm.feasible);
  EXPECT_TRUE(solver.last_incremental());
  EXPECT_TRUE(before.SamePartition(solver.condensation()));
  ExpectSameLabels(warm, SolveStn(c.graph));
}

}  // namespace
}  // namespace cmif
