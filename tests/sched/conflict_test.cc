#include "src/sched/conflict.h"

#include <gtest/gtest.h>

#include "src/doc/builder.h"

namespace cmif {
namespace {

// Two parallel rigid events with a contradictory pair of arcs; the second
// arc's rigor is configurable so relaxation behaviour can be probed.
StatusOr<Document> ContradictoryDoc(ArcRigor second_arc_rigor) {
  DocBuilder builder;
  builder.DefineChannel("t1", MediaType::kText).DefineChannel("t2", MediaType::kText);
  builder.Par("p")
      .ImmText("a", "x")
      .OnChannel("t1")
      .WithDuration(MediaTime::Seconds(1))
      .ImmText("b", "y")
      .OnChannel("t2")
      .WithDuration(MediaTime::Seconds(1))
      .Up();
  builder.Arc(HardArc(*NodePath::Parse("p/a"), ArcEdge::kBegin, *NodePath::Parse("p/b"),
                      ArcEdge::kBegin, MediaTime::Seconds(1)));
  builder.Arc(HardArc(*NodePath::Parse("p/b"), ArcEdge::kBegin, *NodePath::Parse("p/a"),
                      ArcEdge::kBegin, MediaTime::Seconds(1), second_arc_rigor));
  return builder.Build();
}

TEST(ConflictTest, MustMustConflictIsUnresolvable) {
  auto doc = ContradictoryDoc(ArcRigor::kMust);
  ASSERT_TRUE(doc.ok());
  auto events = CollectEvents(*doc, nullptr);
  ASSERT_TRUE(events.ok());
  auto result = ComputeSchedule(*doc, *events);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->feasible);
  ASSERT_FALSE(result->conflicts.empty());
  EXPECT_EQ(result->conflicts.back().cls, ConflictClass::kAuthoring);
  EXPECT_FALSE(result->conflicts.back().cycle.empty());
  EXPECT_TRUE(result->dropped_arcs.empty());
}

TEST(ConflictTest, MayArcIsDroppedToRestoreFeasibility) {
  // "May synchronization is ... desirable but not essential" (section 5.3.2).
  auto doc = ContradictoryDoc(ArcRigor::kMay);
  ASSERT_TRUE(doc.ok());
  auto events = CollectEvents(*doc, nullptr);
  ASSERT_TRUE(events.ok());
  auto result = ComputeSchedule(*doc, *events);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->feasible);
  EXPECT_EQ(result->dropped_arcs.size(), 1u);
  EXPECT_EQ(result->conflicts.size(), 1u);  // the cycle that was broken
  // The surviving must arc holds: b begins 1s after a.
  auto b = doc->root().Resolve(*NodePath::Parse("p/b"));
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*result->schedule.BeginOf(**b), MediaTime::Seconds(1));
}

TEST(ConflictTest, RelaxationCanBeDisabled) {
  auto doc = ContradictoryDoc(ArcRigor::kMay);
  ASSERT_TRUE(doc.ok());
  auto events = CollectEvents(*doc, nullptr);
  ASSERT_TRUE(events.ok());
  ScheduleOptions options;
  options.relax_may_arcs = false;
  auto result = ComputeSchedule(*doc, *events, options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->feasible);
  EXPECT_TRUE(result->dropped_arcs.empty());
}

TEST(ConflictTest, CapabilityConstraintClassifiesAsClass2) {
  // A hard zero-gap arc between consecutive same-channel events collides
  // with an injected device setup time: the paper's class-2 conflict.
  DocBuilder builder;
  builder.DefineChannel("txt", MediaType::kText);
  builder.Seq("s")
      .ImmText("a", "x")
      .OnChannel("txt")
      .WithDuration(MediaTime::Seconds(1))
      .ImmText("b", "y")
      .OnChannel("txt")
      .WithDuration(MediaTime::Seconds(1))
      .Up();
  builder.Arc(HardArc(*NodePath::Parse("s/a"), ArcEdge::kEnd, *NodePath::Parse("s/b"),
                      ArcEdge::kBegin));  // exactly back-to-back
  auto doc = builder.Build();
  ASSERT_TRUE(doc.ok());
  auto events = CollectEvents(*doc, nullptr);
  ASSERT_TRUE(events.ok());
  auto graph = TimeGraph::Build(*doc, *events);
  ASSERT_TRUE(graph.ok());
  // Inject a 100ms setup requirement between the two text events.
  auto a = doc->root().Resolve(*NodePath::Parse("s/a"));
  auto b = doc->root().Resolve(*NodePath::Parse("s/b"));
  ASSERT_TRUE(a.ok() && b.ok());
  Constraint setup;
  setup.from = *graph->PointOf(**a, PointKind::kEnd);
  setup.to = *graph->PointOf(**b, PointKind::kBegin);
  setup.lo = MediaTime::Millis(100);
  setup.hi = std::nullopt;
  setup.origin = ConstraintOrigin::kCapability;
  setup.label = "text device setup 100ms";
  ASSERT_TRUE(graph->AddConstraint(setup).ok());

  auto result = SolveSchedule(*graph, *events);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->feasible);
  ASSERT_FALSE(result->conflicts.empty());
  EXPECT_EQ(result->conflicts.back().cls, ConflictClass::kCapability);
}

TEST(ConflictTest, MultipleMayArcsDroppedIteratively) {
  DocBuilder builder;
  builder.DefineChannel("t1", MediaType::kText)
      .DefineChannel("t2", MediaType::kText)
      .DefineChannel("t3", MediaType::kText);
  builder.Par("p");
  for (const char* name : {"a", "b", "c"}) {
    builder.ImmText(name, "x")
        .OnChannel(std::string("t") + std::to_string(name[0] - 'a' + 1))
        .WithDuration(MediaTime::Seconds(1));
  }
  builder.Up();
  // A 3-cycle of may arcs, each demanding a 1s forward shift.
  const char* pairs[][2] = {{"p/a", "p/b"}, {"p/b", "p/c"}, {"p/c", "p/a"}};
  for (const auto& pair : pairs) {
    builder.Arc(HardArc(*NodePath::Parse(pair[0]), ArcEdge::kBegin,
                        *NodePath::Parse(pair[1]), ArcEdge::kBegin, MediaTime::Seconds(1),
                        ArcRigor::kMay));
  }
  auto doc = builder.Build();
  ASSERT_TRUE(doc.ok());
  auto events = CollectEvents(*doc, nullptr);
  ASSERT_TRUE(events.ok());
  auto result = ComputeSchedule(*doc, *events);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->feasible);
  // Breaking the 3-cycle needs exactly one dropped arc.
  EXPECT_EQ(result->dropped_arcs.size(), 1u);
}

TEST(ConflictTest, ConflictClassNames) {
  EXPECT_EQ(ConflictClassName(ConflictClass::kAuthoring), "authoring");
  EXPECT_EQ(ConflictClassName(ConflictClass::kCapability), "capability");
  EXPECT_EQ(ConflictClassName(ConflictClass::kNavigation), "navigation");
}

}  // namespace
}  // namespace cmif
