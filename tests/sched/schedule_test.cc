#include "src/sched/schedule.h"

#include <gtest/gtest.h>

#include "src/doc/builder.h"
#include "src/sched/conflict.h"

namespace cmif {
namespace {

StatusOr<Document> SmallDoc() {
  DocBuilder builder;
  builder.DefineChannel("t1", MediaType::kText).DefineChannel("t2", MediaType::kText);
  builder.Par("p")
      .ImmText("a", "x")
      .OnChannel("t1")
      .WithDuration(MediaTime::Seconds(2))
      .ImmText("b", "y")
      .OnChannel("t2")
      .WithDuration(MediaTime::Seconds(3))
      .Up();
  return builder.Build();
}

TEST(ScheduleTest, FromSolvePopulatesEventsAndNodes) {
  auto doc = SmallDoc();
  ASSERT_TRUE(doc.ok());
  auto events = CollectEvents(*doc, nullptr);
  ASSERT_TRUE(events.ok());
  auto result = ComputeSchedule(*doc, *events);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->feasible);
  const Schedule& schedule = result->schedule;
  ASSERT_EQ(schedule.events().size(), 2u);
  EXPECT_EQ(schedule.events()[0].begin, MediaTime());
  EXPECT_EQ(schedule.events()[0].end, MediaTime::Seconds(2));
  EXPECT_EQ(schedule.events()[0].Duration(), MediaTime::Seconds(2));
  // Composite node times are queryable too.
  auto p = doc->root().Resolve(*NodePath::Parse("p"));
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(*schedule.BeginOf(**p), MediaTime());
  EXPECT_EQ(*schedule.EndOf(**p), MediaTime::Seconds(3));
  EXPECT_EQ(schedule.MakeSpan(), MediaTime::Seconds(3));
}

TEST(ScheduleTest, NodeLookupFailsForForeignNodes) {
  auto doc = SmallDoc();
  ASSERT_TRUE(doc.ok());
  auto events = CollectEvents(*doc, nullptr);
  ASSERT_TRUE(events.ok());
  auto result = ComputeSchedule(*doc, *events);
  ASSERT_TRUE(result.ok() && result->feasible);
  Node stranger(NodeKind::kSeq);
  EXPECT_EQ(result->schedule.BeginOf(stranger).status().code(), StatusCode::kNotFound);
}

TEST(ScheduleTest, FromSolveRejectsInfeasible) {
  auto doc = SmallDoc();
  ASSERT_TRUE(doc.ok());
  auto events = CollectEvents(*doc, nullptr);
  ASSERT_TRUE(events.ok());
  auto graph = TimeGraph::Build(*doc, *events);
  ASSERT_TRUE(graph.ok());
  SolveResult infeasible;
  infeasible.feasible = false;
  EXPECT_EQ(Schedule::FromSolve(*graph, *events, infeasible).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ScheduleTest, TimelineRowsFollowChannelOrder) {
  auto doc = SmallDoc();
  ASSERT_TRUE(doc.ok());
  auto events = CollectEvents(*doc, nullptr);
  ASSERT_TRUE(events.ok());
  auto result = ComputeSchedule(*doc, *events);
  ASSERT_TRUE(result.ok() && result->feasible);
  auto rows = result->schedule.ToTimelineRows(*doc);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].channel, "t1");
  ASSERT_EQ(rows[0].spans.size(), 1u);
  EXPECT_EQ(rows[0].spans[0].label, "a");
  EXPECT_EQ(rows[1].channel, "t2");
  EXPECT_EQ(rows[1].spans[0].end, MediaTime::Seconds(3));
}

TEST(ScheduleTest, EmptyScheduleMakeSpanIsZero) {
  Schedule schedule;
  EXPECT_TRUE(schedule.empty());
  EXPECT_EQ(schedule.MakeSpan(), MediaTime());
}

}  // namespace
}  // namespace cmif
