#include "src/sched/navigate.h"

#include <gtest/gtest.h>

#include "src/doc/builder.h"

namespace cmif {
namespace {

// seq of three 2s text events, with an explicit arc from a's end to c's
// begin (source wholly in the first third of the timeline).
struct NavFixture {
  NavFixture() {
    DocBuilder builder;
    builder.DefineChannel("txt", MediaType::kText);
    for (const char* name : {"a", "b", "c"}) {
      builder.ImmText(name, "x").OnChannel("txt").WithDuration(MediaTime::Seconds(2));
    }
    builder.ToRoot().Arc(WindowArc(*NodePath::Parse("a"), ArcEdge::kEnd,
                                   *NodePath::Parse("c"), ArcEdge::kBegin, MediaTime(),
                                   MediaTime(), std::nullopt));
    auto built = builder.Build();
    EXPECT_TRUE(built.ok());
    doc = std::move(built).value();
    auto collected = CollectEvents(doc, nullptr);
    EXPECT_TRUE(collected.ok());
    events = std::move(collected).value();
    auto result = ComputeSchedule(doc, events);
    EXPECT_TRUE(result.ok() && result->feasible);
    schedule = std::move(result)->schedule;
  }
  Document doc{NodeKind::kSeq};
  std::vector<EventDescriptor> events;
  Schedule schedule;
};

TEST(NavigateTest, SeekAtZeroEverythingPending) {
  NavFixture f;
  SeekAnalysis analysis = AnalyzeSeek(f.doc, f.schedule, MediaTime());
  EXPECT_EQ(analysis.skipped.size(), 0u);
  EXPECT_EQ(analysis.active.size(), 1u);  // a begins exactly at 0
  EXPECT_EQ(analysis.pending.size(), 2u);
  EXPECT_TRUE(analysis.invalidated.empty());
}

TEST(NavigateTest, SeekMidwayClassifiesEvents) {
  NavFixture f;
  SeekAnalysis analysis = AnalyzeSeek(f.doc, f.schedule, MediaTime::Seconds(3));
  // a: [0,2) skipped; b: [2,4) active; c: [4,6) pending.
  ASSERT_EQ(analysis.skipped.size(), 1u);
  EXPECT_EQ(analysis.skipped[0]->event.node->name(), "a");
  ASSERT_EQ(analysis.active.size(), 1u);
  EXPECT_EQ(analysis.active[0]->event.node->name(), "b");
  ASSERT_EQ(analysis.pending.size(), 1u);
  EXPECT_EQ(analysis.pending[0]->event.node->name(), "c");
}

TEST(NavigateTest, SkippedSourceInvalidatesArc) {
  // "The source of the arc must execute in order for a synchronization
  // condition to be true; if this is not the case, all incoming
  // synchronization arcs are considered to be invalid" (section 5.3.3).
  NavFixture f;
  SeekAnalysis analysis = AnalyzeSeek(f.doc, f.schedule, MediaTime::Seconds(3));
  ASSERT_EQ(analysis.invalidated.size(), 1u);
  EXPECT_EQ(analysis.invalidated[0].owner, &f.doc.root());
  EXPECT_EQ(analysis.invalidated[0].arc_index, 0);
  EXPECT_NE(analysis.invalidated[0].reason.find("/a"), std::string::npos);
  auto conflicts = analysis.Conflicts();
  ASSERT_EQ(conflicts.size(), 1u);
  EXPECT_EQ(conflicts[0].cls, ConflictClass::kNavigation);
}

TEST(NavigateTest, ArcWithDeadDestinationIsNotReported) {
  // Seeking past BOTH endpoints: the arc no longer matters.
  NavFixture f;
  SeekAnalysis analysis = AnalyzeSeek(f.doc, f.schedule, MediaTime::Seconds(100));
  EXPECT_TRUE(analysis.invalidated.empty());
  EXPECT_EQ(analysis.skipped.size(), 3u);
}

TEST(NavigateTest, ActiveSourceKeepsArcValid) {
  // Seek to 1s: a is still active (it will "execute"), so the arc binds.
  NavFixture f;
  SeekAnalysis analysis = AnalyzeSeek(f.doc, f.schedule, MediaTime::Seconds(1));
  EXPECT_TRUE(analysis.invalidated.empty());
}

// A fixture where the explicit arc actually delays its destination: the
// end of a pushes c 3s out (c at 5s instead of its structural 4s).
struct DelayedFixture {
  DelayedFixture() {
    DocBuilder builder;
    builder.DefineChannel("txt", MediaType::kText);
    for (const char* name : {"a", "b", "c"}) {
      builder.ImmText(name, "x").OnChannel("txt").WithDuration(MediaTime::Seconds(2));
    }
    builder.ToRoot().Arc(WindowArc(*NodePath::Parse("a"), ArcEdge::kEnd,
                                   *NodePath::Parse("c"), ArcEdge::kBegin,
                                   MediaTime::Seconds(3), MediaTime(), std::nullopt));
    auto built = builder.Build();
    EXPECT_TRUE(built.ok());
    doc = std::move(built).value();
    auto collected = CollectEvents(doc, nullptr);
    EXPECT_TRUE(collected.ok());
    events = std::move(collected).value();
    auto result = ComputeSchedule(doc, events);
    EXPECT_TRUE(result.ok() && result->feasible);
    schedule = std::move(result)->schedule;
  }
  Document doc{NodeKind::kSeq};
  std::vector<EventDescriptor> events;
  Schedule schedule;
};

TEST(RescheduleFromSeekTest, InvalidatedArcStopsConstraining) {
  DelayedFixture f;
  // Original: a [0,2), b [2,4), c [5,7) (arc: c >= a.end + 3 = 5).
  const Node* c = f.doc.root().FindChild("c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(*f.schedule.BeginOf(*c), MediaTime::Seconds(5));

  // Seek to 3s: a is skipped, its arc is invalid, so c relaxes to its
  // structural earliest (4s, after b).
  auto rescheduled = RescheduleFromSeek(f.doc, f.events, f.schedule, MediaTime::Seconds(3));
  ASSERT_TRUE(rescheduled.ok()) << rescheduled.status();
  ASSERT_TRUE(rescheduled->feasible);
  EXPECT_EQ(*rescheduled->schedule.BeginOf(*c), MediaTime::Seconds(4));
}

TEST(RescheduleFromSeekTest, SkippedPrefixIsPinned) {
  DelayedFixture f;
  auto rescheduled = RescheduleFromSeek(f.doc, f.events, f.schedule, MediaTime::Seconds(3));
  ASSERT_TRUE(rescheduled.ok() && rescheduled->feasible);
  const Node* a = f.doc.root().FindChild("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(*rescheduled->schedule.BeginOf(*a), *f.schedule.BeginOf(*a));
  EXPECT_EQ(*rescheduled->schedule.EndOf(*a), *f.schedule.EndOf(*a));
}

TEST(RescheduleFromSeekTest, NoSeekMatchesOriginal) {
  DelayedFixture f;
  auto rescheduled = RescheduleFromSeek(f.doc, f.events, f.schedule, MediaTime());
  ASSERT_TRUE(rescheduled.ok() && rescheduled->feasible);
  for (std::size_t i = 0; i < f.schedule.events().size(); ++i) {
    EXPECT_EQ(rescheduled->schedule.events()[i].begin, f.schedule.events()[i].begin);
    EXPECT_EQ(rescheduled->schedule.events()[i].end, f.schedule.events()[i].end);
  }
}

}  // namespace
}  // namespace cmif
