#include "src/sched/solver.h"

#include <gtest/gtest.h>

#include "src/doc/builder.h"
#include "src/gen/docgen.h"

namespace cmif {
namespace {

// seq root with three rigid text events of 1, 2, 3 seconds.
StatusOr<Document> ChainDoc() {
  DocBuilder builder;
  builder.DefineChannel("txt", MediaType::kText);
  for (int i = 0; i < 3; ++i) {
    builder.ImmText(std::string(1, static_cast<char>('a' + i)), "x")
        .OnChannel("txt")
        .WithDuration(MediaTime::Seconds(i + 1));
  }
  return builder.Build();
}

struct Solved {
  Document doc{NodeKind::kSeq};
  std::vector<EventDescriptor> events;
  TimeGraph graph = *TimeGraph::Build(Document(), {});
  SolveResult result;
};

Solved SolveDoc(StatusOr<Document> doc_or) {
  Solved s;
  EXPECT_TRUE(doc_or.ok());
  s.doc = std::move(doc_or).value();
  auto events = CollectEvents(s.doc, nullptr);
  EXPECT_TRUE(events.ok());
  s.events = std::move(events).value();
  auto graph = TimeGraph::Build(s.doc, s.events);
  EXPECT_TRUE(graph.ok());
  s.graph = std::move(graph).value();
  s.result = SolveStn(s.graph);
  return s;
}

MediaTime EarliestOf(const Solved& s, const char* path, PointKind kind) {
  auto node = s.doc.root().Resolve(*NodePath::Parse(path));
  EXPECT_TRUE(node.ok());
  auto point = s.graph.PointOf(**node, kind);
  EXPECT_TRUE(point.ok());
  return s.result.earliest[static_cast<std::size_t>(*point)];
}

TEST(SolverTest, SequentialChainSchedulesBackToBack) {
  Solved s = SolveDoc(ChainDoc());
  ASSERT_TRUE(s.result.feasible);
  EXPECT_EQ(EarliestOf(s, "a", PointKind::kBegin), MediaTime());
  EXPECT_EQ(EarliestOf(s, "a", PointKind::kEnd), MediaTime::Seconds(1));
  EXPECT_EQ(EarliestOf(s, "b", PointKind::kBegin), MediaTime::Seconds(1));
  EXPECT_EQ(EarliestOf(s, "c", PointKind::kBegin), MediaTime::Seconds(3));
  EXPECT_EQ(EarliestOf(s, "c", PointKind::kEnd), MediaTime::Seconds(6));
  // seq join: root end == last child end.
  EXPECT_EQ(s.result.earliest[1], MediaTime::Seconds(6));
}

TEST(SolverTest, EarliestSolutionSatisfiesAllConstraints) {
  Solved s = SolveDoc(ChainDoc());
  ASSERT_TRUE(s.result.feasible);
  EXPECT_TRUE(VerifySolution(s.graph, s.result.earliest).ok());
}

TEST(SolverTest, ParallelChildrenStartTogether) {
  DocBuilder builder;
  builder.DefineChannel("t1", MediaType::kText).DefineChannel("t2", MediaType::kText);
  builder.Par("p")
      .ImmText("fast", "x")
      .OnChannel("t1")
      .WithDuration(MediaTime::Seconds(1))
      .ImmText("slow", "y")
      .OnChannel("t2")
      .WithDuration(MediaTime::Seconds(5))
      .Up();
  Solved s = SolveDoc(builder.Build());
  ASSERT_TRUE(s.result.feasible);
  EXPECT_EQ(EarliestOf(s, "p/fast", PointKind::kBegin), MediaTime());
  EXPECT_EQ(EarliestOf(s, "p/slow", PointKind::kBegin), MediaTime());
  // "Start the successor when the slowest parallel node finishes": the par's
  // end is the max of the children's ends in the earliest solution.
  EXPECT_EQ(EarliestOf(s, "p", PointKind::kEnd), MediaTime::Seconds(5));
}

TEST(SolverTest, ExplicitOffsetArcShiftsDestination) {
  DocBuilder builder;
  builder.DefineChannel("t1", MediaType::kText).DefineChannel("t2", MediaType::kText);
  builder.Par("p")
      .ImmText("src", "x")
      .OnChannel("t1")
      .WithDuration(MediaTime::Seconds(4))
      .ImmText("dst", "y")
      .OnChannel("t2")
      .WithDuration(MediaTime::Seconds(1))
      .Up();
  builder.Arc(HardArc(*NodePath::Parse("p/src"), ArcEdge::kBegin, *NodePath::Parse("p/dst"),
                      ArcEdge::kBegin, MediaTime::Rational(3, 2)));
  Solved s = SolveDoc(builder.Build());
  ASSERT_TRUE(s.result.feasible);
  EXPECT_EQ(EarliestOf(s, "p/dst", PointKind::kBegin), MediaTime::Rational(3, 2));
}

TEST(SolverTest, ContradictoryArcsYieldConflictCycle) {
  DocBuilder builder;
  builder.DefineChannel("t1", MediaType::kText).DefineChannel("t2", MediaType::kText);
  builder.Par("p")
      .ImmText("a", "x")
      .OnChannel("t1")
      .WithDuration(MediaTime::Seconds(2))
      .ImmText("b", "y")
      .OnChannel("t2")
      .WithDuration(MediaTime::Seconds(2))
      .Up();
  // b must start exactly 1s after a, and a exactly 1s after b: impossible.
  builder.Arc(HardArc(*NodePath::Parse("p/a"), ArcEdge::kBegin, *NodePath::Parse("p/b"),
                      ArcEdge::kBegin, MediaTime::Seconds(1)));
  builder.Arc(HardArc(*NodePath::Parse("p/b"), ArcEdge::kBegin, *NodePath::Parse("p/a"),
                      ArcEdge::kBegin, MediaTime::Seconds(1)));
  Solved s = SolveDoc(builder.Build());
  ASSERT_FALSE(s.result.feasible);
  ASSERT_FALSE(s.result.conflict_cycle.empty());
  // The reported cycle mentions at least one of the authored arcs.
  bool has_arc = false;
  for (std::size_t index : s.result.conflict_cycle) {
    if (s.graph.constraints()[index].origin == ConstraintOrigin::kExplicitArc) {
      has_arc = true;
    }
  }
  EXPECT_TRUE(has_arc);
}

TEST(SolverTest, RigidDurationAgainstUpperBoundConflicts) {
  DocBuilder builder;
  builder.DefineChannel("txt", MediaType::kText);
  builder.Seq("s")
      .ImmText("long", "x")
      .OnChannel("txt")
      .WithDuration(MediaTime::Seconds(10))
      .Up();
  // The seq must END no later than 5s after it begins: impossible with a
  // rigid 10s child.
  builder.Arc(WindowArc(NodePath(), ArcEdge::kBegin, *NodePath::Parse("s"), ArcEdge::kEnd,
                        MediaTime(), MediaTime(), MediaTime::Seconds(5)));
  Solved s = SolveDoc(builder.Build());
  EXPECT_FALSE(s.result.feasible);
}

TEST(SolverTest, LatestTimesAndSlack) {
  DocBuilder builder;
  builder.DefineChannel("txt", MediaType::kText);
  builder.Par("p")
      .ImmText("pinned", "x")
      .OnChannel("txt")
      .WithDuration(MediaTime::Seconds(5))
      .Up();
  // A second, shorter leaf constrained to finish before the par ends has
  // slack; events pinned by equality have none.
  Solved s = SolveDoc(builder.Build());
  ASSERT_TRUE(s.result.feasible);
  auto pinned = s.doc.root().Resolve(*NodePath::Parse("p/pinned"));
  ASSERT_TRUE(pinned.ok());
  auto begin_point = s.graph.PointOf(**pinned, PointKind::kBegin);
  ASSERT_TRUE(begin_point.ok());
  // Nothing bounds this document above: latest is unbounded.
  EXPECT_FALSE(s.result.latest[static_cast<std::size_t>(*begin_point)].has_value());
  EXPECT_FALSE(s.result.Slack(static_cast<std::size_t>(*begin_point)).has_value());
}

TEST(SolverTest, BoundedSlackComputed) {
  DocBuilder builder;
  builder.DefineChannel("txt", MediaType::kText);
  builder.Par("p")
      .ImmText("a", "x")
      .OnChannel("txt")
      .WithDuration(MediaTime::Seconds(1))
      .Up();
  // a's begin must be within [0, 3] of the root begin.
  builder.Arc(WindowArc(NodePath(), ArcEdge::kBegin, *NodePath::Parse("p/a"),
                        ArcEdge::kBegin, MediaTime(), MediaTime(), MediaTime::Seconds(3)));
  Solved s = SolveDoc(builder.Build());
  ASSERT_TRUE(s.result.feasible);
  auto a = s.doc.root().Resolve(*NodePath::Parse("p/a"));
  ASSERT_TRUE(a.ok());
  auto point = s.graph.PointOf(**a, PointKind::kBegin);
  ASSERT_TRUE(point.ok());
  auto slack = s.result.Slack(static_cast<std::size_t>(*point));
  ASSERT_TRUE(slack.has_value());
  EXPECT_EQ(*slack, MediaTime::Seconds(3));
}

TEST(SolverTest, VerifySolutionDetectsViolations) {
  Solved s = SolveDoc(ChainDoc());
  ASSERT_TRUE(s.result.feasible);
  std::vector<MediaTime> broken = s.result.earliest;
  broken[2] = broken[2] + MediaTime::Seconds(100);  // displace one point
  EXPECT_FALSE(VerifySolution(s.graph, broken).ok());
  EXPECT_FALSE(VerifySolution(s.graph, {}).ok());  // size mismatch
}

TEST(SolverTest, EmptyGraphIsFeasible) {
  Document doc;
  auto graph = TimeGraph::Build(doc, {});
  ASSERT_TRUE(graph.ok());
  SolveResult result = SolveStn(*graph);
  EXPECT_TRUE(result.feasible);
}

// Property: every feasible random document's earliest schedule satisfies
// every constraint, and all times are non-negative.
class SolverProperty : public ::testing::TestWithParam<int> {};

TEST_P(SolverProperty, EarliestIsFeasibleAndNonNegative) {
  GenOptions options;
  options.seed = static_cast<std::uint64_t>(GetParam()) * 31 + 7;
  options.target_leaves = 40;
  options.arcs_per_composite = 0.8;
  auto workload = GenerateRandomDocument(options);
  ASSERT_TRUE(workload.ok()) << workload.status();
  auto events = CollectEvents(workload->document, &workload->store);
  ASSERT_TRUE(events.ok()) << events.status();
  auto graph = TimeGraph::Build(workload->document, *events);
  ASSERT_TRUE(graph.ok());
  SolveResult result = SolveStn(*graph);
  ASSERT_TRUE(result.feasible) << "lower-bound-only random docs must be feasible";
  EXPECT_TRUE(VerifySolution(*graph, result.earliest).ok());
  for (MediaTime t : result.earliest) {
    EXPECT_GE(t, MediaTime());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverProperty, ::testing::Range(0, 12));

// Property: SPFA and the naive Bellman-Ford baseline agree exactly — on
// feasibility and on every earliest/latest time — for random documents,
// both feasible (lower-bound arcs) and over-constrained (tight windows).
class SolverEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(SolverEquivalence, SpfaMatchesNaiveBellmanFord) {
  GenOptions options;
  options.seed = static_cast<std::uint64_t>(GetParam()) * 19 + 5;
  options.target_leaves = 40;
  options.arcs_per_composite = 1.2;
  options.tight_windows = GetParam() % 2 == 1;  // odd seeds: likely infeasible
  auto workload = GenerateRandomDocument(options);
  ASSERT_TRUE(workload.ok());
  auto events = CollectEvents(workload->document, &workload->store);
  ASSERT_TRUE(events.ok());
  auto graph = TimeGraph::Build(workload->document, *events);
  ASSERT_TRUE(graph.ok());

  SolveResult spfa = SolveStn(*graph, SolverAlgorithm::kSpfa);
  SolveResult naive = SolveStn(*graph, SolverAlgorithm::kNaiveBellmanFord);
  ASSERT_EQ(spfa.feasible, naive.feasible);
  if (spfa.feasible) {
    EXPECT_EQ(spfa.earliest, naive.earliest);
    EXPECT_EQ(spfa.latest, naive.latest);
  } else {
    // Both report a valid (possibly different) inconsistent cycle.
    EXPECT_FALSE(spfa.conflict_cycle.empty());
    EXPECT_FALSE(naive.conflict_cycle.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverEquivalence, ::testing::Range(0, 16));

}  // namespace
}  // namespace cmif
