#include "src/sched/timegraph.h"

#include <gtest/gtest.h>

#include "src/doc/builder.h"

namespace cmif {
namespace {

// A par of two text leaves inside a seq root.
StatusOr<Document> TwoLeafDoc() {
  DocBuilder builder;
  builder.DefineChannel("txt", MediaType::kText)
      .Par("p")
      .ImmText("a", "xx")
      .OnChannel("txt")
      .WithDuration(MediaTime::Seconds(2))
      .ImmText("b", "yy")
      .OnChannel("txt")
      .WithDuration(MediaTime::Seconds(3))
      .Up();
  return builder.Build();
}

std::size_t CountOrigin(const TimeGraph& graph, ConstraintOrigin origin) {
  std::size_t n = 0;
  for (const Constraint& c : graph.constraints()) {
    if (c.origin == origin) {
      ++n;
    }
  }
  return n;
}

TEST(TimeGraphTest, TwoPointsPerNode) {
  auto doc = TwoLeafDoc();
  ASSERT_TRUE(doc.ok());
  auto events = CollectEvents(*doc, nullptr);
  ASSERT_TRUE(events.ok());
  auto graph = TimeGraph::Build(*doc, *events);
  ASSERT_TRUE(graph.ok());
  // 4 nodes (root, p, a, b) -> 8 points; point 0 is the root's begin.
  EXPECT_EQ(graph->point_count(), 8u);
  auto root_begin = graph->PointOf(doc->root(), PointKind::kBegin);
  ASSERT_TRUE(root_begin.ok());
  EXPECT_EQ(*root_begin, 0);
  auto root_end = graph->PointOf(doc->root(), PointKind::kEnd);
  ASSERT_TRUE(root_end.ok());
  EXPECT_EQ(*root_end, 1);
}

TEST(TimeGraphTest, PointLookupFailsForForeignNodes) {
  auto doc = TwoLeafDoc();
  ASSERT_TRUE(doc.ok());
  auto events = CollectEvents(*doc, nullptr);
  ASSERT_TRUE(events.ok());
  auto graph = TimeGraph::Build(*doc, *events);
  ASSERT_TRUE(graph.ok());
  Node stranger(NodeKind::kSeq);
  EXPECT_EQ(graph->PointOf(stranger, PointKind::kBegin).status().code(),
            StatusCode::kNotFound);
}

TEST(TimeGraphTest, StructureConstraintsForPar) {
  auto doc = TwoLeafDoc();
  ASSERT_TRUE(doc.ok());
  auto events = CollectEvents(*doc, nullptr);
  ASSERT_TRUE(events.ok());
  auto graph = TimeGraph::Build(*doc, *events);
  ASSERT_TRUE(graph.ok());
  // par p: 2 forks + 2 joins; seq root: start + join = 2. Total structure 6.
  EXPECT_EQ(CountOrigin(*graph, ConstraintOrigin::kStructure), 6u);
  // Two leaf duration windows.
  EXPECT_EQ(CountOrigin(*graph, ConstraintOrigin::kDuration), 2u);
  // a and b share one channel: one ordering constraint.
  EXPECT_EQ(CountOrigin(*graph, ConstraintOrigin::kChannelOrder), 1u);
}

TEST(TimeGraphTest, ChannelSerializationCanBeDisabled) {
  auto doc = TwoLeafDoc();
  ASSERT_TRUE(doc.ok());
  auto events = CollectEvents(*doc, nullptr);
  ASSERT_TRUE(events.ok());
  TimeGraphOptions options;
  options.serialize_channels = false;
  auto graph = TimeGraph::Build(*doc, *events, options);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(CountOrigin(*graph, ConstraintOrigin::kChannelOrder), 0u);
}

TEST(TimeGraphTest, ExplicitArcsBecomeConstraints) {
  auto doc = TwoLeafDoc();
  ASSERT_TRUE(doc.ok());
  doc->root().AddArc(WindowArc(*NodePath::Parse("p/a"), ArcEdge::kEnd,
                               *NodePath::Parse("p/b"), ArcEdge::kBegin,
                               MediaTime::Rational(1, 2), MediaTime::Millis(-100),
                               MediaTime::Millis(200), ArcRigor::kMay));
  auto events = CollectEvents(*doc, nullptr);
  ASSERT_TRUE(events.ok());
  auto graph = TimeGraph::Build(*doc, *events);
  ASSERT_TRUE(graph.ok());
  const Constraint* arc_constraint = nullptr;
  for (const Constraint& c : graph->constraints()) {
    if (c.origin == ConstraintOrigin::kExplicitArc) {
      arc_constraint = &c;
    }
  }
  ASSERT_NE(arc_constraint, nullptr);
  // lo = offset + min_delay = 1/2 - 1/10 = 2/5; hi = 1/2 + 1/5 = 7/10.
  EXPECT_EQ(arc_constraint->lo, MediaTime::Rational(2, 5));
  ASSERT_TRUE(arc_constraint->hi.has_value());
  EXPECT_EQ(*arc_constraint->hi, MediaTime::Rational(7, 10));
  EXPECT_EQ(arc_constraint->rigor, ArcRigor::kMay);
  EXPECT_EQ(arc_constraint->owner, &doc->root());
  EXPECT_EQ(arc_constraint->arc_index, 0);
}

TEST(TimeGraphTest, UnresolvableArcFailsBuild) {
  auto doc = TwoLeafDoc();
  ASSERT_TRUE(doc.ok());
  doc->root().AddArc(HardArc(*NodePath::Parse("ghost"), ArcEdge::kBegin,
                             *NodePath::Parse("p/b"), ArcEdge::kBegin));
  auto events = CollectEvents(*doc, nullptr);
  ASSERT_TRUE(events.ok());
  EXPECT_EQ(TimeGraph::Build(*doc, *events).status().code(), StatusCode::kNotFound);
}

TEST(TimeGraphTest, AddConstraintValidates) {
  auto doc = TwoLeafDoc();
  ASSERT_TRUE(doc.ok());
  auto events = CollectEvents(*doc, nullptr);
  ASSERT_TRUE(events.ok());
  auto graph = TimeGraph::Build(*doc, *events);
  ASSERT_TRUE(graph.ok());
  Constraint c;
  c.from = 0;
  c.to = 999;  // out of range
  EXPECT_EQ(graph->AddConstraint(c).code(), StatusCode::kOutOfRange);
  c.to = 1;
  c.lo = MediaTime::Seconds(2);
  c.hi = MediaTime::Seconds(1);  // hi < lo
  EXPECT_EQ(graph->AddConstraint(c).code(), StatusCode::kInvalidArgument);
  c.hi = MediaTime::Seconds(3);
  EXPECT_TRUE(graph->AddConstraint(c).ok());
}

TEST(TimeGraphTest, DisableMarksConstraints) {
  auto doc = TwoLeafDoc();
  ASSERT_TRUE(doc.ok());
  auto events = CollectEvents(*doc, nullptr);
  ASSERT_TRUE(events.ok());
  auto graph = TimeGraph::Build(*doc, *events);
  ASSERT_TRUE(graph.ok());
  EXPECT_FALSE(graph->IsDisabled(0));
  graph->Disable(0);
  EXPECT_TRUE(graph->IsDisabled(0));
}

TEST(TimeGraphTest, EmptyCompositeGetsZeroDuration) {
  Document doc;
  (void)*doc.root().AddChild(NodeKind::kPar);
  auto graph = TimeGraph::Build(doc, {});
  ASSERT_TRUE(graph.ok());
  bool found_empty = false;
  for (const Constraint& c : graph->constraints()) {
    if (c.label.find("empty composite") != std::string::npos) {
      found_empty = true;
      EXPECT_EQ(c.lo, MediaTime());
      ASSERT_TRUE(c.hi.has_value());
      EXPECT_EQ(*c.hi, MediaTime());
    }
  }
  EXPECT_TRUE(found_empty);
}

}  // namespace
}  // namespace cmif
