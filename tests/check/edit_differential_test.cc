#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/check/differential.h"
#include "src/doc/edit.h"
#include "src/fmt/parser.h"
#include "src/gen/editgen.h"

namespace cmif {
namespace check {
namespace {

// The checked-in reproducer exercises the full edit-session differential:
// an incremental retune, an add-arc that must conflict with the identical
// canonical cycle on both sides, and the remove-arc that recovers.
constexpr const char* kEditDoc = R"((cmif
  (seq (name edit_diff channel_dict (txt (medium text)))
    (syncarc end must a 1/1 begin b 0/1 inf)
    (imm (name a channel txt duration 2/1) "first")
    (imm (name b channel txt duration 1/1) "second")
  )
))";

std::vector<EditOp> ParseTrace(const std::vector<std::string>& lines) {
  std::vector<EditOp> trace;
  for (const std::string& line : lines) {
    auto op = ParseEditOp(line);
    EXPECT_TRUE(op.ok()) << line << ": " << op.status();
    trace.push_back(*op);
  }
  return trace;
}

TEST(EditDifferentialTest, HandWrittenTraceIsClean) {
  auto doc = ParseDocument(kEditDoc);
  ASSERT_TRUE(doc.ok()) << doc.status();
  std::vector<EditOp> trace = ParseTrace({
      "retune-arc / 0 2 -1/2 inf",
      "add-arc / b begin a begin must 1 0 0",  // conflict on both sides
      "remove-arc / 1",                        // recovery
      "retune-arc / 0 0 0 inf",
  });
  Status status = CheckEditTrace(*doc, nullptr, trace, "hand-written");
  EXPECT_TRUE(status.ok()) << status;
}

TEST(EditDifferentialTest, GeneratedTracesAreDeterministicInSeed) {
  auto doc = ParseDocument(kEditDoc);
  ASSERT_TRUE(doc.ok());
  EditGenOptions options;
  options.count = 10;
  options.seed = 5;
  auto a_or = GenerateEditTrace(*doc, options);
  auto b_or = GenerateEditTrace(*doc, options);
  ASSERT_TRUE(a_or.ok() && b_or.ok());
  std::vector<EditOp> a = *a_or;
  std::vector<EditOp> b = *b_or;
  ASSERT_EQ(a.size(), b.size());
  EXPECT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(FormatEditOp(a[i]), FormatEditOp(b[i])) << "op " << i;
  }
  options.seed = 6;
  auto c_or = GenerateEditTrace(*doc, options);
  ASSERT_TRUE(c_or.ok());
  std::vector<EditOp> c = *c_or;
  bool differs = c.size() != a.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = FormatEditOp(a[i]) != FormatEditOp(c[i]);
  }
  EXPECT_TRUE(differs) << "different seeds produced the identical trace";
}

TEST(EditDifferentialTest, SweepWithEditsIsClean) {
  // The in-tree version of the CI edit-differential job, scaled down: every
  // generated document gets a seeded edit trace replayed through an
  // EditSession and differentially checked after every op.
  CheckOptions options;
  options.base_seed = 42;
  options.count = 12;
  options.target_leaves = 8;
  options.edits = 6;
  options.shrink = false;
  auto report = RunDifferentialCheck(options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->ok()) << report->Summary();
  EXPECT_EQ(report->documents, 12u);
}

TEST(EditDifferentialTest, ShrinkerRefusesATraceThatPassesEveryCheck) {
  auto doc = ParseDocument(kEditDoc);
  ASSERT_TRUE(doc.ok());
  std::vector<EditOp> trace = ParseTrace({
      "retune-arc / 0 2 -1/2 inf",
      "add-arc / a end b begin may 0 0 inf",
  });
  // A reproducer is only meaningful for a diverging trace; handing the
  // shrinker a clean one must fail loudly instead of emitting an empty
  // "reproducer" that reproduces nothing.
  auto shrunk = ShrinkEditReproducer(*doc, nullptr, trace);
  ASSERT_FALSE(shrunk.ok());
  EXPECT_EQ(shrunk.status().code(), StatusCode::kFailedPrecondition);
}

TEST(EditDifferentialTest, CorpusTextWithEditSectionReplays) {
  std::string text = std::string(kEditDoc) +
                     "\n%% edits\n"
                     "retune-arc / 0 3 0 inf\n"
                     "add-arc / a begin b begin may 2 0 inf\n";
  Status status = ReplayCorpusText(text, "inline-corpus");
  EXPECT_TRUE(status.ok()) << status;
}

}  // namespace
}  // namespace check
}  // namespace cmif
