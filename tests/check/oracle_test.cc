#include "src/check/oracle.h"

#include <gtest/gtest.h>

#include "src/doc/builder.h"
#include "src/doc/event.h"
#include "src/gen/docgen.h"
#include "src/sched/solver.h"
#include "src/sched/timegraph.h"

namespace cmif {
namespace check {
namespace {

struct Compiled {
  Document doc{NodeKind::kSeq};
  std::vector<EventDescriptor> events;
  TimeGraph graph = *TimeGraph::Build(Document(), {});
};

Compiled Compile(StatusOr<Document> doc_or) {
  Compiled c;
  EXPECT_TRUE(doc_or.ok()) << doc_or.status();
  c.doc = std::move(doc_or).value();
  auto events = CollectEvents(c.doc, nullptr);
  EXPECT_TRUE(events.ok()) << events.status();
  c.events = std::move(events).value();
  auto graph = TimeGraph::Build(c.doc, c.events);
  EXPECT_TRUE(graph.ok()) << graph.status();
  c.graph = std::move(graph).value();
  return c;
}

// seq root with three rigid text events of 1, 2, 3 seconds.
StatusOr<Document> ChainDoc() {
  DocBuilder builder;
  builder.DefineChannel("txt", MediaType::kText);
  for (int i = 0; i < 3; ++i) {
    builder.ImmText(std::string(1, static_cast<char>('a' + i)), "x")
        .OnChannel("txt")
        .WithDuration(MediaTime::Seconds(i + 1));
  }
  return builder.Build();
}

TEST(OracleTest, ChainMatchesProductionSolver) {
  Compiled c = Compile(ChainDoc());
  OracleResult oracle = OracleSolve(c.graph);
  SolveResult production = SolveStn(c.graph);
  ASSERT_TRUE(oracle.feasible);
  ASSERT_TRUE(production.feasible);
  ASSERT_EQ(oracle.times.size(), production.earliest.size());
  for (std::size_t i = 0; i < oracle.times.size(); ++i) {
    EXPECT_EQ(oracle.times[i], production.earliest[i]) << "point " << i;
  }
  // The least solution is anchored at the reference point and satisfies
  // every constraint of the network.
  EXPECT_EQ(oracle.times[0], MediaTime());
  EXPECT_TRUE(VerifySolution(c.graph, oracle.times).ok());
  EXPECT_GT(oracle.passes, 0u);
}

TEST(OracleTest, RejectsOverConstrainedWindow) {
  // b must begin within 100ms of a's begin, but a runs for a full second
  // before b can start: a positive cycle.
  DocBuilder builder;
  builder.DefineChannel("txt", MediaType::kText);
  builder.ImmText("a", "x").OnChannel("txt").WithDuration(MediaTime::Seconds(1));
  builder.ImmText("b", "y").OnChannel("txt").WithDuration(MediaTime::Seconds(1));
  builder.ToRoot().Arc(WindowArc(*NodePath::Parse("a"), ArcEdge::kBegin, *NodePath::Parse("b"),
                                 ArcEdge::kBegin, MediaTime(), MediaTime(),
                                 MediaTime::Millis(100)));
  Compiled c = Compile(builder.Build());
  OracleResult oracle = OracleSolve(c.graph);
  SolveResult production = SolveStn(c.graph);
  EXPECT_FALSE(oracle.feasible);
  EXPECT_FALSE(production.feasible);
}

TEST(OracleTest, BlamesCapabilityOnlyForCapabilityCycles) {
  Compiled c = Compile(ChainDoc());
  EXPECT_FALSE(OracleBlamesCapability(c.graph));  // feasible: no blame at all

  // An injected device limit that contradicts the chain: c must end within
  // 1s of the root's begin, but the chain needs 6s.
  Constraint limit;
  limit.from = 0;
  limit.to = 1;  // root end
  limit.lo = MediaTime();
  limit.hi = MediaTime::Seconds(1);
  limit.origin = ConstraintOrigin::kCapability;
  limit.label = "test capability limit";
  ASSERT_TRUE(c.graph.AddConstraint(limit).ok());
  EXPECT_FALSE(OracleSolve(c.graph).feasible);
  EXPECT_TRUE(OracleBlamesCapability(c.graph));
}

TEST(OracleTest, DoesNotBlameCapabilityForAuthoringCycles) {
  DocBuilder builder;
  builder.DefineChannel("txt", MediaType::kText);
  builder.ImmText("a", "x").OnChannel("txt").WithDuration(MediaTime::Seconds(1));
  builder.ImmText("b", "y").OnChannel("txt").WithDuration(MediaTime::Seconds(1));
  builder.ToRoot().Arc(WindowArc(*NodePath::Parse("a"), ArcEdge::kBegin, *NodePath::Parse("b"),
                                 ArcEdge::kBegin, MediaTime(), MediaTime(),
                                 MediaTime::Millis(100)));
  Compiled c = Compile(builder.Build());
  ASSERT_FALSE(OracleSolve(c.graph).feasible);
  // The cycle stands without any capability constraint, so ignoring them
  // cannot rescue the document.
  EXPECT_FALSE(OracleBlamesCapability(c.graph));
}

TEST(OracleTest, DisabledConstraintsAreIgnored) {
  DocBuilder builder;
  builder.DefineChannel("txt", MediaType::kText);
  builder.ImmText("a", "x").OnChannel("txt").WithDuration(MediaTime::Seconds(1));
  builder.ImmText("b", "y").OnChannel("txt").WithDuration(MediaTime::Seconds(1));
  builder.ToRoot().Arc(WindowArc(*NodePath::Parse("a"), ArcEdge::kBegin, *NodePath::Parse("b"),
                                 ArcEdge::kBegin, MediaTime(), MediaTime(),
                                 MediaTime::Millis(100), ArcRigor::kMay));
  Compiled c = Compile(builder.Build());
  ASSERT_FALSE(OracleSolve(c.graph).feasible);
  // Relaxation disables the may arc; the oracle must see the graph the same
  // way the production solver does afterwards.
  for (std::size_t i = 0; i < c.graph.constraints().size(); ++i) {
    if (c.graph.constraints()[i].origin == ConstraintOrigin::kExplicitArc) {
      c.graph.Disable(i);
    }
  }
  EXPECT_TRUE(OracleSolve(c.graph).feasible);
}

TEST(OracleTest, AgreesWithSolverOnRandomDocuments) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    GenOptions options;
    options.seed = seed;
    options.target_leaves = 10;
    options.tight_windows = (seed % 2) == 0;
    auto workload = GenerateRandomDocument(options);
    ASSERT_TRUE(workload.ok()) << workload.status();
    SCOPED_TRACE(testing::Message() << "seed=" << seed);
    auto events = CollectEvents(workload->document, &workload->store);
    ASSERT_TRUE(events.ok()) << events.status();
    auto graph = TimeGraph::Build(workload->document, *events);
    ASSERT_TRUE(graph.ok()) << graph.status();
    OracleResult oracle = OracleSolve(*graph);
    SolveResult production = SolveStn(*graph);
    ASSERT_EQ(oracle.feasible, production.feasible);
    if (oracle.feasible) {
      EXPECT_EQ(oracle.times, production.earliest);
    }
  }
}

}  // namespace
}  // namespace check
}  // namespace cmif
