#include "src/check/simulator.h"

#include <gtest/gtest.h>

#include "src/doc/builder.h"
#include "src/doc/event.h"
#include "src/gen/docgen.h"
#include "src/player/engine.h"
#include "src/sched/conflict.h"

namespace cmif {
namespace check {
namespace {

struct Prepared {
  Document doc{NodeKind::kSeq};
  DescriptorStore store;
  Schedule schedule;
};

Prepared Prepare(StatusOr<GenWorkload> workload_or) {
  Prepared p;
  EXPECT_TRUE(workload_or.ok()) << workload_or.status();
  p.doc = std::move(workload_or->document);
  p.store = std::move(workload_or->store);
  auto events = CollectEvents(p.doc, &p.store);
  EXPECT_TRUE(events.ok()) << events.status();
  auto result = ComputeSchedule(p.doc, *events);
  EXPECT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->feasible);
  p.schedule = std::move(result->schedule);
  return p;
}

StatusOr<GenWorkload> SmallWorkload(std::uint64_t seed) {
  GenOptions options;
  options.seed = seed;
  options.target_leaves = 8;
  return GenerateRandomDocument(options);
}

// The simulator's defining property: entry-for-entry equality with the
// production engine, across profiles (which shift device latencies and
// bandwidth, and hence freezes).
void ExpectMatchesEngine(const Prepared& p, const PlayerOptions& player_options,
                         const SimulatorOptions& sim_options) {
  auto run = Play(p.doc, p.schedule, &p.store, player_options);
  ASSERT_TRUE(run.ok()) << run.status();
  auto sim = SimulatePlayback(p.doc, p.schedule, &p.store, sim_options);
  ASSERT_TRUE(sim.ok()) << sim.status();
  ASSERT_EQ(sim->entries.size(), run->trace.entries().size());
  for (std::size_t i = 0; i < sim->entries.size(); ++i) {
    const SimEntry& ours = sim->entries[i];
    const TraceEntry& theirs = run->trace.entries()[i];
    SCOPED_TRACE(testing::Message() << "entry " << i << " (" << theirs.label << ")");
    EXPECT_EQ(ours.label, theirs.label);
    EXPECT_EQ(ours.channel, theirs.channel);
    EXPECT_EQ(ours.scheduled_begin, theirs.scheduled_begin);
    EXPECT_EQ(ours.target_begin, theirs.target_begin);
    EXPECT_EQ(ours.actual_begin, theirs.actual_begin);
    EXPECT_EQ(ours.actual_end, theirs.actual_end);
    EXPECT_EQ(ours.lateness, theirs.lateness);
    EXPECT_EQ(ours.caused_freeze, theirs.caused_freeze);
    EXPECT_EQ(ours.freeze_amount, theirs.freeze_amount);
  }
  EXPECT_EQ(sim->events_skipped, run->events_skipped);
  EXPECT_EQ(sim->sync_violations, run->sync_violations);
  EXPECT_EQ(sim->total_freeze, run->trace.TotalFreeze());
  EXPECT_EQ(sim->document_time, run->clock.document_time());
  EXPECT_EQ(sim->presentation_time, run->clock.presentation_time());
  EXPECT_EQ(sim->frozen_total, run->clock.frozen_total());
}

TEST(SimulatorTest, MatchesEngineOnWorkstation) {
  Prepared p = Prepare(SmallWorkload(7));
  ExpectMatchesEngine(p, PlayerOptions{}, SimulatorOptions{});
}

TEST(SimulatorTest, MatchesEngineOnSlowProfile) {
  // The portable profile's long setups force freezes; the accounting must
  // stay in lockstep.
  Prepared p = Prepare(SmallWorkload(11));
  PlayerOptions player;
  player.profile = PortableMonoProfile();
  SimulatorOptions sim;
  sim.profile = PortableMonoProfile();
  ExpectMatchesEngine(p, player, sim);
}

TEST(SimulatorTest, MatchesEngineWithFreezingOff) {
  Prepared p = Prepare(SmallWorkload(13));
  PlayerOptions player;
  player.profile = PortableMonoProfile();
  player.enable_freeze = false;
  SimulatorOptions sim;
  sim.profile = PortableMonoProfile();
  sim.enable_freeze = false;
  ExpectMatchesEngine(p, player, sim);
}

TEST(SimulatorTest, MatchesEngineWithStartAtAndRate) {
  Prepared p = Prepare(SmallWorkload(17));
  PlayerOptions player;
  player.start_at = MediaTime::Seconds(2);
  player.rate_num = 2;  // double speed
  SimulatorOptions sim;
  sim.start_at = MediaTime::Seconds(2);
  sim.rate_num = 2;
  ExpectMatchesEngine(p, player, sim);
}

TEST(SimulatorTest, FreezePreservesMustSynchronization) {
  // With freezing on there are never violations — the paper's must
  // semantics; the freeze total records the price paid.
  Prepared p = Prepare(SmallWorkload(19));
  SimulatorOptions sim;
  sim.profile = PortableMonoProfile();
  auto frozen = SimulatePlayback(p.doc, p.schedule, &p.store, sim);
  ASSERT_TRUE(frozen.ok()) << frozen.status();
  EXPECT_EQ(frozen->sync_violations, 0u);

  sim.enable_freeze = false;
  auto loose = SimulatePlayback(p.doc, p.schedule, &p.store, sim);
  ASSERT_TRUE(loose.ok()) << loose.status();
  if (frozen->total_freeze.is_positive()) {
    EXPECT_GT(loose->sync_violations, 0u);
  }
}

TEST(SimulatorTest, RejectsUnknownChannel) {
  // A schedule naming a channel the document does not define is an infra
  // error, not a silent skip.
  Prepared p = Prepare(SmallWorkload(23));
  Document empty(NodeKind::kSeq);  // no channel definitions at all
  auto sim = SimulatePlayback(empty, p.schedule, &p.store, SimulatorOptions{});
  EXPECT_FALSE(sim.ok());
}

}  // namespace
}  // namespace check
}  // namespace cmif
