// Self-tests for the streamed-vs-blob differential harness
// (src/check/stream.h): seeded sweeps are clean and deterministic, the
// flagship document streams without divergence under both generous and
// starved links, and the `%% stream` corpus trailer drives replay with its
// marker-line parameters.
#include "src/check/stream.h"

#include <gtest/gtest.h>

#include <string>

#include "src/check/differential.h"
#include "src/news/evening_news.h"

namespace cmif {
namespace check {
namespace {

TEST(StreamDifferentialTest, SmallRunIsClean) {
  StreamCheckOptions options;
  options.base_seed = 42;
  options.count = 25;
  options.target_leaves = 8;
  options.shrink = false;
  auto report = RunStreamCheck(options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->ok()) << report->Summary();
  EXPECT_EQ(report->documents, 25u);
  EXPECT_EQ(report->feasible + report->relaxed + report->infeasible, report->documents);
  EXPECT_NE(report->Summary().find("zero divergences"), std::string::npos);
}

TEST(StreamDifferentialTest, StarvedLinkStaysDivergenceFree) {
  // A link slower than the schedule's demand: stalls are expected, wrong
  // bytes or reordered events are not — exactly the invariant the harness
  // enforces per document.
  StreamCheckOptions options;
  options.base_seed = 7;
  options.count = 15;
  options.target_leaves = 10;
  options.bandwidth_bytes_per_s = 2000;
  options.chunk_bytes = 300;
  options.shrink = false;
  auto report = RunStreamCheck(options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->ok()) << report->Summary();
  EXPECT_EQ(report->documents, 15u);
}

TEST(StreamDifferentialTest, ExplicitSeedListOverridesCount) {
  StreamCheckOptions options;
  options.count = 500;  // ignored: the list wins
  options.seeds = {3, 99, 0xdeadbeef};
  options.target_leaves = 6;
  options.shrink = false;
  auto report = RunStreamCheck(options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->ok()) << report->Summary();
  EXPECT_EQ(report->documents, 3u);
}

TEST(StreamDifferentialTest, EveningNewsStreamsClean) {
  auto news = BuildEveningNews(NewsOptions{});
  ASSERT_TRUE(news.ok()) << news.status();
  // Generous link: the stream must deliver every block on time.
  Status generous = CheckStreamDocument(news->document, &news->store, "news-fast",
                                        WorkstationProfile(),
                                        /*bandwidth_bytes_per_s=*/std::int64_t{1} << 30,
                                        /*chunk_bytes=*/64 << 10);
  EXPECT_TRUE(generous.ok()) << generous;
  // Starved link: stalls allowed, divergence not.
  Status starved = CheckStreamDocument(news->document, &news->store, "news-slow",
                                       WorkstationProfile(),
                                       /*bandwidth_bytes_per_s=*/1500,
                                       /*chunk_bytes=*/512);
  EXPECT_TRUE(starved.ok()) << starved;
}

TEST(StreamDifferentialTest, CorpusStreamTrailerDrivesReplay) {
  const std::string document =
      "(cmif\n"
      "  (seq (name s channel_dict (txt (medium text)))\n"
      "    (imm (name a channel txt duration 1/1) \"one\")\n"
      "    (imm (name b channel txt duration 2/1) \"two\")\n"
      "  )\n"
      ")\n";
  EXPECT_TRUE(ReplayCorpusText(document + "%% stream bandwidth=2000 chunk=300\n",
                               "inline-stream")
                  .ok());
  // Marker defaults: a bare marker replays at the default link.
  EXPECT_TRUE(ReplayCorpusText(document + "%% stream\n", "inline-default").ok());
  // A malformed chunk size is a structured replay failure, not a crash.
  EXPECT_FALSE(ReplayCorpusText(document + "%% stream chunk=0\n", "inline-bad").ok());
  EXPECT_FALSE(
      ReplayCorpusText(document + "%% stream chunk=nonsense\n", "inline-bad2").ok());
}

TEST(StreamDifferentialTest, EditAndStreamTrailersCompose) {
  // A corpus file may carry both sections: the edit trace replays first,
  // then the (original) document streams.
  const std::string text =
      "(cmif\n"
      "  (seq (name s channel_dict (txt (medium text)))\n"
      "    (imm (name a channel txt duration 1/1) \"one\")\n"
      "    (imm (name b channel txt duration 2/1) \"two\")\n"
      "  )\n"
      ")\n"
      "%% edits\n"
      "add-arc / a end b begin may 0/1 0/1 inf\n"
      "%% stream bandwidth=4000 chunk=256\n";
  Status status = ReplayCorpusText(text, "inline-both");
  EXPECT_TRUE(status.ok()) << status;
}

}  // namespace
}  // namespace check
}  // namespace cmif
