#include "src/check/differential.h"

#include <gtest/gtest.h>

#include <string>

#include "src/base/string_util.h"
#include "src/doc/builder.h"
#include "src/fmt/parser.h"
#include "src/news/evening_news.h"

namespace cmif {
namespace check {
namespace {

TEST(DifferentialTest, SmallRunIsClean) {
  CheckOptions options;
  options.base_seed = 42;
  options.count = 30;
  options.target_leaves = 8;
  auto report = RunDifferentialCheck(options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->ok()) << report->Summary();
  EXPECT_EQ(report->documents, 30u);
  // Every document lands in exactly one verdict bucket.
  EXPECT_EQ(report->feasible + report->relaxed + report->infeasible, report->documents);
  EXPECT_GT(report->oracle_passes, 0u);
  EXPECT_NE(report->Summary().find("zero divergences"), std::string::npos);
}

TEST(DifferentialTest, ExplicitSeedListOverridesCount) {
  CheckOptions options;
  options.count = 500;  // ignored: the list wins
  options.seeds = {3, 99, 0xdeadbeef};
  options.target_leaves = 6;
  auto report = RunDifferentialCheck(options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->ok()) << report->Summary();
  EXPECT_EQ(report->documents, 3u);
}

TEST(DifferentialTest, PathologicalOptionsAreDeterministicInSeed) {
  GenOptions a = PathologicalGenOptions(123, 12);
  GenOptions b = PathologicalGenOptions(123, 12);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.max_depth, b.max_depth);
  EXPECT_EQ(a.channels, b.channels);
  EXPECT_EQ(a.par_probability, b.par_probability);
  EXPECT_EQ(a.cross_arc_rate, b.cross_arc_rate);
  EXPECT_EQ(a.tight_windows, b.tight_windows);

  // The sweep must actually cover the pathology space: over a seed range we
  // expect starvation (1 channel), deep nesting, and cross arcs to appear.
  bool starved = false;
  bool deep = false;
  bool crossing = false;
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    GenOptions g = PathologicalGenOptions(seed, 12);
    starved = starved || g.channels == 1;
    deep = deep || g.max_depth >= 5;
    crossing = crossing || g.cross_arc_rate > 0;
  }
  EXPECT_TRUE(starved);
  EXPECT_TRUE(deep);
  EXPECT_TRUE(crossing);
}

TEST(DifferentialTest, GeneratedDocumentsRecordTheirSeed) {
  GenOptions options = PathologicalGenOptions(77, 8);
  auto workload = GenerateRandomDocument(options);
  ASSERT_TRUE(workload.ok()) << workload.status();
  auto recorded = workload->document.root().attrs().GetString("gen_seed");
  ASSERT_TRUE(recorded.ok()) << recorded.status();
  EXPECT_EQ(recorded->rfind("0x", 0), 0u) << *recorded;
  EXPECT_EQ(std::stoull(*recorded, nullptr, 16), options.seed);
}

TEST(DifferentialTest, EveningNewsPassesEveryCheck) {
  // The repo's flagship document goes through the full differential set:
  // solver vs oracle, round trips, and player-vs-simulator replay.
  auto workload = BuildEveningNews(NewsOptions{});
  ASSERT_TRUE(workload.ok()) << workload.status();
  CheckCounters counters;
  Status verdict = CheckDocument(workload->document, &workload->store, "evening-news",
                                 WorkstationProfile(), &counters);
  EXPECT_TRUE(verdict.ok()) << verdict;
  EXPECT_EQ(counters.feasible, 1u);
}

// A document whose third leaf plays on a channel that is never defined —
// CheckDocument rejects it, which stands in for a divergence when testing
// the shrinker itself.
StatusOr<Document> DocWithOneBadLeaf(int leaves) {
  DocBuilder builder;
  builder.DefineChannel("txt", MediaType::kText);
  for (int i = 0; i < leaves; ++i) {
    builder.ImmText(StrFormat("n%d", i), "x")
        .OnChannel(i == 2 ? "ghost" : "txt")
        .WithDuration(MediaTime::Seconds(1));
  }
  return builder.Build();
}

TEST(ShrinkerTest, ShrinksToMinimalFailingDocument) {
  auto doc = DocWithOneBadLeaf(9);
  ASSERT_TRUE(doc.ok()) << doc.status();
  ASSERT_FALSE(CheckDocument(*doc, nullptr, "shrink-input", WorkstationProfile()).ok());

  auto shrunk = ShrinkReproducer(*doc, nullptr, WorkstationProfile());
  ASSERT_TRUE(shrunk.ok()) << shrunk.status();
  auto reparsed = ParseDocument(*shrunk);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  // Minimal: the offending leaf survives, the other eight are gone.
  EXPECT_LT(reparsed->root().SubtreeSize(), doc->root().SubtreeSize());
  EXPECT_LE(reparsed->root().SubtreeSize(), 2u);
  // And the reproducer still fails, which is what makes it a reproducer.
  EXPECT_FALSE(ReplayCorpusText(*shrunk, "shrunk").ok());
}

TEST(ShrinkerTest, RefusesAPassingDocument) {
  DocBuilder builder;
  builder.DefineChannel("txt", MediaType::kText);
  builder.ImmText("a", "x").OnChannel("txt").WithDuration(MediaTime::Seconds(1));
  auto doc = builder.Build();
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_FALSE(ShrinkReproducer(*doc, nullptr, WorkstationProfile()).ok());
}

TEST(CorpusTest, ReplaysEveryCheckedInFile) {
  auto replayed = ReplayCorpusDir(CMIF_CORPUS_DIR);
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  EXPECT_GE(*replayed, 4);
}

}  // namespace
}  // namespace check
}  // namespace cmif
