// Streamed delivery over a real loopback socket: the chunked path must be
// byte-identical to blob delivery, survive chunk-level chaos by resuming at
// the acked boundary, restart (not resume) on end-to-end integrity
// failures, fall back to plain requests silently across the v3/v4 version
// boundary in both directions, and account for all of it in the server's
// live stats. Ephemeral ports throughout.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/api/cmif.h"
#include "src/base/string_util.h"
#include "src/fault/fault.h"

namespace cmif {
namespace net {
namespace {

struct Harness {
  std::unique_ptr<ServeCorpus> corpus;
  std::unique_ptr<ServeLoop> loop;
  std::unique_ptr<NetServer> server;

  static Harness Start(int documents, ServeOptions options = {},
                       NetServerOptions net_options = {}) {
    Harness h;
    auto corpus = api::BuildNewsCorpus(documents);
    EXPECT_TRUE(corpus.ok()) << corpus.status();
    h.corpus = std::move(corpus).value();
    options.threads = 2;
    h.loop = std::make_unique<ServeLoop>(*h.corpus, options);
    h.server = std::make_unique<NetServer>(*h.loop, net_options);
    Status started = h.server->Start();
    EXPECT_TRUE(started.ok()) << started;
    return h;
  }

  NetClient Client(std::uint8_t wire_version = kWireVersion,
                   int max_attempts = 3) const {
    NetClientOptions options;
    options.port = server->port();
    options.wire_version = wire_version;
    options.retry.max_attempts = max_attempts;
    return NetClient(options);
  }
};

// ~3 MB of news blocks at this chunk size = a dozen chunks per stream:
// enough to exercise mid-stream cuts and resume without making every
// request a ten-second, ten-thousand-frame affair.
constexpr std::uint64_t kTestChunkBytes = 256u << 10;

void ExpectSameDelivery(const StreamResult& streamed, const PresentResponse& blob) {
  EXPECT_EQ(streamed.response.presentation, blob.presentation);
  EXPECT_EQ(streamed.response.presentation_hash, blob.presentation_hash);
  ASSERT_EQ(streamed.blocks.size(), blob.blocks.size());
  for (std::size_t i = 0; i < blob.blocks.size(); ++i) {
    EXPECT_EQ(streamed.blocks[i].descriptor_id, blob.blocks[i].descriptor_id) << i;
    EXPECT_EQ(streamed.blocks[i].payload, blob.blocks[i].payload) << i;
  }
}

TEST(StreamLoopbackTest, StreamedDeliveryMatchesBlobByteForByte) {
  Harness h = Harness::Start(2);
  NetClient client = h.Client();
  PresentRequest request;
  request.document = h.corpus->document(0).name;
  request.profile = "workstation";

  // The reference: v4 blob delivery, every block inline in the response.
  PresentRequest blob_request = request;
  blob_request.want_blocks = true;
  auto blob = client.Present(blob_request);
  ASSERT_TRUE(blob.ok()) << blob.status();
  ASSERT_FALSE(blob->blocks.empty()) << "news documents must have block content";

  // The streamed path, chunked so the payload spans several frames.
  auto streamed = client.PresentStream(request, kTestChunkBytes);
  ASSERT_TRUE(streamed.ok()) << streamed.status();
  EXPECT_TRUE(streamed->streamed);
  EXPECT_GT(streamed->chunks_received, 0u);
  EXPECT_EQ(streamed->resumes, 0u);
  EXPECT_EQ(streamed->restarts, 0u);
  ExpectSameDelivery(*streamed, *blob);

  // The stream carried exactly the blocks' bytes, no more.
  std::uint64_t block_bytes = 0;
  for (const WireBlock& block : streamed->blocks) {
    block_bytes += block.payload.size();
  }
  EXPECT_EQ(streamed->bytes_streamed, block_bytes);
  EXPECT_EQ(streamed->chunks_received, StreamChunkCount(block_bytes, kTestChunkBytes));
  h.server->Stop();
}

TEST(StreamLoopbackTest, ChunkDropsResumeAtTheAckedBoundary) {
  Harness h = Harness::Start(2);
  NetClient client = h.Client(kWireVersion, /*max_attempts=*/32);
  PresentRequest request;
  request.document = h.corpus->document(0).name;
  PresentRequest blob_request = request;
  blob_request.want_blocks = true;
  auto blob = client.Present(blob_request);
  ASSERT_TRUE(blob.ok()) << blob.status();

  // Cut the stream mid-flight with probability 0.25 per chunk: the client
  // must reconnect, resume at its contiguous chunk boundary, and still end
  // byte-identical — under every cut pattern the seeded plan produces. (At
  // ~12 chunks a stream and ~3 chunks of expected progress per attempt,
  // the 32-attempt budget leaves an order of magnitude of headroom.)
  auto plan = fault::FaultPlan::Parse("seed=7;net.chunk.drop:transient=0.25");
  ASSERT_TRUE(plan.ok()) << plan.status();
  fault::ScopedPlan chaos(*plan);
  std::uint64_t resumes = 0;
  for (int i = 0; i < 8; ++i) {
    auto streamed = client.PresentStream(request, kTestChunkBytes);
    ASSERT_TRUE(streamed.ok()) << "attempt " << i << ": " << streamed.status();
    EXPECT_TRUE(streamed->streamed) << i;
    EXPECT_EQ(streamed->restarts, 0u) << "drops must resume, not restart";
    ExpectSameDelivery(*streamed, *blob);
    resumes += streamed->resumes;
  }
  EXPECT_GT(resumes, 0u) << "the fault plan never cut a stream mid-flight";
  auto stats = client.FetchStats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_GE(stats->stream_resumes, resumes);
  h.server->Stop();
}

TEST(StreamLoopbackTest, CorruptChunksRestartAndNeverDeliverWrongBytes) {
  Harness h = Harness::Start(2);
  NetClient client = h.Client(kWireVersion, /*max_attempts=*/16);
  PresentRequest request;
  request.document = h.corpus->document(0).name;
  PresentRequest blob_request = request;
  blob_request.want_blocks = true;
  auto blob = client.Present(blob_request);
  ASSERT_TRUE(blob.ok()) << blob.status();

  // Corrupt chunk payloads *before* framing: every frame CRC passes, so
  // only the end-to-end stream hash can catch it. A corrupt stream must be
  // restarted from chunk 0 (resuming would replay the damage) and a
  // successful result must still be byte-identical.
  auto plan = fault::FaultPlan::Parse("seed=3;net.chunk.corrupt:corrupt=0.05");
  ASSERT_TRUE(plan.ok()) << plan.status();
  fault::ScopedPlan chaos(*plan);
  std::uint64_t restarts = 0;
  for (int i = 0; i < 8; ++i) {
    auto streamed = client.PresentStream(request, kTestChunkBytes);
    ASSERT_TRUE(streamed.ok()) << "attempt " << i << ": " << streamed.status();
    EXPECT_EQ(streamed->resumes, 0u) << "integrity failures must not resume";
    ExpectSameDelivery(*streamed, *blob);
    restarts += streamed->restarts;
  }
  EXPECT_GT(restarts, 0u) << "the fault plan never corrupted a chunk";
  h.server->Stop();
}

TEST(StreamLoopbackTest, Level3ChaosNeverDeliversWrongBytes) {
  // The full chaos plan (serve + net + chunk sites at level 3). Under this
  // much fault pressure a stream can exhaust its retry budget — a corrupted
  // kStreamBegin even resets the resume boundary — so the invariant is not
  // "always succeeds" but the one that matters: most requests come back,
  // every failure is a structured transport error, and a delivered healthy
  // stream is byte-identical to the unfaulted blob. Wrong bytes, hangs, and
  // crashes are the bugs this test exists to catch.
  ServeOptions options;
  options.enable_degraded = true;
  Harness h = Harness::Start(2, options);
  NetClient warm = h.Client();
  PresentRequest request;
  request.document = h.corpus->document(0).name;
  PresentRequest blob_request = request;
  blob_request.want_blocks = true;
  auto blob = warm.Present(blob_request);
  ASSERT_TRUE(blob.ok()) << blob.status();

  fault::ScopedPlan chaos(fault::StandardChaosPlan(3));
  NetClient client = h.Client(kWireVersion, /*max_attempts=*/32);
  constexpr int kRequests = 10;
  int delivered = 0;
  for (int i = 0; i < kRequests; ++i) {
    auto streamed = client.PresentStream(request, kTestChunkBytes);
    if (!streamed.ok()) {
      EXPECT_EQ(streamed.status().code(), StatusCode::kUnavailable)
          << "request " << i << ": " << streamed.status();
      continue;
    }
    ++delivered;
    if (streamed->streamed && streamed->response.outcome == ServeOutcome::kHealthy) {
      ExpectSameDelivery(*streamed, *blob);
    }
  }
  EXPECT_GE(delivered, kRequests / 2) << "chaos should degrade streaming, not disable it";
  h.server->Stop();
}

TEST(StreamLoopbackTest, V3ClientFallsBackToPlainDeliverySilently) {
  Harness h = Harness::Start(1);
  NetClient v4 = h.Client();
  PresentRequest request;
  request.document = h.corpus->document(0).name;
  auto reference = v4.Present(request);
  ASSERT_TRUE(reference.ok()) << reference.status();

  // A legacy client never opens streams: same presentation, no blocks, no
  // error surfaced to the caller.
  NetClient v3 = h.Client(/*wire_version=*/3);
  auto fallback = v3.PresentStream(request, kTestChunkBytes);
  ASSERT_TRUE(fallback.ok()) << fallback.status();
  EXPECT_FALSE(fallback->streamed);
  EXPECT_TRUE(fallback->blocks.empty());
  EXPECT_EQ(fallback->chunks_received, 0u);
  EXPECT_EQ(fallback->response.presentation, reference->presentation);
  EXPECT_EQ(fallback->response.presentation_hash, reference->presentation_hash);
  auto stats = v4.FetchStats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->streams, 0u) << "no stream may have been opened";
  h.server->Stop();
}

TEST(StreamLoopbackTest, V4ClientFallsBackAgainstAV3CappedServer) {
  // A server that predates streams rejects any v4 frame at the header and
  // answers kError. The client must silently downgrade to the plain v3
  // request path — the caller just sees blob delivery.
  NetServerOptions net_options;
  net_options.limits.max_version = 3;
  Harness h = Harness::Start(1, {}, net_options);
  NetClient client = h.Client();
  PresentRequest request;
  request.document = h.corpus->document(0).name;
  auto fallback = client.PresentStream(request, kTestChunkBytes);
  ASSERT_TRUE(fallback.ok()) << fallback.status();
  EXPECT_FALSE(fallback->streamed);
  EXPECT_TRUE(fallback->blocks.empty());
  EXPECT_EQ(fallback->response.outcome, ServeOutcome::kHealthy);
  EXPECT_FALSE(fallback->response.presentation.empty());
  EXPECT_EQ(Fnv1a64(fallback->response.presentation),
            fallback->response.presentation_hash);

  // Pin why the downgrade matters: a plain v4 request bounces off the same
  // header check and is *not* silently recoverable.
  NetClient naive = h.Client(kWireVersion, /*max_attempts=*/1);
  auto direct = naive.Present(request);
  ASSERT_FALSE(direct.ok());
  EXPECT_EQ(direct.status().code(), StatusCode::kUnavailable);
  h.server->Stop();
}

TEST(StreamLoopbackTest, StreamingCountersTravelInV4StatsOnly) {
  Harness h = Harness::Start(1);
  NetClient client = h.Client();
  PresentRequest request;
  request.document = h.corpus->document(0).name;
  auto streamed = client.PresentStream(request, kTestChunkBytes);
  ASSERT_TRUE(streamed.ok()) << streamed.status();
  ASSERT_TRUE(streamed->streamed);

  auto stats = client.FetchStats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->streams, 1u);
  EXPECT_EQ(stats->stream_chunks, streamed->chunks_received);
  EXPECT_EQ(stats->stream_bytes, streamed->bytes_streamed);
  EXPECT_GE(stats->stream_full_bytes, stats->stream_bytes);
  EXPECT_EQ(stats->stream_resumes, 0u);

  // The JSON rendering carries the streaming block for the stats command.
  std::string json = StatsSnapshotJson(*stats);
  EXPECT_NE(json.find("\"streaming\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"streams\": 1"), std::string::npos) << json;

  // A v3 stats fetch still works — the streaming tail simply does not
  // travel, decoding to zeros rather than failing.
  NetClient v3 = h.Client(/*wire_version=*/3);
  auto legacy = v3.FetchStats();
  ASSERT_TRUE(legacy.ok()) << legacy.status();
  EXPECT_EQ(legacy->requests, stats->requests);
  EXPECT_EQ(legacy->streams, 0u);
  EXPECT_EQ(legacy->stream_chunks, 0u);
  h.server->Stop();
}

TEST(StreamLoopbackTest, ReportedStallsReachTheServerCounters) {
  Harness h = Harness::Start(1);
  NetClient client = h.Client();
  PresentRequest request;
  request.document = h.corpus->document(0).name;
  auto streamed = client.PresentStream(request, kTestChunkBytes);
  ASSERT_TRUE(streamed.ok()) << streamed.status();
  ASSERT_TRUE(streamed->streamed);
  ASSERT_NE(streamed->stream_id, 0u);

  // Playback runs after delivery, so stalls travel as a follow-up ack named
  // by the delivered stream id; the completion ack itself carries zero.
  auto before = client.FetchStats();
  ASSERT_TRUE(before.ok()) << before.status();
  EXPECT_EQ(before->stream_stalls, 0u);
  ASSERT_TRUE(client.ReportStreamStalls(streamed->stream_id, 3).ok());
  auto after = client.FetchStats();
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(after->stream_stalls, 3u);

  // The blob fallback has no stream to attribute stalls to.
  EXPECT_EQ(client.ReportStreamStalls(0, 1).code(), StatusCode::kInvalidArgument);
  NetClient v3 = h.Client(/*wire_version=*/3);
  EXPECT_EQ(v3.ReportStreamStalls(streamed->stream_id, 1).code(),
            StatusCode::kFailedPrecondition);
  h.server->Stop();
}

}  // namespace
}  // namespace net
}  // namespace cmif
