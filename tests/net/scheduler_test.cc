// RequestScheduler unit tests on a FakeClock: EDF ordering (earliest
// absolute deadline first, deadline-free work last, FIFO tiebreak),
// shed-at-admission for blown deadlines and full queues, expiry marking at
// dequeue, and the FIFO policy's contract of ignoring deadlines entirely.
#include "src/net/scheduler.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/fault/clock.h"

namespace cmif {
namespace net {
namespace {

// Enqueues a no-op item tagged with `tag`; dequeue order is read back
// through the shared `order` vector.
Status Push(RequestScheduler& scheduler, std::int64_t deadline_ms, std::string tag,
            std::vector<std::string>& order) {
  return scheduler.Enqueue(deadline_ms, [tag = std::move(tag), &order](
                                            RequestScheduler::Item&) { order.push_back(tag); });
}

void RunNext(RequestScheduler& scheduler) {
  auto item = scheduler.Dequeue();
  ASSERT_TRUE(item.has_value());
  item->work(*item);
}

TEST(SchedulerTest, ParseAndName) {
  EXPECT_EQ(SchedPolicyName(SchedPolicy::kFifo), "fifo");
  EXPECT_EQ(SchedPolicyName(SchedPolicy::kEdf), "edf");
  auto fifo = ParseSchedPolicy("fifo");
  ASSERT_TRUE(fifo.ok());
  EXPECT_EQ(*fifo, SchedPolicy::kFifo);
  auto edf = ParseSchedPolicy("edf");
  ASSERT_TRUE(edf.ok());
  EXPECT_EQ(*edf, SchedPolicy::kEdf);
  EXPECT_EQ(ParseSchedPolicy("lifo").status().code(), StatusCode::kInvalidArgument);
}

TEST(SchedulerTest, FifoPreservesAdmissionOrder) {
  fault::FakeClock clock;
  SchedulerOptions options;
  options.policy = SchedPolicy::kFifo;
  options.clock = &clock;
  RequestScheduler scheduler(options);
  std::vector<std::string> order;
  ASSERT_TRUE(Push(scheduler, 5, "a", order).ok());
  ASSERT_TRUE(Push(scheduler, 1, "b", order).ok());
  ASSERT_TRUE(Push(scheduler, 0, "c", order).ok());
  RunNext(scheduler);
  RunNext(scheduler);
  RunNext(scheduler);
  EXPECT_EQ(order, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_FALSE(scheduler.Dequeue().has_value());
}

TEST(SchedulerTest, EdfOrdersByDeadline) {
  fault::FakeClock clock;
  SchedulerOptions options;
  options.policy = SchedPolicy::kEdf;
  options.clock = &clock;
  RequestScheduler scheduler(options);
  std::vector<std::string> order;
  ASSERT_TRUE(Push(scheduler, 0, "none", order).ok());     // deadline-free: last
  ASSERT_TRUE(Push(scheduler, 500, "late", order).ok());
  ASSERT_TRUE(Push(scheduler, 10, "urgent", order).ok());
  ASSERT_TRUE(Push(scheduler, 100, "mid", order).ok());
  for (int i = 0; i < 4; ++i) {
    RunNext(scheduler);
  }
  EXPECT_EQ(order, (std::vector<std::string>{"urgent", "mid", "late", "none"}));
}

TEST(SchedulerTest, EdfBreaksTiesInAdmissionOrder) {
  fault::FakeClock clock;
  SchedulerOptions options;
  options.policy = SchedPolicy::kEdf;
  options.clock = &clock;
  RequestScheduler scheduler(options);
  std::vector<std::string> order;
  ASSERT_TRUE(Push(scheduler, 50, "first", order).ok());
  ASSERT_TRUE(Push(scheduler, 50, "second", order).ok());
  ASSERT_TRUE(Push(scheduler, 50, "third", order).ok());
  for (int i = 0; i < 3; ++i) {
    RunNext(scheduler);
  }
  EXPECT_EQ(order, (std::vector<std::string>{"first", "second", "third"}));
}

TEST(SchedulerTest, EdfShedsExpiredAtAdmission) {
  fault::FakeClock clock(1000000);
  SchedulerOptions options;
  options.policy = SchedPolicy::kEdf;
  options.clock = &clock;
  RequestScheduler scheduler(options);
  std::vector<std::string> order;
  // A negative relative deadline means the budget was spent before admission
  // (e.g. transport time already exceeded the client deadline): EDF refuses
  // it instead of queueing work nobody is waiting for.
  Status shed = Push(scheduler, -5, "blown", order);
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(scheduler.stats().shed_expired, 1u);
  EXPECT_EQ(scheduler.depth(), 0u);
  // FIFO's contract is to ignore deadlines — the same admission succeeds.
  SchedulerOptions fifo_options;
  fifo_options.policy = SchedPolicy::kFifo;
  fifo_options.clock = &clock;
  RequestScheduler fifo(fifo_options);
  EXPECT_TRUE(Push(fifo, -5, "blown", order).ok());
  EXPECT_EQ(fifo.stats().shed_expired, 0u);
}

TEST(SchedulerTest, EdfMarksExpiredInQueue) {
  fault::FakeClock clock;
  SchedulerOptions options;
  options.policy = SchedPolicy::kEdf;
  options.clock = &clock;
  RequestScheduler scheduler(options);
  ASSERT_TRUE(scheduler.Enqueue(10, [](RequestScheduler::Item&) {}).ok());
  clock.AdvanceMicros(50000);  // 50ms later: the 10ms deadline is long gone
  auto item = scheduler.Dequeue();
  ASSERT_TRUE(item.has_value());
  EXPECT_TRUE(item->expired);
  EXPECT_EQ(item->queue_wait_us, 50000);
  EXPECT_EQ(scheduler.stats().expired_in_queue, 1u);
}

TEST(SchedulerTest, FifoNeverMarksExpired) {
  fault::FakeClock clock;
  SchedulerOptions options;
  options.policy = SchedPolicy::kFifo;
  options.clock = &clock;
  RequestScheduler scheduler(options);
  ASSERT_TRUE(scheduler.Enqueue(10, [](RequestScheduler::Item&) {}).ok());
  clock.AdvanceMicros(50000);
  auto item = scheduler.Dequeue();
  ASSERT_TRUE(item.has_value());
  EXPECT_FALSE(item->expired);  // ignoring deadlines is FIFO's contract
  EXPECT_EQ(scheduler.stats().expired_in_queue, 0u);
}

TEST(SchedulerTest, BothPoliciesShedWhenQueueFull) {
  for (SchedPolicy policy : {SchedPolicy::kFifo, SchedPolicy::kEdf}) {
    fault::FakeClock clock;
    SchedulerOptions options;
    options.policy = policy;
    options.max_queue_depth = 2;
    options.clock = &clock;
    RequestScheduler scheduler(options);
    ASSERT_TRUE(scheduler.Enqueue(0, [](RequestScheduler::Item&) {}).ok());
    ASSERT_TRUE(scheduler.Enqueue(0, [](RequestScheduler::Item&) {}).ok());
    Status full = scheduler.Enqueue(0, [](RequestScheduler::Item&) {});
    EXPECT_EQ(full.code(), StatusCode::kResourceExhausted) << SchedPolicyName(policy);
    EXPECT_EQ(scheduler.stats().shed_queue_full, 1u);
    EXPECT_EQ(scheduler.depth(), 2u);
  }
}

TEST(SchedulerTest, QueueWaitIsMeasuredOnTheInjectedClock) {
  fault::FakeClock clock;
  SchedulerOptions options;
  options.policy = SchedPolicy::kEdf;
  options.clock = &clock;
  RequestScheduler scheduler(options);
  ASSERT_TRUE(scheduler.Enqueue(0, [](RequestScheduler::Item&) {}).ok());
  clock.AdvanceMicros(1234);
  auto item = scheduler.Dequeue();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(item->queue_wait_us, 1234);
  RequestScheduler::Stats stats = scheduler.stats();
  EXPECT_EQ(stats.dequeued, 1u);
  EXPECT_DOUBLE_EQ(stats.total_queue_wait_ms, 1.234);
}

TEST(SchedulerTest, DepthAndMaxDepthTrack) {
  RequestScheduler scheduler;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(scheduler.Enqueue(0, [](RequestScheduler::Item&) {}).ok());
  }
  EXPECT_EQ(scheduler.depth(), 5u);
  (void)scheduler.Dequeue();
  EXPECT_EQ(scheduler.depth(), 4u);
  EXPECT_EQ(scheduler.stats().max_depth, 5u);
}

}  // namespace
}  // namespace net
}  // namespace cmif
