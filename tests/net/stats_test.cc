// The stats frame has the same survival contract as the request/response
// messages: a hostile or corrupted kStatsResponse payload decodes to a
// structured kDataLoss — never a crash, an allocation blow-up, or a snapshot
// with out-of-range fields. A valid encoding round-trips field-exactly.
#include "src/net/stats.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "src/base/status.h"

namespace cmif {
namespace net {
namespace {

StatsSnapshot SampleSnapshot() {
  StatsSnapshot snapshot;
  snapshot.uptime_us = 90'000'000;
  snapshot.connections = 12;
  snapshot.rejected = 1;
  snapshot.requests = 240;
  snapshot.protocol_errors = 2;
  snapshot.failed = 3;
  snapshot.degraded = 4;
  snapshot.queue_depth = 5;
  snapshot.request_count = 240;
  snapshot.request_ms_min = 0.25;
  snapshot.request_ms_max = 91.5;
  snapshot.request_ms_mean = 4.125;
  snapshot.request_ms_p50 = 3.5;
  snapshot.request_ms_p95 = 20.0;
  snapshot.request_ms_p99 = 80.0;
  snapshot.exemplar_trace_ids = {0x1122334455667788ull, 0xdeadbeefcafef00dull};
  snapshot.cache_hits = 100;
  snapshot.cache_misses = 40;
  snapshot.cache_stale_hits = 7;
  snapshot.cache_evictions = 6;
  snapshot.cache_entries = 34;
  snapshot.pcache_enabled = true;
  snapshot.pcache_hits = 55;
  snapshot.pcache_misses = 21;
  snapshot.pcache_writes = 44;
  snapshot.pcache_quarantined = 2;
  snapshot.pcache_entries = 42;
  snapshot.pcache_disk_bytes = 123456;
  snapshot.breakers = {{"site-a", 0}, {"site-b", 1}, {"site-c", 2}};
  snapshot.breaker_opens = 9;
  snapshot.anomalies = 11;
  snapshot.traces_sampled = 13;
  snapshot.sample_rate = 0.01;
  return snapshot;
}

TEST(StatsSnapshotTest, RoundTripPreservesEveryField) {
  StatsSnapshot snapshot = SampleSnapshot();
  auto decoded = DecodeStatsSnapshot(EncodeStatsSnapshot(snapshot));
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  EXPECT_EQ(decoded->uptime_us, snapshot.uptime_us);
  EXPECT_EQ(decoded->connections, snapshot.connections);
  EXPECT_EQ(decoded->rejected, snapshot.rejected);
  EXPECT_EQ(decoded->requests, snapshot.requests);
  EXPECT_EQ(decoded->protocol_errors, snapshot.protocol_errors);
  EXPECT_EQ(decoded->failed, snapshot.failed);
  EXPECT_EQ(decoded->degraded, snapshot.degraded);
  EXPECT_EQ(decoded->queue_depth, snapshot.queue_depth);
  EXPECT_EQ(decoded->request_count, snapshot.request_count);
  EXPECT_EQ(decoded->request_ms_min, snapshot.request_ms_min);
  EXPECT_EQ(decoded->request_ms_max, snapshot.request_ms_max);
  EXPECT_EQ(decoded->request_ms_mean, snapshot.request_ms_mean);
  EXPECT_EQ(decoded->request_ms_p50, snapshot.request_ms_p50);
  EXPECT_EQ(decoded->request_ms_p95, snapshot.request_ms_p95);
  EXPECT_EQ(decoded->request_ms_p99, snapshot.request_ms_p99);
  EXPECT_EQ(decoded->exemplar_trace_ids, snapshot.exemplar_trace_ids);
  EXPECT_EQ(decoded->cache_hits, snapshot.cache_hits);
  EXPECT_EQ(decoded->cache_misses, snapshot.cache_misses);
  EXPECT_EQ(decoded->cache_stale_hits, snapshot.cache_stale_hits);
  EXPECT_EQ(decoded->cache_evictions, snapshot.cache_evictions);
  EXPECT_EQ(decoded->cache_entries, snapshot.cache_entries);
  EXPECT_EQ(decoded->pcache_enabled, snapshot.pcache_enabled);
  EXPECT_EQ(decoded->pcache_hits, snapshot.pcache_hits);
  EXPECT_EQ(decoded->pcache_misses, snapshot.pcache_misses);
  EXPECT_EQ(decoded->pcache_writes, snapshot.pcache_writes);
  EXPECT_EQ(decoded->pcache_quarantined, snapshot.pcache_quarantined);
  EXPECT_EQ(decoded->pcache_entries, snapshot.pcache_entries);
  EXPECT_EQ(decoded->pcache_disk_bytes, snapshot.pcache_disk_bytes);
  EXPECT_EQ(decoded->breakers, snapshot.breakers);
  EXPECT_EQ(decoded->breaker_opens, snapshot.breaker_opens);
  EXPECT_EQ(decoded->anomalies, snapshot.anomalies);
  EXPECT_EQ(decoded->traces_sampled, snapshot.traces_sampled);
  EXPECT_EQ(decoded->sample_rate, snapshot.sample_rate);
}

TEST(StatsSnapshotTest, DefaultSnapshotRoundTrips) {
  auto decoded = DecodeStatsSnapshot(EncodeStatsSnapshot(StatsSnapshot{}));
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  EXPECT_EQ(decoded->requests, 0u);
  EXPECT_TRUE(decoded->exemplar_trace_ids.empty());
  EXPECT_TRUE(decoded->breakers.empty());
}

TEST(StatsSnapshotTest, EveryTruncationIsDataLoss) {
  std::string encoded = EncodeStatsSnapshot(SampleSnapshot());
  for (std::size_t cut = 0; cut < encoded.size(); ++cut) {
    auto result = DecodeStatsSnapshot(encoded.substr(0, cut));
    ASSERT_FALSE(result.ok()) << "cut=" << cut;
    EXPECT_EQ(result.status().code(), StatusCode::kDataLoss) << "cut=" << cut;
  }
}

TEST(StatsSnapshotTest, TrailingBytesAreDataLoss) {
  std::string encoded = EncodeStatsSnapshot(SampleSnapshot());
  auto result = DecodeStatsSnapshot(encoded + "z");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
}

TEST(StatsSnapshotTest, EveryBitFlipFailsCleanlyOrStaysInRange) {
  // Fuzz-style sweep: every byte, every flipped bit. The decode either fails
  // as kDataLoss or yields a snapshot whose constrained fields are still in
  // range (a flip inside a breaker-name body legitimately alters the name).
  std::string encoded = EncodeStatsSnapshot(SampleSnapshot());
  for (std::size_t i = 0; i < encoded.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = encoded;
      mutated[i] = static_cast<char>(mutated[i] ^ (1 << bit));
      auto result = DecodeStatsSnapshot(mutated);
      if (!result.ok()) {
        EXPECT_EQ(result.status().code(), StatusCode::kDataLoss)
            << "byte " << i << " bit " << bit;
        continue;
      }
      EXPECT_GE(result->sample_rate, 0.0) << "byte " << i << " bit " << bit;
      EXPECT_LE(result->sample_rate, 1.0) << "byte " << i << " bit " << bit;
      for (const auto& [site, state] : result->breakers) {
        EXPECT_LE(state, 2) << "byte " << i << " bit " << bit;
      }
      for (std::uint64_t id : result->exemplar_trace_ids) {
        EXPECT_NE(id, 0u) << "byte " << i << " bit " << bit;
      }
    }
  }
}

TEST(StatsSnapshotTest, OutOfRangeBreakerStateIsRejected) {
  StatsSnapshot snapshot = SampleSnapshot();
  snapshot.breakers = {{"bad", 3}};
  auto result = DecodeStatsSnapshot(EncodeStatsSnapshot(snapshot));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
}

TEST(StatsSnapshotTest, JsonRendersHeadlineFields) {
  std::string json = StatsSnapshotJson(SampleSnapshot());
  EXPECT_NE(json.find("\"requests\": 240"), std::string::npos) << json;
  EXPECT_NE(json.find("\"uptime_s\""), std::string::npos) << json;
  EXPECT_NE(json.find("request_rate_rps"), std::string::npos) << json;
  EXPECT_NE(json.find("1122334455667788"), std::string::npos) << json;
  EXPECT_NE(json.find("\"site-b\": \"open\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"site-c\": \"half-open\""), std::string::npos) << json;
  EXPECT_NE(json.find("hit_rate"), std::string::npos) << json;
  EXPECT_NE(json.find("\"persistent_cache\": {"), std::string::npos) << json;
  EXPECT_NE(json.find("\"quarantined\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"disk_bytes\": 123456"), std::string::npos) << json;
}

TEST(StatsSnapshotTest, JsonRendersNullPcacheWhenDisabled) {
  StatsSnapshot snapshot = SampleSnapshot();
  snapshot.pcache_enabled = false;
  std::string json = StatsSnapshotJson(snapshot);
  EXPECT_NE(json.find("\"persistent_cache\": null"), std::string::npos) << json;
}

}  // namespace
}  // namespace net
}  // namespace cmif
