// The epoll reactor and the reactor-backed server's event-loop behavior:
// request pipelining on one connection (responses in request order even when
// EDF reorders execution), overload shedding with structured responses,
// slow-loris partial-frame drops vs. legitimately idle connections,
// short-write resumption under the net.partial_write fault, graceful
// shutdown that flushes in-flight responses before worker-pool teardown,
// v2 client interop against the v3 server, batched requests, and a
// 256-connection pipelined soak (fixed seed, zero dropped responses).
#include "src/net/reactor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/api/cmif.h"
#include "src/base/socket.h"
#include "src/base/string_util.h"
#include "src/fault/fault.h"
#include "src/net/scheduler.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"

namespace cmif {
namespace net {
namespace {

struct Harness {
  std::unique_ptr<ServeCorpus> corpus;
  std::unique_ptr<ServeLoop> loop;
  std::unique_ptr<NetServer> server;

  static Harness Start(int documents, ServeOptions options = {},
                       NetServerOptions net_options = {}) {
    Harness h;
    auto corpus = api::BuildNewsCorpus(documents);
    EXPECT_TRUE(corpus.ok()) << corpus.status();
    h.corpus = std::move(corpus).value();
    options.threads = 2;
    h.loop = std::make_unique<ServeLoop>(*h.corpus, options);
    h.server = std::make_unique<NetServer>(*h.loop, net_options);
    Status started = h.server->Start();
    EXPECT_TRUE(started.ok()) << started;
    return h;
  }
};

PresentRequest HashOnlyRequest(const Harness& h, int document) {
  PresentRequest request;
  request.document = h.corpus->document(document % h.corpus->size()).name;
  request.want_body = false;
  return request;
}

// ---- raw Reactor ---------------------------------------------------------

TEST(ReactorTest, EchoesFramesAndCountsConnections) {
  // A bare reactor with a reverse-echo handler — no server, no scheduler —
  // exercises the accept/read/assemble/write machinery on its own.
  ReactorOptions options;
  std::atomic<int> closes{0};
  Reactor* raw = nullptr;
  Reactor echo(
      options,
      [&raw](std::uint64_t conn_id, Frame frame) {
        std::string reversed(frame.payload.rbegin(), frame.payload.rend());
        (void)raw->SendFrame(conn_id, FrameType::kPong, reversed, frame.version);
      },
      [&raw](std::uint64_t conn_id) { raw->CloseConnection(conn_id); },
      [](std::uint64_t, const Status&) {},
      [&](std::uint64_t, const Status&) { closes.fetch_add(1); });
  raw = &echo;
  ASSERT_TRUE(echo.Start().ok());
  ASSERT_GT(echo.port(), 0);

  auto socket = ConnectTcp("127.0.0.1", echo.port(), 5000);
  ASSERT_TRUE(socket.ok()) << socket.status();
  ASSERT_TRUE(WriteFrame(*socket, FrameType::kPing, "abc").ok());
  ASSERT_TRUE(WriteFrame(*socket, FrameType::kPing, "wxyz").ok());
  auto first = ReadFrame(*socket, {});
  ASSERT_TRUE(first.ok() && first->has_value());
  EXPECT_EQ((*first)->payload, "cba");
  auto second = ReadFrame(*socket, {});
  ASSERT_TRUE(second.ok() && second->has_value());
  EXPECT_EQ((*second)->payload, "zyxw");
  socket->Close();
  echo.Stop();
  EXPECT_EQ(echo.stats().accepted, 1u);
  EXPECT_EQ(closes.load(), 1);
}

TEST(ReactorTest, CapsOpenConnections) {
  ReactorOptions options;
  options.max_connections = 1;
  Reactor reactor(
      options, [](std::uint64_t, Frame) {}, [](std::uint64_t) {},
      [](std::uint64_t, const Status&) {}, [](std::uint64_t, const Status&) {});
  ASSERT_TRUE(reactor.Start().ok());
  auto first = ConnectTcp("127.0.0.1", reactor.port(), 5000);
  ASSERT_TRUE(first.ok());
  // Nudge the reactor so the first connection is registered before the
  // second arrives (accept order is otherwise raceable).
  ASSERT_TRUE(WriteFrame(*first, FrameType::kPing, "x").ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  auto second = ConnectTcp("127.0.0.1", reactor.port(), 5000);
  ASSERT_TRUE(second.ok());
  // The over-cap connection gets a kError(kResourceExhausted) then EOF.
  auto frame = ReadFrame(*second, {});
  ASSERT_TRUE(frame.ok()) << frame.status();
  ASSERT_TRUE(frame->has_value());
  EXPECT_EQ((*frame)->type, FrameType::kError);
  Status carried;
  ASSERT_TRUE(DecodeWireStatus((*frame)->payload, &carried).ok());
  EXPECT_EQ(carried.code(), StatusCode::kResourceExhausted);
  reactor.Stop();
  EXPECT_EQ(reactor.stats().rejected_capacity, 1u);
}

// ---- pipelining ----------------------------------------------------------

TEST(ReactorServerTest, PipelinedRequestsAnswerInOrder) {
  Harness h = Harness::Start(4);
  auto socket = ConnectTcp("127.0.0.1", h.server->port(), 10000);
  ASSERT_TRUE(socket.ok()) << socket.status();
  constexpr int kPipelined = 16;
  // Fire all requests back-to-back before reading anything; documents cycle
  // so each response body differs.
  std::vector<std::uint64_t> expected_hashes;
  for (int i = 0; i < kPipelined; ++i) {
    PresentRequest request = HashOnlyRequest(h, i);
    ASSERT_TRUE(
        WriteFrame(*socket, FrameType::kRequest, EncodeRequest(request)).ok());
  }
  // Compute expected hashes with a separate client on separate connections.
  {
    NetClientOptions options;
    options.port = h.server->port();
    NetClient client(options);
    for (int i = 0; i < kPipelined; ++i) {
      auto direct = client.Present(HashOnlyRequest(h, i));
      ASSERT_TRUE(direct.ok()) << direct.status();
      expected_hashes.push_back(direct->presentation_hash);
    }
  }
  for (int i = 0; i < kPipelined; ++i) {
    auto frame = ReadFrame(*socket, {});
    ASSERT_TRUE(frame.ok()) << "response " << i << ": " << frame.status();
    ASSERT_TRUE(frame->has_value()) << "response " << i;
    ASSERT_EQ((*frame)->type, FrameType::kResponse) << "response " << i;
    auto response = DecodeResponse((*frame)->payload, (*frame)->version);
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_NE(response->outcome, ServeOutcome::kFailed) << "response " << i;
    // In-order: response i answers request i (hashes cycle with documents).
    EXPECT_EQ(response->presentation_hash, expected_hashes[i]) << "response " << i;
  }
  h.server->Stop();
}

TEST(ReactorServerTest, PipelinedOrderHoldsUnderManyWorkers) {
  // Regression for a response-ordering race: the per-connection ready-prefix
  // pop and the reactor hand-off must be one atomic step, or a worker
  // completing slot N+1 can post its response to the reactor's FIFO mailbox
  // before the (preempted) worker that popped slot N. Uncached compiles plus
  // many workers maximize concurrent adjacent completions.
  NetServerOptions net_options;
  net_options.workers = 4;
  net_options.max_queue_depth = 1024;
  ServeOptions options;
  options.use_cache = false;  // every request is a real compile
  Harness h = Harness::Start(4, options, net_options);
  std::vector<std::uint64_t> hash_by_document;
  {
    NetClientOptions client_options;
    client_options.port = h.server->port();
    NetClient client(client_options);
    for (int d = 0; d < 4; ++d) {
      auto direct = client.Present(HashOnlyRequest(h, d));
      ASSERT_TRUE(direct.ok()) << direct.status();
      hash_by_document.push_back(direct->presentation_hash);
    }
  }
  auto socket = ConnectTcp("127.0.0.1", h.server->port(), 30000);
  ASSERT_TRUE(socket.ok()) << socket.status();
  constexpr int kPipelined = 64;
  for (int i = 0; i < kPipelined; ++i) {
    ASSERT_TRUE(WriteFrame(*socket, FrameType::kRequest,
                           EncodeRequest(HashOnlyRequest(h, i)))
                    .ok());
  }
  for (int i = 0; i < kPipelined; ++i) {
    auto frame = ReadFrame(*socket, {});
    ASSERT_TRUE(frame.ok()) << "response " << i << ": " << frame.status();
    ASSERT_TRUE(frame->has_value()) << "response " << i;
    ASSERT_EQ((*frame)->type, FrameType::kResponse) << "response " << i;
    auto response = DecodeResponse((*frame)->payload, (*frame)->version);
    ASSERT_TRUE(response.ok()) << response.status();
    ASSERT_NE(response->outcome, ServeOutcome::kFailed) << "response " << i;
    // Adjacent requests target different documents, so any swap of adjacent
    // responses flips the hash.
    EXPECT_EQ(response->presentation_hash, hash_by_document[i % 4])
        << "response " << i << " answered out of order";
  }
  h.server->Stop();
}

TEST(ReactorServerTest, EdfPipeliningShedsUnderOverloadButAnswersEverything) {
  NetServerOptions net_options;
  net_options.workers = 1;
  net_options.sched_policy = SchedPolicy::kEdf;
  net_options.max_queue_depth = 2;
  ServeOptions options;
  options.use_cache = false;  // every request is a real compile
  Harness h = Harness::Start(2, options, net_options);
  auto socket = ConnectTcp("127.0.0.1", h.server->port(), 20000);
  ASSERT_TRUE(socket.ok()) << socket.status();
  constexpr int kFlood = 32;
  for (int i = 0; i < kFlood; ++i) {
    PresentRequest request = HashOnlyRequest(h, i);
    request.deadline_ms = 5000;  // tight queue, generous deadline: queue-full sheds
    ASSERT_TRUE(
        WriteFrame(*socket, FrameType::kRequest, EncodeRequest(request)).ok());
  }
  int served = 0;
  int shed = 0;
  for (int i = 0; i < kFlood; ++i) {
    auto frame = ReadFrame(*socket, {});
    ASSERT_TRUE(frame.ok()) << "response " << i << ": " << frame.status();
    ASSERT_TRUE(frame->has_value()) << "response " << i;
    ASSERT_EQ((*frame)->type, FrameType::kResponse);
    auto response = DecodeResponse((*frame)->payload, (*frame)->version);
    ASSERT_TRUE(response.ok()) << response.status();
    if (response->shed) {
      ++shed;
      EXPECT_EQ(response->outcome, ServeOutcome::kFailed);
      EXPECT_EQ(response->error.code(), StatusCode::kResourceExhausted);
    } else if (response->outcome != ServeOutcome::kFailed) {
      ++served;
    }
  }
  // Every request got a structured answer; with a queue of 2 and a flood of
  // 32 written before any read, overload must have shed some and served
  // others — never dropped any.
  EXPECT_EQ(served + shed, kFlood);
  EXPECT_GT(shed, 0);
  EXPECT_GT(served, 0);
  EXPECT_EQ(h.server->stats().shed, static_cast<std::uint64_t>(shed));
  h.server->Stop();
}

// ---- batches -------------------------------------------------------------

TEST(ReactorServerTest, BatchedRequestsAnswerPositionally) {
  Harness h = Harness::Start(3);
  NetClientOptions options;
  options.port = h.server->port();
  NetClient client(options);
  std::vector<PresentRequest> batch;
  for (int i = 0; i < 6; ++i) {
    batch.push_back(HashOnlyRequest(h, i));
  }
  batch[4].document = "no-such-document";  // failures stay positional
  auto responses = client.PresentBatch(batch);
  ASSERT_TRUE(responses.ok()) << responses.status();
  ASSERT_EQ(responses->size(), batch.size());
  for (std::size_t i = 0; i < responses->size(); ++i) {
    if (i == 4) {
      EXPECT_EQ((*responses)[i].outcome, ServeOutcome::kFailed);
      EXPECT_EQ((*responses)[i].error.code(), StatusCode::kNotFound);
    } else {
      EXPECT_NE((*responses)[i].outcome, ServeOutcome::kFailed) << i;
    }
  }
  // Positional identity: batch element i matches a solo request for the
  // same document.
  auto solo = client.Present(batch[1]);
  ASSERT_TRUE(solo.ok());
  EXPECT_EQ((*responses)[1].presentation_hash, solo->presentation_hash);
  // A v2 client cannot batch (local refusal, not a wire error).
  NetClientOptions legacy_options;
  legacy_options.port = h.server->port();
  legacy_options.wire_version = 2;
  NetClient legacy(legacy_options);
  EXPECT_EQ(legacy.PresentBatch(batch).status().code(), StatusCode::kInvalidArgument);
  h.server->Stop();
}

// ---- version interop -----------------------------------------------------

TEST(ReactorServerTest, V2ClientInteroperates) {
  Harness h = Harness::Start(2);
  NetClientOptions options;
  options.port = h.server->port();
  options.wire_version = 2;
  NetClient client(options);
  ASSERT_TRUE(client.Ping().ok());
  PresentRequest request;
  request.document = h.corpus->document(0).name;
  request.deadline_ms = 50;  // silently dropped by the v2 encoding
  auto response = client.Present(request);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->outcome, ServeOutcome::kHealthy);
  EXPECT_FALSE(response->shed);       // v2 payloads have no shed field
  EXPECT_EQ(response->queue_ms, 0.0);
  EXPECT_EQ(Fnv1a64(response->presentation), response->presentation_hash);

  // On the wire the server mirrors the request frame's version.
  auto socket = ConnectTcp("127.0.0.1", h.server->port(), 5000);
  ASSERT_TRUE(socket.ok());
  ASSERT_TRUE(
      WriteFrame(*socket, FrameType::kRequest, EncodeRequest(request, 2), 2).ok());
  auto frame = ReadFrame(*socket, {});
  ASSERT_TRUE(frame.ok() && frame->has_value());
  EXPECT_EQ((*frame)->version, 2);
  EXPECT_EQ((*frame)->type, FrameType::kResponse);
  ASSERT_TRUE(DecodeResponse((*frame)->payload, 2).ok());

  // A v3 frame on the same server still answers v3.
  ASSERT_TRUE(
      WriteFrame(*socket, FrameType::kRequest, EncodeRequest(request, 3), 3).ok());
  frame = ReadFrame(*socket, {});
  ASSERT_TRUE(frame.ok() && frame->has_value());
  EXPECT_EQ((*frame)->version, 3);
  h.server->Stop();
}

TEST(ReactorServerTest, BatchFramesAreRejectedUnderV2) {
  // Frame type 8 (kBatchRequest) does not exist in the v2 namespace: a v2
  // frame claiming it is a protocol error, not a silent upgrade.
  Harness h = Harness::Start(1);
  auto socket = ConnectTcp("127.0.0.1", h.server->port(), 5000);
  ASSERT_TRUE(socket.ok());
  std::string batch = EncodeBatchRequest({}, 3);
  std::string frame_v3 = EncodeFrame(FrameType::kBatchRequest, batch, 3);
  std::string downgraded = frame_v3;
  downgraded[4] = 2;  // rewrite the version byte: CRC now fails => kError
  ASSERT_TRUE(socket->WriteAll(downgraded).ok());
  auto answer = ReadFrame(*socket, {});
  ASSERT_TRUE(answer.ok()) << answer.status();
  ASSERT_TRUE(answer->has_value());
  EXPECT_EQ((*answer)->type, FrameType::kError);
  h.server->Stop();
}

// ---- slow loris and partial writes --------------------------------------

TEST(ReactorServerTest, SlowLorisPartialFrameIsDropped) {
  NetServerOptions net_options;
  net_options.partial_frame_timeout_ms = 100;
  Harness h = Harness::Start(1, {}, net_options);
  auto socket = ConnectTcp("127.0.0.1", h.server->port(), 5000);
  ASSERT_TRUE(socket.ok());
  // Trickle half a frame header and stall: the sweep (every 50ms) must drop
  // the connection once the partial frame is older than the timeout.
  ASSERT_TRUE(socket->WriteAll("CMIF\x03").ok());
  auto dropped = ReadFrame(*socket, {});
  // EOF or reset — never a hang (the read deadline above would fire at 5s).
  if (dropped.ok()) {
    EXPECT_FALSE(dropped->has_value());
  } else {
    EXPECT_EQ(dropped.status().code(), StatusCode::kUnavailable);
  }
  h.server->Stop();
}

TEST(ReactorServerTest, BusyPipelinedClientIsNotSlowLorisDropped) {
  // Regression: a pipelined client whose read batches consistently end
  // mid-frame makes continuous progress yet (before the fix) kept its
  // original partial-frame timestamp — the timer only cleared when the
  // assembler buffer emptied — so the sweep dropped an active connection.
  // Every consumed frame must re-stamp the timer.
  NetServerOptions net_options;
  net_options.partial_frame_timeout_ms = 250;
  Harness h = Harness::Start(1, {}, net_options);
  auto socket = ConnectTcp("127.0.0.1", h.server->port(), 10000);
  ASSERT_TRUE(socket.ok());
  constexpr int kFrames = 8;
  std::string stream;
  std::vector<std::size_t> boundaries;  // cumulative end offset of frame i
  for (int i = 0; i < kFrames; ++i) {
    stream += EncodeFrame(FrameType::kPing, StrFormat("ping-%d", i));
    boundaries.push_back(stream.size());
  }
  // Send chunks that each END halfway into the next frame: every batch
  // completes one ping and leaves a partial tail buffered, for a total span
  // of ~2x the partial-frame timeout. The connection must survive.
  std::size_t sent = 0;
  for (int i = 0; i < kFrames; ++i) {
    const std::size_t end = (i + 1 < kFrames)
                                ? boundaries[i] + (boundaries[i + 1] - boundaries[i]) / 2
                                : stream.size();
    ASSERT_TRUE(
        socket->WriteAll(std::string_view(stream).substr(sent, end - sent)).ok())
        << "chunk " << i;
    sent = end;
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
  }
  for (int i = 0; i < kFrames; ++i) {
    auto pong = ReadFrame(*socket, {});
    ASSERT_TRUE(pong.ok()) << "pong " << i << ": " << pong.status();
    ASSERT_TRUE(pong->has_value()) << "pong " << i;
    EXPECT_EQ((*pong)->type, FrameType::kPong);
    EXPECT_EQ((*pong)->payload, StrFormat("ping-%d", i));
  }
  EXPECT_EQ(h.server->stats().protocol_errors, 0u);
  h.server->Stop();
}

TEST(ReactorServerTest, IdleConnectionsAtFrameBoundarySurvive) {
  NetServerOptions net_options;
  net_options.partial_frame_timeout_ms = 100;
  Harness h = Harness::Start(1, {}, net_options);
  auto socket = ConnectTcp("127.0.0.1", h.server->port(), 5000);
  ASSERT_TRUE(socket.ok());
  // Idle well past the partial-frame timeout — but at a frame boundary,
  // which is legitimate (a player between fetches). The connection lives.
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  ASSERT_TRUE(WriteFrame(*socket, FrameType::kPing, "still-here").ok());
  auto pong = ReadFrame(*socket, {});
  ASSERT_TRUE(pong.ok()) << pong.status();
  ASSERT_TRUE(pong->has_value());
  EXPECT_EQ((*pong)->type, FrameType::kPong);
  EXPECT_EQ((*pong)->payload, "still-here");
  h.server->Stop();
}

TEST(ReactorServerTest, PartialWriteFaultStillDeliversWholeResponses) {
  Harness h = Harness::Start(2);
  auto plan = fault::FaultPlan::Parse("net.partial_write:transient=1");
  ASSERT_TRUE(plan.ok()) << plan.status();
  fault::ScopedPlan chaos(*plan);
  // Every server flush now moves one byte per attempt; responses must still
  // arrive intact (short-write resumption), just across many epoll rounds.
  NetClientOptions options;
  options.port = h.server->port();
  NetClient client(options);
  for (int i = 0; i < 4; ++i) {
    auto response = client.Present(HashOnlyRequest(h, i));
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_NE(response->outcome, ServeOutcome::kFailed);
  }
  h.server->Stop();
}

// ---- telemetry -----------------------------------------------------------

TEST(ReactorServerTest, RxBytesCountEachInboundByteOnce) {
#ifdef CMIF_OBS_DISABLED
  GTEST_SKIP() << "probes compiled out (-DCMIF_OBS=OFF)";
#endif
  // Regression: the reactor's raw-read accounting double-counted net.rx_bytes
  // (the frame assembler already counts every consumed byte via CountRx).
  Harness h = Harness::Start(1);
  auto socket = ConnectTcp("127.0.0.1", h.server->port(), 5000);
  ASSERT_TRUE(socket.ok());
  obs::ScopedEnable enable;
  const std::string ping = EncodeFrame(FrameType::kPing, "count-me-once");
  const std::int64_t before = obs::GetCounter("net.rx_bytes").value();
  ASSERT_TRUE(socket->WriteAll(ping).ok());
  auto pong = ReadFrame(*socket, {});
  ASSERT_TRUE(pong.ok() && pong->has_value());
  ASSERT_EQ((*pong)->type, FrameType::kPong);
  // The server counted the inbound ping once; this test's ReadFrame counted
  // the inbound pong once. The pong mirrors the ping's payload and version,
  // so both frames encode to the same size: exactly 2x, not 3x.
  EXPECT_EQ(obs::GetCounter("net.rx_bytes").value() - before,
            static_cast<std::int64_t>(2 * ping.size()));
  h.server->Stop();
}

// ---- graceful shutdown ---------------------------------------------------

TEST(ReactorServerTest, StopFlushesInFlightResponses) {
  Harness h = Harness::Start(2);
  auto socket = ConnectTcp("127.0.0.1", h.server->port(), 10000);
  ASSERT_TRUE(socket.ok());
  constexpr int kInFlight = 8;
  for (int i = 0; i < kInFlight; ++i) {
    ASSERT_TRUE(WriteFrame(*socket, FrameType::kRequest,
                           EncodeRequest(HashOnlyRequest(h, i)))
                    .ok());
  }
  // Wait until the server has admitted (and answered) every request, then
  // Stop with the responses still unread in server/kernel buffers: graceful
  // shutdown must flush them before tearing the pool down.
  for (int spin = 0; spin < 500; ++spin) {
    if (h.server->stats().requests >= kInFlight) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GE(h.server->stats().requests, static_cast<std::uint64_t>(kInFlight));
  h.server->Stop();
  int answered = 0;
  for (int i = 0; i < kInFlight; ++i) {
    auto frame = ReadFrame(*socket, {});
    if (!frame.ok() || !frame->has_value()) {
      break;
    }
    EXPECT_EQ((*frame)->type, FrameType::kResponse);
    ++answered;
  }
  EXPECT_EQ(answered, kInFlight);
  // ...and after the last response the connection closes cleanly.
  auto eof = ReadFrame(*socket, {});
  if (eof.ok()) {
    EXPECT_FALSE(eof->has_value());
  }
}

// ---- soak ----------------------------------------------------------------

TEST(ReactorSoakTest, Pipelined256ConnectionsZeroDrops) {
  // The CI soak: 256 concurrent connections, ~1k pipelined requests total,
  // fixed request pattern, zero dropped responses, clean shutdown. Sized to
  // finish quickly with a warm cache; the point is event-loop correctness
  // under fan-in, not compile throughput.
  constexpr int kConnections = 256;
  constexpr int kPerConnection = 4;  // 1024 requests total
  ServeOptions options;
  options.seed = 7;  // fixed seed: deterministic corpus + cache behavior
  NetServerOptions net_options;
  net_options.workers = 4;
  net_options.max_connections = 2 * kConnections;
  net_options.max_queue_depth = kConnections * kPerConnection + 1;  // no shedding
  Harness h = Harness::Start(4, options, net_options);

  std::vector<Socket> sockets;
  sockets.reserve(kConnections);
  for (int c = 0; c < kConnections; ++c) {
    auto socket = ConnectTcp("127.0.0.1", h.server->port(), 60000);
    ASSERT_TRUE(socket.ok()) << "conn " << c << ": " << socket.status();
    sockets.push_back(std::move(socket).value());
  }
  // Phase 1: every connection pipelines its whole request burst.
  for (int c = 0; c < kConnections; ++c) {
    for (int i = 0; i < kPerConnection; ++i) {
      PresentRequest request = HashOnlyRequest(h, c + i);
      ASSERT_TRUE(
          WriteFrame(sockets[c], FrameType::kRequest, EncodeRequest(request)).ok())
          << "conn " << c << " req " << i;
    }
  }
  // Phase 2: read every response; responses arrive in request order per
  // connection and none may be missing.
  std::uint64_t answered = 0;
  for (int c = 0; c < kConnections; ++c) {
    for (int i = 0; i < kPerConnection; ++i) {
      auto frame = ReadFrame(sockets[c], {});
      ASSERT_TRUE(frame.ok()) << "conn " << c << " resp " << i << ": " << frame.status();
      ASSERT_TRUE(frame->has_value()) << "conn " << c << " resp " << i;
      ASSERT_EQ((*frame)->type, FrameType::kResponse);
      auto response = DecodeResponse((*frame)->payload, (*frame)->version);
      ASSERT_TRUE(response.ok()) << response.status();
      EXPECT_NE(response->outcome, ServeOutcome::kFailed)
          << "conn " << c << " resp " << i << ": " << response->error.ToString();
      ++answered;
    }
  }
  EXPECT_EQ(answered, static_cast<std::uint64_t>(kConnections) * kPerConnection);
  NetServer::Stats stats = h.server->stats();
  EXPECT_EQ(stats.requests, answered);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.protocol_errors, 0u);
  h.server->Stop();
  EXPECT_FALSE(h.server->running());
}

}  // namespace
}  // namespace net
}  // namespace cmif
