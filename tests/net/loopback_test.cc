// Server/client integration over a real loopback socket: request round
// trips, protocol-error handling, backpressure, concurrent clients (the
// TSan target), clean shutdown with blocked connections, and a chaos replay
// where every request must still be answered. Uses ephemeral ports
// (port = 0) throughout so suites can run in parallel.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "src/api/cmif.h"
#include "src/base/socket.h"
#include "src/base/string_util.h"
#include "src/fault/fault.h"
#include "src/obs/obs.h"
#include "src/obs/trace.h"

namespace cmif {
namespace net {
namespace {

struct Harness {
  std::unique_ptr<ServeCorpus> corpus;
  std::unique_ptr<ServeLoop> loop;
  std::unique_ptr<NetServer> server;

  static Harness Start(int documents, ServeOptions options = {},
                       NetServerOptions net_options = {}) {
    Harness h;
    auto corpus = api::BuildNewsCorpus(documents);
    EXPECT_TRUE(corpus.ok()) << corpus.status();
    h.corpus = std::move(corpus).value();
    options.threads = 2;
    h.loop = std::make_unique<ServeLoop>(*h.corpus, options);
    h.server = std::make_unique<NetServer>(*h.loop, net_options);
    Status started = h.server->Start();
    EXPECT_TRUE(started.ok()) << started;
    return h;
  }

  NetClient Client() const {
    NetClientOptions options;
    options.port = server->port();
    return NetClient(options);
  }
};

TEST(LoopbackTest, StartStopWithoutTraffic) {
  Harness h = Harness::Start(1);
  EXPECT_GT(h.server->port(), 0);
  EXPECT_TRUE(h.server->running());
  h.server->Stop();
  EXPECT_FALSE(h.server->running());
  // Stop is idempotent.
  h.server->Stop();
}

TEST(LoopbackTest, PingRoundTrip) {
  Harness h = Harness::Start(1);
  NetClient client = h.Client();
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_TRUE(client.Ping().ok());  // same connection
  EXPECT_EQ(client.reconnects(), 0u);
  h.server->Stop();
}

TEST(LoopbackTest, PresentMatchesInProcessCompile) {
  Harness h = Harness::Start(2);
  NetClient client = h.Client();
  PresentRequest request;
  request.document = h.corpus->document(0).name;
  request.profile = "workstation";
  auto response = client.Present(request);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->outcome, ServeOutcome::kHealthy);
  EXPECT_FALSE(response->presentation.empty());
  EXPECT_EQ(Fnv1a64(response->presentation), response->presentation_hash);

  // Byte identity: the wire body hashes to what an in-process compile of
  // the same document under the same profile serializes to.
  const ServeDocument& doc = h.corpus->document(0);
  PipelineOptions options;
  options.profile = WorkstationProfile();
  auto direct = h.corpus->store().WithRead([&](const DescriptorStore& store) {
    return h.corpus->blocks().WithRead([&](const BlockStore& blocks) {
      return api::Compile(doc.document, store, blocks, options);
    });
  });
  ASSERT_TRUE(direct.ok()) << direct.status();
  CompiledPresentation compiled;
  compiled.map = direct->presentation_map;
  compiled.filter = direct->filter;
  compiled.schedule = direct->schedule;
  EXPECT_EQ(api::SerializePresentation(compiled), response->presentation);

  // Second fetch is served from the mapping cache, still byte-identical.
  auto warm = client.Present(request);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->cache_hit);
  EXPECT_EQ(warm->presentation, response->presentation);
  h.server->Stop();
}

TEST(LoopbackTest, UnknownDocumentAndProfileFailStructurally) {
  Harness h = Harness::Start(1);
  NetClient client = h.Client();
  PresentRequest request;
  request.document = "no-such-document";
  auto response = client.Present(request);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->outcome, ServeOutcome::kFailed);
  EXPECT_EQ(response->error.code(), StatusCode::kNotFound);

  request.document = h.corpus->document(0).name;
  request.profile = "no-such-profile";
  response = client.Present(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->outcome, ServeOutcome::kFailed);
  EXPECT_EQ(response->error.code(), StatusCode::kNotFound);

  // The connection survived both application-level failures.
  request.profile = "";
  response = client.Present(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->outcome, ServeOutcome::kHealthy);
  EXPECT_EQ(client.reconnects(), 0u);
  h.server->Stop();
}

TEST(LoopbackTest, HashOnlyAndChannelSelection) {
  Harness h = Harness::Start(1);
  NetClient client = h.Client();
  PresentRequest request;
  request.document = h.corpus->document(0).name;
  auto full = client.Present(request);
  ASSERT_TRUE(full.ok()) << full.status();

  // want_body = false: no body, same hash as the full fetch.
  request.want_body = false;
  auto probe = client.Present(request);
  ASSERT_TRUE(probe.ok());
  EXPECT_TRUE(probe->presentation.empty());
  EXPECT_EQ(probe->presentation_hash, full->presentation_hash);

  // Channel selection: a restricted body, hashed over the restriction.
  request.want_body = true;
  request.channels = {"audio"};
  auto selected = client.Present(request);
  ASSERT_TRUE(selected.ok());
  EXPECT_LT(selected->presentation.size(), full->presentation.size());
  EXPECT_EQ(Fnv1a64(selected->presentation), selected->presentation_hash);
  EXPECT_NE(selected->presentation.find("\"audio\""), std::string::npos);
  EXPECT_EQ(selected->presentation.find("\"video\""), std::string::npos);
  h.server->Stop();
}

TEST(LoopbackTest, MalformedBytesGetErrorFrameThenDrop) {
  Harness h = Harness::Start(1);
  auto socket = ConnectTcp("127.0.0.1", h.server->port(), 5000);
  ASSERT_TRUE(socket.ok()) << socket.status();
  // Garbage that is not a frame: the server answers kError and drops.
  ASSERT_TRUE(socket->WriteAll("XXXXGARBAGE-NOT-A-FRAME").ok());
  auto frame = ReadFrame(*socket, {});
  ASSERT_TRUE(frame.ok()) << frame.status();
  ASSERT_TRUE(frame->has_value());
  EXPECT_EQ((*frame)->type, FrameType::kError);
  Status carried;
  ASSERT_TRUE(DecodeWireStatus((*frame)->payload, &carried).ok());
  EXPECT_EQ(carried.code(), StatusCode::kDataLoss);
  // ...then the drop: either a clean EOF or a reset (the server closed with
  // our trailing garbage unread, which TCP reports as RST) — never another
  // frame.
  auto dropped = ReadFrame(*socket, {});
  if (dropped.ok()) {
    EXPECT_FALSE(dropped->has_value());
  } else {
    EXPECT_EQ(dropped.status().code(), StatusCode::kUnavailable) << dropped.status();
  }
  EXPECT_EQ(h.server->stats().protocol_errors, 1u);
  h.server->Stop();
}

TEST(LoopbackTest, CorruptedFramesFailStructurallyThenRecover) {
  Harness h = Harness::Start(1);
  NetClientOptions client_options;
  client_options.port = h.server->port();
  client_options.retry.max_attempts = 3;
  NetClient client(client_options);
  PresentRequest request;
  request.document = h.corpus->document(0).name;
  {
    // Corrupt every frame in transit: the far side's CRC rejects each one,
    // the client reconnects and resends until its attempts run out, and the
    // failure is a structured kUnavailable — never a hang or a wrong answer.
    auto plan = fault::FaultPlan::Parse("net.frame_corrupt:corrupt=1");
    ASSERT_TRUE(plan.ok()) << plan.status();
    fault::ScopedPlan chaos(*plan);
    auto response = client.Present(request);
    ASSERT_FALSE(response.ok());
    EXPECT_EQ(response.status().code(), StatusCode::kUnavailable);
    EXPECT_GE(client.reconnects(), 1u);
  }
  // Chaos over: the same client reconnects and serves cleanly.
  auto response = client.Present(request);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->outcome, ServeOutcome::kHealthy);
  h.server->Stop();
}

TEST(LoopbackTest, ConcurrentClientsSeeConsistentBytes) {
  Harness h = Harness::Start(4);
  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 16;
  std::vector<std::uint64_t> hashes(kClients, 0);
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      NetClient client = h.Client();
      std::uint64_t combined = 0;
      for (int i = 0; i < kRequestsPerClient; ++i) {
        PresentRequest request;
        request.document = h.corpus->document(i % h.corpus->size()).name;
        request.profile = i % 2 == 0 ? "workstation" : "personal";
        auto response = client.Present(request);
        if (!response.ok() || response->outcome == ServeOutcome::kFailed) {
          ADD_FAILURE() << "client " << c << " request " << i << " failed";
          return;
        }
        if (Fnv1a64(response->presentation) != response->presentation_hash) {
          ADD_FAILURE() << "hash mismatch at client " << c << " request " << i;
          return;
        }
        combined = Fnv1a64Combine(combined, response->presentation_hash);
      }
      hashes[c] = combined;
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  // Same request sequence => same bytes => same combined hash on every client.
  for (int c = 1; c < kClients; ++c) {
    EXPECT_EQ(hashes[c], hashes[0]) << "client " << c;
  }
  NetServer::Stats stats = h.server->stats();
  EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(kClients) * kRequestsPerClient);
  h.server->Stop();
}

TEST(LoopbackTest, StopUnblocksIdleConnections) {
  Harness h = Harness::Start(1);
  NetClient client = h.Client();
  ASSERT_TRUE(client.Ping().ok());
  // The server worker is now blocked reading this connection; Stop() must
  // shut it down rather than hang on join.
  h.server->Stop();
  EXPECT_FALSE(h.server->running());
  // The dropped connection surfaces as a transport error on the next use.
  PresentRequest request;
  request.document = h.corpus->document(0).name;
  EXPECT_FALSE(client.Present(request).ok());
}

TEST(LoopbackTest, ChaosReplayAnswersEveryRequest) {
  // Level-3 chaos across serve and net fault sites. Transport failures are
  // retried by the client, compile failures ride the serve recovery ladder;
  // every request must come back answered (degraded allowed, hangs not).
  ServeOptions options;
  options.enable_degraded = true;
  Harness h = Harness::Start(2, options);
  fault::ScopedPlan chaos(fault::StandardChaosPlan(3));
  NetClientOptions client_options;
  client_options.port = h.server->port();
  client_options.retry.max_attempts = 8;
  NetClient client(client_options);
  constexpr int kRequests = 48;
  int answered = 0;
  for (int i = 0; i < kRequests; ++i) {
    PresentRequest request;
    request.document = h.corpus->document(i % h.corpus->size()).name;
    request.profile = i % 2 == 0 ? "workstation" : "personal";
    auto response = client.Present(request);
    ASSERT_TRUE(response.ok()) << "request " << i << ": " << response.status();
    if (response->outcome != ServeOutcome::kFailed) {
      ++answered;
      if (!response->presentation.empty()) {
        EXPECT_EQ(Fnv1a64(response->presentation), response->presentation_hash) << i;
      }
    }
  }
  EXPECT_EQ(answered, kRequests);
  h.server->Stop();
}

TEST(LoopbackTest, ServesAfterClientVanishes) {
  Harness h = Harness::Start(1);
  {
    NetClient client = h.Client();
    ASSERT_TRUE(client.Ping().ok());
  }  // destructor closes the connection mid-session
  NetClient second = h.Client();
  PresentRequest request;
  request.document = h.corpus->document(0).name;
  auto response = second.Present(request);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->outcome, ServeOutcome::kHealthy);
  h.server->Stop();
}

TEST(LoopbackTest, TracedRequestStitchesClientAndServerSpans) {
#ifdef CMIF_OBS_DISABLED
  GTEST_SKIP() << "probes compiled out (-DCMIF_OBS=OFF)";
#endif

  // The tentpole contract: one trace id minted at the client stitches the
  // client span and the server's spans into a single timeline. The server
  // ships its harvested spans back in the response; every one of them —
  // including the request envelope span — carries the client's trace id.
  obs::ResetAll();
  obs::ScopedEnable enable;
  Harness h = Harness::Start(1);
  NetClient client = h.Client();
  PresentRequest request;
  request.document = h.corpus->document(0).name;
  request.trace = obs::NewTrace(1.0);
  auto response = client.Present(request);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->outcome, ServeOutcome::kHealthy);

  ASSERT_FALSE(response->server_spans.empty());
  bool saw_envelope = false;
  for (const WireSpan& span : response->server_spans) {
    EXPECT_EQ(span.trace_id, request.trace.trace_id) << span.name;
    EXPECT_GE(span.duration_us, 0.0) << span.name;
    saw_envelope |= span.name == "net-request";
  }
  EXPECT_TRUE(saw_envelope) << "server envelope span missing from the response";

  // The client half of the same trace: its request span carries the same id,
  // and the server's envelope span hangs off it across the wire.
  auto client_spans = obs::TakeTraceSpans(request.trace.trace_id);
  ASSERT_FALSE(client_spans.empty());
  std::uint64_t client_span_id = 0;
  for (const auto& span : client_spans) {
    EXPECT_EQ(span.trace_id, request.trace.trace_id);
    if (span.name == "net-client-request") {
      client_span_id = span.id;
    }
  }
  ASSERT_NE(client_span_id, 0u);
  for (const WireSpan& span : response->server_spans) {
    if (span.name == "net-request") {
      EXPECT_EQ(span.parent_id, client_span_id);
    }
  }

  // The sampled trace shows up as an exemplar in the live stats.
  auto stats = client.FetchStats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_GE(stats->traces_sampled, 1u);
  bool exemplar_found = false;
  for (std::uint64_t id : stats->exemplar_trace_ids) {
    exemplar_found |= id == request.trace.trace_id;
  }
  EXPECT_TRUE(exemplar_found);
  h.server->Stop();
  obs::ResetAll();
}

TEST(LoopbackTest, UntracedRequestsShipNoSpans) {
  obs::ResetAll();
  obs::ScopedEnable enable;
  Harness h = Harness::Start(1);
  NetClient client = h.Client();
  PresentRequest request;
  request.document = h.corpus->document(0).name;
  auto response = client.Present(request);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response->server_spans.empty());
  h.server->Stop();
  obs::ResetAll();
}

TEST(LoopbackTest, StatsOverTheWire) {
  // Live RED metrics without any file export: a few requests (one of them a
  // failure), then a kStatsRequest round trip returns a snapshot whose
  // ladders and duration distribution reflect what just happened.
  Harness h = Harness::Start(2);
  NetClient client = h.Client();
  constexpr int kRequests = 3;
  for (int i = 0; i < kRequests; ++i) {
    PresentRequest request;
    request.document = h.corpus->document(i % h.corpus->size()).name;
    auto response = client.Present(request);
    ASSERT_TRUE(response.ok()) << response.status();
  }
  PresentRequest bad;
  bad.document = "no-such-document";
  ASSERT_TRUE(client.Present(bad).ok());

  auto stats = client.FetchStats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_GT(stats->uptime_us, 0u);
  EXPECT_GE(stats->connections, 1u);
  EXPECT_EQ(stats->requests, static_cast<std::uint64_t>(kRequests) + 1);
  EXPECT_EQ(stats->failed, 1u);
  EXPECT_EQ(stats->request_count, static_cast<std::uint64_t>(kRequests) + 1);
  EXPECT_GE(stats->request_ms_max, stats->request_ms_min);
  EXPECT_GE(stats->request_ms_p99, stats->request_ms_p50);
  EXPECT_GE(stats->cache_hits + stats->cache_misses, 1u);
  EXPECT_EQ(stats->sample_rate, 0.0);
  // Same connection serves presentation traffic after the stats frame.
  PresentRequest again;
  again.document = h.corpus->document(0).name;
  EXPECT_TRUE(client.Present(again).ok());
  EXPECT_EQ(client.reconnects(), 0u);

  // The JSON rendering is the tool's output; spot-check the headline fields.
  std::string json = StatsSnapshotJson(*stats);
  EXPECT_NE(json.find("\"requests\": 4"), std::string::npos) << json;
  EXPECT_NE(json.find("request_rate_rps"), std::string::npos) << json;
  h.server->Stop();
}

// A hand-rolled misbehaving server: one thread, scripted per-connection
// behavior, for reconnect-during-response edge cases a well-behaved
// NetServer never produces.
PresentResponse CannedResponse() {
  PresentResponse response;
  response.outcome = ServeOutcome::kHealthy;
  response.presentation = "(presentation canned)";
  response.presentation_hash = Fnv1a64(response.presentation);
  return response;
}

TEST(LoopbackTest, ReconnectsWhenServerDiesMidResponse) {
  ListenSocket listener;
  ASSERT_TRUE(listener.Listen("127.0.0.1", 0, 4).ok());
  std::thread server([&listener] {
    // Connection 1: read the request, write half a valid response frame,
    // then slam the connection — the client sees EOF mid-frame.
    auto first = listener.Accept();
    if (first.ok()) {
      auto request = ReadFrame(*first, {});
      EXPECT_TRUE(request.ok()) << request.status();
      std::string frame = EncodeFrame(FrameType::kResponse, EncodeResponse(CannedResponse()));
      EXPECT_TRUE(first->WriteAll(std::string_view(frame).substr(0, frame.size() / 2)).ok());
      first->Close();
    }
    // Connection 2: behave.
    auto second = listener.Accept();
    if (second.ok()) {
      auto request = ReadFrame(*second, {});
      EXPECT_TRUE(request.ok()) << request.status();
      EXPECT_TRUE(WriteFrame(*second, FrameType::kResponse,
                             EncodeResponse(CannedResponse()))
                      .ok());
    }
  });

  NetClientOptions options;
  options.port = listener.port();
  options.retry.max_attempts = 3;
  NetClient client(options);
  PresentRequest request;
  request.document = "any";
  auto response = client.Present(request);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->outcome, ServeOutcome::kHealthy);
  EXPECT_EQ(response->presentation, "(presentation canned)");
  EXPECT_GE(client.reconnects(), 1u) << "the half-written response must force a reconnect";
  server.join();
  listener.Close();
}

TEST(LoopbackTest, WrongFrameTypeIsStructuralNotRetried) {
  // A *well-formed* frame of the wrong type means protocol version skew, not
  // transport loss: the client must fail structurally (kInternal), drop the
  // connection, and — unlike the truncated-response case — never burn retry
  // attempts resending a request the server demonstrably received.
  ListenSocket listener;
  ASSERT_TRUE(listener.Listen("127.0.0.1", 0, 4).ok());
  std::thread server([&listener] {
    auto conn = listener.Accept();
    if (conn.ok()) {
      auto request = ReadFrame(*conn, {});
      EXPECT_TRUE(request.ok()) << request.status();
      EXPECT_TRUE(WriteFrame(*conn, FrameType::kPong, "").ok());
    }
  });

  NetClientOptions options;
  options.port = listener.port();
  options.retry.max_attempts = 3;
  NetClient client(options);
  PresentRequest request;
  request.document = "any";
  auto response = client.Present(request);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kInternal);
  EXPECT_EQ(client.reconnects(), 0u);
  EXPECT_FALSE(client.connected()) << "a desynchronized stream must not be reused";
  server.join();
  listener.Close();
}

TEST(LoopbackTest, ReconnectBudgetExhaustedIsStructuredFailure) {
  // Every connection dies mid-response: the client burns its attempts and
  // reports kUnavailable instead of hanging or fabricating a response.
  ListenSocket listener;
  ASSERT_TRUE(listener.Listen("127.0.0.1", 0, 4).ok());
  std::thread server([&listener] {
    for (int i = 0; i < 2; ++i) {
      auto conn = listener.Accept();
      if (!conn.ok()) {
        return;
      }
      auto request = ReadFrame(*conn, {});
      EXPECT_TRUE(request.ok()) << request.status();
      std::string frame = EncodeFrame(FrameType::kResponse, EncodeResponse(CannedResponse()));
      EXPECT_TRUE(conn->WriteAll(std::string_view(frame).substr(0, frame.size() / 3)).ok());
      conn->Close();
    }
  });

  NetClientOptions options;
  options.port = listener.port();
  options.retry.max_attempts = 2;
  NetClient client(options);
  PresentRequest request;
  request.document = "any";
  auto response = client.Present(request);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kUnavailable);
  EXPECT_GE(client.reconnects(), 1u);
  server.join();
  listener.Close();
}

}  // namespace
}  // namespace net
}  // namespace cmif
