// Wire framing: golden frame layout, round trips, and the robustness
// contract — every mutation or truncation of a valid frame decodes to a
// structured kDataLoss (mirroring tests/ddbms/persist_robustness_test.cc for
// the persist layer), never a crash, a hang, or a silently wrong frame.
#include "src/net/wire.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>

namespace cmif {
namespace net {
namespace {

TEST(WireTest, GoldenFrameLayout) {
  // "hi" as a ping: magic, current version, type 4, length 2, payload, CRC.
  std::string frame = EncodeFrame(FrameType::kPing, "hi");
  ASSERT_EQ(frame.size(), 4u + 1u + 1u + 1u + 2u + 4u);
  EXPECT_EQ(frame.substr(0, 4), "CMIF");
  EXPECT_EQ(static_cast<unsigned char>(frame[4]), kWireVersion);
  EXPECT_EQ(static_cast<unsigned char>(frame[5]), 4u);  // kPing
  EXPECT_EQ(static_cast<unsigned char>(frame[6]), 2u);  // varint length
  EXPECT_EQ(frame.substr(7, 2), "hi");
}

TEST(WireTest, EncodeDecodeRoundTrip) {
  for (FrameType type : {FrameType::kRequest, FrameType::kResponse, FrameType::kError,
                         FrameType::kPing, FrameType::kPong}) {
    std::string payload(300, '\x5a');  // two-byte length varint
    payload += std::string(1, '\0');   // embedded NUL must survive
    std::string encoded = EncodeFrame(type, payload);
    std::size_t consumed = 0;
    auto frame = DecodeFrame(encoded, &consumed);
    ASSERT_TRUE(frame.ok()) << frame.status();
    EXPECT_EQ(frame->type, type);
    EXPECT_EQ(frame->payload, payload);
    EXPECT_EQ(consumed, encoded.size());
  }
}

TEST(WireTest, DecodeStopsAtFrameBoundary) {
  std::string stream = EncodeFrame(FrameType::kPing, "a") + EncodeFrame(FrameType::kPong, "b");
  std::size_t consumed = 0;
  auto first = DecodeFrame(stream, &consumed);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->payload, "a");
  auto second = DecodeFrame(stream.substr(consumed), &consumed);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->payload, "b");
}

TEST(WireTest, EmptyPayloadRoundTrips) {
  std::string encoded = EncodeFrame(FrameType::kPong, "");
  std::size_t consumed = 0;
  auto frame = DecodeFrame(encoded, &consumed);
  ASSERT_TRUE(frame.ok());
  EXPECT_TRUE(frame->payload.empty());
}

TEST(WireRobustnessTest, EveryBitFlipIsDetected) {
  // Exhaustive single-byte mutation over the whole frame. Whatever byte is
  // damaged — magic, version, type, length, payload, or the CRC itself —
  // decode must fail with a structured error, never succeed with different
  // bytes.
  std::string frame = EncodeFrame(FrameType::kRequest, "payload-under-test");
  for (std::size_t i = 0; i < frame.size(); ++i) {
    std::string corrupted = frame;
    corrupted[i] = static_cast<char>(corrupted[i] ^ 0x01);
    std::size_t consumed = 0;
    auto result = DecodeFrame(corrupted, &consumed, {});
    EXPECT_FALSE(result.ok()) << "flip at byte " << i << " decoded successfully";
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kDataLoss) << "byte " << i;
    }
  }
}

TEST(WireRobustnessTest, EveryTruncationIsDetected) {
  std::string frame = EncodeFrame(FrameType::kResponse, "0123456789");
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    std::size_t consumed = 0;
    auto result = DecodeFrame(frame.substr(0, cut), &consumed, {});
    EXPECT_EQ(result.status().code(), StatusCode::kDataLoss) << "cut=" << cut;
  }
}

TEST(WireRobustnessTest, ErrorsCarryByteOffsets) {
  // Header and length intact, payload cut: the error names the offset.
  std::string frame = EncodeFrame(FrameType::kPing, "x");
  std::size_t consumed = 0;
  auto result = DecodeFrame(frame.substr(0, 8), &consumed, {});
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("offset"), std::string::npos)
      << result.status().message();
}

TEST(WireRobustnessTest, OversizedLengthRejectedBeforeAllocation) {
  // A frame claiming a 1 GiB payload must be rejected by the limit check on
  // the length prefix alone — decode never tries to allocate or read it.
  std::string header = "CMIF";
  header.push_back(static_cast<char>(kWireVersion));
  header.push_back(static_cast<char>(FrameType::kRequest));
  // varint for 1 GiB: 0x80 0x80 0x80 0x80 0x04
  header += std::string("\x80\x80\x80\x80\x04", 5);
  std::size_t consumed = 0;
  auto result = DecodeFrame(header, &consumed, {});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(result.status().message().find("exceeds"), std::string::npos)
      << result.status().message();
}

TEST(WireRobustnessTest, WrongMagicAndVersionAreRejected) {
  std::string frame = EncodeFrame(FrameType::kPing, "x");
  std::string bad_magic = frame;
  bad_magic[0] = 'X';
  std::size_t consumed = 0;
  EXPECT_EQ(DecodeFrame(bad_magic, &consumed, {}).status().code(), StatusCode::kDataLoss);

  std::string bad_version = frame;
  bad_version[4] = 9;  // future version: CRC also fails, but version is first
  auto result = DecodeFrame(bad_version, &consumed, {});
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(result.status().message().find("version"), std::string::npos)
      << result.status().message();
}

TEST(WireRobustnessTest, UnknownFrameTypeIsRejected) {
  // Type 15 (one past kStreamEnd) with a recomputed-valid CRC is unreachable
  // via EncodeFrame, so build the frame by hand around the encoder: flip
  // type then fix nothing — the type check must fire before (or as) the CRC
  // check does.
  std::string frame = EncodeFrame(FrameType::kPing, "x");
  frame[5] = 15;
  std::size_t consumed = 0;
  auto result = DecodeFrame(frame, &consumed, {});
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
}

TEST(WireRobustnessTest, StreamFrameTypesRequireV4) {
  // Types 10..14 (streamed delivery) joined the protocol in v4. A v3 frame
  // claiming them is a desync, not a silent upgrade — exactly the header
  // check an older peer applies, which is what the client's silent blob
  // fallback relies on.
  for (FrameType type : {FrameType::kStreamRequest, FrameType::kStreamBegin,
                         FrameType::kStreamChunk, FrameType::kStreamAck,
                         FrameType::kStreamEnd}) {
    std::string v4 = EncodeFrame(type, "", 4);
    std::size_t consumed = 0;
    ASSERT_TRUE(DecodeFrame(v4, &consumed, {}).ok());
    std::string v3 = v4;
    v3[4] = 3;  // demote the version byte; the type is now out of range
    auto result = DecodeFrame(v3, &consumed, {});
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
  }
}

TEST(WireRobustnessTest, BatchFrameTypesRequireV3) {
  // Types 8/9 (batch) joined the protocol in v3. A v2 frame claiming them
  // is a desync, not a silent upgrade — the version-aware type check fires
  // on the header bytes alone, before the payload or CRC even arrive.
  std::string v3 = EncodeFrame(FrameType::kBatchRequest, "", 3);
  std::size_t consumed = 0;
  ASSERT_TRUE(DecodeFrame(v3, &consumed, {}).ok());
  std::string v2 = v3;
  v2[4] = 2;  // demote the version byte; type 8 is now out of range
  auto result = DecodeFrame(v2, &consumed, {});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
}

TEST(WireTest, OldWireVersionStillEncodes) {
  // v2 frames stay emittable (legacy clients) and decode with the frame's
  // declared version surfaced, so codecs upstream pick the right payload
  // schema.
  std::string frame = EncodeFrame(FrameType::kRequest, "legacy", 2);
  EXPECT_EQ(static_cast<unsigned char>(frame[4]), 2u);
  std::size_t consumed = 0;
  auto decoded = DecodeFrame(frame, &consumed);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->version, 2u);
  EXPECT_EQ(decoded->payload, "legacy");
}

TEST(FrameAssemblerTest, ReassemblesByteAtATime) {
  // The reactor's recv() can return any split; the worst case is one byte
  // per wakeup. The assembler must produce the identical frame and report
  // nonzero buffered() the whole way through (slow-loris bookkeeping).
  std::string stream = EncodeFrame(FrameType::kRequest, "dripped");
  FrameAssembler assembler;
  for (std::size_t i = 0; i + 1 < stream.size(); ++i) {
    assembler.Feed(stream.substr(i, 1));
    auto partial = assembler.Next();
    ASSERT_TRUE(partial.ok()) << "byte " << i << ": " << partial.status();
    EXPECT_FALSE(partial->has_value()) << "frame completed early at byte " << i;
    EXPECT_GT(assembler.buffered(), 0u);
  }
  assembler.Feed(stream.substr(stream.size() - 1));
  auto frame = assembler.Next();
  ASSERT_TRUE(frame.ok()) << frame.status();
  ASSERT_TRUE(frame->has_value());
  EXPECT_EQ((*frame)->type, FrameType::kRequest);
  EXPECT_EQ((*frame)->payload, "dripped");
  EXPECT_EQ(assembler.buffered(), 0u);
}

TEST(FrameAssemblerTest, DrainsPipelinedFramesFromOneFeed) {
  std::string stream;
  for (int i = 0; i < 5; ++i) {
    stream += EncodeFrame(FrameType::kPing, std::string(1, static_cast<char>('a' + i)));
  }
  FrameAssembler assembler;
  assembler.Feed(stream);
  for (int i = 0; i < 5; ++i) {
    auto frame = assembler.Next();
    ASSERT_TRUE(frame.ok() && frame->has_value()) << "frame " << i;
    EXPECT_EQ((*frame)->payload, std::string(1, static_cast<char>('a' + i)));
  }
  auto done = assembler.Next();
  ASSERT_TRUE(done.ok());
  EXPECT_FALSE(done->has_value());
}

TEST(FrameAssemblerTest, PoisonsPermanentlyOnDesync) {
  // Garbage mid-stream desynchronizes the connection for good — there is no
  // way to find the next frame boundary, so the assembler keeps failing even
  // if valid bytes arrive later. The reactor drops the connection on the
  // first error.
  FrameAssembler assembler;
  assembler.Feed(EncodeFrame(FrameType::kPing, "ok"));
  auto good = assembler.Next();
  ASSERT_TRUE(good.ok() && good->has_value());
  assembler.Feed("XXXXGARBAGE");
  auto bad = assembler.Next();
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kDataLoss);
  assembler.Feed(EncodeFrame(FrameType::kPing, "too late"));
  auto still_bad = assembler.Next();
  ASSERT_FALSE(still_bad.ok());
  EXPECT_EQ(still_bad.status().code(), StatusCode::kDataLoss);
}

TEST(FrameAssemblerTest, RejectsBadHeaderBeforeFullFrame) {
  // Header validation is incremental: four wrong magic bytes are enough to
  // fail, no need to wait for a length or CRC that will never come.
  FrameAssembler assembler;
  assembler.Feed("HTTP");
  auto result = assembler.Next();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
}

TEST(FrameAssemblerTest, EnforcesPayloadLimit) {
  WireLimits limits;
  limits.max_payload_bytes = 16;
  FrameAssembler assembler(limits);
  assembler.Feed(EncodeFrame(FrameType::kPing, std::string(64, 'x')));
  auto result = assembler.Next();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
}

}  // namespace
}  // namespace net
}  // namespace cmif
