// The protocol messages' robustness contract: request/response/status
// payloads round-trip exactly, and every single-byte mutation or truncation
// of a valid encoding either round-trips to the identical message (a flip
// inside a string body changes only that string's bytes) or fails as a
// structured kDataLoss — never a crash, an allocation blow-up, or a
// silently mis-fielded message.
#include "src/net/protocol.h"

#include <gtest/gtest.h>

#include <string>

namespace cmif {
namespace net {
namespace {

PresentRequest SampleRequest() {
  PresentRequest request;
  request.document = "news-3-s2";
  request.profile = "portable";
  request.channels = {"video", "caption"};
  request.want_body = false;
  request.allow_degraded = false;
  request.trace.trace_id = 0x1122334455667788ull;
  request.trace.parent_span_id = 42;
  request.trace.sampled = true;
  return request;
}

PresentResponse SampleResponse() {
  PresentResponse response;
  response.outcome = ServeOutcome::kDegraded;
  response.attempts = 3;
  response.cache_hit = true;
  response.error = UnavailableError("compile failed under chaos");
  response.presentation = "(presentation\n (map)\n)";
  response.presentation_hash = 0x0123456789abcdefull;
  WireSpan span;
  span.name = "net-request";
  span.id = 2;
  span.parent_id = 1;
  span.trace_id = 0x1122334455667788ull;
  span.start_us = 1250.5;
  span.duration_us = 310.25;
  span.tid = 3;
  response.server_spans.push_back(span);
  span.name = "pipeline";
  span.id = 5;
  span.parent_id = 2;
  span.start_us = 1300.0;
  span.duration_us = 200.0;
  response.server_spans.push_back(span);
  return response;
}

TEST(ProtocolTest, RequestRoundTrip) {
  PresentRequest request = SampleRequest();
  auto decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->document, request.document);
  EXPECT_EQ(decoded->profile, request.profile);
  EXPECT_EQ(decoded->channels, request.channels);
  EXPECT_EQ(decoded->want_body, request.want_body);
  EXPECT_EQ(decoded->allow_degraded, request.allow_degraded);
  EXPECT_EQ(decoded->trace.trace_id, request.trace.trace_id);
  EXPECT_EQ(decoded->trace.parent_span_id, request.trace.parent_span_id);
  EXPECT_EQ(decoded->trace.sampled, request.trace.sampled);
}

TEST(ProtocolTest, DefaultRequestRoundTrip) {
  auto decoded = DecodeRequest(EncodeRequest(PresentRequest{}));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(decoded->document.empty());
  EXPECT_TRUE(decoded->channels.empty());
  EXPECT_TRUE(decoded->want_body);
  EXPECT_TRUE(decoded->allow_degraded);
  EXPECT_FALSE(decoded->trace.valid());
  EXPECT_FALSE(decoded->trace.sampled);
}

TEST(ProtocolTest, TraceContextEncodingGolden) {
  // The version-2 wire layout of the trailing trace fields, byte for byte —
  // a silent re-ordering or re-encoding would break mixed-build tracing even
  // though same-build round-trips still pass.
  PresentRequest request;
  request.document = "d";
  request.trace.trace_id = 42;
  request.trace.parent_span_id = 7;
  request.trace.sampled = true;
  std::string encoded = EncodeRequest(request);
  const std::string expected(
      "\x01"
      "d"
      "\x00"          // profile ""
      "\x00"          // channel count 0
      "\x01"          // want_body
      "\x01"          // allow_degraded
      "\x2a"          // trace_id 42
      "\x07"          // parent_span_id 7
      "\x01",         // sampled
      9);
  EXPECT_EQ(encoded, expected);
}

TEST(ProtocolTest, ResponseServerSpansRoundTrip) {
  PresentResponse response = SampleResponse();
  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(decoded->server_spans.size(), response.server_spans.size());
  for (std::size_t i = 0; i < response.server_spans.size(); ++i) {
    const WireSpan& expect = response.server_spans[i];
    const WireSpan& got = decoded->server_spans[i];
    EXPECT_EQ(got.name, expect.name) << i;
    EXPECT_EQ(got.id, expect.id) << i;
    EXPECT_EQ(got.parent_id, expect.parent_id) << i;
    EXPECT_EQ(got.trace_id, expect.trace_id) << i;
    EXPECT_EQ(got.start_us, expect.start_us) << i;  // f64 bit pattern: exact
    EXPECT_EQ(got.duration_us, expect.duration_us) << i;
    EXPECT_EQ(got.tid, expect.tid) << i;
  }
}

TEST(ProtocolRobustnessTest, TraceFieldsWithoutIdAreRejected) {
  // parent/sampled without a trace id cannot be produced by an honest
  // encoder; a decoder that accepted them would let spans dangle.
  PresentRequest request;
  request.document = "d";
  std::string encoded = EncodeRequest(request);
  ASSERT_EQ(encoded.back(), '\x00');  // sampled=false
  encoded.back() = '\x01';            // sampled without a trace id
  EXPECT_EQ(DecodeRequest(encoded).status().code(), StatusCode::kDataLoss);
}

TEST(ProtocolTest, ResponseRoundTrip) {
  PresentResponse response = SampleResponse();
  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->outcome, response.outcome);
  EXPECT_EQ(decoded->attempts, response.attempts);
  EXPECT_EQ(decoded->cache_hit, response.cache_hit);
  EXPECT_EQ(decoded->error.code(), response.error.code());
  EXPECT_EQ(decoded->error.message(), response.error.message());
  EXPECT_EQ(decoded->presentation, response.presentation);
  EXPECT_EQ(decoded->presentation_hash, response.presentation_hash);
}

TEST(ProtocolTest, WireStatusRoundTrip) {
  std::string encoded = EncodeWireStatus(ResourceExhaustedError("queue full"));
  Status decoded;
  ASSERT_TRUE(DecodeWireStatus(encoded, &decoded).ok());
  EXPECT_EQ(decoded.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(decoded.message(), "queue full");
}

TEST(ProtocolRobustnessTest, TruncatedRequestsAreDataLoss) {
  std::string encoded = EncodeRequest(SampleRequest());
  for (std::size_t cut = 0; cut < encoded.size(); ++cut) {
    auto result = DecodeRequest(encoded.substr(0, cut));
    EXPECT_EQ(result.status().code(), StatusCode::kDataLoss) << "cut=" << cut;
  }
}

TEST(ProtocolRobustnessTest, TruncatedResponsesAreDataLoss) {
  std::string encoded = EncodeResponse(SampleResponse());
  for (std::size_t cut = 0; cut < encoded.size(); ++cut) {
    auto result = DecodeResponse(encoded.substr(0, cut));
    EXPECT_EQ(result.status().code(), StatusCode::kDataLoss) << "cut=" << cut;
  }
}

TEST(ProtocolRobustnessTest, MutatedRequestsNeverMisfield) {
  // Fuzz-style sweep: every byte, every flipped bit. The decode either fails
  // as kDataLoss or yields a request whose non-string fields are still in
  // range (a flip inside a string body legitimately alters that string).
  std::string encoded = EncodeRequest(SampleRequest());
  for (std::size_t i = 0; i < encoded.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = encoded;
      mutated[i] = static_cast<char>(mutated[i] ^ (1 << bit));
      auto result = DecodeRequest(mutated);
      if (!result.ok()) {
        EXPECT_EQ(result.status().code(), StatusCode::kDataLoss)
            << "byte " << i << " bit " << bit << ": " << result.status();
      } else {
        EXPECT_LE(result->channels.size(), mutated.size()) << "byte " << i;
      }
    }
  }
}

TEST(ProtocolRobustnessTest, MutatedResponsesNeverMisfield) {
  std::string encoded = EncodeResponse(SampleResponse());
  for (std::size_t i = 0; i < encoded.size(); ++i) {
    std::string mutated = encoded;
    mutated[i] = static_cast<char>(mutated[i] ^ 0xff);
    auto result = DecodeResponse(mutated);
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kDataLoss) << "byte " << i;
    } else {
      EXPECT_LE(static_cast<int>(result->outcome), static_cast<int>(ServeOutcome::kFailed));
      EXPECT_LE(result->attempts, 1 << 20);
    }
  }
}

TEST(ProtocolRobustnessTest, TrailingBytesAreDataLoss) {
  // Unknown trailing fields are rejected, not skipped: the frame version
  // byte is the compatibility mechanism.
  auto request = DecodeRequest(EncodeRequest(SampleRequest()) + "extra");
  EXPECT_EQ(request.status().code(), StatusCode::kDataLoss);
  auto response = DecodeResponse(EncodeResponse(SampleResponse()) + "x");
  EXPECT_EQ(response.status().code(), StatusCode::kDataLoss);
  Status decoded;
  EXPECT_EQ(DecodeWireStatus(EncodeWireStatus(InternalError("e")) + "y", &decoded).code(),
            StatusCode::kDataLoss);
}

TEST(ProtocolRobustnessTest, HugeClaimedCountsAreRejectedBeforeAllocation) {
  // A channel count far beyond the payload size must fail fast.
  std::string payload;
  payload.push_back(0);  // document ""
  payload.push_back(0);  // profile ""
  payload += std::string("\xff\xff\xff\xff\x0f", 5);  // channel count ~4 billion
  auto result = DecodeRequest(payload);
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
}

TEST(ProtocolRobustnessTest, OutOfRangeEnumsAreRejected) {
  // Booleans must be exactly 0 or 1, status codes and outcomes in range.
  // The trace sampling bit is the message's last byte.
  PresentRequest request = SampleRequest();
  std::string encoded = EncodeRequest(request);
  ASSERT_EQ(encoded.back(), '\x01');  // trace.sampled
  encoded.back() = 7;
  auto result = DecodeRequest(encoded);
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
}

TEST(ProtocolRobustnessTest, GarbageIsHandledStructurally) {
  for (const char* garbage : {"", "\x01", "not a message at all", "\xff\xff\xff\xff"}) {
    EXPECT_EQ(DecodeRequest(garbage).status().code(), StatusCode::kDataLoss);
    EXPECT_EQ(DecodeResponse(garbage).status().code(), StatusCode::kDataLoss);
    Status decoded;
    EXPECT_EQ(DecodeWireStatus(garbage, &decoded).code(), StatusCode::kDataLoss);
  }
}

}  // namespace
}  // namespace net
}  // namespace cmif
