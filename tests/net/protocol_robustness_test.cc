// The protocol messages' robustness contract: request/response/status
// payloads round-trip exactly, and every single-byte mutation or truncation
// of a valid encoding either round-trips to the identical message (a flip
// inside a string body changes only that string's bytes) or fails as a
// structured kDataLoss — never a crash, an allocation blow-up, or a
// silently mis-fielded message.
#include "src/net/protocol.h"

#include <gtest/gtest.h>

#include <string>

namespace cmif {
namespace net {
namespace {

PresentRequest SampleRequest() {
  PresentRequest request;
  request.document = "news-3-s2";
  request.profile = "portable";
  request.channels = {"video", "caption"};
  request.want_body = false;
  request.allow_degraded = false;
  request.trace.trace_id = 0x1122334455667788ull;
  request.trace.parent_span_id = 42;
  request.trace.sampled = true;
  request.deadline_ms = 150;  // exercises the v3 tail in every sweep below
  return request;
}

PresentResponse SampleResponse() {
  PresentResponse response;
  response.outcome = ServeOutcome::kDegraded;
  response.attempts = 3;
  response.cache_hit = true;
  response.error = UnavailableError("compile failed under chaos");
  response.presentation = "(presentation\n (map)\n)";
  response.presentation_hash = 0x0123456789abcdefull;
  WireSpan span;
  span.name = "net-request";
  span.id = 2;
  span.parent_id = 1;
  span.trace_id = 0x1122334455667788ull;
  span.start_us = 1250.5;
  span.duration_us = 310.25;
  span.tid = 3;
  response.server_spans.push_back(span);
  span.name = "pipeline";
  span.id = 5;
  span.parent_id = 2;
  span.start_us = 1300.0;
  span.duration_us = 200.0;
  response.server_spans.push_back(span);
  return response;
}

TEST(ProtocolTest, RequestRoundTrip) {
  PresentRequest request = SampleRequest();
  auto decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->document, request.document);
  EXPECT_EQ(decoded->profile, request.profile);
  EXPECT_EQ(decoded->channels, request.channels);
  EXPECT_EQ(decoded->want_body, request.want_body);
  EXPECT_EQ(decoded->allow_degraded, request.allow_degraded);
  EXPECT_EQ(decoded->trace.trace_id, request.trace.trace_id);
  EXPECT_EQ(decoded->trace.parent_span_id, request.trace.parent_span_id);
  EXPECT_EQ(decoded->trace.sampled, request.trace.sampled);
  EXPECT_EQ(decoded->deadline_ms, request.deadline_ms);
}

TEST(ProtocolTest, DefaultRequestRoundTrip) {
  auto decoded = DecodeRequest(EncodeRequest(PresentRequest{}));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(decoded->document.empty());
  EXPECT_TRUE(decoded->channels.empty());
  EXPECT_TRUE(decoded->want_body);
  EXPECT_TRUE(decoded->allow_degraded);
  EXPECT_FALSE(decoded->trace.valid());
  EXPECT_FALSE(decoded->trace.sampled);
}

TEST(ProtocolTest, TraceContextEncodingGolden) {
  // The version-2 wire layout of the trailing trace fields, byte for byte —
  // a silent re-ordering or re-encoding would break mixed-build tracing even
  // though same-build round-trips still pass.
  PresentRequest request;
  request.document = "d";
  request.trace.trace_id = 42;
  request.trace.parent_span_id = 7;
  request.trace.sampled = true;
  std::string encoded = EncodeRequest(request, /*version=*/2);
  const std::string expected(
      "\x01"
      "d"
      "\x00"          // profile ""
      "\x00"          // channel count 0
      "\x01"          // want_body
      "\x01"          // allow_degraded
      "\x2a"          // trace_id 42
      "\x07"          // parent_span_id 7
      "\x01",         // sampled
      9);
  EXPECT_EQ(encoded, expected);
}

TEST(ProtocolTest, DeadlineEncodingGoldenV3) {
  // The version-3 layout appends exactly one varint — the relative deadline
  // — after the v2 fields, so a v3 payload is a v2 payload plus a tail.
  PresentRequest request;
  request.document = "d";
  request.trace.trace_id = 42;
  request.trace.parent_span_id = 7;
  request.trace.sampled = true;
  request.deadline_ms = 300;
  std::string encoded = EncodeRequest(request, /*version=*/3);
  const std::string expected(
      "\x01"
      "d"
      "\x00"          // profile ""
      "\x00"          // channel count 0
      "\x01"          // want_body
      "\x01"          // allow_degraded
      "\x2a"          // trace_id 42
      "\x07"          // parent_span_id 7
      "\x01"          // sampled
      "\xac\x02",     // deadline_ms 300 (LEB128)
      11);
  EXPECT_EQ(encoded, expected);
  // And the v2 rendering of the same request drops the deadline entirely.
  EXPECT_EQ(EncodeRequest(request, /*version=*/2), expected.substr(0, 9));
}

TEST(ProtocolTest, VersionedDecodeIsStructural) {
  // A v3 payload carrying a deadline is trailing garbage to a v2 decoder,
  // and a v2 payload is truncated to a v3 decoder — version mismatches fail
  // structurally instead of silently mis-fielding.
  PresentRequest request = SampleRequest();
  request.deadline_ms = 25;
  std::string v3 = EncodeRequest(request, /*version=*/3);
  EXPECT_EQ(DecodeRequest(v3, /*version=*/2).status().code(), StatusCode::kDataLoss);
  std::string v2 = EncodeRequest(request, /*version=*/2);
  EXPECT_EQ(DecodeRequest(v2, /*version=*/3).status().code(), StatusCode::kDataLoss);
  // Same-version decodes agree on everything but the v3-only field.
  auto from_v2 = DecodeRequest(v2, /*version=*/2);
  ASSERT_TRUE(from_v2.ok()) << from_v2.status();
  EXPECT_EQ(from_v2->deadline_ms, 0);  // dropped by the v2 encoding
  auto from_v3 = DecodeRequest(v3, /*version=*/3);
  ASSERT_TRUE(from_v3.ok()) << from_v3.status();
  EXPECT_EQ(from_v3->deadline_ms, 25);
  EXPECT_EQ(from_v3->document, from_v2->document);
}

TEST(ProtocolTest, ResponseShedFieldsRoundTripV3) {
  PresentResponse response;
  response.outcome = ServeOutcome::kFailed;
  response.error = ResourceExhaustedError("scheduler queue full");
  response.shed = true;
  response.queue_ms = 12.5;
  auto decoded = DecodeResponse(EncodeResponse(response, /*version=*/3), /*version=*/3);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(decoded->shed);
  EXPECT_EQ(decoded->queue_ms, 12.5);
  // The v2 rendering has no shed bit: a legacy client sees a plain failure.
  auto legacy = DecodeResponse(EncodeResponse(response, /*version=*/2), /*version=*/2);
  ASSERT_TRUE(legacy.ok()) << legacy.status();
  EXPECT_FALSE(legacy->shed);
  EXPECT_EQ(legacy->error.code(), StatusCode::kResourceExhausted);
}

TEST(ProtocolTest, ResponseServerSpansRoundTrip) {
  PresentResponse response = SampleResponse();
  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(decoded->server_spans.size(), response.server_spans.size());
  for (std::size_t i = 0; i < response.server_spans.size(); ++i) {
    const WireSpan& expect = response.server_spans[i];
    const WireSpan& got = decoded->server_spans[i];
    EXPECT_EQ(got.name, expect.name) << i;
    EXPECT_EQ(got.id, expect.id) << i;
    EXPECT_EQ(got.parent_id, expect.parent_id) << i;
    EXPECT_EQ(got.trace_id, expect.trace_id) << i;
    EXPECT_EQ(got.start_us, expect.start_us) << i;  // f64 bit pattern: exact
    EXPECT_EQ(got.duration_us, expect.duration_us) << i;
    EXPECT_EQ(got.tid, expect.tid) << i;
  }
}

TEST(ProtocolRobustnessTest, TraceFieldsWithoutIdAreRejected) {
  // parent/sampled without a trace id cannot be produced by an honest
  // encoder; a decoder that accepted them would let spans dangle.
  PresentRequest request;
  request.document = "d";
  std::string encoded = EncodeRequest(request, /*version=*/2);
  ASSERT_EQ(encoded.back(), '\x00');  // sampled=false
  encoded.back() = '\x01';            // sampled without a trace id
  EXPECT_EQ(DecodeRequest(encoded, /*version=*/2).status().code(), StatusCode::kDataLoss);
  // Same contract under v3, where the deadline varint trails the trace.
  std::string v3 = EncodeRequest(request, /*version=*/3);
  ASSERT_EQ(v3[v3.size() - 2], '\x00');  // sampled=false
  v3[v3.size() - 2] = '\x01';
  EXPECT_EQ(DecodeRequest(v3, /*version=*/3).status().code(), StatusCode::kDataLoss);
}

TEST(ProtocolTest, ResponseRoundTrip) {
  PresentResponse response = SampleResponse();
  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->outcome, response.outcome);
  EXPECT_EQ(decoded->attempts, response.attempts);
  EXPECT_EQ(decoded->cache_hit, response.cache_hit);
  EXPECT_EQ(decoded->error.code(), response.error.code());
  EXPECT_EQ(decoded->error.message(), response.error.message());
  EXPECT_EQ(decoded->presentation, response.presentation);
  EXPECT_EQ(decoded->presentation_hash, response.presentation_hash);
}

TEST(ProtocolTest, WireStatusRoundTrip) {
  std::string encoded = EncodeWireStatus(ResourceExhaustedError("queue full"));
  Status decoded;
  ASSERT_TRUE(DecodeWireStatus(encoded, &decoded).ok());
  EXPECT_EQ(decoded.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(decoded.message(), "queue full");
}

TEST(ProtocolRobustnessTest, TruncatedRequestsAreDataLoss) {
  std::string encoded = EncodeRequest(SampleRequest());
  for (std::size_t cut = 0; cut < encoded.size(); ++cut) {
    auto result = DecodeRequest(encoded.substr(0, cut));
    EXPECT_EQ(result.status().code(), StatusCode::kDataLoss) << "cut=" << cut;
  }
}

TEST(ProtocolRobustnessTest, TruncatedResponsesAreDataLoss) {
  std::string encoded = EncodeResponse(SampleResponse());
  for (std::size_t cut = 0; cut < encoded.size(); ++cut) {
    auto result = DecodeResponse(encoded.substr(0, cut));
    EXPECT_EQ(result.status().code(), StatusCode::kDataLoss) << "cut=" << cut;
  }
}

TEST(ProtocolRobustnessTest, MutatedRequestsNeverMisfield) {
  // Fuzz-style sweep: every byte, every flipped bit. The decode either fails
  // as kDataLoss or yields a request whose non-string fields are still in
  // range (a flip inside a string body legitimately alters that string).
  std::string encoded = EncodeRequest(SampleRequest());
  for (std::size_t i = 0; i < encoded.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = encoded;
      mutated[i] = static_cast<char>(mutated[i] ^ (1 << bit));
      auto result = DecodeRequest(mutated);
      if (!result.ok()) {
        EXPECT_EQ(result.status().code(), StatusCode::kDataLoss)
            << "byte " << i << " bit " << bit << ": " << result.status();
      } else {
        EXPECT_LE(result->channels.size(), mutated.size()) << "byte " << i;
      }
    }
  }
}

TEST(ProtocolRobustnessTest, MutatedResponsesNeverMisfield) {
  std::string encoded = EncodeResponse(SampleResponse());
  for (std::size_t i = 0; i < encoded.size(); ++i) {
    std::string mutated = encoded;
    mutated[i] = static_cast<char>(mutated[i] ^ 0xff);
    auto result = DecodeResponse(mutated);
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kDataLoss) << "byte " << i;
    } else {
      EXPECT_LE(static_cast<int>(result->outcome), static_cast<int>(ServeOutcome::kFailed));
      EXPECT_LE(result->attempts, 1 << 20);
    }
  }
}

TEST(ProtocolRobustnessTest, TrailingBytesAreDataLoss) {
  // Unknown trailing fields are rejected, not skipped: the frame version
  // byte is the compatibility mechanism.
  auto request = DecodeRequest(EncodeRequest(SampleRequest()) + "extra");
  EXPECT_EQ(request.status().code(), StatusCode::kDataLoss);
  auto response = DecodeResponse(EncodeResponse(SampleResponse()) + "x");
  EXPECT_EQ(response.status().code(), StatusCode::kDataLoss);
  Status decoded;
  EXPECT_EQ(DecodeWireStatus(EncodeWireStatus(InternalError("e")) + "y", &decoded).code(),
            StatusCode::kDataLoss);
}

TEST(ProtocolRobustnessTest, HugeClaimedCountsAreRejectedBeforeAllocation) {
  // A channel count far beyond the payload size must fail fast.
  std::string payload;
  payload.push_back(0);  // document ""
  payload.push_back(0);  // profile ""
  payload += std::string("\xff\xff\xff\xff\x0f", 5);  // channel count ~4 billion
  auto result = DecodeRequest(payload);
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
}

TEST(ProtocolRobustnessTest, OutOfRangeEnumsAreRejected) {
  // Booleans must be exactly 0 or 1, status codes and outcomes in range.
  // The trace sampling bit is the message's last byte.
  PresentRequest request = SampleRequest();
  std::string encoded = EncodeRequest(request, /*version=*/2);
  ASSERT_EQ(encoded.back(), '\x01');  // trace.sampled
  encoded.back() = 7;
  auto result = DecodeRequest(encoded, /*version=*/2);
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
}

TEST(ProtocolRobustnessTest, GarbageIsHandledStructurally) {
  for (const char* garbage : {"", "\x01", "not a message at all", "\xff\xff\xff\xff"}) {
    EXPECT_EQ(DecodeRequest(garbage).status().code(), StatusCode::kDataLoss);
    EXPECT_EQ(DecodeResponse(garbage).status().code(), StatusCode::kDataLoss);
    Status decoded;
    EXPECT_EQ(DecodeWireStatus(garbage, &decoded).code(), StatusCode::kDataLoss);
    EXPECT_EQ(DecodeBatchRequest(garbage).status().code(), StatusCode::kDataLoss);
  }
}

TEST(ProtocolTest, BatchRoundTrip) {
  std::vector<PresentRequest> requests;
  requests.push_back(SampleRequest());
  PresentRequest second;
  second.document = "news-1-s1";
  second.deadline_ms = 20;
  requests.push_back(second);
  auto decoded = DecodeBatchRequest(EncodeBatchRequest(requests));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(decoded->size(), 2u);
  EXPECT_EQ((*decoded)[0].document, "news-3-s2");
  EXPECT_EQ((*decoded)[0].deadline_ms, 150);
  EXPECT_EQ((*decoded)[1].document, "news-1-s1");
  EXPECT_EQ((*decoded)[1].deadline_ms, 20);

  std::vector<PresentResponse> responses;
  responses.push_back(SampleResponse());
  responses.push_back(PresentResponse{});
  responses[1].shed = true;
  responses[1].queue_ms = 3.25;
  auto back = DecodeBatchResponse(EncodeBatchResponse(responses));
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back->size(), 2u);
  EXPECT_EQ((*back)[0].outcome, ServeOutcome::kDegraded);
  EXPECT_TRUE((*back)[1].shed);
  EXPECT_EQ((*back)[1].queue_ms, 3.25);
}

TEST(ProtocolTest, EmptyBatchRoundTrips) {
  auto requests = DecodeBatchRequest(EncodeBatchRequest({}));
  ASSERT_TRUE(requests.ok()) << requests.status();
  EXPECT_TRUE(requests->empty());
}

TEST(ProtocolRobustnessTest, BatchCountsAreBoundedBeforeAllocation) {
  // A claimed count beyond kMaxBatchMessages (or the payload size) fails
  // fast — a corrupted count byte must not amplify into unbounded work.
  std::string huge("\xff\xff\xff\xff\x0f", 5);  // count ~4 billion
  EXPECT_EQ(DecodeBatchRequest(huge).status().code(), StatusCode::kDataLoss);
  std::string over;
  over.push_back('\x89');  // varint 1033 > kMaxBatchMessages
  over.push_back('\x08');
  over.append(2000, '\x00');
  EXPECT_EQ(DecodeBatchRequest(over).status().code(), StatusCode::kDataLoss);
}

TEST(ProtocolRobustnessTest, MutatedBatchesNeverMisfield) {
  std::vector<PresentRequest> requests(3, SampleRequest());
  std::string encoded = EncodeBatchRequest(requests);
  for (std::size_t i = 0; i < encoded.size(); ++i) {
    std::string mutated = encoded;
    mutated[i] = static_cast<char>(mutated[i] ^ 0xff);
    auto result = DecodeBatchRequest(mutated);
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kDataLoss) << "byte " << i;
    } else {
      EXPECT_LE(result->size(), kMaxBatchMessages) << "byte " << i;
    }
  }
  for (std::size_t cut = 0; cut < encoded.size(); ++cut) {
    auto result = DecodeBatchRequest(encoded.substr(0, cut));
    if (cut == 0) {
      continue;  // zero bytes cannot even carry the count
    }
    EXPECT_FALSE(result.ok() && !result->empty() && result->size() != requests.size())
        << "cut=" << cut;
  }
}

}  // namespace
}  // namespace net
}  // namespace cmif
