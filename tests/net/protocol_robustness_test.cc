// The protocol messages' robustness contract: request/response/status
// payloads round-trip exactly, and every single-byte mutation or truncation
// of a valid encoding either round-trips to the identical message (a flip
// inside a string body changes only that string's bytes) or fails as a
// structured kDataLoss — never a crash, an allocation blow-up, or a
// silently mis-fielded message.
#include "src/net/protocol.h"

#include <gtest/gtest.h>

#include <string>

namespace cmif {
namespace net {
namespace {

PresentRequest SampleRequest() {
  PresentRequest request;
  request.document = "news-3-s2";
  request.profile = "portable";
  request.channels = {"video", "caption"};
  request.want_body = false;
  request.allow_degraded = false;
  return request;
}

PresentResponse SampleResponse() {
  PresentResponse response;
  response.outcome = ServeOutcome::kDegraded;
  response.attempts = 3;
  response.cache_hit = true;
  response.error = UnavailableError("compile failed under chaos");
  response.presentation = "(presentation\n (map)\n)";
  response.presentation_hash = 0x0123456789abcdefull;
  return response;
}

TEST(ProtocolTest, RequestRoundTrip) {
  PresentRequest request = SampleRequest();
  auto decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->document, request.document);
  EXPECT_EQ(decoded->profile, request.profile);
  EXPECT_EQ(decoded->channels, request.channels);
  EXPECT_EQ(decoded->want_body, request.want_body);
  EXPECT_EQ(decoded->allow_degraded, request.allow_degraded);
}

TEST(ProtocolTest, DefaultRequestRoundTrip) {
  auto decoded = DecodeRequest(EncodeRequest(PresentRequest{}));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(decoded->document.empty());
  EXPECT_TRUE(decoded->channels.empty());
  EXPECT_TRUE(decoded->want_body);
  EXPECT_TRUE(decoded->allow_degraded);
}

TEST(ProtocolTest, ResponseRoundTrip) {
  PresentResponse response = SampleResponse();
  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->outcome, response.outcome);
  EXPECT_EQ(decoded->attempts, response.attempts);
  EXPECT_EQ(decoded->cache_hit, response.cache_hit);
  EXPECT_EQ(decoded->error.code(), response.error.code());
  EXPECT_EQ(decoded->error.message(), response.error.message());
  EXPECT_EQ(decoded->presentation, response.presentation);
  EXPECT_EQ(decoded->presentation_hash, response.presentation_hash);
}

TEST(ProtocolTest, WireStatusRoundTrip) {
  std::string encoded = EncodeWireStatus(ResourceExhaustedError("queue full"));
  Status decoded;
  ASSERT_TRUE(DecodeWireStatus(encoded, &decoded).ok());
  EXPECT_EQ(decoded.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(decoded.message(), "queue full");
}

TEST(ProtocolRobustnessTest, TruncatedRequestsAreDataLoss) {
  std::string encoded = EncodeRequest(SampleRequest());
  for (std::size_t cut = 0; cut < encoded.size(); ++cut) {
    auto result = DecodeRequest(encoded.substr(0, cut));
    EXPECT_EQ(result.status().code(), StatusCode::kDataLoss) << "cut=" << cut;
  }
}

TEST(ProtocolRobustnessTest, TruncatedResponsesAreDataLoss) {
  std::string encoded = EncodeResponse(SampleResponse());
  for (std::size_t cut = 0; cut < encoded.size(); ++cut) {
    auto result = DecodeResponse(encoded.substr(0, cut));
    EXPECT_EQ(result.status().code(), StatusCode::kDataLoss) << "cut=" << cut;
  }
}

TEST(ProtocolRobustnessTest, MutatedRequestsNeverMisfield) {
  // Fuzz-style sweep: every byte, every flipped bit. The decode either fails
  // as kDataLoss or yields a request whose non-string fields are still in
  // range (a flip inside a string body legitimately alters that string).
  std::string encoded = EncodeRequest(SampleRequest());
  for (std::size_t i = 0; i < encoded.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = encoded;
      mutated[i] = static_cast<char>(mutated[i] ^ (1 << bit));
      auto result = DecodeRequest(mutated);
      if (!result.ok()) {
        EXPECT_EQ(result.status().code(), StatusCode::kDataLoss)
            << "byte " << i << " bit " << bit << ": " << result.status();
      } else {
        EXPECT_LE(result->channels.size(), mutated.size()) << "byte " << i;
      }
    }
  }
}

TEST(ProtocolRobustnessTest, MutatedResponsesNeverMisfield) {
  std::string encoded = EncodeResponse(SampleResponse());
  for (std::size_t i = 0; i < encoded.size(); ++i) {
    std::string mutated = encoded;
    mutated[i] = static_cast<char>(mutated[i] ^ 0xff);
    auto result = DecodeResponse(mutated);
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kDataLoss) << "byte " << i;
    } else {
      EXPECT_LE(static_cast<int>(result->outcome), static_cast<int>(ServeOutcome::kFailed));
      EXPECT_LE(result->attempts, 1 << 20);
    }
  }
}

TEST(ProtocolRobustnessTest, TrailingBytesAreDataLoss) {
  // Unknown trailing fields are rejected, not skipped: the frame version
  // byte is the compatibility mechanism.
  auto request = DecodeRequest(EncodeRequest(SampleRequest()) + "extra");
  EXPECT_EQ(request.status().code(), StatusCode::kDataLoss);
  auto response = DecodeResponse(EncodeResponse(SampleResponse()) + "x");
  EXPECT_EQ(response.status().code(), StatusCode::kDataLoss);
  Status decoded;
  EXPECT_EQ(DecodeWireStatus(EncodeWireStatus(InternalError("e")) + "y", &decoded).code(),
            StatusCode::kDataLoss);
}

TEST(ProtocolRobustnessTest, HugeClaimedCountsAreRejectedBeforeAllocation) {
  // A channel count far beyond the payload size must fail fast.
  std::string payload;
  payload.push_back(0);  // document ""
  payload.push_back(0);  // profile ""
  payload += std::string("\xff\xff\xff\xff\x0f", 5);  // channel count ~4 billion
  auto result = DecodeRequest(payload);
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
}

TEST(ProtocolRobustnessTest, OutOfRangeEnumsAreRejected) {
  // Booleans must be exactly 0 or 1, status codes and outcomes in range.
  PresentRequest request = SampleRequest();
  std::string encoded = EncodeRequest(request);
  // want_body is the second-to-last byte (bools are trailing fixed fields).
  encoded[encoded.size() - 2] = 7;
  auto result = DecodeRequest(encoded);
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
}

TEST(ProtocolRobustnessTest, GarbageIsHandledStructurally) {
  for (const char* garbage : {"", "\x01", "not a message at all", "\xff\xff\xff\xff"}) {
    EXPECT_EQ(DecodeRequest(garbage).status().code(), StatusCode::kDataLoss);
    EXPECT_EQ(DecodeResponse(garbage).status().code(), StatusCode::kDataLoss);
    Status decoded;
    EXPECT_EQ(DecodeWireStatus(garbage, &decoded).code(), StatusCode::kDataLoss);
  }
}

}  // namespace
}  // namespace net
}  // namespace cmif
