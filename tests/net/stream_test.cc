// The stream frames' wire contract (wire v4, src/net/stream.h): every
// message round-trips exactly, pinned goldens catch silent re-encodings,
// and every truncation or bit flip of a valid encoding either decodes to a
// message whose fields are still plausible or fails as a structured
// kDataLoss — never a crash or an unbounded allocation. The reassembler is
// held to the same discipline: out-of-order, oversized, alien, or replayed
// chunks are kDataLoss; resume boundaries must agree byte-for-byte.
#include "src/net/stream.h"

#include <gtest/gtest.h>

#include <string>

#include "src/base/string_util.h"

namespace cmif {
namespace net {
namespace {

StreamRequest SampleStreamRequest() {
  StreamRequest request;
  request.request.document = "news-3-s2";
  request.request.profile = "portable";
  request.request.channels = {"video", "caption"};
  request.request.deadline_ms = 150;
  request.chunk_bytes = 4096;
  request.resume_stream_id = 0x1122334455667788ull;
  request.resume_chunks = 9;
  return request;
}

StreamBegin SampleStreamBegin() {
  StreamBegin begin;
  begin.stream_id = 0xfeedfacecafebeefull;
  begin.prefix.outcome = ServeOutcome::kHealthy;
  begin.prefix.attempts = 1;
  begin.prefix.presentation = "(presentation\n (map)\n)";
  begin.prefix.presentation_hash = 0x0123456789abcdefull;
  begin.manifest.push_back(StreamBlockInfo{"vid-07", 700, MediaTime::Seconds(2)});
  begin.manifest.push_back(StreamBlockInfo{"aud-01", 120, MediaTime::Millis(2500)});
  begin.chunk_bytes = 512;
  begin.total_chunks = StreamChunkCount(820, 512);  // 2
  begin.payload_hash = 0x5a5a5a5a5a5a5a5aull;
  begin.resumed_from = 1;
  return begin;
}

TEST(StreamCodecTest, RequestRoundTrip) {
  StreamRequest request = SampleStreamRequest();
  auto decoded = DecodeStreamRequest(EncodeStreamRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->request.document, request.request.document);
  EXPECT_EQ(decoded->request.profile, request.request.profile);
  EXPECT_EQ(decoded->request.channels, request.request.channels);
  EXPECT_EQ(decoded->request.deadline_ms, request.request.deadline_ms);
  EXPECT_EQ(decoded->chunk_bytes, request.chunk_bytes);
  EXPECT_EQ(decoded->resume_stream_id, request.resume_stream_id);
  EXPECT_EQ(decoded->resume_chunks, request.resume_chunks);
}

TEST(StreamCodecTest, BeginRoundTrip) {
  StreamBegin begin = SampleStreamBegin();
  auto decoded = DecodeStreamBegin(EncodeStreamBegin(begin));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->stream_id, begin.stream_id);
  EXPECT_EQ(decoded->prefix.presentation, begin.prefix.presentation);
  EXPECT_EQ(decoded->prefix.presentation_hash, begin.prefix.presentation_hash);
  ASSERT_EQ(decoded->manifest.size(), 2u);
  EXPECT_EQ(decoded->manifest[0].descriptor_id, "vid-07");
  EXPECT_EQ(decoded->manifest[0].bytes, 700u);
  EXPECT_EQ(decoded->manifest[0].first_need, MediaTime::Seconds(2));
  EXPECT_EQ(decoded->manifest[1].descriptor_id, "aud-01");
  EXPECT_EQ(decoded->chunk_bytes, begin.chunk_bytes);
  EXPECT_EQ(decoded->total_chunks, begin.total_chunks);
  EXPECT_EQ(decoded->payload_hash, begin.payload_hash);
  EXPECT_EQ(decoded->resumed_from, begin.resumed_from);
}

TEST(StreamCodecTest, ChunkAckEndRoundTrip) {
  StreamChunk chunk{7, 3, std::string(512, 'x')};
  auto c = DecodeStreamChunk(EncodeStreamChunk(chunk));
  ASSERT_TRUE(c.ok()) << c.status();
  EXPECT_EQ(c->stream_id, 7u);
  EXPECT_EQ(c->chunk_index, 3u);
  EXPECT_EQ(c->payload, chunk.payload);

  StreamAck ack{7, 4, 2};
  auto a = DecodeStreamAck(EncodeStreamAck(ack));
  ASSERT_TRUE(a.ok()) << a.status();
  EXPECT_EQ(a->stream_id, 7u);
  EXPECT_EQ(a->chunks_received, 4u);
  EXPECT_EQ(a->stalls, 2u);

  StreamEnd end{7, 4, 0xabcdull};
  auto e = DecodeStreamEnd(EncodeStreamEnd(end));
  ASSERT_TRUE(e.ok()) << e.status();
  EXPECT_EQ(e->stream_id, 7u);
  EXPECT_EQ(e->total_chunks, 4u);
  EXPECT_EQ(e->payload_hash, 0xabcdull);
}

TEST(StreamCodecTest, ChunkEncodingGolden) {
  // The v4 chunk layout, byte for byte: stream id, index, then the payload
  // as a length-prefixed string. A silent re-ordering would break mixed
  // builds even though same-build round trips still pass.
  StreamChunk chunk{42, 7, "abc"};
  const std::string expected(
      "\x2a"   // stream_id 42
      "\x07"   // chunk_index 7
      "\x03"   // payload length 3
      "abc",
      6);
  EXPECT_EQ(EncodeStreamChunk(chunk), expected);
}

TEST(StreamCodecTest, AckAndEndEncodingGolden) {
  EXPECT_EQ(EncodeStreamAck(StreamAck{42, 300, 1}),
            std::string("\x2a\xac\x02\x01", 4));  // 300 = LEB128 ac 02
  EXPECT_EQ(EncodeStreamEnd(StreamEnd{1, 2, 128}),
            std::string("\x01\x02\x80\x01", 4));
}

TEST(StreamCodecTest, RequestEncodingGolden) {
  // The stream request wraps the inner v4 PresentRequest as one
  // length-prefixed string, then appends the delivery fields.
  StreamRequest request;
  request.request.document = "d";
  request.chunk_bytes = 256;
  request.resume_stream_id = 5;
  request.resume_chunks = 2;
  const std::string inner(
      "\x01"
      "d"
      "\x00"        // profile ""
      "\x00"        // channel count 0
      "\x01"        // want_body
      "\x01"        // allow_degraded
      "\x00"        // trace_id 0
      "\x00"        // parent_span_id 0
      "\x00"        // sampled
      "\x00"        // deadline_ms 0 (v3 tail)
      "\x00",       // want_blocks false (v4 tail)
      11);
  const std::string expected =
      std::string("\x0b", 1) + inner + std::string("\x80\x02\x05\x02", 4);
  EXPECT_EQ(EncodeStreamRequest(request), expected);
}

TEST(StreamCodecTest, ZeroAndImplausibleChunkSizesAreRejected) {
  StreamRequest request = SampleStreamRequest();
  request.chunk_bytes = 0;
  EXPECT_EQ(DecodeStreamRequest(EncodeStreamRequest(request)).status().code(),
            StatusCode::kDataLoss);
  request.chunk_bytes = kMaxChunkBytes + 1;
  EXPECT_EQ(DecodeStreamRequest(EncodeStreamRequest(request)).status().code(),
            StatusCode::kDataLoss);
}

TEST(StreamCodecTest, ResumeChunksWithoutStreamIdAreRejected) {
  StreamRequest request = SampleStreamRequest();
  request.resume_stream_id = 0;
  request.resume_chunks = 3;
  EXPECT_EQ(DecodeStreamRequest(EncodeStreamRequest(request)).status().code(),
            StatusCode::kDataLoss);
}

TEST(StreamCodecTest, BeginWithInlineBlocksIsRejected) {
  // The stream prefix must never double-deliver: blocks travel as chunks.
  StreamBegin begin = SampleStreamBegin();
  begin.prefix.blocks.push_back(WireBlock{"vid-07", "bytes"});
  EXPECT_EQ(DecodeStreamBegin(EncodeStreamBegin(begin)).status().code(),
            StatusCode::kDataLoss);
}

TEST(StreamCodecTest, BeginChunkCountMustAgreeWithManifest) {
  StreamBegin begin = SampleStreamBegin();
  begin.total_chunks = 5;  // manifest says 2
  EXPECT_EQ(DecodeStreamBegin(EncodeStreamBegin(begin)).status().code(),
            StatusCode::kDataLoss);
}

TEST(StreamCodecTest, BeginResumePastEndIsRejected) {
  StreamBegin begin = SampleStreamBegin();
  begin.resumed_from = begin.total_chunks + 1;
  EXPECT_EQ(DecodeStreamBegin(EncodeStreamBegin(begin)).status().code(),
            StatusCode::kDataLoss);
}

TEST(StreamCodecTest, EmptyAndOversizedChunksAreRejected) {
  StreamChunk empty{1, 0, ""};
  EXPECT_EQ(DecodeStreamChunk(EncodeStreamChunk(empty)).status().code(),
            StatusCode::kDataLoss);
  StreamChunk oversized{1, 0, std::string(kMaxChunkBytes + 1, 'x')};
  EXPECT_EQ(DecodeStreamChunk(EncodeStreamChunk(oversized)).status().code(),
            StatusCode::kDataLoss);
}

TEST(StreamCodecTest, ChunkCountHelper) {
  EXPECT_EQ(StreamChunkCount(0, 512), 0u);
  EXPECT_EQ(StreamChunkCount(1, 512), 1u);
  EXPECT_EQ(StreamChunkCount(512, 512), 1u);
  EXPECT_EQ(StreamChunkCount(513, 512), 2u);
  EXPECT_EQ(StreamChunkCount(1024, 512), 2u);
}

TEST(StreamCodecTest, StreamIdIsDeterministicAndNonZero) {
  std::uint64_t id = DeriveStreamId(1, 2, 3);
  EXPECT_EQ(id, DeriveStreamId(1, 2, 3));
  EXPECT_NE(id, 0u);
  EXPECT_NE(id, DeriveStreamId(1, 2, 4));  // chunking is part of identity
  EXPECT_NE(id, DeriveStreamId(9, 2, 3));
}

// ---- robustness sweeps ----------------------------------------------------

TEST(StreamRobustnessTest, TruncatedFramesAreDataLoss) {
  const std::string encodings[] = {
      EncodeStreamRequest(SampleStreamRequest()),
      EncodeStreamBegin(SampleStreamBegin()),
      EncodeStreamChunk(StreamChunk{7, 3, "payload"}),
      EncodeStreamAck(StreamAck{7, 4, 2}),
      EncodeStreamEnd(StreamEnd{7, 4, 0xabcdull}),
  };
  for (std::size_t which = 0; which < 5; ++which) {
    const std::string& encoded = encodings[which];
    for (std::size_t cut = 0; cut < encoded.size(); ++cut) {
      std::string prefix = encoded.substr(0, cut);
      Status status;
      switch (which) {
        case 0: status = DecodeStreamRequest(prefix).status(); break;
        case 1: status = DecodeStreamBegin(prefix).status(); break;
        case 2: status = DecodeStreamChunk(prefix).status(); break;
        case 3: status = DecodeStreamAck(prefix).status(); break;
        case 4: status = DecodeStreamEnd(prefix).status(); break;
      }
      EXPECT_EQ(status.code(), StatusCode::kDataLoss)
          << "message " << which << " cut=" << cut;
    }
  }
}

TEST(StreamRobustnessTest, MutatedRequestsNeverMisfield) {
  // Every byte, every flipped bit: decode either fails structurally or
  // yields a request whose numeric fields are still plausible.
  std::string encoded = EncodeStreamRequest(SampleStreamRequest());
  for (std::size_t i = 0; i < encoded.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = encoded;
      mutated[i] = static_cast<char>(mutated[i] ^ (1 << bit));
      auto result = DecodeStreamRequest(mutated);
      if (!result.ok()) {
        EXPECT_EQ(result.status().code(), StatusCode::kDataLoss)
            << "byte " << i << " bit " << bit << ": " << result.status();
      } else {
        EXPECT_GT(result->chunk_bytes, 0u) << "byte " << i;
        EXPECT_LE(result->chunk_bytes, kMaxChunkBytes) << "byte " << i;
      }
    }
  }
}

TEST(StreamRobustnessTest, MutatedBeginsNeverMisfield) {
  std::string encoded = EncodeStreamBegin(SampleStreamBegin());
  for (std::size_t i = 0; i < encoded.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = encoded;
      mutated[i] = static_cast<char>(mutated[i] ^ (1 << bit));
      auto result = DecodeStreamBegin(mutated);
      if (!result.ok()) {
        EXPECT_EQ(result.status().code(), StatusCode::kDataLoss)
            << "byte " << i << " bit " << bit << ": " << result.status();
      } else {
        EXPECT_LE(result->manifest.size(), kMaxStreamBlocks) << "byte " << i;
        EXPECT_GE(result->chunk_bytes, kMinChunkBytes) << "byte " << i;
        EXPECT_LE(result->chunk_bytes, kMaxChunkBytes) << "byte " << i;
        EXPECT_LE(result->resumed_from, result->total_chunks) << "byte " << i;
      }
    }
  }
}

TEST(StreamRobustnessTest, MutatedChunksAcksEndsNeverMisfield) {
  const std::string encodings[] = {
      EncodeStreamChunk(StreamChunk{7, 3, "payload-bytes"}),
      EncodeStreamAck(StreamAck{7, 4, 2}),
      EncodeStreamEnd(StreamEnd{7, 4, 0xabcdull}),
  };
  for (std::size_t which = 0; which < 3; ++which) {
    const std::string& encoded = encodings[which];
    for (std::size_t i = 0; i < encoded.size(); ++i) {
      for (int bit = 0; bit < 8; ++bit) {
        std::string mutated = encoded;
        mutated[i] = static_cast<char>(mutated[i] ^ (1 << bit));
        Status status;
        switch (which) {
          case 0: status = DecodeStreamChunk(mutated).status(); break;
          case 1: status = DecodeStreamAck(mutated).status(); break;
          case 2: status = DecodeStreamEnd(mutated).status(); break;
        }
        if (!status.ok()) {
          EXPECT_EQ(status.code(), StatusCode::kDataLoss)
              << "message " << which << " byte " << i << " bit " << bit;
        }
      }
    }
  }
}

TEST(StreamRobustnessTest, GarbageIsHandledStructurally) {
  for (const char* garbage : {"", "\x01", "not a stream frame", "\xff\xff\xff\xff"}) {
    EXPECT_EQ(DecodeStreamRequest(garbage).status().code(), StatusCode::kDataLoss);
    EXPECT_EQ(DecodeStreamBegin(garbage).status().code(), StatusCode::kDataLoss);
    EXPECT_EQ(DecodeStreamChunk(garbage).status().code(), StatusCode::kDataLoss);
    EXPECT_EQ(DecodeStreamAck(garbage).status().code(), StatusCode::kDataLoss);
    EXPECT_EQ(DecodeStreamEnd(garbage).status().code(), StatusCode::kDataLoss);
  }
}

TEST(StreamRobustnessTest, HugeManifestCountsAreRejectedBeforeAllocation) {
  // stream_id, a valid (empty-response) prefix string, then a block count
  // of ~4 billion: the decode must fail fast on the count bounds.
  StreamBegin begin = SampleStreamBegin();
  begin.manifest.clear();
  begin.total_chunks = 0;
  begin.resumed_from = 0;
  std::string encoded = EncodeStreamBegin(begin);
  // The manifest count 0 sits right after the prefix string; find it by
  // re-encoding with one entry and diffing is brittle, so rebuild by hand.
  std::string payload;
  payload.push_back('\x01');  // stream_id 1
  std::string prefix = EncodeResponse(PresentResponse{});
  // length-prefixed prefix string
  std::string out;
  {
    // varint length
    std::uint64_t n = prefix.size();
    while (n >= 0x80) {
      out.push_back(static_cast<char>(n | 0x80));
      n >>= 7;
    }
    out.push_back(static_cast<char>(n));
  }
  payload += out + prefix;
  payload += std::string("\xff\xff\xff\xff\x0f", 5);  // count ~4 billion
  EXPECT_EQ(DecodeStreamBegin(payload).status().code(), StatusCode::kDataLoss);
}

// ---- reassembler ------------------------------------------------------------

StreamBegin TwoChunkBegin(const std::string& payload, std::uint64_t chunk_bytes) {
  StreamBegin begin;
  begin.stream_id = 99;
  begin.manifest.push_back(
      StreamBlockInfo{"blk-a", payload.size() / 2, MediaTime::Seconds(1)});
  begin.manifest.push_back(
      StreamBlockInfo{"blk-b", payload.size() - payload.size() / 2, MediaTime::Seconds(2)});
  begin.chunk_bytes = chunk_bytes;
  begin.total_chunks = StreamChunkCount(payload.size(), chunk_bytes);
  begin.payload_hash = Fnv1a64(payload);
  return begin;
}

TEST(StreamReassemblerTest, CarvesBlocksByManifest) {
  std::string payload(700, 'a');
  for (std::size_t i = 350; i < payload.size(); ++i) {
    payload[i] = 'b';
  }
  StreamBegin begin = TwoChunkBegin(payload, 512);
  StreamReassembler reassembler;
  ASSERT_TRUE(reassembler.Begin(begin).ok());
  ASSERT_TRUE(reassembler.Feed(StreamChunk{99, 0, payload.substr(0, 512)}).ok());
  EXPECT_FALSE(reassembler.complete());
  ASSERT_TRUE(reassembler.Feed(StreamChunk{99, 1, payload.substr(512)}).ok());
  EXPECT_TRUE(reassembler.complete());
  auto blocks = reassembler.Finish(StreamEnd{99, 2, begin.payload_hash});
  ASSERT_TRUE(blocks.ok()) << blocks.status();
  ASSERT_EQ(blocks->size(), 2u);
  EXPECT_EQ((*blocks)[0].descriptor_id, "blk-a");
  EXPECT_EQ((*blocks)[0].payload, payload.substr(0, 350));
  EXPECT_EQ((*blocks)[1].descriptor_id, "blk-b");
  EXPECT_EQ((*blocks)[1].payload, payload.substr(350));
}

TEST(StreamReassemblerTest, RejectsDisorderAliensAndWrongSizes) {
  std::string payload(700, 'z');
  StreamBegin begin = TwoChunkBegin(payload, 512);
  StreamReassembler reassembler;
  ASSERT_TRUE(reassembler.Begin(begin).ok());
  // Chunk before begin is a precondition failure, not data loss.
  StreamReassembler cold;
  EXPECT_EQ(cold.Feed(StreamChunk{99, 0, payload.substr(0, 512)}).code(),
            StatusCode::kFailedPrecondition);
  // Wrong stream.
  EXPECT_EQ(reassembler.Feed(StreamChunk{98, 0, payload.substr(0, 512)}).code(),
            StatusCode::kDataLoss);
  // Out of order.
  EXPECT_EQ(reassembler.Feed(StreamChunk{99, 1, payload.substr(512)}).code(),
            StatusCode::kDataLoss);
  // Wrong size for the first chunk.
  EXPECT_EQ(reassembler.Feed(StreamChunk{99, 0, payload.substr(0, 100)}).code(),
            StatusCode::kDataLoss);
  // Correct feed still works after rejected ones (no partial state).
  ASSERT_TRUE(reassembler.Feed(StreamChunk{99, 0, payload.substr(0, 512)}).ok());
  // Replay of the same index is now out of order.
  EXPECT_EQ(reassembler.Feed(StreamChunk{99, 0, payload.substr(0, 512)}).code(),
            StatusCode::kDataLoss);
}

TEST(StreamReassemblerTest, FinishCrossChecksTrailerAndHash) {
  std::string payload(300, 'q');
  StreamBegin begin = TwoChunkBegin(payload, 256);
  StreamReassembler reassembler;
  ASSERT_TRUE(reassembler.Begin(begin).ok());
  ASSERT_TRUE(reassembler.Feed(StreamChunk{99, 0, payload.substr(0, 256)}).ok());
  // Finishing early is a precondition failure.
  EXPECT_EQ(reassembler.Finish(StreamEnd{99, 2, begin.payload_hash}).status().code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(reassembler.Feed(StreamChunk{99, 1, payload.substr(256)}).ok());
  // Trailer disagreements are data loss.
  EXPECT_EQ(reassembler.Finish(StreamEnd{98, 2, begin.payload_hash}).status().code(),
            StatusCode::kDataLoss);
  EXPECT_EQ(reassembler.Finish(StreamEnd{99, 3, begin.payload_hash}).status().code(),
            StatusCode::kDataLoss);
  EXPECT_EQ(reassembler.Finish(StreamEnd{99, 2, begin.payload_hash ^ 1}).status().code(),
            StatusCode::kDataLoss);
  EXPECT_TRUE(reassembler.Finish(StreamEnd{99, 2, begin.payload_hash}).ok());
}

TEST(StreamReassemblerTest, CorruptPayloadFailsTheEndToEndHash) {
  // A flipped payload byte sails through chunk framing (the frame CRC was
  // recomputed by the corruptor) and must be caught by the stream hash.
  std::string payload(300, 'q');
  StreamBegin begin = TwoChunkBegin(payload, 256);
  StreamReassembler reassembler;
  ASSERT_TRUE(reassembler.Begin(begin).ok());
  std::string corrupt = payload.substr(0, 256);
  corrupt[10] ^= 0x40;
  ASSERT_TRUE(reassembler.Feed(StreamChunk{99, 0, corrupt}).ok());
  ASSERT_TRUE(reassembler.Feed(StreamChunk{99, 1, payload.substr(256)}).ok());
  auto blocks = reassembler.Finish(StreamEnd{99, 2, begin.payload_hash});
  EXPECT_EQ(blocks.status().code(), StatusCode::kDataLoss);
}

TEST(StreamReassemblerTest, ResumesAtChunkBoundary) {
  std::string payload(1000, '\0');
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>('a' + (i % 26));
  }
  StreamBegin begin = TwoChunkBegin(payload, 256);  // 4 chunks
  ASSERT_EQ(begin.total_chunks, 4u);
  // First attempt delivers chunks 0..1, then the connection dies.
  StreamReassembler first;
  ASSERT_TRUE(first.Begin(begin).ok());
  ASSERT_TRUE(first.Feed(StreamChunk{99, 0, payload.substr(0, 256)}).ok());
  ASSERT_TRUE(first.Feed(StreamChunk{99, 1, payload.substr(256, 256)}).ok());
  EXPECT_EQ(first.chunks_received(), 2u);
  // The resumed stream picks up at the boundary with the held prefix.
  StreamBegin resumed = begin;
  resumed.resumed_from = 2;
  StreamReassembler second;
  ASSERT_TRUE(second.Begin(resumed, std::string(first.bytes())).ok());
  ASSERT_TRUE(second.Feed(StreamChunk{99, 2, payload.substr(512, 256)}).ok());
  ASSERT_TRUE(second.Feed(StreamChunk{99, 3, payload.substr(768)}).ok());
  auto blocks = second.Finish(StreamEnd{99, 4, begin.payload_hash});
  ASSERT_TRUE(blocks.ok()) << blocks.status();
  EXPECT_EQ((*blocks)[0].payload + (*blocks)[1].payload, payload);
}

TEST(StreamReassemblerTest, ResumesAtTheFinalShortChunkBoundary) {
  // A client that received every chunk but lost the connection before
  // kStreamEnd resumes holding total_bytes — less than
  // total_chunks * chunk_bytes whenever the final chunk is short. That
  // resume must be accepted and finish without refetching anything.
  std::string payload(700, 's');  // 3 chunks of 256: the last is 188 bytes
  StreamBegin begin = TwoChunkBegin(payload, 256);
  ASSERT_EQ(begin.total_chunks, 3u);
  StreamBegin resumed = begin;
  resumed.resumed_from = 3;
  StreamReassembler reassembler;
  ASSERT_TRUE(reassembler.Begin(resumed, payload).ok());
  EXPECT_TRUE(reassembler.complete());
  auto blocks = reassembler.Finish(StreamEnd{99, 3, begin.payload_hash});
  ASSERT_TRUE(blocks.ok()) << blocks.status();
  EXPECT_EQ((*blocks)[0].payload + (*blocks)[1].payload, payload);
  // A full-boundary prefix (3 * 256 bytes) no longer matches the payload
  // and stays rejected.
  StreamReassembler wrong;
  EXPECT_EQ(wrong.Begin(resumed, payload + std::string(68, 'x')).code(),
            StatusCode::kDataLoss);
}

TEST(StreamReassemblerTest, ResumePastTheChunkCountIsRejected) {
  std::string payload(700, 't');
  StreamBegin begin = TwoChunkBegin(payload, 256);
  StreamBegin resumed = begin;
  resumed.resumed_from = begin.total_chunks + 1;
  StreamReassembler reassembler;
  EXPECT_EQ(reassembler.Begin(resumed, payload).code(), StatusCode::kDataLoss);
}

TEST(StreamReassemblerTest, ResumePrefixMustSitOnTheBoundary) {
  std::string payload(1000, 'r');
  StreamBegin begin = TwoChunkBegin(payload, 256);
  StreamBegin resumed = begin;
  resumed.resumed_from = 2;
  StreamReassembler reassembler;
  // Too short, too long, and off-by-one prefixes are all rejected.
  EXPECT_EQ(reassembler.Begin(resumed, payload.substr(0, 511)).code(), StatusCode::kDataLoss);
  EXPECT_EQ(reassembler.Begin(resumed, payload.substr(0, 513)).code(), StatusCode::kDataLoss);
  EXPECT_EQ(reassembler.Begin(resumed, "").code(), StatusCode::kDataLoss);
  EXPECT_TRUE(reassembler.Begin(resumed, payload.substr(0, 512)).ok());
}

}  // namespace
}  // namespace net
}  // namespace cmif
