// End-to-end crash-recovery shape over a real loopback socket: fill the
// persistent cache through one server, stop it, start a second server over
// the same --cache-dir, and require byte-identical responses served from
// the disk tier (pcache hits visible in the stats frame).
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "src/api/cmif.h"

namespace cmif {
namespace net {
namespace {

namespace fs = std::filesystem;

struct Harness {
  std::unique_ptr<ServeCorpus> corpus;
  std::unique_ptr<ServeLoop> loop;
  std::unique_ptr<NetServer> server;

  static Harness Start(int documents, ServeOptions options) {
    Harness h;
    auto corpus = api::BuildNewsCorpus(documents);
    EXPECT_TRUE(corpus.ok()) << corpus.status();
    h.corpus = std::move(corpus).value();
    options.threads = 2;
    h.loop = std::make_unique<ServeLoop>(*h.corpus, options);
    EXPECT_TRUE(h.loop->pcache_status().ok()) << h.loop->pcache_status();
    h.server = std::make_unique<NetServer>(*h.loop);
    Status started = h.server->Start();
    EXPECT_TRUE(started.ok()) << started;
    return h;
  }

  NetClient Client() const {
    NetClientOptions options;
    options.port = server->port();
    return NetClient(options);
  }
};

TEST(RestartTest, WarmRestartServesByteIdenticalFromDisk) {
  const int kDocuments = 3;
  fs::path dir = fs::path(::testing::TempDir()) / "pcache_restart_e2e";
  fs::remove_all(dir);
  ServeOptions options;
  options.cache_dir = dir.string();

  // Run 1: cold server. Every presentation compiles, then lands on disk.
  std::vector<std::string> documents;
  std::vector<std::uint64_t> hashes;
  {
    Harness h = Harness::Start(kDocuments, options);
    NetClient client = h.Client();
    for (int i = 0; i < kDocuments; ++i) {
      PresentRequest request;
      request.document = h.corpus->document(i).name;
      request.profile = "workstation";
      auto response = client.Present(request);
      ASSERT_TRUE(response.ok()) << response.status();
      ASSERT_EQ(response->outcome, ServeOutcome::kHealthy);
      EXPECT_FALSE(response->cache_hit);
      documents.push_back(request.document);
      hashes.push_back(response->presentation_hash);
    }
    auto stats = client.FetchStats();
    ASSERT_TRUE(stats.ok()) << stats.status();
    EXPECT_TRUE(stats->pcache_enabled);
    EXPECT_EQ(stats->pcache_hits, 0u);
    h.loop->pcache()->Flush();  // write-behind: drain before "crashing"
    h.server->Stop();
  }

  // Run 2: a new server process-equivalent over the same directory. The
  // memory cache is empty; every first request must be a disk hit with the
  // exact bytes of run 1.
  Harness h = Harness::Start(kDocuments, options);
  NetClient client = h.Client();
  for (int i = 0; i < kDocuments; ++i) {
    PresentRequest request;
    request.document = documents[i];
    request.profile = "workstation";
    auto response = client.Present(request);
    ASSERT_TRUE(response.ok()) << response.status();
    ASSERT_EQ(response->outcome, ServeOutcome::kHealthy);
    EXPECT_TRUE(response->cache_hit) << documents[i];
    EXPECT_EQ(response->presentation_hash, hashes[i]) << documents[i];
  }
  auto stats = client.FetchStats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_TRUE(stats->pcache_enabled);
  EXPECT_EQ(stats->pcache_hits, static_cast<std::uint64_t>(kDocuments));
  EXPECT_EQ(stats->pcache_entries, static_cast<std::uint64_t>(kDocuments));
  EXPECT_EQ(stats->pcache_quarantined, 0u);
  EXPECT_GT(stats->pcache_disk_bytes, 0u);
  h.server->Stop();
}

TEST(RestartTest, UnusableCacheDirDegradesToMemoryOnly) {
  // A cache_dir that cannot be created must not take the server down.
  ServeOptions options;
  options.threads = 1;
  options.cache_dir = "/proc/definitely/not/writable";
  auto corpus = api::BuildNewsCorpus(1);
  ASSERT_TRUE(corpus.ok()) << corpus.status();
  ServeLoop loop(**corpus, options);
  EXPECT_EQ(loop.pcache(), nullptr);
  EXPECT_FALSE(loop.pcache_status().ok());
  ServeResponse response = loop.Serve(ServeRequest{});
  EXPECT_TRUE(response.served());
  EXPECT_FALSE(response.disk_hit);
}

}  // namespace
}  // namespace net
}  // namespace cmif
