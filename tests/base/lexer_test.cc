#include "src/base/lexer.h"

#include <gtest/gtest.h>

namespace cmif {
namespace {

std::vector<Token> LexAll(std::string_view input) {
  Lexer lexer(input);
  std::vector<Token> out;
  while (true) {
    auto token = lexer.Next();
    EXPECT_TRUE(token.ok()) << token.status();
    if (!token.ok() || token->kind == TokenKind::kEnd) {
      return out;
    }
    out.push_back(*token);
  }
}

TEST(LexerTest, EmptyInputYieldsEnd) {
  Lexer lexer("");
  auto token = lexer.Next();
  ASSERT_TRUE(token.ok());
  EXPECT_EQ(token->kind, TokenKind::kEnd);
}

TEST(LexerTest, ParensAndWords) {
  auto tokens = LexAll("(seq name hello)");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kLParen);
  EXPECT_EQ(tokens[1].text, "seq");
  EXPECT_EQ(tokens[2].text, "name");
  EXPECT_EQ(tokens[3].text, "hello");
  EXPECT_EQ(tokens[4].kind, TokenKind::kRParen);
}

TEST(LexerTest, StringsUnescape) {
  auto tokens = LexAll(R"(("a \"quoted\" string" "line\nbreak"))");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[1].kind, TokenKind::kString);
  EXPECT_EQ(tokens[1].text, "a \"quoted\" string");
  EXPECT_EQ(tokens[2].text, "line\nbreak");
}

TEST(LexerTest, CommentsSkipToEol) {
  auto tokens = LexAll("a ; this is a comment\nb");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
  EXPECT_EQ(tokens[1].line, 2);
}

TEST(LexerTest, LineNumbersAdvance) {
  auto tokens = LexAll("a\nb\n\nc");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[2].line, 4);
}

TEST(LexerTest, WordsStopAtDelimiters) {
  auto tokens = LexAll("ab(cd)\"s\"ef");
  ASSERT_EQ(tokens.size(), 6u);
  EXPECT_EQ(tokens[0].text, "ab");
  EXPECT_EQ(tokens[2].text, "cd");
  EXPECT_EQ(tokens[4].text, "s");
  EXPECT_EQ(tokens[5].text, "ef");
}

TEST(LexerTest, UnterminatedStringIsError) {
  Lexer lexer("\"never closed");
  EXPECT_FALSE(lexer.Next().ok());
}

TEST(LexerTest, PeekDoesNotConsume) {
  Lexer lexer("x y");
  auto p1 = lexer.Peek();
  auto p2 = lexer.Peek();
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(p1->text, "x");
  EXPECT_EQ(p2->text, "x");
  auto n = lexer.Next();
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n->text, "x");
  auto next = lexer.Next();
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next->text, "y");
}

TEST(LexerTest, ExpectMatchesKind) {
  Lexer lexer("( word");
  EXPECT_TRUE(lexer.Expect(TokenKind::kLParen).ok());
  auto wrong = lexer.Expect(TokenKind::kString);
  ASSERT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.status().code(), StatusCode::kDataLoss);
}

TEST(LexerTest, RationalAndNegativeWords) {
  auto tokens = LexAll("3/25 -42 1.5");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "3/25");
  EXPECT_EQ(tokens[1].text, "-42");
  EXPECT_EQ(tokens[2].text, "1.5");
}

}  // namespace
}  // namespace cmif
