#include "src/base/media_time.h"

#include <gtest/gtest.h>

namespace cmif {
namespace {

TEST(MediaTimeTest, DefaultIsZero) {
  MediaTime t;
  EXPECT_TRUE(t.is_zero());
  EXPECT_EQ(t.num(), 0);
  EXPECT_EQ(t.den(), 1);
}

TEST(MediaTimeTest, RationalNormalizes) {
  MediaTime t = MediaTime::Rational(4, 8);
  EXPECT_EQ(t.num(), 1);
  EXPECT_EQ(t.den(), 2);
}

TEST(MediaTimeTest, NegativeDenominatorNormalizesSign) {
  MediaTime t = MediaTime::Rational(1, -2);
  EXPECT_EQ(t.num(), -1);
  EXPECT_EQ(t.den(), 2);
  EXPECT_TRUE(t.is_negative());
}

TEST(MediaTimeTest, UnitConstructorsAgree) {
  // 25 frames at 25 fps = 1 second = 8000 samples at 8 kHz.
  EXPECT_EQ(MediaTime::Frames(25, 25), MediaTime::Seconds(1));
  EXPECT_EQ(MediaTime::Samples(8000, 8000), MediaTime::Seconds(1));
  EXPECT_EQ(MediaTime::Millis(1000), MediaTime::Seconds(1));
  EXPECT_EQ(MediaTime::Bytes(1000, 1000), MediaTime::Seconds(1));
}

TEST(MediaTimeTest, MixedUnitArithmeticIsExact) {
  // 1 frame at 25 fps + 1 sample at 8 kHz = 1/25 + 1/8000 = 321/8000.
  MediaTime sum = MediaTime::Frames(1, 25) + MediaTime::Samples(1, 8000);
  EXPECT_EQ(sum, MediaTime::Rational(321, 8000));
}

TEST(MediaTimeTest, SubtractionAndNegation) {
  MediaTime a = MediaTime::Seconds(3);
  MediaTime b = MediaTime::Millis(500);
  EXPECT_EQ(a - b, MediaTime::Rational(5, 2));
  EXPECT_EQ(-(a - b), MediaTime::Rational(-5, 2));
}

TEST(MediaTimeTest, ScalarMultiply) {
  EXPECT_EQ(MediaTime::Millis(250) * 4, MediaTime::Seconds(1));
  EXPECT_EQ(MediaTime::Seconds(3) * 0, MediaTime());
}

TEST(MediaTimeTest, MulRational) {
  EXPECT_EQ(MediaTime::Seconds(12).MulRational(1, 3), MediaTime::Seconds(4));
  EXPECT_EQ(MediaTime::Seconds(1).MulRational(3, 2), MediaTime::Rational(3, 2));
}

TEST(MediaTimeTest, ComparisonAcrossDenominators) {
  EXPECT_LT(MediaTime::Rational(1, 3), MediaTime::Rational(1, 2));
  EXPECT_GT(MediaTime::Rational(2, 3), MediaTime::Rational(1, 2));
  EXPECT_LE(MediaTime::Rational(1, 2), MediaTime::Rational(2, 4));
  EXPECT_GE(MediaTime::Rational(-1, 2), MediaTime::Rational(-3, 4));
}

TEST(MediaTimeTest, ToUnitsRoundsToNearest) {
  EXPECT_EQ(MediaTime::Rational(1, 2).ToUnits(1000), 500);
  EXPECT_EQ(MediaTime::Rational(1, 3).ToUnits(1000), 333);
  EXPECT_EQ(MediaTime::Rational(2, 3).ToUnits(1000), 667);
  EXPECT_EQ(MediaTime::Rational(-1, 2).ToUnits(1), -1);  // ties away from zero
}

TEST(MediaTimeTest, ToSecondsFApproximates) {
  EXPECT_DOUBLE_EQ(MediaTime::Rational(1, 4).ToSecondsF(), 0.25);
}

TEST(MediaTimeTest, ToStringForms) {
  EXPECT_EQ(MediaTime::Seconds(5).ToString(), "5");
  EXPECT_EQ(MediaTime::Rational(3, 4).ToString(), "3/4");
  EXPECT_EQ(MediaTime::Rational(-3, 4).ToString(), "-3/4");
}

TEST(MediaTimeParseTest, ParsesIntegerSeconds) {
  auto t = ParseMediaTime("42");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*t, MediaTime::Seconds(42));
}

TEST(MediaTimeParseTest, ParsesRational) {
  auto t = ParseMediaTime("-3/4");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*t, MediaTime::Rational(-3, 4));
}

TEST(MediaTimeParseTest, ParsesDecimal) {
  auto t = ParseMediaTime("1.25");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*t, MediaTime::Rational(5, 4));
  auto negative = ParseMediaTime("-0.5");
  ASSERT_TRUE(negative.ok());
  EXPECT_EQ(*negative, MediaTime::Rational(-1, 2));
}

TEST(MediaTimeParseTest, RejectsGarbage) {
  EXPECT_FALSE(ParseMediaTime("").ok());
  EXPECT_FALSE(ParseMediaTime("abc").ok());
  EXPECT_FALSE(ParseMediaTime("1/0").ok());
  EXPECT_FALSE(ParseMediaTime("1.").ok());
  EXPECT_FALSE(ParseMediaTime("1.2.3").ok());
  EXPECT_FALSE(ParseMediaTime("3/").ok());
}

TEST(MediaTimeParseTest, RoundTripsToString) {
  for (const MediaTime t : {MediaTime::Rational(7, 3), MediaTime::Seconds(-2),
                            MediaTime::Millis(125), MediaTime()}) {
    auto parsed = ParseMediaTime(t.ToString());
    ASSERT_TRUE(parsed.ok()) << t.ToString();
    EXPECT_EQ(*parsed, t);
  }
}

// Property sweep: a/b + c/d computed exactly for a grid of rationals.
class MediaTimeArithmeticProperty : public ::testing::TestWithParam<int> {};

TEST_P(MediaTimeArithmeticProperty, AdditionMatchesCrossMultiplication) {
  int i = GetParam();
  std::int64_t a = i % 7 - 3;
  std::int64_t b = i % 5 + 1;
  std::int64_t c = (i * 3) % 11 - 5;
  std::int64_t d = i % 9 + 1;
  MediaTime sum = MediaTime::Rational(a, b) + MediaTime::Rational(c, d);
  EXPECT_EQ(sum, MediaTime::Rational(a * d + c * b, b * d));
  MediaTime diff = MediaTime::Rational(a, b) - MediaTime::Rational(c, d);
  EXPECT_EQ(diff, MediaTime::Rational(a * d - c * b, b * d));
}

INSTANTIATE_TEST_SUITE_P(Grid, MediaTimeArithmeticProperty, ::testing::Range(0, 60));

}  // namespace
}  // namespace cmif
