#include "src/base/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

namespace cmif {
namespace {

TEST(ThreadPoolTest, SubmitReturnsResults) {
  ThreadPool pool(4);
  std::vector<Future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[i].Take(), i * i);
  }
}

TEST(ThreadPoolTest, FutureInvalidAfterTake) {
  ThreadPool pool(1);
  Future<int> future = pool.Submit([] { return 7; });
  EXPECT_TRUE(future.valid());
  EXPECT_EQ(future.Take(), 7);
  EXPECT_FALSE(future.valid());
}

TEST(ThreadPoolTest, RunAndWaitIdleDrainsQueue) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) {
    pool.Run([&] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Run([&] { count.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, TasksRunOnWorkerThreads) {
  ThreadPool pool(2);
  Future<std::thread::id> future = pool.Submit([] { return std::this_thread::get_id(); });
  EXPECT_NE(future.Take(), std::this_thread::get_id());
}

TEST(ThreadPoolTest, ThreadCountClampedToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  EXPECT_EQ(pool.Submit([] { return 42; }).Take(), 42);
  EXPECT_GE(ThreadPool::HardwareThreads(), 1);
}

TEST(ThreadPoolTest, ManyProducersOneConsumerPool) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&pool, &sum, p] {
      for (int i = 0; i < 100; ++i) {
        pool.Run([&sum, p, i] { sum.fetch_add(p * 1000 + i, std::memory_order_relaxed); });
      }
    });
  }
  for (std::thread& producer : producers) {
    producer.join();
  }
  pool.WaitIdle();
  long expected = 0;
  for (int p = 0; p < 4; ++p) {
    for (int i = 0; i < 100; ++i) {
      expected += p * 1000 + i;
    }
  }
  EXPECT_EQ(sum.load(), expected);
}

}  // namespace
}  // namespace cmif
