#include "src/base/status.h"

#include <gtest/gtest.h>

namespace cmif {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFoundError("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing thing");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  EXPECT_EQ(InvalidArgumentError("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(AlreadyExistsError("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(FailedPreconditionError("").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(UnimplementedError("").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(DataLossError("").code(), StatusCode::kDataLoss);
  EXPECT_EQ(ResourceExhaustedError("").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(InfeasibleError("").code(), StatusCode::kInfeasible);
  EXPECT_EQ(InternalError("").code(), StatusCode::kInternal);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::Ok(), Status());
  EXPECT_EQ(NotFoundError("x"), NotFoundError("x"));
  EXPECT_FALSE(NotFoundError("x") == NotFoundError("y"));
  EXPECT_FALSE(NotFoundError("x") == InvalidArgumentError("x"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = NotFoundError("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("payload");
  std::string taken = std::move(v).value();
  EXPECT_EQ(taken, "payload");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v = std::string("abc");
  EXPECT_EQ(v->size(), 3u);
}

namespace helpers {
Status FailIf(bool fail) {
  if (fail) {
    return InvalidArgumentError("asked to fail");
  }
  return Status::Ok();
}

Status Chained(bool fail) {
  CMIF_RETURN_IF_ERROR(FailIf(fail));
  return Status::Ok();
}

StatusOr<int> MaybeInt(bool fail) {
  if (fail) {
    return DataLossError("no int");
  }
  return 7;
}

StatusOr<int> Doubled(bool fail) {
  CMIF_ASSIGN_OR_RETURN(int v, MaybeInt(fail));
  return v * 2;
}
}  // namespace helpers

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(helpers::Chained(false).ok());
  EXPECT_EQ(helpers::Chained(true).code(), StatusCode::kInvalidArgument);
}

TEST(StatusMacrosTest, AssignOrReturnBindsAndPropagates) {
  auto ok = helpers::Doubled(false);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 14);
  auto bad = helpers::Doubled(true);
  EXPECT_EQ(bad.status().code(), StatusCode::kDataLoss);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kInfeasible), "INFEASIBLE");
}

}  // namespace
}  // namespace cmif
