#include "src/base/random.h"

#include <gtest/gtest.h>

#include <set>

namespace cmif {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.Next() != b.Next()) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 28);
}

TEST(RngTest, NextBelowStaysInBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextBelowCoversRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) {
    seen.insert(rng.NextBelow(5));
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 300; ++i) {
    std::int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values appear
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  // The mean of 1000 uniform draws concentrates near 0.5.
  EXPECT_NEAR(sum / 1000, 0.5, 0.06);
}

TEST(RngTest, NextBoolEdges) {
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(RngTest, NextBoolRoughlyFair) {
  Rng rng(19);
  int heads = 0;
  for (int i = 0; i < 2000; ++i) {
    heads += rng.NextBool() ? 1 : 0;
  }
  EXPECT_NEAR(heads, 1000, 90);
}

}  // namespace
}  // namespace cmif
