#include "src/base/logging.h"

#include <gtest/gtest.h>

namespace cmif {
namespace {

TEST(LogLevelTagTest, OneLetterPerLevel) {
  EXPECT_EQ(LogLevelTag(LogLevel::kDebug), "D");
  EXPECT_EQ(LogLevelTag(LogLevel::kInfo), "I");
  EXPECT_EQ(LogLevelTag(LogLevel::kWarning), "W");
  EXPECT_EQ(LogLevelTag(LogLevel::kError), "E");
}

TEST(ScopedLogCaptureTest, CapturesLinesAboveThreshold) {
  ScopedLogCapture capture;
  CMIF_LOG(kWarning) << "captured " << 7;
  CMIF_LOG(kError) << "also captured";
  ASSERT_EQ(capture.size(), 2u);
  auto lines = capture.lines();
  EXPECT_EQ(lines[0].level, LogLevel::kWarning);
  EXPECT_EQ(lines[0].message, "captured 7");
  EXPECT_EQ(lines[0].file, "logging_test.cc");
  EXPECT_GT(lines[0].line, 0);
  EXPECT_TRUE(capture.Contains("also captured"));
  EXPECT_FALSE(capture.Contains("never logged"));
}

TEST(ScopedLogCaptureTest, ThresholdStillFilters) {
  ScopedLogCapture capture;
  ASSERT_EQ(GetLogThreshold(), LogLevel::kWarning);
  CMIF_LOG(kDebug) << "below threshold";
  CMIF_LOG(kInfo) << "also below";
  EXPECT_EQ(capture.size(), 0u);
  SetLogThreshold(LogLevel::kDebug);
  CMIF_LOG(kDebug) << "now visible";
  SetLogThreshold(LogLevel::kWarning);
  EXPECT_TRUE(capture.Contains("now visible"));
}

TEST(ScopedLogCaptureTest, NestedCapturesRestoreThePreviousSink) {
  ScopedLogCapture outer;
  {
    ScopedLogCapture inner;
    CMIF_LOG(kWarning) << "inner only";
    EXPECT_EQ(inner.size(), 1u);
  }
  CMIF_LOG(kWarning) << "outer again";
  EXPECT_FALSE(outer.Contains("inner only"));
  EXPECT_TRUE(outer.Contains("outer again"));
}

TEST(SetLogSinkTest, NullRestoresDefaultAndReturnsPrevious) {
  ScopedLogCapture capture;
  LogSink* previous = SetLogSink(nullptr);  // back to stderr default
  EXPECT_EQ(previous, &capture);
  // Reinstall so the capture's destructor restores cleanly.
  SetLogSink(&capture);
}

}  // namespace
}  // namespace cmif
