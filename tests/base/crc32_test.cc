#include "src/base/crc32.h"

#include <gtest/gtest.h>

#include <string>

namespace cmif {
namespace {

TEST(Crc32Test, CheckValue) {
  // The canonical CRC-32/ISO-HDLC check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
}

TEST(Crc32Test, EmptyInputIsZero) { EXPECT_EQ(Crc32(""), 0u); }

TEST(Crc32Test, KnownVectors) {
  EXPECT_EQ(Crc32("a"), 0xE8B7BE43u);
  EXPECT_EQ(Crc32("abc"), 0x352441C2u);
  EXPECT_EQ(Crc32("The quick brown fox jumps over the lazy dog"), 0x414FA339u);
}

TEST(Crc32Test, SensitiveToSingleBitFlips) {
  std::string payload(256, 'x');
  std::uint32_t clean = Crc32(payload);
  for (std::size_t i : {std::size_t{0}, payload.size() / 2, payload.size() - 1}) {
    std::string mutated = payload;
    mutated[i] = static_cast<char>(mutated[i] ^ 1);
    EXPECT_NE(Crc32(mutated), clean) << "flip at " << i;
  }
}

TEST(Crc32Test, IncrementalUpdateMatchesOneShot) {
  std::string text = "split across several update calls";
  std::uint32_t crc = 0;
  crc = Crc32Update(crc, text.substr(0, 5));
  crc = Crc32Update(crc, text.substr(5, 11));
  crc = Crc32Update(crc, "");
  crc = Crc32Update(crc, text.substr(16));
  EXPECT_EQ(crc, Crc32(text));
}

}  // namespace
}  // namespace cmif
