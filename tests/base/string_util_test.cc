#include "src/base/string_util.h"

#include <gtest/gtest.h>

#include "src/base/random.h"

namespace cmif {
namespace {

TEST(SplitStringTest, PreservesEmptyFields) {
  EXPECT_EQ(SplitString("a//b", '/'), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(SplitString("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(SplitString("x", ','), (std::vector<std::string>{"x"}));
  EXPECT_EQ(SplitString(",x,", ','), (std::vector<std::string>{"", "x", ""}));
}

TEST(TrimStringTest, StripsBothEnds) {
  EXPECT_EQ(TrimString("  abc\t\n"), "abc");
  EXPECT_EQ(TrimString("abc"), "abc");
  EXPECT_EQ(TrimString("   "), "");
  EXPECT_EQ(TrimString(""), "");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("ar", "bar"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(QuoteStringTest, EscapesSpecials) {
  EXPECT_EQ(QuoteString("plain"), "\"plain\"");
  EXPECT_EQ(QuoteString("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(QuoteString("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(QuoteString("a\nb"), "\"a\\nb\"");
}

TEST(QuoteStringTest, UnescapeInverts) {
  for (const std::string s : {"plain", "with \"quotes\"", "back\\slash", "new\nline", ""}) {
    std::string quoted = QuoteString(s);
    // Strip the surrounding quotes before unescaping.
    EXPECT_EQ(UnescapeString(std::string_view(quoted).substr(1, quoted.size() - 2)), s);
  }
}

TEST(IsValidIdTest, AcceptsWordForms) {
  EXPECT_TRUE(IsValidId("abc"));
  EXPECT_TRUE(IsValidId("_x"));
  EXPECT_TRUE(IsValidId("a-b.c_9"));
}

TEST(IsValidIdTest, RejectsBadForms) {
  EXPECT_FALSE(IsValidId(""));
  EXPECT_FALSE(IsValidId("9abc"));   // digit first
  EXPECT_FALSE(IsValidId("-abc"));   // dash first
  EXPECT_FALSE(IsValidId("a b"));    // embedded space (section 5.2)
  EXPECT_FALSE(IsValidId("a/b"));
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.0 / 3), "0.33");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(JoinStringsTest, JoinsWithSeparator) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, "/"), "a/b/c");
  EXPECT_EQ(JoinStrings({}, "/"), "");
  EXPECT_EQ(JoinStrings({"solo"}, ", "), "solo");
}

TEST(Base64Test, KnownVectors) {
  // RFC 4648 test vectors.
  EXPECT_EQ(Base64Encode(""), "");
  EXPECT_EQ(Base64Encode("f"), "Zg==");
  EXPECT_EQ(Base64Encode("fo"), "Zm8=");
  EXPECT_EQ(Base64Encode("foo"), "Zm9v");
  EXPECT_EQ(Base64Encode("foob"), "Zm9vYg==");
  EXPECT_EQ(Base64Encode("fooba"), "Zm9vYmE=");
  EXPECT_EQ(Base64Encode("foobar"), "Zm9vYmFy");
}

TEST(Base64Test, DecodeKnownVectors) {
  auto d = Base64Decode("Zm9vYmFy");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, "foobar");
}

TEST(Base64Test, RejectsBadInput) {
  EXPECT_FALSE(Base64Decode("abc").ok());       // not multiple of 4
  EXPECT_FALSE(Base64Decode("ab!@").ok());      // bad alphabet
  EXPECT_FALSE(Base64Decode("=abc").ok());      // misplaced padding
  EXPECT_FALSE(Base64Decode("a=bc").ok());      // data after padding
}

// Property: decode(encode(x)) == x for random binary blobs.
class Base64RoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(Base64RoundTrip, RandomBlob) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 1);
  std::size_t length = static_cast<std::size_t>(rng.NextBelow(512));
  std::string blob;
  blob.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    blob.push_back(static_cast<char>(rng.NextBelow(256)));
  }
  auto decoded = Base64Decode(Base64Encode(blob));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, blob);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Base64RoundTrip, ::testing::Range(0, 20));

}  // namespace
}  // namespace cmif
