// LEB128 varints: canonical encoding, full round trips, and the structured
// kDataLoss contract on truncated or overlength input.
#include "src/base/varint.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace cmif {
namespace {

std::string Encode(std::uint64_t value) {
  std::string out;
  PutVarint64(out, value);
  return out;
}

TEST(VarintTest, KnownEncodings) {
  EXPECT_EQ(Encode(0), std::string("\x00", 1));
  EXPECT_EQ(Encode(1), "\x01");
  EXPECT_EQ(Encode(127), "\x7f");
  EXPECT_EQ(Encode(128), std::string("\x80\x01", 2));
  EXPECT_EQ(Encode(300), std::string("\xac\x02", 2));
  EXPECT_EQ(Encode(std::numeric_limits<std::uint64_t>::max()).size(), kMaxVarint64Bytes);
}

TEST(VarintTest, ReturnsBytesAppended) {
  std::string out = "prefix";
  EXPECT_EQ(PutVarint64(out, 0), 1u);
  EXPECT_EQ(PutVarint64(out, 1u << 14), 3u);
  EXPECT_EQ(out.size(), 6u + 1u + 3u);
}

TEST(VarintTest, RoundTripsBoundaryValues) {
  std::vector<std::uint64_t> values = {0, 1, 127, 128, 16383, 16384, 2097151, 2097152};
  for (int shift = 0; shift < 64; ++shift) {
    values.push_back(std::uint64_t{1} << shift);
    values.push_back((std::uint64_t{1} << shift) - 1);
  }
  values.push_back(std::numeric_limits<std::uint64_t>::max());
  for (std::uint64_t value : values) {
    std::string bytes = Encode(value);
    std::size_t pos = 0;
    auto decoded = GetVarint64(bytes, &pos);
    ASSERT_TRUE(decoded.ok()) << value << ": " << decoded.status();
    EXPECT_EQ(*decoded, value);
    EXPECT_EQ(pos, bytes.size());
  }
}

TEST(VarintTest, DecodesMidBufferAndAdvances) {
  std::string bytes = "xy";
  PutVarint64(bytes, 300);
  PutVarint64(bytes, 7);
  std::size_t pos = 2;
  auto first = GetVarint64(bytes, &pos);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, 300u);
  auto second = GetVarint64(bytes, &pos);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, 7u);
  EXPECT_EQ(pos, bytes.size());
}

TEST(VarintTest, TruncationIsDataLossAndPosUnmoved) {
  std::string bytes = Encode(std::uint64_t{1} << 40);
  for (std::size_t cut = 0; cut + 1 < bytes.size(); ++cut) {
    std::size_t pos = 0;
    auto result = GetVarint64(bytes.substr(0, cut), &pos);
    EXPECT_EQ(result.status().code(), StatusCode::kDataLoss) << "cut=" << cut;
    EXPECT_EQ(pos, 0u);
  }
}

TEST(VarintTest, OverlengthEncodingIsDataLoss) {
  // Eleven continuation bytes never terminate a uint64 varint.
  std::string bytes(kMaxVarint64Bytes + 1, '\x80');
  std::size_t pos = 0;
  auto result = GetVarint64(bytes, &pos);
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
}

TEST(VarintTest, EmptyInputIsDataLoss) {
  std::size_t pos = 0;
  EXPECT_EQ(GetVarint64("", &pos).status().code(), StatusCode::kDataLoss);
}

}  // namespace
}  // namespace cmif
