#include "src/obs/json.h"

#include <gtest/gtest.h>

#include <limits>

namespace cmif {
namespace obs {
namespace {

TEST(JsonQuoteTest, EscapesControlAndSpecialCharacters) {
  EXPECT_EQ(JsonQuote("plain"), "\"plain\"");
  EXPECT_EQ(JsonQuote("say \"hi\""), "\"say \\\"hi\\\"\"");
  EXPECT_EQ(JsonQuote("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(JsonQuote("line\nbreak"), "\"line\\nbreak\"");
  EXPECT_EQ(JsonQuote(std::string_view("\x01", 1)), "\"\\u0001\"");
}

TEST(JsonNumberTest, IntegersRenderWithoutFraction) {
  EXPECT_EQ(JsonNumber(3.0), "3");
  EXPECT_EQ(JsonNumber(std::int64_t{-42}), "-42");
  EXPECT_EQ(JsonNumber(0.0), "0");
}

TEST(JsonNumberTest, NonFiniteBecomesNull) {
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonNumberTest, DoublesRoundTrip) {
  std::string text = JsonNumber(1.5);
  EXPECT_EQ(text, "1.5");
  auto parsed = ParseJson(JsonNumber(0.1));
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed->number(), 0.1);
}

TEST(ParseJsonTest, ParsesScalars) {
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_TRUE(ParseJson("true")->boolean());
  EXPECT_FALSE(ParseJson("false")->boolean());
  EXPECT_DOUBLE_EQ(ParseJson("-2.5e2")->number(), -250.0);
  EXPECT_EQ(ParseJson("\"a\\u0041b\"")->string(), "aAb");
}

TEST(ParseJsonTest, ParsesNestedStructure) {
  auto v = ParseJson(R"({"a":[1,2,{"b":"c"}],"d":null})");
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v->is_object());
  const JsonValue* a = v->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array().size(), 3u);
  EXPECT_DOUBLE_EQ(a->array()[0].number(), 1.0);
  const JsonValue* b = a->array()[2].Find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->string(), "c");
  EXPECT_TRUE(v->Find("d")->is_null());
  EXPECT_EQ(v->Find("missing"), nullptr);
}

TEST(ParseJsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("1 trailing").ok());
  EXPECT_FALSE(ParseJson("nul").ok());
}

TEST(ParseJsonTest, RoundTripsThroughToString) {
  const std::string text = R"({"name":"x","values":[1,2.5,true,null],"nested":{"k":"v"}})";
  auto v = ParseJson(text);
  ASSERT_TRUE(v.ok());
  auto again = ParseJson(v->ToString());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->ToString(), v->ToString());
}

TEST(JsonValueTest, FactoriesBuildWhatTheyClaim) {
  JsonValue object = JsonValue::Object(
      {{"n", JsonValue::Number(7)}, {"s", JsonValue::String("hi")}});
  EXPECT_TRUE(object.is_object());
  EXPECT_DOUBLE_EQ(object.Find("n")->number(), 7.0);
  EXPECT_EQ(object.Find("s")->string(), "hi");
  EXPECT_EQ(object.ToString(), R"({"n":7,"s":"hi"})");
}

}  // namespace
}  // namespace obs
}  // namespace cmif
