#include "src/obs/export.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <vector>

#include "src/base/logging.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"

namespace cmif {
namespace obs {
namespace {

// Splits JSONL text into parsed objects, failing the test on a bad line.
std::vector<JsonValue> ParseJsonl(const std::string& text) {
  std::vector<JsonValue> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    auto parsed = ParseJson(line);
    EXPECT_TRUE(parsed.ok()) << line;
    if (parsed.ok()) {
      lines.push_back(*std::move(parsed));
    }
  }
  return lines;
}

TEST(ChromeTraceTest, RoundTripsThroughTheJsonParser) {
#ifdef CMIF_OBS_DISABLED
  GTEST_SKIP() << "probes compiled out (-DCMIF_OBS=OFF)";
#endif

  ResetAll();
  {
    ScopedEnable enable;
    Span outer("outer");
    outer.Annotate("k", "v");
    { Span inner("inner"); }
    int track = TimelineTrack("channel:video");
    EmitTimelineEvent(track, "clip", 0.0, 1000.0);
  }
  auto trace = ParseJson(ChromeTraceJson());
  ASSERT_TRUE(trace.ok());
  const JsonValue* unit = trace->Find("displayTimeUnit");
  ASSERT_NE(unit, nullptr);
  EXPECT_EQ(unit->string(), "ms");
  const JsonValue* events = trace->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  bool saw_process_meta = false;
  bool saw_outer = false;
  bool saw_inner_with_parent = false;
  bool saw_timeline_clip = false;
  std::uint64_t outer_id = 0;
  for (const JsonValue& event : events->array()) {
    const JsonValue* ph = event.Find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->string() == "M") {
      const JsonValue* name = event.Find("name");
      if (name != nullptr && name->string() == "process_name") {
        saw_process_meta = true;
      }
      continue;
    }
    EXPECT_EQ(ph->string(), "X");
    const JsonValue* name = event.Find("name");
    ASSERT_NE(name, nullptr);
    if (name->string() == "outer") {
      saw_outer = true;
      EXPECT_DOUBLE_EQ(event.Find("pid")->number(), kProcessPid);
      EXPECT_GE(event.Find("dur")->number(), 0.0);
      const JsonValue* args = event.Find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_EQ(args->Find("k")->string(), "v");
      outer_id = static_cast<std::uint64_t>(args->Find("span_id")->number());
    }
  }
  // Second pass now that outer_id is known.
  for (const JsonValue& event : events->array()) {
    const JsonValue* name = event.Find("name");
    if (name == nullptr) {
      continue;
    }
    if (name->string() == "inner") {
      const JsonValue* args = event.Find("args");
      ASSERT_NE(args, nullptr);
      saw_inner_with_parent =
          static_cast<std::uint64_t>(args->Find("parent_id")->number()) == outer_id;
    }
    if (name->string() == "clip") {
      saw_timeline_clip = event.Find("pid")->number() == kTimelinePid;
    }
  }
  EXPECT_TRUE(saw_process_meta);
  EXPECT_TRUE(saw_outer);
  EXPECT_TRUE(saw_inner_with_parent);
  EXPECT_TRUE(saw_timeline_clip);
  ResetAll();
}

TEST(MetricsJsonlTest, EmitsParseableLinesWithPercentiles) {
  MetricsRegistry::Instance().ResetValues();
  GetCounter("export.test.counter").Add(12);
  GetGauge("export.test.gauge").Set(-4);
  Histogram& histogram = GetHistogram("export.test.histogram");
  for (int i = 0; i < 100; ++i) {
    histogram.Record(1.0 + i * 0.1);
  }
  auto lines = ParseJsonl(MetricsJsonl());
  bool saw_counter = false;
  bool saw_gauge = false;
  bool saw_histogram = false;
  for (const JsonValue& line : lines) {
    const JsonValue* name = line.Find("name");
    const JsonValue* type = line.Find("type");
    ASSERT_NE(name, nullptr);
    ASSERT_NE(type, nullptr);
    if (name->string() == "export.test.counter") {
      saw_counter = true;
      EXPECT_EQ(type->string(), "counter");
      EXPECT_DOUBLE_EQ(line.Find("value")->number(), 12.0);
    }
    if (name->string() == "export.test.gauge") {
      saw_gauge = true;
      EXPECT_EQ(type->string(), "gauge");
      EXPECT_DOUBLE_EQ(line.Find("value")->number(), -4.0);
    }
    if (name->string() == "export.test.histogram") {
      saw_histogram = true;
      EXPECT_EQ(type->string(), "histogram");
      EXPECT_DOUBLE_EQ(line.Find("count")->number(), 100.0);
      EXPECT_GT(line.Find("p50")->number(), 0.0);
      EXPECT_LE(line.Find("p50")->number(), line.Find("p99")->number());
      EXPECT_DOUBLE_EQ(line.Find("min")->number(), 1.0);
      ASSERT_NE(line.Find("buckets"), nullptr);
      EXPECT_TRUE(line.Find("buckets")->is_array());
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_gauge);
  EXPECT_TRUE(saw_histogram);
  MetricsRegistry::Instance().ResetValues();
}

TEST(TextReportTest, MentionsNonZeroInstruments) {
  MetricsRegistry::Instance().ResetValues();
  GetCounter("export.test.text").Add(3);
  std::string report = TextReport();
  EXPECT_NE(report.find("export.test.text"), std::string::npos);
  MetricsRegistry::Instance().ResetValues();
}

TEST(JsonlLogSinkTest, RendersLogLinesAsJson) {
  std::ostringstream out;
  JsonlLogSink sink(out);
  LogSink* previous = SetLogSink(&sink);
  CMIF_LOG(kWarning) << "structured " << 42;
  SetLogSink(previous);
  auto lines = ParseJsonl(out.str());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].Find("type")->string(), "log");
  EXPECT_EQ(lines[0].Find("level")->string(), "W");
  EXPECT_EQ(lines[0].Find("message")->string(), "structured 42");
  EXPECT_GT(lines[0].Find("line")->number(), 0.0);
}

TEST(WriteExportersTest, WriteFilesToDisk) {
  ResetAll();
  {
    ScopedEnable enable;
    Span span("written");
  }
  GetCounter("export.test.write").Add(1);
  std::string trace_path = ::testing::TempDir() + "/obs_trace.json";
  std::string metrics_path = ::testing::TempDir() + "/obs_metrics.jsonl";
  ASSERT_TRUE(WriteChromeTrace(trace_path).ok());
  ASSERT_TRUE(WriteMetricsJsonl(metrics_path).ok());
  std::ifstream trace_file(trace_path);
  std::stringstream trace_text;
  trace_text << trace_file.rdbuf();
  EXPECT_TRUE(ParseJson(trace_text.str()).ok());
  EXPECT_FALSE(WriteChromeTrace("/nonexistent-dir/x.json").ok());
  MetricsRegistry::Instance().ResetValues();
  ResetAll();
}

}  // namespace
}  // namespace obs
}  // namespace cmif
