#include "src/obs/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/obs/obs.h"

namespace cmif {
namespace obs {
namespace {

TEST(CounterTest, AddsAndResets) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0);
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.value(), 42);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge gauge;
  gauge.Set(10);
  gauge.Set(-3);
  EXPECT_EQ(gauge.value(), -3);
}

TEST(HistogramTest, EmptyHistogramIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
}

TEST(HistogramTest, SingleValueIsReportedExactly) {
  Histogram h;
  h.Record(3.7);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 3.7);
  EXPECT_DOUBLE_EQ(h.max(), 3.7);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 3.7);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 3.7);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 3.7);
  EXPECT_DOUBLE_EQ(h.mean(), 3.7);
}

TEST(HistogramTest, PercentilesOrderAndBracketTheData) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) {
    h.Record(i * 0.1);  // 0.1 .. 100 ms
  }
  double p50 = h.Percentile(50);
  double p95 = h.Percentile(95);
  double p99 = h.Percentile(99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GE(p50, h.min());
  EXPECT_LE(p99, h.max());
  // Log-bucket interpolation: p50 of a uniform 0.1..100 spread lands within
  // a factor of two of the true median.
  EXPECT_GT(p50, 25.0);
  EXPECT_LT(p50, 100.0);
  EXPECT_GT(p99, 50.0);
}

TEST(HistogramTest, NegativeAndNaNInputsAreSafe) {
  Histogram h;
  h.Record(-5.0);  // clamped to 0
  h.Record(std::numeric_limits<double>::quiet_NaN());  // skipped
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
}

TEST(HistogramTest, BucketBoundsAreMonotonic) {
  for (std::size_t i = 0; i + 1 < Histogram::kBucketCount; ++i) {
    EXPECT_LT(Histogram::BucketLowerBound(i), Histogram::BucketUpperBound(i));
    EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(i), Histogram::BucketLowerBound(i + 1));
  }
}

TEST(HistogramTest, ResetRestoresEmptyState) {
  Histogram h;
  h.Record(5.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 0.0);
  h.Record(2.0);
  EXPECT_DOUBLE_EQ(h.min(), 2.0);
}

TEST(MetricsRegistryTest, InstrumentsKeepStableAddresses) {
  Counter& a = GetCounter("test.stable");
  a.Add(5);
  MetricsRegistry::Instance().ResetValues();
  Counter& b = GetCounter("test.stable");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 0);
}

TEST(MetricsRegistryTest, VisitSeesRegisteredInstruments) {
  GetCounter("test.visit.counter").Add(3);
  GetGauge("test.visit.gauge").Set(7);
  GetHistogram("test.visit.histogram").Record(1.0);
  bool saw_counter = false;
  bool saw_gauge = false;
  bool saw_histogram = false;
  MetricsRegistry::Instance().VisitCounters(
      [&](const std::string& name, const Counter& counter) {
        if (name == "test.visit.counter") {
          saw_counter = true;
          EXPECT_EQ(counter.value(), 3);
        }
      });
  MetricsRegistry::Instance().VisitGauges([&](const std::string& name, const Gauge& gauge) {
    saw_gauge |= name == "test.visit.gauge" && gauge.value() == 7;
  });
  MetricsRegistry::Instance().VisitHistograms(
      [&](const std::string& name, const Histogram& histogram) {
        saw_histogram |= name == "test.visit.histogram" && histogram.count() == 1;
      });
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_gauge);
  EXPECT_TRUE(saw_histogram);
  MetricsRegistry::Instance().ResetValues();
}

TEST(MetricsRegistryTest, ConcurrentCounterHammerLosesNothing) {
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  Counter& counter = GetCounter("test.hammer.counter");
  Histogram& histogram = GetHistogram("test.hammer.histogram");
  counter.Reset();
  histogram.Reset();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, &histogram, t] {
      for (int i = 0; i < kIncrements; ++i) {
        counter.Add();
        histogram.Record(0.001 * ((t * kIncrements + i) % 997));
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter.value(), kThreads * kIncrements);
  EXPECT_EQ(histogram.count(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
  EXPECT_DOUBLE_EQ(histogram.min(), 0.0);
  EXPECT_DOUBLE_EQ(histogram.max(), 0.001 * 996);
  MetricsRegistry::Instance().ResetValues();
}

TEST(ScopedLatencyTest, RecordsOnlyWhenEnabled) {
#ifdef CMIF_OBS_DISABLED
  GTEST_SKIP() << "probes compiled out (-DCMIF_OBS=OFF)";
#endif

  Histogram& histogram = GetHistogram("test.scoped_latency");
  histogram.Reset();
  { ScopedLatency latency("test.scoped_latency"); }
  EXPECT_EQ(histogram.count(), 0u);  // obs disabled by default
  {
    ScopedEnable enable;
    ScopedLatency latency("test.scoped_latency");
  }
  EXPECT_EQ(histogram.count(), 1u);
  MetricsRegistry::Instance().ResetValues();
  ResetAll();
}

}  // namespace
}  // namespace obs
}  // namespace cmif
