// The flight recorder's retention and safety contract: last-N retention
// under wraparound, lock-free writes readable while other threads record,
// and the DumpToSpans postmortem shape.
#include "src/obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/obs.h"
#include "src/obs/trace.h"

namespace cmif {
namespace obs {
namespace {

class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FlightRecorder::SetEnabled(true);
    FlightRecorder::Reset();
  }
  void TearDown() override {
    FlightRecorder::SetEnabled(false);
    FlightRecorder::Reset();
    ResetAll();
  }
};

TEST_F(FlightRecorderTest, DisabledRecordsNothing) {
  FlightRecorder::SetEnabled(false);
  FlightRecorder::Record(FlightRecorder::EventKind::kSpanBegin, 1, 2, "ghost");
  EXPECT_TRUE(FlightRecorder::Snapshot().empty());
}

TEST_F(FlightRecorderTest, RecordsAppearInSnapshot) {
  FlightRecorder::Record(FlightRecorder::EventKind::kSpanBegin, 7, 1, "compile");
  FlightRecorder::Record(FlightRecorder::EventKind::kAnnotation, 7, 2, "document");
  FlightRecorder::Record(FlightRecorder::EventKind::kSpanEnd, 7, 1, "");
  auto events = FlightRecorder::Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, FlightRecorder::EventKind::kSpanBegin);
  EXPECT_EQ(events[0].trace_id, 7u);
  EXPECT_EQ(events[0].span_id, 1u);
  EXPECT_STREQ(events[0].name, "compile");
  EXPECT_EQ(events[1].kind, FlightRecorder::EventKind::kAnnotation);
  EXPECT_EQ(events[2].kind, FlightRecorder::EventKind::kSpanEnd);
  // Time moves forward within one thread's recording.
  EXPECT_LE(events[0].time_us, events[2].time_us);
}

TEST_F(FlightRecorderTest, LongNamesAreTruncatedNotCorrupted) {
  std::string long_name(100, 'x');
  FlightRecorder::Record(FlightRecorder::EventKind::kSpanBegin, 1, 1, long_name);
  auto events = FlightRecorder::Snapshot();
  ASSERT_EQ(events.size(), 1u);
  std::string got = events[0].name;
  EXPECT_EQ(got, std::string(FlightRecorder::kNameBytes, 'x'));
}

TEST_F(FlightRecorderTest, WraparoundKeepsTheLastN) {
  const std::size_t total = FlightRecorder::kCapacity * 3;
  for (std::size_t i = 0; i < total; ++i) {
    FlightRecorder::Record(FlightRecorder::EventKind::kAnnotation, /*trace_id=*/i,
                           /*span_id=*/i, "evt");
  }
  auto events = FlightRecorder::Snapshot();
  ASSERT_EQ(events.size(), static_cast<std::size_t>(FlightRecorder::kCapacity));
  // The retained window is exactly the most recent kCapacity events.
  std::vector<std::uint64_t> ids;
  for (const auto& event : events) {
    ids.push_back(event.span_id);
  }
  std::sort(ids.begin(), ids.end());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(ids[i], total - FlightRecorder::kCapacity + i);
  }
}

TEST_F(FlightRecorderTest, UnsampledSpansStillLeaveBreadcrumbs) {
#ifdef CMIF_OBS_DISABLED
  GTEST_SKIP() << "probes compiled out (-DCMIF_OBS=OFF)";
#endif

  // An unsampled trace context suppresses the span record — but the flight
  // recorder still gets its begin/end breadcrumbs: that is what makes a
  // postmortem possible for unsampled (cheap) requests.
  ScopedEnable enable;
  TraceContext ctx;
  ctx.trace_id = 99;
  ctx.sampled = false;
  {
    ScopedTrace scoped(ctx);
    Span span("breadcrumb-only");
  }
  EXPECT_TRUE(SnapshotSpans().empty());
  auto events = FlightRecorder::Snapshot();
  bool found = false;
  for (const auto& event : events) {
    found |= event.kind == FlightRecorder::EventKind::kSpanBegin &&
             event.trace_id == 99u && std::string(event.name) == "breadcrumb-only";
  }
  EXPECT_TRUE(found);
}

TEST_F(FlightRecorderTest, DumpToSpansShapesThePostmortem) {
  FlightRecorder::Record(FlightRecorder::EventKind::kSpanBegin, 5, 1, "doomed");
  ASSERT_GT(FlightRecorder::DumpToSpans("test.breaker-open"), 0u);
  std::vector<SpanRecord> spans;
  for (const auto& span : SnapshotSpans()) {
    if (span.pid == kFlightPid) {
      spans.push_back(span);
    }
  }
  ASSERT_FALSE(spans.empty());
  for (const auto& span : spans) {
    EXPECT_EQ(span.pid, kFlightPid);
    EXPECT_EQ(span.duration_us, 0.0);
    bool has_reason = false;
    for (const auto& [key, value] : span.args) {
      has_reason |= key == "reason" && value.find("test.breaker-open") != std::string::npos;
    }
    EXPECT_TRUE(has_reason);
  }
}

TEST_F(FlightRecorderTest, ConcurrentWritersAndSnapshotsAreSafe) {
  // Hammer the ring from several writer threads while a reader snapshots —
  // the seqlock must never yield a torn event (TSan row verifies the memory
  // ordering; here we check values are internally consistent).
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&stop, t] {
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        // span_id mirrors trace_id so a torn read is detectable.
        std::uint64_t value = (static_cast<std::uint64_t>(t) << 32) | (i & 0xffffffffu);
        FlightRecorder::Record(FlightRecorder::EventKind::kAnnotation, value, value, "w");
        ++i;
      }
    });
  }
  for (int round = 0; round < 50; ++round) {
    auto events = FlightRecorder::Snapshot();
    for (const auto& event : events) {
      EXPECT_EQ(event.trace_id, event.span_id);  // torn slots would diverge
    }
  }
  stop.store(true);
  for (auto& writer : writers) {
    writer.join();
  }
}

TEST_F(FlightRecorderTest, ResetEmptiesAQuiescedRecorder) {
  FlightRecorder::Record(FlightRecorder::EventKind::kAnnotation, 1, 1, "x");
  EXPECT_FALSE(FlightRecorder::Snapshot().empty());
  FlightRecorder::Reset();
  EXPECT_TRUE(FlightRecorder::Snapshot().empty());
}

}  // namespace
}  // namespace obs
}  // namespace cmif
