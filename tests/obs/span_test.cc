#include "src/obs/obs.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

namespace cmif {
namespace obs {
namespace {

const SpanRecord* FindSpan(const std::vector<SpanRecord>& spans, std::string_view name) {
  auto it = std::find_if(spans.begin(), spans.end(),
                         [&](const SpanRecord& s) { return s.name == name; });
  return it == spans.end() ? nullptr : &*it;
}

TEST(SpanTest, DisabledSpansRecordNothing) {
  ResetAll();
  ASSERT_FALSE(Enabled());
  {
    Span span("ghost");
    span.Annotate("k", "v");
    EXPECT_FALSE(span.active());
  }
  EXPECT_TRUE(SnapshotSpans().empty());
}

TEST(SpanTest, NestedSpansLinkParentIds) {
#ifdef CMIF_OBS_DISABLED
  GTEST_SKIP() << "probes compiled out (-DCMIF_OBS=OFF)";
#endif

  ResetAll();
  ScopedEnable enable;
  {
    Span outer("outer");
    EXPECT_TRUE(outer.active());
    {
      Span inner("inner");
      { Span leaf("leaf"); }
    }
    Span sibling("sibling");
  }
  auto spans = SnapshotSpans();
  const SpanRecord* outer = FindSpan(spans, "outer");
  const SpanRecord* inner = FindSpan(spans, "inner");
  const SpanRecord* leaf = FindSpan(spans, "leaf");
  const SpanRecord* sibling = FindSpan(spans, "sibling");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(leaf, nullptr);
  ASSERT_NE(sibling, nullptr);
  EXPECT_EQ(outer->parent_id, 0u);
  EXPECT_EQ(inner->parent_id, outer->id);
  EXPECT_EQ(leaf->parent_id, inner->id);
  EXPECT_EQ(sibling->parent_id, outer->id);
  ResetAll();
}

TEST(SpanTest, SpanTimesNestWithinParent) {
#ifdef CMIF_OBS_DISABLED
  GTEST_SKIP() << "probes compiled out (-DCMIF_OBS=OFF)";
#endif

  ResetAll();
  ScopedEnable enable;
  {
    Span outer("outer");
    { Span inner("inner"); }
  }
  auto spans = SnapshotSpans();
  const SpanRecord* outer = FindSpan(spans, "outer");
  const SpanRecord* inner = FindSpan(spans, "inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_GE(inner->start_us, outer->start_us);
  EXPECT_LE(inner->start_us + inner->duration_us,
            outer->start_us + outer->duration_us + 1.0);
  ResetAll();
}

TEST(SpanTest, AnnotationsArePreRenderedJson) {
#ifdef CMIF_OBS_DISABLED
  GTEST_SKIP() << "probes compiled out (-DCMIF_OBS=OFF)";
#endif

  ResetAll();
  ScopedEnable enable;
  {
    Span span("annotated");
    span.Annotate("text", "hello");
    span.Annotate("count", std::size_t{7});
    span.Annotate("ratio", 0.5);
    span.Annotate("flag", true);
  }
  auto spans = SnapshotSpans();
  const SpanRecord* span = FindSpan(spans, "annotated");
  ASSERT_NE(span, nullptr);
  ASSERT_EQ(span->args.size(), 4u);
  EXPECT_EQ(span->args[0].first, "text");
  EXPECT_EQ(span->args[0].second, "\"hello\"");
  EXPECT_EQ(span->args[1].second, "7");
  EXPECT_EQ(span->args[2].second, "0.5");
  EXPECT_EQ(span->args[3].second, "1");
  ResetAll();
}

TEST(SpanTest, ThreadsGetDistinctTids) {
#ifdef CMIF_OBS_DISABLED
  GTEST_SKIP() << "probes compiled out (-DCMIF_OBS=OFF)";
#endif

  ResetAll();
  ScopedEnable enable;
  { Span here("main-thread"); }
  std::thread other([] { Span there("other-thread"); });
  other.join();
  auto spans = SnapshotSpans();
  const SpanRecord* here = FindSpan(spans, "main-thread");
  const SpanRecord* there = FindSpan(spans, "other-thread");
  ASSERT_NE(here, nullptr);
  ASSERT_NE(there, nullptr);
  EXPECT_NE(here->tid, there->tid);
  EXPECT_EQ(there->parent_id, 0u);  // nesting is per-thread
  ResetAll();
}

TEST(SpanTest, TimelineTracksAreStableAndNamed) {
#ifdef CMIF_OBS_DISABLED
  GTEST_SKIP() << "probes compiled out (-DCMIF_OBS=OFF)";
#endif

  ResetAll();
  ScopedEnable enable;
  int video = TimelineTrack("channel:video");
  int audio = TimelineTrack("channel:audio");
  EXPECT_NE(video, audio);
  EXPECT_EQ(TimelineTrack("channel:video"), video);
  EmitTimelineEvent(video, "clip", 1000.0, 2000.0, {{"bytes", "42"}});
  auto spans = SnapshotSpans();
  const SpanRecord* clip = FindSpan(spans, "clip");
  ASSERT_NE(clip, nullptr);
  EXPECT_EQ(clip->pid, kTimelinePid);
  EXPECT_EQ(clip->tid, video);
  EXPECT_DOUBLE_EQ(clip->start_us, 1000.0);
  EXPECT_DOUBLE_EQ(clip->duration_us, 2000.0);
  auto tracks = SnapshotTracks();
  bool found = false;
  for (const auto& [tid, name] : tracks) {
    found |= tid == video && name == "channel:video";
  }
  EXPECT_TRUE(found);
  ResetAll();
}

TEST(SpanTest, TimelineBatchPublishesOnFlushOnly) {
#ifdef CMIF_OBS_DISABLED
  GTEST_SKIP() << "probes compiled out (-DCMIF_OBS=OFF)";
#endif

  ResetAll();
  {
    // Disabled: Stage() declines and the destructor has nothing to publish.
    TimelineBatch batch;
    EXPECT_EQ(batch.Stage(1, "ghost", 0.0, 1.0), nullptr);
  }
  EXPECT_TRUE(SnapshotSpans().empty());

  ScopedEnable enable;
  int track = TimelineTrack("channel:batch");
  TimelineBatch batch;
  SpanRecord* first = batch.Stage(track, "clip-a", 100.0, 50.0);
  ASSERT_NE(first, nullptr);
  first->args.emplace_back("bytes", "42");
  ASSERT_NE(batch.Stage(track, "clip-b", 200.0, 50.0), nullptr);
  // Nothing reaches the shared buffer until the batch publishes.
  EXPECT_TRUE(SnapshotSpans().empty());
  batch.Flush();
  auto spans = SnapshotSpans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "clip-a");
  EXPECT_EQ(spans[0].pid, kTimelinePid);
  EXPECT_EQ(spans[0].tid, track);
  ASSERT_EQ(spans[0].args.size(), 1u);
  EXPECT_EQ(spans[0].args[0].first, "bytes");
  EXPECT_NE(spans[0].id, spans[1].id);  // batch-reserved ids stay distinct
  EXPECT_NE(spans[0].id, 0u);
  batch.Flush();  // empty re-flush is a no-op
  EXPECT_EQ(SnapshotSpans().size(), 2u);
  ResetAll();
}

TEST(SpanTest, ResetSpansClearsBufferOnly) {
#ifdef CMIF_OBS_DISABLED
  GTEST_SKIP() << "probes compiled out (-DCMIF_OBS=OFF)";
#endif

  ResetAll();
  ScopedEnable enable;
  { Span span("gone"); }
  EXPECT_FALSE(SnapshotSpans().empty());
  ResetSpans();
  EXPECT_TRUE(SnapshotSpans().empty());
}

}  // namespace
}  // namespace obs
}  // namespace cmif
