// The cross-process tracing contract: deterministic head sampling, RAII
// context install, span tagging and suppression, per-trace harvest, and the
// always-sample-on-anomaly override.
#include "src/obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>

#include "src/obs/obs.h"

namespace cmif {
namespace obs {
namespace {

const SpanRecord* FindSpan(const std::vector<SpanRecord>& spans, std::string_view name) {
  auto it = std::find_if(spans.begin(), spans.end(),
                         [&](const SpanRecord& s) { return s.name == name; });
  return it == spans.end() ? nullptr : &*it;
}

TEST(TraceSamplingTest, RateZeroNeverSamplesRateOneAlways) {
  for (std::uint64_t id = 1; id < 1000; ++id) {
    EXPECT_FALSE(SampleTrace(id, 0.0)) << id;
    EXPECT_TRUE(SampleTrace(id, 1.0)) << id;
  }
}

TEST(TraceSamplingTest, DecisionIsDeterministicPerId) {
  // The whole point of head sampling: every process computes the same
  // keep/drop bit from the id alone, no coordination.
  for (std::uint64_t id = 1; id < 200; ++id) {
    bool first = SampleTrace(id, 0.25);
    for (int repeat = 0; repeat < 3; ++repeat) {
      EXPECT_EQ(SampleTrace(id, 0.25), first) << id;
    }
  }
}

TEST(TraceSamplingTest, FractionalRateKeepsRoughlyThatFraction) {
  int kept = 0;
  const int kTrials = 4000;
  for (int i = 1; i <= kTrials; ++i) {
    TraceContext ctx = NewTrace(0.25);
    if (ctx.sampled) {
      ++kept;
    }
  }
  // The id mix is high quality; 25% +/- 5 points over 4000 trials is lax.
  EXPECT_GT(kept, kTrials / 5);
  EXPECT_LT(kept, kTrials * 3 / 10);
}

TEST(TraceSamplingTest, HigherRateNeverDropsWhatLowerKept) {
  // Monotone in rate: a trace kept at 1% is kept at any higher rate, so
  // raising a server's sample rate only adds traces.
  for (std::uint64_t id = 1; id < 500; ++id) {
    if (SampleTrace(id, 0.01)) {
      EXPECT_TRUE(SampleTrace(id, 0.5)) << id;
    }
    if (!SampleTrace(id, 0.5)) {
      EXPECT_FALSE(SampleTrace(id, 0.01)) << id;
    }
  }
}

TEST(TraceTest, NewTraceIdsAreNonzeroAndDistinct) {
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    TraceContext ctx = NewTrace(1.0);
    EXPECT_NE(ctx.trace_id, 0u);
    EXPECT_TRUE(ctx.sampled);
    EXPECT_EQ(ctx.parent_span_id, 0u);
    seen.insert(ctx.trace_id);
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(TraceTest, ScopedTraceInstallsAndRestores) {
  EXPECT_FALSE(CurrentTrace().valid());
  TraceContext outer;
  outer.trace_id = 7;
  outer.sampled = true;
  {
    ScopedTrace scoped_outer(outer);
    EXPECT_EQ(CurrentTrace().trace_id, 7u);
    TraceContext inner;
    inner.trace_id = 9;
    {
      ScopedTrace scoped_inner(inner);
      EXPECT_EQ(CurrentTrace().trace_id, 9u);
      EXPECT_FALSE(CurrentTrace().sampled);
    }
    EXPECT_EQ(CurrentTrace().trace_id, 7u);
    EXPECT_TRUE(CurrentTrace().sampled);
  }
  EXPECT_FALSE(CurrentTrace().valid());
}

TEST(TraceTest, SampledContextTagsSpansWithTraceIdAndParent) {
#ifdef CMIF_OBS_DISABLED
  GTEST_SKIP() << "probes compiled out (-DCMIF_OBS=OFF)";
#endif

  ResetAll();
  ScopedEnable enable;
  TraceContext ctx;
  ctx.trace_id = 0xabcdefull;
  ctx.parent_span_id = 77;  // the client span on the far side of the wire
  ctx.sampled = true;
  {
    ScopedTrace scoped(ctx);
    Span root("server-root");
    { Span child("server-child"); }
  }
  auto spans = SnapshotSpans();
  const SpanRecord* root = FindSpan(spans, "server-root");
  const SpanRecord* child = FindSpan(spans, "server-child");
  ASSERT_NE(root, nullptr);
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(root->trace_id, ctx.trace_id);
  EXPECT_EQ(child->trace_id, ctx.trace_id);
  // The thread's root span hangs off the remote parent; nesting below it is
  // local as usual.
  EXPECT_EQ(root->parent_id, 77u);
  EXPECT_EQ(child->parent_id, root->id);
  ResetAll();
}

TEST(TraceTest, UnsampledContextSuppressesRecords) {
#ifdef CMIF_OBS_DISABLED
  GTEST_SKIP() << "probes compiled out (-DCMIF_OBS=OFF)";
#endif

  ResetAll();
  ScopedEnable enable;
  TraceContext ctx;
  ctx.trace_id = 0x1234;
  ctx.sampled = false;
  {
    ScopedTrace scoped(ctx);
    Span span("dropped");
    span.Annotate("k", "v");
  }
  EXPECT_EQ(FindSpan(SnapshotSpans(), "dropped"), nullptr);
  // No context at all records normally (process-local profiling).
  { Span span("kept"); }
  EXPECT_NE(FindSpan(SnapshotSpans(), "kept"), nullptr);
  ResetAll();
}

TEST(TraceTest, TakeTraceSpansExtractsOnlyThatTrace) {
#ifdef CMIF_OBS_DISABLED
  GTEST_SKIP() << "probes compiled out (-DCMIF_OBS=OFF)";
#endif

  ResetAll();
  ScopedEnable enable;
  TraceContext a;
  a.trace_id = 100;
  a.sampled = true;
  TraceContext b;
  b.trace_id = 200;
  b.sampled = true;
  {
    ScopedTrace scoped(a);
    Span span("span-a");
  }
  {
    ScopedTrace scoped(b);
    Span span("span-b");
  }
  { Span span("untraced"); }

  auto taken = TakeTraceSpans(100);
  ASSERT_EQ(taken.size(), 1u);
  EXPECT_EQ(taken[0].name, "span-a");
  EXPECT_EQ(taken[0].trace_id, 100u);
  // Extraction removed trace 100 but left everything else.
  auto rest = SnapshotSpans();
  EXPECT_EQ(FindSpan(rest, "span-a"), nullptr);
  EXPECT_NE(FindSpan(rest, "span-b"), nullptr);
  EXPECT_NE(FindSpan(rest, "untraced"), nullptr);
  EXPECT_TRUE(TakeTraceSpans(100).empty());
  ResetAll();
}

TEST(TraceTest, RecordAnomalyForceSamplesCurrentTrace) {
#ifdef CMIF_OBS_DISABLED
  GTEST_SKIP() << "probes compiled out (-DCMIF_OBS=OFF)";
#endif

  ResetAll();
  ScopedEnable enable;
  TraceContext ctx;
  ctx.trace_id = 42;
  ctx.sampled = false;  // head sampling said drop...
  {
    ScopedTrace scoped(ctx);
    { Span before("before-anomaly"); }
    RecordAnomaly("test.retry");  // ...but an anomaly overrides
    EXPECT_TRUE(CurrentTrace().sampled);
    { Span after("after-anomaly"); }
  }
  auto spans = TakeTraceSpans(42);
  EXPECT_EQ(FindSpan(spans, "before-anomaly"), nullptr);
  EXPECT_NE(FindSpan(spans, "after-anomaly"), nullptr);
  ResetAll();
}

TEST(TraceTest, AnomalyCountIsMonotonic) {
  std::uint64_t before = AnomalyCount();
  RecordAnomaly("test.count");
  RecordAnomaly("test.count");
  EXPECT_GE(AnomalyCount(), before + 2);
}

}  // namespace
}  // namespace obs
}  // namespace cmif
