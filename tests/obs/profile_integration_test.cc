// End-to-end instrumentation check on the Evening News: run the full
// pipeline with observability enabled and assert that the exported trace and
// metrics tell the whole capture→structure→map→filter→schedule→play story.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/fmt/parser.h"
#include "src/fmt/writer.h"
#include "src/news/evening_news.h"
#include "src/obs/export.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"
#include "src/pipeline/pipeline.h"

namespace cmif {
namespace obs {
namespace {

const SpanRecord* FindSpan(const std::vector<SpanRecord>& spans, std::string_view name) {
  auto it = std::find_if(spans.begin(), spans.end(),
                         [&](const SpanRecord& s) { return s.name == name; });
  return it == spans.end() ? nullptr : &*it;
}

TEST(ProfileIntegrationTest, PipelineRunEmitsTheFullStory) {
#ifdef CMIF_OBS_DISABLED
  GTEST_SKIP() << "probes compiled out (-DCMIF_OBS=OFF)";
#endif

  auto workload = BuildEveningNews(NewsOptions{});
  ASSERT_TRUE(workload.ok());

  ResetAll();
  MetricsRegistry::Instance().ResetValues();
  {
    ScopedEnable enable;
    // The profile tool's extra framing: parse under a "structure" span.
    auto text = WriteDocument(workload->document);
    ASSERT_TRUE(text.ok());
    {
      Span structure("structure");
      ASSERT_TRUE(ParseDocument(*text).ok());
    }
    PipelineOptions options;
    options.profile = PersonalSystemProfile();
    options.apply_filters = true;
    auto report = RunPipeline(workload->document, workload->store, workload->blocks, options);
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->schedule.feasible);
  }

  auto spans = SnapshotSpans();
  const SpanRecord* pipeline = FindSpan(spans, "pipeline");
  ASSERT_NE(pipeline, nullptr);
  // Every stage nests under the pipeline span.
  for (const char* stage : {"validate", "present-map", "filter-plan", "filter-apply",
                            "collect-events", "schedule", "play"}) {
    const SpanRecord* span = FindSpan(spans, stage);
    ASSERT_NE(span, nullptr) << stage;
    EXPECT_EQ(span->parent_id, pipeline->id) << stage;
  }
  // The parse ran under "structure", and the solver under "schedule".
  const SpanRecord* structure = FindSpan(spans, "structure");
  const SpanRecord* parse = FindSpan(spans, "fmt.parse");
  ASSERT_NE(structure, nullptr);
  ASSERT_NE(parse, nullptr);
  EXPECT_EQ(parse->parent_id, structure->id);
  ASSERT_NE(FindSpan(spans, "solve-stn"), nullptr);

  // Solver work counters made it into the registry.
  EXPECT_GT(GetCounter("sched.solver.solves").value(), 0);
  EXPECT_GT(GetCounter("sched.solver.iterations").value(), 0);
  EXPECT_GT(GetCounter("sched.solver.propagations").value(), 0);
  EXPECT_GT(GetCounter("pipeline.runs").value(), 0);
  EXPECT_GT(GetCounter("fmt.documents_parsed").value(), 0);

  // Per-channel lateness histograms exist for the news channels.
  bool saw_lateness = false;
  MetricsRegistry::Instance().VisitHistograms(
      [&](const std::string& name, const Histogram& histogram) {
        if (name.rfind("player.lateness_ms.", 0) == 0) {
          saw_lateness |= histogram.count() > 0;
        }
      });
  EXPECT_TRUE(saw_lateness);

  // The exported trace parses and carries both process tracks.
  auto trace = ParseJson(ChromeTraceJson());
  ASSERT_TRUE(trace.ok());
  const JsonValue* events = trace->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  bool saw_wall = false;
  bool saw_timeline = false;
  for (const JsonValue& event : events->array()) {
    const JsonValue* pid = event.Find("pid");
    const JsonValue* ph = event.Find("ph");
    if (pid == nullptr || ph == nullptr || ph->string() != "X") {
      continue;
    }
    saw_wall |= pid->number() == kProcessPid;
    saw_timeline |= pid->number() == kTimelinePid;
  }
  EXPECT_TRUE(saw_wall);
  EXPECT_TRUE(saw_timeline);

  // The metrics stream parses line by line and includes the solver counters.
  std::string jsonl = MetricsJsonl();
  EXPECT_NE(jsonl.find("sched.solver.iterations"), std::string::npos);
  EXPECT_NE(jsonl.find("player.lateness_ms."), std::string::npos);

  ResetAll();
  MetricsRegistry::Instance().ResetValues();
}

TEST(ProfileIntegrationTest, DisabledRunRecordsNothing) {
  auto workload = BuildEveningNews(NewsOptions{});
  ASSERT_TRUE(workload.ok());
  ResetAll();
  MetricsRegistry::Instance().ResetValues();
  ASSERT_FALSE(Enabled());
  PipelineOptions options;
  options.profile = PersonalSystemProfile();
  auto report = RunPipeline(workload->document, workload->store, workload->blocks, options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(SnapshotSpans().empty());
  EXPECT_EQ(GetCounter("pipeline.runs").value(), 0);
}

}  // namespace
}  // namespace obs
}  // namespace cmif
