#include "src/fmt/parser.h"

#include <gtest/gtest.h>

#include "src/fmt/writer.h"

namespace cmif {
namespace {

TEST(ParserTest, MinimalDocument) {
  auto doc = ParseDocument("(cmif (seq ()))");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->root().kind(), NodeKind::kSeq);
  EXPECT_EQ(doc->root().child_count(), 0u);
}

TEST(ParserTest, ParRootAndChildren) {
  auto doc = ParseDocument(R"((cmif (par (name top)
    (ext (name a file "d1"))
    (imm (name b) "text payload"))))");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->root().kind(), NodeKind::kPar);
  EXPECT_EQ(doc->root().name(), "top");
  ASSERT_EQ(doc->root().child_count(), 2u);
  EXPECT_EQ(doc->root().ChildAt(0).attrs().Find(kAttrFile)->string(), "d1");
  EXPECT_EQ(doc->root().ChildAt(1).immediate_data().text().text(), "text payload");
}

TEST(ParserTest, DictionariesLoadFromRoot) {
  auto doc = ParseDocument(R"((cmif (seq (
    channel_dict (video (medium video) caption (medium text))
    style_dict (big (size 24))))))");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_TRUE(doc->channels().Has("video"));
  EXPECT_EQ(doc->channels().Find("caption")->medium, MediaType::kText);
  EXPECT_TRUE(doc->styles().Has("big"));
}

TEST(ParserTest, SyncArcsAttach) {
  auto doc = ParseDocument(R"((cmif (seq ()
    (syncarc end must a 1/2 begin b 0/1 inf)
    (seq (name a)) (seq (name b)))))");
  ASSERT_TRUE(doc.ok()) << doc.status();
  ASSERT_EQ(doc->root().arcs().size(), 1u);
  const SyncArc& arc = doc->root().arcs()[0];
  EXPECT_EQ(arc.source_edge, ArcEdge::kEnd);
  EXPECT_EQ(arc.rigor, ArcRigor::kMust);
  EXPECT_EQ(arc.offset, MediaTime::Rational(1, 2));
  EXPECT_FALSE(arc.max_delay.has_value());
}

TEST(ParserTest, DataPayloadDecodes) {
  // Round-trip through the writer to get a valid base64 image payload.
  Document original;
  Node* imm = *original.root().AddChild(NodeKind::kImm);
  imm->attrs().Set(std::string(kAttrMedium), AttrValue::Id("image"));
  imm->set_immediate_data(DataBlock::FromImage(MakeTestCard(8, 6, 2)));
  auto text = WriteDocument(original);
  ASSERT_TRUE(text.ok());
  auto doc = ParseDocument(*text);
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->root().ChildAt(0).immediate_data().image(), MakeTestCard(8, 6, 2));
}

TEST(ParserTest, CommentsAndWhitespaceIgnored) {
  auto doc = ParseDocument("; header\n(cmif ; mid\n (seq () ; tail\n ))\n");
  EXPECT_TRUE(doc.ok()) << doc.status();
}

TEST(ParserTest, RejectsStructuralErrors) {
  EXPECT_FALSE(ParseDocument("").ok());
  EXPECT_FALSE(ParseDocument("(notcmif (seq ()))").ok());
  EXPECT_FALSE(ParseDocument("(cmif (ext ()))").ok());           // leaf root
  EXPECT_FALSE(ParseDocument("(cmif (seq ()) trailing)").ok());  // garbage
  EXPECT_FALSE(ParseDocument("(cmif (seq ())").ok());            // unterminated
  EXPECT_FALSE(ParseDocument("(cmif (loop ()))").ok());          // unknown kind
}

TEST(ParserTest, RejectsLeafWithChildren) {
  EXPECT_FALSE(ParseDocument("(cmif (seq () (ext () (seq ()))))").ok());
}

TEST(ParserTest, RejectsImmWithoutPayload) {
  EXPECT_FALSE(ParseDocument("(cmif (seq () (imm (name x))))").ok());
}

TEST(ParserTest, RejectsTextPayloadOnNonImm) {
  EXPECT_FALSE(ParseDocument("(cmif (seq () \"stray\"))").ok());
}

TEST(ParserTest, RejectsBadArcShape) {
  // Positive min_delay has no meaning.
  EXPECT_FALSE(
      ParseDocument("(cmif (seq () (syncarc begin must a 0/1 begin b 1/1 2/1)))").ok());
}

TEST(ParserTest, RejectsDuplicateAttrs) {
  EXPECT_FALSE(ParseDocument("(cmif (seq (name a name b)))").ok());
}

TEST(ParseNodeTest, SubtreeWithoutWrapper) {
  auto node = ParseNode("(par (name p) (ext (name x file \"d\")))");
  ASSERT_TRUE(node.ok()) << node.status();
  EXPECT_EQ((*node)->kind(), NodeKind::kPar);
  EXPECT_EQ((*node)->child_count(), 1u);
  EXPECT_FALSE(ParseNode("(seq ()) extra").ok());
}

}  // namespace
}  // namespace cmif
