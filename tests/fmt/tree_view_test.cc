#include "src/fmt/tree_view.h"

#include <gtest/gtest.h>

#include "src/doc/builder.h"

namespace cmif {
namespace {

Document SampleDoc() {
  DocBuilder builder;
  builder.DefineChannel("v", MediaType::kVideo)
      .Par("story")
      .Ext("clip", "d1")
      .OnChannel("v")
      .ImmText("label", "x")
      .Up();
  builder.Arc(HardArc(*NodePath::Parse("story/clip"), ArcEdge::kBegin,
                      *NodePath::Parse("story/label"), ArcEdge::kBegin));
  auto doc = builder.Build();
  EXPECT_TRUE(doc.ok());
  return std::move(doc).value();
}

TEST(ConventionalTreeViewTest, DrawsBranches) {
  Document doc = SampleDoc();
  std::string view = ConventionalTreeView(doc.root());
  // Figure 5a: node-and-branch form with one line per node.
  EXPECT_NE(view.find("+- clip [ext file=\"d1\" channel=v]"), std::string::npos) << view;
  EXPECT_NE(view.find("`- label [imm]"), std::string::npos);
  EXPECT_NE(view.find("story [par]"), std::string::npos);
}

TEST(ConventionalTreeViewTest, UnnamedNodesGetIndexes) {
  Node root(NodeKind::kSeq);
  (void)root.AddChild(NodeKind::kExt);
  std::string view = ConventionalTreeView(root);
  EXPECT_NE(view.find("(unnamed)"), std::string::npos);
}

TEST(EmbeddedTreeViewTest, NestsBrackets) {
  Document doc = SampleDoc();
  std::string view = EmbeddedTreeView(doc.root());
  // Figure 5b: the embedded form nests each node inside its parent.
  EXPECT_NE(view.find("[ story par"), std::string::npos) << view;
  EXPECT_NE(view.find("  [ clip ext ]"), std::string::npos);
  // Brackets balance.
  EXPECT_EQ(std::count(view.begin(), view.end(), '['),
            std::count(view.begin(), view.end(), ']'));
}

TEST(ArcTableViewTest, OneRowPerArc) {
  Document doc = SampleDoc();
  std::string table = ArcTableView(doc.root());
  // Figure 9 columns.
  EXPECT_NE(table.find("type"), std::string::npos);
  EXPECT_NE(table.find("min"), std::string::npos);
  EXPECT_NE(table.find("begin-must"), std::string::npos);
  EXPECT_NE(table.find("story/clip"), std::string::npos);
  EXPECT_NE(table.find("begin:story/label"), std::string::npos);
}

TEST(TimelineViewTest, ScalesSpansToColumns) {
  std::vector<TimelineRow> rows = {
      {"video", {{"a", MediaTime(), MediaTime::Seconds(5)},
                 {"b", MediaTime::Seconds(5), MediaTime::Seconds(10)}}},
      {"audio", {{"voice", MediaTime(), MediaTime::Seconds(10)}}},
  };
  std::string view = TimelineView(rows, 60);
  EXPECT_NE(view.find("video"), std::string::npos);
  EXPECT_NE(view.find("audio"), std::string::npos);
  EXPECT_NE(view.find("|a"), std::string::npos);
  EXPECT_NE(view.find("10.0s"), std::string::npos);
  // Every lane line has the same width.
  std::vector<std::size_t> widths;
  std::istringstream lines(view);
  std::string line;
  while (std::getline(lines, line)) {
    widths.push_back(line.size());
  }
  ASSERT_GE(widths.size(), 3u);
  EXPECT_EQ(widths[0], widths[1]);
}

TEST(TimelineViewTest, EmptyRowsRenderWithoutCrashing) {
  std::vector<TimelineRow> rows = {{"silent", {}}};
  std::string view = TimelineView(rows);
  EXPECT_NE(view.find("silent"), std::string::npos);
}

TEST(TimelineTableTest, ExactTimes) {
  std::vector<TimelineRow> rows = {
      {"graphic", {{"g1", MediaTime::Rational(13, 4), MediaTime::Rational(29, 4)}}}};
  std::string table = TimelineTable(rows);
  EXPECT_NE(table.find("3.250"), std::string::npos);
  EXPECT_NE(table.find("7.250"), std::string::npos);
  EXPECT_NE(table.find("g1"), std::string::npos);
}

}  // namespace
}  // namespace cmif
