#include "src/fmt/writer.h"

#include <gtest/gtest.h>

#include "src/doc/builder.h"
#include "src/news/evening_news.h"

namespace cmif {
namespace {

TEST(WriterTest, MinimalDocument) {
  Document doc;
  auto text = WriteDocument(doc, WriteOptions{.indent_width = 2, .header_comment = false});
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "(cmif\n  (seq ())\n)\n");
}

TEST(WriterTest, HeaderCommentCarriesStats) {
  Document doc;
  auto text = WriteDocument(doc);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(text->find("; CMIF document:"), 0u);
}

TEST(WriterTest, DictionariesAreStoredOnRoot) {
  DocBuilder builder;
  builder.DefineChannel("video", MediaType::kVideo);
  auto doc = builder.Build();
  ASSERT_TRUE(doc.ok());
  auto text = WriteDocument(*doc);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("channel_dict"), std::string::npos);
  EXPECT_NE(text->find("(medium video)"), std::string::npos);
  // Serialization must not mutate the input document's root attrs.
  EXPECT_FALSE(doc->root().attrs().Has(kAttrChannelDict));
}

TEST(WriterTest, ImmediateTextSerializesInline) {
  DocBuilder builder;
  builder.ImmText("t", "caption \"text\"");
  auto doc = builder.Build();
  ASSERT_TRUE(doc.ok());
  auto text = WriteDocument(*doc);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("\"caption \\\"text\\\"\""), std::string::npos);
}

TEST(WriterTest, ImmediateAudioUsesDataForm) {
  DocBuilder builder;
  builder.Imm("beep", DataBlock::FromAudio(MakeTone(8000, MediaTime::Millis(10), 440, 0.5)));
  auto doc = builder.Build();
  ASSERT_TRUE(doc.ok());
  auto text = WriteDocument(*doc);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("(data audio \""), std::string::npos);
}

TEST(WriterTest, ImmediateVideoIsUnserializable) {
  DocBuilder builder;
  builder.Imm("clip", DataBlock::FromVideo(MakeFlyingBirdSegment(8, 6, 5, MediaTime::Seconds(1))));
  auto doc = builder.Build();
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(WriteDocument(*doc).status().code(), StatusCode::kUnimplemented);
}

TEST(WriterTest, ArcsAppearAsSyncarcForms) {
  DocBuilder builder;
  builder.Seq("s").ImmText("a", "x").ImmText("b", "y").Up();
  builder.Arc(WindowArc(*NodePath::Parse("s/a"), ArcEdge::kEnd, *NodePath::Parse("s/b"),
                        ArcEdge::kBegin, MediaTime::Rational(1, 2), MediaTime(), std::nullopt,
                        ArcRigor::kMay));
  auto doc = builder.Build();
  ASSERT_TRUE(doc.ok());
  auto text = WriteDocument(*doc);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("(syncarc end may s/a 1/2 begin s/b 0/1 inf)"), std::string::npos)
      << *text;
}

TEST(WriterTest, WriteNodeSubtree) {
  Node node(NodeKind::kPar);
  node.set_name("p");
  (void)node.AddChild(NodeKind::kSeq);
  auto text = WriteNode(node);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(text->find("(par"), 0u);
  EXPECT_NE(text->find("(seq ())"), std::string::npos);
}

TEST(WriterTest, IndentWidthRespected) {
  DocBuilder builder;
  builder.Seq("s").ImmText("t", "x").Up();
  auto doc = builder.Build();
  ASSERT_TRUE(doc.ok());
  auto wide = WriteDocument(*doc, WriteOptions{.indent_width = 4, .header_comment = false});
  ASSERT_TRUE(wide.ok());
  // The imm leaf sits at depth 3 (cmif wrapper -> root -> seq -> imm).
  EXPECT_NE(wide->find("\n            (imm"), std::string::npos);
}

TEST(WriterTest, NewsDocumentSerializesCompletely) {
  auto workload = BuildEveningNews(NewsOptions{});
  ASSERT_TRUE(workload.ok());
  auto text = WriteDocument(workload->document);
  ASSERT_TRUE(text.ok());
  // All five channels, stories, and arcs are present.
  for (const char* fragment : {"channel_dict", "style_dict", "story1", "story3", "syncarc",
                               "captions", "Evening News"}) {
    EXPECT_NE(text->find(fragment), std::string::npos) << fragment;
  }
}

}  // namespace
}  // namespace cmif
