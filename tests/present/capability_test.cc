#include "src/present/capability.h"

#include <gtest/gtest.h>

namespace cmif {
namespace {

TEST(CapabilityTest, ProfilesAreOrderedByStrength) {
  SystemProfile workstation = WorkstationProfile();
  SystemProfile personal = PersonalSystemProfile();
  SystemProfile portable = PortableMonoProfile();
  EXPECT_GT(workstation.max_video_fps, personal.max_video_fps);
  EXPECT_GT(personal.max_video_fps, portable.max_video_fps);
  EXPECT_GT(workstation.max_audio_rate, personal.max_audio_rate);
  EXPECT_GT(workstation.max_width, personal.max_width);
  EXPECT_TRUE(workstation.color);
  EXPECT_FALSE(portable.color);
}

TEST(CapabilityTest, TimingForSelectsMedium) {
  SystemProfile profile = PersonalSystemProfile();
  EXPECT_EQ(profile.TimingFor(MediaType::kVideo).setup, profile.video.setup);
  EXPECT_EQ(profile.TimingFor(MediaType::kAudio).latency, profile.audio.latency);
  EXPECT_EQ(profile.TimingFor(MediaType::kImage).setup, profile.image.setup);
  EXPECT_EQ(profile.TimingFor(MediaType::kGraphic).setup, profile.image.setup);
  EXPECT_EQ(profile.TimingFor(MediaType::kText).setup, profile.text.setup);
}

TEST(CapabilityTest, SlowerProfilesHaveSlowerDevices) {
  SystemProfile workstation = WorkstationProfile();
  SystemProfile portable = PortableMonoProfile();
  EXPECT_LT(workstation.video.setup, portable.video.setup);
  EXPECT_GT(workstation.video.bandwidth_bytes_per_s, portable.video.bandwidth_bytes_per_s);
}

TEST(CapabilityTest, NamesAreDistinct) {
  EXPECT_NE(WorkstationProfile().name, PersonalSystemProfile().name);
  EXPECT_NE(PersonalSystemProfile().name, PortableMonoProfile().name);
}

}  // namespace
}  // namespace cmif
