#include "src/present/filter.h"

#include <gtest/gtest.h>

#include "src/news/evening_news.h"

namespace cmif {
namespace {

DataDescriptor VideoDesc(int width, int height, int fps, int color_bits) {
  AttrList attrs;
  attrs.Set(std::string(kDescMedium), AttrValue::Id("video"));
  attrs.Set(std::string(kDescWidth), AttrValue::Number(width));
  attrs.Set(std::string(kDescHeight), AttrValue::Number(height));
  attrs.Set(std::string(kDescRate), AttrValue::Number(fps));
  attrs.Set(std::string(kDescColorBits), AttrValue::Number(color_bits));
  attrs.Set(std::string(kDescBytes), AttrValue::Number(width * height * 3 * fps));
  return DataDescriptor("v", attrs);
}

TEST(PlanFilterTest, FittingMediaNeedNoWork) {
  SystemProfile profile = WorkstationProfile();
  FilterPlan plan = PlanFilter(VideoDesc(320, 240, 25, 8), profile);
  EXPECT_TRUE(plan.supported);
  EXPECT_FALSE(plan.NeedsWork());
  EXPECT_EQ(plan.bytes_after, plan.bytes_before);
}

TEST(PlanFilterTest, PersonalProfileSubsamplesAndQuantizes) {
  SystemProfile profile = PersonalSystemProfile();  // 12 fps, 3-bit color
  FilterPlan plan = PlanFilter(VideoDesc(64, 48, 25, 8), profile);
  ASSERT_TRUE(plan.supported);
  // fps 25 -> factor 5 (first divisor bringing it under 12) -> 5 fps.
  ASSERT_GE(plan.ops.size(), 2u);
  EXPECT_EQ(plan.ops[0].kind, FilterOpKind::kSubsampleFps);
  EXPECT_EQ(plan.ops[0].arg1, 5);
  EXPECT_EQ(plan.ops.back().kind, FilterOpKind::kQuantizeColor);
  EXPECT_EQ(plan.ops.back().arg1, 3);
  EXPECT_LT(plan.bytes_after, plan.bytes_before);
}

TEST(PlanFilterTest, OversizedImagesDownscalePreservingAspect) {
  SystemProfile profile = PersonalSystemProfile();  // 320x240 max
  AttrList attrs;
  attrs.Set(std::string(kDescMedium), AttrValue::Id("image"));
  attrs.Set(std::string(kDescWidth), AttrValue::Number(1280));
  attrs.Set(std::string(kDescHeight), AttrValue::Number(480));
  attrs.Set(std::string(kDescColorBits), AttrValue::Number(8));
  attrs.Set(std::string(kDescBytes), AttrValue::Number(1280 * 480 * 3));
  FilterPlan plan = PlanFilter(DataDescriptor("i", attrs), profile);
  ASSERT_TRUE(plan.supported);
  ASSERT_FALSE(plan.ops.empty());
  EXPECT_EQ(plan.ops[0].kind, FilterOpKind::kDownscale);
  // Aspect 8:3 fits at 320x120.
  EXPECT_EQ(plan.ops[0].arg1, 320);
  EXPECT_EQ(plan.ops[0].arg2, 120);
}

TEST(PlanFilterTest, MonochromeProfileDropsColor) {
  SystemProfile profile = PortableMonoProfile();
  AttrList attrs;
  attrs.Set(std::string(kDescMedium), AttrValue::Id("graphic"));
  attrs.Set(std::string(kDescWidth), AttrValue::Number(64));
  attrs.Set(std::string(kDescHeight), AttrValue::Number(48));
  attrs.Set(std::string(kDescColorBits), AttrValue::Number(8));
  FilterPlan plan = PlanFilter(DataDescriptor("g", attrs), profile);
  ASSERT_TRUE(plan.supported);
  bool has_mono = false;
  for (const FilterOp& op : plan.ops) {
    if (op.kind == FilterOpKind::kMonochrome) {
      has_mono = true;
    }
  }
  EXPECT_TRUE(has_mono);
}

TEST(PlanFilterTest, AudioResampleAndMixdown) {
  SystemProfile profile = PersonalSystemProfile();  // 11025 Hz mono
  AttrList attrs;
  attrs.Set(std::string(kDescMedium), AttrValue::Id("audio"));
  attrs.Set(std::string(kDescRate), AttrValue::Number(44100));
  attrs.Set(std::string(kDescBytes), AttrValue::Number(44100 * 4));
  FilterPlan plan = PlanFilter(DataDescriptor("a", attrs), profile);
  ASSERT_TRUE(plan.supported);
  ASSERT_EQ(plan.ops.size(), 2u);
  EXPECT_EQ(plan.ops[0].kind, FilterOpKind::kResampleAudio);
  EXPECT_EQ(plan.ops[0].arg1, 11025);
  EXPECT_EQ(plan.ops[1].kind, FilterOpKind::kMixToMono);
}

TEST(PlanFilterTest, TextAlwaysFits) {
  AttrList attrs;
  attrs.Set(std::string(kDescMedium), AttrValue::Id("text"));
  FilterPlan plan = PlanFilter(DataDescriptor("t", attrs), PortableMonoProfile());
  EXPECT_TRUE(plan.supported);
  EXPECT_FALSE(plan.NeedsWork());
}

TEST(PlanFilterTest, ImpossibleRateIsUnsupported) {
  SystemProfile profile = PersonalSystemProfile();
  profile.max_video_fps = 6;  // 25 fps has no divisor <= 6 except 25 itself -> 25/5=5 <= 6 OK
  FilterPlan plan = PlanFilter(VideoDesc(64, 48, 25, 8), profile);
  EXPECT_TRUE(plan.supported);
  profile.max_video_fps = 4;  // 25 -> 25/25=1 fits? factor 25 gives 1 fps, fine.
  plan = PlanFilter(VideoDesc(64, 48, 25, 8), profile);
  EXPECT_TRUE(plan.supported);
  // A prime fps just above the cap with no divisor under it: 7 fps, cap 6;
  // factor 7 -> 1 fps, still supported. Truly unsupported needs fps whose
  // only divisors exceed the cap... impossible since fps/fps = 1. So verify
  // supported always holds for positive caps:
  profile.max_video_fps = 1;
  plan = PlanFilter(VideoDesc(64, 48, 25, 8), profile);
  EXPECT_TRUE(plan.supported);
}

TEST(ApplyFilterTest, OpsTransformRealPayloads) {
  SystemProfile profile = PersonalSystemProfile();
  FilterPlan plan = PlanFilter(VideoDesc(64, 48, 25, 8), profile);
  ASSERT_TRUE(plan.supported);
  DataBlock video =
      DataBlock::FromVideo(MakeFlyingBirdSegment(64, 48, 25, MediaTime::Seconds(1)));
  auto reduced = ApplyFilter(video, plan);
  ASSERT_TRUE(reduced.ok()) << reduced.status();
  EXPECT_EQ(reduced->video().fps(), 5);
  EXPECT_EQ(reduced->video().frame_count(), 5u);
  // Color is quantized to 3 bits: all channel values collapse to 8 levels
  // scaled over [0,255].
  EXPECT_LT(reduced->ByteSize(), video.ByteSize() + 1);
}

TEST(ApplyFilterTest, AudioPlanApplies) {
  SystemProfile profile = PersonalSystemProfile();
  AttrList attrs;
  attrs.Set(std::string(kDescMedium), AttrValue::Id("audio"));
  attrs.Set(std::string(kDescRate), AttrValue::Number(44100));
  FilterPlan plan = PlanFilter(DataDescriptor("a", attrs), profile);
  DataBlock audio = DataBlock::FromAudio(MakeTone(44100, MediaTime::Millis(100), 440, 0.5));
  auto reduced = ApplyFilter(audio, plan);
  ASSERT_TRUE(reduced.ok());
  EXPECT_EQ(reduced->audio().rate(), 11025);
  EXPECT_EQ(reduced->audio().channels(), 1);
}

TEST(ApplyFilterTest, UnsupportedPlanFails) {
  FilterPlan plan;
  plan.supported = false;
  plan.unsupported_reason = "because";
  EXPECT_EQ(ApplyFilter(DataBlock(), plan).status().code(), StatusCode::kFailedPrecondition);
}

TEST(DocumentFilterTest, NewsPlansAndApplies) {
  NewsOptions options;
  options.stories = 1;
  options.materialize_media = true;
  auto workload = BuildEveningNews(options);
  ASSERT_TRUE(workload.ok());
  SystemProfile profile = PersonalSystemProfile();
  auto report = PlanDocumentFilter(workload->document, workload->store, profile);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->unsupported, 0u);
  EXPECT_LT(report->total_bytes_after, report->total_bytes_before);
  EXPECT_FALSE(report->ToString().empty());

  auto filtered = ApplyDocumentFilter(workload->store, workload->blocks, *report);
  ASSERT_TRUE(filtered.ok()) << filtered.status();
  EXPECT_EQ(filtered->size(), report->plans.size());
  // Reduced descriptors carry refreshed attributes and inline payloads.
  const DataDescriptor* head = filtered->Get("story1-head1");
  ASSERT_NE(head, nullptr);
  EXPECT_EQ(*head->attrs().GetNumber(kDescRate), 5);  // 25 fps / 5
  EXPECT_TRUE(std::holds_alternative<DataBlock>(head->content()));
}

TEST(DocumentFilterTest, MissingDescriptorReported) {
  Document doc;
  Node* leaf = *doc.root().AddChild(NodeKind::kExt);
  leaf->attrs().Set(std::string(kAttrFile), AttrValue::String("ghost"));
  DescriptorStore store;
  EXPECT_EQ(PlanDocumentFilter(doc, store, WorkstationProfile()).status().code(),
            StatusCode::kNotFound);
}

TEST(InjectCapabilityTest, AddsSetupConstraintsPerChannel) {
  NewsOptions options;
  options.stories = 1;
  auto workload = BuildEveningNews(options);
  ASSERT_TRUE(workload.ok());
  auto events = CollectEvents(workload->document, &workload->store);
  ASSERT_TRUE(events.ok());
  auto graph = TimeGraph::Build(workload->document, *events);
  ASSERT_TRUE(graph.ok());
  std::size_t before = graph->constraints().size();
  ASSERT_TRUE(InjectCapabilityConstraints(*graph, workload->document, *events,
                                          PortableMonoProfile())
                  .ok());
  std::size_t added = graph->constraints().size() - before;
  EXPECT_GT(added, 0u);
  for (std::size_t i = before; i < graph->constraints().size(); ++i) {
    EXPECT_EQ(graph->constraints()[i].origin, ConstraintOrigin::kCapability);
    EXPECT_TRUE(graph->constraints()[i].lo.is_positive());
  }
}

TEST(FilterOpTest, ToStringForms) {
  EXPECT_EQ((FilterOp{FilterOpKind::kDownscale, 320, 240}.ToString()), "downscale(320x240)");
  EXPECT_EQ((FilterOp{FilterOpKind::kMonochrome, 0, 0}.ToString()), "monochrome");
  EXPECT_EQ((FilterOp{FilterOpKind::kSubsampleFps, 5, 0}.ToString()), "subsample-fps(5)");
}

}  // namespace
}  // namespace cmif
