#include "src/present/virtual_env.h"

#include <gtest/gtest.h>

namespace cmif {
namespace {

TEST(VirtualEnvTest, AddAndFindRegions) {
  VirtualEnvironment env(640, 480);
  ASSERT_TRUE(env.AddRegion(ScreenRegion{"main", 0, 0, 320, 480, 0}).ok());
  ASSERT_NE(env.FindRegion("main"), nullptr);
  EXPECT_EQ(env.FindRegion("main")->width, 320);
  EXPECT_EQ(env.FindRegion("ghost"), nullptr);
}

TEST(VirtualEnvTest, RegionValidation) {
  VirtualEnvironment env(100, 100);
  EXPECT_EQ(env.AddRegion(ScreenRegion{"off", 50, 50, 60, 60, 0}).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(env.AddRegion(ScreenRegion{"zero", 0, 0, 0, 10, 0}).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(env.AddRegion(ScreenRegion{"bad name", 0, 0, 10, 10, 0}).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(env.AddRegion(ScreenRegion{"ok", 0, 0, 100, 100, 0}).ok());
  EXPECT_EQ(env.AddRegion(ScreenRegion{"ok", 0, 0, 10, 10, 0}).code(),
            StatusCode::kAlreadyExists);
}

TEST(VirtualEnvTest, SpeakerValidation) {
  VirtualEnvironment env(100, 100);
  ASSERT_TRUE(env.AddSpeaker(SpeakerOutput{"left", -1}).ok());
  EXPECT_EQ(env.AddSpeaker(SpeakerOutput{"left", 0}).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(env.AddSpeaker(SpeakerOutput{"far", 2}).code(), StatusCode::kOutOfRange);
  EXPECT_NE(env.FindSpeaker("left"), nullptr);
}

TEST(VirtualEnvTest, OverlapDetectionRespectsZOrder) {
  VirtualEnvironment env(100, 100);
  ASSERT_TRUE(env.AddRegion(ScreenRegion{"a", 0, 0, 60, 60, 0}).ok());
  ASSERT_TRUE(env.AddRegion(ScreenRegion{"b", 50, 50, 50, 50, 0}).ok());  // overlaps a
  ASSERT_TRUE(env.AddRegion(ScreenRegion{"overlay", 0, 0, 100, 100, 1}).ok());  // z=1
  auto overlaps = env.OverlappingRegions();
  ASSERT_EQ(overlaps.size(), 1u);
  EXPECT_EQ(overlaps[0], std::make_pair(std::string("a"), std::string("b")));
}

TEST(VirtualEnvTest, DisjointRegionsDoNotOverlap) {
  VirtualEnvironment env(100, 100);
  ASSERT_TRUE(env.AddRegion(ScreenRegion{"left", 0, 0, 50, 100, 0}).ok());
  ASSERT_TRUE(env.AddRegion(ScreenRegion{"right", 50, 0, 50, 100, 0}).ok());
  EXPECT_TRUE(env.OverlappingRegions().empty());
}

TEST(VirtualEnvTest, NewsLayoutIsWellFormed) {
  VirtualEnvironment env = VirtualEnvironment::NewsLayout(640, 480);
  for (const char* region : {"main", "inset", "label_strip", "caption_strip"}) {
    EXPECT_NE(env.FindRegion(region), nullptr) << region;
  }
  EXPECT_NE(env.FindSpeaker("center"), nullptr);
  // Strips ride above the body at z 2; body regions tile without overlap.
  EXPECT_TRUE(env.OverlappingRegions().empty());
  // main and inset partition the body width.
  const ScreenRegion* main = env.FindRegion("main");
  const ScreenRegion* inset = env.FindRegion("inset");
  EXPECT_EQ(main->width + inset->width, 640);
}

}  // namespace
}  // namespace cmif
