#include "src/present/compositor.h"

#include <gtest/gtest.h>

#include "src/news/evening_news.h"
#include "src/sched/conflict.h"

namespace cmif {
namespace {

class CompositorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    NewsOptions options;
    options.stories = 1;
    auto workload = BuildEveningNews(options);
    ASSERT_TRUE(workload.ok());
    workload_ = std::move(workload).value();
    auto events = CollectEvents(workload_.document, &workload_.store);
    ASSERT_TRUE(events.ok());
    auto result = ComputeSchedule(workload_.document, *events);
    ASSERT_TRUE(result.ok() && result->feasible);
    schedule_ = std::move(result)->schedule;
    env_ = VirtualEnvironment::NewsLayout(320, 240);
    auto map = PresentationMap::AutoMap(workload_.document.channels(), env_);
    ASSERT_TRUE(map.ok());
    map_ = std::move(map).value();
  }

  StatusOr<Raster> Frame(MediaTime t, CompositorOptions options = {}) {
    return ComposeFrame(workload_.document, schedule_, map_, env_, workload_.store,
                        workload_.blocks, t, options);
  }

  static int NonBackground(const Raster& frame, Pixel background) {
    int n = 0;
    for (const Pixel& p : frame.pixels()) {
      if (p != background) {
        ++n;
      }
    }
    return n;
  }

  NewsWorkload workload_;
  Schedule schedule_;
  VirtualEnvironment env_{320, 240};
  PresentationMap map_;
};

TEST_F(CompositorTest, FrameHasCanvasDimensions) {
  auto frame = Frame(MediaTime::Seconds(3));
  ASSERT_TRUE(frame.ok()) << frame.status();
  EXPECT_EQ(frame->width(), 320);
  EXPECT_EQ(frame->height(), 240);
}

TEST_F(CompositorTest, MidStoryFrameShowsContent) {
  CompositorOptions options;
  auto frame = Frame(MediaTime::Seconds(9), options);
  ASSERT_TRUE(frame.ok()) << frame.status();
  // Video + graphic + caption + label should light a sizable share of the
  // canvas.
  EXPECT_GT(NonBackground(*frame, options.background), 320 * 240 / 10);
}

TEST_F(CompositorTest, BeforeStartOnlyBackground) {
  CompositorOptions options;
  options.hold_discrete_media = false;
  // At a time before anything is scheduled... time 0 has the opening par.
  // Use a fresh empty document instead.
  Document empty;
  Schedule no_schedule;
  VirtualEnvironment env = VirtualEnvironment::NewsLayout(64, 48);
  PresentationMap map;
  auto frame = ComposeFrame(empty, no_schedule, map, env, workload_.store, workload_.blocks,
                            MediaTime(), options);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(NonBackground(*frame, options.background), 0);
}

TEST_F(CompositorTest, HoldKeepsStillsVisibleAfterTheirEvent) {
  // Label l1 runs [2, 5); at 5.5 the label strip still shows it (hold) while
  // the no-hold compositor clears it... unless l2 started. l2 begins at 8.5
  // (with graphic g2), so 5.5 is inside the gap.
  CompositorOptions hold;
  CompositorOptions no_hold;
  no_hold.hold_discrete_media = false;
  auto held = Frame(MediaTime::Rational(11, 2), hold);
  auto bare = Frame(MediaTime::Rational(11, 2), no_hold);
  ASSERT_TRUE(held.ok() && bare.ok());
  EXPECT_GT(NonBackground(*held, hold.background), NonBackground(*bare, no_hold.background));
}

TEST_F(CompositorTest, VideoFrameAdvancesWithTime) {
  auto early = Frame(MediaTime::Rational(13, 2));
  auto late = Frame(MediaTime::Seconds(7));
  ASSERT_TRUE(early.ok() && late.ok());
  EXPECT_FALSE(*early == *late);  // the scene moved
}

TEST_F(CompositorTest, FreezeGapShowsHeldLastFrame) {
  // Between v2's end (t0+10=12s) and v3's begin (t0+12=14s) the video region
  // holds v2's last frame under the hold policy.
  auto frame = Frame(MediaTime::Seconds(13));
  ASSERT_TRUE(frame.ok()) << frame.status();
  CompositorOptions options;
  EXPECT_GT(NonBackground(*frame, options.background), 0);
}

TEST_F(CompositorTest, FilmStripProducesRequestedFrames) {
  auto strip = ComposeFilmStrip(workload_.document, schedule_, map_, env_, workload_.store,
                                workload_.blocks, MediaTime::Seconds(2),
                                MediaTime::Seconds(14), 6);
  ASSERT_TRUE(strip.ok()) << strip.status();
  EXPECT_EQ(strip->size(), 6u);
  for (const Raster& frame : *strip) {
    EXPECT_EQ(frame.width(), 320);
  }
}

TEST_F(CompositorTest, FilmStripValidatesArguments) {
  EXPECT_FALSE(ComposeFilmStrip(workload_.document, schedule_, map_, env_, workload_.store,
                                workload_.blocks, MediaTime::Seconds(5), MediaTime::Seconds(2),
                                3)
                   .ok());
  EXPECT_FALSE(ComposeFilmStrip(workload_.document, schedule_, map_, env_, workload_.store,
                                workload_.blocks, MediaTime(), MediaTime::Seconds(1), 0)
                   .ok());
}

TEST(RasterUpscaleTest, NearestNeighborScales) {
  Raster image(2, 1);
  image.Put(0, 0, Pixel{10, 0, 0});
  image.Put(1, 0, Pixel{0, 20, 0});
  Raster big = image.UpscaleNearest(3);
  EXPECT_EQ(big.width(), 6);
  EXPECT_EQ(big.height(), 3);
  EXPECT_EQ(big.At(2, 2), (Pixel{10, 0, 0}));
  EXPECT_EQ(big.At(3, 0), (Pixel{0, 20, 0}));
  // Factor <= 1 is the identity.
  EXPECT_EQ(image.UpscaleNearest(1), image);
  EXPECT_EQ(image.UpscaleNearest(0), image);
}

}  // namespace
}  // namespace cmif
