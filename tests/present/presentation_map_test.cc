#include "src/present/presentation_map.h"

#include <gtest/gtest.h>

namespace cmif {
namespace {

ChannelDictionary NewsChannels() {
  ChannelDictionary dict;
  AttrList main_pref;
  main_pref.Set("region", AttrValue::Id("main"));
  EXPECT_TRUE(dict.Define("video", MediaType::kVideo, main_pref).ok());
  EXPECT_TRUE(dict.Define("audio", MediaType::kAudio).ok());
  EXPECT_TRUE(dict.Define("caption", MediaType::kText).ok());
  return dict;
}

TEST(PresentationMapTest, BindAndFind) {
  PresentationMap map;
  ASSERT_TRUE(map.BindRegion("video", "main").ok());
  ASSERT_TRUE(map.BindSpeaker("audio", "center", 80).ok());
  ASSERT_NE(map.Find("video"), nullptr);
  EXPECT_EQ(map.Find("video")->region, "main");
  EXPECT_EQ(map.Find("audio")->volume, 80);
  EXPECT_EQ(map.Find("ghost"), nullptr);
}

TEST(PresentationMapTest, DoubleBindRejected) {
  PresentationMap map;
  ASSERT_TRUE(map.BindRegion("video", "main").ok());
  EXPECT_EQ(map.BindRegion("video", "inset").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(map.BindSpeaker("video", "center").code(), StatusCode::kAlreadyExists);
}

TEST(PresentationMapTest, VolumeRangeChecked) {
  PresentationMap map;
  EXPECT_EQ(map.BindSpeaker("a", "s", -1).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(map.BindSpeaker("a", "s", 101).code(), StatusCode::kOutOfRange);
}

TEST(PresentationMapTest, AutoMapHonorsPreferences) {
  // "Some of the mapping information may come from 'preference' defaults"
  // (section 2).
  VirtualEnvironment env = VirtualEnvironment::NewsLayout(640, 480);
  ChannelDictionary channels = NewsChannels();
  auto map = PresentationMap::AutoMap(channels, env);
  ASSERT_TRUE(map.ok()) << map.status();
  EXPECT_EQ(map->Find("video")->region, "main");  // the preference
  EXPECT_EQ(map->Find("audio")->speaker, "center");
  // caption tiles into the first unclaimed region.
  EXPECT_FALSE(map->Find("caption")->region.empty());
  EXPECT_NE(map->Find("caption")->region, "main");
  EXPECT_TRUE(map->Validate(channels, env).ok());
}

TEST(PresentationMapTest, AutoMapFailsWhenRealEstateRunsOut) {
  VirtualEnvironment env(100, 100);
  ASSERT_TRUE(env.AddRegion(ScreenRegion{"only", 0, 0, 100, 100, 0}).ok());
  ChannelDictionary channels;
  ASSERT_TRUE(channels.Define("v1", MediaType::kVideo).ok());
  ASSERT_TRUE(channels.Define("v2", MediaType::kVideo).ok());
  EXPECT_EQ(PresentationMap::AutoMap(channels, env).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(PresentationMapTest, AutoMapFailsWithoutSpeakers) {
  VirtualEnvironment env(100, 100);
  ChannelDictionary channels;
  ASSERT_TRUE(channels.Define("sound", MediaType::kAudio).ok());
  EXPECT_EQ(PresentationMap::AutoMap(channels, env).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(PresentationMapTest, AutoMapRejectsUnknownPreference) {
  VirtualEnvironment env(100, 100);
  ASSERT_TRUE(env.AddRegion(ScreenRegion{"r", 0, 0, 100, 100, 0}).ok());
  ChannelDictionary channels;
  AttrList pref;
  pref.Set("region", AttrValue::Id("ghost"));
  ASSERT_TRUE(channels.Define("v", MediaType::kVideo, pref).ok());
  EXPECT_EQ(PresentationMap::AutoMap(channels, env).status().code(), StatusCode::kNotFound);
}

TEST(PresentationMapTest, ValidateCatchesMisbindings) {
  VirtualEnvironment env = VirtualEnvironment::NewsLayout(640, 480);
  ChannelDictionary channels = NewsChannels();
  PresentationMap map;
  // Unbound channel.
  EXPECT_EQ(map.Validate(channels, env).code(), StatusCode::kFailedPrecondition);
  // Audio bound to a region instead of a speaker.
  ASSERT_TRUE(map.BindRegion("audio", "main").ok());
  ASSERT_TRUE(map.BindRegion("video", "main").ok());
  ASSERT_TRUE(map.BindRegion("caption", "caption_strip").ok());
  EXPECT_EQ(map.Validate(channels, env).code(), StatusCode::kFailedPrecondition);
}

TEST(PresentationMapTest, SerializeParseRoundTrip) {
  // "A presentation map that can be manipulated separately from the document
  // itself" (section 2) — hence its own round-trippable format.
  PresentationMap map;
  ASSERT_TRUE(map.BindRegion("video", "main").ok());
  ASSERT_TRUE(map.BindSpeaker("audio", "center", 65).ok());
  auto restored = PresentationMap::Parse(map.Serialize());
  ASSERT_TRUE(restored.ok()) << restored.status();
  ASSERT_EQ(restored->bindings().size(), 2u);
  EXPECT_EQ(restored->bindings()[0], map.bindings()[0]);
  EXPECT_EQ(restored->bindings()[1], map.bindings()[1]);
}

TEST(PresentationMapTest, ParseRejectsGarbage) {
  EXPECT_FALSE(PresentationMap::Parse("(notpresmap)").ok());
  EXPECT_FALSE(PresentationMap::Parse("(presmap (bind a strange b))").ok());
  EXPECT_FALSE(PresentationMap::Parse("(presmap (bind a region)").ok());
}

}  // namespace
}  // namespace cmif
