// The store-fetch recovery ladder: retry transient failures, degrade to a
// declared-attribute placeholder when the payload is unrecoverable, and keep
// the placeholder's timing envelope equal to the real block's so downstream
// schedules still hold.
#include <gtest/gtest.h>

#include <string>

#include "src/base/status.h"
#include "src/ddbms/descriptor.h"
#include "src/fault/clock.h"
#include "src/fault/fault.h"
#include "src/media/raster.h"

namespace cmif {
namespace {

class GlobalFakeClock {
 public:
  GlobalFakeClock() { fault::SetGlobalClockForTest(&clock_); }
  ~GlobalFakeClock() { fault::SetGlobalClockForTest(nullptr); }
  fault::FakeClock* operator->() { return &clock_; }

 private:
  fault::FakeClock clock_;
};

DataDescriptor StoreBacked(const std::string& id, const std::string& key,
                           const std::string& medium) {
  AttrList attrs;
  attrs.Set(std::string(kDescMedium), AttrValue::Id(medium));
  DataDescriptor descriptor(id, std::move(attrs));
  descriptor.set_content(key);
  return descriptor;
}

fault::RetryPolicy FastPolicy() {
  fault::RetryPolicy policy;
  policy.max_attempts = 6;
  policy.initial_backoff_ms = 1;
  policy.jitter = 0;
  return policy;
}

TEST(PlaceholderTest, TextNamesTheMissingDescriptor) {
  DataDescriptor descriptor("caption-3", AttrList());
  DataBlock block = MakePlaceholderBlock(descriptor);
  ASSERT_EQ(block.medium(), MediaType::kText);
  EXPECT_EQ(block.text().text(), "[caption-3 unavailable]");
}

TEST(PlaceholderTest, AudioIsSilenceAtDeclaredRateAndDuration) {
  AttrList attrs;
  attrs.Set(std::string(kDescMedium), AttrValue::Id("audio"));
  attrs.Set(std::string(kDescRate), AttrValue::Number(16000));
  attrs.Set(std::string(kDescDuration), AttrValue::Time(MediaTime::Seconds(2)));
  DataBlock block = MakePlaceholderBlock(DataDescriptor("song", std::move(attrs)));
  ASSERT_EQ(block.medium(), MediaType::kAudio);
  EXPECT_EQ(block.audio().rate(), 16000);
  EXPECT_EQ(block.audio().channels(), 1);
  EXPECT_EQ(block.audio().frames(), 32000u);
  EXPECT_EQ(block.IntrinsicDuration(), MediaTime::Seconds(2));
}

TEST(PlaceholderTest, RasterGeometryIsCappedToStayCheap) {
  AttrList attrs;
  attrs.Set(std::string(kDescMedium), AttrValue::Id("image"));
  attrs.Set(std::string(kDescWidth), AttrValue::Number(4000));
  attrs.Set(std::string(kDescHeight), AttrValue::Number(3000));
  DataBlock block = MakePlaceholderBlock(DataDescriptor("photo", std::move(attrs)));
  ASSERT_EQ(block.medium(), MediaType::kImage);
  EXPECT_EQ(block.image().width(), 128);
  EXPECT_EQ(block.image().height(), 128);
}

TEST(PlaceholderTest, VideoCoversDeclaredDurationWithCappedFrames) {
  AttrList attrs;
  attrs.Set(std::string(kDescMedium), AttrValue::Id("video"));
  attrs.Set(std::string(kDescRate), AttrValue::Number(25));
  attrs.Set(std::string(kDescDuration), AttrValue::Time(MediaTime::Seconds(4)));
  DataBlock block = MakePlaceholderBlock(DataDescriptor("clip", std::move(attrs)));
  ASSERT_EQ(block.medium(), MediaType::kVideo);
  EXPECT_EQ(block.video().fps(), 25);
  EXPECT_EQ(block.video().frame_count(), 100u);
  // An absurd declared duration must not make the placeholder expensive.
  AttrList huge;
  huge.Set(std::string(kDescMedium), AttrValue::Id("video"));
  huge.Set(std::string(kDescRate), AttrValue::Number(25));
  huge.Set(std::string(kDescDuration), AttrValue::Time(MediaTime::Seconds(3600)));
  DataBlock capped = MakePlaceholderBlock(DataDescriptor("movie", std::move(huge)));
  EXPECT_LE(capped.video().frame_count(), 250u);
}

TEST(RecoveryTest, HealthyFetchPassesThrough) {
  BlockStore blocks;
  blocks.Set("k", DataBlock::FromText(TextBlock("payload", {})));
  auto resolved = ResolveContentWithRecovery(StoreBacked("d", "k", "text"), blocks, FastPolicy());
  ASSERT_TRUE(resolved.ok()) << resolved.status();
  EXPECT_EQ(resolved->outcome, ResolveOutcome::kHealthy);
  EXPECT_EQ(resolved->attempts, 1);
  EXPECT_EQ(resolved->block.text().text(), "payload");
}

TEST(RecoveryTest, NoContentIsStillAnError) {
  BlockStore blocks;
  auto resolved =
      ResolveContentWithRecovery(DataDescriptor("empty", AttrList()), blocks, FastPolicy());
  EXPECT_EQ(resolved.status().code(), StatusCode::kFailedPrecondition);
}

TEST(RecoveryTest, PermanentFailureDegradesToPlaceholderImmediately) {
  BlockStore blocks;  // key absent: NotFound is not retryable
  auto resolved =
      ResolveContentWithRecovery(StoreBacked("photo", "missing", "graphic"), blocks, FastPolicy());
  ASSERT_TRUE(resolved.ok()) << resolved.status();
  EXPECT_EQ(resolved->outcome, ResolveOutcome::kPlaceholder);
  EXPECT_EQ(resolved->attempts, 1);
  EXPECT_EQ(resolved->error.code(), StatusCode::kNotFound);
  EXPECT_EQ(resolved->block.medium(), MediaType::kGraphic);
}

#ifndef CMIF_FAULT_DISABLED

fault::FaultPlan TransientPlan(double p, std::uint64_t seed) {
  fault::FaultPlan plan;
  plan.seed = seed;
  fault::FaultSiteConfig config;
  config.transient_p = p;
  plan.sites.emplace_back("ddbms.block.get", config);
  return plan;
}

TEST(RecoveryTest, TransientFaultsAreRetriedIntoRecovery) {
  GlobalFakeClock clock;
  BlockStore blocks;
  blocks.Set("k", DataBlock::FromText(TextBlock("payload", {})));
  fault::ScopedPlan chaos(TransientPlan(0.5, 11));
  int healthy = 0;
  int recovered = 0;
  int placeholder = 0;
  for (int i = 0; i < 32; ++i) {
    auto resolved =
        ResolveContentWithRecovery(StoreBacked("d" + std::to_string(i), "k", "text"), blocks,
                                   FastPolicy());
    ASSERT_TRUE(resolved.ok()) << resolved.status();
    switch (resolved->outcome) {
      case ResolveOutcome::kHealthy:
        ++healthy;
        break;
      case ResolveOutcome::kRecovered:
        ++recovered;
        EXPECT_GT(resolved->attempts, 1);
        EXPECT_EQ(resolved->block.text().text(), "payload") << "recovery returns the real payload";
        break;
      case ResolveOutcome::kPlaceholder:
        ++placeholder;
        break;
    }
  }
  EXPECT_EQ(healthy + recovered + placeholder, 32);
  EXPECT_GT(healthy, 0) << "a 0.5 plan should let some first attempts through";
  EXPECT_GT(recovered, 0) << "a 0.5 plan should force some retries";
}

TEST(RecoveryTest, ExhaustedRetriesDegradeToPlaceholder) {
  GlobalFakeClock clock;
  BlockStore blocks;
  blocks.Set("k", DataBlock::FromText(TextBlock("payload", {})));
  fault::ScopedPlan chaos(TransientPlan(1.0, 11));
  fault::RetryPolicy policy = FastPolicy();
  auto resolved = ResolveContentWithRecovery(StoreBacked("caption", "k", "text"), blocks, policy);
  ASSERT_TRUE(resolved.ok()) << resolved.status();
  EXPECT_EQ(resolved->outcome, ResolveOutcome::kPlaceholder);
  EXPECT_EQ(resolved->attempts, policy.max_attempts);
  EXPECT_EQ(resolved->error.code(), StatusCode::kUnavailable);
  EXPECT_EQ(resolved->block.text().text(), "[caption unavailable]");
}

#endif  // CMIF_FAULT_DISABLED

}  // namespace
}  // namespace cmif
