// The satellite robustness contract of the persist layer: version-2 catalogs
// carry a descriptor count (truncation detection) and per-payload CRCs
// (corruption detection); load errors are structured kDataLoss with byte
// offsets; version-1 catalogs still load; and no mutation of a valid catalog
// image may crash the reader or silently load detectably-wrong data.
#include <gtest/gtest.h>

#include <string>

#include "src/base/random.h"
#include "src/ddbms/persist.h"
#include "src/media/raster.h"

namespace cmif {
namespace {

DescriptorStore SampleStore() {
  DescriptorStore store;
  AttrList attrs;
  attrs.Set(std::string(kDescMedium), AttrValue::Id("graphic"));
  DataDescriptor image("image-1", attrs);
  image.set_content(DataBlock::FromImage(MakeTestCard(16, 12, 3), MediaType::kGraphic));
  EXPECT_TRUE(store.Add(std::move(image)).ok());
  DataDescriptor text("caption-1", AttrList());
  text.set_content(DataBlock::FromText(TextBlock("breaking news", {})));
  EXPECT_TRUE(store.Add(std::move(text)).ok());
  DataDescriptor ref("clip-1", AttrList());
  ref.set_content(std::string("store key"));
  EXPECT_TRUE(store.Add(std::move(ref)).ok());
  return store;
}

TEST(PersistRobustnessTest, WriteEmitsVersionedHeader) {
  auto text = WriteCatalog(SampleStore());
  ASSERT_TRUE(text.ok()) << text.status();
  EXPECT_NE(text->find("(catalog version 2 descriptors 3)"), std::string::npos);
  EXPECT_NE(text->find(" crc "), std::string::npos);
  auto restored = ReadCatalog(*text);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->size(), 3u);
}

TEST(PersistRobustnessTest, TruncationIsDetectedWithOffset) {
  auto text = WriteCatalog(SampleStore());
  ASSERT_TRUE(text.ok());
  // Cut the image cleanly after the second descriptor: without the header
  // count this would silently load a partial store.
  std::size_t last = text->rfind("(descriptor");
  ASSERT_NE(last, std::string::npos);
  std::string truncated = text->substr(0, last);
  auto result = ReadCatalog(truncated);
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(result.status().message().find("truncated"), std::string::npos)
      << result.status().message();
  EXPECT_NE(result.status().message().find("offset"), std::string::npos)
      << result.status().message();
}

TEST(PersistRobustnessTest, PayloadCorruptionFailsTheCrc) {
  auto text = WriteCatalog(SampleStore());
  ASSERT_TRUE(text.ok());
  // Flip one character inside the base64 image body (after `inline graphic "`).
  std::size_t body = text->find("inline graphic \"");
  ASSERT_NE(body, std::string::npos);
  std::string corrupted = *text;
  std::size_t target = body + 20;
  corrupted[target] = corrupted[target] == 'A' ? 'B' : 'A';
  auto result = ReadCatalog(corrupted);
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(result.status().message().find("CRC"), std::string::npos)
      << result.status().message();
}

TEST(PersistRobustnessTest, GarbageErrorsCarryOffsets) {
  auto result = ReadCatalog("(descriptor d1 ()\n");  // unterminated
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("offset"), std::string::npos)
      << result.status().message();
}

TEST(PersistRobustnessTest, VersionOneCatalogsStillLoad) {
  // A pre-header catalog: no (catalog ...) form, no crc suffix.
  std::string v1 =
      "; legacy catalog\n"
      "(descriptor d1 ())\n"
      "(descriptor d2 () store \"block key\")\n"
      "(descriptor d3 () inline text \"old caption\")\n";
  auto restored = ReadCatalog(v1);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->size(), 3u);
  EXPECT_EQ(std::get<DataBlock>(restored->Get("d3")->content()).text().text(), "old caption");
}

TEST(PersistRobustnessTest, FutureVersionIsRejected) {
  EXPECT_EQ(ReadCatalog("(catalog version 99 descriptors 0)\n").status().code(),
            StatusCode::kDataLoss);
}

TEST(PersistRobustnessTest, HeaderCountMismatchBothWays) {
  std::string extra =
      "(catalog version 2 descriptors 1)\n"
      "(descriptor d1 ())\n"
      "(descriptor d2 ())\n";
  EXPECT_FALSE(ReadCatalog(extra).ok());
  std::string missing = "(catalog version 2 descriptors 2)\n(descriptor d1 ())\n";
  EXPECT_FALSE(ReadCatalog(missing).ok());
}

// The fuzz contract: mutate a valid catalog image at random and the reader
// must always terminate with ok-or-structured-error — never crash — and a
// parse that succeeds despite a payload mutation must not happen (the CRC
// band catches every in-body flip; flips elsewhere either break the syntax
// or are cosmetic).
TEST(PersistRobustnessTest, FuzzMutatedImagesNeverCrash) {
  auto text = WriteCatalog(SampleStore());
  ASSERT_TRUE(text.ok());
  Rng rng(2026);
  int parsed = 0;
  int rejected = 0;
  for (int round = 0; round < 300; ++round) {
    std::string mutated = *text;
    int flips = 1 + static_cast<int>(rng.NextBelow(3));
    for (int f = 0; f < flips; ++f) {
      std::size_t position = static_cast<std::size_t>(rng.NextBelow(mutated.size()));
      mutated[position] = static_cast<char>(rng.NextBelow(256));
    }
    auto result = ReadCatalog(mutated);
    if (result.ok()) {
      ++parsed;
    } else {
      ++rejected;
      EXPECT_FALSE(result.status().message().empty());
    }
  }
  EXPECT_EQ(parsed + rejected, 300);
  EXPECT_GT(rejected, 0) << "random mutations should trip the integrity checks sometimes";
}

// Truncation fuzz: any prefix cut past the header must be rejected (count
// mismatch or syntax error), never loaded as a silently smaller store. Cuts
// inside the header itself degrade to a legacy catalog, so start after it.
TEST(PersistRobustnessTest, FuzzPrefixCutsNeverLoadPartial) {
  auto text = WriteCatalog(SampleStore());
  ASSERT_TRUE(text.ok());
  std::size_t body_start = text->find("(descriptor");
  ASSERT_NE(body_start, std::string::npos);
  Rng rng(7);
  for (int round = 0; round < 100; ++round) {
    std::size_t cut = body_start + static_cast<std::size_t>(rng.NextBelow(text->size() - body_start));
    auto result = ReadCatalog(text->substr(0, cut));
    if (result.ok()) {
      EXPECT_EQ(result->size(), 3u) << "a successful load must never be partial (cut at " << cut
                                    << ")";
    }
  }
}

}  // namespace
}  // namespace cmif
