#include "src/ddbms/store.h"

#include <gtest/gtest.h>

#include "src/base/string_util.h"

namespace cmif {
namespace {

DataDescriptor Desc(const std::string& id, const std::string& medium, std::int64_t bytes) {
  AttrList attrs;
  attrs.Set(std::string(kDescMedium), AttrValue::Id(medium));
  attrs.Set(std::string(kDescBytes), AttrValue::Number(bytes));
  return DataDescriptor(id, attrs);
}

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 30; ++i) {
      const char* medium = i % 3 == 0 ? "audio" : (i % 3 == 1 ? "video" : "text");
      ASSERT_TRUE(store_.Add(Desc(StrFormat("d%02d", i), medium, i * 100)).ok());
    }
  }

  DescriptorStore store_;
};

TEST_F(StoreTest, AddRejectsDuplicatesAndEmptyIds) {
  EXPECT_EQ(store_.Add(Desc("d00", "audio", 1)).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(store_.Add(Desc("", "audio", 1)).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(store_.size(), 30u);
}

TEST_F(StoreTest, GetFindsById) {
  const DataDescriptor* d = store_.Get("d07");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->DeclaredBytes(), 700);
  EXPECT_EQ(store_.Get("ghost"), nullptr);
}

TEST_F(StoreTest, RemoveKeepsLookupsConsistent) {
  ASSERT_TRUE(store_.Remove("d10"));
  EXPECT_FALSE(store_.Remove("d10"));
  EXPECT_EQ(store_.size(), 29u);
  // Every remaining descriptor is still findable by id.
  for (const DataDescriptor& d : store_.descriptors()) {
    EXPECT_EQ(store_.Get(d.id()), &d);
  }
}

TEST_F(StoreTest, UpsertReplaces) {
  store_.Upsert(Desc("d05", "graphic", 9999));
  EXPECT_EQ(store_.size(), 30u);
  EXPECT_EQ(store_.Get("d05")->Medium(), MediaType::kGraphic);
  store_.Upsert(Desc("new", "text", 1));
  EXPECT_EQ(store_.size(), 31u);
}

TEST_F(StoreTest, ScanAndIndexAgree) {
  store_.CreateIndex(std::string(kDescMedium));
  Query q = Query::Eq(std::string(kDescMedium), AttrValue::Id("video"));
  QueryStats indexed_stats;
  QueryStats scan_stats;
  auto indexed = store_.Execute(q, &indexed_stats);
  auto scanned = store_.ExecuteScan(q, &scan_stats);
  EXPECT_TRUE(indexed_stats.used_index);
  EXPECT_FALSE(scan_stats.used_index);
  EXPECT_EQ(indexed.size(), 10u);
  EXPECT_EQ(indexed, scanned);
  // The index narrows the candidate set to exactly the hits.
  EXPECT_EQ(indexed_stats.candidates_examined, 10u);
  EXPECT_EQ(scan_stats.candidates_examined, 30u);
}

TEST_F(StoreTest, ExecuteWithoutIndexFallsBackToScan) {
  Query q = Query::Eq(std::string(kDescMedium), AttrValue::Id("audio"));
  QueryStats stats;
  auto results = store_.Execute(q, &stats);
  EXPECT_FALSE(stats.used_index);
  EXPECT_EQ(results.size(), 10u);
}

TEST_F(StoreTest, RangeQueryUsesNumberIndex) {
  store_.CreateIndex(std::string(kDescBytes));
  Query q = Query::Range(std::string(kDescBytes), 500, 900);
  QueryStats stats;
  auto results = store_.Execute(q, &stats);
  EXPECT_TRUE(stats.used_index);
  EXPECT_EQ(results.size(), 5u);  // 500, 600, 700, 800, 900
  EXPECT_EQ(results, store_.ExecuteScan(q));
}

TEST_F(StoreTest, AndPicksNarrowestIndexedConjunct) {
  store_.CreateIndex(std::string(kDescMedium));
  store_.CreateIndex(std::string(kDescBytes));
  // bytes range [0, 200] matches 3 slots; medium=audio matches 10.
  Query q = Query::And({Query::Eq(std::string(kDescMedium), AttrValue::Id("audio")),
                        Query::Range(std::string(kDescBytes), 0, 200)});
  QueryStats stats;
  auto results = store_.Execute(q, &stats);
  EXPECT_TRUE(stats.used_index);
  EXPECT_LE(stats.candidates_examined, 3u);
  EXPECT_EQ(results, store_.ExecuteScan(q));
}

TEST_F(StoreTest, IndexMaintainedAcrossMutations) {
  store_.CreateIndex(std::string(kDescMedium));
  ASSERT_TRUE(store_.Add(Desc("extra", "video", 1)).ok());
  ASSERT_TRUE(store_.Remove("d01"));  // a video descriptor
  store_.Upsert(Desc("d04", "video", 2));  // was video (4 % 3 == 1), stays video
  Query q = Query::Eq(std::string(kDescMedium), AttrValue::Id("video"));
  auto indexed = store_.Execute(q);
  auto scanned = store_.ExecuteScan(q);
  EXPECT_EQ(indexed, scanned);
}

TEST_F(StoreTest, IndexMissYieldsEmptyFast) {
  store_.CreateIndex(std::string(kDescMedium));
  Query q = Query::Eq(std::string(kDescMedium), AttrValue::Id("smell"));
  QueryStats stats;
  auto results = store_.Execute(q, &stats);
  EXPECT_TRUE(stats.used_index);
  EXPECT_EQ(stats.candidates_examined, 0u);
  EXPECT_TRUE(results.empty());
}

TEST_F(StoreTest, OrNeverUsesIndex) {
  store_.CreateIndex(std::string(kDescMedium));
  Query q = Query::Or({Query::Eq(std::string(kDescMedium), AttrValue::Id("audio")),
                       Query::Has("ghost")});
  QueryStats stats;
  auto results = store_.Execute(q, &stats);
  EXPECT_FALSE(stats.used_index);  // OR may match outside any one index bucket
  EXPECT_EQ(results.size(), 10u);
}

TEST_F(StoreTest, CreateIndexIsIdempotent) {
  store_.CreateIndex(std::string(kDescMedium));
  store_.CreateIndex(std::string(kDescMedium));
  EXPECT_TRUE(store_.HasIndex(std::string(kDescMedium)));
  Query q = Query::Eq(std::string(kDescMedium), AttrValue::Id("audio"));
  EXPECT_EQ(store_.Execute(q).size(), 10u);
}

TEST_F(StoreTest, ResultsInInsertionOrder) {
  store_.CreateIndex(std::string(kDescMedium));
  Query q = Query::Eq(std::string(kDescMedium), AttrValue::Id("audio"));
  auto results = store_.Execute(q);
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_LT(results[i - 1]->id(), results[i]->id());  // d00, d03, d06...
  }
}

}  // namespace
}  // namespace cmif
