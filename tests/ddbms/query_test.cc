#include "src/ddbms/query.h"

#include <gtest/gtest.h>

namespace cmif {
namespace {

AttrList Attrs(std::vector<Attr> attrs) { return AttrList::FromAttrs(std::move(attrs)); }

TEST(QueryTest, EqMatchesExactValue) {
  Query q = Query::Eq("medium", AttrValue::Id("audio"));
  EXPECT_TRUE(q.Matches(Attrs({{"medium", AttrValue::Id("audio")}})));
  EXPECT_FALSE(q.Matches(Attrs({{"medium", AttrValue::Id("video")}})));
  EXPECT_FALSE(q.Matches(Attrs({})));
  // ID does not match STRING of the same text.
  EXPECT_FALSE(q.Matches(Attrs({{"medium", AttrValue::String("audio")}})));
}

TEST(QueryTest, EqNumberMatchesWholeSecondTime) {
  Query q = Query::Eq("duration", AttrValue::Number(4));
  EXPECT_TRUE(q.Matches(Attrs({{"duration", AttrValue::Time(MediaTime::Seconds(4))}})));
  EXPECT_FALSE(q.Matches(Attrs({{"duration", AttrValue::Time(MediaTime::Rational(9, 2))}})));
}

TEST(QueryTest, RangeIsInclusive) {
  Query q = Query::Range("bytes", 10, 20);
  EXPECT_TRUE(q.Matches(Attrs({{"bytes", AttrValue::Number(10)}})));
  EXPECT_TRUE(q.Matches(Attrs({{"bytes", AttrValue::Number(20)}})));
  EXPECT_FALSE(q.Matches(Attrs({{"bytes", AttrValue::Number(21)}})));
  EXPECT_FALSE(q.Matches(Attrs({{"bytes", AttrValue::Id("x")}})));  // non-number
}

TEST(QueryTest, HasChecksPresence) {
  Query q = Query::Has("keywords");
  EXPECT_TRUE(q.Matches(Attrs({{"keywords", AttrValue::String("")}})));
  EXPECT_FALSE(q.Matches(Attrs({})));
}

TEST(QueryTest, BooleanCombinators) {
  Query q = Query::And({Query::Eq("a", AttrValue::Number(1)),
                        Query::Not(Query::Eq("b", AttrValue::Number(2)))});
  EXPECT_TRUE(q.Matches(Attrs({{"a", AttrValue::Number(1)}})));
  EXPECT_FALSE(q.Matches(Attrs({{"a", AttrValue::Number(1)}, {"b", AttrValue::Number(2)}})));

  Query either = Query::Or({Query::Has("x"), Query::Has("y")});
  EXPECT_TRUE(either.Matches(Attrs({{"y", AttrValue::Number(0)}})));
  EXPECT_FALSE(either.Matches(Attrs({{"z", AttrValue::Number(0)}})));
}

TEST(ParseQueryTest, SimplePredicates) {
  auto q = ParseQuery("medium=audio");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->kind(), Query::Kind::kEq);
  EXPECT_TRUE(q->Matches(Attrs({{"medium", AttrValue::Id("audio")}})));

  auto range = ParseQuery("bytes:[100,200]");
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->kind(), Query::Kind::kRange);
  EXPECT_EQ(range->lo(), 100);
  EXPECT_EQ(range->hi(), 200);

  auto has = ParseQuery("has(keywords)");
  ASSERT_TRUE(has.ok());
  EXPECT_EQ(has->kind(), Query::Kind::kHas);
}

TEST(ParseQueryTest, ValueForms) {
  auto number = ParseQuery("n=42");
  ASSERT_TRUE(number.ok());
  EXPECT_TRUE(number->value().is_number());

  auto text = ParseQuery("s=\"two words\"");
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(text->value().string(), "two words");

  auto id = ParseQuery("m=video");
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(id->value().is_id());
}

TEST(ParseQueryTest, PrecedenceAndParens) {
  // a=1 | b=2 & c=3  ==  a=1 | (b=2 & c=3)
  auto q = ParseQuery("a=1 | b=2 & c=3");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->kind(), Query::Kind::kOr);
  ASSERT_EQ(q->children().size(), 2u);
  EXPECT_EQ(q->children()[1].kind(), Query::Kind::kAnd);

  auto grouped = ParseQuery("(a=1 | b=2) & c=3");
  ASSERT_TRUE(grouped.ok());
  EXPECT_EQ(grouped->kind(), Query::Kind::kAnd);
}

TEST(ParseQueryTest, NotBindsTightly) {
  auto q = ParseQuery("!a=1 & b=2");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->kind(), Query::Kind::kAnd);
  EXPECT_EQ(q->children()[0].kind(), Query::Kind::kNot);
  EXPECT_TRUE(q->Matches(Attrs({{"b", AttrValue::Number(2)}})));
}

TEST(ParseQueryTest, RejectsGarbage) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("a=").ok());
  EXPECT_FALSE(ParseQuery("a=1 trailing").ok());
  EXPECT_FALSE(ParseQuery("a:[1,").ok());
  EXPECT_FALSE(ParseQuery("(a=1").ok());
  EXPECT_FALSE(ParseQuery("has(x").ok());
  EXPECT_FALSE(ParseQuery("a").ok());
}

TEST(ParseQueryTest, ToStringReparses) {
  for (const char* text : {"medium=audio", "bytes:[1,9] & has(k)", "!(a=1 | b=\"x\")"}) {
    auto q = ParseQuery(text);
    ASSERT_TRUE(q.ok()) << text;
    auto reparsed = ParseQuery(q->ToString());
    ASSERT_TRUE(reparsed.ok()) << q->ToString();
    EXPECT_EQ(reparsed->ToString(), q->ToString());
  }
}

}  // namespace
}  // namespace cmif
