#include "src/ddbms/descriptor.h"

#include <gtest/gtest.h>

namespace cmif {
namespace {

TEST(DataDescriptorTest, MediumDefaultsToText) {
  // "The data is either text (the default) or another medium" (section 5.1).
  DataDescriptor descriptor("d1", AttrList());
  EXPECT_EQ(descriptor.Medium(), MediaType::kText);
}

TEST(DataDescriptorTest, MediumFromAttribute) {
  AttrList attrs;
  attrs.Set(std::string(kDescMedium), AttrValue::Id("video"));
  DataDescriptor descriptor("d1", attrs);
  EXPECT_EQ(descriptor.Medium(), MediaType::kVideo);
}

TEST(DataDescriptorTest, DeclaredDurationAndBytes) {
  AttrList attrs;
  attrs.Set(std::string(kDescDuration), AttrValue::Time(MediaTime::Rational(5, 2)));
  attrs.Set(std::string(kDescBytes), AttrValue::Number(1024));
  DataDescriptor descriptor("d1", attrs);
  EXPECT_EQ(descriptor.DeclaredDuration(), MediaTime::Rational(5, 2));
  EXPECT_EQ(descriptor.DeclaredBytes(), 1024);
  EXPECT_EQ(DataDescriptor("d2", AttrList()).DeclaredBytes(), 0);
}

TEST(DataDescriptorTest, DeriveFromAudio) {
  DataDescriptor descriptor("d1", AttrList());
  descriptor.DeriveAttrsFrom(DataBlock::FromAudio(MakeTone(8000, MediaTime::Seconds(2), 440, 0.5)));
  EXPECT_EQ(descriptor.Medium(), MediaType::kAudio);
  EXPECT_EQ(descriptor.DeclaredDuration(), MediaTime::Seconds(2));
  EXPECT_EQ(descriptor.DeclaredBytes(), 32000);
  EXPECT_EQ(*descriptor.attrs().GetNumber(kDescRate), 8000);
  EXPECT_EQ(*descriptor.attrs().GetString(kDescFormat), "pcm16");
}

TEST(DataDescriptorTest, DeriveFromVideo) {
  DataDescriptor descriptor("d1", AttrList());
  descriptor.DeriveAttrsFrom(
      DataBlock::FromVideo(MakeFlyingBirdSegment(32, 24, 10, MediaTime::Seconds(1))));
  EXPECT_EQ(*descriptor.attrs().GetNumber(kDescWidth), 32);
  EXPECT_EQ(*descriptor.attrs().GetNumber(kDescHeight), 24);
  EXPECT_EQ(*descriptor.attrs().GetNumber(kDescRate), 10);
  EXPECT_EQ(*descriptor.attrs().GetNumber(kDescColorBits), 8);
}

TEST(DataDescriptorTest, DeriveFromGeneratorSkipsPayloadFields) {
  GeneratorSpec spec;
  spec.generator = "tone";
  spec.duration = MediaTime::Seconds(4);
  spec.approx_bytes = 64000;
  DataDescriptor descriptor("d1", AttrList());
  descriptor.DeriveAttrsFrom(DataBlock::FromGenerator(MediaType::kAudio, spec));
  EXPECT_EQ(descriptor.Medium(), MediaType::kAudio);
  EXPECT_EQ(descriptor.DeclaredDuration(), MediaTime::Seconds(4));
  EXPECT_EQ(descriptor.DeclaredBytes(), 64000);
  EXPECT_FALSE(descriptor.attrs().Has(kDescRate));  // not derivable
}

TEST(BlockStoreTest, PutGetRemove) {
  BlockStore store;
  ASSERT_TRUE(store.Put("k1", DataBlock::FromText(TextBlock("x", {}))).ok());
  EXPECT_EQ(store.Put("k1", DataBlock()).code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(store.Has("k1"));
  auto got = store.Get("k1");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->text().text(), "x");
  EXPECT_TRUE(store.Remove("k1"));
  EXPECT_FALSE(store.Remove("k1"));
  EXPECT_EQ(store.Get("k1").status().code(), StatusCode::kNotFound);
}

TEST(BlockStoreTest, SetUpserts) {
  BlockStore store;
  store.Set("k", DataBlock::FromText(TextBlock("first", {})));
  store.Set("k", DataBlock::FromText(TextBlock("second", {})));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.Get("k")->text().text(), "second");
}

TEST(BlockStoreTest, TotalBytesSums) {
  BlockStore store;
  store.Set("a", DataBlock::FromText(TextBlock("1234", {})));
  store.Set("b", DataBlock::FromText(TextBlock("12", {})));
  EXPECT_EQ(store.TotalBytes(), 6u);
}

TEST(ResolveContentTest, InlineBlock) {
  DataDescriptor descriptor("d", AttrList());
  descriptor.set_content(DataBlock::FromText(TextBlock("inline", {})));
  BlockStore store;
  auto block = ResolveContent(descriptor, store);
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(block->text().text(), "inline");
}

TEST(ResolveContentTest, StoreKey) {
  BlockStore store;
  store.Set("key", DataBlock::FromText(TextBlock("stored", {})));
  DataDescriptor descriptor("d", AttrList());
  descriptor.set_content(std::string("key"));
  auto block = ResolveContent(descriptor, store);
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(block->text().text(), "stored");
  // Missing key propagates NotFound.
  descriptor.set_content(std::string("ghost"));
  EXPECT_EQ(ResolveContent(descriptor, store).status().code(), StatusCode::kNotFound);
}

TEST(ResolveContentTest, GeneratorRuns) {
  GeneratorSpec spec;
  spec.generator = "test_card";
  spec.params = "width=8,height=8,seed=1";
  DataDescriptor descriptor("d", AttrList());
  descriptor.set_content(spec);
  BlockStore store;
  auto block = ResolveContent(descriptor, store);
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(block->image().width(), 8);
}

TEST(ResolveContentTest, NoContentIsFailedPrecondition) {
  DataDescriptor descriptor("d", AttrList());
  BlockStore store;
  EXPECT_FALSE(descriptor.has_content());
  EXPECT_EQ(ResolveContent(descriptor, store).status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace cmif
