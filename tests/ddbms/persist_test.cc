#include "src/ddbms/persist.h"

#include <gtest/gtest.h>

namespace cmif {
namespace {

TEST(PersistTest, RoundTripAttributesOnly) {
  DescriptorStore store;
  AttrList attrs;
  attrs.Set(std::string(kDescMedium), AttrValue::Id("video"));
  attrs.Set(std::string(kDescKeywords), AttrValue::String("stolen painting"));
  attrs.Set(std::string(kDescDuration), AttrValue::Time(MediaTime::Rational(7, 2)));
  ASSERT_TRUE(store.Add(DataDescriptor("clip-1", attrs)).ok());

  auto text = WriteCatalog(store);
  ASSERT_TRUE(text.ok()) << text.status();
  auto restored = ReadCatalog(*text);
  ASSERT_TRUE(restored.ok()) << restored.status();
  ASSERT_EQ(restored->size(), 1u);
  const DataDescriptor* d = restored->Get("clip-1");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->attrs(), attrs);
  EXPECT_FALSE(d->has_content());
}

TEST(PersistTest, RoundTripStoreKey) {
  DescriptorStore store;
  DataDescriptor d("d1", AttrList());
  d.set_content(std::string("block key with spaces"));
  ASSERT_TRUE(store.Add(std::move(d)).ok());
  auto restored = ReadCatalog(*WriteCatalog(store));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(std::get<std::string>(restored->Get("d1")->content()), "block key with spaces");
}

TEST(PersistTest, RoundTripGenerator) {
  DescriptorStore store;
  DataDescriptor d("d1", AttrList());
  GeneratorSpec spec;
  spec.generator = "tone";
  spec.params = "rate=8000,hz=440";
  spec.duration = MediaTime::Rational(5, 2);
  spec.approx_bytes = 40000;
  d.set_content(spec);
  ASSERT_TRUE(store.Add(std::move(d)).ok());
  auto restored = ReadCatalog(*WriteCatalog(store));
  ASSERT_TRUE(restored.ok()) << restored.status();
  const auto& restored_spec = std::get<GeneratorSpec>(restored->Get("d1")->content());
  EXPECT_EQ(restored_spec, spec);
}

TEST(PersistTest, RoundTripInlineText) {
  DescriptorStore store;
  DataDescriptor d("d1", AttrList());
  d.set_content(DataBlock::FromText(TextBlock("caption \"quoted\"\ntwo lines", {})));
  ASSERT_TRUE(store.Add(std::move(d)).ok());
  auto restored = ReadCatalog(*WriteCatalog(store));
  ASSERT_TRUE(restored.ok()) << restored.status();
  const auto& block = std::get<DataBlock>(restored->Get("d1")->content());
  EXPECT_EQ(block.text().text(), "caption \"quoted\"\ntwo lines");
}

TEST(PersistTest, RoundTripInlineAudio) {
  DescriptorStore store;
  DataDescriptor d("d1", AttrList());
  AudioBuffer tone = MakeTone(8000, MediaTime::Millis(50), 440, 0.5);
  d.set_content(DataBlock::FromAudio(tone));
  ASSERT_TRUE(store.Add(std::move(d)).ok());
  auto restored = ReadCatalog(*WriteCatalog(store));
  ASSERT_TRUE(restored.ok()) << restored.status();
  const auto& block = std::get<DataBlock>(restored->Get("d1")->content());
  EXPECT_EQ(block.audio(), tone);
}

TEST(PersistTest, RoundTripInlineImage) {
  DescriptorStore store;
  DataDescriptor d("d1", AttrList());
  Raster card = MakeTestCard(16, 12, 9);
  d.set_content(DataBlock::FromImage(card, MediaType::kGraphic));
  ASSERT_TRUE(store.Add(std::move(d)).ok());
  auto restored = ReadCatalog(*WriteCatalog(store));
  ASSERT_TRUE(restored.ok()) << restored.status();
  const auto& block = std::get<DataBlock>(restored->Get("d1")->content());
  EXPECT_EQ(block.medium(), MediaType::kGraphic);
  EXPECT_EQ(block.image(), card);
}

TEST(PersistTest, InlineVideoIsUnsupported) {
  DescriptorStore store;
  DataDescriptor d("d1", AttrList());
  d.set_content(DataBlock::FromVideo(MakeFlyingBirdSegment(8, 6, 5, MediaTime::Seconds(1))));
  ASSERT_TRUE(store.Add(std::move(d)).ok());
  EXPECT_EQ(WriteCatalog(store).status().code(), StatusCode::kUnimplemented);
}

TEST(PersistTest, MultipleDescriptorsKeepOrder) {
  DescriptorStore store;
  for (const char* id : {"alpha", "beta", "gamma"}) {
    ASSERT_TRUE(store.Add(DataDescriptor(id, AttrList())).ok());
  }
  auto restored = ReadCatalog(*WriteCatalog(store));
  ASSERT_TRUE(restored.ok());
  ASSERT_EQ(restored->size(), 3u);
  EXPECT_EQ(restored->descriptors()[0].id(), "alpha");
  EXPECT_EQ(restored->descriptors()[2].id(), "gamma");
}

TEST(PersistTest, ReadRejectsMalformedCatalogs) {
  EXPECT_EQ(ReadCatalog("(notdescriptor x ())").status().code(), StatusCode::kDataLoss);
  EXPECT_FALSE(ReadCatalog("(descriptor d1 ()").ok());               // unterminated
  EXPECT_FALSE(ReadCatalog("(descriptor d1 () mystery \"x\")").ok());  // unknown content kind
  EXPECT_FALSE(ReadCatalog("(descriptor d1 () inline video \"x\")").ok());
}

TEST(PersistTest, EmptyCatalogIsEmptyStore) {
  auto restored = ReadCatalog("; just a comment\n");
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored->empty());
}

TEST(PersistTest, DuplicateIdsInCatalogRejected) {
  std::string text = "(descriptor d ())\n(descriptor d ())\n";
  EXPECT_EQ(ReadCatalog(text).status().code(), StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace cmif
