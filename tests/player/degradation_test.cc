// Playback degradation under device faults: lost payloads present a
// placeholder in their scheduled slot (sync holds), and a persistently
// failing device sheds the lowest-priority channel instead of killing the
// presentation.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "src/doc/builder.h"
#include "src/fault/fault.h"
#include "src/media/raster.h"
#include "src/player/engine.h"
#include "src/sched/conflict.h"

namespace cmif {
namespace {

struct Playable {
  Document doc{NodeKind::kSeq};
  std::vector<EventDescriptor> events;
  Schedule schedule;
  DescriptorStore store;
};

// Alternating text captions and graphic slides on two channels: the graphic
// channel is the fault target, the text channel is the lowest-priority
// shedding victim.
Playable CaptionedSlides(int pairs) {
  Playable p;
  DocBuilder builder;
  builder.DefineChannel("txt", MediaType::kText);
  builder.DefineChannel("img", MediaType::kGraphic);
  for (int i = 0; i < pairs; ++i) {
    std::string n = std::to_string(i);
    builder.ImmText("caption-" + n, "slide " + n).OnChannel("txt").WithDuration(
        MediaTime::Seconds(1));
    builder.Imm("slide-" + n, DataBlock::FromImage(MakeTestCard(16, 12, i), MediaType::kGraphic))
        .OnChannel("img")
        .WithDuration(MediaTime::Seconds(1));
  }
  auto doc = builder.Build();
  EXPECT_TRUE(doc.ok()) << doc.status();
  p.doc = std::move(doc).value();
  auto events = CollectEvents(p.doc, nullptr);
  EXPECT_TRUE(events.ok()) << events.status();
  p.events = std::move(events).value();
  auto result = ComputeSchedule(p.doc, p.events);
  EXPECT_TRUE(result.ok() && result->feasible);
  p.schedule = std::move(result)->schedule;
  return p;
}

TEST(PlayerDegradationTest, FaultFreeRunsAreUnaffected) {
  Playable p = CaptionedSlides(3);
  PlayerOptions options;
  options.enable_degradation = true;
  auto result = Play(p.doc, p.schedule, &p.store, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->degraded_events, 0u);
  EXPECT_EQ(result->suppressed_events, 0u);
  EXPECT_TRUE(result->dropped_channels.empty());
  EXPECT_EQ(result->sync_violations, 0u);
}

#ifndef CMIF_FAULT_DISABLED

fault::FaultPlan DeviceDropPlan(const std::string& channel, double p) {
  fault::FaultPlan plan;
  plan.seed = 3;
  fault::FaultSiteConfig config;
  config.transient_p = p;  // the transient band drops the payload
  plan.sites.emplace_back("player.device." + channel, config);
  return plan;
}

TEST(PlayerDegradationTest, LostPayloadsPresentPlaceholdersInTheirSlot) {
  Playable p = CaptionedSlides(4);
  fault::ScopedPlan chaos(DeviceDropPlan("img", 1.0));
  auto result = Play(p.doc, p.schedule, &p.store);
  ASSERT_TRUE(result.ok()) << result.status();
  // Every graphic payload was lost; every slot still presented (a
  // placeholder), so the trace is full-length and consistent.
  EXPECT_EQ(result->degraded_events, 4u);
  EXPECT_EQ(result->trace.size(), 8u);
  EXPECT_EQ(result->trace.DegradedCount(), 4u);
  for (const TraceEntry& entry : result->trace.entries()) {
    EXPECT_EQ(entry.degraded, entry.channel == "img") << entry.label;
  }
  EXPECT_TRUE(result->trace.Verify().ok());
  EXPECT_EQ(result->sync_violations, 0u) << "freezes absorb what tolerance cannot";
  // Without enable_degradation nothing is shed.
  EXPECT_TRUE(result->dropped_channels.empty());
  EXPECT_EQ(result->suppressed_events, 0u);
}

TEST(PlayerDegradationTest, PersistentFaultsShedTheLowestPriorityChannel) {
  Playable p = CaptionedSlides(6);
  PlayerOptions options;
  options.enable_degradation = true;
  options.channel_breaker.failure_threshold = 2;
  fault::ScopedPlan chaos(DeviceDropPlan("img", 1.0));
  auto result = Play(p.doc, p.schedule, &p.store, options);
  ASSERT_TRUE(result.ok()) << result.status();
  // The second lost slide opens the img breaker; the shedding victim is the
  // lowest-priority live channel — text before graphics.
  ASSERT_FALSE(result->dropped_channels.empty());
  EXPECT_EQ(result->dropped_channels[0], "txt");
  EXPECT_GT(result->suppressed_events, 0u) << "later captions are skipped, not presented";
  EXPECT_GT(result->degraded_events, 0u);
  // Whatever was presented stays consistent and inside its sync windows.
  EXPECT_TRUE(result->trace.Verify().ok());
  EXPECT_EQ(result->sync_violations, 0u);
}

TEST(PlayerDegradationTest, DegradationReplaysDeterministically) {
  auto run = [] {
    Playable p = CaptionedSlides(5);
    PlayerOptions options;
    options.enable_degradation = true;
    fault::ScopedPlan chaos(DeviceDropPlan("img", 0.5));
    auto result = Play(p.doc, p.schedule, &p.store, options);
    EXPECT_TRUE(result.ok());
    return std::make_tuple(result->degraded_events, result->suppressed_events,
                           result->dropped_channels);
  };
  EXPECT_EQ(run(), run()) << "the same plan seed must degrade the same way";
}

#endif  // CMIF_FAULT_DISABLED

}  // namespace
}  // namespace cmif
