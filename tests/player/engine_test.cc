#include "src/player/engine.h"

#include <gtest/gtest.h>

#include "src/doc/builder.h"
#include "src/news/evening_news.h"
#include "src/sched/conflict.h"

namespace cmif {
namespace {

struct Playable {
  Document doc{NodeKind::kSeq};
  std::vector<EventDescriptor> events;
  Schedule schedule;
  DescriptorStore store;
};

// Two 1s text events back to back on one channel.
Playable TextChain() {
  Playable p;
  DocBuilder builder;
  builder.DefineChannel("txt", MediaType::kText);
  builder.ImmText("a", "x").OnChannel("txt").WithDuration(MediaTime::Seconds(1));
  builder.ImmText("b", "y").OnChannel("txt").WithDuration(MediaTime::Seconds(1));
  auto doc = builder.Build();
  EXPECT_TRUE(doc.ok());
  p.doc = std::move(doc).value();
  auto events = CollectEvents(p.doc, nullptr);
  EXPECT_TRUE(events.ok());
  p.events = std::move(events).value();
  auto result = ComputeSchedule(p.doc, p.events);
  EXPECT_TRUE(result.ok() && result->feasible);
  p.schedule = std::move(result)->schedule;
  return p;
}

TEST(EngineTest, FastDevicesPlayOnSchedule) {
  Playable p = TextChain();
  auto result = Play(p.doc, p.schedule, &p.store);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->trace.size(), 2u);
  EXPECT_EQ(result->trace.FreezeCount(), 0u);
  EXPECT_TRUE(result->trace.Verify().ok());
  EXPECT_EQ(result->clock.document_time(), MediaTime::Seconds(2));
}

TEST(EngineTest, SlowDeviceForcesFreeze) {
  Playable p = TextChain();
  PlayerOptions options;
  options.profile = WorkstationProfile();
  // Make the text device brutally slow: 500ms setup >> 50ms tolerance.
  options.profile.text.setup = MediaTime::Millis(500);
  auto result = Play(p.doc, p.schedule, &p.store, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->trace.FreezeCount(), 1u);
  EXPECT_GT(result->clock.frozen_total(), MediaTime());
  EXPECT_TRUE(result->trace.Verify().ok());
}

TEST(EngineTest, FreezeDisabledRecordsLatenessInstead) {
  Playable p = TextChain();
  PlayerOptions options;
  options.profile.text.setup = MediaTime::Millis(500);
  options.enable_freeze = false;
  auto result = Play(p.doc, p.schedule, &p.store, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->trace.FreezeCount(), 0u);
  auto jitter = result->trace.JitterByChannel();
  EXPECT_GT(jitter["txt"].max_lateness_ms, 100.0);
}

TEST(EngineTest, StartAtSkipsEarlyEvents) {
  Playable p = TextChain();
  PlayerOptions options;
  options.start_at = MediaTime::Rational(3, 2);  // inside event b
  auto result = Play(p.doc, p.schedule, &p.store, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->events_skipped, 1u);
  EXPECT_EQ(result->trace.size(), 1u);
  EXPECT_EQ(result->trace.entries()[0].label, "b");
}

TEST(EngineTest, SlowMotionScalesPresentationTime) {
  Playable p = TextChain();
  PlayerOptions options;
  options.rate_num = 1;
  options.rate_den = 2;
  auto result = Play(p.doc, p.schedule, &p.store, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->clock.presentation_time(), MediaTime::Seconds(4));
}

TEST(EngineTest, DevicesRecordPresentations) {
  Playable p = TextChain();
  auto result = Play(p.doc, p.schedule, &p.store);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->devices.size(), 1u);
  EXPECT_EQ(result->devices[0].channel(), "txt");
  EXPECT_EQ(result->devices[0].records().size(), 2u);
}

TEST(EngineTest, MustArcToleranceOverridesDefault) {
  // An explicit must arc with a generous max_delay lets the event run later
  // than the engine default without freezing.
  DocBuilder builder;
  builder.DefineChannel("txt", MediaType::kText);
  builder.Par("p")
      .ImmText("a", "x")
      .OnChannel("txt")
      .WithDuration(MediaTime::Seconds(1))
      .Up();
  builder.Arc(WindowArc(NodePath(), ArcEdge::kBegin, *NodePath::Parse("p/a"),
                        ArcEdge::kBegin, MediaTime(), MediaTime(), MediaTime::Seconds(2)));
  auto doc = builder.Build();
  ASSERT_TRUE(doc.ok());
  auto events = CollectEvents(*doc, nullptr);
  ASSERT_TRUE(events.ok());
  auto scheduled = ComputeSchedule(*doc, *events);
  ASSERT_TRUE(scheduled.ok() && scheduled->feasible);
  PlayerOptions options;
  options.profile.text.setup = MediaTime::Millis(500);  // late, but within 2s
  DescriptorStore store;
  auto result = Play(*doc, scheduled->schedule, &store, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->trace.FreezeCount(), 0u);  // the 2s window absorbed it
}

TEST(EngineTest, NewsPlaysCleanOnWorkstationFreezesOnPortable) {
  auto workload = BuildEveningNews(NewsOptions{});
  ASSERT_TRUE(workload.ok());
  auto events = CollectEvents(workload->document, &workload->store);
  ASSERT_TRUE(events.ok());
  auto scheduled = ComputeSchedule(workload->document, *events);
  ASSERT_TRUE(scheduled.ok() && scheduled->feasible);

  PlayerOptions fast;
  fast.profile = WorkstationProfile();
  auto fast_run = Play(workload->document, scheduled->schedule, &workload->store, fast);
  ASSERT_TRUE(fast_run.ok());
  EXPECT_EQ(fast_run->trace.FreezeCount(), 0u);

  PlayerOptions slow;
  slow.profile = PortableMonoProfile();
  auto slow_run = Play(workload->document, scheduled->schedule, &workload->store, slow);
  ASSERT_TRUE(slow_run.ok());
  EXPECT_GT(slow_run->trace.FreezeCount(), 0u);
  EXPECT_TRUE(slow_run->trace.Verify().ok());
  // The freeze-frame stretches the presentation beyond the document span.
  EXPECT_GT(slow_run->clock.presentation_time(), scheduled->schedule.MakeSpan());
}

TEST(EngineTest, UnknownChannelIsAnError) {
  Playable p = TextChain();
  // Remove the channel from the document's dictionary after scheduling.
  p.doc.channels() = ChannelDictionary();
  auto result = Play(p.doc, p.schedule, &p.store);
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace cmif
