// Deeper playback-engine scenarios: combined rate + freeze, bandwidth-bound
// transfers, device occupancy interactions, and full-document replay
// consistency after edits.
#include <gtest/gtest.h>

#include "src/doc/builder.h"
#include "src/doc/edit.h"
#include "src/news/evening_news.h"
#include "src/player/engine.h"
#include "src/sched/conflict.h"

namespace cmif {
namespace {

struct Built {
  Document doc{NodeKind::kSeq};
  std::vector<EventDescriptor> events;
  Schedule schedule;
  DescriptorStore store;
};

Built Schedule1sAudio(std::int64_t bytes) {
  Built b;
  AttrList attrs;
  attrs.Set(std::string(kDescMedium), AttrValue::Id("audio"));
  attrs.Set(std::string(kDescDuration), AttrValue::Time(MediaTime::Seconds(1)));
  attrs.Set(std::string(kDescBytes), AttrValue::Number(bytes));
  EXPECT_TRUE(b.store.Add(DataDescriptor("clip", attrs)).ok());
  DocBuilder builder;
  builder.DefineChannel("sound", MediaType::kAudio).Ext("a", "clip").OnChannel("sound");
  auto doc = builder.Build();
  EXPECT_TRUE(doc.ok());
  b.doc = std::move(doc).value();
  auto events = CollectEvents(b.doc, &b.store);
  EXPECT_TRUE(events.ok());
  b.events = std::move(events).value();
  auto result = ComputeSchedule(b.doc, b.events);
  EXPECT_TRUE(result.ok() && result->feasible);
  b.schedule = std::move(result)->schedule;
  return b;
}

TEST(EngineMoreTest, TransferTimeDelaysLargePayloads) {
  // 1 MB through a 1 MB/s device at t=0 cannot start on time.
  Built b = Schedule1sAudio(1'000'000);
  PlayerOptions options;
  options.profile.audio = DeviceTiming{MediaTime(), MediaTime(), 1'000'000};
  options.enable_freeze = false;
  auto run = Play(b.doc, b.schedule, &b.store, options);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->trace.entries()[0].lateness, MediaTime::Seconds(1));
}

TEST(EngineMoreTest, TinyPayloadStartsOnTime) {
  Built b = Schedule1sAudio(100);
  PlayerOptions options;
  options.profile.audio = DeviceTiming{MediaTime(), MediaTime(), 1'000'000};
  auto run = Play(b.doc, b.schedule, &b.store, options);
  ASSERT_TRUE(run.ok());
  // 100 bytes at 1 MB/s = 0.1 ms, under the 50 ms default tolerance.
  EXPECT_EQ(run->trace.FreezeCount(), 0u);
  EXPECT_LT(run->trace.entries()[0].lateness, MediaTime::Millis(1));
}

TEST(EngineMoreTest, RateAndFreezeCompose) {
  Built b = Schedule1sAudio(1'000'000);
  PlayerOptions options;
  options.profile.audio = DeviceTiming{MediaTime(), MediaTime(), 1'000'000};
  options.rate_num = 1;
  options.rate_den = 2;  // slow motion
  auto run = Play(b.doc, b.schedule, &b.store, options);
  ASSERT_TRUE(run.ok());
  // Document spans 1s -> 2s at half speed, plus the 1s transfer freeze.
  EXPECT_EQ(run->clock.presentation_time(), MediaTime::Seconds(3));
  EXPECT_EQ(run->clock.frozen_total(), MediaTime::Seconds(1));
}

TEST(EngineMoreTest, ReplayAfterDeleteEditStaysConsistent) {
  // Delete story2 from the news, re-validate, re-schedule, re-play.
  auto workload = BuildEveningNews(NewsOptions{});
  ASSERT_TRUE(workload.ok());
  Node* story2 = workload->document.root().FindChild("story2");
  ASSERT_NE(story2, nullptr);
  auto edit = DeleteSubtree(workload->document, *story2);
  ASSERT_TRUE(edit.ok()) << edit.status();

  auto events = CollectEvents(workload->document, &workload->store);
  ASSERT_TRUE(events.ok()) << events.status();
  auto result = ComputeSchedule(workload->document, *events);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->feasible);
  auto run = Play(workload->document, result->schedule, &workload->store);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->trace.Verify().ok());
  // One fewer story: roughly a third shorter than the 3-story broadcast.
  EXPECT_LT(result->schedule.MakeSpan(), MediaTime::Seconds(35));
}

TEST(EngineMoreTest, ReplayAfterMoveEditStaysConsistent) {
  // Swap story order: move story3 before story1; arcs inside stories are
  // self-contained, so everything still schedules and plays.
  auto workload = BuildEveningNews(NewsOptions{});
  ASSERT_TRUE(workload.ok());
  Node* story3 = workload->document.root().FindChild("story3");
  ASSERT_NE(story3, nullptr);
  auto edit = MoveSubtree(workload->document, *story3, workload->document.root(), 1);
  ASSERT_TRUE(edit.ok()) << edit.status();
  EXPECT_TRUE(edit->dropped_arcs.empty());

  auto events = CollectEvents(workload->document, &workload->store);
  ASSERT_TRUE(events.ok());
  auto result = ComputeSchedule(workload->document, *events);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->feasible);
  EXPECT_EQ(workload->document.root().ChildAt(1).name(), "story3");
}

TEST(EngineMoreTest, ZeroDurationEventsPlayInstantly) {
  DocBuilder builder;
  builder.DefineChannel("txt", MediaType::kText)
      .ImmText("blip", "x")
      .OnChannel("txt")
      .WithDuration(MediaTime());
  auto doc = builder.Build();
  ASSERT_TRUE(doc.ok());
  auto events = CollectEvents(*doc, nullptr);
  ASSERT_TRUE(events.ok());
  auto result = ComputeSchedule(*doc, *events);
  ASSERT_TRUE(result.ok() && result->feasible);
  DescriptorStore store;
  auto run = Play(*doc, result->schedule, &store);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->trace.entries()[0].actual_end, run->trace.entries()[0].actual_begin);
  EXPECT_TRUE(run->trace.Verify().ok());
}

TEST(EngineMoreTest, EmptyScheduleIsANoOp) {
  Document doc;
  DescriptorStore store;
  Schedule empty;
  auto run = Play(doc, empty, &store);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->trace.size(), 0u);
  EXPECT_EQ(run->clock.presentation_time(), MediaTime());
}

}  // namespace
}  // namespace cmif
