#include "src/player/trace.h"

#include <gtest/gtest.h>

namespace cmif {
namespace {

TraceEntry Entry(const char* label, const char* channel, int target_ms, int actual_ms,
                 int end_ms, bool froze = false) {
  TraceEntry entry;
  entry.label = label;
  entry.channel = channel;
  entry.scheduled_begin = MediaTime::Millis(target_ms);
  entry.target_begin = MediaTime::Millis(target_ms);
  entry.actual_begin = MediaTime::Millis(actual_ms);
  entry.actual_end = MediaTime::Millis(end_ms);
  entry.lateness = MediaTime::Millis(actual_ms - target_ms);
  entry.caused_freeze = froze;
  if (froze) {
    entry.freeze_amount = entry.lateness;
  }
  return entry;
}

TEST(PlaybackTraceTest, FreezeAccounting) {
  PlaybackTrace trace;
  trace.Append(Entry("a", "video", 0, 0, 1000));
  trace.Append(Entry("b", "video", 1000, 1200, 2200, true));
  trace.Append(Entry("c", "video", 2200, 2300, 3300, true));
  EXPECT_EQ(trace.FreezeCount(), 2u);
  EXPECT_EQ(trace.TotalFreeze(), MediaTime::Millis(300));
  EXPECT_EQ(trace.size(), 3u);
}

TEST(PlaybackTraceTest, JitterStatsPerChannel) {
  PlaybackTrace trace;
  trace.Append(Entry("a", "video", 0, 10, 500));
  trace.Append(Entry("b", "video", 500, 530, 1000));
  trace.Append(Entry("x", "audio", 0, 0, 1000));
  auto jitter = trace.JitterByChannel();
  ASSERT_EQ(jitter.size(), 2u);
  EXPECT_EQ(jitter["video"].presentations, 2u);
  EXPECT_DOUBLE_EQ(jitter["video"].mean_lateness_ms, 20.0);
  EXPECT_DOUBLE_EQ(jitter["video"].max_lateness_ms, 30.0);
  EXPECT_DOUBLE_EQ(jitter["audio"].max_lateness_ms, 0.0);
}

TEST(PlaybackTraceTest, VerifyPassesOnCleanTrace) {
  PlaybackTrace trace;
  trace.Append(Entry("a", "video", 0, 0, 1000));
  trace.Append(Entry("b", "video", 1000, 1000, 2000));
  EXPECT_TRUE(trace.Verify().ok());
}

TEST(PlaybackTraceTest, VerifyCatchesOverlap) {
  PlaybackTrace trace;
  trace.Append(Entry("a", "video", 0, 0, 1500));
  trace.Append(Entry("b", "video", 1000, 1000, 2000));  // starts inside a
  EXPECT_FALSE(trace.Verify().ok());
}

TEST(PlaybackTraceTest, VerifyCatchesEarlyStart) {
  PlaybackTrace trace;
  TraceEntry entry = Entry("a", "video", 1000, 500, 1500);
  EXPECT_FALSE(([&] {
                 PlaybackTrace t;
                 t.Append(entry);
                 return t.Verify();
               }())
                   .ok());
}

TEST(PlaybackTraceTest, VerifyCatchesNegativeDuration) {
  PlaybackTrace trace;
  TraceEntry entry = Entry("a", "video", 0, 100, 50);
  trace.Append(entry);
  EXPECT_FALSE(trace.Verify().ok());
}

TEST(PlaybackTraceTest, DifferentChannelsMayOverlap) {
  PlaybackTrace trace;
  trace.Append(Entry("a", "video", 0, 0, 2000));
  trace.Append(Entry("x", "audio", 0, 0, 2000));
  EXPECT_TRUE(trace.Verify().ok());
}

TEST(PlaybackTraceTest, SummaryMentionsChannels) {
  PlaybackTrace trace;
  trace.Append(Entry("a", "video", 0, 5, 1000));
  std::string summary = trace.Summary();
  EXPECT_NE(summary.find("video"), std::string::npos);
  EXPECT_NE(summary.find("1 presentations"), std::string::npos);
}

}  // namespace
}  // namespace cmif
