#include "src/player/trace.h"

#include <gtest/gtest.h>

#include "src/obs/json.h"

namespace cmif {
namespace {

TraceEntry Entry(const char* label, const char* channel, int target_ms, int actual_ms,
                 int end_ms, bool froze = false) {
  TraceEntry entry;
  entry.label = label;
  entry.channel = channel;
  entry.scheduled_begin = MediaTime::Millis(target_ms);
  entry.target_begin = MediaTime::Millis(target_ms);
  entry.actual_begin = MediaTime::Millis(actual_ms);
  entry.actual_end = MediaTime::Millis(end_ms);
  entry.lateness = MediaTime::Millis(actual_ms - target_ms);
  entry.caused_freeze = froze;
  if (froze) {
    entry.freeze_amount = entry.lateness;
  }
  return entry;
}

TEST(PlaybackTraceTest, FreezeAccounting) {
  PlaybackTrace trace;
  trace.Append(Entry("a", "video", 0, 0, 1000));
  trace.Append(Entry("b", "video", 1000, 1200, 2200, true));
  trace.Append(Entry("c", "video", 2200, 2300, 3300, true));
  EXPECT_EQ(trace.FreezeCount(), 2u);
  EXPECT_EQ(trace.TotalFreeze(), MediaTime::Millis(300));
  EXPECT_EQ(trace.size(), 3u);
}

TEST(PlaybackTraceTest, JitterStatsPerChannel) {
  PlaybackTrace trace;
  trace.Append(Entry("a", "video", 0, 10, 500));
  trace.Append(Entry("b", "video", 500, 530, 1000));
  trace.Append(Entry("x", "audio", 0, 0, 1000));
  auto jitter = trace.JitterByChannel();
  ASSERT_EQ(jitter.size(), 2u);
  EXPECT_EQ(jitter["video"].presentations, 2u);
  EXPECT_DOUBLE_EQ(jitter["video"].mean_lateness_ms, 20.0);
  EXPECT_DOUBLE_EQ(jitter["video"].max_lateness_ms, 30.0);
  EXPECT_DOUBLE_EQ(jitter["audio"].max_lateness_ms, 0.0);
}

TEST(PlaybackTraceTest, VerifyPassesOnCleanTrace) {
  PlaybackTrace trace;
  trace.Append(Entry("a", "video", 0, 0, 1000));
  trace.Append(Entry("b", "video", 1000, 1000, 2000));
  EXPECT_TRUE(trace.Verify().ok());
}

TEST(PlaybackTraceTest, VerifyCatchesOverlap) {
  PlaybackTrace trace;
  trace.Append(Entry("a", "video", 0, 0, 1500));
  trace.Append(Entry("b", "video", 1000, 1000, 2000));  // starts inside a
  EXPECT_FALSE(trace.Verify().ok());
}

TEST(PlaybackTraceTest, VerifyCatchesEarlyStart) {
  PlaybackTrace trace;
  TraceEntry entry = Entry("a", "video", 1000, 500, 1500);
  EXPECT_FALSE(([&] {
                 PlaybackTrace t;
                 t.Append(entry);
                 return t.Verify();
               }())
                   .ok());
}

TEST(PlaybackTraceTest, VerifyCatchesNegativeDuration) {
  PlaybackTrace trace;
  TraceEntry entry = Entry("a", "video", 0, 100, 50);
  trace.Append(entry);
  EXPECT_FALSE(trace.Verify().ok());
}

TEST(PlaybackTraceTest, DifferentChannelsMayOverlap) {
  PlaybackTrace trace;
  trace.Append(Entry("a", "video", 0, 0, 2000));
  trace.Append(Entry("x", "audio", 0, 0, 2000));
  EXPECT_TRUE(trace.Verify().ok());
}

TEST(PlaybackTraceTest, SummaryMentionsChannels) {
  PlaybackTrace trace;
  trace.Append(Entry("a", "video", 0, 5, 1000));
  std::string summary = trace.Summary();
  EXPECT_NE(summary.find("video"), std::string::npos);
  EXPECT_NE(summary.find("1 presentations"), std::string::npos);
}

TEST(PlaybackTraceTest, JitterPercentilesTrackLateness) {
  PlaybackTrace trace;
  // A single lateness value: every percentile reports it exactly.
  trace.Append(Entry("x", "audio", 0, 12, 1000));
  // A spread on video: percentiles order and bracket the data.
  for (int i = 0; i < 100; ++i) {
    trace.Append(Entry("v", "video", i * 1000, i * 1000 + i, i * 1000 + 500));
  }
  auto jitter = trace.JitterByChannel();
  EXPECT_DOUBLE_EQ(jitter["audio"].p50_lateness_ms, 12.0);
  EXPECT_DOUBLE_EQ(jitter["audio"].p99_lateness_ms, 12.0);
  EXPECT_LE(jitter["video"].p50_lateness_ms, jitter["video"].p95_lateness_ms);
  EXPECT_LE(jitter["video"].p95_lateness_ms, jitter["video"].p99_lateness_ms);
  EXPECT_LE(jitter["video"].p99_lateness_ms, jitter["video"].max_lateness_ms);
  EXPECT_GT(jitter["video"].p95_lateness_ms, 0.0);
}

TEST(PlaybackTraceTest, ToJsonRoundTripsThroughTheParser) {
  PlaybackTrace trace;
  trace.Append(Entry("a", "video", 0, 10, 500));
  trace.Append(Entry("b", "video", 500, 700, 1200, true));
  auto parsed = obs::ParseJson(trace.ToJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed->Find("presentations")->number(), 2.0);
  EXPECT_DOUBLE_EQ(parsed->Find("freezes")->number(), 1.0);
  const obs::JsonValue* entries = parsed->Find("entries");
  ASSERT_NE(entries, nullptr);
  ASSERT_EQ(entries->array().size(), 2u);
  EXPECT_EQ(entries->array()[0].Find("label")->string(), "a");
  EXPECT_DOUBLE_EQ(entries->array()[1].Find("lateness_ms")->number(), 200.0);
  EXPECT_TRUE(entries->array()[1].Find("caused_freeze")->boolean());
  const obs::JsonValue* jitter = parsed->Find("jitter");
  ASSERT_NE(jitter, nullptr);
  const obs::JsonValue* video = jitter->Find("video");
  ASSERT_NE(video, nullptr);
  EXPECT_DOUBLE_EQ(video->Find("presentations")->number(), 2.0);
  EXPECT_DOUBLE_EQ(video->Find("max_lateness_ms")->number(), 200.0);
  EXPECT_GT(video->Find("p99_lateness_ms")->number(), 0.0);
}

}  // namespace
}  // namespace cmif
