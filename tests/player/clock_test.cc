#include "src/player/clock.h"

#include <gtest/gtest.h>

namespace cmif {
namespace {

TEST(VirtualClockTest, StartsAtZero) {
  VirtualClock clock;
  EXPECT_EQ(clock.document_time(), MediaTime());
  EXPECT_EQ(clock.presentation_time(), MediaTime());
  EXPECT_EQ(clock.frozen_total(), MediaTime());
  EXPECT_EQ(clock.rate_num(), 1);
  EXPECT_EQ(clock.rate_den(), 1);
}

TEST(VirtualClockTest, AdvanceTracksBothTimescales) {
  VirtualClock clock;
  clock.AdvanceDocument(MediaTime::Seconds(3));
  EXPECT_EQ(clock.document_time(), MediaTime::Seconds(3));
  EXPECT_EQ(clock.presentation_time(), MediaTime::Seconds(3));
}

TEST(VirtualClockTest, SlowMotionStretchesPresentationTime) {
  // Section 4: "it is possible to alter the rate of presentation (such as
  // freeze-framing or using slow-motion)".
  VirtualClock clock;
  clock.SetRate(1, 2);  // half speed
  clock.AdvanceDocument(MediaTime::Seconds(4));
  EXPECT_EQ(clock.document_time(), MediaTime::Seconds(4));
  EXPECT_EQ(clock.presentation_time(), MediaTime::Seconds(8));
}

TEST(VirtualClockTest, FastForwardCompressesPresentationTime) {
  VirtualClock clock;
  clock.SetRate(2, 1);
  clock.AdvanceDocument(MediaTime::Seconds(4));
  EXPECT_EQ(clock.presentation_time(), MediaTime::Seconds(2));
}

TEST(VirtualClockTest, FreezeHoldsDocumentTime) {
  VirtualClock clock;
  clock.AdvanceDocument(MediaTime::Seconds(2));
  clock.Freeze(MediaTime::Seconds(1));
  EXPECT_EQ(clock.document_time(), MediaTime::Seconds(2));
  EXPECT_EQ(clock.presentation_time(), MediaTime::Seconds(3));
  EXPECT_EQ(clock.frozen_total(), MediaTime::Seconds(1));
}

TEST(VirtualClockTest, AdvanceToIsMonotone) {
  VirtualClock clock;
  clock.AdvanceDocumentTo(MediaTime::Seconds(5));
  EXPECT_EQ(clock.document_time(), MediaTime::Seconds(5));
  clock.AdvanceDocumentTo(MediaTime::Seconds(3));  // no-op backwards
  EXPECT_EQ(clock.document_time(), MediaTime::Seconds(5));
}

TEST(VirtualClockTest, NegativeAndZeroDeltasIgnored) {
  VirtualClock clock;
  clock.AdvanceDocument(MediaTime::Seconds(-1));
  clock.Freeze(MediaTime());
  EXPECT_EQ(clock.document_time(), MediaTime());
  EXPECT_EQ(clock.presentation_time(), MediaTime());
}

TEST(VirtualClockTest, RationalRatesAreExact) {
  VirtualClock clock;
  clock.SetRate(3, 4);  // 3/4 document seconds per presentation second
  clock.AdvanceDocument(MediaTime::Seconds(3));
  EXPECT_EQ(clock.presentation_time(), MediaTime::Seconds(4));
}

}  // namespace
}  // namespace cmif
