#include "src/player/device.h"

#include <gtest/gtest.h>

namespace cmif {
namespace {

DeviceTiming FastTiming() {
  return DeviceTiming{MediaTime::Millis(5), MediaTime::Millis(10), 1'000'000};
}

TEST(VirtualDeviceTest, IdleDeviceMeetsRequestedTime) {
  VirtualDevice device("video", MediaType::kVideo, FastTiming());
  // Requested far in the future: prefetch hides transfer and latency.
  MediaTime start = device.EarliestStart(MediaTime::Seconds(10), 100'000);
  EXPECT_EQ(start, MediaTime::Seconds(10));
}

TEST(VirtualDeviceTest, ImmediateRequestPaysLatencyAndTransfer) {
  VirtualDevice device("video", MediaType::kVideo, FastTiming());
  // At t=0 the device needs setup (10ms) + transfer (100ms) + latency (5ms).
  MediaTime start = device.EarliestStart(MediaTime(), 100'000);
  EXPECT_EQ(start, MediaTime::Millis(115));
}

TEST(VirtualDeviceTest, ZeroBandwidthMeansFreeTransfer) {
  DeviceTiming timing{MediaTime::Millis(5), MediaTime::Millis(10), 0};
  VirtualDevice device("text", MediaType::kText, timing);
  MediaTime start = device.EarliestStart(MediaTime(), 1'000'000);
  EXPECT_EQ(start, MediaTime::Millis(15));  // setup + latency only
}

TEST(VirtualDeviceTest, BusyDeviceDelaysNextPresentation) {
  VirtualDevice device("video", MediaType::kVideo, FastTiming());
  device.Present("first", MediaTime(), MediaTime(), MediaTime::Seconds(5), 0);
  EXPECT_EQ(device.next_free(), MediaTime::Seconds(5));
  // A request at 4s must wait for release + setup + latency.
  MediaTime start = device.EarliestStart(MediaTime::Seconds(4), 0);
  EXPECT_EQ(start, MediaTime::Seconds(5) + MediaTime::Millis(15));
}

TEST(VirtualDeviceTest, RecordsAccumulate) {
  VirtualDevice device("audio", MediaType::kAudio, FastTiming());
  device.Present("a", MediaTime(), MediaTime::Millis(20), MediaTime::Seconds(1), 500);
  device.Present("b", MediaTime::Seconds(1), MediaTime::Seconds(1), MediaTime::Seconds(2), 0);
  ASSERT_EQ(device.records().size(), 2u);
  EXPECT_EQ(device.records()[0].event_label, "a");
  EXPECT_EQ(device.records()[0].Lateness(), MediaTime::Millis(20));
  EXPECT_EQ(device.records()[1].Lateness(), MediaTime());
  EXPECT_EQ(device.records()[0].payload_bytes, 500u);
}

TEST(VirtualDeviceTest, AccessorsExposeConfiguration) {
  VirtualDevice device("graphic", MediaType::kGraphic, FastTiming());
  EXPECT_EQ(device.channel(), "graphic");
  EXPECT_EQ(device.medium(), MediaType::kGraphic);
  EXPECT_EQ(device.timing().setup, MediaTime::Millis(10));
}

}  // namespace
}  // namespace cmif
