#include "src/attr/style.h"

#include <gtest/gtest.h>

#include "src/attr/registry.h"

namespace cmif {
namespace {

AttrList Body(std::vector<Attr> attrs) { return AttrList::FromAttrs(std::move(attrs)); }

TEST(StyleDictionaryTest, DefineAndFind) {
  StyleDictionary dict;
  ASSERT_TRUE(dict.Define("base", Body({{"size", AttrValue::Number(10)}})).ok());
  EXPECT_TRUE(dict.Has("base"));
  EXPECT_EQ(dict.size(), 1u);
  EXPECT_EQ(dict.Find("base")->Find("size")->number(), 10);
}

TEST(StyleDictionaryTest, RejectsDuplicatesAndBadNames) {
  StyleDictionary dict;
  ASSERT_TRUE(dict.Define("s", AttrList()).ok());
  EXPECT_EQ(dict.Define("s", AttrList()).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(dict.Define("not a name", AttrList()).code(), StatusCode::kInvalidArgument);
}

TEST(StyleDictionaryTest, ExpandSimple) {
  StyleDictionary dict;
  ASSERT_TRUE(dict.Define("s", Body({{"size", AttrValue::Number(12)}})).ok());
  auto expanded = dict.Expand("s");
  ASSERT_TRUE(expanded.ok());
  EXPECT_EQ(expanded->Find("size")->number(), 12);
}

TEST(StyleDictionaryTest, ExpandUnknownIsNotFound) {
  StyleDictionary dict;
  EXPECT_EQ(dict.Expand("ghost").status().code(), StatusCode::kNotFound);
}

TEST(StyleDictionaryTest, DerivedStyleOverridesBase) {
  // "Style definitions may refer to other style definitions" (Figure 7).
  StyleDictionary dict;
  ASSERT_TRUE(dict.Define("base", Body({{"size", AttrValue::Number(10)},
                                        {"font", AttrValue::Id("serif")}})).ok());
  ASSERT_TRUE(dict.Define("big", Body({{std::string(kAttrStyle), AttrValue::Id("base")},
                                       {"size", AttrValue::Number(24)}})).ok());
  auto expanded = dict.Expand("big");
  ASSERT_TRUE(expanded.ok());
  EXPECT_EQ(expanded->Find("size")->number(), 24);          // own wins
  EXPECT_EQ(expanded->Find("font")->id(), "serif");         // inherited from base
  EXPECT_FALSE(expanded->Has(kAttrStyle));                  // style attr consumed
}

TEST(StyleDictionaryTest, DirectCycleDetected) {
  // "...as long as no style refers to itself, directly or indirectly."
  StyleDictionary dict;
  ASSERT_TRUE(dict.Define("a", Body({{std::string(kAttrStyle), AttrValue::Id("a")}})).ok());
  EXPECT_EQ(dict.Expand("a").status().code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(dict.Validate().ok());
}

TEST(StyleDictionaryTest, IndirectCycleDetected) {
  StyleDictionary dict;
  ASSERT_TRUE(dict.Define("a", Body({{std::string(kAttrStyle), AttrValue::Id("b")}})).ok());
  ASSERT_TRUE(dict.Define("b", Body({{std::string(kAttrStyle), AttrValue::Id("c")}})).ok());
  ASSERT_TRUE(dict.Define("c", Body({{std::string(kAttrStyle), AttrValue::Id("a")}})).ok());
  EXPECT_EQ(dict.Expand("a").status().code(), StatusCode::kFailedPrecondition);
}

TEST(StyleDictionaryTest, DiamondIsNotACycle) {
  StyleDictionary dict;
  ASSERT_TRUE(dict.Define("root", Body({{"x", AttrValue::Number(1)}})).ok());
  ASSERT_TRUE(dict.Define("left", Body({{std::string(kAttrStyle), AttrValue::Id("root")},
                                        {"l", AttrValue::Number(2)}})).ok());
  ASSERT_TRUE(dict.Define("right", Body({{std::string(kAttrStyle), AttrValue::Id("root")},
                                         {"r", AttrValue::Number(3)}})).ok());
  AttrList both;
  both.Set(std::string(kAttrStyle),
           AttrValue::List({Attr{"s1", AttrValue::Id("left")},
                            Attr{"s2", AttrValue::Id("right")}}));
  ASSERT_TRUE(dict.Define("merged", both).ok());
  auto expanded = dict.Expand("merged");
  ASSERT_TRUE(expanded.ok()) << expanded.status();
  EXPECT_TRUE(expanded->Has("x"));
  EXPECT_TRUE(expanded->Has("l"));
  EXPECT_TRUE(expanded->Has("r"));
  EXPECT_TRUE(dict.Validate().ok());
}

TEST(StyleDictionaryTest, ExpandStyleValueListLaterOverrides) {
  StyleDictionary dict;
  ASSERT_TRUE(dict.Define("one", Body({{"v", AttrValue::Number(1)}})).ok());
  ASSERT_TRUE(dict.Define("two", Body({{"v", AttrValue::Number(2)}})).ok());
  auto expanded = dict.ExpandStyleValue(AttrValue::List(
      {Attr{"a", AttrValue::Id("one")}, Attr{"b", AttrValue::Id("two")}}));
  ASSERT_TRUE(expanded.ok());
  EXPECT_EQ(expanded->Find("v")->number(), 2);
}

TEST(StyleDictionaryTest, ExpandStyleValueRejectsNonIds) {
  StyleDictionary dict;
  EXPECT_EQ(dict.ExpandStyleValue(AttrValue::Number(3)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(dict.ExpandStyleValue(AttrValue::List({Attr{"a", AttrValue::Number(1)}}))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(StyleDictionaryTest, AttrValueRoundTrip) {
  StyleDictionary dict;
  ASSERT_TRUE(dict.Define("s1", Body({{"size", AttrValue::Number(10)}})).ok());
  ASSERT_TRUE(dict.Define("s2", Body({{"font", AttrValue::Id("mono")}})).ok());
  auto restored = StyleDictionary::FromAttrValue(dict.ToAttrValue());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->Names(), dict.Names());
  EXPECT_EQ(*restored->Find("s1"), *dict.Find("s1"));
  EXPECT_EQ(*restored->Find("s2"), *dict.Find("s2"));
}

TEST(StyleDictionaryTest, FromAttrValueRejectsNonLists) {
  EXPECT_FALSE(StyleDictionary::FromAttrValue(AttrValue::Number(1)).ok());
  EXPECT_FALSE(StyleDictionary::FromAttrValue(
                   AttrValue::List({Attr{"s", AttrValue::Number(1)}}))
                   .ok());
}

}  // namespace
}  // namespace cmif
