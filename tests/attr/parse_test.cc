#include "src/attr/parse.h"

#include <gtest/gtest.h>

namespace cmif {
namespace {

StatusOr<AttrValue> ParseValueText(std::string_view text) {
  Lexer lexer(text);
  return ParseAttrValue(lexer);
}

TEST(ClassifyWordTest, IntegersAreNumbers) {
  auto v = ClassifyWord(Token{TokenKind::kWord, "42", 1});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->number(), 42);
  auto negative = ClassifyWord(Token{TokenKind::kWord, "-7", 1});
  ASSERT_TRUE(negative.ok());
  EXPECT_EQ(negative->number(), -7);
}

TEST(ClassifyWordTest, RationalsAreTimes) {
  auto v = ClassifyWord(Token{TokenKind::kWord, "3/25", 1});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->time(), MediaTime::Rational(3, 25));
}

TEST(ClassifyWordTest, DecimalsAreTimes) {
  auto v = ClassifyWord(Token{TokenKind::kWord, "1.5", 1});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->time(), MediaTime::Rational(3, 2));
}

TEST(ClassifyWordTest, WordsAreIds) {
  auto v = ClassifyWord(Token{TokenKind::kWord, "hello_world-1", 1});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->id(), "hello_world-1");
}

TEST(ClassifyWordTest, GarbageIsRejected) {
  EXPECT_FALSE(ClassifyWord(Token{TokenKind::kWord, "3x/", 1}).ok());
  EXPECT_FALSE(ClassifyWord(Token{TokenKind::kWord, "9lives", 1}).ok());
}

TEST(ParseAttrValueTest, StringsAndLists) {
  auto s = ParseValueText("\"two words\"");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->string(), "two words");

  auto list = ParseValueText("(a 1 b \"x\" c (d 2/1))");
  ASSERT_TRUE(list.ok());
  ASSERT_TRUE(list->is_list());
  ASSERT_EQ(list->list().size(), 3u);
  EXPECT_EQ(list->list()[0].value.number(), 1);
  EXPECT_EQ(list->list()[1].value.string(), "x");
  EXPECT_TRUE(list->list()[2].value.is_list());
  EXPECT_EQ(list->list()[2].value.list()[0].value.time(), MediaTime::Seconds(2));
}

TEST(ParseAttrListTest, ParsesNameValuePairs) {
  Lexer lexer("(name intro duration 5/2 title \"Opening\")");
  auto list = ParseAttrList(lexer);
  ASSERT_TRUE(list.ok()) << list.status();
  EXPECT_EQ(list->Find("name")->id(), "intro");
  EXPECT_EQ(list->Find("duration")->time(), MediaTime::Rational(5, 2));
  EXPECT_EQ(list->Find("title")->string(), "Opening");
}

TEST(ParseAttrListTest, EmptyList) {
  Lexer lexer("()");
  auto list = ParseAttrList(lexer);
  ASSERT_TRUE(list.ok());
  EXPECT_TRUE(list->empty());
}

TEST(ParseAttrListTest, DuplicateNamesAreDataLoss) {
  Lexer lexer("(x 1 x 2)");
  auto list = ParseAttrList(lexer);
  EXPECT_EQ(list.status().code(), StatusCode::kDataLoss);
}

TEST(ParseAttrListTest, BadAttributeNameIsDataLoss) {
  Lexer lexer("(9bad 1)");
  EXPECT_EQ(ParseAttrList(lexer).status().code(), StatusCode::kDataLoss);
}

TEST(ParseAttrListTest, MissingValueIsDataLoss) {
  Lexer lexer("(x)");
  EXPECT_FALSE(ParseAttrList(lexer).ok());
}

TEST(ParseAttrListTest, MissingOpenParenIsDataLoss) {
  Lexer lexer("x 1");
  EXPECT_EQ(ParseAttrList(lexer).status().code(), StatusCode::kDataLoss);
}

TEST(ParseRoundTripTest, ValueToStringParsesBack) {
  const AttrValue values[] = {
      AttrValue::Id("word"),
      AttrValue::Number(-12),
      AttrValue::String("hello \"there\"\nworld"),
      AttrValue::Time(MediaTime::Rational(7, 3)),
      AttrValue::Time(MediaTime::Seconds(4)),
      AttrValue::List({Attr{"k", AttrValue::Number(1)},
                       Attr{"nested", AttrValue::List({Attr{"q", AttrValue::Id("z")}})}}),
  };
  for (const AttrValue& v : values) {
    auto parsed = ParseValueText(v.ToString());
    ASSERT_TRUE(parsed.ok()) << v.ToString() << ": " << parsed.status();
    EXPECT_EQ(*parsed, v) << v.ToString();
  }
}

}  // namespace
}  // namespace cmif
