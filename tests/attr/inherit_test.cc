#include "src/attr/inherit.h"

#include <gtest/gtest.h>

namespace cmif {
namespace {

class InheritTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(styles_
                    .Define("caption", AttrList::FromAttrs(
                                           {{"font", AttrValue::Id("serif")},
                                            {std::string(kAttrChannel), AttrValue::Id("txt")}}))
                    .ok());
  }

  std::optional<AttrValue> Resolve(std::vector<const AttrList*> chain, std::string_view name) {
    auto result = ResolveAttribute(chain, name, AttrRegistry::Standard(), styles_);
    EXPECT_TRUE(result.ok()) << result.status();
    return result.ok() ? *result : std::nullopt;
  }

  StyleDictionary styles_;
};

TEST_F(InheritTest, OwnAttributeWins) {
  AttrList root;
  root.Set(std::string(kAttrChannel), AttrValue::Id("root_ch"));
  AttrList node;
  node.Set(std::string(kAttrChannel), AttrValue::Id("node_ch"));
  auto v = Resolve({&root, &node}, kAttrChannel);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->id(), "node_ch");
}

TEST_F(InheritTest, InheritedAttributeFallsBackToAncestors) {
  // "Channel ... is inherited by children unless explicitly overridden."
  AttrList root;
  root.Set(std::string(kAttrChannel), AttrValue::Id("root_ch"));
  AttrList mid;
  AttrList leaf;
  auto v = Resolve({&root, &mid, &leaf}, kAttrChannel);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->id(), "root_ch");
}

TEST_F(InheritTest, NearestAncestorWins) {
  AttrList root;
  root.Set(std::string(kAttrChannel), AttrValue::Id("far"));
  AttrList mid;
  mid.Set(std::string(kAttrChannel), AttrValue::Id("near"));
  AttrList leaf;
  auto v = Resolve({&root, &mid, &leaf}, kAttrChannel);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->id(), "near");
}

TEST_F(InheritTest, NonInheritedAttributeDoesNotPropagate) {
  // "Others only affect the node on which they are present" (section 5.2).
  AttrList root;
  root.Set(std::string(kAttrDuration), AttrValue::Time(MediaTime::Seconds(5)));
  AttrList leaf;
  EXPECT_FALSE(Resolve({&root, &leaf}, kAttrDuration).has_value());
  // But it resolves on the node itself.
  EXPECT_TRUE(Resolve({&root}, kAttrDuration).has_value());
}

TEST_F(InheritTest, StyleProvidesAttributes) {
  AttrList root;
  AttrList node;
  node.Set(std::string(kAttrStyle), AttrValue::Id("caption"));
  auto v = Resolve({&root, &node}, "font");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->id(), "serif");
}

TEST_F(InheritTest, OwnAttributeBeatsStyle) {
  AttrList node;
  node.Set(std::string(kAttrStyle), AttrValue::Id("caption"));
  node.Set("font", AttrValue::Id("sans"));
  auto v = Resolve({&node}, "font");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->id(), "sans");
}

TEST_F(InheritTest, AncestorStyleFeedsInheritedAttribute) {
  // A style on an ancestor can set an inherited attribute (channel).
  AttrList parent;
  parent.Set(std::string(kAttrStyle), AttrValue::Id("caption"));
  AttrList leaf;
  auto v = Resolve({&parent, &leaf}, kAttrChannel);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->id(), "txt");
}

TEST_F(InheritTest, UnknownStyleIsAnError) {
  AttrList node;
  node.Set(std::string(kAttrStyle), AttrValue::Id("ghost"));
  std::vector<const AttrList*> chain{&node};
  auto result = ResolveAttribute(chain, "font", AttrRegistry::Standard(), styles_);
  EXPECT_FALSE(result.ok());
}

TEST_F(InheritTest, EmptyChainResolvesNothing) {
  std::vector<const AttrList*> chain;
  auto result = ResolveAttribute(chain, kAttrChannel, AttrRegistry::Standard(), styles_);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->has_value());
}

TEST_F(InheritTest, EffectiveAttrsMergesEverything) {
  AttrList root;
  root.Set(std::string(kAttrChannel), AttrValue::Id("inherited_ch"));
  root.Set(std::string(kAttrTitle), AttrValue::String("not inherited"));
  AttrList node;
  node.Set(std::string(kAttrStyle), AttrValue::Id("caption"));
  node.Set(std::string(kAttrName), AttrValue::Id("leaf"));
  auto effective = EffectiveAttrs({{&root, &node}}, AttrRegistry::Standard(), styles_);
  ASSERT_TRUE(effective.ok());
  // Style channel overrides the inherited one (nearer level).
  EXPECT_EQ(effective->Find(kAttrChannel)->id(), "txt");
  EXPECT_EQ(effective->Find("font")->id(), "serif");
  EXPECT_EQ(effective->Find(kAttrName)->id(), "leaf");
  EXPECT_FALSE(effective->Has(kAttrTitle));  // title does not inherit
  EXPECT_FALSE(effective->Has(kAttrStyle));  // consumed
}

}  // namespace
}  // namespace cmif
