#include "src/attr/value.h"

#include <gtest/gtest.h>

namespace cmif {
namespace {

TEST(AttrValueTest, DefaultIsEmptyString) {
  AttrValue v;
  EXPECT_EQ(v.kind(), AttrKind::kString);
  EXPECT_EQ(v.string(), "");
}

TEST(AttrValueTest, KindsMatchConstructors) {
  EXPECT_TRUE(AttrValue::Id("x").is_id());
  EXPECT_TRUE(AttrValue::Number(3).is_number());
  EXPECT_TRUE(AttrValue::String("s").is_string());
  EXPECT_TRUE(AttrValue::Time(MediaTime::Seconds(1)).is_time());
  EXPECT_TRUE(AttrValue::List({}).is_list());
}

TEST(AttrValueTest, AccessorsReturnContents) {
  EXPECT_EQ(AttrValue::Id("abc").id(), "abc");
  EXPECT_EQ(AttrValue::Number(-7).number(), -7);
  EXPECT_EQ(AttrValue::String("hello world").string(), "hello world");
  EXPECT_EQ(AttrValue::Time(MediaTime::Rational(1, 4)).time(), MediaTime::Rational(1, 4));
}

TEST(AttrValueTest, CheckedAccessorsRejectWrongKind) {
  AttrValue number = AttrValue::Number(5);
  EXPECT_FALSE(number.AsId().ok());
  EXPECT_FALSE(number.AsString().ok());
  EXPECT_TRUE(number.AsNumber().ok());
}

TEST(AttrValueTest, AsTimePromotesWholeSecondNumbers) {
  // Whole-second NUMBERs are accepted where a TIME is expected (section 5.2
  // keeps the value model minimal).
  auto t = AttrValue::Number(3).AsTime();
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*t, MediaTime::Seconds(3));
  EXPECT_FALSE(AttrValue::String("3").AsTime().ok());
}

TEST(AttrValueTest, DeepEquality) {
  AttrValue a = AttrValue::List({Attr{"x", AttrValue::Number(1)},
                                 Attr{"y", AttrValue::List({Attr{"z", AttrValue::Id("q")}})}});
  AttrValue b = AttrValue::List({Attr{"x", AttrValue::Number(1)},
                                 Attr{"y", AttrValue::List({Attr{"z", AttrValue::Id("q")}})}});
  AttrValue c = AttrValue::List({Attr{"x", AttrValue::Number(2)}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(AttrValue::Id("x"), AttrValue::String("x"));  // ID != STRING
}

TEST(AttrValueTest, ToStringForms) {
  EXPECT_EQ(AttrValue::Id("word").ToString(), "word");
  EXPECT_EQ(AttrValue::Number(12).ToString(), "12");
  EXPECT_EQ(AttrValue::String("two words").ToString(), "\"two words\"");
  // Whole-second TIMEs keep an explicit denominator to stay distinguishable
  // from NUMBERs in the concrete syntax.
  EXPECT_EQ(AttrValue::Time(MediaTime::Seconds(2)).ToString(), "2/1");
  EXPECT_EQ(AttrValue::Time(MediaTime::Rational(3, 25)).ToString(), "3/25");
}

TEST(AttrValueTest, ListToStringNests) {
  AttrValue v = AttrValue::List(
      {Attr{"a", AttrValue::Number(1)}, Attr{"b", AttrValue::String("s")}});
  EXPECT_EQ(v.ToString(), "(a 1 b \"s\")");
}

TEST(AttrValueTest, MutableListEdits) {
  AttrValue v = AttrValue::List({Attr{"a", AttrValue::Number(1)}});
  v.mutable_list().push_back(Attr{"b", AttrValue::Number(2)});
  EXPECT_EQ(v.list().size(), 2u);
}

TEST(AttrKindNameTest, NamesAreStable) {
  EXPECT_EQ(AttrKindName(AttrKind::kId), "ID");
  EXPECT_EQ(AttrKindName(AttrKind::kNumber), "NUMBER");
  EXPECT_EQ(AttrKindName(AttrKind::kString), "STRING");
  EXPECT_EQ(AttrKindName(AttrKind::kTime), "TIME");
  EXPECT_EQ(AttrKindName(AttrKind::kList), "LIST");
}

}  // namespace
}  // namespace cmif
