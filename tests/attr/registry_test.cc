#include "src/attr/registry.h"

#include <gtest/gtest.h>

namespace cmif {
namespace {

TEST(AttrRegistryTest, StandardHasFigure7Attributes) {
  const AttrRegistry& registry = AttrRegistry::Standard();
  for (std::string_view name : {kAttrName, kAttrStyleDict, kAttrStyle, kAttrChannelDict,
                                kAttrChannel, kAttrFile, kAttrTFormatting, kAttrSlice,
                                kAttrCrop, kAttrClip}) {
    EXPECT_NE(registry.Find(name), nullptr) << name;
  }
}

TEST(AttrRegistryTest, InheritanceMatchesFigure7) {
  const AttrRegistry& registry = AttrRegistry::Standard();
  // "Channel ... is inherited by children unless explicitly overridden";
  // "File ... is inherited, so that multiple external nodes can refer to
  // subsections of the same file."
  EXPECT_TRUE(registry.IsInherited(kAttrChannel));
  EXPECT_TRUE(registry.IsInherited(kAttrFile));
  EXPECT_FALSE(registry.IsInherited(kAttrName));
  EXPECT_FALSE(registry.IsInherited(kAttrStyle));
  EXPECT_FALSE(registry.IsInherited(kAttrDuration));
  EXPECT_FALSE(registry.IsInherited("unregistered-attr"));
}

TEST(AttrRegistryTest, RootOnlyDictionaries) {
  const AttrRegistry& registry = AttrRegistry::Standard();
  // "It should currently only occur on the root node" (Figure 7, twice).
  EXPECT_EQ(registry.Find(kAttrStyleDict)->placement, kOnRoot);
  EXPECT_EQ(registry.Find(kAttrChannelDict)->placement, kOnRoot);
}

TEST(AttrRegistryTest, PlacementRestrictions) {
  const AttrRegistry& registry = AttrRegistry::Standard();
  EXPECT_EQ(registry.Find(kAttrSlice)->placement, kOnExt);
  EXPECT_EQ(registry.Find(kAttrMedium)->placement, kOnImm);
  EXPECT_EQ(registry.Find(kAttrCrop)->placement, kOnLeaf);
  EXPECT_EQ(registry.Find(kAttrName)->placement, kOnAnyNode);
}

TEST(AttrRegistryTest, KindsAreRegistered) {
  const AttrRegistry& registry = AttrRegistry::Standard();
  EXPECT_EQ(registry.Find(kAttrName)->kind, AttrKind::kId);
  EXPECT_EQ(registry.Find(kAttrFile)->kind, AttrKind::kString);
  EXPECT_EQ(registry.Find(kAttrDuration)->kind, AttrKind::kTime);
  EXPECT_EQ(registry.Find(kAttrChannelDict)->kind, AttrKind::kList);
  EXPECT_FALSE(registry.Find(kAttrStyle)->kind.has_value());  // ID or LIST
}

TEST(AttrRegistryTest, UnknownAttributesAreNotRegistered) {
  EXPECT_EQ(AttrRegistry::Standard().Find("application-specific"), nullptr);
}

TEST(AttrRegistryTest, CustomRegistryRejectsDuplicates) {
  AttrRegistry registry;
  ASSERT_TRUE(registry.Register(AttrSpec{"custom", AttrKind::kNumber, false, kOnAnyNode, ""})
                  .ok());
  EXPECT_EQ(registry.Register(AttrSpec{"custom", std::nullopt, true, kOnRoot, ""}).code(),
            StatusCode::kAlreadyExists);
  EXPECT_NE(registry.Find("custom"), nullptr);
}

TEST(AttrRegistryTest, TableRendersEveryRow) {
  std::string table = AttrRegistry::Standard().ToTable();
  for (const AttrSpec& spec : AttrRegistry::Standard().specs()) {
    EXPECT_NE(table.find(spec.name), std::string::npos) << spec.name;
  }
}

}  // namespace
}  // namespace cmif
