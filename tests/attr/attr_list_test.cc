#include "src/attr/attr_list.h"

#include <gtest/gtest.h>

namespace cmif {
namespace {

TEST(AttrListTest, AddEnforcesUniqueness) {
  // "Each name may occur at most once in each list" (section 5.2).
  AttrList list;
  EXPECT_TRUE(list.Add("x", AttrValue::Number(1)).ok());
  Status dup = list.Add("x", AttrValue::Number(2));
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(list.size(), 1u);
}

TEST(AttrListTest, SetReplaces) {
  AttrList list;
  list.Set("x", AttrValue::Number(1));
  list.Set("x", AttrValue::Number(2));
  EXPECT_EQ(list.size(), 1u);
  EXPECT_EQ(list.Find("x")->number(), 2);
}

TEST(AttrListTest, FindReturnsNullWhenAbsent) {
  AttrList list;
  EXPECT_EQ(list.Find("missing"), nullptr);
  EXPECT_FALSE(list.Has("missing"));
}

TEST(AttrListTest, RemoveDeletes) {
  AttrList list;
  list.Set("a", AttrValue::Number(1));
  list.Set("b", AttrValue::Number(2));
  EXPECT_TRUE(list.Remove("a"));
  EXPECT_FALSE(list.Remove("a"));
  EXPECT_EQ(list.size(), 1u);
  EXPECT_TRUE(list.Has("b"));
}

TEST(AttrListTest, OrderIsPreserved) {
  AttrList list;
  list.Set("z", AttrValue::Number(1));
  list.Set("a", AttrValue::Number(2));
  list.Set("m", AttrValue::Number(3));
  ASSERT_EQ(list.attrs().size(), 3u);
  EXPECT_EQ(list.attrs()[0].name, "z");
  EXPECT_EQ(list.attrs()[1].name, "a");
  EXPECT_EQ(list.attrs()[2].name, "m");
}

TEST(AttrListTest, TypedGettersReportErrors) {
  AttrList list;
  list.Set("n", AttrValue::Number(5));
  list.Set("s", AttrValue::String("str"));
  EXPECT_EQ(*list.GetNumber("n"), 5);
  EXPECT_EQ(*list.GetString("s"), "str");
  EXPECT_EQ(list.GetNumber("missing").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(list.GetNumber("s").status().code(), StatusCode::kInvalidArgument);
}

TEST(AttrListTest, GetTimeAcceptsNumbers) {
  AttrList list;
  list.Set("d", AttrValue::Number(3));
  auto t = list.GetTime("d");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*t, MediaTime::Seconds(3));
}

TEST(AttrListTest, OrGettersFallBack) {
  AttrList list;
  list.Set("n", AttrValue::Number(5));
  EXPECT_EQ(list.GetNumberOr("n", -1), 5);
  EXPECT_EQ(list.GetNumberOr("missing", -1), -1);
  EXPECT_EQ(list.GetIdOr("n", "dflt"), "dflt");  // kind mismatch -> fallback
  EXPECT_EQ(list.GetStringOr("missing", "x"), "x");
  EXPECT_EQ(list.GetTimeOr("missing", MediaTime::Seconds(9)), MediaTime::Seconds(9));
}

TEST(AttrListTest, MergeFromOverrides) {
  AttrList base;
  base.Set("a", AttrValue::Number(1));
  base.Set("b", AttrValue::Number(2));
  AttrList overlay;
  overlay.Set("b", AttrValue::Number(20));
  overlay.Set("c", AttrValue::Number(30));
  base.MergeFrom(overlay);
  EXPECT_EQ(base.Find("a")->number(), 1);
  EXPECT_EQ(base.Find("b")->number(), 20);
  EXPECT_EQ(base.Find("c")->number(), 30);
}

TEST(AttrListTest, FillDefaultsKeepsExisting) {
  AttrList list;
  list.Set("a", AttrValue::Number(1));
  AttrList defaults;
  defaults.Set("a", AttrValue::Number(100));
  defaults.Set("b", AttrValue::Number(200));
  list.FillDefaultsFrom(defaults);
  EXPECT_EQ(list.Find("a")->number(), 1);
  EXPECT_EQ(list.Find("b")->number(), 200);
}

TEST(AttrListTest, FromAttrsLastWins) {
  AttrList list = AttrList::FromAttrs(
      {Attr{"x", AttrValue::Number(1)}, Attr{"x", AttrValue::Number(2)}});
  EXPECT_EQ(list.size(), 1u);
  EXPECT_EQ(list.Find("x")->number(), 2);
}

TEST(AttrListTest, ToStringMatchesListValue) {
  AttrList list;
  list.Set("k", AttrValue::Id("v"));
  EXPECT_EQ(list.ToString(), "(k v)");
  EXPECT_EQ(AttrList().ToString(), "()");
}

TEST(AttrListTest, EqualityIsOrderSensitive) {
  AttrList a;
  a.Set("x", AttrValue::Number(1));
  a.Set("y", AttrValue::Number(2));
  AttrList b;
  b.Set("y", AttrValue::Number(2));
  b.Set("x", AttrValue::Number(1));
  EXPECT_FALSE(a == b);  // serialization order matters for fidelity
}

}  // namespace
}  // namespace cmif
