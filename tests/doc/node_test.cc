#include "src/doc/node.h"

#include <gtest/gtest.h>

#include "src/attr/registry.h"

namespace cmif {
namespace {

// Builds:   root(seq) -> a(par) -> {x(ext), y(imm)}, b(ext)
struct SmallTree {
  SmallTree() : root(NodeKind::kSeq) {
    root.set_name("root");
    Node* a = *root.AddChild(NodeKind::kPar);
    a->set_name("a");
    Node* x = *a->AddChild(NodeKind::kExt);
    x->set_name("x");
    Node* y = *a->AddChild(NodeKind::kImm);
    y->set_name("y");
    y->set_immediate_data(DataBlock::FromText(TextBlock("imm data", {})));
    Node* b = *root.AddChild(NodeKind::kExt);
    b->set_name("b");
    this->a = a;
    this->x = x;
    this->y = y;
    this->b = b;
  }
  Node root;
  Node* a;
  Node* x;
  Node* y;
  Node* b;
};

TEST(NodeTest, KindPredicates) {
  EXPECT_TRUE(Node(NodeKind::kSeq).is_composite());
  EXPECT_TRUE(Node(NodeKind::kPar).is_composite());
  EXPECT_TRUE(Node(NodeKind::kExt).is_leaf());
  EXPECT_TRUE(Node(NodeKind::kImm).is_leaf());
}

TEST(NodeTest, KindNamesRoundTrip) {
  for (NodeKind kind : {NodeKind::kSeq, NodeKind::kPar, NodeKind::kExt, NodeKind::kImm}) {
    auto parsed = ParseNodeKind(NodeKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(ParseNodeKind("loop").ok());
}

TEST(NodeTest, LeavesRejectChildren) {
  Node leaf(NodeKind::kExt);
  EXPECT_EQ(leaf.AddChild(NodeKind::kSeq).status().code(), StatusCode::kFailedPrecondition);
}

TEST(NodeTest, ParentLinksMaintained) {
  SmallTree t;
  EXPECT_EQ(t.a->parent(), &t.root);
  EXPECT_EQ(t.x->parent(), t.a);
  EXPECT_TRUE(t.root.is_root());
  EXPECT_FALSE(t.x->is_root());
}

TEST(NodeTest, FindChildByName) {
  SmallTree t;
  EXPECT_EQ(t.root.FindChild("a"), t.a);
  EXPECT_EQ(t.root.FindChild("ghost"), nullptr);
  EXPECT_EQ(t.a->FindChild("y"), t.y);
}

TEST(NodeTest, NameComesFromAttr) {
  Node node(NodeKind::kSeq);
  EXPECT_EQ(node.name(), "");
  node.set_name("fred");
  EXPECT_EQ(node.name(), "fred");
  EXPECT_EQ(node.attrs().Find(kAttrName)->id(), "fred");
}

TEST(NodeTest, DisplayPathUsesNamesAndIndexes) {
  SmallTree t;
  EXPECT_EQ(t.root.DisplayPath(), "/");
  EXPECT_EQ(t.x->DisplayPath(), "/a/x");
  Node* anon = *t.a->AddChild(NodeKind::kExt);
  EXPECT_EQ(anon->DisplayPath(), "/a/#2");
}

TEST(NodeTest, DepthAndSubtreeSize) {
  SmallTree t;
  EXPECT_EQ(t.root.Depth(), 0);
  EXPECT_EQ(t.x->Depth(), 2);
  EXPECT_EQ(t.root.SubtreeSize(), 5u);
  EXPECT_EQ(t.a->SubtreeSize(), 3u);
}

TEST(NodeTest, ResolveRelativePaths) {
  SmallTree t;
  auto x = t.root.Resolve(*NodePath::Parse("a/x"));
  ASSERT_TRUE(x.ok());
  EXPECT_EQ(*x, t.x);
  auto self = t.a->Resolve(NodePath());
  ASSERT_TRUE(self.ok());
  EXPECT_EQ(*self, t.a);
  auto up = t.x->Resolve(*NodePath::Parse("../y"));
  ASSERT_TRUE(up.ok());
  EXPECT_EQ(*up, t.y);
}

TEST(NodeTest, ResolveAbsoluteRestartsAtRoot) {
  SmallTree t;
  auto b = t.x->Resolve(*NodePath::Parse("/b"));
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b, t.b);
}

TEST(NodeTest, ResolveErrors) {
  SmallTree t;
  EXPECT_EQ(t.root.Resolve(*NodePath::Parse("ghost")).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(t.root.Resolve(*NodePath::Parse("..")).status().code(), StatusCode::kNotFound);
}

TEST(NodeTest, PathToComputesRelativePath) {
  SmallTree t;
  auto p = t.x->PathTo(*t.b);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->ToString(), "../../b");
  auto resolved = t.x->Resolve(*p);
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(*resolved, t.b);
  auto self = t.a->PathTo(*t.a);
  ASSERT_TRUE(self.ok());
  EXPECT_TRUE(self->is_self());
}

TEST(NodeTest, PathToRejectsUnnamedTargets) {
  SmallTree t;
  Node* anon = *t.root.AddChild(NodeKind::kExt);
  EXPECT_EQ(t.x->PathTo(*anon).status().code(), StatusCode::kFailedPrecondition);
}

TEST(NodeTest, VisitIsPreOrder) {
  SmallTree t;
  std::vector<std::string> order;
  t.root.Visit([&order](const Node& node) { order.push_back(node.name()); });
  EXPECT_EQ(order, (std::vector<std::string>{"root", "a", "x", "y", "b"}));
}

TEST(NodeTest, TakeChildDetaches) {
  SmallTree t;
  auto taken = t.root.TakeChild(0);
  ASSERT_TRUE(taken.ok());
  EXPECT_EQ((*taken)->parent(), nullptr);
  EXPECT_EQ((*taken)->name(), "a");
  EXPECT_EQ(t.root.child_count(), 1u);
  EXPECT_EQ(t.root.TakeChild(5).status().code(), StatusCode::kOutOfRange);
}

TEST(NodeTest, CloneIsDeepAndIndependent) {
  SmallTree t;
  t.x->AddArc(HardArc(NodePath(), ArcEdge::kBegin, *NodePath::Parse("../y"), ArcEdge::kBegin));
  std::unique_ptr<Node> copy = t.root.Clone();
  EXPECT_EQ(copy->SubtreeSize(), t.root.SubtreeSize());
  EXPECT_EQ(copy->FindChild("a")->FindChild("x")->arcs().size(), 1u);
  EXPECT_EQ(copy->FindChild("a")->FindChild("y")->immediate_data().text().text(), "imm data");
  // Mutating the copy leaves the original alone.
  copy->FindChild("a")->set_name("renamed");
  EXPECT_EQ(t.a->name(), "a");
  // Parent links in the clone are internally consistent.
  EXPECT_EQ(copy->FindChild("renamed")->parent(), copy.get());
}

}  // namespace
}  // namespace cmif
