#include "src/doc/edit.h"

#include <gtest/gtest.h>

#include "src/doc/builder.h"

namespace cmif {
namespace {

// root(seq) -> story(par) -> {video(seq) -> {v1, v2}, audio(ext)}, tail(seq)
// with an arc on story: begin video/v1 -> begin audio.
struct EditFixture {
  EditFixture() {
    DocBuilder builder;
    builder.DefineChannel("screen", MediaType::kVideo)
        .DefineChannel("sound", MediaType::kAudio);
    builder.Par("story")
        .Seq("video")
        .Ext("v1", "d1")
        .OnChannel("screen")
        .Ext("v2", "d2")
        .OnChannel("screen")
        .Up()
        .Ext("audio", "d3")
        .OnChannel("sound");
    builder.Up();  // from audio leaf to story... leaf Up pops twice -> root
    builder.Seq("tail").Up();
    auto built = builder.Build();
    EXPECT_TRUE(built.ok());
    doc = std::move(built).value();
    Node* story = doc.root().FindChild("story");
    story->AddArc(HardArc(*NodePath::Parse("video/v1"), ArcEdge::kBegin,
                          *NodePath::Parse("audio"), ArcEdge::kBegin));
  }

  Node& At(const char* path) {
    auto node = doc.root().Resolve(*NodePath::Parse(path));
    EXPECT_TRUE(node.ok()) << path;
    return **node;
  }

  Document doc{NodeKind::kSeq};
};

TEST(EditTest, RenameRewritesArcPaths) {
  EditFixture f;
  auto report = RenameNode(f.doc, f.At("story/video"), "clips");
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->rewritten_arcs, 1u);
  EXPECT_TRUE(report->dropped_arcs.empty());
  const SyncArc& arc = f.At("story").arcs()[0];
  EXPECT_EQ(arc.source.ToString(), "clips/v1");
  // The arc still resolves.
  EXPECT_TRUE(f.At("story").Resolve(arc.source).ok());
}

TEST(EditTest, RenameValidatesNames) {
  EditFixture f;
  EXPECT_EQ(RenameNode(f.doc, f.At("story/video"), "not a name").status().code(),
            StatusCode::kInvalidArgument);
  // Clashing with a sibling is rejected.
  EXPECT_EQ(RenameNode(f.doc, f.At("story/video"), "audio").status().code(),
            StatusCode::kAlreadyExists);
  // Renaming to its own name is a no-op, not a clash.
  auto self = RenameNode(f.doc, f.At("story/video"), "video");
  EXPECT_TRUE(self.ok());
  EXPECT_EQ(self->rewritten_arcs, 0u);
}

TEST(EditTest, DeleteSubtreeDropsArcsIntoIt) {
  EditFixture f;
  auto report = DeleteSubtree(f.doc, f.At("story/video"));
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->dropped_arcs.size(), 1u);
  EXPECT_EQ(report->dropped_arcs[0].owner_path, "/story");
  EXPECT_NE(report->dropped_arcs[0].reason.find("deleted"), std::string::npos);
  EXPECT_TRUE(f.At("story").arcs().empty());
  EXPECT_EQ(f.doc.root().FindChild("story")->child_count(), 1u);  // audio remains
}

TEST(EditTest, DeleteUnrelatedSubtreeKeepsArcs) {
  EditFixture f;
  auto report = DeleteSubtree(f.doc, f.At("tail"));
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->dropped_arcs.empty());
  EXPECT_EQ(f.At("story").arcs().size(), 1u);
}

TEST(EditTest, DeleteRootIsRejected) {
  EditFixture f;
  EXPECT_EQ(DeleteSubtree(f.doc, f.doc.root()).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(EditTest, MoveRewritesArcAcrossTheTree) {
  EditFixture f;
  // Move the video seq out of the story into the tail.
  auto report = MoveSubtree(f.doc, f.At("story/video"), f.At("tail"), 0);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->rewritten_arcs, 1u);
  EXPECT_TRUE(report->dropped_arcs.empty());
  const SyncArc& arc = f.At("story").arcs()[0];
  // The arc now climbs out of the story and descends into the tail.
  EXPECT_EQ(arc.source.ToString(), "../tail/video/v1");
  EXPECT_TRUE(f.At("story").Resolve(arc.source).ok());
  EXPECT_EQ(f.At("tail").child_count(), 1u);
}

TEST(EditTest, MoveIntoOwnSubtreeRejected) {
  EditFixture f;
  EXPECT_EQ(MoveSubtree(f.doc, f.At("story"), f.At("story/video"), 0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EditTest, MoveOntoLeafRejected) {
  EditFixture f;
  EXPECT_EQ(MoveSubtree(f.doc, f.At("tail"), f.At("story/audio"), 0).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(EditTest, MoveRespectsSiblingNames) {
  EditFixture f;
  Node* clash = *f.doc.root().AddChild(NodeKind::kSeq);
  clash->set_name("video");
  EXPECT_EQ(MoveSubtree(f.doc, f.At("story/video"), f.doc.root(), 0).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(EditTest, MoveInsertsAtIndex) {
  EditFixture f;
  auto report = MoveSubtree(f.doc, f.At("tail"), f.At("story"), 0);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(f.At("story").ChildAt(0).name(), "tail");
  EXPECT_EQ(f.At("story").child_count(), 3u);
}

TEST(EditTest, MoveToUnaddressablePositionDropsArc) {
  EditFixture f;
  // An unnamed composite in the root: nodes moved under it cannot be
  // addressed by named paths.
  Node* anon = *f.doc.root().AddChild(NodeKind::kSeq);
  auto report = MoveSubtree(f.doc, f.At("story/video"), *anon, 0);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->dropped_arcs.size(), 1u);
  EXPECT_NE(report->dropped_arcs[0].reason.find("no longer addressable"), std::string::npos);
  EXPECT_TRUE(f.At("story").arcs().empty());
}

}  // namespace
}  // namespace cmif
