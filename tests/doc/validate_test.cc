#include "src/doc/validate.h"

#include <gtest/gtest.h>

#include "src/doc/builder.h"

namespace cmif {
namespace {

bool HasIssueContaining(const ValidationReport& report, std::string_view fragment,
                        IssueSeverity severity = IssueSeverity::kError) {
  for (const ValidationIssue& issue : report.issues) {
    if (issue.severity == severity && issue.message.find(fragment) != std::string::npos) {
      return true;
    }
  }
  return false;
}

DescriptorStore MakeStore() {
  DescriptorStore store;
  AttrList attrs;
  attrs.Set(std::string(kDescMedium), AttrValue::Id("audio"));
  attrs.Set(std::string(kDescDuration), AttrValue::Time(MediaTime::Seconds(1)));
  EXPECT_TRUE(store.Add(DataDescriptor("clip", attrs)).ok());
  return store;
}

Document GoodDoc() {
  DocBuilder builder;
  builder.DefineChannel("sound", MediaType::kAudio).Ext("a", "clip").OnChannel("sound");
  auto doc = builder.Build();
  EXPECT_TRUE(doc.ok());
  return std::move(doc).value();
}

TEST(ValidateTest, CleanDocumentPasses) {
  Document doc = GoodDoc();
  DescriptorStore store = MakeStore();
  ValidationReport report = ValidateDocument(doc, &store);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_TRUE(report.ToStatus().ok());
}

TEST(ValidateTest, DuplicateSiblingNames) {
  // "No two (direct) children of the same parent may have the same name."
  Document doc = GoodDoc();
  Node* dup1 = *doc.root().AddChild(NodeKind::kSeq);
  dup1->set_name("twin");
  Node* dup2 = *doc.root().AddChild(NodeKind::kSeq);
  dup2->set_name("twin");
  ValidationReport report = ValidateDocument(doc);
  EXPECT_TRUE(HasIssueContaining(report, "duplicate sibling name"));
  // The same name at different levels is fine.
  Node* nested = *dup1->AddChild(NodeKind::kSeq);
  nested->set_name("twin");
  dup2->set_name("other");
  EXPECT_FALSE(HasIssueContaining(ValidateDocument(doc), "duplicate sibling name"));
}

TEST(ValidateTest, RootOnlyAttributesFlagged) {
  Document doc = GoodDoc();
  Node* child = *doc.root().AddChild(NodeKind::kSeq);
  child->attrs().Set(std::string(kAttrChannelDict), AttrValue::List({}));
  ValidationReport report = ValidateDocument(doc);
  EXPECT_TRUE(HasIssueContaining(report, "not allowed"));
}

TEST(ValidateTest, AttributeKindMismatch) {
  Document doc = GoodDoc();
  doc.root().attrs().Set(std::string(kAttrFile), AttrValue::Number(3));  // must be STRING
  ValidationReport report = ValidateDocument(doc);
  EXPECT_TRUE(HasIssueContaining(report, "must be STRING"));
}

TEST(ValidateTest, BadNameAttr) {
  Document doc = GoodDoc();
  doc.root().attrs().Set(std::string(kAttrName), AttrValue::String("not an id"));
  EXPECT_TRUE(HasIssueContaining(ValidateDocument(doc), "name attribute"));
}

TEST(ValidateTest, UnknownStyleReference) {
  Document doc = GoodDoc();
  doc.root().attrs().Set(std::string(kAttrStyle), AttrValue::Id("ghost"));
  EXPECT_TRUE(HasIssueContaining(ValidateDocument(doc), "style reference"));
}

TEST(ValidateTest, CyclicStyleDictionary) {
  Document doc = GoodDoc();
  AttrList self_ref;
  self_ref.Set(std::string(kAttrStyle), AttrValue::Id("loop"));
  ASSERT_TRUE(doc.styles().Define("loop", self_ref).ok());
  EXPECT_TRUE(HasIssueContaining(ValidateDocument(doc), "style dictionary invalid"));
}

TEST(ValidateTest, UndefinedChannelOnLeaf) {
  DocBuilder builder;
  builder.DefineChannel("sound", MediaType::kAudio).Ext("a", "clip").OnChannel("nosuch");
  auto doc = builder.Build();
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(HasIssueContaining(ValidateDocument(*doc), "not defined"));
}

TEST(ValidateTest, MissingChannelIsOnlyAWarning) {
  DocBuilder builder;
  builder.Ext("a", "");  // neither channel nor file
  auto doc = builder.Build();
  ASSERT_TRUE(doc.ok());
  ValidationReport report = ValidateDocument(*doc);
  EXPECT_TRUE(HasIssueContaining(report, "no channel", IssueSeverity::kWarning));
  EXPECT_TRUE(HasIssueContaining(report, "no file attribute"));  // still an error
}

TEST(ValidateTest, MissingDescriptorAgainstStore) {
  DocBuilder builder;
  builder.DefineChannel("sound", MediaType::kAudio).Ext("a", "ghost").OnChannel("sound");
  auto doc = builder.Build();
  ASSERT_TRUE(doc.ok());
  DescriptorStore store = MakeStore();
  EXPECT_TRUE(HasIssueContaining(ValidateDocument(*doc, &store), "not found in the database"));
  // Without a store the reference is not checkable and passes.
  EXPECT_FALSE(HasIssueContaining(ValidateDocument(*doc), "not found in the database"));
}

TEST(ValidateTest, MediumMismatchAgainstChannel) {
  DocBuilder builder;
  builder.DefineChannel("screen", MediaType::kVideo).Ext("a", "clip").OnChannel("screen");
  auto doc = builder.Build();
  ASSERT_TRUE(doc.ok());
  DescriptorStore store = MakeStore();  // clip is audio
  EXPECT_TRUE(
      HasIssueContaining(ValidateDocument(*doc, &store), "does not match channel medium"));
}

TEST(ValidateTest, ImmMediumMismatch) {
  DocBuilder builder;
  builder.DefineChannel("txt", MediaType::kText)
      .Imm("pic", DataBlock::FromImage(MakeTestCard(4, 4, 1), MediaType::kGraphic))
      .OnChannel("txt");
  auto doc = builder.Build();
  ASSERT_TRUE(doc.ok());
  ValidationReport report = ValidateDocument(*doc);
  EXPECT_TRUE(HasIssueContaining(report, "does not match channel medium"));
}

TEST(ValidateTest, RegionAttrShapes) {
  Document doc = GoodDoc();
  Node* leaf = doc.root().FindChild("a");
  ASSERT_NE(leaf, nullptr);
  // clip needs begin + length NUMBER fields.
  leaf->attrs().Set(std::string(kAttrClip),
                    AttrValue::List({Attr{"begin", AttrValue::Number(0)}}));
  EXPECT_TRUE(HasIssueContaining(ValidateDocument(doc), "needs NUMBER field 'length'"));
  leaf->attrs().Set(std::string(kAttrClip),
                    AttrValue::List({Attr{"begin", AttrValue::Number(-1)},
                                     Attr{"length", AttrValue::Number(5)}}));
  EXPECT_TRUE(HasIssueContaining(ValidateDocument(doc), "must be non-negative"));
  leaf->attrs().Set(std::string(kAttrClip),
                    AttrValue::List({Attr{"begin", AttrValue::Number(0)},
                                     Attr{"length", AttrValue::Number(5)}}));
  EXPECT_FALSE(HasIssueContaining(ValidateDocument(doc), "needs NUMBER"));
}

TEST(ValidateTest, ArcEndpointsMustResolve) {
  Document doc = GoodDoc();
  doc.root().AddArc(
      HardArc(*NodePath::Parse("ghost"), ArcEdge::kBegin, *NodePath::Parse("a"),
              ArcEdge::kBegin));
  EXPECT_TRUE(HasIssueContaining(ValidateDocument(doc), "arc source does not resolve"));
}

TEST(ValidateTest, SelfEdgeArcFlagged) {
  Document doc = GoodDoc();
  doc.root().AddArc(HardArc(*NodePath::Parse("a"), ArcEdge::kBegin, *NodePath::Parse("a"),
                            ArcEdge::kBegin));
  EXPECT_TRUE(HasIssueContaining(ValidateDocument(doc), "connects a node edge to itself"));
  // begin -> end of the same node is a legal duration-style constraint.
  Document doc2 = GoodDoc();
  doc2.root().AddArc(HardArc(*NodePath::Parse("a"), ArcEdge::kBegin, *NodePath::Parse("a"),
                             ArcEdge::kEnd));
  EXPECT_FALSE(HasIssueContaining(ValidateDocument(doc2), "connects a node edge to itself"));
}

TEST(ValidateTest, MalformedArcWindowFlagged) {
  Document doc = GoodDoc();
  SyncArc arc = HardArc(*NodePath::Parse("a"), ArcEdge::kBegin, NodePath(), ArcEdge::kBegin);
  arc.min_delay = MediaTime::Seconds(1);  // positive min
  doc.root().AddArc(arc);
  EXPECT_TRUE(HasIssueContaining(ValidateDocument(doc), "sync arc invalid"));
}

TEST(ValidateTest, EmptyCompositeWarns) {
  Document doc = GoodDoc();
  (void)*doc.root().AddChild(NodeKind::kPar);
  ValidationReport report = ValidateDocument(doc);
  EXPECT_TRUE(HasIssueContaining(report, "no children", IssueSeverity::kWarning));
  EXPECT_TRUE(report.ok());  // warnings do not fail validation
}

TEST(ValidateTest, ReportRendering) {
  DocBuilder builder;
  builder.Ext("a", "");
  auto doc = builder.Build();
  ASSERT_TRUE(doc.ok());
  ValidationReport report = ValidateDocument(*doc);
  EXPECT_GT(report.error_count(), 0u);
  std::string text = report.ToString();
  EXPECT_NE(text.find("ERROR"), std::string::npos);
  EXPECT_EQ(report.ToStatus().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace cmif
