#include "src/doc/event.h"

#include <gtest/gtest.h>

#include "src/doc/builder.h"

namespace cmif {
namespace {

class EventTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Descriptors: a 2s audio clip and a still graphic.
    AttrList audio_attrs;
    audio_attrs.Set(std::string(kDescMedium), AttrValue::Id("audio"));
    audio_attrs.Set(std::string(kDescDuration), AttrValue::Time(MediaTime::Seconds(2)));
    ASSERT_TRUE(store_.Add(DataDescriptor("clip", audio_attrs)).ok());
    AttrList still_attrs;
    still_attrs.Set(std::string(kDescMedium), AttrValue::Id("graphic"));
    ASSERT_TRUE(store_.Add(DataDescriptor("still", still_attrs)).ok());
  }

  DescriptorStore store_;
};

TEST_F(EventTest, CollectsLeavesInDocumentOrder) {
  DocBuilder builder;
  builder.DefineChannel("sound", MediaType::kAudio)
      .DefineChannel("pic", MediaType::kGraphic)
      .Par("p")
      .Ext("a", "clip")
      .OnChannel("sound")
      .Ext("b", "still")
      .OnChannel("pic")
      .Up();
  auto doc = builder.Build();
  ASSERT_TRUE(doc.ok());
  auto events = CollectEvents(*doc, &store_);
  ASSERT_TRUE(events.ok()) << events.status();
  ASSERT_EQ(events->size(), 2u);
  EXPECT_EQ((*events)[0].node->name(), "a");
  EXPECT_EQ((*events)[0].channel, "sound");
  EXPECT_EQ((*events)[0].medium, MediaType::kAudio);
  EXPECT_EQ((*events)[0].descriptor_id, "clip");
  EXPECT_EQ((*events)[1].node->name(), "b");
}

TEST_F(EventTest, ContinuousMediaAreRigid) {
  DocBuilder builder;
  builder.DefineChannel("sound", MediaType::kAudio).Ext("a", "clip").OnChannel("sound");
  auto doc = builder.Build();
  ASSERT_TRUE(doc.ok());
  auto events = CollectEvents(*doc, &store_);
  ASSERT_TRUE(events.ok());
  const EventDescriptor& event = events->front();
  EXPECT_EQ(event.min_duration, MediaTime::Seconds(2));
  ASSERT_TRUE(event.max_duration.has_value());
  EXPECT_EQ(*event.max_duration, MediaTime::Seconds(2));
  EXPECT_TRUE(event.is_rigid());
}

TEST_F(EventTest, StillsAreStretchable) {
  DocBuilder builder;
  builder.DefineChannel("pic", MediaType::kGraphic).Ext("g", "still").OnChannel("pic");
  auto doc = builder.Build();
  ASSERT_TRUE(doc.ok());
  auto events = CollectEvents(*doc, &store_);
  ASSERT_TRUE(events.ok());
  EXPECT_EQ(events->front().min_duration, MediaTime());
  EXPECT_FALSE(events->front().max_duration.has_value());
  EXPECT_FALSE(events->front().is_rigid());
}

TEST_F(EventTest, ExplicitDurationPinsWindow) {
  DocBuilder builder;
  builder.DefineChannel("pic", MediaType::kGraphic)
      .Ext("g", "still")
      .OnChannel("pic")
      .WithDuration(MediaTime::Seconds(4));
  auto doc = builder.Build();
  ASSERT_TRUE(doc.ok());
  auto events = CollectEvents(*doc, &store_);
  ASSERT_TRUE(events.ok());
  EXPECT_TRUE(events->front().is_rigid());
  EXPECT_EQ(events->front().min_duration, MediaTime::Seconds(4));
}

TEST_F(EventTest, ImmediateTextUsesReadingTime) {
  DocBuilder builder;
  builder.DefineChannel("txt", MediaType::kText)
      .ImmText("t", std::string(30, 'x'))
      .OnChannel("txt");
  auto doc = builder.Build();
  ASSERT_TRUE(doc.ok());
  auto events = CollectEvents(*doc, nullptr);
  ASSERT_TRUE(events.ok());
  EXPECT_EQ(events->front().min_duration, MediaTime::Seconds(2));  // 30 chars @ 15 cps
  EXPECT_FALSE(events->front().max_duration.has_value());          // stretchable
}

TEST_F(EventTest, InheritedChannelResolves) {
  DocBuilder builder;
  builder.DefineChannel("sound", MediaType::kAudio)
      .Seq("s")
      .OnChannel("sound")
      .Ext("a", "clip")
      .Up();
  auto doc = builder.Build();
  ASSERT_TRUE(doc.ok());
  auto events = CollectEvents(*doc, &store_);
  ASSERT_TRUE(events.ok());
  EXPECT_EQ(events->front().channel, "sound");
}

TEST_F(EventTest, MissingChannelIsAnError) {
  DocBuilder builder;
  builder.Ext("a", "clip");
  auto doc = builder.Build();
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(CollectEvents(*doc, &store_).status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(EventTest, UndefinedChannelIsAnError) {
  DocBuilder builder;
  builder.Ext("a", "clip").OnChannel("ghost");
  auto doc = builder.Build();
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(CollectEvents(*doc, &store_).status().code(), StatusCode::kNotFound);
}

TEST_F(EventTest, ExtWithoutFileIsAnError) {
  DocBuilder builder;
  builder.DefineChannel("sound", MediaType::kAudio).Ext("a", "").OnChannel("sound");
  auto doc = builder.Build();
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(CollectEvents(*doc, &store_).status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(EventTest, NullStoreLeavesExtStretchable) {
  DocBuilder builder;
  builder.DefineChannel("sound", MediaType::kAudio).Ext("a", "clip").OnChannel("sound");
  auto doc = builder.Build();
  ASSERT_TRUE(doc.ok());
  auto events = CollectEvents(*doc, nullptr);
  ASSERT_TRUE(events.ok());
  EXPECT_EQ(events->front().min_duration, MediaTime());
  EXPECT_FALSE(events->front().max_duration.has_value());
}

TEST_F(EventTest, EventsOnChannelFilters) {
  DocBuilder builder;
  builder.DefineChannel("sound", MediaType::kAudio)
      .DefineChannel("pic", MediaType::kGraphic)
      .Ext("a", "clip")
      .OnChannel("sound")
      .Ext("g", "still")
      .OnChannel("pic")
      .Ext("b", "clip")
      .OnChannel("sound");
  auto doc = builder.Build();
  ASSERT_TRUE(doc.ok());
  auto events = CollectEvents(*doc, &store_);
  ASSERT_TRUE(events.ok());
  auto sound = EventsOnChannel(*events, "sound");
  ASSERT_EQ(sound.size(), 2u);
  EXPECT_EQ(sound[0]->node->name(), "a");
  EXPECT_EQ(sound[1]->node->name(), "b");
}

}  // namespace
}  // namespace cmif
