#include "src/doc/document.h"

#include <gtest/gtest.h>

namespace cmif {
namespace {

TEST(DocumentTest, RootKindIsCompositeOnly) {
  EXPECT_EQ(Document(NodeKind::kSeq).root().kind(), NodeKind::kSeq);
  EXPECT_EQ(Document(NodeKind::kPar).root().kind(), NodeKind::kPar);
  // Leaf kinds coerce to seq — the root must be able to hold children.
  EXPECT_EQ(Document(NodeKind::kExt).root().kind(), NodeKind::kSeq);
}

TEST(DocumentTest, ResolveAttrWalksInheritance) {
  Document doc;
  doc.root().attrs().Set(std::string(kAttrChannel), AttrValue::Id("main"));
  Node* child = *doc.root().AddChild(NodeKind::kSeq);
  Node* leaf = *child->AddChild(NodeKind::kExt);
  auto v = doc.ResolveAttr(*leaf, kAttrChannel);
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v->has_value());
  EXPECT_EQ((*v)->id(), "main");
}

TEST(DocumentTest, ChannelOfReportsMissing) {
  Document doc;
  Node* leaf = *doc.root().AddChild(NodeKind::kExt);
  EXPECT_EQ(doc.ChannelOf(*leaf).status().code(), StatusCode::kNotFound);
  leaf->attrs().Set(std::string(kAttrChannel), AttrValue::Id("x"));
  auto channel = doc.ChannelOf(*leaf);
  ASSERT_TRUE(channel.ok());
  EXPECT_EQ(*channel, "x");
}

TEST(DocumentTest, StylesFeedEffectiveAttrs) {
  Document doc;
  ASSERT_TRUE(doc.styles()
                  .Define("emphasis", AttrList::FromAttrs({{"weight", AttrValue::Id("bold")}}))
                  .ok());
  Node* leaf = *doc.root().AddChild(NodeKind::kImm);
  leaf->attrs().Set(std::string(kAttrStyle), AttrValue::Id("emphasis"));
  auto attrs = doc.EffectiveAttrs(*leaf);
  ASSERT_TRUE(attrs.ok());
  EXPECT_EQ(attrs->Find("weight")->id(), "bold");
}

TEST(DocumentTest, DictionariesRoundTripThroughRootAttrs) {
  Document doc;
  ASSERT_TRUE(doc.channels().Define("video", MediaType::kVideo).ok());
  ASSERT_TRUE(doc.styles().Define("s", AttrList::FromAttrs({{"k", AttrValue::Number(1)}})).ok());
  doc.StoreDictionariesOnRoot();
  EXPECT_TRUE(doc.root().attrs().Has(kAttrChannelDict));
  EXPECT_TRUE(doc.root().attrs().Has(kAttrStyleDict));

  // A fresh document loads them back from the attributes.
  Document loaded;
  loaded.root().attrs() = doc.root().attrs();
  ASSERT_TRUE(loaded.LoadDictionariesFromRoot().ok());
  EXPECT_TRUE(loaded.channels().Has("video"));
  EXPECT_TRUE(loaded.styles().Has("s"));
}

TEST(DocumentTest, StoreDictionariesRemovesEmpty) {
  Document doc;
  ASSERT_TRUE(doc.channels().Define("c", MediaType::kText).ok());
  doc.StoreDictionariesOnRoot();
  ASSERT_TRUE(doc.root().attrs().Has(kAttrChannelDict));
  doc.channels() = ChannelDictionary();
  doc.StoreDictionariesOnRoot();
  EXPECT_FALSE(doc.root().attrs().Has(kAttrChannelDict));
}

TEST(DocumentTest, LoadRejectsMalformedDictionaries) {
  Document doc;
  doc.root().attrs().Set(std::string(kAttrChannelDict), AttrValue::Number(5));
  EXPECT_FALSE(doc.LoadDictionariesFromRoot().ok());
}

TEST(DocumentTest, CloneIsDeep) {
  Document doc;
  ASSERT_TRUE(doc.channels().Define("video", MediaType::kVideo).ok());
  Node* child = *doc.root().AddChild(NodeKind::kSeq);
  child->set_name("original");

  Document copy = doc.Clone();
  EXPECT_TRUE(copy.channels().Has("video"));
  ASSERT_NE(copy.root().FindChild("original"), nullptr);
  copy.root().FindChild("original")->set_name("changed");
  EXPECT_NE(doc.root().FindChild("original"), nullptr);  // original untouched
}

}  // namespace
}  // namespace cmif
