#include "src/doc/sync_arc.h"

#include <gtest/gtest.h>

namespace cmif {
namespace {

TEST(SyncArcTest, EdgeAndRigorNamesRoundTrip) {
  EXPECT_EQ(*ParseArcEdge(ArcEdgeName(ArcEdge::kBegin)), ArcEdge::kBegin);
  EXPECT_EQ(*ParseArcEdge(ArcEdgeName(ArcEdge::kEnd)), ArcEdge::kEnd);
  EXPECT_EQ(*ParseArcRigor(ArcRigorName(ArcRigor::kMust)), ArcRigor::kMust);
  EXPECT_EQ(*ParseArcRigor(ArcRigorName(ArcRigor::kMay)), ArcRigor::kMay);
  EXPECT_FALSE(ParseArcEdge("middle").ok());
  EXPECT_FALSE(ParseArcRigor("should").ok());
}

TEST(SyncArcTest, HardArcHasZeroWindow) {
  SyncArc arc = HardArc(*NodePath::Parse("a"), ArcEdge::kEnd, *NodePath::Parse("b"),
                        ArcEdge::kBegin);
  EXPECT_EQ(arc.min_delay, MediaTime());
  ASSERT_TRUE(arc.max_delay.has_value());
  EXPECT_EQ(*arc.max_delay, MediaTime());
  EXPECT_EQ(arc.rigor, ArcRigor::kMust);
  EXPECT_TRUE(arc.CheckShape().ok());
}

TEST(SyncArcTest, CheckShapeSignConventions) {
  // "A positive [minimum] delay has no meaning ... a negative [maximum]
  // delay has no meaning" (section 5.3.1).
  SyncArc arc = HardArc(NodePath(), ArcEdge::kBegin, *NodePath::Parse("b"), ArcEdge::kBegin);
  arc.min_delay = MediaTime::Millis(10);
  EXPECT_EQ(arc.CheckShape().code(), StatusCode::kInvalidArgument);

  arc.min_delay = MediaTime::Millis(-10);
  arc.max_delay = MediaTime::Millis(-5);
  EXPECT_EQ(arc.CheckShape().code(), StatusCode::kInvalidArgument);

  arc.max_delay = MediaTime::Millis(20);
  EXPECT_TRUE(arc.CheckShape().ok());
}

TEST(SyncArcTest, NegativeOffsetRejected) {
  SyncArc arc = HardArc(NodePath(), ArcEdge::kBegin, *NodePath::Parse("b"), ArcEdge::kBegin,
                        MediaTime::Millis(-100));
  EXPECT_EQ(arc.CheckShape().code(), StatusCode::kInvalidArgument);
}

TEST(SyncArcTest, UnboundedMaxDelayIsLegal) {
  // "Maximum tolerable delay: a period (possibly infinite)".
  SyncArc arc = WindowArc(*NodePath::Parse("a"), ArcEdge::kEnd, *NodePath::Parse("b"),
                          ArcEdge::kBegin, MediaTime(), MediaTime(), std::nullopt);
  EXPECT_TRUE(arc.CheckShape().ok());
  EXPECT_FALSE(arc.max_delay.has_value());
}

TEST(SyncArcTest, NegativeMinAllowsEarlierStart) {
  // "A negative delay represents the ability to start the target node sooner
  // than the indicated reference time."
  SyncArc arc = WindowArc(*NodePath::Parse("a"), ArcEdge::kBegin, *NodePath::Parse("b"),
                          ArcEdge::kBegin, MediaTime::Seconds(2), MediaTime::Millis(-500),
                          MediaTime::Millis(250));
  EXPECT_TRUE(arc.CheckShape().ok());
}

TEST(SyncArcTest, WindowOrderingChecked) {
  SyncArc arc = WindowArc(NodePath(), ArcEdge::kBegin, *NodePath::Parse("b"), ArcEdge::kBegin,
                          MediaTime(), MediaTime::Millis(-100), MediaTime::Millis(-200));
  // max_delay (-200ms) is both negative and below min: rejected.
  EXPECT_FALSE(arc.CheckShape().ok());
}

TEST(SyncArcTest, ToStringTabularForm) {
  SyncArc arc = WindowArc(*NodePath::Parse("captions/c2"), ArcEdge::kEnd,
                          *NodePath::Parse("graphics/g2"), ArcEdge::kBegin,
                          MediaTime::Rational(1, 2), MediaTime(), MediaTime());
  EXPECT_EQ(arc.ToString(), "end-must captions/c2 1/2 begin:graphics/g2 0 0");
  arc.max_delay = std::nullopt;
  arc.rigor = ArcRigor::kMay;
  EXPECT_EQ(arc.ToString(), "end-may captions/c2 1/2 begin:graphics/g2 0 inf");
}

TEST(SyncArcTest, Equality) {
  SyncArc a = HardArc(*NodePath::Parse("x"), ArcEdge::kBegin, *NodePath::Parse("y"),
                      ArcEdge::kBegin);
  SyncArc b = a;
  EXPECT_EQ(a, b);
  b.offset = MediaTime::Millis(1);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace cmif
