#include "src/doc/channel.h"

#include <gtest/gtest.h>

namespace cmif {
namespace {

TEST(ChannelDictionaryTest, DefineAndFind) {
  ChannelDictionary dict;
  ASSERT_TRUE(dict.Define("video", MediaType::kVideo).ok());
  ASSERT_TRUE(dict.Define("audio", MediaType::kAudio).ok());
  EXPECT_EQ(dict.size(), 2u);
  ASSERT_NE(dict.Find("video"), nullptr);
  EXPECT_EQ(dict.Find("video")->medium, MediaType::kVideo);
  EXPECT_EQ(dict.Find("ghost"), nullptr);
}

TEST(ChannelDictionaryTest, SeveralChannelsOfSameMedium) {
  // "It is possible to have several channels of the same medium type"
  // (section 3.1) — e.g. caption and label are both text.
  ChannelDictionary dict;
  ASSERT_TRUE(dict.Define("caption", MediaType::kText).ok());
  ASSERT_TRUE(dict.Define("label", MediaType::kText).ok());
  EXPECT_EQ(dict.size(), 2u);
}

TEST(ChannelDictionaryTest, RejectsDuplicatesAndBadNames) {
  ChannelDictionary dict;
  ASSERT_TRUE(dict.Define("v", MediaType::kVideo).ok());
  EXPECT_EQ(dict.Define("v", MediaType::kAudio).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(dict.Define("bad name", MediaType::kText).code(), StatusCode::kInvalidArgument);
}

TEST(ChannelDictionaryTest, ExtrasArePreserved) {
  ChannelDictionary dict;
  AttrList extra;
  extra.Set("region", AttrValue::Id("main"));
  ASSERT_TRUE(dict.Define("video", MediaType::kVideo, extra).ok());
  EXPECT_EQ(dict.Find("video")->extra.Find("region")->id(), "main");
}

TEST(ChannelDictionaryTest, AttrValueRoundTrip) {
  ChannelDictionary dict;
  AttrList extra;
  extra.Set("region", AttrValue::Id("inset"));
  ASSERT_TRUE(dict.Define("graphic", MediaType::kGraphic, extra).ok());
  ASSERT_TRUE(dict.Define("sound", MediaType::kAudio).ok());

  auto restored = ChannelDictionary::FromAttrValue(dict.ToAttrValue());
  ASSERT_TRUE(restored.ok()) << restored.status();
  ASSERT_EQ(restored->size(), 2u);
  EXPECT_EQ(*restored->Find("graphic"), *dict.Find("graphic"));
  EXPECT_EQ(*restored->Find("sound"), *dict.Find("sound"));
}

TEST(ChannelDictionaryTest, FromAttrValueRejectsMalformed) {
  EXPECT_FALSE(ChannelDictionary::FromAttrValue(AttrValue::Number(1)).ok());
  // Definition body must be a LIST with a medium.
  EXPECT_FALSE(ChannelDictionary::FromAttrValue(
                   AttrValue::List({Attr{"v", AttrValue::Id("video")}}))
                   .ok());
  EXPECT_FALSE(ChannelDictionary::FromAttrValue(
                   AttrValue::List({Attr{"v", AttrValue::List({})}}))
                   .ok());
  EXPECT_FALSE(ChannelDictionary::FromAttrValue(
                   AttrValue::List(
                       {Attr{"v", AttrValue::List({Attr{"medium", AttrValue::Id("odor")}})}}))
                   .ok());
}

TEST(ChannelDictionaryTest, OrderPreserved) {
  ChannelDictionary dict;
  ASSERT_TRUE(dict.Define("z", MediaType::kText).ok());
  ASSERT_TRUE(dict.Define("a", MediaType::kText).ok());
  EXPECT_EQ(dict.channels()[0].name, "z");
  EXPECT_EQ(dict.channels()[1].name, "a");
}

}  // namespace
}  // namespace cmif
