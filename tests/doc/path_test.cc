#include "src/doc/path.h"

#include <gtest/gtest.h>

namespace cmif {
namespace {

TEST(NodePathTest, EmptyIsSelf) {
  // "The empty name specifies the current node itself" (section 5.3.2).
  auto p = NodePath::Parse("");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->is_self());
  EXPECT_FALSE(p->is_absolute());
  EXPECT_EQ(p->ToString(), ".");
}

TEST(NodePathTest, DotIsSelf) {
  auto p = NodePath::Parse(".");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->is_self());
}

TEST(NodePathTest, RelativeSegments) {
  auto p = NodePath::Parse("story1/video/v2");
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(p->is_absolute());
  EXPECT_EQ(p->segments(), (std::vector<std::string>{"story1", "video", "v2"}));
  EXPECT_EQ(p->ToString(), "story1/video/v2");
}

TEST(NodePathTest, AbsolutePaths) {
  auto p = NodePath::Parse("/news/story1");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->is_absolute());
  EXPECT_EQ(p->segments().size(), 2u);
  EXPECT_EQ(p->ToString(), "/news/story1");

  auto root = NodePath::Parse("/");
  ASSERT_TRUE(root.ok());
  EXPECT_TRUE(root->is_absolute());
  EXPECT_TRUE(root->segments().empty());
}

TEST(NodePathTest, ParentSegments) {
  auto p = NodePath::Parse("../sibling");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->segments(), (std::vector<std::string>{"..", "sibling"}));
}

TEST(NodePathTest, DotSegmentsAreSkipped) {
  auto p = NodePath::Parse("a/./b");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->segments(), (std::vector<std::string>{"a", "b"}));
}

TEST(NodePathTest, RejectsInvalidSegmentNames) {
  EXPECT_FALSE(NodePath::Parse("a/9bad").ok());
  EXPECT_FALSE(NodePath::Parse("has space").ok());
}

TEST(NodePathTest, FactoriesAndEquality) {
  NodePath a = NodePath::Relative({"x", "y"});
  NodePath b = NodePath::Relative({"x", "y"});
  NodePath c = NodePath::Absolute({"x", "y"});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(c.ToString(), "/x/y");
}

TEST(NodePathTest, RoundTripsThroughToString) {
  for (const char* text : {".", "a", "a/b/c", "/a", "/", "../x", "../../y"}) {
    auto p = NodePath::Parse(text);
    ASSERT_TRUE(p.ok()) << text;
    auto again = NodePath::Parse(p->ToString());
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(*again, *p) << text;
  }
}

}  // namespace
}  // namespace cmif
