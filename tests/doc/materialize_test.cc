#include <gtest/gtest.h>

#include "src/doc/builder.h"
#include "src/doc/event.h"

namespace cmif {
namespace {

class MaterializeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // A 1s tone in the block store, referenced by descriptor "tone".
    AudioBuffer tone = MakeTone(8000, MediaTime::Seconds(1), 440, 0.5);
    ASSERT_TRUE(blocks_.Put("tone-bytes", DataBlock::FromAudio(tone)).ok());
    AttrList tone_attrs;
    tone_attrs.Set(std::string(kDescMedium), AttrValue::Id("audio"));
    DataDescriptor tone_desc("tone", tone_attrs);
    tone_desc.set_content(std::string("tone-bytes"));
    ASSERT_TRUE(store_.Add(std::move(tone_desc)).ok());

    // A 10-frame video via generator.
    AttrList video_attrs;
    video_attrs.Set(std::string(kDescMedium), AttrValue::Id("video"));
    DataDescriptor video_desc("clip", video_attrs);
    GeneratorSpec spec;
    spec.generator = "flying_bird";
    spec.params = "width=16,height=12,fps=10";
    spec.duration = MediaTime::Seconds(1);
    video_desc.set_content(std::move(spec));
    ASSERT_TRUE(store_.Add(std::move(video_desc)).ok());

    // A 16x12 graphic inline.
    AttrList image_attrs;
    image_attrs.Set(std::string(kDescMedium), AttrValue::Id("graphic"));
    DataDescriptor image_desc("card", image_attrs);
    image_desc.set_content(DataBlock::FromImage(MakeTestCard(16, 12, 3), MediaType::kGraphic));
    ASSERT_TRUE(store_.Add(std::move(image_desc)).ok());
  }

  EventDescriptor EventFor(DocBuilder& builder) {
    auto doc = builder.Build();
    EXPECT_TRUE(doc.ok());
    doc_ = std::move(doc).value();
    auto events = CollectEvents(doc_, &store_);
    EXPECT_TRUE(events.ok()) << events.status();
    EXPECT_EQ(events->size(), 1u);
    return events->front();
  }

  DescriptorStore store_;
  BlockStore blocks_;
  Document doc_{NodeKind::kSeq};
};

TEST_F(MaterializeTest, PlainExternalResolves) {
  DocBuilder builder;
  builder.DefineChannel("sound", MediaType::kAudio).Ext("a", "tone").OnChannel("sound");
  EventDescriptor event = EventFor(builder);
  auto block = MaterializeEvent(event, store_, blocks_);
  ASSERT_TRUE(block.ok()) << block.status();
  EXPECT_EQ(block->audio().frames(), 8000u);
}

TEST_F(MaterializeTest, ImmediateDataPassesThrough) {
  DocBuilder builder;
  builder.DefineChannel("txt", MediaType::kText).ImmText("t", "hello").OnChannel("txt");
  EventDescriptor event = EventFor(builder);
  auto block = MaterializeEvent(event, store_, blocks_);
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(block->text().text(), "hello");
}

TEST_F(MaterializeTest, ClipSelectsSamples) {
  // Clip: "a part of a sound fragment" (Figure 7).
  DocBuilder builder;
  builder.DefineChannel("sound", MediaType::kAudio)
      .Ext("a", "tone")
      .OnChannel("sound")
      .Attr(std::string(kAttrClip), AttrValue::List({Attr{"begin", AttrValue::Number(2000)},
                                                     Attr{"length", AttrValue::Number(4000)}}));
  EventDescriptor event = EventFor(builder);
  auto block = MaterializeEvent(event, store_, blocks_);
  ASSERT_TRUE(block.ok()) << block.status();
  EXPECT_EQ(block->audio().frames(), 4000u);
}

TEST_F(MaterializeTest, SliceSelectsFrames) {
  // Slice: "a subsection of the file used by an external node" (Figure 7).
  DocBuilder builder;
  builder.DefineChannel("screen", MediaType::kVideo)
      .Ext("v", "clip")
      .OnChannel("screen")
      .Attr(std::string(kAttrSlice), AttrValue::List({Attr{"begin", AttrValue::Number(3)},
                                                      Attr{"length", AttrValue::Number(4)}}));
  EventDescriptor event = EventFor(builder);
  auto block = MaterializeEvent(event, store_, blocks_);
  ASSERT_TRUE(block.ok()) << block.status();
  EXPECT_EQ(block->video().frame_count(), 4u);
}

TEST_F(MaterializeTest, CropSelectsSubimage) {
  DocBuilder builder;
  builder.DefineChannel("pic", MediaType::kGraphic)
      .Ext("g", "card")
      .OnChannel("pic")
      .Attr(std::string(kAttrCrop),
            AttrValue::List({Attr{"x", AttrValue::Number(4)}, Attr{"y", AttrValue::Number(2)},
                             Attr{"w", AttrValue::Number(8)}, Attr{"h", AttrValue::Number(6)}}));
  EventDescriptor event = EventFor(builder);
  auto block = MaterializeEvent(event, store_, blocks_);
  ASSERT_TRUE(block.ok()) << block.status();
  EXPECT_EQ(block->image().width(), 8);
  EXPECT_EQ(block->image().height(), 6);
  EXPECT_EQ(block->medium(), MediaType::kGraphic);
}

TEST_F(MaterializeTest, ClipOnVideoIsAnError) {
  DocBuilder builder;
  builder.DefineChannel("screen", MediaType::kVideo)
      .Ext("v", "clip")
      .OnChannel("screen")
      .Attr(std::string(kAttrClip), AttrValue::List({Attr{"begin", AttrValue::Number(0)},
                                                     Attr{"length", AttrValue::Number(1)}}));
  EventDescriptor event = EventFor(builder);
  EXPECT_EQ(MaterializeEvent(event, store_, blocks_).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(MaterializeTest, OutOfRangeSelectionPropagates) {
  DocBuilder builder;
  builder.DefineChannel("sound", MediaType::kAudio)
      .Ext("a", "tone")
      .OnChannel("sound")
      .Attr(std::string(kAttrClip),
            AttrValue::List({Attr{"begin", AttrValue::Number(7000)},
                             Attr{"length", AttrValue::Number(5000)}}));
  EventDescriptor event = EventFor(builder);
  EXPECT_EQ(MaterializeEvent(event, store_, blocks_).status().code(),
            StatusCode::kOutOfRange);
}

TEST_F(MaterializeTest, MissingDescriptorIsNotFound) {
  DocBuilder builder;
  builder.DefineChannel("sound", MediaType::kAudio).Ext("a", "tone").OnChannel("sound");
  EventDescriptor event = EventFor(builder);
  event.descriptor_id = "ghost";
  EXPECT_EQ(MaterializeEvent(event, store_, blocks_).status().code(), StatusCode::kNotFound);
}

TEST_F(MaterializeTest, InheritedClipApplies) {
  // Clip set on the parent applies to the leaf through effective attrs?
  // Clip is NOT inherited per the registry, so it must not leak down.
  DocBuilder builder;
  builder.DefineChannel("sound", MediaType::kAudio)
      .Seq("s")
      .Attr(std::string(kAttrClip), AttrValue::List({Attr{"begin", AttrValue::Number(0)},
                                                     Attr{"length", AttrValue::Number(10)}}))
      .Ext("a", "tone")
      .OnChannel("sound")
      .Up();
  EventDescriptor event = EventFor(builder);
  auto block = MaterializeEvent(event, store_, blocks_);
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(block->audio().frames(), 8000u);  // full fragment: clip did not inherit
}

}  // namespace
}  // namespace cmif
