#include "src/doc/builder.h"

#include <gtest/gtest.h>

namespace cmif {
namespace {

TEST(DocBuilderTest, BuildsNestedStructure) {
  DocBuilder builder;
  builder.DefineChannel("v", MediaType::kVideo)
      .Par("scene")
      .Ext("clip", "desc-1")
      .OnChannel("v")
      .ImmText("note", "hello")
      .Up();
  auto doc = builder.Build();
  ASSERT_TRUE(doc.ok()) << doc.status();
  const Node* scene = doc->root().FindChild("scene");
  ASSERT_NE(scene, nullptr);
  EXPECT_EQ(scene->kind(), NodeKind::kPar);
  EXPECT_EQ(scene->child_count(), 2u);
  const Node* clip = scene->FindChild("clip");
  ASSERT_NE(clip, nullptr);
  EXPECT_EQ(clip->attrs().Find(kAttrFile)->string(), "desc-1");
  EXPECT_EQ(clip->attrs().Find(kAttrChannel)->id(), "v");
  EXPECT_EQ(scene->FindChild("note")->immediate_data().text().text(), "hello");
}

TEST(DocBuilderTest, LeafCursorAutoPops) {
  // Adding a sibling while positioned on a leaf pops to the composite.
  DocBuilder builder;
  builder.Seq("s").Ext("a", "d1").Ext("b", "d2").Ext("c", "d3").Up();
  auto doc = builder.Build();
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root().FindChild("s")->child_count(), 3u);
}

TEST(DocBuilderTest, UpFromLeafLeavesComposite) {
  DocBuilder builder;
  builder.Seq("outer").Seq("inner").Ext("leaf", "d").Up();  // now at outer
  builder.Ext("after", "d2");
  auto doc = builder.Build();
  ASSERT_TRUE(doc.ok());
  const Node* outer = doc->root().FindChild("outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->child_count(), 2u);  // inner + after
  EXPECT_NE(outer->FindChild("after"), nullptr);
}

TEST(DocBuilderTest, AttrHelpersApplyToCurrent) {
  DocBuilder builder;
  builder.Seq("s")
      .ImmText("t", "x")
      .WithDuration(MediaTime::Seconds(3))
      .WithStyle("fancy")
      .Attr("custom", AttrValue::Number(9));
  auto doc = builder.Build();
  ASSERT_TRUE(doc.ok());
  const Node* t = doc->root().FindChild("s")->FindChild("t");
  EXPECT_EQ(t->attrs().Find(kAttrDuration)->time(), MediaTime::Seconds(3));
  EXPECT_EQ(t->attrs().Find(kAttrStyle)->id(), "fancy");
  EXPECT_EQ(t->attrs().Find("custom")->number(), 9);
}

TEST(DocBuilderTest, ImmWithNonTextDataSetsMediumAttr) {
  DocBuilder builder;
  builder.Imm("pic", DataBlock::FromImage(MakeTestCard(8, 8, 1), MediaType::kGraphic));
  auto doc = builder.Build();
  ASSERT_TRUE(doc.ok());
  const Node* pic = doc->root().FindChild("pic");
  EXPECT_EQ(pic->attrs().Find(kAttrMedium)->id(), "graphic");
}

TEST(DocBuilderTest, ArcShapeErrorsStick) {
  DocBuilder builder;
  SyncArc bad = HardArc(NodePath(), ArcEdge::kBegin, *NodePath::Parse("x"), ArcEdge::kBegin);
  bad.min_delay = MediaTime::Seconds(1);  // positive min has no meaning
  builder.Arc(bad);
  EXPECT_EQ(builder.Build().status().code(), StatusCode::kInvalidArgument);
}

TEST(DocBuilderTest, UpAtRootIsAnError) {
  DocBuilder builder;
  builder.Up();
  EXPECT_EQ(builder.Build().status().code(), StatusCode::kFailedPrecondition);
}

TEST(DocBuilderTest, FirstErrorWinsAndChainingContinues) {
  DocBuilder builder;
  builder.DefineChannel("dup", MediaType::kText).DefineChannel("dup", MediaType::kText);
  builder.Seq("still-works");  // chaining after the error is safe
  auto doc = builder.Build();
  EXPECT_EQ(doc.status().code(), StatusCode::kAlreadyExists);
}

TEST(DocBuilderTest, BuildTwiceFails) {
  DocBuilder builder;
  ASSERT_TRUE(builder.Build().ok());
  EXPECT_EQ(builder.Build().status().code(), StatusCode::kFailedPrecondition);
}

TEST(DocBuilderTest, ToRootResetsCursor) {
  DocBuilder builder;
  builder.Seq("deep").Seq("deeper").ToRoot().Seq("top");
  auto doc = builder.Build();
  ASSERT_TRUE(doc.ok());
  EXPECT_NE(doc->root().FindChild("top"), nullptr);
  EXPECT_EQ(doc->root().child_count(), 2u);
}

TEST(DocBuilderTest, StylesAndChannelsLand) {
  DocBuilder builder;
  builder.DefineChannel("a", MediaType::kAudio)
      .DefineStyle("s", AttrList::FromAttrs({{"x", AttrValue::Number(1)}}));
  auto doc = builder.Build();
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(doc->channels().Has("a"));
  EXPECT_TRUE(doc->styles().Has("s"));
}

}  // namespace
}  // namespace cmif
