#include "src/doc/stats.h"

#include <gtest/gtest.h>

#include "src/doc/builder.h"
#include "src/news/evening_news.h"

namespace cmif {
namespace {

TEST(StatsTest, CountsNodeKinds) {
  DocBuilder builder;
  builder.DefineChannel("txt", MediaType::kText)
      .Par("p")
      .ImmText("a", "x")
      .OnChannel("txt")
      .ImmText("b", "y")
      .OnChannel("txt")
      .Up()
      .Seq("s")
      .Ext("c", "d1")
      .OnChannel("txt")
      .Up();
  auto doc = builder.Build();
  ASSERT_TRUE(doc.ok());
  DocumentStats stats = ComputeStats(*doc);
  EXPECT_EQ(stats.total_nodes, 6u);  // root + p + a + b + s + c
  EXPECT_EQ(stats.seq_nodes, 2u);    // root and s
  EXPECT_EQ(stats.par_nodes, 1u);
  EXPECT_EQ(stats.imm_nodes, 2u);
  EXPECT_EQ(stats.ext_nodes, 1u);
  EXPECT_EQ(stats.max_depth, 2);
  EXPECT_EQ(stats.channel_count, 1u);
  EXPECT_EQ(stats.events_per_channel.at("txt"), 3u);
  EXPECT_EQ(stats.distinct_descriptors, 1u);
}

TEST(StatsTest, ArcRigorCounts) {
  DocBuilder builder;
  builder.Seq("s").ImmText("a", "x").ImmText("b", "y").Up();
  builder.Arc(HardArc(*NodePath::Parse("s/a"), ArcEdge::kEnd, *NodePath::Parse("s/b"),
                      ArcEdge::kBegin));
  builder.Arc(WindowArc(*NodePath::Parse("s/a"), ArcEdge::kBegin, *NodePath::Parse("s/b"),
                        ArcEdge::kBegin, MediaTime(), MediaTime(), std::nullopt,
                        ArcRigor::kMay));
  auto doc = builder.Build();
  ASSERT_TRUE(doc.ok());
  DocumentStats stats = ComputeStats(*doc);
  EXPECT_EQ(stats.arc_count, 2u);
  EXPECT_EQ(stats.must_arcs, 1u);
  EXPECT_EQ(stats.may_arcs, 1u);
}

TEST(StatsTest, UnassignedLeavesCollected) {
  DocBuilder builder;
  builder.ImmText("orphan", "x");
  auto doc = builder.Build();
  ASSERT_TRUE(doc.ok());
  DocumentStats stats = ComputeStats(*doc);
  EXPECT_EQ(stats.events_per_channel.at(""), 1u);
}

TEST(StatsTest, ReferencedBytesComeFromStoreAttributes) {
  // The paper's section-6 argument: summary information without touching
  // media data. referenced_bytes derives from descriptor attributes only.
  auto workload = BuildEveningNews(NewsOptions{});
  ASSERT_TRUE(workload.ok());
  DocumentStats with_store = ComputeStats(workload->document, &workload->store);
  DocumentStats without_store = ComputeStats(workload->document);
  EXPECT_GT(with_store.referenced_bytes, 1000000u);  // megabytes of media
  EXPECT_EQ(without_store.referenced_bytes, 0u);
  // The structural description is orders of magnitude smaller.
  EXPECT_LT(with_store.structure_bytes * 100, with_store.referenced_bytes);
}

TEST(StatsTest, RenderingMentionsEverySection) {
  auto workload = BuildEveningNews(NewsOptions{});
  ASSERT_TRUE(workload.ok());
  std::string text = StatsToString(ComputeStats(workload->document, &workload->store));
  for (const char* fragment : {"nodes:", "depth:", "arcs:", "channels:", "events per channel",
                               "structure bytes"}) {
    EXPECT_NE(text.find(fragment), std::string::npos) << fragment;
  }
}

}  // namespace
}  // namespace cmif
