#include "src/media/video.h"

#include <gtest/gtest.h>

namespace cmif {
namespace {

VideoSegment MakeCounter(int fps, int frames) {
  VideoSegment segment(fps);
  for (int i = 0; i < frames; ++i) {
    Raster frame(8, 6, Pixel{static_cast<std::uint8_t>(i), 0, 0});
    EXPECT_TRUE(segment.Append(std::move(frame)).ok());
  }
  return segment;
}

TEST(VideoSegmentTest, AppendAndDuration) {
  VideoSegment segment = MakeCounter(25, 50);
  EXPECT_EQ(segment.frame_count(), 50u);
  EXPECT_EQ(segment.Duration(), MediaTime::Seconds(2));
  EXPECT_EQ(segment.width(), 8);
  EXPECT_EQ(segment.height(), 6);
  EXPECT_EQ(segment.byte_size(), 50u * 8u * 6u * 3u);
}

TEST(VideoSegmentTest, AppendRejectsMismatchedSize) {
  VideoSegment segment(25);
  ASSERT_TRUE(segment.Append(Raster(8, 6)).ok());
  EXPECT_EQ(segment.Append(Raster(4, 4)).code(), StatusCode::kInvalidArgument);
}

TEST(VideoSegmentTest, SliceExtractsFrames) {
  VideoSegment segment = MakeCounter(25, 10);
  auto sliced = segment.Slice(4, 3);
  ASSERT_TRUE(sliced.ok());
  EXPECT_EQ(sliced->frame_count(), 3u);
  EXPECT_EQ(sliced->Frame(0).At(0, 0).r, 4);
  EXPECT_EQ(sliced->fps(), 25);
}

TEST(VideoSegmentTest, SliceOutOfRangeIsError) {
  VideoSegment segment = MakeCounter(25, 10);
  EXPECT_EQ(segment.Slice(8, 5).status().code(), StatusCode::kOutOfRange);
}

TEST(VideoSegmentTest, SubsampleKeepsEveryNth) {
  VideoSegment segment = MakeCounter(25, 25);
  auto sampled = segment.SubsampleRate(5);
  ASSERT_TRUE(sampled.ok());
  EXPECT_EQ(sampled->fps(), 5);
  EXPECT_EQ(sampled->frame_count(), 5u);
  EXPECT_EQ(sampled->Frame(1).At(0, 0).r, 5);
  // Duration is preserved by rate subsampling.
  EXPECT_EQ(sampled->Duration(), segment.Duration());
}

TEST(VideoSegmentTest, SubsampleRejectsNonDivisor) {
  VideoSegment segment = MakeCounter(25, 25);
  EXPECT_EQ(segment.SubsampleRate(4).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(segment.SubsampleRate(0).status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(segment.SubsampleRate(1).ok());
}

TEST(VideoSegmentTest, DownscaleFrames) {
  VideoSegment segment = MakeCounter(25, 4);
  auto scaled = segment.DownscaleFrames(4, 3);
  ASSERT_TRUE(scaled.ok());
  EXPECT_EQ(scaled->width(), 4);
  EXPECT_EQ(scaled->height(), 3);
  EXPECT_EQ(scaled->frame_count(), 4u);
}

TEST(VideoSegmentTest, QuantizeColorAppliesPerFrame) {
  VideoSegment segment = MakeCounter(25, 2);
  VideoSegment quantized = segment.QuantizeColor(1);
  EXPECT_EQ(quantized.frame_count(), 2u);
  // Frame 1 (value 1) quantizes to 0 at 1 bit.
  EXPECT_EQ(quantized.Frame(1).At(0, 0).r, 0);
}

TEST(SyntheticVideoTest, FlyingBirdSegmentShape) {
  VideoSegment segment = MakeFlyingBirdSegment(32, 24, 10, MediaTime::Seconds(2));
  EXPECT_EQ(segment.frame_count(), 20u);
  EXPECT_EQ(segment.Duration(), MediaTime::Seconds(2));
  EXPECT_FALSE(segment.Frame(0) == segment.Frame(10));  // the bird moved
}

TEST(SyntheticVideoTest, TalkingHeadDeterministic) {
  VideoSegment a = MakeTalkingHeadSegment(32, 24, 10, MediaTime::Seconds(1), 3);
  VideoSegment b = MakeTalkingHeadSegment(32, 24, 10, MediaTime::Seconds(1), 3);
  ASSERT_EQ(a.frame_count(), b.frame_count());
  for (std::size_t i = 0; i < a.frame_count(); ++i) {
    EXPECT_EQ(a.Frame(i), b.Frame(i));
  }
}

TEST(SyntheticVideoTest, EmptySegmentHasZeroDuration) {
  VideoSegment segment(25);
  EXPECT_TRUE(segment.empty());
  EXPECT_EQ(segment.Duration(), MediaTime());
  EXPECT_EQ(segment.width(), 0);
}

}  // namespace
}  // namespace cmif
