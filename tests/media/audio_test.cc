#include "src/media/audio.h"

#include <gtest/gtest.h>

namespace cmif {
namespace {

TEST(AudioBufferTest, ConstructionIsSilence) {
  AudioBuffer audio(8000, 1, 100);
  EXPECT_EQ(audio.rate(), 8000);
  EXPECT_EQ(audio.channels(), 1);
  EXPECT_EQ(audio.frames(), 100u);
  EXPECT_EQ(audio.byte_size(), 200u);
  EXPECT_EQ(audio.Sample(50, 0), 0);
  EXPECT_DOUBLE_EQ(audio.RmsLevel(), 0.0);
}

TEST(AudioBufferTest, DurationIsExact) {
  AudioBuffer audio(8000, 1, 4000);
  EXPECT_EQ(audio.Duration(), MediaTime::Rational(1, 2));
  EXPECT_EQ(AudioBuffer().Duration(), MediaTime());
}

TEST(AudioBufferTest, ClipExtractsFrames) {
  AudioBuffer audio(8000, 1, 10);
  for (std::size_t f = 0; f < 10; ++f) {
    audio.SetSample(f, 0, static_cast<std::int16_t>(f));
  }
  auto clipped = audio.Clip(3, 4);
  ASSERT_TRUE(clipped.ok());
  EXPECT_EQ(clipped->frames(), 4u);
  EXPECT_EQ(clipped->Sample(0, 0), 3);
  EXPECT_EQ(clipped->Sample(3, 0), 6);
}

TEST(AudioBufferTest, ClipOutOfRangeIsError) {
  AudioBuffer audio(8000, 1, 10);
  EXPECT_EQ(audio.Clip(8, 5).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(audio.Clip(11, 0).status().code(), StatusCode::kOutOfRange);
  EXPECT_TRUE(audio.Clip(10, 0).ok());  // empty clip at the end is legal
}

TEST(AudioBufferTest, ResampleHalvesFrames) {
  AudioBuffer audio = MakeTone(8000, MediaTime::Seconds(1), 440, 0.5);
  auto resampled = audio.Resample(4000);
  ASSERT_TRUE(resampled.ok());
  EXPECT_EQ(resampled->rate(), 4000);
  EXPECT_EQ(resampled->frames(), 4000u);
  // Energy is approximately preserved by decimation of a tone.
  EXPECT_NEAR(resampled->RmsLevel(), audio.RmsLevel(), 0.02);
}

TEST(AudioBufferTest, ResampleRejectsBadRate) {
  AudioBuffer audio(8000, 1, 10);
  EXPECT_FALSE(audio.Resample(0).ok());
  EXPECT_FALSE(audio.Resample(-1).ok());
}

TEST(AudioBufferTest, ToMonoAveragesChannels) {
  AudioBuffer stereo(8000, 2, 2);
  stereo.SetSample(0, 0, 100);
  stereo.SetSample(0, 1, 300);
  AudioBuffer mono = stereo.ToMono();
  EXPECT_EQ(mono.channels(), 1);
  EXPECT_EQ(mono.Sample(0, 0), 200);
  // Mono input passes through unchanged.
  EXPECT_EQ(mono.ToMono(), mono);
}

TEST(WavCodecTest, RoundTripMono) {
  AudioBuffer audio = MakeTone(8000, MediaTime::Millis(250), 330, 0.7);
  auto decoded = DecodeWav(EncodeWav(audio));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(*decoded, audio);
}

TEST(WavCodecTest, RoundTripStereo) {
  AudioBuffer audio(44100, 2, 100);
  for (std::size_t f = 0; f < 100; ++f) {
    audio.SetSample(f, 0, static_cast<std::int16_t>(f * 3));
    audio.SetSample(f, 1, static_cast<std::int16_t>(-static_cast<int>(f)));
  }
  auto decoded = DecodeWav(EncodeWav(audio));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, audio);
}

TEST(WavCodecTest, RejectsGarbage) {
  EXPECT_EQ(DecodeWav("not a wav").status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(DecodeWav(std::string(44, 'x')).status().code(), StatusCode::kDataLoss);
  // Truncated data chunk.
  std::string truncated = EncodeWav(MakeTone(8000, MediaTime::Millis(100), 440, 0.5));
  truncated.resize(truncated.size() / 2);
  EXPECT_FALSE(DecodeWav(truncated).ok());
}

TEST(SynthTest, ToneHasExpectedLevel) {
  // A full-scale sine has RMS 1/sqrt(2); at amplitude 0.5, ~0.354.
  AudioBuffer tone = MakeTone(8000, MediaTime::Seconds(1), 440, 0.5);
  EXPECT_NEAR(tone.RmsLevel(), 0.3535, 0.01);
  EXPECT_EQ(tone.frames(), 8000u);
}

TEST(SynthTest, ToneAmplitudeClamped) {
  AudioBuffer loud = MakeTone(8000, MediaTime::Millis(100), 440, 5.0);
  EXPECT_LE(loud.RmsLevel(), 0.8);
}

TEST(SynthTest, SpeechLikeIsDeterministicAndAudible) {
  AudioBuffer a = MakeSpeechLike(8000, MediaTime::Seconds(1), 42);
  AudioBuffer b = MakeSpeechLike(8000, MediaTime::Seconds(1), 42);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.RmsLevel(), 0.01);
  AudioBuffer c = MakeSpeechLike(8000, MediaTime::Seconds(1), 43);
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace cmif
