// The block payload codec's decode contract: crafted or corrupted payloads
// fail as structured kDataLoss — never a crash, out-of-bounds read, or
// unbounded allocation — and valid encodings round-trip exactly. These
// payloads arrive over the network (wire v4 stream chunks carry them), so
// the decode path is adversarial input.
#include "src/media/block_codec.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "src/base/varint.h"
#include "src/media/data_block.h"
#include "src/media/raster.h"
#include "src/media/video.h"

namespace cmif {
namespace {

TEST(BlockCodecTest, VideoRoundTrip) {
  VideoSegment video(25);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(video.Append(Raster(4, 2, Pixel{static_cast<std::uint8_t>(i), 0, 255})).ok());
  }
  DataBlock block = DataBlock::FromVideo(std::move(video));
  auto decoded = DecodeBlockPayload(EncodeBlockPayload(block));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->video().fps(), 25);
  EXPECT_EQ(decoded->video().frame_count(), 3u);
  EXPECT_EQ(decoded->video(), block.video());
}

TEST(BlockCodecTest, VideoSizeOverflowIsDataLossNotOutOfBoundsRead) {
  // frame_count * width * height * 3 = 2^40 * 2^15 * 512 * 3 = 3 * 2^64,
  // which wraps to 0 in uint64 — exactly matching the empty tail. A naive
  // size check passes and the frame loop then reads out of bounds; the
  // decode must instead fail structurally on the byte budget.
  std::string payload;
  PutVarint64(payload, static_cast<std::uint64_t>(MediaType::kVideo));
  PutVarint64(payload, 0);          // not a generator
  PutVarint64(payload, 30);         // fps
  PutVarint64(payload, 1ull << 40); // frame_count at the plausibility cap
  PutVarint64(payload, 1ull << 15); // width at the pixel cap
  PutVarint64(payload, 512);        // height
  auto decoded = DecodeBlockPayload(payload);
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss) << decoded.status();
}

TEST(BlockCodecTest, ZeroAreaVideoFramesAreDataLoss) {
  // Zero-area frames carry no payload bytes, so any frame count "fits" the
  // tail; accepting them would let a crafted count drive an unbounded
  // append loop.
  std::string payload;
  PutVarint64(payload, static_cast<std::uint64_t>(MediaType::kVideo));
  PutVarint64(payload, 0);   // not a generator
  PutVarint64(payload, 30);  // fps
  PutVarint64(payload, 7);   // frame_count
  PutVarint64(payload, 0);   // width
  PutVarint64(payload, 16);  // height
  auto decoded = DecodeBlockPayload(payload);
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss) << decoded.status();
}

TEST(BlockCodecTest, TruncatedVideoPayloadIsDataLoss) {
  VideoSegment video(10);
  ASSERT_TRUE(video.Append(Raster(8, 8)).ok());
  std::string encoded = EncodeBlockPayload(DataBlock::FromVideo(std::move(video)));
  for (std::size_t cut = 0; cut < encoded.size(); ++cut) {
    auto decoded = DecodeBlockPayload(encoded.substr(0, cut));
    EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss) << "cut=" << cut;
  }
}

}  // namespace
}  // namespace cmif
