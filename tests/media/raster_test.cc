#include "src/media/raster.h"

#include <gtest/gtest.h>

namespace cmif {
namespace {

TEST(RasterTest, ConstructionFills) {
  Raster image(4, 3, Pixel{10, 20, 30});
  EXPECT_EQ(image.width(), 4);
  EXPECT_EQ(image.height(), 3);
  EXPECT_EQ(image.byte_size(), 4u * 3u * 3u);
  EXPECT_EQ(image.At(3, 2), (Pixel{10, 20, 30}));
}

TEST(RasterTest, PutAndGet) {
  Raster image(2, 2);
  image.Put(1, 0, Pixel{255, 0, 0});
  EXPECT_EQ(image.At(1, 0), (Pixel{255, 0, 0}));
  EXPECT_EQ(image.At(0, 0), Pixel{});
}

TEST(RasterTest, FillRectClampsToBounds) {
  Raster image(4, 4);
  image.FillRect(-2, -2, 4, 4, Pixel{1, 1, 1});  // overlaps top-left 2x2
  EXPECT_EQ(image.At(0, 0), (Pixel{1, 1, 1}));
  EXPECT_EQ(image.At(1, 1), (Pixel{1, 1, 1}));
  EXPECT_EQ(image.At(2, 2), Pixel{});
}

TEST(RasterTest, CropExtractsSubimage) {
  Raster image(4, 4);
  image.Put(2, 1, Pixel{9, 9, 9});
  auto cropped = image.Crop(2, 1, 2, 2);
  ASSERT_TRUE(cropped.ok());
  EXPECT_EQ(cropped->width(), 2);
  EXPECT_EQ(cropped->height(), 2);
  EXPECT_EQ(cropped->At(0, 0), (Pixel{9, 9, 9}));
}

TEST(RasterTest, CropOutOfBoundsIsError) {
  Raster image(4, 4);
  EXPECT_EQ(image.Crop(3, 3, 2, 2).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(image.Crop(0, 0, 0, 1).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(image.Crop(-1, 0, 2, 2).status().code(), StatusCode::kOutOfRange);
}

TEST(RasterTest, QuantizePreservesExtremes) {
  Raster image(2, 1);
  image.Put(0, 0, Pixel{255, 255, 255});
  image.Put(1, 0, Pixel{0, 0, 0});
  Raster q = image.QuantizeColor(3);
  EXPECT_EQ(q.At(0, 0), (Pixel{255, 255, 255}));  // white stays white
  EXPECT_EQ(q.At(1, 0), (Pixel{0, 0, 0}));
}

TEST(RasterTest, QuantizeReducesLevels) {
  Raster image(256, 1);
  for (int x = 0; x < 256; ++x) {
    image.Put(x, 0, Pixel{static_cast<std::uint8_t>(x), 0, 0});
  }
  Raster q = image.QuantizeColor(1);
  std::set<std::uint8_t> levels;
  for (int x = 0; x < 256; ++x) {
    levels.insert(q.At(x, 0).r);
  }
  EXPECT_EQ(levels.size(), 2u);  // 1 bit -> two levels
}

TEST(RasterTest, MonochromeEqualizesChannels) {
  Raster image(1, 1);
  image.Put(0, 0, Pixel{200, 50, 10});
  Raster mono = image.ToMonochrome();
  Pixel p = mono.At(0, 0);
  EXPECT_EQ(p.r, p.g);
  EXPECT_EQ(p.g, p.b);
}

TEST(RasterTest, DownscaleAverages) {
  Raster image(2, 2);
  image.Put(0, 0, Pixel{100, 0, 0});
  image.Put(1, 0, Pixel{200, 0, 0});
  image.Put(0, 1, Pixel{100, 0, 0});
  image.Put(1, 1, Pixel{200, 0, 0});
  auto scaled = image.Downscale(1, 1);
  ASSERT_TRUE(scaled.ok());
  EXPECT_EQ(scaled->At(0, 0).r, 150);
}

TEST(RasterTest, DownscaleRejectsUpscale) {
  Raster image(2, 2);
  EXPECT_FALSE(image.Downscale(4, 4).ok());
  EXPECT_FALSE(image.Downscale(0, 1).ok());
}

TEST(PpmCodecTest, RoundTrip) {
  Raster image = MakeTestCard(16, 12, 5);
  auto decoded = DecodePpm(EncodePpm(image));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(*decoded, image);
}

TEST(PpmCodecTest, HandlesComments) {
  std::string data = "P6\n# a comment\n1 1\n255\n";
  data.append(3, '\x42');
  auto decoded = DecodePpm(data);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->At(0, 0), (Pixel{0x42, 0x42, 0x42}));
}

TEST(PpmCodecTest, RejectsBadMagicAndTruncation) {
  EXPECT_EQ(DecodePpm("P5\n1 1\n255\nx").status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(DecodePpm("P6\n2 2\n255\nxy").status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(DecodePpm("P6\n1 1\n128\nabc").status().code(), StatusCode::kDataLoss);
}

TEST(PgmCodecTest, EncodesLuma) {
  Raster image(1, 1, Pixel{255, 255, 255});
  std::string pgm = EncodePgm(image);
  EXPECT_EQ(pgm.substr(0, 2), "P5");
  EXPECT_EQ(static_cast<std::uint8_t>(pgm.back()), 255);
}

TEST(SyntheticTest, TestCardIsDeterministic) {
  EXPECT_EQ(MakeTestCard(32, 24, 7), MakeTestCard(32, 24, 7));
  EXPECT_FALSE(MakeTestCard(32, 24, 7) == MakeTestCard(32, 24, 8));
}

TEST(SyntheticTest, FlyingBirdMoves) {
  Raster early = MakeFlyingBirdFrame(64, 48, 0.1);
  Raster late = MakeFlyingBirdFrame(64, 48, 0.9);
  EXPECT_FALSE(early == late);
  EXPECT_EQ(early.width(), 64);
}

}  // namespace
}  // namespace cmif
