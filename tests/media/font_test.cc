#include "src/media/font.h"

#include <gtest/gtest.h>

namespace cmif {
namespace {

int LitPixels(const Raster& image) {
  int lit = 0;
  for (const Pixel& p : image.pixels()) {
    if (p != Pixel{}) {
      ++lit;
    }
  }
  return lit;
}

TEST(FontTest, MetricsMatchGlyphGrid) {
  EXPECT_EQ(TextWidth(""), 0);
  EXPECT_EQ(TextWidth("A"), kGlyphWidth);                       // no trailing gap
  EXPECT_EQ(TextWidth("AB"), kGlyphAdvance + kGlyphWidth);      // one gap
  EXPECT_EQ(TextWidth("A", 3), kGlyphWidth * 3);
  EXPECT_EQ(TextHeight(), kGlyphHeight);
  EXPECT_EQ(TextHeight(2), kGlyphHeight * 2);
}

TEST(FontTest, DrawLightsPixels) {
  Raster canvas(40, 10);
  DrawText(canvas, 0, 0, "HI", Pixel{255, 255, 255});
  EXPECT_GT(LitPixels(canvas), 10);
}

TEST(FontTest, SpaceDrawsNothing) {
  Raster canvas(20, 10);
  DrawText(canvas, 0, 0, "   ", Pixel{255, 255, 255});
  EXPECT_EQ(LitPixels(canvas), 0);
}

TEST(FontTest, LowercaseFoldsToUppercase) {
  Raster upper(20, 10);
  Raster lower(20, 10);
  DrawText(upper, 0, 0, "ABC", Pixel{255, 0, 0});
  DrawText(lower, 0, 0, "abc", Pixel{255, 0, 0});
  EXPECT_EQ(upper, lower);
}

TEST(FontTest, UnknownCharactersRenderAsBox) {
  Raster canvas(10, 10);
  DrawText(canvas, 0, 0, "~", Pixel{255, 255, 255});
  // The hollow box outline: 2*5 + 2*5 corners shared -> 20 pixels.
  EXPECT_EQ(LitPixels(canvas), 20);
}

TEST(FontTest, ScaleMultipliesCoverage) {
  Raster small(20, 10);
  Raster big(40, 20);
  DrawText(small, 0, 0, "O", Pixel{1, 1, 1}, 1);
  DrawText(big, 0, 0, "O", Pixel{1, 1, 1}, 2);
  EXPECT_EQ(LitPixels(big), LitPixels(small) * 4);
}

TEST(FontTest, ClipsAtCanvasEdges) {
  Raster canvas(8, 4);
  // Drawing partially outside must not crash and must stay in bounds.
  DrawText(canvas, -3, -3, "WW", Pixel{9, 9, 9});
  DrawText(canvas, 6, 2, "WW", Pixel{9, 9, 9});
  SUCCEED();
}

TEST(FontTest, DistinctLettersDiffer) {
  Raster a(10, 10);
  Raster b(10, 10);
  DrawText(a, 0, 0, "A", Pixel{255, 255, 255});
  DrawText(b, 0, 0, "B", Pixel{255, 255, 255});
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace cmif
