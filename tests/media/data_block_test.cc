#include "src/media/data_block.h"

#include <gtest/gtest.h>

namespace cmif {
namespace {

TEST(DataBlockTest, TextBlockProperties) {
  DataBlock block = DataBlock::FromText(TextBlock("caption text here", {}));
  EXPECT_EQ(block.medium(), MediaType::kText);
  EXPECT_FALSE(block.is_generator());
  EXPECT_EQ(block.ByteSize(), 17u);
  // Text's intrinsic duration is its reading time (floor 1s).
  EXPECT_EQ(block.IntrinsicDuration(), MediaTime::Rational(17, 15));
}

TEST(DataBlockTest, AudioBlockProperties) {
  DataBlock block = DataBlock::FromAudio(MakeTone(8000, MediaTime::Seconds(2), 440, 0.5));
  EXPECT_EQ(block.medium(), MediaType::kAudio);
  EXPECT_EQ(block.IntrinsicDuration(), MediaTime::Seconds(2));
  EXPECT_EQ(block.ByteSize(), 32000u);
}

TEST(DataBlockTest, VideoBlockProperties) {
  DataBlock block =
      DataBlock::FromVideo(MakeFlyingBirdSegment(16, 12, 10, MediaTime::Seconds(1)));
  EXPECT_EQ(block.medium(), MediaType::kVideo);
  EXPECT_EQ(block.IntrinsicDuration(), MediaTime::Seconds(1));
}

TEST(DataBlockTest, ImageHasNoIntrinsicDuration) {
  // Stills get their length from the event, not the data (section 5.1).
  DataBlock block = DataBlock::FromImage(MakeTestCard(8, 8, 1));
  EXPECT_EQ(block.medium(), MediaType::kImage);
  EXPECT_EQ(block.IntrinsicDuration(), MediaTime());
}

TEST(DataBlockTest, GraphicMediumIsPreserved) {
  DataBlock block = DataBlock::FromImage(MakeTestCard(8, 8, 1), MediaType::kGraphic);
  EXPECT_EQ(block.medium(), MediaType::kGraphic);
}

TEST(DataBlockTest, TypedAccessorsCheckMedium) {
  DataBlock block = DataBlock::FromText(TextBlock("x", {}));
  EXPECT_TRUE(block.AsText().ok());
  EXPECT_FALSE(block.AsAudio().ok());
  EXPECT_FALSE(block.AsVideo().ok());
  EXPECT_FALSE(block.AsImage().ok());
}

TEST(DataBlockTest, GeneratorCarriesDeclaredMetadata) {
  GeneratorSpec spec;
  spec.generator = "tone";
  spec.params = "rate=8000,hz=440";
  spec.duration = MediaTime::Seconds(3);
  spec.approx_bytes = 48000;
  DataBlock block = DataBlock::FromGenerator(MediaType::kAudio, spec);
  EXPECT_TRUE(block.is_generator());
  EXPECT_EQ(block.IntrinsicDuration(), MediaTime::Seconds(3));
  EXPECT_EQ(block.ByteSize(), 48000u);
}

TEST(GeneratorRegistryTest, BuiltinsMaterialize) {
  GeneratorSpec spec;
  spec.generator = "tone";
  spec.params = "rate=8000,hz=220,amplitude=0.5";
  spec.duration = MediaTime::Seconds(1);
  auto block = GeneratorRegistry::Global().Run(spec);
  ASSERT_TRUE(block.ok()) << block.status();
  EXPECT_EQ(block->medium(), MediaType::kAudio);
  EXPECT_EQ(block->audio().frames(), 8000u);
}

TEST(GeneratorRegistryTest, AllBuiltinsRun) {
  for (const char* name : {"flying_bird", "talking_head", "test_card", "tone", "speech"}) {
    GeneratorSpec spec;
    spec.generator = name;
    spec.params = "width=16,height=12,fps=10,rate=8000,seed=3";
    spec.duration = MediaTime::Millis(500);
    auto block = GeneratorRegistry::Global().Run(spec);
    EXPECT_TRUE(block.ok()) << name << ": " << block.status();
  }
}

TEST(GeneratorRegistryTest, UnknownGeneratorIsNotFound) {
  GeneratorSpec spec;
  spec.generator = "does-not-exist";
  EXPECT_EQ(GeneratorRegistry::Global().Run(spec).status().code(), StatusCode::kNotFound);
}

TEST(GeneratorRegistryTest, CustomRegistration) {
  GeneratorRegistry registry;
  ASSERT_TRUE(registry
                  .Register("fixed-text",
                            [](const GeneratorSpec&) -> StatusOr<DataBlock> {
                              return DataBlock::FromText(TextBlock("fixed", {}));
                            })
                  .ok());
  EXPECT_EQ(registry.Register("fixed-text", nullptr).code(), StatusCode::kAlreadyExists);
  GeneratorSpec spec;
  spec.generator = "fixed-text";
  auto block = registry.Run(spec);
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(block->text().text(), "fixed");
}

TEST(MediaTypeTest, NamesRoundTrip) {
  for (MediaType type : {MediaType::kText, MediaType::kAudio, MediaType::kVideo,
                         MediaType::kImage, MediaType::kGraphic}) {
    auto parsed = ParseMediaType(MediaTypeName(type));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, type);
  }
  EXPECT_FALSE(ParseMediaType("smellovision").ok());
}

TEST(MediaTypeTest, DefaultUnits) {
  EXPECT_EQ(DefaultUnitFor(MediaType::kVideo), MediaUnit::kFrames);
  EXPECT_EQ(DefaultUnitFor(MediaType::kAudio), MediaUnit::kSamples);
  EXPECT_EQ(DefaultUnitFor(MediaType::kText), MediaUnit::kCharacters);
  EXPECT_EQ(DefaultUnitFor(MediaType::kImage), MediaUnit::kSeconds);
}

TEST(MediaUnitTest, NamesRoundTrip) {
  for (MediaUnit unit : {MediaUnit::kSeconds, MediaUnit::kFrames, MediaUnit::kSamples,
                         MediaUnit::kBytes, MediaUnit::kCharacters}) {
    auto parsed = ParseMediaUnit(MediaUnitName(unit));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, unit);
  }
}

}  // namespace
}  // namespace cmif
