#include "src/media/text.h"

#include <gtest/gtest.h>

namespace cmif {
namespace {

TEST(TextBlockTest, BasicAccessors) {
  TextBlock block("hello world", TextFormatting{"serif", 14, 2, 1});
  EXPECT_EQ(block.text(), "hello world");
  EXPECT_EQ(block.formatting().font, "serif");
  EXPECT_EQ(block.byte_size(), 11u);
  EXPECT_FALSE(block.empty());
}

TEST(TextBlockTest, ReadingDurationScalesWithLength) {
  TextBlock small("short", {});
  TextBlock large(std::string(150, 'x'), {});
  EXPECT_EQ(small.ReadingDuration(15), MediaTime::Seconds(1));  // floor of 1s
  EXPECT_EQ(large.ReadingDuration(15), MediaTime::Seconds(10));
}

TEST(TextBlockTest, ReadingDurationGuardsBadRate) {
  TextBlock block(std::string(30, 'x'), {});
  EXPECT_EQ(block.ReadingDuration(0), MediaTime::Seconds(2));  // falls back to 15 cps
}

TEST(TextBlockTest, WrapBreaksAtWords) {
  TextBlock block("the quick brown fox jumps", {});
  auto lines = block.WrapLines(10);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "the quick");
  EXPECT_EQ(lines[1], "brown fox");
  EXPECT_EQ(lines[2], "jumps");
}

TEST(TextBlockTest, WrapHonorsIndent) {
  TextFormatting fmt;
  fmt.indent = 3;
  TextBlock block("a b", fmt);
  auto lines = block.WrapLines(10);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "   a b");
}

TEST(TextBlockTest, WrapSplitsOverlongWords) {
  TextBlock block("abcdefghij", {});
  auto lines = block.WrapLines(4);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "abcd");
  EXPECT_EQ(lines[1], "efgh");
  EXPECT_EQ(lines[2], "ij");
}

TEST(TextBlockTest, WrapEmptyText) {
  TextBlock block("", {});
  EXPECT_TRUE(block.WrapLines(10).empty());
}

TEST(TextBlockTest, WrapCollapsesWhitespace) {
  TextBlock block("a    b\n\nc", {});
  auto lines = block.WrapLines(20);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "a b c");
}

TEST(TextFormattingTest, DefaultsMatchFigure7Shorthand) {
  TextFormatting fmt;
  EXPECT_EQ(fmt.font, "default");
  EXPECT_EQ(fmt.size, 12);
  EXPECT_EQ(fmt.indent, 0);
  EXPECT_EQ(fmt.vspace, 1);
}

}  // namespace
}  // namespace cmif
