#include "src/news/evening_news.h"

#include <gtest/gtest.h>

#include "src/doc/validate.h"
#include "src/sched/conflict.h"

namespace cmif {
namespace {

TEST(EveningNewsTest, StructureMatchesFigure4b) {
  auto workload = BuildEveningNews(NewsOptions{});
  ASSERT_TRUE(workload.ok()) << workload.status();
  const Document& doc = workload->document;
  // Five channels, one per Figure-4a display element.
  for (std::string_view channel : {kNewsVideo, kNewsAudio, kNewsGraphic, kNewsCaption,
                                   kNewsLabel}) {
    EXPECT_TRUE(doc.channels().Has(channel)) << channel;
  }
  // Opening + 3 stories.
  EXPECT_EQ(doc.root().child_count(), 4u);
  const Node* story = doc.root().FindChild("story1");
  ASSERT_NE(story, nullptr);
  EXPECT_EQ(story->kind(), NodeKind::kPar);
  // Video seq has the talking-head / scene / talking-head split.
  const Node* video = story->FindChild("video");
  ASSERT_NE(video, nullptr);
  EXPECT_EQ(video->kind(), NodeKind::kSeq);
  EXPECT_EQ(video->child_count(), 3u);
  // Graphics: two paintings and the insurance graph.
  EXPECT_EQ(story->FindChild("graphics")->child_count(), 3u);
  // Captions and labels.
  EXPECT_EQ(story->FindChild("captions")->child_count(), 4u);
  EXPECT_EQ(story->FindChild("labels")->child_count(), 3u);
}

TEST(EveningNewsTest, ArcsMatchSection534) {
  auto workload = BuildEveningNews(NewsOptions{});
  ASSERT_TRUE(workload.ok());
  const Node* story = workload->document.root().FindChild("story1");
  ASSERT_NE(story, nullptr);
  // Eight arcs per story: five musts + three may-labels.
  ASSERT_EQ(story->arcs().size(), 8u);
  std::size_t musts = 0;
  std::size_t mays = 0;
  for (const SyncArc& arc : story->arcs()) {
    (arc.rigor == ArcRigor::kMust ? musts : mays) += 1;
  }
  EXPECT_EQ(musts, 5u);
  EXPECT_EQ(mays, 3u);
  // The offset arc (caption c2 end -> graphic g2 begin, +1/2s) is present.
  bool found_offset_arc = false;
  for (const SyncArc& arc : story->arcs()) {
    if (arc.offset == MediaTime::Rational(1, 2) && arc.source_edge == ArcEdge::kEnd) {
      found_offset_arc = true;
      EXPECT_EQ(arc.dest.ToString(), "graphics/g2");
    }
  }
  EXPECT_TRUE(found_offset_arc);
}

TEST(EveningNewsTest, ValidatesCleanly) {
  auto workload = BuildEveningNews(NewsOptions{});
  ASSERT_TRUE(workload.ok());
  ValidationReport report = ValidateDocument(workload->document, &workload->store);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.warning_count(), 0u) << report.ToString();
}

TEST(EveningNewsTest, ScheduleMatchesTheWorkedExample) {
  // The timing walk-through of section 5.3.4 at story_length = 12s.
  NewsOptions options;
  options.stories = 1;
  auto workload = BuildEveningNews(options);
  ASSERT_TRUE(workload.ok());
  auto events = CollectEvents(workload->document, &workload->store);
  ASSERT_TRUE(events.ok());
  auto result = ComputeSchedule(workload->document, *events);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->feasible);
  EXPECT_TRUE(result->dropped_arcs.empty());

  const Node& root = workload->document.root();
  auto node = [&root](const char* path) {
    auto resolved = root.Resolve(*NodePath::Parse(path));
    EXPECT_TRUE(resolved.ok()) << path;
    return *resolved;
  };
  const Schedule& schedule = result->schedule;
  MediaTime t0 = *schedule.BeginOf(*node("story1"));  // after the 2s opening
  EXPECT_EQ(t0, MediaTime::Seconds(2));
  // Captions start with the video at the story start.
  EXPECT_EQ(*schedule.BeginOf(*node("story1/captions")), t0);
  EXPECT_EQ(*schedule.BeginOf(*node("story1/video")), t0);
  // c2 ends at t0+6 (two 3s captions); g2 begins exactly 1/2s later.
  EXPECT_EQ(*schedule.EndOf(*node("story1/captions/c2")), t0 + MediaTime::Seconds(6));
  EXPECT_EQ(*schedule.BeginOf(*node("story1/graphics/g2")),
            t0 + MediaTime::Rational(13, 2));
  // v3 waits for c4's end (t0+12) although the video seq frees it at t0+10:
  // the freeze-frame arc in action.
  EXPECT_EQ(*schedule.EndOf(*node("story1/captions/c4")), t0 + MediaTime::Seconds(12));
  EXPECT_EQ(*schedule.BeginOf(*node("story1/video/v3")), t0 + MediaTime::Seconds(12));
  EXPECT_GT(*schedule.BeginOf(*node("story1/video/v3")),
            *schedule.EndOf(*node("story1/video/v2")));
}

TEST(EveningNewsTest, StoriesAreSequential) {
  auto workload = BuildEveningNews(NewsOptions{});
  ASSERT_TRUE(workload.ok());
  auto events = CollectEvents(workload->document, &workload->store);
  ASSERT_TRUE(events.ok());
  auto result = ComputeSchedule(workload->document, *events);
  ASSERT_TRUE(result.ok() && result->feasible);
  const Node& root = workload->document.root();
  MediaTime end1 = *result->schedule.EndOf(*root.FindChild("story1"));
  MediaTime begin2 = *result->schedule.BeginOf(*root.FindChild("story2"));
  EXPECT_GE(begin2, end1);
}

TEST(EveningNewsTest, ParameterValidation) {
  NewsOptions options;
  options.stories = 0;
  EXPECT_EQ(BuildEveningNews(options).status().code(), StatusCode::kInvalidArgument);
}

TEST(EveningNewsTest, ScalesToManyStories) {
  NewsOptions options;
  options.stories = 10;
  auto workload = BuildEveningNews(options);
  ASSERT_TRUE(workload.ok());
  auto events = CollectEvents(workload->document, &workload->store);
  ASSERT_TRUE(events.ok());
  EXPECT_EQ(events->size(), 2u + 10u * 14u);  // opening(2) + 14 events/story
  auto result = ComputeSchedule(workload->document, *events);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->feasible);
}

TEST(EveningNewsTest, MaterializedMediaMatchesDeclaredAttributes) {
  NewsOptions options;
  options.stories = 1;
  options.materialize_media = true;
  auto workload = BuildEveningNews(options);
  ASSERT_TRUE(workload.ok());
  EXPECT_GT(workload->blocks.size(), 0u);
  for (const DataDescriptor& descriptor : workload->store.descriptors()) {
    auto block = ResolveContent(descriptor, workload->blocks);
    ASSERT_TRUE(block.ok()) << descriptor.id();
    EXPECT_EQ(block->medium(), descriptor.Medium()) << descriptor.id();
    EXPECT_EQ(static_cast<std::int64_t>(block->ByteSize()), descriptor.DeclaredBytes())
        << descriptor.id();
  }
}

TEST(EveningNewsTest, DeterministicForSeed) {
  NewsOptions options;
  options.stories = 1;
  auto a = BuildEveningNews(options);
  auto b = BuildEveningNews(options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->store.size(), b->store.size());
  for (std::size_t i = 0; i < a->store.descriptors().size(); ++i) {
    EXPECT_EQ(a->store.descriptors()[i].attrs(), b->store.descriptors()[i].attrs());
  }
}

}  // namespace
}  // namespace cmif
