#!/usr/bin/env bash
# End-to-end tracing smoke (CI: tracing-smoke). Starts serve --listen with
# sampling and the flight recorder on, issues one traced request plus a
# live stats fetch, and asserts the exported Chrome trace holds BOTH the
# client's and the server's spans under one shared trace id — the
# cross-process stitching contract of DESIGN.md §11.
set -u

TOOL="${1:?usage: trace_smoke.sh /path/to/cmif_tool}"
case "$TOOL" in /*) ;; *) TOOL="$PWD/$TOOL" ;; esac
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
cd "$TMP"

failures=0
check() { # check <description> <expected-exit> <actual-exit>
  if [ "$2" -ne "$3" ]; then
    echo "FAIL: $1 (expected exit $2, got $3)" >&2
    failures=$((failures + 1))
  else
    echo "ok: $1"
  fi
}

mkfifo ctl
"$TOOL" serve --listen 0 --docs 2 --sample 1.0 --flight <ctl >serve.out 2>serve.err &
server_pid=$!
exec 9>ctl  # hold the control stream open
port=""
for _ in $(seq 100); do
  port="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' serve.out)"
  [ -n "$port" ] && break
  sleep 0.1
done
if [ -z "$port" ]; then
  echo "FAIL: server never reported its port" >&2
  cat serve.err >&2
  exec 9>&-
  wait "$server_pid"
  exit 1
fi

"$TOOL" request --port "$port" --doc news-0-s1 --trace trace.json >request.out 2>&1
check "traced request exits 0" 0 $?
grep -q "trace:" request.out || {
  echo "FAIL: request did not print its trace id" >&2
  failures=$((failures + 1))
}
[ -s trace.json ] || { echo "FAIL: trace.json not written" >&2; failures=$((failures + 1)); }

"$TOOL" stats "127.0.0.1:$port" >stats.json 2>stats.err
check "stats fetch exits 0" 0 $?

python3 - <<'EOF'
import json, sys

# One merged timeline: client spans under pid 1, server spans under pid 4,
# every non-metadata event tagged with the same 16-hex-digit trace id.
trace = json.load(open("trace.json"))
events = trace["traceEvents"] if isinstance(trace, dict) else trace
spans = [e for e in events if e.get("ph") == "X"]
client = [e for e in spans if e.get("pid") == 1]
server = [e for e in spans if e.get("pid") == 4]
assert client, "no client spans (pid 1) in the exported trace"
assert server, "no server spans (pid 4) in the exported trace"
ids = {e.get("args", {}).get("trace_id") for e in spans}
ids.discard(None)
assert len(ids) == 1, f"expected one shared trace id, saw {ids}"
names = {e.get("name") for e in spans}
assert "net-client-request" in names, f"client envelope span missing: {names}"
assert "net-request" in names, f"server envelope span missing: {names}"

stats = json.load(open("stats.json"))
assert stats["requests"] >= 1, stats
assert stats["traces_sampled"] >= 1, stats
assert stats["trace_sample_rate"] == 1.0, stats
assert stats["request_ms"]["count"] >= 1, stats
assert stats["exemplar_trace_ids"], stats
print("ok: merged trace has client+server spans under one trace id "
      f"({ids.pop()}), stats report {stats['requests']} request(s)")
EOF
check "merged trace and stats pass the python assertions" 0 $?

exec 9>&-  # EOF on stdin stops the server
wait "$server_pid"
check "server exits 0 after stdin closes" 0 $?

if [ "$failures" -ne 0 ]; then
  echo "$failures check(s) failed" >&2
  exit 1
fi
echo "tracing smoke passed"
