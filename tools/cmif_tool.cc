// cmif_tool — command-line front end for the CMIF pipeline. Compiles against
// the public facade (src/api/cmif.h) only; pipeline/serve/net internals stay
// behind it.
//
//   cmif_tool sample-news [stories]          write news.cmif + news.catalog
//   cmif_tool check <doc> [catalog]          validate + statistics
//   cmif_tool check [--count N] [--seed S] [--seeds a,b,c] [--leaves L]
//                   [--edits N] [--no-shrink] [--shrink-dir D]
//                   [--replay <file|dir>]    differential conformance run
//                                            (--edits replays seeded edit
//                                            traces through EditSession)
//   cmif_tool check --stream [--bandwidth B] [--chunk C] [--count N] [...]
//                                            streamed-vs-blob delivery
//                                            differential on a simulated
//                                            B-bytes/sec link
//   cmif_tool tree <doc>                     Figure-5 views
//   cmif_tool arcs <doc>                     Figure-9 arc table
//   cmif_tool schedule <doc> [catalog]       timeline (Figure 3/10 view)
//   cmif_tool edit <doc> [catalog] --ops <file> [--out FILE] [--timeline]
//                                            apply an edit script with
//                                            incremental recompiles
//   cmif_tool play <doc> <catalog> [profile] simulate playback, print trace
//   cmif_tool render <doc> <catalog> <sec> <out.ppm>   compose one frame
//   cmif_tool profile <doc> <catalog> [profile] [--trace out.json] [--metrics out.jsonl]
//                                            run instrumented, export trace + metrics
//   cmif_tool serve [--docs K] [--requests N] [--threads T] [--zipf S]
//                   [--seed X] [--cache C | --no-cache] [--cache-dir D]
//                   [--faults <plan | level:N>]
//                                            serve a synthetic Zipf trace concurrently
//   cmif_tool serve --listen <port> [--host A] [--workers W] [--docs K]
//                   [--sched fifo|edf] [--max-queue N] [--deadline-ms D]
//                   [--sample RATE] [--flight] [...]
//                                            serve over TCP until stdin closes
//   cmif_tool request --port <port> --doc <name> [--host A] [--profile <name>]
//                     [--channels a,b] [--no-body] [--retries N] [--deadline-ms D]
//                     [--trace out.json] [--stream [--chunk C]] [--wire-version V]
//                                            fetch one compiled presentation
//                                            (--stream = chunked delivery
//                                            with silent blob fallback)
//   cmif_tool stats <host:port>              live server telemetry as JSON
//   cmif_tool cache <ls|verify|purge> <dir>  inspect / check / wipe a
//                                            persistent cache directory
//
// Profiles: workstation (default), personal, portable.
//
// Exit codes: 0 success, 1 runtime/validation failure, 2 usage or bad flags.
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <optional>
#include <sstream>
#include <vector>

#include "src/api/cmif.h"
#include "src/base/string_util.h"
#include "src/check/differential.h"
#include "src/check/stream.h"
#include "src/ddbms/persist.h"
#include "src/doc/stats.h"
#include "src/doc/validate.h"
#include "src/fault/fault.h"
#include "src/fmt/tree_view.h"
#include "src/fmt/writer.h"
#include "src/news/evening_news.h"
#include "src/obs/export.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/obs.h"
#include "src/obs/trace.h"
#include "src/player/engine.h"
#include "src/present/compositor.h"
#include "src/sched/conflict.h"

namespace cmif {
namespace {

constexpr int kExitOk = 0;
constexpr int kExitFailure = 1;  // runtime error or failed validation
constexpr int kExitUsage = 2;    // bad command line

int Fail(const Status& status) {
  std::cerr << "error: " << status << "\n";
  return kExitFailure;
}

// Bad flags always exit kExitUsage with a message on stderr.
int BadFlag(const std::string& message) {
  std::cerr << "cmif_tool: " << message << "\n";
  return kExitUsage;
}

StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return NotFoundError("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Status WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return FailedPreconditionError("cannot write '" + path + "'");
  }
  out << contents;
  return Status::Ok();
}

StatusOr<Document> LoadDocumentFile(const std::string& path) {
  CMIF_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  return api::LoadDocument(text);
}

StatusOr<DescriptorStore> LoadCatalogFile(const std::string& path) {
  if (path.empty()) {
    return DescriptorStore();
  }
  CMIF_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  return api::LoadCatalog(text);
}

SystemProfile ProfileByName(const std::string& name) {
  if (name == "personal") {
    return PersonalSystemProfile();
  }
  if (name == "portable") {
    return PortableMonoProfile();
  }
  return WorkstationProfile();
}

// Strict numeric flag parsing: "--docs banana" is a usage error, not zero.
std::optional<long> ParseLong(const std::string& text) {
  if (text.empty()) {
    return std::nullopt;
  }
  char* end = nullptr;
  long value = std::strtol(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    return std::nullopt;
  }
  return value;
}

std::optional<double> ParseDouble(const std::string& text) {
  if (text.empty()) {
    return std::nullopt;
  }
  char* end = nullptr;
  double value = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    return std::nullopt;
  }
  return value;
}

int CmdSampleNews(const std::string& stories_arg) {
  NewsOptions options;
  if (!stories_arg.empty()) {
    std::optional<long> stories = ParseLong(stories_arg);
    if (!stories || *stories < 1) {
      return BadFlag("sample-news: story count must be a positive integer, got '" + stories_arg +
                     "'");
    }
    options.stories = static_cast<int>(*stories);
  }
  auto workload = BuildEveningNews(options);
  if (!workload.ok()) {
    return Fail(workload.status());
  }
  auto doc_text = WriteDocument(workload->document);
  if (!doc_text.ok()) {
    return Fail(doc_text.status());
  }
  auto catalog_text = WriteCatalog(workload->store);
  if (!catalog_text.ok()) {
    return Fail(catalog_text.status());
  }
  if (Status s = WriteFile("news.cmif", *doc_text); !s.ok()) {
    return Fail(s);
  }
  if (Status s = WriteFile("news.catalog", *catalog_text); !s.ok()) {
    return Fail(s);
  }
  std::cout << "wrote news.cmif (" << doc_text->size() << " bytes) and news.catalog ("
            << catalog_text->size() << " bytes)\n";
  return kExitOk;
}

int CmdCheck(const std::string& doc_path, const std::string& catalog_path) {
  auto doc = LoadDocumentFile(doc_path);
  if (!doc.ok()) {
    return Fail(doc.status());
  }
  auto store = LoadCatalogFile(catalog_path);
  if (!store.ok()) {
    return Fail(store.status());
  }
  ValidationReport report =
      ValidateDocument(*doc, catalog_path.empty() ? nullptr : &*store);
  std::cout << report.ToString();
  std::cout << StatsToString(
      ComputeStats(*doc, catalog_path.empty() ? nullptr : &*store));
  std::cout << (report.ok() ? "OK" : "INVALID") << " (" << report.error_count() << " errors, "
            << report.warning_count() << " warnings)\n";
  return report.ok() ? kExitOk : kExitFailure;
}

// Seeds may be decimal or 0x-hex (reports print them as hex).
std::optional<std::uint64_t> ParseSeed(const std::string& text) {
  if (text.empty()) {
    return std::nullopt;
  }
  char* end = nullptr;
  unsigned long long value = std::strtoull(text.c_str(), &end, 0);
  if (end == nullptr || *end != '\0') {
    return std::nullopt;
  }
  return static_cast<std::uint64_t>(value);
}

// check --count N --seed S ... : the differential conformance driver.
// With --stream the run is the streamed-vs-blob delivery differential
// (src/check/stream.h) instead: --bandwidth sets the simulated link in
// bytes/second (0 = infinite) and --chunk the stream chunk size.
int CmdConformance(const std::vector<std::string>& args) {
  check::CheckOptions options;
  check::StreamCheckOptions stream_options;
  bool stream = false;
  std::string replay;
  for (std::size_t i = 0; i < args.size(); ++i) {
    std::optional<long> value;
    auto long_after = [&](std::size_t& j) -> std::optional<long> {
      if (j + 1 >= args.size()) {
        return std::nullopt;
      }
      return ParseLong(args[++j]);
    };
    if (args[i] == "--count" && (value = long_after(i))) {
      options.count = static_cast<int>(*value);
    } else if (args[i] == "--leaves" && (value = long_after(i))) {
      options.target_leaves = static_cast<int>(*value);
    } else if (args[i] == "--edits" && (value = long_after(i))) {
      options.edits = static_cast<int>(*value);
    } else if (args[i] == "--seed" && i + 1 < args.size()) {
      std::optional<std::uint64_t> seed = ParseSeed(args[++i]);
      if (!seed) {
        return BadFlag("check: --seed needs an integer, got '" + args[i] + "'");
      }
      options.base_seed = *seed;
    } else if (args[i] == "--seeds" && i + 1 < args.size()) {
      for (const std::string& part : SplitString(args[++i], ',')) {
        std::optional<std::uint64_t> seed = ParseSeed(part);
        if (!seed) {
          return BadFlag("check: bad seed '" + part + "' in --seeds");
        }
        options.seeds.push_back(*seed);
      }
    } else if (args[i] == "--no-shrink") {
      options.shrink = false;
    } else if (args[i] == "--shrink-dir" && i + 1 < args.size()) {
      options.reproducer_dir = args[++i];
    } else if (args[i] == "--replay" && i + 1 < args.size()) {
      replay = args[++i];
    } else if (args[i] == "--stream") {
      stream = true;
    } else if (args[i] == "--bandwidth" && (value = long_after(i))) {
      stream_options.bandwidth_bytes_per_s = static_cast<std::int64_t>(*value);
    } else if (args[i] == "--chunk" && (value = long_after(i))) {
      stream_options.chunk_bytes = static_cast<std::uint64_t>(std::max(*value, 1L));
    } else {
      return BadFlag("check: unknown or malformed argument '" + args[i] + "'");
    }
  }
  if (!replay.empty()) {
    if (std::filesystem::is_directory(replay)) {
      auto count = check::ReplayCorpusDir(replay);
      if (!count.ok()) {
        return Fail(count.status());
      }
      std::cout << "replayed " << *count << " corpus files from " << replay << ": OK\n";
      return kExitOk;
    }
    auto text = ReadFile(replay);
    if (!text.ok()) {
      return Fail(text.status());
    }
    if (Status s = check::ReplayCorpusText(*text, replay); !s.ok()) {
      return Fail(s);
    }
    std::cout << "replayed " << replay << ": OK\n";
    return kExitOk;
  }
  if (stream) {
    stream_options.base_seed = options.base_seed;
    stream_options.count = options.count;
    stream_options.seeds = options.seeds;
    stream_options.target_leaves = options.target_leaves;
    stream_options.shrink = options.shrink;
    stream_options.reproducer_dir = options.reproducer_dir;
    stream_options.profile = options.profile;
    auto report = check::RunStreamCheck(stream_options);
    if (!report.ok()) {
      return Fail(report.status());
    }
    std::cout << report->Summary();
    return report->ok() ? kExitOk : kExitFailure;
  }
  auto report = check::RunDifferentialCheck(options);
  if (!report.ok()) {
    return Fail(report.status());
  }
  std::cout << report->Summary();
  return report->ok() ? kExitOk : kExitFailure;
}

int CmdTree(const std::string& doc_path) {
  auto doc = LoadDocumentFile(doc_path);
  if (!doc.ok()) {
    return Fail(doc.status());
  }
  std::cout << "---- conventional ----\n"
            << ConventionalTreeView(doc->root()) << "---- embedded ----\n"
            << EmbeddedTreeView(doc->root());
  return kExitOk;
}

int CmdArcs(const std::string& doc_path) {
  auto doc = LoadDocumentFile(doc_path);
  if (!doc.ok()) {
    return Fail(doc.status());
  }
  std::cout << ArcTableView(doc->root());
  return kExitOk;
}

StatusOr<ScheduleResult> ScheduleOf(const Document& doc, const DescriptorStore* store) {
  CMIF_ASSIGN_OR_RETURN(std::vector<EventDescriptor> events, CollectEvents(doc, store));
  return ComputeSchedule(doc, events);
}

int CmdSchedule(const std::string& doc_path, const std::string& catalog_path) {
  auto doc = LoadDocumentFile(doc_path);
  if (!doc.ok()) {
    return Fail(doc.status());
  }
  auto store = LoadCatalogFile(catalog_path);
  if (!store.ok()) {
    return Fail(store.status());
  }
  auto result = ScheduleOf(*doc, catalog_path.empty() ? nullptr : &*store);
  if (!result.ok()) {
    return Fail(result.status());
  }
  if (!result->feasible) {
    std::cout << "INFEASIBLE\n";
    for (const Conflict& conflict : result->conflicts) {
      std::cout << "[" << ConflictClassName(conflict.cls) << "] " << conflict.description
                << "\n";
      for (const std::string& label : conflict.cycle) {
        std::cout << "  " << label << "\n";
      }
    }
    return kExitFailure;
  }
  for (const std::string& dropped : result->dropped_arcs) {
    std::cout << "dropped may-arc: " << dropped << "\n";
  }
  std::cout << TimelineView(result->schedule.ToTimelineRows(*doc));
  std::cout << TimelineTable(result->schedule.ToTimelineRows(*doc));
  return kExitOk;
}

// edit <doc> [catalog] --ops <file> : drive an api::EditSession over an op
// script (one op per line, '#' comments) and recompile incrementally after
// every op. Conflicts are reported with their blame class and constraint
// cycle; the session keeps its last-good schedule and later ops may fix it.
int CmdEdit(const std::vector<std::string>& args) {
  std::string ops_path, out_path;
  bool timeline = false;
  std::vector<std::string> positional;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--ops" && i + 1 < args.size()) {
      ops_path = args[++i];
    } else if (args[i] == "--out" && i + 1 < args.size()) {
      out_path = args[++i];
    } else if (args[i] == "--timeline") {
      timeline = true;
    } else if (args[i].rfind("--", 0) == 0) {
      return BadFlag("edit: unknown flag '" + args[i] + "'");
    } else {
      positional.push_back(args[i]);
    }
  }
  if (positional.empty() || positional.size() > 2 || ops_path.empty()) {
    return BadFlag("edit: usage is edit <doc> [catalog] --ops <file> [--out FILE] [--timeline]");
  }
  auto doc = LoadDocumentFile(positional[0]);
  if (!doc.ok()) {
    return Fail(doc.status());
  }
  auto store = LoadCatalogFile(positional.size() > 1 ? positional[1] : "");
  if (!store.ok()) {
    return Fail(store.status());
  }
  auto ops_text = ReadFile(ops_path);
  if (!ops_text.ok()) {
    return Fail(ops_text.status());
  }
  auto session = api::EditSession::Open(*doc, *store);
  if (!session.ok()) {
    return Fail(session.status());
  }
  std::size_t applied = 0;
  std::size_t conflicts = 0;
  for (const std::string& raw : SplitString(*ops_text, '\n')) {
    std::string line(TrimString(raw));
    if (line.empty() || line[0] == '#') {
      continue;
    }
    auto report = (*session)->Apply(line);
    if (!report.ok()) {
      return Fail(report.status());
    }
    ++applied;
    for (const DroppedArc& dropped : report->dropped_arcs) {
      std::cout << "dropped arc on " << dropped.owner_path << ": " << dropped.reason << "\n";
    }
    auto delta = (*session)->Recompile();
    if (!delta.ok()) {
      auto conflict = api::ConflictFromStatus(delta.status());
      if (!conflict.ok()) {
        return Fail(delta.status());
      }
      ++conflicts;
      std::cout << "CONFLICT [" << ConflictClassName(conflict->cls) << "] "
                << conflict->description << "\n";
      for (const std::string& label : conflict->cycle) {
        std::cout << "  " << label << "\n";
      }
      continue;
    }
    std::cout << StrFormat("rev %llu %s: %zu point(s) relabelled, %zu propagation(s)  # %s\n",
                           static_cast<unsigned long long>(delta->generation),
                           delta->incremental ? "incremental" : "full", delta->changed_points,
                           delta->stats.propagations, line.c_str());
    for (const std::string& label : delta->dropped_arcs) {
      std::cout << "dropped may-arc: " << label << "\n";
    }
  }
  std::cout << "applied " << applied << " op(s), " << conflicts << " conflict(s); generation "
            << (*session)->generation() << "\n";
  if (timeline) {
    std::cout << TimelineView((*session)->schedule().ToTimelineRows((*session)->document()));
  }
  if (!out_path.empty()) {
    auto text = WriteDocument((*session)->document());
    if (!text.ok()) {
      return Fail(text.status());
    }
    if (Status s = WriteFile(out_path, *text); !s.ok()) {
      return Fail(s);
    }
    std::cout << "wrote " << out_path << "\n";
  }
  return conflicts == 0 ? kExitOk : kExitFailure;
}

int CmdPlay(const std::string& doc_path, const std::string& catalog_path,
            const std::string& profile_name) {
  auto doc = LoadDocumentFile(doc_path);
  if (!doc.ok()) {
    return Fail(doc.status());
  }
  auto store = LoadCatalogFile(catalog_path);
  if (!store.ok()) {
    return Fail(store.status());
  }
  auto result = ScheduleOf(*doc, &*store);
  if (!result.ok()) {
    return Fail(result.status());
  }
  if (!result->feasible) {
    std::cerr << "document does not schedule; run 'schedule' for the conflicts\n";
    return kExitFailure;
  }
  PlayerOptions options;
  options.profile = ProfileByName(profile_name);
  auto run = Play(*doc, result->schedule, &*store, options);
  if (!run.ok()) {
    return Fail(run.status());
  }
  std::cout << "profile: " << options.profile.name << "\n" << run->trace.Summary();
  std::cout << "presentation time: " << run->clock.presentation_time().ToSecondsF() << "s ("
            << run->clock.frozen_total().ToSecondsF() << "s frozen)\n";
  return kExitOk;
}

int CmdRender(const std::string& doc_path, const std::string& catalog_path,
              const std::string& seconds, const std::string& out_path) {
  auto doc = LoadDocumentFile(doc_path);
  if (!doc.ok()) {
    return Fail(doc.status());
  }
  auto store = LoadCatalogFile(catalog_path);
  if (!store.ok()) {
    return Fail(store.status());
  }
  auto t = ParseMediaTime(seconds);
  if (!t.ok()) {
    return Fail(t.status());
  }
  auto result = ScheduleOf(*doc, &*store);
  if (!result.ok() || !result->feasible) {
    std::cerr << "document does not schedule\n";
    return kExitFailure;
  }
  VirtualEnvironment env = VirtualEnvironment::NewsLayout(640, 480);
  auto map = PresentationMap::AutoMap(doc->channels(), env);
  if (!map.ok()) {
    return Fail(map.status());
  }
  BlockStore blocks;
  CompositorOptions options;
  options.text_scale = 2;
  auto frame =
      ComposeFrame(*doc, result->schedule, *map, env, *store, blocks, *t, options);
  if (!frame.ok()) {
    return Fail(frame.status());
  }
  if (Status s = WriteFile(out_path, EncodePpm(*frame)); !s.ok()) {
    return Fail(s);
  }
  std::cout << "wrote " << out_path << " (" << frame->width() << "x" << frame->height()
            << " at t=" << t->ToSecondsF() << "s)\n";
  return kExitOk;
}

// profile <doc> <catalog> [profile] [--trace out.json] [--metrics out.jsonl]
// Runs the full pipeline with instrumentation on and exports the run:
// Chrome trace JSON (open in ui.perfetto.dev), metrics JSONL, and a text
// report on stdout.
int CmdProfile(const std::vector<std::string>& args) {
  std::vector<std::string> positional;
  std::string trace_path;
  std::string metrics_path;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--trace" && i + 1 < args.size()) {
      trace_path = args[++i];
    } else if (args[i] == "--metrics" && i + 1 < args.size()) {
      metrics_path = args[++i];
    } else if (args[i].rfind("--", 0) == 0) {
      return BadFlag("profile: unknown flag '" + args[i] + "'");
    } else {
      positional.push_back(args[i]);
    }
  }
  if (positional.size() < 2 || positional.size() > 3) {
    std::cerr << "usage: cmif_tool profile <doc> <catalog> [profile]"
                 " [--trace out.json] [--metrics out.jsonl]\n";
    return kExitUsage;
  }
  const std::string& doc_path = positional[0];
  const std::string& catalog_path = positional[1];
  std::string profile_name = positional.size() > 2 ? positional[2] : "";

  obs::ScopedEnable enable;
  obs::ResetAll();

  // Capture: pull the raw bytes off storage.
  std::string doc_text;
  std::string catalog_text;
  {
    obs::Span span("capture");
    span.Annotate("document", doc_path);
    auto text = ReadFile(doc_path);
    if (!text.ok()) {
      return Fail(text.status());
    }
    doc_text = std::move(text).value();
    std::size_t bytes = doc_text.size();
    if (!catalog_path.empty()) {
      auto catalog = ReadFile(catalog_path);
      if (!catalog.ok()) {
        return Fail(catalog.status());
      }
      catalog_text = std::move(catalog).value();
      bytes += catalog_text.size();
    }
    span.Annotate("bytes", bytes);
  }

  // Structure: parse the document and catalog into the in-memory forms.
  std::optional<Document> document;
  DescriptorStore store;
  {
    obs::Span span("structure");
    auto parsed = api::LoadDocument(doc_text);
    if (!parsed.ok()) {
      return Fail(parsed.status());
    }
    document.emplace(std::move(parsed).value());
    if (!catalog_text.empty()) {
      auto catalog = api::LoadCatalog(catalog_text);
      if (!catalog.ok()) {
        return Fail(catalog.status());
      }
      store = std::move(catalog).value();
    }
    span.Annotate("nodes", document->root().SubtreeSize());
    span.Annotate("descriptors", store.size());
  }

  // Map → filter → schedule → play, with per-stage spans from the pipeline.
  BlockStore blocks;
  api::PipelineOptions options;
  options.profile = ProfileByName(profile_name);
  auto report = api::Play(*document, store, blocks, options);
  if (!report.ok()) {
    return Fail(report.status());
  }

  if (!trace_path.empty()) {
    if (Status s = obs::WriteChromeTrace(trace_path); !s.ok()) {
      return Fail(s);
    }
    std::cout << "wrote trace " << trace_path << " (load in ui.perfetto.dev)\n";
  }
  if (!metrics_path.empty()) {
    if (Status s = obs::WriteMetricsJsonl(metrics_path); !s.ok()) {
      return Fail(s);
    }
    std::cout << "wrote metrics " << metrics_path << "\n";
  }
  std::cout << "profile: " << options.profile.name << "\n" << report->Summary() << "\n";
  std::cout << obs::TextReport();
  return kExitOk;
}

// serve [--docs K] [--requests N] [--threads T] [--zipf S] [--seed X]
//       [--cache C | --no-cache] [--faults <plan | level:N>]
//       [--listen PORT [--host A] [--workers W] [--sched fifo|edf]
//        [--max-queue N] [--deadline-ms D]]
// Without --listen: builds a news corpus over one shared descriptor
// database, replays a deterministic Zipf request trace on a worker pool, and
// reports throughput, latency percentiles, cache effectiveness and the
// per-stage histograms. With --listen: exposes the same ServeLoop over the
// CMIF wire protocol on a TCP port until stdin reaches EOF. --sched picks
// the request scheduler between the reactor and the workers (default fifo);
// --max-queue caps the scheduler queue (admission beyond it is shed with a
// structured response); --deadline-ms assigns a default deadline to requests
// that carry none, so EDF shedding also protects legacy v2 clients.
int CmdServe(const std::vector<std::string>& args) {
  int docs = 8;
  std::size_t requests = 256;
  api::ServeOptions options;
  api::NetServerOptions net_options;
  bool listen = false;
  std::optional<fault::FaultPlan> fault_plan;
  auto long_after = [&](std::size_t& i) -> std::optional<long> {
    if (i + 1 >= args.size()) {
      return std::nullopt;
    }
    return ParseLong(args[++i]);
  };
  auto parse_faults = [&](const std::string& spec) -> bool {
    // `level:N` is shorthand for the escalating chaos plan the Figure-12
    // bench uses; anything else is a full plan spec.
    if (spec.rfind("level:", 0) == 0) {
      std::optional<long> level = ParseLong(spec.substr(6));
      if (!level) {
        std::cerr << "serve: bad --faults level '" << spec << "'\n";
        return false;
      }
      fault_plan = fault::StandardChaosPlan(static_cast<int>(*level));
      return true;
    }
    auto parsed = fault::FaultPlan::Parse(spec);
    if (!parsed.ok()) {
      std::cerr << "serve: bad --faults plan: " << parsed.status().message() << "\n";
      return false;
    }
    fault_plan = std::move(parsed).value();
    return true;
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    std::optional<long> value;
    if (args[i] == "--docs" && (value = long_after(i))) {
      docs = static_cast<int>(*value);
    } else if (args[i] == "--requests" && (value = long_after(i))) {
      requests = static_cast<std::size_t>(*value);
    } else if (args[i] == "--threads" && (value = long_after(i))) {
      options.threads = static_cast<int>(*value);
    } else if (args[i] == "--seed" && (value = long_after(i))) {
      options.seed = static_cast<std::uint64_t>(*value);
    } else if (args[i] == "--cache" && (value = long_after(i))) {
      options.cache_capacity = static_cast<std::size_t>(*value);
    } else if (args[i] == "--cache-dir" && i + 1 < args.size()) {
      options.cache_dir = args[++i];
    } else if (args[i] == "--listen" && (value = long_after(i))) {
      listen = true;
      net_options.port = static_cast<int>(*value);
    } else if (args[i] == "--workers" && (value = long_after(i))) {
      net_options.workers = static_cast<int>(*value);
    } else if ((args[i] == "--sched" && i + 1 < args.size()) ||
               args[i].rfind("--sched=", 0) == 0) {
      std::string name = args[i][7] == '=' ? args[i].substr(8) : args[++i];
      auto policy = api::ParseSchedPolicy(name);
      if (!policy.ok()) {
        return BadFlag("serve: " + std::string(policy.status().message()));
      }
      net_options.sched_policy = *policy;
    } else if (args[i] == "--max-queue" && (value = long_after(i))) {
      net_options.max_queue_depth = static_cast<std::size_t>(*value);
    } else if (args[i] == "--deadline-ms" && (value = long_after(i))) {
      net_options.default_deadline_ms = *value;
    } else if (args[i] == "--sample" && i + 1 < args.size()) {
      std::optional<double> rate = ParseDouble(args[++i]);
      if (!rate || *rate < 0 || *rate > 1) {
        return BadFlag("serve: --sample needs a rate in [0, 1], got '" + args[i] + "'");
      }
      net_options.trace_sample_rate = *rate;
    } else if (args[i] == "--flight") {
      obs::FlightRecorder::SetEnabled(true);
    } else if (args[i] == "--host" && i + 1 < args.size()) {
      net_options.host = args[++i];
    } else if (args[i] == "--zipf" && i + 1 < args.size()) {
      std::optional<double> skew = ParseDouble(args[++i]);
      if (!skew) {
        return BadFlag("serve: --zipf needs a number, got '" + args[i] + "'");
      }
      options.zipf_skew = *skew;
    } else if (args[i] == "--no-cache") {
      options.use_cache = false;
    } else if (args[i] == "--faults" && i + 1 < args.size()) {
      if (!parse_faults(args[++i])) {
        return kExitUsage;
      }
    } else if (args[i].rfind("--faults=", 0) == 0) {
      if (!parse_faults(args[i].substr(9))) {
        return kExitUsage;
      }
    } else {
      return BadFlag("serve: unknown or malformed argument '" + args[i] + "'");
    }
  }
  if (fault_plan.has_value()) {
    // Faulted serving implies the recovery ladder: retries stay at their
    // defaults and degraded (stale-cache) responses are allowed.
    options.enable_degraded = true;
  }

  auto corpus = api::BuildNewsCorpus(docs);
  if (!corpus.ok()) {
    return Fail(corpus.status());
  }
  obs::ScopedEnable enable;
  obs::ResetAll();
  std::optional<fault::ScopedPlan> chaos;
  if (fault_plan.has_value()) {
    fault::ResetCounts();
    chaos.emplace(*fault_plan);
    std::cout << "fault plan: " << fault_plan->ToString() << "\n";
  }
  api::ServeLoop loop(**corpus, options);
  // An operator who asked for a disk tier deserves a hard failure, not the
  // silent memory-only fallback embedded servers get.
  if (!options.cache_dir.empty() && loop.pcache() == nullptr) {
    return Fail(loop.pcache_status());
  }
  if (loop.pcache() != nullptr) {
    const api::PersistentCache::Stats disk = loop.pcache()->stats();
    std::cout << "disk cache at " << loop.pcache()->dir() << ": " << disk.entries
              << " entries, " << disk.disk_bytes << " bytes"
              << (disk.quarantined > 0
                      ? ", " + std::to_string(disk.quarantined) + " quarantined at open"
                      : "")
              << "\n";
  }

  if (listen) {
    api::NetServer server(loop, net_options);
    if (Status s = server.Start(); !s.ok()) {
      return Fail(s);
    }
    std::cout << "listening on " << net_options.host << ":" << server.port() << " ("
              << docs << " documents, " << net_options.workers << " workers, "
              << api::SchedPolicyName(net_options.sched_policy) << " scheduling, queue "
              << net_options.max_queue_depth << ", sample rate "
              << net_options.trace_sample_rate
              << (obs::FlightRecorder::Enabled() ? ", flight recorder on" : "") << ")\n"
              << "close stdin (Ctrl-D) to stop\n"
              << std::flush;
    // Serve until the controlling stream closes — scriptable and signal-free.
    std::cin.ignore(std::numeric_limits<std::streamsize>::max());
    server.Stop();
    api::NetServer::Stats stats = server.stats();
    std::cout << "served " << stats.requests << " requests over " << stats.connections
              << " connections (" << stats.protocol_errors << " protocol errors, "
              << stats.rejected << " rejected)\n";
    return kExitOk;
  }

  std::vector<api::ServeRequest> trace = api::GenerateTrace((*corpus)->size(), requests, options);
  std::cout << "serving " << requests << " requests over " << docs << " documents ("
            << (*corpus)->store().size() << " shared descriptors), " << options.threads
            << " threads, Zipf(" << options.zipf_skew << ")"
            << (options.use_cache ? "" : ", cache off") << "\n";
  auto stats = loop.Run(trace);
  if (!stats.ok()) {
    return Fail(stats.status());
  }
  if (fault_plan.has_value()) {
    fault::InjectionCounts counts = fault::Counts();
    std::cout << "  injected: " << counts.transient << " transient, " << counts.latency
              << " latency, " << counts.stall << " stalls, " << counts.corrupt << " corrupt ("
              << counts.probes << " probes)\n";
  }
  std::cout << stats->Summary() << "\n" << obs::TextReport();
  return kExitOk;
}

// The cross-process merge behind `request --trace`: the client's own spans
// for this trace plus the server's harvested spans (re-tagged kRemotePid and
// re-based onto the client clock, nesting inside the client's round-trip
// span) rendered as one Chrome trace for Perfetto / about:tracing.
std::string MergedTraceJson(std::uint64_t trace_id,
                            const std::vector<api::WireSpan>& server_spans) {
  std::vector<obs::SpanRecord> spans = obs::TakeTraceSpans(trace_id);
  double client_start = 0;
  for (const obs::SpanRecord& span : spans) {
    if (span.name == "net-client-request") {
      client_start = span.start_us;
      break;
    }
  }
  double server_min = 0;
  for (const api::WireSpan& span : server_spans) {
    if (server_min == 0 || span.start_us < server_min) {
      server_min = span.start_us;
    }
  }
  // The two processes have unrelated steady clocks; pin the server's first
  // span to the moment the client's round-trip span opened. (Skew up to the
  // request's one-way latency remains — good enough to read the nesting.)
  double rebase = client_start - server_min;
  for (const api::WireSpan& wire : server_spans) {
    obs::SpanRecord record;
    record.name = wire.name;
    record.id = wire.id;
    record.parent_id = wire.parent_id;
    record.trace_id = wire.trace_id;
    record.start_us = wire.start_us + rebase;
    record.duration_us = wire.duration_us;
    record.pid = obs::kRemotePid;
    record.tid = wire.tid;
    spans.push_back(std::move(record));
  }
  return obs::ChromeTraceJsonFor(
      spans, {{obs::kProcessPid, "cmif client"}, {obs::kRemotePid, "cmif server"}});
}

// request --port P --doc NAME [--host A] [--profile NAME] [--channels a,b]
//         [--no-body] [--retries N] [--deadline-ms D] [--trace out.json]
// One wire round trip against a `serve --listen` server: prints the outcome
// line, the presentation hash, and (unless --no-body) the canonical
// presentation text. With --trace, the request carries an always-sampled
// trace context and the merged client+server timeline is written as Chrome
// trace JSON.
int CmdRequest(const std::vector<std::string>& args) {
  api::NetClientOptions client_options;
  api::PresentRequest request;
  std::string trace_out;
  bool stream = false;
  std::uint64_t chunk_bytes = api::kDefaultChunkBytes;
  for (std::size_t i = 0; i < args.size(); ++i) {
    std::optional<long> value;
    auto long_after = [&](std::size_t& j) -> std::optional<long> {
      if (j + 1 >= args.size()) {
        return std::nullopt;
      }
      return ParseLong(args[++j]);
    };
    if (args[i] == "--port" && (value = long_after(i))) {
      client_options.port = static_cast<int>(*value);
    } else if (args[i] == "--retries" && (value = long_after(i))) {
      client_options.retry.max_attempts = static_cast<int>(*value);
    } else if (args[i] == "--host" && i + 1 < args.size()) {
      client_options.host = args[++i];
    } else if (args[i] == "--doc" && i + 1 < args.size()) {
      request.document = args[++i];
    } else if (args[i] == "--profile" && i + 1 < args.size()) {
      request.profile = args[++i];
    } else if (args[i] == "--channels" && i + 1 < args.size()) {
      request.channels = SplitString(args[++i], ',');
    } else if (args[i] == "--no-body") {
      request.want_body = false;
    } else if (args[i] == "--no-degraded") {
      request.allow_degraded = false;
    } else if (args[i] == "--deadline-ms" && (value = long_after(i))) {
      // Carried on the wire (v3); an EDF server sheds this request with a
      // structured response once the budget is blown instead of queueing it.
      request.deadline_ms = *value;
    } else if (args[i] == "--trace" && i + 1 < args.size()) {
      trace_out = args[++i];
    } else if (args[i] == "--stream") {
      // Chunked delivery (wire v4): kStreamBegin + chunks + kStreamEnd,
      // silently falling back to a plain request against an older server.
      stream = true;
    } else if (args[i] == "--chunk" && (value = long_after(i))) {
      chunk_bytes = static_cast<std::uint64_t>(std::max(*value, 1L));
    } else if (args[i] == "--wire-version" && (value = long_after(i))) {
      // Speak an older protocol version (interop testing; clamped into the
      // supported range at construction).
      client_options.wire_version = static_cast<std::uint8_t>(*value);
    } else {
      return BadFlag("request: unknown or malformed argument '" + args[i] + "'");
    }
  }
  if (client_options.port <= 0) {
    return BadFlag("request: --port is required");
  }
  if (request.document.empty()) {
    return BadFlag("request: --doc is required");
  }
  std::optional<obs::ScopedEnable> enable;
  if (!trace_out.empty()) {
    // An explicitly requested trace is always sampled: the point is one
    // end-to-end timeline, not a statistical rate.
    enable.emplace();
    request.trace = obs::NewTrace(1.0);
  }
  api::NetClient client(client_options);
  api::PresentResponse response;
  if (stream) {
    auto streamed = client.PresentStream(request, chunk_bytes);
    if (!streamed.ok()) {
      return Fail(streamed.status());
    }
    if (streamed->streamed) {
      std::cout << StrFormat(
          "stream: %llu chunks, %llu bytes, %zu blocks (%llu resumes, %llu restarts)\n",
          static_cast<unsigned long long>(streamed->chunks_received),
          static_cast<unsigned long long>(streamed->bytes_streamed), streamed->blocks.size(),
          static_cast<unsigned long long>(streamed->resumes),
          static_cast<unsigned long long>(streamed->restarts));
    } else {
      std::cout << "stream: blob fallback (peer predates wire v4)\n";
    }
    response = std::move(streamed->response);
  } else {
    auto answer = client.Present(request);
    if (!answer.ok()) {
      return Fail(answer.status());
    }
    response = std::move(*answer);
  }
  std::cout << "outcome: " << api::ServeOutcomeName(response.outcome) << " ("
            << response.attempts << (response.attempts == 1 ? " attempt" : " attempts")
            << ", cache " << (response.cache_hit ? "hit" : "miss") << ")\n";
  if (!trace_out.empty()) {
    std::ofstream out(trace_out, std::ios::binary);
    out << MergedTraceJson(request.trace.trace_id, response.server_spans);
    if (!out) {
      return Fail(InternalError("cannot write trace to '" + trace_out + "'"));
    }
    std::cout << StrFormat("trace: %016llx (%zu server spans) -> %s\n",
                           static_cast<unsigned long long>(request.trace.trace_id),
                           response.server_spans.size(), trace_out.c_str());
  }
  if (response.outcome == api::ServeOutcome::kFailed) {
    std::cerr << "error: " << response.error << "\n";
    return kExitFailure;
  }
  std::cout << StrFormat("presentation-hash: %016llx\n",
                         static_cast<unsigned long long>(response.presentation_hash));
  if (request.want_body) {
    std::cout << response.presentation;
  }
  return kExitOk;
}

// stats <host:port> [--retries N]
// Fetches a live telemetry snapshot over the wire (kStatsRequest) and prints
// it as JSON: RED metrics with exemplar trace ids, cache hit rates, breaker
// states, and queue depth.
int CmdStats(const std::vector<std::string>& args) {
  if (args.empty()) {
    return BadFlag("stats: expected <host:port>");
  }
  api::NetClientOptions client_options;
  const std::string& target = args[0];
  std::size_t colon = target.rfind(':');
  if (colon == std::string::npos || colon + 1 >= target.size()) {
    return BadFlag("stats: expected <host:port>, got '" + target + "'");
  }
  std::optional<long> port = ParseLong(target.substr(colon + 1));
  if (!port || *port <= 0 || *port > 65535) {
    return BadFlag("stats: bad port in '" + target + "'");
  }
  if (colon > 0) {
    client_options.host = target.substr(0, colon);
  }
  client_options.port = static_cast<int>(*port);
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--retries" && i + 1 < args.size()) {
      std::optional<long> retries = ParseLong(args[++i]);
      if (!retries) {
        return BadFlag("stats: --retries needs a number");
      }
      client_options.retry.max_attempts = static_cast<int>(*retries);
    } else {
      return BadFlag("stats: unknown or malformed argument '" + args[i] + "'");
    }
  }
  api::NetClient client(client_options);
  auto snapshot = client.FetchStats();
  if (!snapshot.ok()) {
    return Fail(snapshot.status());
  }
  std::cout << api::StatsSnapshotJson(*snapshot);
  return kExitOk;
}

// cache <ls|verify|purge> <dir>
// Operator tooling over a persistent cache directory (serve --cache-dir).
//   ls      one line per committed entry: key fields, size, journal state
//   verify  full read-only check (header, size, CRC) of every entry file;
//           exits 1 when anything is corrupt, without moving files
//   purge   deletes entries, journal, tmp and quarantined files
int CmdCache(const std::vector<std::string>& args) {
  if (args.size() != 2 ||
      (args[0] != "ls" && args[0] != "verify" && args[0] != "purge")) {
    return BadFlag("cache: expected <ls|verify|purge> <dir>");
  }
  const std::string& verb = args[0];
  const std::string& dir = args[1];
  if (verb == "ls") {
    auto entries = api::PersistentCache::List(dir);
    if (!entries.ok()) {
      return Fail(entries.status());
    }
    std::uint64_t total_bytes = 0;
    for (const api::PersistentCache::EntryInfo& info : *entries) {
      std::cout << info.file << "  doc " << std::hex << info.document_hash << " chan "
                << info.channel_hash << std::dec << " gen " << info.store_generation
                << " profile " << info.profile << "  " << info.bytes << " bytes"
                << (info.journaled ? "" : "  (orphan)") << "\n";
      total_bytes += info.bytes;
    }
    std::cout << entries->size() << " entries, " << total_bytes << " payload bytes\n";
    return kExitOk;
  }
  if (verb == "verify") {
    auto report = api::PersistentCache::Verify(dir);
    if (!report.ok()) {
      return Fail(report.status());
    }
    for (const std::string& corrupt : report->corrupt) {
      std::cout << "corrupt: " << corrupt << "\n";
    }
    std::cout << report->checked << " checked, " << report->ok << " ok, "
              << report->corrupt.size() << " corrupt\n";
    return report->corrupt.empty() ? kExitOk : kExitFailure;
  }
  if (Status s = api::PersistentCache::Purge(dir); !s.ok()) {
    return Fail(s);
  }
  std::cout << "purged " << dir << "\n";
  return kExitOk;
}

int Usage() {
  std::cerr << "usage: cmif_tool <sample-news [stories] | check <doc> [catalog] | tree <doc> |"
               " arcs <doc> |\n"
               "                  check [--count N] [--seed S] [--seeds a,b,c] [--leaves L]"
               " [--edits N] [--no-shrink] [--shrink-dir D] [--replay <file|dir>] |\n"
               "                  schedule <doc> [catalog] | play <doc> <catalog> [profile] |\n"
               "                  edit <doc> [catalog] --ops <file> [--out FILE] [--timeline] |\n"
               "                  render <doc> <catalog> <seconds> <out.ppm> |\n"
               "                  profile <doc> <catalog> [profile] [--trace out.json]"
               " [--metrics out.jsonl] |\n"
               "                  serve [--docs K] [--requests N] [--threads T] [--zipf S]"
               " [--seed X] [--cache C | --no-cache] [--cache-dir D]"
               " [--faults <plan | level:N>]"
               " [--listen PORT [--host A] [--workers W] [--sched fifo|edf] [--max-queue N]"
               " [--deadline-ms D] [--sample RATE] [--flight]] |\n"
               "                  request --port P --doc NAME [--host A] [--profile NAME]"
               " [--channels a,b] [--no-body] [--retries N] [--deadline-ms D]"
               " [--trace out.json] |\n"
               "                  stats <host:port> [--retries N] |\n"
               "                  cache <ls|verify|purge> <dir>>\n";
  return kExitUsage;
}

int Run(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  std::string command = argv[1];
  auto arg = [&](int i) { return i < argc ? std::string(argv[i]) : std::string(); };
  if (command == "sample-news") {
    return CmdSampleNews(arg(2));
  }
  if (command == "check" && argc >= 3) {
    // Flag-style arguments select the differential conformance driver; a
    // document path selects classic validate-and-stats.
    if (arg(2).rfind("--", 0) == 0) {
      return CmdConformance(std::vector<std::string>(argv + 2, argv + argc));
    }
    return CmdCheck(arg(2), arg(3));
  }
  if (command == "tree" && argc >= 3) {
    return CmdTree(arg(2));
  }
  if (command == "arcs" && argc >= 3) {
    return CmdArcs(arg(2));
  }
  if (command == "schedule" && argc >= 3) {
    return CmdSchedule(arg(2), arg(3));
  }
  if (command == "edit" && argc >= 3) {
    return CmdEdit(std::vector<std::string>(argv + 2, argv + argc));
  }
  if (command == "play" && argc >= 4) {
    return CmdPlay(arg(2), arg(3), arg(4));
  }
  if (command == "render" && argc >= 6) {
    return CmdRender(arg(2), arg(3), arg(4), arg(5));
  }
  if (command == "profile" && argc >= 4) {
    return CmdProfile(std::vector<std::string>(argv + 2, argv + argc));
  }
  if (command == "serve") {
    return CmdServe(std::vector<std::string>(argv + 2, argv + argc));
  }
  if (command == "request") {
    return CmdRequest(std::vector<std::string>(argv + 2, argv + argc));
  }
  if (command == "stats") {
    return CmdStats(std::vector<std::string>(argv + 2, argv + argc));
  }
  if (command == "cache") {
    return CmdCache(std::vector<std::string>(argv + 2, argv + argc));
  }
  return Usage();
}

}  // namespace
}  // namespace cmif

int main(int argc, char** argv) { return cmif::Run(argc, argv); }
