// cmif_tool — command-line front end for the CMIF pipeline.
//
//   cmif_tool sample-news [stories]          write news.cmif + news.catalog
//   cmif_tool check <doc> [catalog]          validate + statistics
//   cmif_tool tree <doc>                     Figure-5 views
//   cmif_tool arcs <doc>                     Figure-9 arc table
//   cmif_tool schedule <doc> [catalog]       timeline (Figure 3/10 view)
//   cmif_tool play <doc> <catalog> [profile] simulate playback, print trace
//   cmif_tool render <doc> <catalog> <sec> <out.ppm>   compose one frame
//   cmif_tool profile <doc> <catalog> [profile] [--trace out.json] [--metrics out.jsonl]
//                                            run instrumented, export trace + metrics
//   cmif_tool serve [--docs K] [--requests N] [--threads T] [--zipf S]
//                   [--seed X] [--cache C | --no-cache] [--faults <plan | level:N>]
//                                            serve a synthetic Zipf trace concurrently,
//                                            optionally under a fault-injection plan
//
// Profiles: workstation (default), personal, portable.
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <vector>

#include "src/ddbms/persist.h"
#include "src/doc/stats.h"
#include "src/fault/fault.h"
#include "src/doc/validate.h"
#include "src/fmt/parser.h"
#include "src/fmt/tree_view.h"
#include "src/fmt/writer.h"
#include "src/news/evening_news.h"
#include "src/obs/export.h"
#include "src/obs/obs.h"
#include "src/pipeline/pipeline.h"
#include "src/player/engine.h"
#include "src/present/compositor.h"
#include "src/sched/conflict.h"
#include "src/serve/serve.h"

namespace cmif {
namespace {

int Fail(const Status& status) {
  std::cerr << "error: " << status << "\n";
  return 1;
}

StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return NotFoundError("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Status WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return FailedPreconditionError("cannot write '" + path + "'");
  }
  out << contents;
  return Status::Ok();
}

StatusOr<Document> LoadDocument(const std::string& path) {
  CMIF_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  return ParseDocument(text);
}

StatusOr<DescriptorStore> LoadCatalog(const std::string& path) {
  if (path.empty()) {
    return DescriptorStore();
  }
  CMIF_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  return ReadCatalog(text);
}

SystemProfile ProfileByName(const std::string& name) {
  if (name == "personal") {
    return PersonalSystemProfile();
  }
  if (name == "portable") {
    return PortableMonoProfile();
  }
  return WorkstationProfile();
}

int CmdSampleNews(int stories) {
  NewsOptions options;
  options.stories = stories;
  auto workload = BuildEveningNews(options);
  if (!workload.ok()) {
    return Fail(workload.status());
  }
  auto doc_text = WriteDocument(workload->document);
  if (!doc_text.ok()) {
    return Fail(doc_text.status());
  }
  auto catalog_text = WriteCatalog(workload->store);
  if (!catalog_text.ok()) {
    return Fail(catalog_text.status());
  }
  if (Status s = WriteFile("news.cmif", *doc_text); !s.ok()) {
    return Fail(s);
  }
  if (Status s = WriteFile("news.catalog", *catalog_text); !s.ok()) {
    return Fail(s);
  }
  std::cout << "wrote news.cmif (" << doc_text->size() << " bytes) and news.catalog ("
            << catalog_text->size() << " bytes)\n";
  return 0;
}

int CmdCheck(const std::string& doc_path, const std::string& catalog_path) {
  auto doc = LoadDocument(doc_path);
  if (!doc.ok()) {
    return Fail(doc.status());
  }
  auto store = LoadCatalog(catalog_path);
  if (!store.ok()) {
    return Fail(store.status());
  }
  ValidationReport report =
      ValidateDocument(*doc, catalog_path.empty() ? nullptr : &*store);
  std::cout << report.ToString();
  std::cout << StatsToString(
      ComputeStats(*doc, catalog_path.empty() ? nullptr : &*store));
  std::cout << (report.ok() ? "OK" : "INVALID") << " (" << report.error_count() << " errors, "
            << report.warning_count() << " warnings)\n";
  return report.ok() ? 0 : 1;
}

int CmdTree(const std::string& doc_path) {
  auto doc = LoadDocument(doc_path);
  if (!doc.ok()) {
    return Fail(doc.status());
  }
  std::cout << "---- conventional ----\n"
            << ConventionalTreeView(doc->root()) << "---- embedded ----\n"
            << EmbeddedTreeView(doc->root());
  return 0;
}

int CmdArcs(const std::string& doc_path) {
  auto doc = LoadDocument(doc_path);
  if (!doc.ok()) {
    return Fail(doc.status());
  }
  std::cout << ArcTableView(doc->root());
  return 0;
}

StatusOr<ScheduleResult> ScheduleOf(const Document& doc, const DescriptorStore* store) {
  CMIF_ASSIGN_OR_RETURN(std::vector<EventDescriptor> events, CollectEvents(doc, store));
  return ComputeSchedule(doc, events);
}

int CmdSchedule(const std::string& doc_path, const std::string& catalog_path) {
  auto doc = LoadDocument(doc_path);
  if (!doc.ok()) {
    return Fail(doc.status());
  }
  auto store = LoadCatalog(catalog_path);
  if (!store.ok()) {
    return Fail(store.status());
  }
  auto result = ScheduleOf(*doc, catalog_path.empty() ? nullptr : &*store);
  if (!result.ok()) {
    return Fail(result.status());
  }
  if (!result->feasible) {
    std::cout << "INFEASIBLE\n";
    for (const Conflict& conflict : result->conflicts) {
      std::cout << "[" << ConflictClassName(conflict.cls) << "] " << conflict.description
                << "\n";
      for (const std::string& label : conflict.cycle) {
        std::cout << "  " << label << "\n";
      }
    }
    return 1;
  }
  for (const std::string& dropped : result->dropped_arcs) {
    std::cout << "dropped may-arc: " << dropped << "\n";
  }
  std::cout << TimelineView(result->schedule.ToTimelineRows(*doc));
  std::cout << TimelineTable(result->schedule.ToTimelineRows(*doc));
  return 0;
}

int CmdPlay(const std::string& doc_path, const std::string& catalog_path,
            const std::string& profile_name) {
  auto doc = LoadDocument(doc_path);
  if (!doc.ok()) {
    return Fail(doc.status());
  }
  auto store = LoadCatalog(catalog_path);
  if (!store.ok()) {
    return Fail(store.status());
  }
  auto result = ScheduleOf(*doc, &*store);
  if (!result.ok()) {
    return Fail(result.status());
  }
  if (!result->feasible) {
    std::cerr << "document does not schedule; run 'schedule' for the conflicts\n";
    return 1;
  }
  PlayerOptions options;
  options.profile = ProfileByName(profile_name);
  auto run = Play(*doc, result->schedule, &*store, options);
  if (!run.ok()) {
    return Fail(run.status());
  }
  std::cout << "profile: " << options.profile.name << "\n" << run->trace.Summary();
  std::cout << "presentation time: " << run->clock.presentation_time().ToSecondsF() << "s ("
            << run->clock.frozen_total().ToSecondsF() << "s frozen)\n";
  return 0;
}

int CmdRender(const std::string& doc_path, const std::string& catalog_path,
              const std::string& seconds, const std::string& out_path) {
  auto doc = LoadDocument(doc_path);
  if (!doc.ok()) {
    return Fail(doc.status());
  }
  auto store = LoadCatalog(catalog_path);
  if (!store.ok()) {
    return Fail(store.status());
  }
  auto t = ParseMediaTime(seconds);
  if (!t.ok()) {
    return Fail(t.status());
  }
  auto result = ScheduleOf(*doc, &*store);
  if (!result.ok() || !result->feasible) {
    std::cerr << "document does not schedule\n";
    return 1;
  }
  VirtualEnvironment env = VirtualEnvironment::NewsLayout(640, 480);
  auto map = PresentationMap::AutoMap(doc->channels(), env);
  if (!map.ok()) {
    return Fail(map.status());
  }
  BlockStore blocks;
  CompositorOptions options;
  options.text_scale = 2;
  auto frame =
      ComposeFrame(*doc, result->schedule, *map, env, *store, blocks, *t, options);
  if (!frame.ok()) {
    return Fail(frame.status());
  }
  if (Status s = WriteFile(out_path, EncodePpm(*frame)); !s.ok()) {
    return Fail(s);
  }
  std::cout << "wrote " << out_path << " (" << frame->width() << "x" << frame->height()
            << " at t=" << t->ToSecondsF() << "s)\n";
  return 0;
}

// profile <doc> <catalog> [profile] [--trace out.json] [--metrics out.jsonl]
// Runs the full pipeline with instrumentation on and exports the run:
// Chrome trace JSON (open in ui.perfetto.dev), metrics JSONL, and a text
// report on stdout.
int CmdProfile(const std::vector<std::string>& args) {
  std::vector<std::string> positional;
  std::string trace_path;
  std::string metrics_path;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--trace" && i + 1 < args.size()) {
      trace_path = args[++i];
    } else if (args[i] == "--metrics" && i + 1 < args.size()) {
      metrics_path = args[++i];
    } else {
      positional.push_back(args[i]);
    }
  }
  if (positional.size() < 2 || positional.size() > 3) {
    std::cerr << "usage: cmif_tool profile <doc> <catalog> [profile]"
                 " [--trace out.json] [--metrics out.jsonl]\n";
    return 2;
  }
  const std::string& doc_path = positional[0];
  const std::string& catalog_path = positional[1];
  std::string profile_name = positional.size() > 2 ? positional[2] : "";

  obs::ScopedEnable enable;
  obs::ResetAll();

  // Capture: pull the raw bytes off storage.
  std::string doc_text;
  std::string catalog_text;
  {
    obs::Span span("capture");
    span.Annotate("document", doc_path);
    auto text = ReadFile(doc_path);
    if (!text.ok()) {
      return Fail(text.status());
    }
    doc_text = std::move(text).value();
    std::size_t bytes = doc_text.size();
    if (!catalog_path.empty()) {
      auto catalog = ReadFile(catalog_path);
      if (!catalog.ok()) {
        return Fail(catalog.status());
      }
      catalog_text = std::move(catalog).value();
      bytes += catalog_text.size();
    }
    span.Annotate("bytes", bytes);
  }

  // Structure: parse the document and catalog into the in-memory forms.
  std::optional<Document> document;
  DescriptorStore store;
  {
    obs::Span span("structure");
    auto parsed = ParseDocument(doc_text);
    if (!parsed.ok()) {
      return Fail(parsed.status());
    }
    document.emplace(std::move(parsed).value());
    if (!catalog_text.empty()) {
      auto catalog = ReadCatalog(catalog_text);
      if (!catalog.ok()) {
        return Fail(catalog.status());
      }
      store = std::move(catalog).value();
    }
    span.Annotate("nodes", document->root().SubtreeSize());
    span.Annotate("descriptors", store.size());
  }

  // Map → filter → schedule → play, with per-stage spans from RunPipeline.
  BlockStore blocks;
  PipelineOptions options;
  options.profile = ProfileByName(profile_name);
  auto report = RunPipeline(*document, store, blocks, options);
  if (!report.ok()) {
    return Fail(report.status());
  }

  if (!trace_path.empty()) {
    if (Status s = obs::WriteChromeTrace(trace_path); !s.ok()) {
      return Fail(s);
    }
    std::cout << "wrote trace " << trace_path << " (load in ui.perfetto.dev)\n";
  }
  if (!metrics_path.empty()) {
    if (Status s = obs::WriteMetricsJsonl(metrics_path); !s.ok()) {
      return Fail(s);
    }
    std::cout << "wrote metrics " << metrics_path << "\n";
  }
  std::cout << "profile: " << options.profile.name << "\n" << report->Summary() << "\n";
  std::cout << obs::TextReport();
  return 0;
}

// serve [--docs K] [--requests N] [--threads T] [--zipf S] [--seed X]
//       [--cache C | --no-cache]
// Builds a news corpus over one shared descriptor database, replays a
// deterministic Zipf request trace on a worker pool, and reports throughput,
// latency percentiles, cache effectiveness and the per-stage histograms.
int CmdServe(const std::vector<std::string>& args) {
  int docs = 8;
  std::size_t requests = 256;
  ServeOptions options;
  std::optional<fault::FaultPlan> fault_plan;
  auto number_after = [&](std::size_t& i) -> std::optional<long> {
    if (i + 1 >= args.size()) {
      return std::nullopt;
    }
    return std::atol(args[++i].c_str());
  };
  auto parse_faults = [&](const std::string& spec) -> bool {
    // `level:N` is shorthand for the escalating chaos plan the Figure-12
    // bench uses; anything else is a full plan spec.
    if (spec.rfind("level:", 0) == 0) {
      fault_plan = fault::StandardChaosPlan(std::atoi(spec.c_str() + 6));
      return true;
    }
    auto parsed = fault::FaultPlan::Parse(spec);
    if (!parsed.ok()) {
      std::cerr << "serve: bad --faults plan: " << parsed.status().message() << "\n";
      return false;
    }
    fault_plan = std::move(parsed).value();
    return true;
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    std::optional<long> value;
    if (args[i] == "--docs" && (value = number_after(i))) {
      docs = static_cast<int>(*value);
    } else if (args[i] == "--requests" && (value = number_after(i))) {
      requests = static_cast<std::size_t>(*value);
    } else if (args[i] == "--threads" && (value = number_after(i))) {
      options.threads = static_cast<int>(*value);
    } else if (args[i] == "--seed" && (value = number_after(i))) {
      options.seed = static_cast<std::uint64_t>(*value);
    } else if (args[i] == "--cache" && (value = number_after(i))) {
      options.cache_capacity = static_cast<std::size_t>(*value);
    } else if (args[i] == "--zipf" && i + 1 < args.size()) {
      options.zipf_skew = std::atof(args[++i].c_str());
    } else if (args[i] == "--no-cache") {
      options.use_cache = false;
    } else if (args[i] == "--faults" && i + 1 < args.size()) {
      if (!parse_faults(args[++i])) {
        return 2;
      }
    } else if (args[i].rfind("--faults=", 0) == 0) {
      if (!parse_faults(args[i].substr(9))) {
        return 2;
      }
    } else {
      std::cerr << "serve: unknown argument '" << args[i] << "'\n";
      return 2;
    }
  }
  if (fault_plan.has_value()) {
    // Faulted serving implies the recovery ladder: retries stay at their
    // defaults and degraded (stale-cache) responses are allowed.
    options.enable_degraded = true;
  }

  auto corpus = BuildNewsCorpus(docs);
  if (!corpus.ok()) {
    return Fail(corpus.status());
  }
  obs::ScopedEnable enable;
  obs::ResetAll();
  std::optional<fault::ScopedPlan> chaos;
  if (fault_plan.has_value()) {
    fault::ResetCounts();
    chaos.emplace(*fault_plan);
    std::cout << "fault plan: " << fault_plan->ToString() << "\n";
  }
  ServeLoop loop(**corpus, options);
  std::vector<ServeRequest> trace = GenerateTrace((*corpus)->size(), requests, options);
  std::cout << "serving " << requests << " requests over " << docs << " documents ("
            << (*corpus)->store().size() << " shared descriptors), " << options.threads
            << " threads, Zipf(" << options.zipf_skew << ")"
            << (options.use_cache ? "" : ", cache off") << "\n";
  auto stats = loop.Run(trace);
  if (!stats.ok()) {
    return Fail(stats.status());
  }
  if (fault_plan.has_value()) {
    fault::InjectionCounts counts = fault::Counts();
    std::cout << "  injected: " << counts.transient << " transient, " << counts.latency
              << " latency, " << counts.stall << " stalls, " << counts.corrupt << " corrupt ("
              << counts.probes << " probes)\n";
  }
  std::cout << stats->Summary() << "\n" << obs::TextReport();
  return 0;
}

int Usage() {
  std::cerr << "usage: cmif_tool <sample-news [stories] | check <doc> [catalog] | tree <doc> |"
               " arcs <doc> |\n"
               "                  schedule <doc> [catalog] | play <doc> <catalog> [profile] |\n"
               "                  render <doc> <catalog> <seconds> <out.ppm> |\n"
               "                  profile <doc> <catalog> [profile] [--trace out.json]"
               " [--metrics out.jsonl] |\n"
               "                  serve [--docs K] [--requests N] [--threads T] [--zipf S]"
               " [--seed X] [--cache C | --no-cache] [--faults <plan | level:N>]>\n";
  return 2;
}

int Run(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  std::string command = argv[1];
  auto arg = [&](int i) { return i < argc ? std::string(argv[i]) : std::string(); };
  if (command == "sample-news") {
    return CmdSampleNews(argc > 2 ? std::atoi(argv[2]) : 3);
  }
  if (command == "check" && argc >= 3) {
    return CmdCheck(arg(2), arg(3));
  }
  if (command == "tree" && argc >= 3) {
    return CmdTree(arg(2));
  }
  if (command == "arcs" && argc >= 3) {
    return CmdArcs(arg(2));
  }
  if (command == "schedule" && argc >= 3) {
    return CmdSchedule(arg(2), arg(3));
  }
  if (command == "play" && argc >= 4) {
    return CmdPlay(arg(2), arg(3), arg(4));
  }
  if (command == "render" && argc >= 6) {
    return CmdRender(arg(2), arg(3), arg(4), arg(5));
  }
  if (command == "profile" && argc >= 4) {
    return CmdProfile(std::vector<std::string>(argv + 2, argv + argc));
  }
  if (command == "serve") {
    return CmdServe(std::vector<std::string>(argv + 2, argv + argc));
  }
  return Usage();
}

}  // namespace
}  // namespace cmif

int main(int argc, char** argv) { return cmif::Run(argc, argv); }
