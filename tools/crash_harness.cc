// Kill-9 restart chaos harness for the persistent compiled-presentation
// cache. Each cycle forks a child server process that is SIGKILL'd by a
// deterministic crash hook at a seeded point inside the cache commit
// protocol (mid-entry-write, pre-fsync, pre-rename, pre-journal-append,
// mid-journal-append). The parent then reopens the same cache directory and
// verifies the crash-consistency contract:
//
//   1. zero corrupt entries served — every presentation answered after
//      recovery is byte-identical (PresentationHash) to a pristine compile;
//   2. the warm hit rate is restored — at most the one in-flight entry is
//      lost per crash, everything previously committed still hits.
//
// Exit 0 when every cycle upholds both, 1 otherwise. Prints a JSON summary:
//   {"cycles": 50, "kills": 43, "clean_exits": 7, "corrupt_served": 0, ...}
//
// Usage: crash_harness [--dir=<path>] [--cycles=N] [--docs=N] [--seed=N]
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "src/api/cmif.h"

namespace cmif {
namespace {

namespace fs = std::filesystem;

constexpr const char* kCrashPoints[] = {
    "entry.partial", "entry.pre_fsync", "entry.pre_rename", "journal.pre_append",
    "journal.partial",
};
constexpr int kNumPoints = 5;

struct HarnessOptions {
  std::string dir;
  int cycles = 50;
  int docs = 4;
  std::uint64_t seed = 42;
};

// The child: a server "process" that fills the cache and dies at the armed
// crash point (the hook raises SIGKILL on the write-behind thread, so the
// whole process vanishes mid-commit with no destructors run — exactly a
// power cut). Returns an exit code for the no-crash control cycles.
int RunChild(const HarnessOptions& options, const char* point, int after) {
  PersistentCache::SetCrashPlanForTest(point, after);
  auto corpus = api::BuildNewsCorpus(options.docs);
  if (!corpus.ok()) {
    return 2;
  }
  ServeOptions serve_options;
  serve_options.threads = 2;
  serve_options.cache_dir = options.dir;
  ServeLoop loop(**corpus, serve_options);
  if (loop.pcache() == nullptr) {
    return 3;
  }
  for (int i = 0; i < options.docs; ++i) {
    ServeResponse response = loop.Serve(ServeRequest{static_cast<std::size_t>(i), 0});
    if (!response.served()) {
      return 4;
    }
  }
  loop.pcache()->Flush();
  return 0;
}

struct CycleResult {
  bool killed = false;
  int exit_code = 0;
  std::uint64_t disk_hits = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t orphans_adopted = 0;
  std::uint64_t journal_torn = 0;
  bool hashes_ok = true;
  bool hit_rate_ok = true;
};

int Main(const HarnessOptions& options) {
  fs::remove_all(options.dir);

  // Pristine hashes, compiled with every cache tier off: the ground truth
  // each post-crash response is compared against.
  auto corpus = api::BuildNewsCorpus(options.docs);
  if (!corpus.ok()) {
    std::fprintf(stderr, "corpus: %s\n", corpus.status().ToString().c_str());
    return 1;
  }
  std::vector<std::uint64_t> pristine;
  {
    ServeOptions cold;
    cold.threads = 1;
    cold.use_cache = false;
    ServeLoop loop(**corpus, cold);
    for (int i = 0; i < options.docs; ++i) {
      ServeResponse response = loop.Serve(ServeRequest{static_cast<std::size_t>(i), 0});
      if (!response.served()) {
        std::fprintf(stderr, "pristine compile %d: %s\n", i, response.error.ToString().c_str());
        return 1;
      }
      pristine.push_back(api::PresentationHash(*response.presentation, {}));
    }
  }

  // Prime the disk tier so cycle 0 already has a committed baseline — the
  // warm-hit-rate check below assumes "everything but the in-flight entry".
  {
    ServeOptions prime;
    prime.threads = 1;
    prime.cache_dir = options.dir;
    ServeLoop loop(**corpus, prime);
    if (loop.pcache() == nullptr) {
      std::fprintf(stderr, "prime: %s\n", loop.pcache_status().ToString().c_str());
      return 1;
    }
    for (int i = 0; i < options.docs; ++i) {
      (void)loop.Serve(ServeRequest{static_cast<std::size_t>(i), 0});
    }
    loop.pcache()->Flush();
  }

  std::uint64_t kills = 0;
  std::uint64_t clean_exits = 0;
  std::uint64_t child_errors = 0;
  std::uint64_t corrupt_served = 0;
  std::uint64_t hit_rate_failures = 0;
  std::uint64_t total_quarantined = 0;
  std::uint64_t total_orphans = 0;
  std::uint64_t total_torn = 0;
  std::uint64_t total_disk_hits = 0;
  double recovery_ms_total = 0;

  for (int cycle = 0; cycle < options.cycles; ++cycle) {
    // Seeded schedule: rotate through every crash point; every 7th cycle
    // arms a count the single commit never reaches, exercising the clean
    // shutdown path through the same machinery.
    std::uint64_t draw = options.seed * 2654435761u + static_cast<std::uint64_t>(cycle);
    const char* point = kCrashPoints[draw % kNumPoints];
    int after = (cycle % 7 == 6) ? 1000 : 1;

    // Force one cache miss so the child always has a commit in flight for
    // the crash hook to land in (steady state would stop writing).
    int victim = static_cast<int>(draw % static_cast<std::uint64_t>(options.docs));
    {
      MappingCacheKey key;
      key.document_hash = (*corpus)->document(victim).document_hash;
      key.channel_hash = (*corpus)->document(victim).channel_hash;
      key.profile = WorkstationProfile().name;
      key.store_generation = (*corpus)->store().generation();
      std::error_code ec;
      fs::remove(fs::path(options.dir) / "entries" / PersistentCacheFileName(key), ec);
    }

    pid_t pid = fork();
    if (pid < 0) {
      std::fprintf(stderr, "fork: %s\n", std::strerror(errno));
      return 1;
    }
    if (pid == 0) {
      _exit(RunChild(options, point, after));
    }
    int wstatus = 0;
    if (waitpid(pid, &wstatus, 0) < 0) {
      std::fprintf(stderr, "waitpid: %s\n", std::strerror(errno));
      return 1;
    }

    CycleResult result;
    if (WIFSIGNALED(wstatus)) {
      result.killed = WTERMSIG(wstatus) == SIGKILL;
      if (!result.killed) {
        std::fprintf(stderr, "cycle %d: child died on unexpected signal %d\n", cycle,
                     WTERMSIG(wstatus));
        ++child_errors;
      }
    } else if (WEXITSTATUS(wstatus) != 0) {
      std::fprintf(stderr, "cycle %d: child exited %d\n", cycle, WEXITSTATUS(wstatus));
      ++child_errors;
      result.exit_code = WEXITSTATUS(wstatus);
    }

    // Restart: reopen the directory (recovery runs inside Open) and serve
    // the full corpus. Every response must match pristine; everything the
    // crash didn't lose must come from disk.
    ServeOptions warm;
    warm.threads = 1;
    warm.cache_dir = options.dir;
    ServeLoop loop(**corpus, warm);
    if (loop.pcache() == nullptr) {
      std::fprintf(stderr, "cycle %d: reopen failed: %s\n", cycle,
                   loop.pcache_status().ToString().c_str());
      return 1;
    }
    for (int i = 0; i < options.docs; ++i) {
      ServeResponse response = loop.Serve(ServeRequest{static_cast<std::size_t>(i), 0});
      if (!response.served() ||
          api::PresentationHash(*response.presentation, {}) != pristine[i]) {
        result.hashes_ok = false;
      }
      if (response.disk_hit) {
        ++result.disk_hits;
      }
    }
    loop.pcache()->Flush();  // refill whatever the crash lost
    PersistentCache::Stats stats = loop.pcache()->stats();
    result.quarantined = stats.quarantined;
    result.orphans_adopted = stats.orphans_adopted;
    result.journal_torn = stats.journal_torn;
    recovery_ms_total += stats.open_recovery_ms;
    // At most the one in-flight entry may be lost: docs - 1 disk hits floor.
    result.hit_rate_ok = result.disk_hits + 1 >= static_cast<std::uint64_t>(options.docs);

    if (result.killed) {
      ++kills;
    } else if (result.exit_code == 0 && !WIFSIGNALED(wstatus)) {
      ++clean_exits;
    }
    if (!result.hashes_ok) {
      ++corrupt_served;
      std::fprintf(stderr, "cycle %d (%s): response mismatch after restart\n", cycle, point);
    }
    if (!result.hit_rate_ok) {
      ++hit_rate_failures;
      std::fprintf(stderr, "cycle %d (%s): only %llu/%d disk hits after restart\n", cycle, point,
                   static_cast<unsigned long long>(result.disk_hits), options.docs);
    }
    total_quarantined += result.quarantined;
    total_orphans += result.orphans_adopted;
    total_torn += result.journal_torn;
    total_disk_hits += result.disk_hits;
  }

  bool ok = corrupt_served == 0 && hit_rate_failures == 0 && child_errors == 0 && kills > 0;
  std::printf(
      "{\"cycles\": %d, \"kills\": %llu, \"clean_exits\": %llu, \"child_errors\": %llu,\n"
      " \"corrupt_served\": %llu, \"hit_rate_failures\": %llu,\n"
      " \"quarantined\": %llu, \"orphans_adopted\": %llu, \"journal_torn\": %llu,\n"
      " \"disk_hits\": %llu, \"mean_recovery_ms\": %.3f, \"ok\": %s}\n",
      options.cycles, static_cast<unsigned long long>(kills),
      static_cast<unsigned long long>(clean_exits), static_cast<unsigned long long>(child_errors),
      static_cast<unsigned long long>(corrupt_served),
      static_cast<unsigned long long>(hit_rate_failures),
      static_cast<unsigned long long>(total_quarantined),
      static_cast<unsigned long long>(total_orphans), static_cast<unsigned long long>(total_torn),
      static_cast<unsigned long long>(total_disk_hits),
      options.cycles > 0 ? recovery_ms_total / options.cycles : 0.0, ok ? "true" : "false");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace cmif

int main(int argc, char** argv) {
  cmif::HarnessOptions options;
  options.dir = (std::filesystem::temp_directory_path() / "cmif_crash_harness").string();
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&arg](const char* prefix) -> const char* {
      std::size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--dir=")) {
      options.dir = v;
    } else if (const char* v = value("--cycles=")) {
      options.cycles = std::atoi(v);
    } else if (const char* v = value("--docs=")) {
      options.docs = std::atoi(v);
    } else if (const char* v = value("--seed=")) {
      options.seed = static_cast<std::uint64_t>(std::strtoull(v, nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: crash_harness [--dir=<path>] [--cycles=N] [--docs=N] [--seed=N]\n");
      return 2;
    }
  }
  if (options.cycles <= 0 || options.docs <= 0) {
    std::fprintf(stderr, "crash_harness: --cycles and --docs must be positive\n");
    return 2;
  }
  return cmif::Main(options);
}
