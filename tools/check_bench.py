#!/usr/bin/env python3
"""Bench regression gate: compare a fresh run against a committed baseline.

Usage:
  tools/check_bench.py BASELINE.json CURRENT.json [--threshold PCT]
                       [--noise-floor-ms MS]

Both files are the JSON arrays written by tools/run_benches.sh (one
{"bench": ..., "fields": {...}} object per figure). Every wall-time field
(name ending in `_ms`) present in both files is compared; the gate fails if
any regresses by more than the threshold (default 15%).

Knobs (flag wins over env, env over default):
  --threshold / CMIF_BENCH_THRESHOLD   allowed regression in percent (15)
  --noise-floor-ms / CMIF_BENCH_NOISE_FLOOR_MS
        baselines faster than this are skipped — sub-tenth-millisecond
        timings on shared CI runners are dominated by scheduler noise (0.05)
  CMIF_SKIP_BENCH_GATE=1               report but always exit 0; escape
        hatch for PRs that intentionally trade wall time for a feature —
        use it in the workflow env and say why in the PR description.

Fields added or removed between baseline and current are reported but never
fail the gate: new figures have no baseline to regress against.
"""

import argparse
import json
import os
import sys


def load(path):
    try:
        with open(path) as f:
            entries = json.load(f)
    except (OSError, ValueError) as err:
        sys.exit(f"check_bench: cannot read {path}: {err}")
    return {entry["bench"]: entry.get("fields", {}) for entry in entries}


def env_float(name, default):
    value = os.environ.get(name)
    if value is None:
        return default
    try:
        return float(value)
    except ValueError:
        sys.exit(f"check_bench: {name}={value!r} is not a number")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float,
                        default=env_float("CMIF_BENCH_THRESHOLD", 15.0),
                        help="allowed regression in percent (default 15)")
    parser.add_argument("--noise-floor-ms", type=float,
                        default=env_float("CMIF_BENCH_NOISE_FLOOR_MS", 0.05),
                        help="skip baselines faster than this (default 0.05)")
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)

    regressions = []
    compared = 0
    for bench, base_fields in sorted(baseline.items()):
        cur_fields = current.get(bench)
        if cur_fields is None:
            print(f"  [absent ] {bench}: not in current run")
            continue
        for field, base in sorted(base_fields.items()):
            if not field.endswith("_ms") or not isinstance(base, (int, float)):
                continue
            cur = cur_fields.get(field)
            if not isinstance(cur, (int, float)):
                print(f"  [absent ] {bench}.{field}: not in current run")
                continue
            if base < args.noise_floor_ms:
                print(f"  [noise  ] {bench}.{field}: baseline {base:.4f}ms "
                      f"below floor {args.noise_floor_ms}ms, skipped")
                continue
            compared += 1
            delta = (cur - base) / base * 100
            tag = "ok"
            if delta > args.threshold:
                tag = "REGRESS"
                regressions.append((bench, field, base, cur, delta))
            print(f"  [{tag:<7}] {bench}.{field}: "
                  f"{base:.4f}ms -> {cur:.4f}ms ({delta:+.1f}%)")
    for bench in sorted(set(current) - set(baseline)):
        print(f"  [new    ] {bench}: no baseline, not gated")

    print(f"check_bench: {compared} timings compared, "
          f"{len(regressions)} over the {args.threshold:g}% threshold")
    if regressions and os.environ.get("CMIF_SKIP_BENCH_GATE") == "1":
        print("check_bench: CMIF_SKIP_BENCH_GATE=1 set — reporting only")
        return 0
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
