#!/usr/bin/env python3
"""Bench regression gate: compare a fresh run against a committed baseline.

Usage:
  tools/check_bench.py BASELINE.json CURRENT.json [--threshold PCT]
                       [--noise-floor-ms MS]

Both files are the JSON arrays written by tools/run_benches.sh (one
{"bench": ..., "fields": {...}} object per figure). Every wall-time field
(name ending in `_ms`) present in both files is compared; the gate fails if
any regresses by more than the threshold (default 15%).

Knobs (flag wins over env, env over default):
  --threshold / CMIF_BENCH_THRESHOLD   allowed regression in percent (15)
  --noise-floor-ms / CMIF_BENCH_NOISE_FLOOR_MS
        absolute jitter allowance added on top of the relative threshold:
        a field fails only when current > baseline * (1 + threshold) +
        this many ms. Sub-tenth-millisecond timings on shared CI runners
        (loopback latency percentiles especially) wobble by tens of
        microseconds run to run; a pure relative gate would flag that
        scheduler noise as a regression (0.05)
  --obs-overhead-max / CMIF_OBS_OVERHEAD_MAX
        hard budget (percent) for fig1_pipeline.obs_enabled_overhead_pct in
        the CURRENT run (default 5). Unlike the relative gate this is an
        absolute ceiling: enabled-but-idle instrumentation may never cost
        more than this, regardless of what the baseline paid.
  --overload-p99-max / CMIF_OVERLOAD_P99_MAX
        absolute ceiling in ms for fig13_net.p99_under_overload_ms — the
        queue wait p99 of requests the EDF scheduler chose to serve during
        the overload flood (default 150). Fields containing "under_overload"
        are exempt from the relative gate (the FIFO baseline is *supposed*
        to be terrible; that is the point of the comparison) and gated
        absolutely here instead.
  --min-shed-rate / CMIF_MIN_SHED_RATE
        floor for fig13_net.shed_rate in the CURRENT run (default 0.001):
        under a flood far past capacity the EDF scheduler must actually
        shed. A zero shed rate means admission control silently stopped
        engaging — overload then reappears as unbounded tail latency.
  --min-restart-speedup / CMIF_MIN_RESTART_SPEEDUP
        floor for fig16_restart.restart_speedup in the CURRENT run
        (default 10): a warm restart over a populated persistent cache
        must serve the Zipf trace at least this many times faster than
        cold compiles. Below the floor the disk tier has stopped paying
        for itself — reads failing verification and silently recompiling
        look healthy everywhere except here.
  --min-edit-speedup / CMIF_MIN_EDIT_SPEEDUP
        floor for fig17_edit.edit_speedup in the CURRENT run (default
        10): a single-arc retune through the EditSession dirty-cone path
        must recompile at least this many times faster than the
        from-scratch compile an editor without incrementality pays.
        Below the floor the warm start has silently degraded into full
        re-solves — correct (the differential harness proves that) but
        pointless.
  --min-ttff-speedup / CMIF_MIN_TTFF_SPEEDUP
        floor for fig18_stream.ttff_speedup in the CURRENT run (default
        5): on a bandwidth-constrained link, streamed delivery must show
        its first frame at least this many times sooner than waiting for
        the full blob. The ratio is a property of the prefetch plan's
        delivery order (schedule's must-start order, start-of-show
        content first), so a drop below the floor means the plan stopped
        front-loading what playback needs first.
  CMIF_SKIP_BENCH_GATE=1               report but always exit 0; escape
        hatch for PRs that intentionally trade wall time for a feature —
        use it in the workflow env and say why in the PR description.

Fields added or removed between baseline and current are reported but never
fail the gate: new figures have no baseline to regress against.
"""

import argparse
import json
import os
import sys


def load(path):
    try:
        with open(path) as f:
            entries = json.load(f)
    except (OSError, ValueError) as err:
        sys.exit(f"check_bench: cannot read {path}: {err}")
    return {entry["bench"]: entry.get("fields", {}) for entry in entries}


def env_float(name, default):
    value = os.environ.get(name)
    if value is None:
        return default
    try:
        return float(value)
    except ValueError:
        sys.exit(f"check_bench: {name}={value!r} is not a number")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float,
                        default=env_float("CMIF_BENCH_THRESHOLD", 15.0),
                        help="allowed regression in percent (default 15)")
    parser.add_argument("--noise-floor-ms", type=float,
                        default=env_float("CMIF_BENCH_NOISE_FLOOR_MS", 0.05),
                        help="absolute jitter allowance in ms added to every"
                             " field's budget (default 0.05)")
    parser.add_argument("--obs-overhead-max", type=float,
                        default=env_float("CMIF_OBS_OVERHEAD_MAX", 5.0),
                        help="absolute ceiling for fig1 obs overhead percent"
                             " (default 5)")
    parser.add_argument("--overload-p99-max", type=float,
                        default=env_float("CMIF_OVERLOAD_P99_MAX", 150.0),
                        help="absolute ceiling in ms for fig13_net"
                             ".p99_under_overload_ms (default 150)")
    parser.add_argument("--min-shed-rate", type=float,
                        default=env_float("CMIF_MIN_SHED_RATE", 0.001),
                        help="floor for fig13_net.shed_rate under the"
                             " overload flood (default 0.001)")
    parser.add_argument("--min-edit-speedup", type=float,
                        default=env_float("CMIF_MIN_EDIT_SPEEDUP", 10.0),
                        help="floor for fig17_edit.edit_speedup in the "
                             "current run")
    parser.add_argument("--min-ttff-speedup", type=float,
                        default=env_float("CMIF_MIN_TTFF_SPEEDUP", 5.0),
                        help="floor for fig18_stream.ttff_speedup in the "
                             "current run (default 5)")
    parser.add_argument("--min-restart-speedup", type=float,
                        default=env_float("CMIF_MIN_RESTART_SPEEDUP", 10.0),
                        help="floor for fig16_restart.restart_speedup"
                             " (default 10)")
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)

    regressions = []
    compared = 0
    for bench, base_fields in sorted(baseline.items()):
        cur_fields = current.get(bench)
        if cur_fields is None:
            print(f"  [absent ] {bench}: not in current run")
            continue
        for field, base in sorted(base_fields.items()):
            if not field.endswith("_ms") or not isinstance(base, (int, float)):
                continue
            if "under_overload" in field:
                # Overload timings measure behavior past capacity, where
                # run-to-run wall time is dominated by how overloaded the
                # runner itself is — and the FIFO columns are intentionally
                # bad (the comparison baseline). Gated absolutely below.
                print(f"  [skipped] {bench}.{field}: overload field, "
                      f"absolute gate applies instead")
                continue
            cur = cur_fields.get(field)
            if not isinstance(cur, (int, float)):
                print(f"  [absent ] {bench}.{field}: not in current run")
                continue
            compared += 1
            delta = (cur - base) / base * 100 if base > 0 else 0.0
            # Relative threshold plus an absolute jitter allowance: on a
            # 70us loopback percentile a 30us scheduler wobble is +43%,
            # while a real regression on any >=0.5ms timing still trips
            # the relative part long before the allowance matters.
            allowed = base * (1 + args.threshold / 100) + args.noise_floor_ms
            tag = "ok"
            if cur > allowed:
                tag = "REGRESS"
                regressions.append((bench, field, base, cur, delta))
            print(f"  [{tag:<7}] {bench}.{field}: "
                  f"{base:.4f}ms -> {cur:.4f}ms ({delta:+.1f}%, "
                  f"allowed {allowed:.4f}ms)")
    for bench in sorted(set(current) - set(baseline)):
        print(f"  [new    ] {bench}: no baseline, not gated")

    # Absolute observability budget: fig1 measures the same workload with
    # instrumentation compiled in + enabled vs compiled out; the gap is pure
    # obs tax and must stay under the ceiling.
    overhead_violations = []
    overhead = current.get("fig1_pipeline", {}).get("obs_enabled_overhead_pct")
    if isinstance(overhead, (int, float)):
        tag = "ok"
        if overhead > args.obs_overhead_max:
            tag = "REGRESS"
            overhead_violations.append(overhead)
        print(f"  [{tag:<7}] fig1_pipeline.obs_enabled_overhead_pct: "
              f"{overhead:.2f}% (budget {args.obs_overhead_max:g}%)")
    else:
        print("  [absent ] fig1_pipeline.obs_enabled_overhead_pct: "
              "not in current run, obs budget not gated")

    # Absolute overload budget: under the fig13 flood the EDF scheduler must
    # keep the queue wait of admitted work bounded *and* actually shed the
    # rest — both halves of the overload contract, gated on the current run
    # alone (no baseline involved).
    overload_violations = []
    fig13 = current.get("fig13_net", {})
    overload_p99 = fig13.get("p99_under_overload_ms")
    if isinstance(overload_p99, (int, float)):
        tag = "ok"
        if overload_p99 > args.overload_p99_max:
            tag = "REGRESS"
            overload_violations.append(("p99_under_overload_ms", overload_p99))
        print(f"  [{tag:<7}] fig13_net.p99_under_overload_ms: "
              f"{overload_p99:.2f}ms (budget {args.overload_p99_max:g}ms)")
    else:
        print("  [absent ] fig13_net.p99_under_overload_ms: "
              "not in current run, overload budget not gated")
    shed_rate = fig13.get("shed_rate")
    if isinstance(shed_rate, (int, float)):
        tag = "ok"
        if shed_rate < args.min_shed_rate:
            tag = "REGRESS"
            overload_violations.append(("shed_rate", shed_rate))
        print(f"  [{tag:<7}] fig13_net.shed_rate: "
              f"{shed_rate:.4f} (floor {args.min_shed_rate:g})")
    else:
        print("  [absent ] fig13_net.shed_rate: "
              "not in current run, shed floor not gated")

    # Absolute restart budget: fig16 replays the serving trace against a
    # fresh process over a populated persistent cache. The speedup floor is
    # the whole point of the disk tier — gated on the current run alone.
    restart_violations = []
    speedup = current.get("fig16_restart", {}).get("restart_speedup")
    if isinstance(speedup, (int, float)):
        tag = "ok"
        if speedup < args.min_restart_speedup:
            tag = "REGRESS"
            restart_violations.append(speedup)
        print(f"  [{tag:<7}] fig16_restart.restart_speedup: "
              f"x{speedup:.2f} (floor x{args.min_restart_speedup:g})")
    else:
        print("  [absent ] fig16_restart.restart_speedup: "
              "not in current run, restart floor not gated")

    # Absolute edit-loop budget: fig17 replays a single-arc retune trace
    # through api::EditSession and prices the dirty-cone recompile against a
    # from-scratch compile of the same edit — gated on the current run alone.
    edit_violations = []
    edit_speedup = current.get("fig17_edit", {}).get("edit_speedup")
    if isinstance(edit_speedup, (int, float)):
        tag = "ok"
        if edit_speedup < args.min_edit_speedup:
            tag = "REGRESS"
            edit_violations.append(edit_speedup)
        print(f"  [{tag:<7}] fig17_edit.edit_speedup: "
              f"x{edit_speedup:.2f} (floor x{args.min_edit_speedup:g})")
    else:
        print("  [absent ] fig17_edit.edit_speedup: "
              "not in current run, edit floor not gated")

    # Absolute streaming budget: fig18 prices chunked delivery against the
    # blob on a constrained link. The time-to-first-frame ratio is pure
    # delivery order — a property of the prefetch plan, not the runner — so
    # it is gated on the current run alone.
    stream_violations = []
    ttff_speedup = current.get("fig18_stream", {}).get("ttff_speedup")
    if isinstance(ttff_speedup, (int, float)):
        tag = "ok"
        if ttff_speedup < args.min_ttff_speedup:
            tag = "REGRESS"
            stream_violations.append(ttff_speedup)
        print(f"  [{tag:<7}] fig18_stream.ttff_speedup: "
              f"x{ttff_speedup:.2f} (floor x{args.min_ttff_speedup:g})")
    else:
        print("  [absent ] fig18_stream.ttff_speedup: "
              "not in current run, streaming floor not gated")

    print(f"check_bench: {compared} timings compared, "
          f"{len(regressions)} over the {args.threshold:g}% threshold, "
          f"{len(overhead_violations)} obs-budget violations, "
          f"{len(overload_violations)} overload-budget violations, "
          f"{len(restart_violations)} restart-budget violations, "
          f"{len(edit_violations)} edit-budget violations, "
          f"{len(stream_violations)} streaming-budget violations")
    failures = bool(regressions or overhead_violations or overload_violations
                    or restart_violations or edit_violations
                    or stream_violations)
    if failures and os.environ.get("CMIF_SKIP_BENCH_GATE") == "1":
        print("check_bench: CMIF_SKIP_BENCH_GATE=1 set — reporting only")
        return 0
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
