#!/usr/bin/env bash
# Runs every fig* bench figure with --bench-json and merges the emitted
# JSONL lines into one JSON array.
#
#   tools/run_benches.sh [build-dir] [out.json]
#
# Default: build + BENCH_PR${CMIF_PR:-1}.json — set CMIF_PR=<N> (or pass the
# output path explicitly) to write the per-PR baseline BENCH_PR<N>.json that
# tools/check_bench.py gates against. Pass --full in BENCH_ARGS to also run
# the google-benchmark suites; by default only the figures run (the JSON
# lines come from the figures, not the BM_* loops).
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_PR${CMIF_PR:-1}.json}"
BENCH_ARGS="${BENCH_ARGS:---benchmark_filter=^$}"

FIGS=(fig1_pipeline fig2_ddbms fig3_timeline fig4_news fig5_tree
      fig6_nodes fig7_attrs fig8_sync_window fig9_arcs fig10_fragment
      fig11_serve fig12_chaos fig13_net fig14_check fig15_trace
      fig16_restart fig17_edit fig18_stream)

TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

for fig in "${FIGS[@]}"; do
  bin="$BUILD_DIR/bench/$fig"
  if [[ ! -x "$bin" ]]; then
    echo "skipping $fig: $bin not built" >&2
    continue
  fi
  echo "== $fig ==" >&2
  "$bin" --bench-json "$TMP" $BENCH_ARGS > /dev/null
done

if [[ ! -s "$TMP" ]]; then
  echo "no bench JSON lines produced; is $BUILD_DIR built?" >&2
  exit 1
fi

# Disabled-instrumentation overhead: rebuild fig1 with the probes compiled
# out (-DCMIF_OBS=OFF) and compare its pipeline time against the instrumented
# binary's runtime-disabled time. Skip with SKIP_NOOBS=1.
if [[ "${SKIP_NOOBS:-}" != "1" ]]; then
  NOOBS_DIR="${BUILD_DIR%/}-noobs"
  echo "== fig1_pipeline (compiled-out baseline, $NOOBS_DIR) ==" >&2
  cmake -S . -B "$NOOBS_DIR" -DCMIF_OBS=OFF > /dev/null
  cmake --build "$NOOBS_DIR" --target fig1_pipeline -j"$(nproc)" > /dev/null
  TMP2="$(mktemp)"
  "$NOOBS_DIR/bench/fig1_pipeline" --bench-json "$TMP2" $BENCH_ARGS > /dev/null
  sed 's/"fig1_pipeline"/"fig1_pipeline_noobs"/' "$TMP2" >> "$TMP"
  rm -f "$TMP2"
  if command -v python3 > /dev/null; then
    python3 - "$TMP" <<'EOF'
import json, sys
path = sys.argv[1]
by = {}
with open(path) as f:
    for line in f:
        entry = json.loads(line)
        by[entry["bench"]] = entry["fields"]
instrumented = by.get("fig1_pipeline", {}).get("obs_disabled_ms")
baseline = by.get("fig1_pipeline_noobs", {}).get("obs_disabled_ms")
if instrumented and baseline:
    pct = (instrumented - baseline) / baseline * 100
    with open(path, "a") as f:
        f.write(json.dumps({"bench": "obs_disabled_overhead", "fields": {
            "compiled_out_ms": baseline,
            "compiled_in_disabled_ms": instrumented,
            "overhead_pct": round(pct, 3)}}) + "\n")
    print(f"disabled-instrumentation overhead: {pct:.2f}%", file=sys.stderr)
EOF
  fi
fi

# Disabled-fault-injection overhead: rebuild fig12 with the fault probes
# compiled out (-DCMIF_FAULT=OFF) and compare the warm serve path against the
# instrumented binary's no-plan path. Skip with SKIP_NOFAULT=1.
if [[ "${SKIP_NOFAULT:-}" != "1" ]]; then
  NOFAULT_DIR="${BUILD_DIR%/}-nofault"
  echo "== fig12_chaos (compiled-out baseline, $NOFAULT_DIR) ==" >&2
  cmake -S . -B "$NOFAULT_DIR" -DCMIF_FAULT=OFF > /dev/null
  cmake --build "$NOFAULT_DIR" --target fig12_chaos -j"$(nproc)" > /dev/null
  TMP3="$(mktemp)"
  "$NOFAULT_DIR/bench/fig12_chaos" --bench-json "$TMP3" $BENCH_ARGS > /dev/null
  sed 's/"fig12_chaos"/"fig12_chaos_nofault"/' "$TMP3" >> "$TMP"
  rm -f "$TMP3"
fi

{
  echo "["
  sed '$!s/$/,/' "$TMP"
  echo "]"
} > "$OUT"
echo "wrote $OUT ($(wc -l < "$TMP") benches)" >&2
