#!/usr/bin/env bash
# CLI contract test for cmif_tool (ctest: cli_test). Asserts the exit-code
# discipline — 0 success, 1 runtime/validation failure, 2 usage or bad
# flags, usage text on stderr only — and drives one serve --listen /
# request round trip over a loopback socket.
set -u

TOOL="${1:?usage: cli_test.sh /path/to/cmif_tool}"
case "$TOOL" in /*) ;; *) TOOL="$PWD/$TOOL" ;; esac
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
cd "$TMP"

failures=0
check() { # check <description> <expected-exit> <actual-exit>
  if [ "$2" -ne "$3" ]; then
    echo "FAIL: $1 (expected exit $2, got $3)" >&2
    failures=$((failures + 1))
  else
    echo "ok: $1"
  fi
}

# --- usage and flag errors exit 2, with text on stderr only ---------------
"$TOOL" >out.txt 2>err.txt
check "no arguments exits 2" 2 $?
[ -s out.txt ] && { echo "FAIL: usage leaked to stdout" >&2; failures=$((failures+1)); }
grep -q "usage:" err.txt || { echo "FAIL: usage text missing from stderr" >&2; failures=$((failures+1)); }

"$TOOL" frobnicate >/dev/null 2>&1
check "unknown subcommand exits 2" 2 $?

"$TOOL" check >/dev/null 2>&1
check "check without a document exits 2" 2 $?

"$TOOL" serve --docs banana >/dev/null 2>&1
check "non-numeric --docs exits 2" 2 $?

"$TOOL" serve --bogus-flag >/dev/null 2>&1
check "unknown serve flag exits 2" 2 $?

"$TOOL" sample-news -3 >/dev/null 2>&1
check "negative story count exits 2" 2 $?

"$TOOL" request --doc news-0-s1 >/dev/null 2>&1
check "request without --port exits 2" 2 $?

"$TOOL" request --port 1 >/dev/null 2>&1
check "request without --doc exits 2" 2 $?

# --- runtime failures exit 1 ----------------------------------------------
"$TOOL" check /no/such/file.cmif >/dev/null 2>&1
check "missing document exits 1" 1 $?

# --- success paths exit 0 -------------------------------------------------
"$TOOL" sample-news >/dev/null 2>&1
check "sample-news exits 0" 0 $?
[ -f news.cmif ] || { echo "FAIL: news.cmif not written" >&2; failures=$((failures+1)); }

"$TOOL" check news.cmif news.catalog >/dev/null 2>&1
check "check on a valid document exits 0" 0 $?

"$TOOL" check --count 5 --seed 7 --no-shrink >conf.out 2>&1
check "conformance run exits 0" 0 $?
grep -q "zero divergences" conf.out || {
  echo "FAIL: conformance run did not report zero divergences" >&2
  failures=$((failures + 1))
}

"$TOOL" check --seeds 3,99 --no-shrink >/dev/null 2>&1
check "conformance seed list exits 0" 0 $?

"$TOOL" check --stream --count 5 --seed 7 --no-shrink >stream_conf.out 2>&1
check "streamed-vs-blob conformance run exits 0" 0 $?
grep -q "zero divergences" stream_conf.out || {
  echo "FAIL: stream conformance run did not report zero divergences" >&2
  failures=$((failures + 1))
}

"$TOOL" check --stream --count 3 --seed 7 --bandwidth 2000 --chunk 300 --no-shrink >/dev/null 2>&1
check "stream conformance on a starved link exits 0" 0 $?

"$TOOL" serve --docs 2 --requests 16 --threads 1 >/dev/null 2>&1
check "in-process serve replay exits 0" 0 $?

# --- serve --listen / request round trip ----------------------------------
mkfifo ctl
"$TOOL" serve --listen 0 --docs 2 <ctl >serve.out 2>serve.err &
server_pid=$!
exec 9>ctl  # hold the control stream open
port=""
for _ in $(seq 100); do
  port="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' serve.out)"
  [ -n "$port" ] && break
  sleep 0.1
done
if [ -z "$port" ]; then
  echo "FAIL: server never reported its port" >&2
  cat serve.err >&2
  failures=$((failures + 1))
else
  "$TOOL" request --port "$port" --doc news-0-s1 --profile personal >request.out 2>&1
  check "request against the live server exits 0" 0 $?
  grep -q "outcome: healthy" request.out || {
    echo "FAIL: request did not report a healthy outcome" >&2
    failures=$((failures + 1))
  }
  grep -q "presentation-hash:" request.out || {
    echo "FAIL: request did not print the presentation hash" >&2
    failures=$((failures + 1))
  }

  "$TOOL" request --port "$port" --doc news-0-s1 --profile personal --stream >stream.out 2>&1
  check "streamed request against the live server exits 0" 0 $?
  grep -q "outcome: healthy" stream.out || {
    echo "FAIL: streamed request did not report a healthy outcome" >&2
    failures=$((failures + 1))
  }
  grep -Eq "stream: [0-9]+ chunks" stream.out || {
    echo "FAIL: streamed request did not report chunked delivery" >&2
    failures=$((failures + 1))
  }
  # Streamed and plain delivery must agree on the document they describe.
  stream_hash="$(sed -n 's/^presentation-hash: //p' stream.out)"
  plain_hash="$(sed -n 's/^presentation-hash: //p' request.out)"
  if [ -z "$stream_hash" ] || [ "$stream_hash" != "$plain_hash" ]; then
    echo "FAIL: streamed presentation hash differs from plain delivery" >&2
    failures=$((failures + 1))
  fi

  # A v3 client asking for a stream silently falls back to blob delivery.
  "$TOOL" request --port "$port" --doc news-0-s1 --stream --wire-version 3 >stream_v3.out 2>&1
  check "streamed request at wire v3 falls back and exits 0" 0 $?
  grep -q "stream: blob fallback" stream_v3.out || {
    echo "FAIL: v3 streamed request did not report the blob fallback" >&2
    failures=$((failures + 1))
  }

  "$TOOL" request --port "$port" --doc no-such-doc >/dev/null 2>&1
  check "request for an unknown document exits 1" 1 $?
fi
exec 9>&-  # EOF on stdin stops the server
wait "$server_pid"
check "server exits 0 after stdin closes" 0 $?

# A request with nobody listening is a runtime failure, not a hang.
"$TOOL" request --port "${port:-1}" --doc news-0-s1 --retries 1 >/dev/null 2>&1
check "request against a dead server exits 1" 1 $?

# --- persistent cache: serve --cache-dir and the cache subcommand ----------
"$TOOL" cache >/dev/null 2>&1
check "cache without arguments exits 2" 2 $?

"$TOOL" cache frob pcache >/dev/null 2>&1
check "unknown cache verb exits 2" 2 $?

"$TOOL" serve --docs 2 --requests 16 --threads 1 --cache-dir pcache >serve_disk.out 2>&1
check "serve --cache-dir exits 0" 0 $?
grep -q "disk cache at" serve_disk.out || {
  echo "FAIL: serve --cache-dir did not report the disk tier" >&2
  failures=$((failures + 1))
}

"$TOOL" cache ls pcache >cache_ls.out 2>&1
check "cache ls exits 0" 0 $?
grep -q "entries," cache_ls.out || {
  echo "FAIL: cache ls did not print an entry summary" >&2
  failures=$((failures + 1))
}
grep -qv "^0 entries" cache_ls.out || {
  echo "FAIL: serve --cache-dir left no entries behind" >&2
  failures=$((failures + 1))
}

"$TOOL" cache verify pcache >/dev/null 2>&1
check "cache verify on a healthy directory exits 0" 0 $?

# Damage one entry: verify must exit 1 and name it, without moving files.
victim="$(ls pcache/entries | head -1)"
printf x >>"pcache/entries/$victim"
"$TOOL" cache verify pcache >verify.out 2>&1
check "cache verify with a corrupt entry exits 1" 1 $?
grep -q "corrupt: $victim" verify.out || {
  echo "FAIL: cache verify did not name the corrupt entry" >&2
  failures=$((failures + 1))
}
[ -f "pcache/entries/$victim" ] || {
  echo "FAIL: cache verify moved a file (must be read-only)" >&2
  failures=$((failures + 1))
}

"$TOOL" cache purge pcache >/dev/null 2>&1
check "cache purge exits 0" 0 $?
[ -z "$(ls pcache/entries 2>/dev/null)" ] || {
  echo "FAIL: cache purge left entries behind" >&2
  failures=$((failures + 1))
}

"$TOOL" serve --docs 1 --requests 4 --threads 1 --cache-dir /proc/not/writable >/dev/null 2>&1
check "serve with an unusable --cache-dir exits 1" 1 $?

if [ "$failures" -ne 0 ]; then
  echo "$failures check(s) failed" >&2
  exit 1
fi
echo "all CLI checks passed"
