// The Evening News (paper sections 4 and 5.3.4, Figures 4 and 10): builds
// the full broadcast, prints the document structure in both Figure-5 forms,
// the Figure-9 arc table, the Figure-10 channel timeline, and then runs the
// whole CWI/Multimedia Pipeline on two target profiles.
// Run: build/examples/evening_news
#include <fstream>
#include <iostream>

#include "src/doc/stats.h"
#include "src/fmt/tree_view.h"
#include "src/news/evening_news.h"
#include "src/api/cmif.h"
#include "src/present/compositor.h"

using namespace cmif;

namespace {

// Renders the Figure-4a screen at a few instants of story 1 into PPM files.
void RenderFrames(const Document& doc, const PipelineReport& report,
                  const DescriptorStore& store) {
  VirtualEnvironment env = VirtualEnvironment::NewsLayout(640, 480);
  BlockStore blocks;  // payloads come from the generators
  CompositorOptions options;
  options.text_scale = 2;
  int i = 0;
  for (MediaTime t : {MediaTime::Seconds(3), MediaTime::Seconds(9), MediaTime::Seconds(15)}) {
    auto frame = ComposeFrame(doc, report.schedule.schedule, report.presentation_map, env,
                              store, blocks, t, options);
    if (!frame.ok()) {
      std::cerr << "compose failed: " << frame.status() << "\n";
      return;
    }
    std::string path = "news_frame_" + std::to_string(i++) + ".ppm";
    std::ofstream out(path, std::ios::binary);
    out << EncodePpm(*frame);
    std::cout << "wrote " << path << " (" << frame->width() << "x" << frame->height()
              << ", t=" << t.ToSecondsF() << "s)\n";
  }
}

}  // namespace

int main() {
  NewsOptions options;
  options.stories = 3;
  auto workload = BuildEveningNews(options);
  if (!workload.ok()) {
    std::cerr << workload.status() << "\n";
    return 1;
  }
  const Document& doc = workload->document;

  std::cout << "==== document statistics (table of contents) ====\n"
            << StatsToString(ComputeStats(doc, &workload->store));

  std::cout << "\n==== conventional tree (Figure 5a) ====\n" << ConventionalTreeView(doc.root());
  std::cout << "\n==== embedded tree (Figure 5b) ====\n" << EmbeddedTreeView(doc.root());
  std::cout << "\n==== synchronization arcs (Figure 9) ====\n" << ArcTableView(doc.root());

  for (const SystemProfile& profile : {WorkstationProfile(), PersonalSystemProfile()}) {
    std::cout << "\n==== pipeline on profile '" << profile.name << "' ====\n";
    PipelineOptions pipeline_options;
    pipeline_options.profile = profile;
    auto report = api::Play(doc, workload->store, workload->blocks, pipeline_options);
    if (!report.ok()) {
      std::cerr << report.status() << "\n";
      return 1;
    }
    std::cout << report->Summary();
    if (report->schedule.feasible) {
      std::cout << "\n---- channel timeline (Figure 10) ----\n"
                << TimelineView(report->schedule.schedule.ToTimelineRows(doc));
      std::cout << report->playback.trace.Summary();
      if (profile.name == "workstation") {
        std::cout << "\n---- rendering Figure 4a frames ----\n";
        RenderFrames(doc, *report, workload->store);
      }
    }
  }
  return 0;
}
