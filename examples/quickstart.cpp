// Quickstart: author a tiny two-channel CMIF document, validate it,
// serialize it, parse it back, schedule it and play it on the workstation
// profile. Run: build/examples/quickstart
#include <cstdio>
#include <iostream>

#include "src/doc/builder.h"
#include "src/doc/validate.h"
#include "src/fmt/parser.h"
#include "src/fmt/tree_view.h"
#include "src/fmt/writer.h"
#include "src/api/cmif.h"
#include "src/player/engine.h"
#include "src/sched/conflict.h"

using namespace cmif;

int main() {
  // 1. Capture two media blocks (synthetic, descriptor-only).
  DescriptorStore store;
  BlockStore blocks;
  api::CaptureSession capture(store, blocks, /*materialize=*/false);
  if (Status s = capture.CaptureSpeech("welcome-voice", MediaTime::Seconds(4), 7); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  if (Status s = capture.CaptureFlyingBird("bird-clip", MediaTime::Seconds(4)); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }

  // 2. Author the document: a bird clip with narration and a caption that
  // must appear when the clip starts (within a quarter second).
  DocBuilder builder(NodeKind::kSeq);
  builder.DefineChannel("screen", MediaType::kVideo)
      .DefineChannel("sound", MediaType::kAudio)
      .DefineChannel("text", MediaType::kText);
  builder.Par("scene")
      .Ext("bird", "bird-clip")
      .OnChannel("screen")
      .Ext("voice", "welcome-voice")
      .OnChannel("sound")
      .ImmText("caption", "A bird crosses the screen.")
      .OnChannel("text")
      .WithDuration(MediaTime::Seconds(3))
      .Up();
  builder.current().AddArc(WindowArc(*NodePath::Parse("scene/bird"), ArcEdge::kBegin,
                                     *NodePath::Parse("scene/caption"), ArcEdge::kBegin,
                                     MediaTime(), MediaTime(), MediaTime::Rational(1, 4)));
  auto doc = builder.Build();
  if (!doc.ok()) {
    std::cerr << doc.status() << "\n";
    return 1;
  }

  // 3. Validate.
  ValidationReport report = ValidateDocument(*doc, &store);
  std::cout << "validation: " << report.error_count() << " errors, " << report.warning_count()
            << " warnings\n";
  if (!report.ok()) {
    std::cout << report.ToString();
    return 1;
  }

  // 4. Serialize and parse back (the transportable form).
  auto text = WriteDocument(*doc);
  if (!text.ok()) {
    std::cerr << text.status() << "\n";
    return 1;
  }
  std::cout << "---- serialized document ----\n" << *text << "\n";
  auto reparsed = ParseDocument(*text);
  if (!reparsed.ok()) {
    std::cerr << "reparse failed: " << reparsed.status() << "\n";
    return 1;
  }

  // 5. Schedule.
  auto events = CollectEvents(*doc, &store);
  if (!events.ok()) {
    std::cerr << events.status() << "\n";
    return 1;
  }
  auto schedule = ComputeSchedule(*doc, *events);
  if (!schedule.ok() || !schedule->feasible) {
    std::cerr << "scheduling failed\n";
    return 1;
  }
  std::cout << "---- timeline ----\n"
            << TimelineView(schedule->schedule.ToTimelineRows(*doc)) << "\n";

  // 6. Play on the workstation profile.
  auto played = Play(*doc, schedule->schedule, &store);
  if (!played.ok()) {
    std::cerr << played.status() << "\n";
    return 1;
  }
  std::cout << "---- playback ----\n" << played->trace.Summary();
  std::cout << "presentation time: " << played->clock.presentation_time().ToSecondsF()
            << "s\n";
  return 0;
}
