// Transportable documents: author the news on "system A", serialize the
// document and its descriptor catalog (structure only — no media bytes),
// carry both across to "system B" (a weaker machine), constraint-filter and
// play there. This is the paper's central scenario: "the document structure
// can be accessed across system environments independently of individual
// component input or output dependencies" (abstract).
// Run: build/examples/transport
#include <iostream>

#include "src/ddbms/persist.h"
#include "src/fmt/parser.h"
#include "src/fmt/writer.h"
#include "src/news/evening_news.h"
#include "src/api/cmif.h"

using namespace cmif;

namespace {
int Fail(const Status& status) {
  std::cerr << status << "\n";
  return 1;
}
}  // namespace

int main() {
  // ---- System A: author ----------------------------------------------------
  NewsOptions options;
  options.stories = 2;
  auto workload = BuildEveningNews(options);
  if (!workload.ok()) {
    return Fail(workload.status());
  }
  auto document_text = WriteDocument(workload->document);
  if (!document_text.ok()) {
    return Fail(document_text.status());
  }
  auto catalog_text = WriteCatalog(workload->store);
  if (!catalog_text.ok()) {
    return Fail(catalog_text.status());
  }
  std::cout << "system A serialized: document " << document_text->size()
            << " bytes, catalog " << catalog_text->size() << " bytes\n";
  std::cout << "(media payloads referenced but not shipped: descriptors declare "
            << [&] {
                 std::int64_t total = 0;
                 for (const DataDescriptor& d : workload->store.descriptors()) {
                   total += d.DeclaredBytes();
                 }
                 return total;
               }()
            << " bytes)\n\n";

  // ---- Transport: only the two text artifacts cross ------------------------
  auto document_b = ParseDocument(*document_text);
  if (!document_b.ok()) {
    return Fail(document_b.status());
  }
  auto store_b = ReadCatalog(*catalog_text);
  if (!store_b.ok()) {
    return Fail(store_b.status());
  }

  // ---- System B: inspect, filter, play --------------------------------------
  PipelineOptions pipeline_options;
  pipeline_options.profile = PersonalSystemProfile();
  BlockStore no_blocks;  // system B regenerates payloads from the generators
  auto report = api::Play(*document_b, *store_b, no_blocks, pipeline_options);
  if (!report.ok()) {
    return Fail(report.status());
  }
  std::cout << "system B ('" << pipeline_options.profile.name << "') pipeline:\n"
            << report->Summary();
  std::cout << "\nfilter decisions on system B (from attributes only):\n"
            << report->filter.ToString();
  std::cout << "presentation map on system B:\n" << report->presentation_map.Serialize();
  return 0;
}
