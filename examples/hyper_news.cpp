// Navigation and hyper access (paper sections 3.2 and 5.3.3 case 3): seeking
// into the middle of a document invalidates relative synchronization arcs
// whose sources never execute. This example fast-forwards into the news,
// reports which arcs can no longer bind, and then plays from that position.
// It also demonstrates the rate controls (slow motion) of section 4.
// Run: build/examples/hyper_news
#include <iostream>

#include "src/news/evening_news.h"
#include "src/player/engine.h"
#include "src/sched/navigate.h"

using namespace cmif;

namespace {
int Fail(const Status& status) {
  std::cerr << status << "\n";
  return 1;
}
}  // namespace

int main() {
  auto workload = BuildEveningNews(NewsOptions{});
  if (!workload.ok()) {
    return Fail(workload.status());
  }
  const Document& doc = workload->document;
  auto events = CollectEvents(doc, &workload->store);
  if (!events.ok()) {
    return Fail(events.status());
  }
  auto scheduled = ComputeSchedule(doc, *events);
  if (!scheduled.ok() || !scheduled->feasible) {
    std::cerr << "scheduling failed\n";
    return 1;
  }
  const Schedule& schedule = scheduled->schedule;
  std::cout << "broadcast runs " << schedule.MakeSpan().ToSecondsF() << "s\n\n";

  // Fast-forward into the middle of story 2 (past some arc sources).
  MediaTime seek = MediaTime::Seconds(25);
  SeekAnalysis analysis = AnalyzeSeek(doc, schedule, seek);
  std::cout << "seek to " << seek.ToSecondsF() << "s: " << analysis.skipped.size()
            << " events skipped, " << analysis.active.size() << " active, "
            << analysis.pending.size() << " pending\n";
  std::cout << "invalidated synchronization arcs (section 5.3.3 case 3):\n";
  for (const InvalidatedArc& arc : analysis.invalidated) {
    std::cout << "  " << arc.reason << "\n";
  }
  for (const Conflict& conflict : analysis.Conflicts()) {
    std::cout << "  [" << ConflictClassName(conflict.cls) << "] " << conflict.description
              << "\n";
  }

  // Constructive handling: recompute the tail schedule with the dead arcs
  // disabled (skipped events stay pinned to history).
  auto rescheduled = RescheduleFromSeek(doc, *events, schedule, seek);
  if (!rescheduled.ok()) {
    return Fail(rescheduled.status());
  }
  if (rescheduled->feasible) {
    std::cout << "\nrescheduled tail (invalid arcs dropped): makespan "
              << rescheduled->schedule.MakeSpan().ToSecondsF() << "s vs original "
              << schedule.MakeSpan().ToSecondsF() << "s\n";
  }

  // Resume playback from the seek point.
  PlayerOptions player;
  player.start_at = seek;
  auto resumed = Play(doc, schedule, &workload->store, player);
  if (!resumed.ok()) {
    return Fail(resumed.status());
  }
  std::cout << "\nresumed playback: " << resumed->trace.size() << " presentations, "
            << resumed->events_skipped << " skipped\n";

  // Slow motion: the same document at half speed doubles presentation time.
  PlayerOptions slow;
  slow.rate_num = 1;
  slow.rate_den = 2;
  auto slow_run = Play(doc, schedule, &workload->store, slow);
  if (!slow_run.ok()) {
    return Fail(slow_run.status());
  }
  std::cout << "slow-motion (1/2 rate) presentation time: "
            << slow_run->clock.presentation_time().ToSecondsF() << "s vs normal "
            << schedule.MakeSpan().ToSecondsF() << "s\n";
  return 0;
}
