// Attribute-based search (paper section 6): "if the attributes contain
// search key information, then many time consuming activities relating to
// finding detailed information in large multimedia databases may be
// simplified". Populates a descriptor database, indexes it, and answers
// content questions without ever touching media payloads.
// Run: build/examples/ddbms_search
#include <chrono>
#include <iostream>

#include "src/base/string_util.h"
#include "src/ddbms/persist.h"
#include "src/ddbms/store.h"
#include "src/news/evening_news.h"

using namespace cmif;

int main() {
  // A season's worth of broadcasts: 40 editions x 5 stories.
  DescriptorStore store;
  for (int edition = 0; edition < 40; ++edition) {
    NewsOptions options;
    options.stories = 5;
    options.seed = static_cast<std::uint64_t>(edition) * 7919 + 1;
    auto workload = BuildEveningNews(options);
    if (!workload.ok()) {
      std::cerr << workload.status() << "\n";
      return 1;
    }
    for (const DataDescriptor& d : workload->store.descriptors()) {
      DataDescriptor copy = d;
      copy.mutable_attrs().Set("edition", AttrValue::Number(edition));
      // Re-id to keep editions distinct.
      DataDescriptor renamed(StrFormat("e%02d-%s", edition, d.id().c_str()),
                             copy.attrs());
      renamed.set_content(copy.content());
      if (Status s = store.Add(std::move(renamed)); !s.ok()) {
        std::cerr << s << "\n";
        return 1;
      }
    }
  }
  store.CreateIndex("medium");
  store.CreateIndex("edition");
  std::cout << "database: " << store.size() << " descriptors, indexes on medium + edition\n\n";

  const char* queries[] = {
      "medium=video",
      "medium=audio & edition:[10,19]",
      "medium=graphic & has(keywords)",
      "edition=7 & !(medium=text)",
  };
  for (const char* text : queries) {
    auto query = ParseQuery(text);
    if (!query.ok()) {
      std::cerr << query.status() << "\n";
      return 1;
    }
    QueryStats indexed_stats;
    auto t0 = std::chrono::steady_clock::now();
    auto indexed = store.Execute(*query, &indexed_stats);
    auto t1 = std::chrono::steady_clock::now();
    QueryStats scan_stats;
    auto scanned = store.ExecuteScan(*query, &scan_stats);
    auto t2 = std::chrono::steady_clock::now();
    double indexed_us = std::chrono::duration<double, std::micro>(t1 - t0).count();
    double scan_us = std::chrono::duration<double, std::micro>(t2 - t1).count();
    std::cout << "query: " << text << "\n";
    std::cout << StrFormat("  %zu hits; index examined %zu candidates (%.1fus), scan examined "
                           "%zu (%.1fus)\n",
                           indexed.size(), indexed_stats.candidates_examined, indexed_us,
                           scan_stats.candidates_examined, scan_us);
    if (indexed.size() != scanned.size()) {
      std::cerr << "  MISMATCH between index and scan results!\n";
      return 1;
    }
    if (!indexed.empty()) {
      std::cout << "  first hit: " << indexed.front()->id() << " "
                << indexed.front()->attrs().ToString() << "\n";
    }
    std::cout << "\n";
  }
  return 0;
}
