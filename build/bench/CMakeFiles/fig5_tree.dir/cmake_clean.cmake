file(REMOVE_RECURSE
  "CMakeFiles/fig5_tree.dir/fig5_tree.cc.o"
  "CMakeFiles/fig5_tree.dir/fig5_tree.cc.o.d"
  "fig5_tree"
  "fig5_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
