# Empty dependencies file for fig4_news.
# This may be replaced when dependencies are built.
