file(REMOVE_RECURSE
  "CMakeFiles/fig4_news.dir/fig4_news.cc.o"
  "CMakeFiles/fig4_news.dir/fig4_news.cc.o.d"
  "fig4_news"
  "fig4_news.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_news.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
