# Empty compiler generated dependencies file for fig6_nodes.
# This may be replaced when dependencies are built.
