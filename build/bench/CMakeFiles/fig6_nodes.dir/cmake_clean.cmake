file(REMOVE_RECURSE
  "CMakeFiles/fig6_nodes.dir/fig6_nodes.cc.o"
  "CMakeFiles/fig6_nodes.dir/fig6_nodes.cc.o.d"
  "fig6_nodes"
  "fig6_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
