file(REMOVE_RECURSE
  "CMakeFiles/fig2_ddbms.dir/fig2_ddbms.cc.o"
  "CMakeFiles/fig2_ddbms.dir/fig2_ddbms.cc.o.d"
  "fig2_ddbms"
  "fig2_ddbms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_ddbms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
