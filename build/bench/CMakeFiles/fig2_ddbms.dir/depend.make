# Empty dependencies file for fig2_ddbms.
# This may be replaced when dependencies are built.
