file(REMOVE_RECURSE
  "CMakeFiles/fig7_attrs.dir/fig7_attrs.cc.o"
  "CMakeFiles/fig7_attrs.dir/fig7_attrs.cc.o.d"
  "fig7_attrs"
  "fig7_attrs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_attrs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
