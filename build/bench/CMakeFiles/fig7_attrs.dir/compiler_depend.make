# Empty compiler generated dependencies file for fig7_attrs.
# This may be replaced when dependencies are built.
