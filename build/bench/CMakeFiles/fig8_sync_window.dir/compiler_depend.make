# Empty compiler generated dependencies file for fig8_sync_window.
# This may be replaced when dependencies are built.
