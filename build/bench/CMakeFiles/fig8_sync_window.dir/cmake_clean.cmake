file(REMOVE_RECURSE
  "CMakeFiles/fig8_sync_window.dir/fig8_sync_window.cc.o"
  "CMakeFiles/fig8_sync_window.dir/fig8_sync_window.cc.o.d"
  "fig8_sync_window"
  "fig8_sync_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_sync_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
