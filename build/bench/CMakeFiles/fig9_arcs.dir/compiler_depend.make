# Empty compiler generated dependencies file for fig9_arcs.
# This may be replaced when dependencies are built.
