file(REMOVE_RECURSE
  "CMakeFiles/fig9_arcs.dir/fig9_arcs.cc.o"
  "CMakeFiles/fig9_arcs.dir/fig9_arcs.cc.o.d"
  "fig9_arcs"
  "fig9_arcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_arcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
