# Empty compiler generated dependencies file for fig10_fragment.
# This may be replaced when dependencies are built.
