file(REMOVE_RECURSE
  "CMakeFiles/fig10_fragment.dir/fig10_fragment.cc.o"
  "CMakeFiles/fig10_fragment.dir/fig10_fragment.cc.o.d"
  "fig10_fragment"
  "fig10_fragment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_fragment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
