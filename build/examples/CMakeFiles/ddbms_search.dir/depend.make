# Empty dependencies file for ddbms_search.
# This may be replaced when dependencies are built.
