file(REMOVE_RECURSE
  "CMakeFiles/ddbms_search.dir/ddbms_search.cpp.o"
  "CMakeFiles/ddbms_search.dir/ddbms_search.cpp.o.d"
  "ddbms_search"
  "ddbms_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddbms_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
