# Empty compiler generated dependencies file for evening_news.
# This may be replaced when dependencies are built.
