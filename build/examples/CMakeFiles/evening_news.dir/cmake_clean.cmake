file(REMOVE_RECURSE
  "CMakeFiles/evening_news.dir/evening_news.cpp.o"
  "CMakeFiles/evening_news.dir/evening_news.cpp.o.d"
  "evening_news"
  "evening_news.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evening_news.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
