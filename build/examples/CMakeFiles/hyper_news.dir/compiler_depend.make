# Empty compiler generated dependencies file for hyper_news.
# This may be replaced when dependencies are built.
