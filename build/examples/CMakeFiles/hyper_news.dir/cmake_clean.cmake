file(REMOVE_RECURSE
  "CMakeFiles/hyper_news.dir/hyper_news.cpp.o"
  "CMakeFiles/hyper_news.dir/hyper_news.cpp.o.d"
  "hyper_news"
  "hyper_news.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyper_news.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
