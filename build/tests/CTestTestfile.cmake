# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/base_test[1]_include.cmake")
include("/root/repo/build/tests/attr_test[1]_include.cmake")
include("/root/repo/build/tests/media_test[1]_include.cmake")
include("/root/repo/build/tests/ddbms_test[1]_include.cmake")
include("/root/repo/build/tests/doc_test[1]_include.cmake")
include("/root/repo/build/tests/fmt_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/present_test[1]_include.cmake")
include("/root/repo/build/tests/player_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/news_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
