file(REMOVE_RECURSE
  "CMakeFiles/ddbms_test.dir/ddbms/descriptor_test.cc.o"
  "CMakeFiles/ddbms_test.dir/ddbms/descriptor_test.cc.o.d"
  "CMakeFiles/ddbms_test.dir/ddbms/persist_test.cc.o"
  "CMakeFiles/ddbms_test.dir/ddbms/persist_test.cc.o.d"
  "CMakeFiles/ddbms_test.dir/ddbms/query_test.cc.o"
  "CMakeFiles/ddbms_test.dir/ddbms/query_test.cc.o.d"
  "CMakeFiles/ddbms_test.dir/ddbms/store_test.cc.o"
  "CMakeFiles/ddbms_test.dir/ddbms/store_test.cc.o.d"
  "ddbms_test"
  "ddbms_test.pdb"
  "ddbms_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddbms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
