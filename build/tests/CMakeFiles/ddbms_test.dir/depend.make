# Empty dependencies file for ddbms_test.
# This may be replaced when dependencies are built.
