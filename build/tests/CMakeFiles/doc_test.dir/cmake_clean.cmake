file(REMOVE_RECURSE
  "CMakeFiles/doc_test.dir/doc/builder_test.cc.o"
  "CMakeFiles/doc_test.dir/doc/builder_test.cc.o.d"
  "CMakeFiles/doc_test.dir/doc/channel_test.cc.o"
  "CMakeFiles/doc_test.dir/doc/channel_test.cc.o.d"
  "CMakeFiles/doc_test.dir/doc/document_test.cc.o"
  "CMakeFiles/doc_test.dir/doc/document_test.cc.o.d"
  "CMakeFiles/doc_test.dir/doc/edit_test.cc.o"
  "CMakeFiles/doc_test.dir/doc/edit_test.cc.o.d"
  "CMakeFiles/doc_test.dir/doc/event_test.cc.o"
  "CMakeFiles/doc_test.dir/doc/event_test.cc.o.d"
  "CMakeFiles/doc_test.dir/doc/materialize_test.cc.o"
  "CMakeFiles/doc_test.dir/doc/materialize_test.cc.o.d"
  "CMakeFiles/doc_test.dir/doc/node_test.cc.o"
  "CMakeFiles/doc_test.dir/doc/node_test.cc.o.d"
  "CMakeFiles/doc_test.dir/doc/path_test.cc.o"
  "CMakeFiles/doc_test.dir/doc/path_test.cc.o.d"
  "CMakeFiles/doc_test.dir/doc/stats_test.cc.o"
  "CMakeFiles/doc_test.dir/doc/stats_test.cc.o.d"
  "CMakeFiles/doc_test.dir/doc/sync_arc_test.cc.o"
  "CMakeFiles/doc_test.dir/doc/sync_arc_test.cc.o.d"
  "CMakeFiles/doc_test.dir/doc/validate_test.cc.o"
  "CMakeFiles/doc_test.dir/doc/validate_test.cc.o.d"
  "doc_test"
  "doc_test.pdb"
  "doc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
