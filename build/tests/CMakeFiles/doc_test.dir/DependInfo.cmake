
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/doc/builder_test.cc" "tests/CMakeFiles/doc_test.dir/doc/builder_test.cc.o" "gcc" "tests/CMakeFiles/doc_test.dir/doc/builder_test.cc.o.d"
  "/root/repo/tests/doc/channel_test.cc" "tests/CMakeFiles/doc_test.dir/doc/channel_test.cc.o" "gcc" "tests/CMakeFiles/doc_test.dir/doc/channel_test.cc.o.d"
  "/root/repo/tests/doc/document_test.cc" "tests/CMakeFiles/doc_test.dir/doc/document_test.cc.o" "gcc" "tests/CMakeFiles/doc_test.dir/doc/document_test.cc.o.d"
  "/root/repo/tests/doc/edit_test.cc" "tests/CMakeFiles/doc_test.dir/doc/edit_test.cc.o" "gcc" "tests/CMakeFiles/doc_test.dir/doc/edit_test.cc.o.d"
  "/root/repo/tests/doc/event_test.cc" "tests/CMakeFiles/doc_test.dir/doc/event_test.cc.o" "gcc" "tests/CMakeFiles/doc_test.dir/doc/event_test.cc.o.d"
  "/root/repo/tests/doc/materialize_test.cc" "tests/CMakeFiles/doc_test.dir/doc/materialize_test.cc.o" "gcc" "tests/CMakeFiles/doc_test.dir/doc/materialize_test.cc.o.d"
  "/root/repo/tests/doc/node_test.cc" "tests/CMakeFiles/doc_test.dir/doc/node_test.cc.o" "gcc" "tests/CMakeFiles/doc_test.dir/doc/node_test.cc.o.d"
  "/root/repo/tests/doc/path_test.cc" "tests/CMakeFiles/doc_test.dir/doc/path_test.cc.o" "gcc" "tests/CMakeFiles/doc_test.dir/doc/path_test.cc.o.d"
  "/root/repo/tests/doc/stats_test.cc" "tests/CMakeFiles/doc_test.dir/doc/stats_test.cc.o" "gcc" "tests/CMakeFiles/doc_test.dir/doc/stats_test.cc.o.d"
  "/root/repo/tests/doc/sync_arc_test.cc" "tests/CMakeFiles/doc_test.dir/doc/sync_arc_test.cc.o" "gcc" "tests/CMakeFiles/doc_test.dir/doc/sync_arc_test.cc.o.d"
  "/root/repo/tests/doc/validate_test.cc" "tests/CMakeFiles/doc_test.dir/doc/validate_test.cc.o" "gcc" "tests/CMakeFiles/doc_test.dir/doc/validate_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gen/CMakeFiles/cmif_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/news/CMakeFiles/cmif_news.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/cmif_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/player/CMakeFiles/cmif_player.dir/DependInfo.cmake"
  "/root/repo/build/src/present/CMakeFiles/cmif_present.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/cmif_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/fmt/CMakeFiles/cmif_fmt.dir/DependInfo.cmake"
  "/root/repo/build/src/doc/CMakeFiles/cmif_doc.dir/DependInfo.cmake"
  "/root/repo/build/src/ddbms/CMakeFiles/cmif_ddbms.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/cmif_media.dir/DependInfo.cmake"
  "/root/repo/build/src/attr/CMakeFiles/cmif_attr.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/cmif_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
