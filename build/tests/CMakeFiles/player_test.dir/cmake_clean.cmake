file(REMOVE_RECURSE
  "CMakeFiles/player_test.dir/player/clock_test.cc.o"
  "CMakeFiles/player_test.dir/player/clock_test.cc.o.d"
  "CMakeFiles/player_test.dir/player/device_test.cc.o"
  "CMakeFiles/player_test.dir/player/device_test.cc.o.d"
  "CMakeFiles/player_test.dir/player/engine_more_test.cc.o"
  "CMakeFiles/player_test.dir/player/engine_more_test.cc.o.d"
  "CMakeFiles/player_test.dir/player/engine_test.cc.o"
  "CMakeFiles/player_test.dir/player/engine_test.cc.o.d"
  "CMakeFiles/player_test.dir/player/trace_test.cc.o"
  "CMakeFiles/player_test.dir/player/trace_test.cc.o.d"
  "player_test"
  "player_test.pdb"
  "player_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/player_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
