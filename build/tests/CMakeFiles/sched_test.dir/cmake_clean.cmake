file(REMOVE_RECURSE
  "CMakeFiles/sched_test.dir/sched/conflict_test.cc.o"
  "CMakeFiles/sched_test.dir/sched/conflict_test.cc.o.d"
  "CMakeFiles/sched_test.dir/sched/navigate_test.cc.o"
  "CMakeFiles/sched_test.dir/sched/navigate_test.cc.o.d"
  "CMakeFiles/sched_test.dir/sched/schedule_test.cc.o"
  "CMakeFiles/sched_test.dir/sched/schedule_test.cc.o.d"
  "CMakeFiles/sched_test.dir/sched/solver_test.cc.o"
  "CMakeFiles/sched_test.dir/sched/solver_test.cc.o.d"
  "CMakeFiles/sched_test.dir/sched/timegraph_test.cc.o"
  "CMakeFiles/sched_test.dir/sched/timegraph_test.cc.o.d"
  "sched_test"
  "sched_test.pdb"
  "sched_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
