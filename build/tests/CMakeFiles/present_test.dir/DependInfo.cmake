
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/present/capability_test.cc" "tests/CMakeFiles/present_test.dir/present/capability_test.cc.o" "gcc" "tests/CMakeFiles/present_test.dir/present/capability_test.cc.o.d"
  "/root/repo/tests/present/compositor_test.cc" "tests/CMakeFiles/present_test.dir/present/compositor_test.cc.o" "gcc" "tests/CMakeFiles/present_test.dir/present/compositor_test.cc.o.d"
  "/root/repo/tests/present/filter_test.cc" "tests/CMakeFiles/present_test.dir/present/filter_test.cc.o" "gcc" "tests/CMakeFiles/present_test.dir/present/filter_test.cc.o.d"
  "/root/repo/tests/present/presentation_map_test.cc" "tests/CMakeFiles/present_test.dir/present/presentation_map_test.cc.o" "gcc" "tests/CMakeFiles/present_test.dir/present/presentation_map_test.cc.o.d"
  "/root/repo/tests/present/virtual_env_test.cc" "tests/CMakeFiles/present_test.dir/present/virtual_env_test.cc.o" "gcc" "tests/CMakeFiles/present_test.dir/present/virtual_env_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gen/CMakeFiles/cmif_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/news/CMakeFiles/cmif_news.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/cmif_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/player/CMakeFiles/cmif_player.dir/DependInfo.cmake"
  "/root/repo/build/src/present/CMakeFiles/cmif_present.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/cmif_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/fmt/CMakeFiles/cmif_fmt.dir/DependInfo.cmake"
  "/root/repo/build/src/doc/CMakeFiles/cmif_doc.dir/DependInfo.cmake"
  "/root/repo/build/src/ddbms/CMakeFiles/cmif_ddbms.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/cmif_media.dir/DependInfo.cmake"
  "/root/repo/build/src/attr/CMakeFiles/cmif_attr.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/cmif_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
