file(REMOVE_RECURSE
  "CMakeFiles/present_test.dir/present/capability_test.cc.o"
  "CMakeFiles/present_test.dir/present/capability_test.cc.o.d"
  "CMakeFiles/present_test.dir/present/compositor_test.cc.o"
  "CMakeFiles/present_test.dir/present/compositor_test.cc.o.d"
  "CMakeFiles/present_test.dir/present/filter_test.cc.o"
  "CMakeFiles/present_test.dir/present/filter_test.cc.o.d"
  "CMakeFiles/present_test.dir/present/presentation_map_test.cc.o"
  "CMakeFiles/present_test.dir/present/presentation_map_test.cc.o.d"
  "CMakeFiles/present_test.dir/present/virtual_env_test.cc.o"
  "CMakeFiles/present_test.dir/present/virtual_env_test.cc.o.d"
  "present_test"
  "present_test.pdb"
  "present_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/present_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
