file(REMOVE_RECURSE
  "CMakeFiles/news_test.dir/news/evening_news_test.cc.o"
  "CMakeFiles/news_test.dir/news/evening_news_test.cc.o.d"
  "news_test"
  "news_test.pdb"
  "news_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/news_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
