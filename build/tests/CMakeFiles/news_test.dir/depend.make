# Empty dependencies file for news_test.
# This may be replaced when dependencies are built.
