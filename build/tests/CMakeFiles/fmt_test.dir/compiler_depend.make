# Empty compiler generated dependencies file for fmt_test.
# This may be replaced when dependencies are built.
