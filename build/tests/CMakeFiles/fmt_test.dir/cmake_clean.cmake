file(REMOVE_RECURSE
  "CMakeFiles/fmt_test.dir/fmt/parser_test.cc.o"
  "CMakeFiles/fmt_test.dir/fmt/parser_test.cc.o.d"
  "CMakeFiles/fmt_test.dir/fmt/tree_view_test.cc.o"
  "CMakeFiles/fmt_test.dir/fmt/tree_view_test.cc.o.d"
  "CMakeFiles/fmt_test.dir/fmt/writer_test.cc.o"
  "CMakeFiles/fmt_test.dir/fmt/writer_test.cc.o.d"
  "fmt_test"
  "fmt_test.pdb"
  "fmt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
