file(REMOVE_RECURSE
  "CMakeFiles/attr_test.dir/attr/attr_list_test.cc.o"
  "CMakeFiles/attr_test.dir/attr/attr_list_test.cc.o.d"
  "CMakeFiles/attr_test.dir/attr/inherit_test.cc.o"
  "CMakeFiles/attr_test.dir/attr/inherit_test.cc.o.d"
  "CMakeFiles/attr_test.dir/attr/parse_test.cc.o"
  "CMakeFiles/attr_test.dir/attr/parse_test.cc.o.d"
  "CMakeFiles/attr_test.dir/attr/registry_test.cc.o"
  "CMakeFiles/attr_test.dir/attr/registry_test.cc.o.d"
  "CMakeFiles/attr_test.dir/attr/style_test.cc.o"
  "CMakeFiles/attr_test.dir/attr/style_test.cc.o.d"
  "CMakeFiles/attr_test.dir/attr/value_test.cc.o"
  "CMakeFiles/attr_test.dir/attr/value_test.cc.o.d"
  "attr_test"
  "attr_test.pdb"
  "attr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
