# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("attr")
subdirs("media")
subdirs("ddbms")
subdirs("doc")
subdirs("fmt")
subdirs("sched")
subdirs("present")
subdirs("player")
subdirs("pipeline")
subdirs("news")
subdirs("gen")
