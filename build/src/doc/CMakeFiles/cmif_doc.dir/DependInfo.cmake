
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/doc/builder.cc" "src/doc/CMakeFiles/cmif_doc.dir/builder.cc.o" "gcc" "src/doc/CMakeFiles/cmif_doc.dir/builder.cc.o.d"
  "/root/repo/src/doc/channel.cc" "src/doc/CMakeFiles/cmif_doc.dir/channel.cc.o" "gcc" "src/doc/CMakeFiles/cmif_doc.dir/channel.cc.o.d"
  "/root/repo/src/doc/document.cc" "src/doc/CMakeFiles/cmif_doc.dir/document.cc.o" "gcc" "src/doc/CMakeFiles/cmif_doc.dir/document.cc.o.d"
  "/root/repo/src/doc/edit.cc" "src/doc/CMakeFiles/cmif_doc.dir/edit.cc.o" "gcc" "src/doc/CMakeFiles/cmif_doc.dir/edit.cc.o.d"
  "/root/repo/src/doc/event.cc" "src/doc/CMakeFiles/cmif_doc.dir/event.cc.o" "gcc" "src/doc/CMakeFiles/cmif_doc.dir/event.cc.o.d"
  "/root/repo/src/doc/node.cc" "src/doc/CMakeFiles/cmif_doc.dir/node.cc.o" "gcc" "src/doc/CMakeFiles/cmif_doc.dir/node.cc.o.d"
  "/root/repo/src/doc/path.cc" "src/doc/CMakeFiles/cmif_doc.dir/path.cc.o" "gcc" "src/doc/CMakeFiles/cmif_doc.dir/path.cc.o.d"
  "/root/repo/src/doc/stats.cc" "src/doc/CMakeFiles/cmif_doc.dir/stats.cc.o" "gcc" "src/doc/CMakeFiles/cmif_doc.dir/stats.cc.o.d"
  "/root/repo/src/doc/sync_arc.cc" "src/doc/CMakeFiles/cmif_doc.dir/sync_arc.cc.o" "gcc" "src/doc/CMakeFiles/cmif_doc.dir/sync_arc.cc.o.d"
  "/root/repo/src/doc/validate.cc" "src/doc/CMakeFiles/cmif_doc.dir/validate.cc.o" "gcc" "src/doc/CMakeFiles/cmif_doc.dir/validate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/attr/CMakeFiles/cmif_attr.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/cmif_media.dir/DependInfo.cmake"
  "/root/repo/build/src/ddbms/CMakeFiles/cmif_ddbms.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/cmif_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
