file(REMOVE_RECURSE
  "libcmif_doc.a"
)
