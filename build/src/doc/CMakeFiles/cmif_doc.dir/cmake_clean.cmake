file(REMOVE_RECURSE
  "CMakeFiles/cmif_doc.dir/builder.cc.o"
  "CMakeFiles/cmif_doc.dir/builder.cc.o.d"
  "CMakeFiles/cmif_doc.dir/channel.cc.o"
  "CMakeFiles/cmif_doc.dir/channel.cc.o.d"
  "CMakeFiles/cmif_doc.dir/document.cc.o"
  "CMakeFiles/cmif_doc.dir/document.cc.o.d"
  "CMakeFiles/cmif_doc.dir/edit.cc.o"
  "CMakeFiles/cmif_doc.dir/edit.cc.o.d"
  "CMakeFiles/cmif_doc.dir/event.cc.o"
  "CMakeFiles/cmif_doc.dir/event.cc.o.d"
  "CMakeFiles/cmif_doc.dir/node.cc.o"
  "CMakeFiles/cmif_doc.dir/node.cc.o.d"
  "CMakeFiles/cmif_doc.dir/path.cc.o"
  "CMakeFiles/cmif_doc.dir/path.cc.o.d"
  "CMakeFiles/cmif_doc.dir/stats.cc.o"
  "CMakeFiles/cmif_doc.dir/stats.cc.o.d"
  "CMakeFiles/cmif_doc.dir/sync_arc.cc.o"
  "CMakeFiles/cmif_doc.dir/sync_arc.cc.o.d"
  "CMakeFiles/cmif_doc.dir/validate.cc.o"
  "CMakeFiles/cmif_doc.dir/validate.cc.o.d"
  "libcmif_doc.a"
  "libcmif_doc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmif_doc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
