# Empty compiler generated dependencies file for cmif_doc.
# This may be replaced when dependencies are built.
