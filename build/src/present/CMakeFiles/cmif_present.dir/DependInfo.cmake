
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/present/capability.cc" "src/present/CMakeFiles/cmif_present.dir/capability.cc.o" "gcc" "src/present/CMakeFiles/cmif_present.dir/capability.cc.o.d"
  "/root/repo/src/present/compositor.cc" "src/present/CMakeFiles/cmif_present.dir/compositor.cc.o" "gcc" "src/present/CMakeFiles/cmif_present.dir/compositor.cc.o.d"
  "/root/repo/src/present/filter.cc" "src/present/CMakeFiles/cmif_present.dir/filter.cc.o" "gcc" "src/present/CMakeFiles/cmif_present.dir/filter.cc.o.d"
  "/root/repo/src/present/presentation_map.cc" "src/present/CMakeFiles/cmif_present.dir/presentation_map.cc.o" "gcc" "src/present/CMakeFiles/cmif_present.dir/presentation_map.cc.o.d"
  "/root/repo/src/present/virtual_env.cc" "src/present/CMakeFiles/cmif_present.dir/virtual_env.cc.o" "gcc" "src/present/CMakeFiles/cmif_present.dir/virtual_env.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/doc/CMakeFiles/cmif_doc.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/cmif_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/fmt/CMakeFiles/cmif_fmt.dir/DependInfo.cmake"
  "/root/repo/build/src/ddbms/CMakeFiles/cmif_ddbms.dir/DependInfo.cmake"
  "/root/repo/build/src/attr/CMakeFiles/cmif_attr.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/cmif_media.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/cmif_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
