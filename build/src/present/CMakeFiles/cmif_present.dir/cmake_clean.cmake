file(REMOVE_RECURSE
  "CMakeFiles/cmif_present.dir/capability.cc.o"
  "CMakeFiles/cmif_present.dir/capability.cc.o.d"
  "CMakeFiles/cmif_present.dir/compositor.cc.o"
  "CMakeFiles/cmif_present.dir/compositor.cc.o.d"
  "CMakeFiles/cmif_present.dir/filter.cc.o"
  "CMakeFiles/cmif_present.dir/filter.cc.o.d"
  "CMakeFiles/cmif_present.dir/presentation_map.cc.o"
  "CMakeFiles/cmif_present.dir/presentation_map.cc.o.d"
  "CMakeFiles/cmif_present.dir/virtual_env.cc.o"
  "CMakeFiles/cmif_present.dir/virtual_env.cc.o.d"
  "libcmif_present.a"
  "libcmif_present.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmif_present.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
