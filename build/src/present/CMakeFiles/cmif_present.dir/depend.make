# Empty dependencies file for cmif_present.
# This may be replaced when dependencies are built.
