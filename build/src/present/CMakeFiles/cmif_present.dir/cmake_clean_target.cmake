file(REMOVE_RECURSE
  "libcmif_present.a"
)
