file(REMOVE_RECURSE
  "libcmif_player.a"
)
