# Empty dependencies file for cmif_player.
# This may be replaced when dependencies are built.
