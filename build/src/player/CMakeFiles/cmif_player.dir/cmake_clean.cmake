file(REMOVE_RECURSE
  "CMakeFiles/cmif_player.dir/clock.cc.o"
  "CMakeFiles/cmif_player.dir/clock.cc.o.d"
  "CMakeFiles/cmif_player.dir/device.cc.o"
  "CMakeFiles/cmif_player.dir/device.cc.o.d"
  "CMakeFiles/cmif_player.dir/engine.cc.o"
  "CMakeFiles/cmif_player.dir/engine.cc.o.d"
  "CMakeFiles/cmif_player.dir/trace.cc.o"
  "CMakeFiles/cmif_player.dir/trace.cc.o.d"
  "libcmif_player.a"
  "libcmif_player.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmif_player.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
