file(REMOVE_RECURSE
  "CMakeFiles/cmif_gen.dir/docgen.cc.o"
  "CMakeFiles/cmif_gen.dir/docgen.cc.o.d"
  "libcmif_gen.a"
  "libcmif_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmif_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
