file(REMOVE_RECURSE
  "libcmif_gen.a"
)
