# Empty compiler generated dependencies file for cmif_gen.
# This may be replaced when dependencies are built.
