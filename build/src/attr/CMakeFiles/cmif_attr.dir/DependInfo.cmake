
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attr/attr_list.cc" "src/attr/CMakeFiles/cmif_attr.dir/attr_list.cc.o" "gcc" "src/attr/CMakeFiles/cmif_attr.dir/attr_list.cc.o.d"
  "/root/repo/src/attr/inherit.cc" "src/attr/CMakeFiles/cmif_attr.dir/inherit.cc.o" "gcc" "src/attr/CMakeFiles/cmif_attr.dir/inherit.cc.o.d"
  "/root/repo/src/attr/parse.cc" "src/attr/CMakeFiles/cmif_attr.dir/parse.cc.o" "gcc" "src/attr/CMakeFiles/cmif_attr.dir/parse.cc.o.d"
  "/root/repo/src/attr/registry.cc" "src/attr/CMakeFiles/cmif_attr.dir/registry.cc.o" "gcc" "src/attr/CMakeFiles/cmif_attr.dir/registry.cc.o.d"
  "/root/repo/src/attr/style.cc" "src/attr/CMakeFiles/cmif_attr.dir/style.cc.o" "gcc" "src/attr/CMakeFiles/cmif_attr.dir/style.cc.o.d"
  "/root/repo/src/attr/value.cc" "src/attr/CMakeFiles/cmif_attr.dir/value.cc.o" "gcc" "src/attr/CMakeFiles/cmif_attr.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/cmif_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
