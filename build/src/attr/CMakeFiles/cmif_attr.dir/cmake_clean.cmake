file(REMOVE_RECURSE
  "CMakeFiles/cmif_attr.dir/attr_list.cc.o"
  "CMakeFiles/cmif_attr.dir/attr_list.cc.o.d"
  "CMakeFiles/cmif_attr.dir/inherit.cc.o"
  "CMakeFiles/cmif_attr.dir/inherit.cc.o.d"
  "CMakeFiles/cmif_attr.dir/parse.cc.o"
  "CMakeFiles/cmif_attr.dir/parse.cc.o.d"
  "CMakeFiles/cmif_attr.dir/registry.cc.o"
  "CMakeFiles/cmif_attr.dir/registry.cc.o.d"
  "CMakeFiles/cmif_attr.dir/style.cc.o"
  "CMakeFiles/cmif_attr.dir/style.cc.o.d"
  "CMakeFiles/cmif_attr.dir/value.cc.o"
  "CMakeFiles/cmif_attr.dir/value.cc.o.d"
  "libcmif_attr.a"
  "libcmif_attr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmif_attr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
