file(REMOVE_RECURSE
  "libcmif_attr.a"
)
