# Empty compiler generated dependencies file for cmif_attr.
# This may be replaced when dependencies are built.
