file(REMOVE_RECURSE
  "libcmif_base.a"
)
