file(REMOVE_RECURSE
  "CMakeFiles/cmif_base.dir/lexer.cc.o"
  "CMakeFiles/cmif_base.dir/lexer.cc.o.d"
  "CMakeFiles/cmif_base.dir/logging.cc.o"
  "CMakeFiles/cmif_base.dir/logging.cc.o.d"
  "CMakeFiles/cmif_base.dir/media_time.cc.o"
  "CMakeFiles/cmif_base.dir/media_time.cc.o.d"
  "CMakeFiles/cmif_base.dir/random.cc.o"
  "CMakeFiles/cmif_base.dir/random.cc.o.d"
  "CMakeFiles/cmif_base.dir/status.cc.o"
  "CMakeFiles/cmif_base.dir/status.cc.o.d"
  "CMakeFiles/cmif_base.dir/string_util.cc.o"
  "CMakeFiles/cmif_base.dir/string_util.cc.o.d"
  "libcmif_base.a"
  "libcmif_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmif_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
