# Empty dependencies file for cmif_base.
# This may be replaced when dependencies are built.
