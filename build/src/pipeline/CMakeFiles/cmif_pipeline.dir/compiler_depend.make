# Empty compiler generated dependencies file for cmif_pipeline.
# This may be replaced when dependencies are built.
