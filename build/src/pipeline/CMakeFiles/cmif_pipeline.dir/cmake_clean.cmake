file(REMOVE_RECURSE
  "CMakeFiles/cmif_pipeline.dir/capture.cc.o"
  "CMakeFiles/cmif_pipeline.dir/capture.cc.o.d"
  "CMakeFiles/cmif_pipeline.dir/pipeline.cc.o"
  "CMakeFiles/cmif_pipeline.dir/pipeline.cc.o.d"
  "libcmif_pipeline.a"
  "libcmif_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmif_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
