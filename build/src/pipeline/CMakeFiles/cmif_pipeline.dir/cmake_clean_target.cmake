file(REMOVE_RECURSE
  "libcmif_pipeline.a"
)
