file(REMOVE_RECURSE
  "libcmif_media.a"
)
