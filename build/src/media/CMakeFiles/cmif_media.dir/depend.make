# Empty dependencies file for cmif_media.
# This may be replaced when dependencies are built.
