
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/media/audio.cc" "src/media/CMakeFiles/cmif_media.dir/audio.cc.o" "gcc" "src/media/CMakeFiles/cmif_media.dir/audio.cc.o.d"
  "/root/repo/src/media/data_block.cc" "src/media/CMakeFiles/cmif_media.dir/data_block.cc.o" "gcc" "src/media/CMakeFiles/cmif_media.dir/data_block.cc.o.d"
  "/root/repo/src/media/font.cc" "src/media/CMakeFiles/cmif_media.dir/font.cc.o" "gcc" "src/media/CMakeFiles/cmif_media.dir/font.cc.o.d"
  "/root/repo/src/media/media_type.cc" "src/media/CMakeFiles/cmif_media.dir/media_type.cc.o" "gcc" "src/media/CMakeFiles/cmif_media.dir/media_type.cc.o.d"
  "/root/repo/src/media/raster.cc" "src/media/CMakeFiles/cmif_media.dir/raster.cc.o" "gcc" "src/media/CMakeFiles/cmif_media.dir/raster.cc.o.d"
  "/root/repo/src/media/text.cc" "src/media/CMakeFiles/cmif_media.dir/text.cc.o" "gcc" "src/media/CMakeFiles/cmif_media.dir/text.cc.o.d"
  "/root/repo/src/media/video.cc" "src/media/CMakeFiles/cmif_media.dir/video.cc.o" "gcc" "src/media/CMakeFiles/cmif_media.dir/video.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/cmif_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
