file(REMOVE_RECURSE
  "CMakeFiles/cmif_media.dir/audio.cc.o"
  "CMakeFiles/cmif_media.dir/audio.cc.o.d"
  "CMakeFiles/cmif_media.dir/data_block.cc.o"
  "CMakeFiles/cmif_media.dir/data_block.cc.o.d"
  "CMakeFiles/cmif_media.dir/font.cc.o"
  "CMakeFiles/cmif_media.dir/font.cc.o.d"
  "CMakeFiles/cmif_media.dir/media_type.cc.o"
  "CMakeFiles/cmif_media.dir/media_type.cc.o.d"
  "CMakeFiles/cmif_media.dir/raster.cc.o"
  "CMakeFiles/cmif_media.dir/raster.cc.o.d"
  "CMakeFiles/cmif_media.dir/text.cc.o"
  "CMakeFiles/cmif_media.dir/text.cc.o.d"
  "CMakeFiles/cmif_media.dir/video.cc.o"
  "CMakeFiles/cmif_media.dir/video.cc.o.d"
  "libcmif_media.a"
  "libcmif_media.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmif_media.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
