file(REMOVE_RECURSE
  "libcmif_sched.a"
)
