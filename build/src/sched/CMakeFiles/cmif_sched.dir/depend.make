# Empty dependencies file for cmif_sched.
# This may be replaced when dependencies are built.
