file(REMOVE_RECURSE
  "CMakeFiles/cmif_sched.dir/conflict.cc.o"
  "CMakeFiles/cmif_sched.dir/conflict.cc.o.d"
  "CMakeFiles/cmif_sched.dir/navigate.cc.o"
  "CMakeFiles/cmif_sched.dir/navigate.cc.o.d"
  "CMakeFiles/cmif_sched.dir/schedule.cc.o"
  "CMakeFiles/cmif_sched.dir/schedule.cc.o.d"
  "CMakeFiles/cmif_sched.dir/solver.cc.o"
  "CMakeFiles/cmif_sched.dir/solver.cc.o.d"
  "CMakeFiles/cmif_sched.dir/timegraph.cc.o"
  "CMakeFiles/cmif_sched.dir/timegraph.cc.o.d"
  "libcmif_sched.a"
  "libcmif_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmif_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
