file(REMOVE_RECURSE
  "libcmif_fmt.a"
)
