# Empty dependencies file for cmif_fmt.
# This may be replaced when dependencies are built.
