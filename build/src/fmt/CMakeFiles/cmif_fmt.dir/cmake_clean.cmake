file(REMOVE_RECURSE
  "CMakeFiles/cmif_fmt.dir/parser.cc.o"
  "CMakeFiles/cmif_fmt.dir/parser.cc.o.d"
  "CMakeFiles/cmif_fmt.dir/tree_view.cc.o"
  "CMakeFiles/cmif_fmt.dir/tree_view.cc.o.d"
  "CMakeFiles/cmif_fmt.dir/writer.cc.o"
  "CMakeFiles/cmif_fmt.dir/writer.cc.o.d"
  "libcmif_fmt.a"
  "libcmif_fmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmif_fmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
