
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ddbms/descriptor.cc" "src/ddbms/CMakeFiles/cmif_ddbms.dir/descriptor.cc.o" "gcc" "src/ddbms/CMakeFiles/cmif_ddbms.dir/descriptor.cc.o.d"
  "/root/repo/src/ddbms/persist.cc" "src/ddbms/CMakeFiles/cmif_ddbms.dir/persist.cc.o" "gcc" "src/ddbms/CMakeFiles/cmif_ddbms.dir/persist.cc.o.d"
  "/root/repo/src/ddbms/query.cc" "src/ddbms/CMakeFiles/cmif_ddbms.dir/query.cc.o" "gcc" "src/ddbms/CMakeFiles/cmif_ddbms.dir/query.cc.o.d"
  "/root/repo/src/ddbms/store.cc" "src/ddbms/CMakeFiles/cmif_ddbms.dir/store.cc.o" "gcc" "src/ddbms/CMakeFiles/cmif_ddbms.dir/store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/attr/CMakeFiles/cmif_attr.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/cmif_media.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/cmif_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
