# Empty compiler generated dependencies file for cmif_ddbms.
# This may be replaced when dependencies are built.
