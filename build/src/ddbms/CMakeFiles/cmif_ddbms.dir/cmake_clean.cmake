file(REMOVE_RECURSE
  "CMakeFiles/cmif_ddbms.dir/descriptor.cc.o"
  "CMakeFiles/cmif_ddbms.dir/descriptor.cc.o.d"
  "CMakeFiles/cmif_ddbms.dir/persist.cc.o"
  "CMakeFiles/cmif_ddbms.dir/persist.cc.o.d"
  "CMakeFiles/cmif_ddbms.dir/query.cc.o"
  "CMakeFiles/cmif_ddbms.dir/query.cc.o.d"
  "CMakeFiles/cmif_ddbms.dir/store.cc.o"
  "CMakeFiles/cmif_ddbms.dir/store.cc.o.d"
  "libcmif_ddbms.a"
  "libcmif_ddbms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmif_ddbms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
