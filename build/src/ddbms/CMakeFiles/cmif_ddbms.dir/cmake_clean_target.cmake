file(REMOVE_RECURSE
  "libcmif_ddbms.a"
)
