file(REMOVE_RECURSE
  "CMakeFiles/cmif_news.dir/evening_news.cc.o"
  "CMakeFiles/cmif_news.dir/evening_news.cc.o.d"
  "libcmif_news.a"
  "libcmif_news.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmif_news.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
