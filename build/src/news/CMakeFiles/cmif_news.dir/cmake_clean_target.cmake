file(REMOVE_RECURSE
  "libcmif_news.a"
)
