# Empty compiler generated dependencies file for cmif_news.
# This may be replaced when dependencies are built.
