# Empty dependencies file for cmif_tool.
# This may be replaced when dependencies are built.
