file(REMOVE_RECURSE
  "CMakeFiles/cmif_tool.dir/cmif_tool.cc.o"
  "CMakeFiles/cmif_tool.dir/cmif_tool.cc.o.d"
  "cmif_tool"
  "cmif_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmif_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
