// Figure 2 — data blocks, data descriptors, event descriptors, and the
// optional DDBMS. Measures attribute-based lookup — "a database management
// system may be used to locate and access various data blocks based on the
// attributes in the data descriptors" — with an index versus the linear-scan
// baseline. Expected shape: indexed equality stays ~flat as the store grows;
// the scan grows linearly, so the gap widens by orders of magnitude at 10^5.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/bench_json.h"
#include "src/base/string_util.h"
#include "src/ddbms/store.h"

namespace cmif {
namespace {

// A store of n descriptors over four media with numeric sizes and editions.
DescriptorStore MakeStore(std::int64_t n, bool with_index) {
  DescriptorStore store;
  static constexpr const char* kMedia[] = {"text", "audio", "video", "graphic"};
  for (std::int64_t i = 0; i < n; ++i) {
    AttrList attrs;
    attrs.Set(std::string(kDescMedium), AttrValue::Id(kMedia[i % 4]));
    attrs.Set(std::string(kDescBytes), AttrValue::Number(i * 37 % 100000));
    attrs.Set("edition", AttrValue::Number(i % 100));
    if (i % 3 == 0) {
      attrs.Set(std::string(kDescKeywords), AttrValue::String("stolen painting museum"));
    }
    (void)store.Add(DataDescriptor(StrFormat("d%06lld", static_cast<long long>(i)), attrs));
  }
  if (with_index) {
    store.CreateIndex(std::string(kDescMedium));
    store.CreateIndex("edition");
    store.CreateIndex(std::string(kDescBytes));
  }
  return store;
}

void PrintFigure(const std::string& bench_json) {
  std::cout << "==== Figure 2: descriptor lookup, index vs scan ====\n";
  std::cout << "store size   query                       index-cand   scan-cand\n";
  std::size_t last_indexed = 0;
  std::size_t last_scanned = 0;
  std::size_t last_hits = 0;
  for (std::int64_t n : {100, 1000, 10000, 100000}) {
    DescriptorStore store = MakeStore(n, true);
    auto query = ParseQuery("medium=video & edition=7");
    QueryStats indexed;
    QueryStats scanned;
    auto a = store.Execute(*query, &indexed);
    auto b = store.ExecuteScan(*query, &scanned);
    std::cout << StrFormat("%-12lld medium=video & edition=7    %-12zu %zu  (%zu hits)\n",
                           static_cast<long long>(n), indexed.candidates_examined,
                           scanned.candidates_examined, a.size());
    if (a.size() != b.size()) {
      std::cerr << "MISMATCH\n";
    }
    last_indexed = indexed.candidates_examined;
    last_scanned = scanned.candidates_examined;
    last_hits = a.size();
  }
  bench::AppendBenchJson(bench_json, "fig2_ddbms",
                         {{"store_size", 100000},
                          {"indexed_candidates", static_cast<double>(last_indexed)},
                          {"scan_candidates", static_cast<double>(last_scanned)},
                          {"hits", static_cast<double>(last_hits)}});
}

void BM_IndexedEq(benchmark::State& state) {
  DescriptorStore store = MakeStore(state.range(0), true);
  auto query = ParseQuery("medium=video & edition=7");
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Execute(*query));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IndexedEq)->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_ScanEq(benchmark::State& state) {
  DescriptorStore store = MakeStore(state.range(0), false);
  auto query = ParseQuery("medium=video & edition=7");
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.ExecuteScan(*query));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScanEq)->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_IndexedRange(benchmark::State& state) {
  DescriptorStore store = MakeStore(state.range(0), true);
  auto query = ParseQuery("bytes:[100,2000]");
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Execute(*query));
  }
}
BENCHMARK(BM_IndexedRange)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_ScanRange(benchmark::State& state) {
  DescriptorStore store = MakeStore(state.range(0), false);
  auto query = ParseQuery("bytes:[100,2000]");
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.ExecuteScan(*query));
  }
}
BENCHMARK(BM_ScanRange)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_GetById(benchmark::State& state) {
  DescriptorStore store = MakeStore(state.range(0), false);
  std::int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store.Get(StrFormat("d%06lld", static_cast<long long>(i++ % state.range(0)))));
  }
}
BENCHMARK(BM_GetById)->Arg(1000)->Arg(100000);

void BM_AddWithIndexes(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    DescriptorStore store = MakeStore(1000, true);
    state.ResumeTiming();
    for (int i = 0; i < 100; ++i) {
      AttrList attrs;
      attrs.Set(std::string(kDescMedium), AttrValue::Id("video"));
      (void)store.Add(DataDescriptor(StrFormat("new%d", i), attrs));
    }
    benchmark::DoNotOptimize(store);
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_AddWithIndexes);

}  // namespace
}  // namespace cmif

int main(int argc, char** argv) {
  std::string bench_json = cmif::bench::ExtractBenchJsonPath(&argc, argv);
  cmif::PrintFigure(bench_json);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
