// Figure 6 — "CMIF node general formats": seqnode, parnode, immnode and
// extnode, each an attribute list plus children / data / a descriptor
// pointer. Regenerates the four formats and benchmarks per-kind node
// construction, attribute attachment and serialization cost.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/bench_json.h"
#include "src/attr/registry.h"
#include "src/fmt/writer.h"

namespace cmif {
namespace {

std::unique_ptr<Node> SampleNode(NodeKind kind) {
  auto node = std::make_unique<Node>(kind);
  node->set_name("sample");
  switch (kind) {
    case NodeKind::kSeq:
    case NodeKind::kPar:
      for (int i = 0; i < 2; ++i) {
        auto child = std::make_unique<Node>(NodeKind::kImm);
        child->set_immediate_data(DataBlock::FromText(TextBlock("x", {})));
        (void)node->AddChild(std::move(child));
      }
      break;
    case NodeKind::kExt:
      node->attrs().Set(std::string(kAttrFile), AttrValue::String("descriptor-id"));
      node->attrs().Set(std::string(kAttrChannel), AttrValue::Id("video"));
      break;
    case NodeKind::kImm:
      node->set_immediate_data(DataBlock::FromText(TextBlock("immediate data", {})));
      break;
  }
  return node;
}

void PrintFigure(const std::string& bench_json) {
  std::cout << "==== Figure 6: the four node formats ====\n";
  std::vector<std::pair<std::string, double>> fields;
  for (NodeKind kind : {NodeKind::kSeq, NodeKind::kPar, NodeKind::kImm, NodeKind::kExt}) {
    auto node = SampleNode(kind);
    auto text = WriteNode(*node, WriteOptions{.indent_width = 2, .header_comment = false});
    std::cout << "-- " << NodeKindName(kind) << "node --\n" << *text;
    fields.emplace_back(std::string(NodeKindName(kind)) + "_bytes",
                        static_cast<double>(text->size()));
  }
  bench::AppendBenchJson(bench_json, "fig6_nodes", fields);
}

void BM_NodeConstruct(benchmark::State& state) {
  NodeKind kind = static_cast<NodeKind>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SampleNode(kind));
  }
  state.SetLabel(std::string(NodeKindName(kind)));
}
BENCHMARK(BM_NodeConstruct)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_NodeSerialize(benchmark::State& state) {
  NodeKind kind = static_cast<NodeKind>(state.range(0));
  auto node = SampleNode(kind);
  for (auto _ : state) {
    benchmark::DoNotOptimize(WriteNode(*node));
  }
  state.SetLabel(std::string(NodeKindName(kind)));
}
BENCHMARK(BM_NodeSerialize)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_AttrAttach(benchmark::State& state) {
  for (auto _ : state) {
    Node node(NodeKind::kExt);
    for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
      node.attrs().Set("attr" + std::to_string(i), AttrValue::Number(i));
    }
    benchmark::DoNotOptimize(node);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AttrAttach)->Arg(4)->Arg(16)->Arg(64);

void BM_AttrLookup(benchmark::State& state) {
  Node node(NodeKind::kExt);
  for (int i = 0; i < 16; ++i) {
    node.attrs().Set("attr" + std::to_string(i), AttrValue::Number(i));
  }
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(node.attrs().Find("attr" + std::to_string(i++ % 16)));
  }
}
BENCHMARK(BM_AttrLookup);

void BM_AddChildren(benchmark::State& state) {
  for (auto _ : state) {
    Node parent(NodeKind::kSeq);
    for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
      benchmark::DoNotOptimize(parent.AddChild(NodeKind::kExt));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AddChildren)->Arg(10)->Arg(100);

void BM_ResolvePath(benchmark::State& state) {
  // A deep chain of named seq nodes; resolve an absolute path to the bottom.
  Node root(NodeKind::kSeq);
  root.set_name("root");
  Node* cursor = &root;
  std::string path_text;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    cursor = *cursor->AddChild(NodeKind::kSeq);
    cursor->set_name("n" + std::to_string(i));
    path_text += (i ? "/n" : "n") + std::to_string(i);
  }
  NodePath path = *NodePath::Parse(path_text);
  for (auto _ : state) {
    benchmark::DoNotOptimize(root.Resolve(path));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ResolvePath)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
}  // namespace cmif

int main(int argc, char** argv) {
  std::string bench_json = cmif::bench::ExtractBenchJsonPath(&argc, argv);
  cmif::PrintFigure(bench_json);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
