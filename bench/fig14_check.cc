// Figure 14 — differential conformance throughput. How many generated
// documents per second the full differential driver sustains (oracle solve,
// relaxation replay, serialize/parse and wire round trips, player-vs-
// simulator comparison), and the price of the deliberately naive reference
// implementations: oracle-vs-production solver time on the same graphs.
// Expected shape: the driver clears hundreds of documents/sec — cheap enough
// to run thousands of seeds in CI — and the O(V*E) oracle trails SPFA by a
// growing factor as documents grow.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/bench_json.h"
#include "src/base/string_util.h"
#include "src/check/differential.h"
#include "src/check/oracle.h"
#include "src/doc/event.h"
#include "src/gen/docgen.h"
#include "src/sched/solver.h"

namespace cmif {
namespace {

check::CheckReport MustRun(const check::CheckOptions& options) {
  auto report = check::RunDifferentialCheck(options);
  if (!report.ok()) {
    std::cerr << report.status() << "\n";
    std::abort();
  }
  if (!report->ok()) {
    std::cerr << report->Summary();
    std::abort();
  }
  return std::move(report).value();
}

TimeGraph GraphForSeed(std::uint64_t seed, int leaves) {
  GenOptions options = check::PathologicalGenOptions(seed, leaves);
  auto workload = GenerateRandomDocument(options);
  if (!workload.ok()) {
    std::cerr << workload.status() << "\n";
    std::abort();
  }
  auto events = CollectEvents(workload->document, &workload->store);
  auto graph = TimeGraph::Build(workload->document, *events);
  if (!graph.ok()) {
    std::cerr << graph.status() << "\n";
    std::abort();
  }
  return std::move(graph).value();
}

void PrintFigure(const std::string& bench_json) {
  std::cout << "==== Figure 14: differential conformance throughput ====\n";

  check::CheckOptions options;
  options.base_seed = 1;
  options.count = 400;
  options.target_leaves = 12;
  options.shrink = false;  // a clean run never shrinks; keep timing honest
  double driver_ms = 0;
  check::CheckReport report;
  driver_ms = bench::MeanMillis(1, [&] { report = MustRun(options); });
  double docs_per_sec = 1000.0 * static_cast<double>(report.documents) / driver_ms;
  std::cout << StrFormat(
      "differential driver: %zu documents in %.1f ms (%.0f docs/sec)\n"
      "  verdicts: %zu feasible, %zu relaxed, %zu infeasible; %zu oracle sweeps\n",
      report.documents, driver_ms, docs_per_sec, report.feasible, report.relaxed,
      report.infeasible, report.oracle_passes);

  // Oracle-vs-production ratio on a fixed graph population.
  std::vector<TimeGraph> graphs;
  for (std::uint64_t seed = 100; seed < 116; ++seed) {
    graphs.push_back(GraphForSeed(seed, 24));
  }
  double oracle_ms = bench::MeanMillis(10, [&] {
    for (const TimeGraph& graph : graphs) {
      benchmark::DoNotOptimize(check::OracleSolve(graph));
    }
  });
  double spfa_ms = bench::MeanMillis(10, [&] {
    for (const TimeGraph& graph : graphs) {
      benchmark::DoNotOptimize(SolveStn(graph, SolverAlgorithm::kSpfa));
    }
  });
  double ratio = spfa_ms > 0 ? oracle_ms / spfa_ms : 0;
  std::cout << StrFormat(
      "solver ratio over %zu graphs: oracle %.2f ms vs spfa %.2f ms (%.1fx slower)\n",
      graphs.size(), oracle_ms, spfa_ms, ratio);

  bench::AppendBenchJson(bench_json, "fig14_check",
                         {{"documents", static_cast<double>(report.documents)},
                          {"driver_ms", driver_ms},
                          {"docs_per_sec", docs_per_sec},
                          {"feasible", static_cast<double>(report.feasible)},
                          {"relaxed", static_cast<double>(report.relaxed)},
                          {"infeasible", static_cast<double>(report.infeasible)},
                          {"oracle_ms", oracle_ms},
                          {"spfa_ms", spfa_ms},
                          {"oracle_over_spfa", ratio}});
}

void BM_DifferentialDocument(benchmark::State& state) {
  // One full differential check per iteration, sweeping document size.
  std::uint64_t seed = 1;
  for (auto _ : state) {
    GenOptions options =
        check::PathologicalGenOptions(seed++, static_cast<int>(state.range(0)));
    auto workload = GenerateRandomDocument(options);
    if (!workload.ok()) {
      state.SkipWithError("generator failed");
      return;
    }
    check::CheckCounters counters;
    Status verdict = check::CheckDocument(workload->document, &workload->store, "bench",
                                          WorkstationProfile(), &counters);
    if (!verdict.ok()) {
      state.SkipWithError("differential divergence");
      return;
    }
    benchmark::DoNotOptimize(counters);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DifferentialDocument)->Arg(8)->Arg(16)->Arg(32);

void BM_OracleSolve(benchmark::State& state) {
  TimeGraph graph = GraphForSeed(7, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(check::OracleSolve(graph));
  }
  state.SetLabel(StrFormat("%zu constraints", graph.constraints().size()));
}
BENCHMARK(BM_OracleSolve)->Arg(16)->Arg(64)->Arg(256);

void BM_ProductionSolve(benchmark::State& state) {
  TimeGraph graph = GraphForSeed(7, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveStn(graph, SolverAlgorithm::kSpfa));
  }
  state.SetLabel(StrFormat("%zu constraints", graph.constraints().size()));
}
BENCHMARK(BM_ProductionSolve)->Arg(16)->Arg(64)->Arg(256);

}  // namespace
}  // namespace cmif

int main(int argc, char** argv) {
  std::string bench_json = cmif::bench::ExtractBenchJsonPath(&argc, argv);
  cmif::PrintFigure(bench_json);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
