// Figure 3 — "Document structure components": channels carrying event
// descriptors tied by synchronization arcs over time. Regenerates the
// schematic from a random document and measures timeline computation as the
// number of channels and events grows. Expected shape: schedule time grows
// roughly with points x constraints (Bellman-Ford), staying interactive well
// past thousand-event documents.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/bench_json.h"
#include "src/fmt/tree_view.h"
#include "src/gen/docgen.h"
#include "src/sched/conflict.h"

namespace cmif {
namespace {

GenWorkload MakeDoc(int leaves, int channels, std::uint64_t seed = 11) {
  GenOptions options;
  options.target_leaves = leaves;
  options.channels = channels;
  options.arcs_per_composite = 0.6;
  options.seed = seed;
  auto workload = GenerateRandomDocument(options);
  if (!workload.ok()) {
    std::cerr << workload.status() << "\n";
    std::abort();
  }
  return std::move(workload).value();
}

void PrintFigure(const std::string& bench_json) {
  GenWorkload workload = MakeDoc(14, 4);
  auto events = CollectEvents(workload.document, &workload.store);
  if (!events.ok()) {
    std::cerr << events.status() << "\n";
    return;
  }
  auto result = ComputeSchedule(workload.document, *events);
  if (!result.ok() || !result->feasible) {
    std::cerr << "scheduling failed\n";
    return;
  }
  std::cout << "==== Figure 3: channels, event descriptors and arcs over time ====\n"
            << TimelineView(result->schedule.ToTimelineRows(workload.document))
            << "\narc table (Figure 9 form):\n"
            << ArcTableView(workload.document.root());

  GenWorkload big = MakeDoc(400, 5);
  auto big_events = CollectEvents(big.document, &big.store);
  double schedule_ms =
      bench::MeanMillis(10, [&] { (void)ComputeSchedule(big.document, *big_events); });
  bench::AppendBenchJson(bench_json, "fig3_timeline",
                         {{"events", static_cast<double>(big_events->size())},
                          {"schedule_ms", schedule_ms}});
}

void BM_ComputeTimeline(benchmark::State& state) {
  GenWorkload workload = MakeDoc(static_cast<int>(state.range(0)), 5);
  auto events = CollectEvents(workload.document, &workload.store);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeSchedule(workload.document, *events));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(events->size()));
}
BENCHMARK(BM_ComputeTimeline)->Arg(25)->Arg(50)->Arg(100)->Arg(200)->Arg(400);

void BM_ChannelSweep(benchmark::State& state) {
  // Fixed 120 events spread over a varying number of channels: more
  // channels = fewer per-channel ordering constraints, more parallelism.
  GenWorkload workload = MakeDoc(120, static_cast<int>(state.range(0)));
  auto events = CollectEvents(workload.document, &workload.store);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeSchedule(workload.document, *events));
  }
}
BENCHMARK(BM_ChannelSweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_CollectEvents(benchmark::State& state) {
  GenWorkload workload = MakeDoc(static_cast<int>(state.range(0)), 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CollectEvents(workload.document, &workload.store));
  }
}
BENCHMARK(BM_CollectEvents)->Arg(50)->Arg(200)->Arg(400);

void BM_RenderTimelineView(benchmark::State& state) {
  GenWorkload workload = MakeDoc(100, 5);
  auto events = CollectEvents(workload.document, &workload.store);
  auto result = ComputeSchedule(workload.document, *events);
  auto rows = result->schedule.ToTimelineRows(workload.document);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TimelineView(rows));
  }
}
BENCHMARK(BM_RenderTimelineView);

}  // namespace
}  // namespace cmif

int main(int argc, char** argv) {
  std::string bench_json = cmif::bench::ExtractBenchJsonPath(&argc, argv);
  cmif::PrintFigure(bench_json);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
