// Figure 10 — "News report fragment structure": the section-5.3.4 worked
// example with its explicit arcs (offset caption->graphic, the freeze-frame
// caption->video arc, may-synchronized labels). Regenerates the fragment's
// timeline and measures playback across capability profiles: freeze counts,
// frozen time and per-channel jitter. Expected shape: the workstation plays
// with zero freezes; the personal system freezes a few times; the portable
// system freezes on most transitions — but relative (must) synchronization
// survives on all three, at the cost of presentation time.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/bench_json.h"
#include "src/base/string_util.h"
#include "src/fmt/tree_view.h"
#include "src/news/evening_news.h"
#include "src/player/engine.h"
#include "src/sched/conflict.h"
#include "src/sched/navigate.h"

namespace cmif {
namespace {

struct Fragment {
  NewsWorkload workload;
  std::vector<EventDescriptor> events;
  Schedule schedule;
};

Fragment& SharedFragment() {
  static Fragment* const kFragment = [] {
    auto* fragment = new Fragment();
    NewsOptions options;
    options.stories = 1;  // the Figure-10 fragment is one story
    auto workload = BuildEveningNews(options);
    if (!workload.ok()) {
      std::abort();
    }
    fragment->workload = std::move(workload).value();
    auto events = CollectEvents(fragment->workload.document, &fragment->workload.store);
    if (!events.ok()) {
      std::abort();
    }
    fragment->events = std::move(events).value();
    auto result = ComputeSchedule(fragment->workload.document, fragment->events);
    if (!result.ok() || !result->feasible) {
      std::abort();
    }
    fragment->schedule = std::move(result)->schedule;
    return fragment;
  }();
  return *kFragment;
}

void PrintFigure(const std::string& bench_json) {
  Fragment& fragment = SharedFragment();
  std::cout << "==== Figure 10: the news fragment timeline ====\n"
            << TimelineView(fragment.schedule.ToTimelineRows(fragment.workload.document));
  std::cout << "\n==== playback across target profiles ====\n";
  std::cout << "profile        freezes  frozen(s)  max-late video(ms)  max-late label(ms)\n";
  std::vector<std::pair<std::string, double>> fields;
  for (const SystemProfile& profile :
       {WorkstationProfile(), PersonalSystemProfile(), PortableMonoProfile()}) {
    PlayerOptions options;
    options.profile = profile;
    auto run = Play(fragment.workload.document, fragment.schedule, &fragment.workload.store,
                    options);
    if (!run.ok()) {
      std::cerr << run.status() << "\n";
      return;
    }
    auto jitter = run->trace.JitterByChannel();
    std::cout << StrFormat("%-14s %-8zu %-10.3f %-19.2f %.2f\n", profile.name.c_str(),
                           run->trace.FreezeCount(), run->trace.TotalFreeze().ToSecondsF(),
                           jitter["video"].max_lateness_ms, jitter["label"].max_lateness_ms);
    fields.emplace_back(profile.name + "_freezes",
                        static_cast<double>(run->trace.FreezeCount()));
    fields.emplace_back(profile.name + "_frozen_s", run->trace.TotalFreeze().ToSecondsF());
    fields.emplace_back(profile.name + "_video_p99_ms", jitter["video"].p99_lateness_ms);
  }
  bench::AppendBenchJson(bench_json, "fig10_fragment", fields);
  // The freeze-frame gap the arcs force: v2 end to v3 begin.
  const Node& root = fragment.workload.document.root();
  auto v2 = root.Resolve(*NodePath::Parse("story1/video/v2"));
  auto v3 = root.Resolve(*NodePath::Parse("story1/video/v3"));
  if (v2.ok() && v3.ok()) {
    MediaTime gap = *fragment.schedule.BeginOf(**v3) - *fragment.schedule.EndOf(**v2);
    std::cout << "\nfreeze-frame gap forced by the caption->video arc: " << gap.ToSecondsF()
              << "s (video holds the last frame)\n";
  }
}

void BM_PlayFragment(benchmark::State& state) {
  Fragment& fragment = SharedFragment();
  const SystemProfile profiles[] = {WorkstationProfile(), PersonalSystemProfile(),
                                    PortableMonoProfile()};
  PlayerOptions options;
  options.profile = profiles[state.range(0)];
  for (auto _ : state) {
    benchmark::DoNotOptimize(Play(fragment.workload.document, fragment.schedule,
                                  &fragment.workload.store, options));
  }
  state.SetLabel(options.profile.name);
}
BENCHMARK(BM_PlayFragment)->Arg(0)->Arg(1)->Arg(2);

void BM_ScheduleFragment(benchmark::State& state) {
  Fragment& fragment = SharedFragment();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeSchedule(fragment.workload.document, fragment.events));
  }
}
BENCHMARK(BM_ScheduleFragment);

void BM_SeekAnalysis(benchmark::State& state) {
  Fragment& fragment = SharedFragment();
  MediaTime target = MediaTime::Seconds(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        AnalyzeSeek(fragment.workload.document, fragment.schedule, target));
  }
}
BENCHMARK(BM_SeekAnalysis)->Arg(0)->Arg(8)->Arg(14);

void BM_PlayFromSeek(benchmark::State& state) {
  Fragment& fragment = SharedFragment();
  PlayerOptions options;
  options.start_at = MediaTime::Seconds(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Play(fragment.workload.document, fragment.schedule,
                                  &fragment.workload.store, options));
  }
}
BENCHMARK(BM_PlayFromSeek);

}  // namespace
}  // namespace cmif

int main(int argc, char** argv) {
  std::string bench_json = cmif::bench::ExtractBenchJsonPath(&argc, argv);
  cmif::PrintFigure(bench_json);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
