// Figure 15 (beyond the paper) — the cost of end-to-end request tracing.
// The same loopback replay as Figure 13, but with a client-originated
// TraceContext on every request, swept over head-sampling rates 0 (context
// carried, nothing recorded), 0.01 (production setting), and 1.0 (every
// request harvests its server spans over the wire), with the flight recorder
// off and on. The headline numbers are requests/second relative to the
// untraced baseline: the unsampled path must be near-free — that is the
// contract behind the always-on tracing story — and full sampling prices the
// debugging mode.
//
// At rate 1.0 the replay also asserts the tentpole end-to-end property: each
// response carries server spans tagged with the request's own trace id.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "src/api/cmif.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/obs.h"
#include "src/obs/trace.h"

namespace cmif {
namespace {

constexpr int kDocuments = 4;
constexpr std::size_t kRequests = 128;

ServeOptions BaseOptions() {
  ServeOptions options;
  options.zipf_skew = 1.0;
  options.seed = 15;
  options.threads = 2;
  return options;
}

struct TraceReplayResult {
  double throughput_rps = 0;
  std::size_t answered = 0;
  std::size_t responses_with_spans = 0;
  std::size_t span_total = 0;
  std::size_t trace_id_mismatches = 0;
};

// Replays `trace` through one persistent connection. sample_rate < 0 means
// untraced (no context on the wire at all); otherwise each request carries a
// fresh client trace with that head-sampling rate.
TraceReplayResult Replay(api::NetClient& client, const ServeCorpus& corpus,
                         const ServeOptions& options, const std::vector<ServeRequest>& trace,
                         double sample_rate) {
  TraceReplayResult result;
  auto begin = std::chrono::steady_clock::now();
  for (const ServeRequest& request : trace) {
    api::PresentRequest wire_request;
    wire_request.document = corpus.document(request.document).name;
    wire_request.profile = options.profiles[request.profile % options.profiles.size()].name;
    if (sample_rate >= 0) {
      wire_request.trace = obs::NewTrace(sample_rate);
    }
    auto response = client.Present(wire_request);
    if (!response.ok()) {
      std::cerr << "request failed: " << response.status() << "\n";
      continue;
    }
    ++result.answered;
    if (!response->server_spans.empty()) {
      ++result.responses_with_spans;
      result.span_total += response->server_spans.size();
      for (const api::WireSpan& span : response->server_spans) {
        if (span.trace_id != wire_request.trace.trace_id) {
          ++result.trace_id_mismatches;
        }
      }
    }
    if (wire_request.trace.valid()) {
      // Drop this trace's client-side spans so an hour of bench replay
      // cannot grow the buffers (mirrors the server's harvest-on-response).
      obs::TakeTraceSpans(wire_request.trace.trace_id);
    }
  }
  auto total = std::chrono::duration<double>(std::chrono::steady_clock::now() - begin).count();
  result.throughput_rps = total > 0 ? static_cast<double>(result.answered) / total : 0;
  return result;
}

void PrintFigure(const std::string& bench_json) {
  auto corpus = api::BuildNewsCorpus(kDocuments);
  if (!corpus.ok()) {
    std::cerr << corpus.status() << "\n";
    std::abort();
  }
  ServeOptions options = BaseOptions();
  std::vector<ServeRequest> trace = api::GenerateTrace(kDocuments, kRequests, options);

  std::cout << "==== Figure 15: end-to-end tracing cost over loopback ====\n";
  std::cout << "corpus " << kDocuments << " documents, trace " << kRequests
            << " requests (warm cache), loopback TCP, sampling {untraced, 0, 0.01, 1.0}"
            << " x flight {off, on}\n\n";

  obs::ScopedEnable enable;
  ServeLoop loop(**corpus, options);
  api::NetServer server(loop);
  if (Status s = server.Start(); !s.ok()) {
    std::cerr << s << "\n";
    std::abort();
  }
  api::NetClientOptions client_options;
  client_options.port = server.port();
  api::NetClient client(client_options);

  // Warm the mapping cache so every measured request is a cache hit and the
  // numbers isolate wire + tracing cost, not compile variance.
  Replay(client, **corpus, options, trace, /*sample_rate=*/-1);
  obs::ResetSpans();

  struct Config {
    const char* label;
    const char* field;
    double sample_rate;  // < 0 = untraced
    bool flight;
  };
  const Config kConfigs[] = {
      {"untraced", "untraced_rps", -1, false},
      {"rate 0.00", "rate0_rps", 0.0, false},
      {"rate 0.01", "rate1pct_rps", 0.01, false},
      {"rate 1.00", "rate100_rps", 1.0, false},
      {"rate 0.00 + flight", "flight_rate0_rps", 0.0, true},
      {"rate 1.00 + flight", "flight_rate100_rps", 1.0, true},
  };
  std::vector<std::pair<std::string, double>> fields;
  fields.emplace_back("requests", static_cast<double>(kRequests));
  double untraced_rps = 0;
  for (const Config& config : kConfigs) {
    obs::FlightRecorder::SetEnabled(config.flight);
    TraceReplayResult result = Replay(client, **corpus, options, trace, config.sample_rate);
    obs::FlightRecorder::SetEnabled(false);
    obs::ResetSpans();
    if (result.answered != kRequests) {
      std::cerr << "replay dropped requests: " << result.answered << " of " << kRequests << "\n";
      std::abort();
    }
    if (config.sample_rate >= 1.0) {
      // The tentpole assertion: full sampling returns the server's spans,
      // every one tagged with the request's trace id.
      if (result.responses_with_spans != kRequests || result.trace_id_mismatches != 0) {
        std::cerr << "rate-1.0 replay broke span propagation: " << result.responses_with_spans
                  << "/" << kRequests << " responses carried spans, "
                  << result.trace_id_mismatches << " trace-id mismatches\n";
        std::abort();
      }
    } else if (config.sample_rate == 0.0 && result.span_total != 0) {
      std::cerr << "unsampled replay still returned " << result.span_total << " spans\n";
      std::abort();
    }
    if (config.sample_rate < 0) {
      untraced_rps = result.throughput_rps;
    }
    double relative =
        untraced_rps > 0 ? result.throughput_rps / untraced_rps * 100 : 100;
    std::cout << "  " << config.label << ": " << result.throughput_rps << " req/s ("
              << relative << "% of untraced), " << result.span_total << " spans returned\n";
    fields.emplace_back(config.field, result.throughput_rps);
  }
  server.Stop();
  std::cout << "  rate-1.0 responses all carried spans with the request's trace id\n";

  bench::AppendBenchJson(bench_json, "fig15_trace", fields);
}

}  // namespace
}  // namespace cmif

int main(int argc, char** argv) {
  std::string bench_json = cmif::bench::ExtractBenchJsonPath(&argc, argv);
  cmif::PrintFigure(bench_json);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
