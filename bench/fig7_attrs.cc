// Figure 7 — the standard attribute table. Prints the table itself and
// benchmarks the attribute machinery it governs: registry lookup, style
// expansion (including chained style definitions), and inheritance
// resolution along deep ancestor chains. Expected shape: all operations are
// sub-microsecond; inheritance cost grows linearly with chain depth.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/bench_json.h"
#include "src/attr/inherit.h"
#include "src/base/string_util.h"

namespace cmif {
namespace {

StyleDictionary ChainedStyles(int depth);

void PrintFigure(const std::string& bench_json) {
  std::cout << "==== Figure 7: the standard attribute table ====\n"
            << AttrRegistry::Standard().ToTable();

  StyleDictionary styles = ChainedStyles(64);
  double expand_ms = bench::MeanMillis(50, [&] { (void)styles.Expand("s63"); });
  bench::AppendBenchJson(bench_json, "fig7_attrs",
                         {{"style_chain_depth", 64}, {"expand_chain_ms", expand_ms}});
}

void BM_RegistryFind(benchmark::State& state) {
  const AttrRegistry& registry = AttrRegistry::Standard();
  static constexpr std::string_view kNames[] = {kAttrName, kAttrChannel, kAttrFile, kAttrClip};
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.Find(kNames[i++ % 4]));
  }
}
BENCHMARK(BM_RegistryFind);

StyleDictionary ChainedStyles(int depth) {
  StyleDictionary styles;
  AttrList base;
  base.Set("font", AttrValue::Id("serif"));
  base.Set("size", AttrValue::Number(10));
  (void)styles.Define("s0", base);
  for (int i = 1; i < depth; ++i) {
    AttrList derived;
    derived.Set(std::string(kAttrStyle), AttrValue::Id("s" + std::to_string(i - 1)));
    derived.Set("level", AttrValue::Number(i));
    (void)styles.Define("s" + std::to_string(i), derived);
  }
  return styles;
}

void BM_StyleExpansion(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  StyleDictionary styles = ChainedStyles(depth);
  std::string deepest = "s" + std::to_string(depth - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(styles.Expand(deepest));
  }
  state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(BM_StyleExpansion)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_StyleValidate(benchmark::State& state) {
  StyleDictionary styles = ChainedStyles(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(styles.Validate());
  }
}
BENCHMARK(BM_StyleValidate)->Arg(4)->Arg(16)->Arg(64);

// An inheritance chain of `depth` attribute lists; only the root sets the
// channel.
struct Chain {
  explicit Chain(int depth) : lists(static_cast<std::size_t>(depth)) {
    lists[0].Set(std::string(kAttrChannel), AttrValue::Id("rooted"));
    for (auto& list : lists) {
      pointers.push_back(&list);
    }
  }
  std::vector<AttrList> lists;
  std::vector<const AttrList*> pointers;
};

void BM_InheritResolve(benchmark::State& state) {
  Chain chain(static_cast<int>(state.range(0)));
  StyleDictionary styles;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ResolveAttribute(chain.pointers, kAttrChannel, AttrRegistry::Standard(), styles));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_InheritResolve)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

void BM_EffectiveAttrs(benchmark::State& state) {
  Chain chain(static_cast<int>(state.range(0)));
  // Give every level a couple of extra attributes to fold in.
  for (std::size_t i = 0; i < chain.lists.size(); ++i) {
    chain.lists[i].Set(StrFormat("local%zu", i), AttrValue::Number(static_cast<int>(i)));
  }
  StyleDictionary styles;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EffectiveAttrs(chain.pointers, AttrRegistry::Standard(), styles));
  }
}
BENCHMARK(BM_EffectiveAttrs)->Arg(2)->Arg(8)->Arg(32);

void BM_NonInheritedShortCircuits(benchmark::State& state) {
  // Resolving a non-inherited attribute must not walk the whole chain.
  Chain chain(128);
  StyleDictionary styles;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ResolveAttribute(chain.pointers, kAttrDuration, AttrRegistry::Standard(), styles));
  }
}
BENCHMARK(BM_NonInheritedShortCircuits);

}  // namespace
}  // namespace cmif

int main(int argc, char** argv) {
  std::string bench_json = cmif::bench::ExtractBenchJsonPath(&argc, argv);
  cmif::PrintFigure(bench_json);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
