// Figure 4 — "The Evening News as a document (4a) and as a CMIF template
// (4b)". Regenerates the worked example: builds the broadcast, prints the
// template structure and the channel-by-channel presentation the paper
// sketches, then benchmarks each pipeline phase on the document.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/bench_json.h"
#include "src/doc/stats.h"
#include "src/doc/validate.h"
#include "src/fmt/tree_view.h"
#include "src/news/evening_news.h"
#include "src/api/cmif.h"

namespace cmif {
namespace {

NewsWorkload& SharedNews() {
  static NewsWorkload* const kWorkload = [] {
    auto workload = BuildEveningNews(NewsOptions{});
    if (!workload.ok()) {
      std::cerr << workload.status() << "\n";
      std::abort();
    }
    return new NewsWorkload(std::move(workload).value());
  }();
  return *kWorkload;
}

void PrintFigure(const std::string& bench_json) {
  NewsWorkload& workload = SharedNews();
  std::cout << "==== Figure 4b: the CMIF template ====\n"
            << ConventionalTreeView(workload.document.root());
  auto events = CollectEvents(workload.document, &workload.store);
  if (!events.ok()) {
    std::cerr << events.status() << "\n";
    return;
  }
  auto result = ComputeSchedule(workload.document, *events);
  if (!result.ok() || !result->feasible) {
    std::cerr << "scheduling failed\n";
    return;
  }
  std::cout << "\n==== Figure 4a: the five-channel presentation ====\n"
            << TimelineView(result->schedule.ToTimelineRows(workload.document))
            << "\n==== exact rows ====\n"
            << TimelineTable(result->schedule.ToTimelineRows(workload.document));
  std::cout << StatsToString(ComputeStats(workload.document, &workload.store));

  double schedule_ms =
      bench::MeanMillis(20, [&] { (void)ComputeSchedule(workload.document, *events); });
  bench::AppendBenchJson(bench_json, "fig4_news",
                         {{"nodes", static_cast<double>(workload.document.root().SubtreeSize())},
                          {"events", static_cast<double>(events->size())},
                          {"schedule_ms", schedule_ms}});
}

void BM_BuildNews(benchmark::State& state) {
  NewsOptions options;
  options.stories = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto workload = BuildEveningNews(options);
    benchmark::DoNotOptimize(workload);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BuildNews)->Arg(1)->Arg(3)->Arg(10)->Arg(30);

void BM_ValidateNews(benchmark::State& state) {
  NewsWorkload& workload = SharedNews();
  for (auto _ : state) {
    ValidationReport report = ValidateDocument(workload.document, &workload.store);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_ValidateNews);

void BM_ScheduleNews(benchmark::State& state) {
  NewsOptions options;
  options.stories = static_cast<int>(state.range(0));
  auto workload = BuildEveningNews(options);
  auto events = CollectEvents(workload->document, &workload->store);
  for (auto _ : state) {
    auto result = ComputeSchedule(workload->document, *events);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(events->size()));
}
BENCHMARK(BM_ScheduleNews)->Arg(1)->Arg(3)->Arg(10)->Arg(30);

void BM_PlayNews(benchmark::State& state) {
  NewsWorkload& workload = SharedNews();
  auto events = CollectEvents(workload.document, &workload.store);
  auto result = ComputeSchedule(workload.document, *events);
  for (auto _ : state) {
    auto run = Play(workload.document, result->schedule, &workload.store);
    benchmark::DoNotOptimize(run);
  }
}
BENCHMARK(BM_PlayNews);

}  // namespace
}  // namespace cmif

int main(int argc, char** argv) {
  std::string bench_json = cmif::bench::ExtractBenchJsonPath(&argc, argv);
  cmif::PrintFigure(bench_json);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
