// Figure 8 — "Synchronization delay parameters": the [min_delay, max_delay]
// window around a reference time. Sweeps the window width on the Evening
// News under injected device-capability constraints and reports feasibility
// — the paper's point that delay tolerances are what make a document
// transportable across implementation environments. Expected shape: hard
// (0,0) windows become infeasible once device setup times exceed them;
// widening max_delay restores feasibility; solver time is insensitive to the
// window width.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/bench_json.h"
#include "src/base/string_util.h"
#include "src/news/evening_news.h"
#include "src/present/filter.h"
#include "src/sched/conflict.h"

namespace cmif {
namespace {

// Rewrites every must-arc's window to [0, max_ms] (max_ms < 0 = unbounded).
NewsWorkload NewsWithWindows(std::int64_t max_ms) {
  auto workload = BuildEveningNews(NewsOptions{});
  if (!workload.ok()) {
    std::cerr << workload.status() << "\n";
    std::abort();
  }
  workload->document.root().VisitMutable([max_ms](Node& node) {
    for (SyncArc& arc : node.arcs()) {
      if (arc.rigor == ArcRigor::kMust && arc.max_delay.has_value()) {
        arc.min_delay = MediaTime();
        arc.max_delay = max_ms < 0 ? std::optional<MediaTime>() : MediaTime::Millis(max_ms);
      }
    }
  });
  return std::move(workload).value();
}

// Solves under a profile's capability constraints; returns (feasible,
// dropped-may-arcs).
std::pair<bool, std::size_t> SolveUnder(NewsWorkload& workload, const SystemProfile& profile) {
  auto events = CollectEvents(workload.document, &workload.store);
  if (!events.ok()) {
    std::abort();
  }
  auto graph = TimeGraph::Build(workload.document, *events);
  if (!graph.ok()) {
    std::abort();
  }
  (void)InjectCapabilityConstraints(*graph, workload.document, *events, profile);
  auto result = SolveSchedule(*graph, *events);
  if (!result.ok()) {
    std::abort();
  }
  return {result->feasible, result->dropped_arcs.size()};
}

void PrintFigure(const std::string& bench_json) {
  std::cout << "==== Figure 8: delay-window sweep (must-arc max_delay) ====\n";
  std::cout << "profile       window(ms)  feasible  dropped-may-arcs\n";
  int feasible_count = 0;
  int total_configs = 0;
  std::size_t dropped_total = 0;
  for (const SystemProfile& profile :
       {WorkstationProfile(), PersonalSystemProfile(), PortableMonoProfile()}) {
    for (std::int64_t max_ms : {0L, 50L, 250L, 1000L, -1L}) {
      NewsWorkload workload = NewsWithWindows(max_ms);
      auto [feasible, dropped] = SolveUnder(workload, profile);
      std::cout << StrFormat("%-13s %-11s %-9s %zu\n", profile.name.c_str(),
                             max_ms < 0 ? "inf" : std::to_string(max_ms).c_str(),
                             feasible ? "yes" : "NO", dropped);
      ++total_configs;
      feasible_count += feasible ? 1 : 0;
      dropped_total += dropped;
    }
  }
  bench::AppendBenchJson(bench_json, "fig8_sync_window",
                         {{"configs", static_cast<double>(total_configs)},
                          {"feasible", static_cast<double>(feasible_count)},
                          {"dropped_may_arcs_total", static_cast<double>(dropped_total)}});
}

void BM_SolveWithWindow(benchmark::State& state) {
  NewsWorkload workload = NewsWithWindows(state.range(0));
  SystemProfile profile = PersonalSystemProfile();
  auto events = CollectEvents(workload.document, &workload.store);
  for (auto _ : state) {
    auto graph = TimeGraph::Build(workload.document, *events);
    (void)InjectCapabilityConstraints(*graph, workload.document, *events, profile);
    benchmark::DoNotOptimize(SolveSchedule(*graph, *events));
  }
  state.SetLabel(StrFormat("window=%lldms", static_cast<long long>(state.range(0))));
}
BENCHMARK(BM_SolveWithWindow)->Arg(0)->Arg(50)->Arg(250)->Arg(1000);

void BM_RelaxationLoop(benchmark::State& state) {
  // Hard windows on the portable profile force may-arc relaxation rounds.
  SystemProfile profile = PortableMonoProfile();
  for (auto _ : state) {
    state.PauseTiming();
    NewsWorkload workload = NewsWithWindows(0);
    auto events = CollectEvents(workload.document, &workload.store);
    auto graph = TimeGraph::Build(workload.document, *events);
    (void)InjectCapabilityConstraints(*graph, workload.document, *events, profile);
    state.ResumeTiming();
    benchmark::DoNotOptimize(SolveSchedule(*graph, *events));
  }
}
BENCHMARK(BM_RelaxationLoop);

void BM_InjectCapability(benchmark::State& state) {
  auto workload = BuildEveningNews(NewsOptions{});
  auto events = CollectEvents(workload->document, &workload->store);
  SystemProfile profile = PortableMonoProfile();
  for (auto _ : state) {
    auto graph = TimeGraph::Build(workload->document, *events);
    benchmark::DoNotOptimize(
        InjectCapabilityConstraints(*graph, workload->document, *events, profile));
  }
}
BENCHMARK(BM_InjectCapability);

}  // namespace
}  // namespace cmif

int main(int argc, char** argv) {
  std::string bench_json = cmif::bench::ExtractBenchJsonPath(&argc, argv);
  cmif::PrintFigure(bench_json);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
