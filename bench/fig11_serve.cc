// Figure 11 (beyond the paper) — the concurrent document-serving layer. A
// corpus of Evening News variants is served from one shared ddbms instance
// by a thread pool of pipeline workers under a Zipf(1.0) request trace, the
// multi-client shape of Feustel & Schmidt's streaming server. Two contrasts:
// thread scaling on the cold-cache path (every request compiles), and the
// cold -> warm speedup from the compiled-presentation cache (the
// Madeus/LimSee export-architecture argument). Thread scaling is bounded by
// the cores of the machine — the emitted hw_threads field records that
// context next to the numbers.
#include <benchmark/benchmark.h>

#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "src/base/thread_pool.h"
#include "src/api/cmif.h"

namespace cmif {
namespace {

constexpr int kDocuments = 8;
constexpr std::size_t kRequests = 256;

ServeOptions BaseOptions() {
  ServeOptions options;
  options.zipf_skew = 1.0;
  options.seed = 11;
  return options;
}

// Best-of-N throughput (requests/s) for one configuration. Cold = cache
// disabled, every request runs the compile pipeline; warm = cache enabled
// and primed with one full pass, every request hits.
double BestThroughput(ServeCorpus& corpus, const std::vector<ServeRequest>& trace, int threads,
                      bool warm, int repeats = 3) {
  double best = 0;
  for (int i = 0; i < repeats; ++i) {
    ServeOptions options = BaseOptions();
    options.threads = threads;
    options.use_cache = warm;
    ServeLoop loop(corpus, options);
    if (warm) {
      auto prime = loop.Run(trace);
      if (!prime.ok()) {
        std::cerr << prime.status() << "\n";
        std::abort();
      }
    }
    auto stats = loop.Run(trace);
    if (!stats.ok()) {
      std::cerr << stats.status() << "\n";
      std::abort();
    }
    if (warm && stats->cache_misses != 0) {
      std::cerr << "warm run unexpectedly missed\n";
      std::abort();
    }
    best = std::max(best, stats->throughput_rps);
  }
  return best;
}

void PrintFigure(const std::string& bench_json) {
  auto corpus = BuildNewsCorpus(kDocuments);
  if (!corpus.ok()) {
    std::cerr << corpus.status() << "\n";
    std::abort();
  }
  ServeOptions trace_options = BaseOptions();
  std::vector<ServeRequest> trace = GenerateTrace(kDocuments, kRequests, trace_options);

  std::cout << "==== Figure 11: concurrent serving, thread scaling and mapping cache ====\n";
  std::cout << "corpus " << kDocuments << " documents, trace " << kRequests
            << " requests, Zipf(1.0), hardware threads " << ThreadPool::HardwareThreads() << "\n\n";

  std::vector<std::pair<std::string, double>> fields;
  fields.emplace_back("hw_threads", ThreadPool::HardwareThreads());
  double cold_1 = 0;
  double warm_1 = 0;
  for (int threads : {1, 2, 4, 8}) {
    double cold = BestThroughput(**corpus, trace, threads, /*warm=*/false);
    double warm = BestThroughput(**corpus, trace, threads, /*warm=*/true);
    if (threads == 1) {
      cold_1 = cold;
      warm_1 = warm;
    }
    std::cout << "  threads " << threads << ":  cold " << cold << " req/s";
    if (cold_1 > 0) {
      std::cout << " (x" << cold / cold_1 << ")";
    }
    std::cout << "   warm " << warm << " req/s (cold->warm x" << (cold > 0 ? warm / cold : 0)
              << ")\n";
    std::string suffix = std::to_string(threads);
    fields.emplace_back("cold_rps_" + suffix, cold);
    fields.emplace_back("warm_rps_" + suffix, warm);
  }
  double cold_8 = fields.back().second;  // placeholder, replaced below
  for (const auto& [key, value] : fields) {
    if (key == "cold_rps_8") {
      cold_8 = value;
    }
  }
  double scaling = cold_1 > 0 ? cold_8 / cold_1 : 0;
  double cache_speedup = cold_1 > 0 ? warm_1 / cold_1 : 0;
  fields.emplace_back("cold_scaling_8v1", scaling);
  fields.emplace_back("warm_over_cold_1t", cache_speedup);
  std::cout << "\n  cold-path scaling 8v1: x" << scaling << " (hardware threads "
            << ThreadPool::HardwareThreads() << ")\n"
            << "  cache speedup (1 thread, cold->warm): x" << cache_speedup << "\n";

  bench::AppendBenchJson(bench_json, "fig11_serve", fields);
}

void BM_ServeColdCompile(benchmark::State& state) {
  auto corpus = BuildNewsCorpus(2);
  if (!corpus.ok()) {
    std::abort();
  }
  ServeOptions options = BaseOptions();
  options.use_cache = false;
  ServeLoop loop(**corpus, options);
  ServeRequest request;
  for (auto _ : state) {
    benchmark::DoNotOptimize(loop.Handle(request));
  }
}
BENCHMARK(BM_ServeColdCompile);

void BM_ServeWarmHit(benchmark::State& state) {
  auto corpus = BuildNewsCorpus(2);
  if (!corpus.ok()) {
    std::abort();
  }
  ServeLoop loop(**corpus, BaseOptions());
  ServeRequest request;
  if (!loop.Handle(request).ok()) {
    std::abort();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(loop.Handle(request));
  }
}
BENCHMARK(BM_ServeWarmHit);

void BM_SharedStoreReadContention(benchmark::State& state) {
  static ServeCorpus* const kCorpus = [] {
    auto corpus = BuildNewsCorpus(2);
    if (!corpus.ok()) {
      std::abort();
    }
    return corpus->release();
  }();
  Query query = Query::Eq("medium", AttrValue::Id("video"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(kCorpus->store().ExecuteCopy(query));
  }
}
BENCHMARK(BM_SharedStoreReadContention)->Threads(1)->Threads(4);

}  // namespace
}  // namespace cmif

int main(int argc, char** argv) {
  std::string bench_json = cmif::bench::ExtractBenchJsonPath(&argc, argv);
  cmif::PrintFigure(bench_json);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
