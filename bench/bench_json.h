// Shared --bench-json support for the fig* benchmark mains. Each main strips
// the flag before benchmark::Initialize sees it and, when a path was given,
// appends one machine-readable JSON line per run:
//   {"bench":"fig1_pipeline","fields":{"total_ms":12.3,...}}
// tools/run_benches.sh merges these lines into BENCH_PR1.json.
#ifndef BENCH_BENCH_JSON_H_
#define BENCH_BENCH_JSON_H_

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/json.h"

namespace cmif {
namespace bench {

// Removes "--bench-json <path>" from argv and returns the path ("" when the
// flag is absent) so google-benchmark never sees the foreign flag.
inline std::string ExtractBenchJsonPath(int* argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::string(argv[i]) == "--bench-json" && i + 1 < *argc &&
        std::string(argv[i + 1]).rfind("--", 0) != 0) {
      path = argv[++i];
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  return path;
}

// Appends one {"bench":name,"fields":{...}} line; no-op when path is empty.
inline void AppendBenchJson(const std::string& path, const std::string& name,
                            const std::vector<std::pair<std::string, double>>& fields) {
  if (path.empty()) {
    return;
  }
  std::ofstream file(path, std::ios::app);
  if (!file) {
    std::cerr << "bench-json: cannot append to '" << path << "'\n";
    return;
  }
  file << "{\"bench\":" << obs::JsonQuote(name) << ",\"fields\":{";
  bool first = true;
  for (const auto& [key, value] : fields) {
    if (!first) {
      file << ",";
    }
    first = false;
    file << obs::JsonQuote(key) << ":" << obs::JsonNumber(value);
  }
  file << "}}\n";
}

// Mean wall-clock milliseconds of `fn` over `runs` calls (one warmup first).
template <typename Fn>
double MeanMillis(int runs, Fn&& fn) {
  fn();
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < runs; ++i) {
    fn();
  }
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count() / runs;
}

// Minimum of `batches` independent MeanMillis estimates — robust against
// transient interference when two numbers from separate runs are compared.
template <typename Fn>
double MinOfMeansMillis(int batches, int runs, Fn&& fn) {
  double best = MeanMillis(runs, fn);
  for (int i = 1; i < batches; ++i) {
    best = std::min(best, MeanMillis(runs, fn));
  }
  return best;
}

}  // namespace bench
}  // namespace cmif

#endif  // BENCH_BENCH_JSON_H_
