// Figure 1 — the CWI/Multimedia Pipeline. Times every stage separately and
// contrasts descriptor-only manipulation against media-touching filter
// application — the paper's section-6 claim that "much of the work
// associated with manipulating a document can be based on relatively small
// clusters of data (the attributes) rather than the often massive amounts of
// media-based data itself". Expected shape: filter-apply dominates by orders
// of magnitude; every attribute-level stage is microseconds-to-milliseconds.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>
#include <limits>
#include <vector>

#include "bench/bench_json.h"
#include "src/news/evening_news.h"
#include "src/obs/obs.h"
#include "src/api/cmif.h"

namespace cmif {
namespace {

NewsWorkload& MaterializedNews() {
  static NewsWorkload* const kWorkload = [] {
    NewsOptions options;
    options.stories = 2;
    options.materialize_media = true;
    auto workload = BuildEveningNews(options);
    if (!workload.ok()) {
      std::cerr << workload.status() << "\n";
      std::abort();
    }
    return new NewsWorkload(std::move(workload).value());
  }();
  return *kWorkload;
}

void PrintFigure(const std::string& bench_json) {
  NewsWorkload& workload = MaterializedNews();
  std::cout << "==== Figure 1: pipeline stages, descriptor-only vs with-data ====\n";
  double descriptor_only_ms = 0;
  double with_data_ms = 0;
  for (bool apply : {false, true}) {
    PipelineOptions options;
    options.profile = PersonalSystemProfile();
    options.apply_filters = apply;
    auto report = api::Play(workload.document, workload.store, workload.blocks, options);
    if (!report.ok()) {
      std::cerr << report.status() << "\n";
      return;
    }
    (apply ? with_data_ms : descriptor_only_ms) = report->TotalMillis();
    std::cout << "\n-- mode: " << (apply ? "with-data (filters applied)" : "descriptor-only")
              << " --\n"
              << report->Summary();
    if (apply) {
      std::cout << report->filter.ToString();
    }
  }

  // The instrumentation overhead contract: the same binary, the same
  // descriptor-only pipeline, with obs runtime-disabled (the default; every
  // probe is one relaxed atomic load) versus runtime-enabled (spans and
  // metrics recorded). tools/run_benches.sh additionally runs this figure
  // from a -DCMIF_OBS=OFF build to compare the disabled path against probes
  // compiled out entirely — that delta is the "disabled overhead" claim.
  PipelineOptions options;
  options.profile = PersonalSystemProfile();
  options.apply_filters = false;
  auto run_once = [&] {
    auto report = api::Play(workload.document, workload.store, workload.blocks, options);
    benchmark::DoNotOptimize(report);
  };
  // Interleave many short disabled/enabled batches rather than timing one
  // full window after the other: the overhead is a small difference of small
  // numbers, and scheduler interference on a shared box only ever ADDS time.
  // Against strictly additive noise the min over many small windows is the
  // consistent estimator of the true per-run time — a steal burst inflates
  // the windows it lands in and the min discards them — so both _ms fields
  // and the overhead ratio come from the per-side minima.
  constexpr int kBatches = 40;
  constexpr int kRuns = 16;
  double obs_disabled_ms = std::numeric_limits<double>::infinity();
  double obs_enabled_ms = std::numeric_limits<double>::infinity();
  for (int batch = 0; batch < kBatches; ++batch) {
    obs_disabled_ms = std::min(obs_disabled_ms, bench::MeanMillis(kRuns, run_once));
    {
      obs::ScopedEnable enable;
      obs_enabled_ms = std::min(obs_enabled_ms, bench::MeanMillis(kRuns, run_once));
    }
    obs::ResetAll();
  }
  double obs_enabled_overhead_pct =
      obs_disabled_ms > 0 ? (obs_enabled_ms - obs_disabled_ms) / obs_disabled_ms * 100 : 0;
  std::cout << "\n-- instrumentation overhead (descriptor-only pipeline) --\n"
            << "  obs disabled  " << obs_disabled_ms << " ms\n"
            << "  obs enabled   " << obs_enabled_ms << " ms  (" << obs_enabled_overhead_pct
            << "%)\n";

  bench::AppendBenchJson(bench_json, "fig1_pipeline",
                         {{"descriptor_only_ms", descriptor_only_ms},
                          {"with_data_ms", with_data_ms},
                          {"obs_disabled_ms", obs_disabled_ms},
                          {"obs_enabled_ms", obs_enabled_ms},
                          {"obs_enabled_overhead_pct", obs_enabled_overhead_pct}});
}

void BM_Stage_Validate(benchmark::State& state) {
  NewsWorkload& workload = MaterializedNews();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ValidateDocument(workload.document, &workload.store));
  }
}
BENCHMARK(BM_Stage_Validate);

void BM_Stage_PresentationMap(benchmark::State& state) {
  NewsWorkload& workload = MaterializedNews();
  VirtualEnvironment env = VirtualEnvironment::NewsLayout(640, 480);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PresentationMap::AutoMap(workload.document.channels(), env));
  }
}
BENCHMARK(BM_Stage_PresentationMap);

void BM_Stage_FilterPlan(benchmark::State& state) {
  // Descriptor-only: reads attributes, never media bytes.
  NewsWorkload& workload = MaterializedNews();
  SystemProfile profile = PersonalSystemProfile();
  for (auto _ : state) {
    benchmark::DoNotOptimize(PlanDocumentFilter(workload.document, workload.store, profile));
  }
}
BENCHMARK(BM_Stage_FilterPlan);

void BM_Stage_FilterApply(benchmark::State& state) {
  // Media-touching: decodes, reduces and re-stores every payload.
  NewsWorkload& workload = MaterializedNews();
  SystemProfile profile = PersonalSystemProfile();
  auto plan = PlanDocumentFilter(workload.document, workload.store, profile);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ApplyDocumentFilter(workload.store, workload.blocks, *plan));
  }
}
BENCHMARK(BM_Stage_FilterApply);

void BM_Stage_Schedule(benchmark::State& state) {
  NewsWorkload& workload = MaterializedNews();
  auto events = CollectEvents(workload.document, &workload.store);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeSchedule(workload.document, *events));
  }
}
BENCHMARK(BM_Stage_Schedule);

void BM_Stage_Play(benchmark::State& state) {
  NewsWorkload& workload = MaterializedNews();
  auto events = CollectEvents(workload.document, &workload.store);
  auto result = ComputeSchedule(workload.document, *events);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Play(workload.document, result->schedule, &workload.store));
  }
}
BENCHMARK(BM_Stage_Play);

void BM_EndToEnd_DescriptorOnly(benchmark::State& state) {
  NewsWorkload& workload = MaterializedNews();
  PipelineOptions options;
  options.profile = PersonalSystemProfile();
  options.apply_filters = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        api::Play(workload.document, workload.store, workload.blocks, options));
  }
}
BENCHMARK(BM_EndToEnd_DescriptorOnly);

void BM_EndToEnd_WithData(benchmark::State& state) {
  NewsWorkload& workload = MaterializedNews();
  PipelineOptions options;
  options.profile = PersonalSystemProfile();
  options.apply_filters = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        api::Play(workload.document, workload.store, workload.blocks, options));
  }
}
BENCHMARK(BM_EndToEnd_WithData);

}  // namespace
}  // namespace cmif

int main(int argc, char** argv) {
  std::string bench_json = cmif::bench::ExtractBenchJsonPath(&argc, argv);
  cmif::PrintFigure(bench_json);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
