// Figure 13 (beyond the paper) — networked presentation delivery. The CMIF
// document server of the paper's transportable-document story: a NetServer
// exposes the concurrent ServeLoop over the length-prefixed, CRC-framed wire
// protocol on a loopback socket, and a NetClient replays the Figure-11 Zipf
// trace against it. Three sections: correctness (every wire response is
// byte-identical to an in-process compile of the same document under the
// same profile, checked by hash), loopback throughput with latency
// percentiles cold vs warm (how much the socket + serialization costs over
// the in-process path), and a chaos replay (faults injected at the net.* and
// serve-side sites; every request must still be answered).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_json.h"
#include "src/api/cmif.h"
#include "src/base/string_util.h"
#include "src/fault/fault.h"

namespace cmif {
namespace {

constexpr int kDocuments = 8;
constexpr std::size_t kRequests = 256;

ServeOptions BaseOptions() {
  ServeOptions options;
  options.zipf_skew = 1.0;
  options.seed = 13;
  options.threads = 2;
  return options;
}

// The in-process ground truth: hash of the canonical serialization of a
// direct (no socket, no cache) compile per (document, profile).
StatusOr<std::map<std::pair<std::string, std::string>, std::uint64_t>> ExpectedHashes(
    ServeCorpus& corpus, const ServeOptions& options) {
  std::map<std::pair<std::string, std::string>, std::uint64_t> hashes;
  for (std::size_t d = 0; d < corpus.size(); ++d) {
    const ServeDocument& doc = corpus.document(d);
    for (const SystemProfile& profile : options.profiles) {
      PipelineOptions pipeline_options;
      pipeline_options.profile = profile;
      auto report = corpus.store().WithRead([&](const DescriptorStore& store) {
        return corpus.blocks().WithRead([&](const BlockStore& blocks) {
          return api::Compile(doc.document, store, blocks, pipeline_options);
        });
      });
      if (!report.ok()) {
        return report.status();
      }
      CompiledPresentation compiled;
      compiled.map = report->presentation_map;
      compiled.filter = report->filter;
      compiled.schedule = report->schedule;
      hashes[{doc.name, profile.name}] = api::PresentationHash(compiled);
    }
  }
  return hashes;
}

struct ReplayResult {
  double throughput_rps = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  std::size_t answered = 0;
  std::size_t degraded = 0;
  std::size_t mismatches = 0;
};

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) {
    return 0;
  }
  std::size_t index = static_cast<std::size_t>(p * (sorted.size() - 1));
  return sorted[index];
}

// Replays `trace` through one persistent client connection; checks each
// response body against its own hash and (when ground truth is supplied)
// against the in-process compile.
ReplayResult Replay(
    api::NetClient& client, const ServeCorpus& corpus, const ServeOptions& options,
    const std::vector<ServeRequest>& trace,
    const std::map<std::pair<std::string, std::string>, std::uint64_t>* expected) {
  ReplayResult result;
  std::vector<double> latencies_ms;
  latencies_ms.reserve(trace.size());
  auto begin = std::chrono::steady_clock::now();
  for (const ServeRequest& request : trace) {
    api::PresentRequest wire_request;
    wire_request.document = corpus.document(request.document).name;
    wire_request.profile = options.profiles[request.profile % options.profiles.size()].name;
    auto start = std::chrono::steady_clock::now();
    auto response = client.Present(wire_request);
    auto end = std::chrono::steady_clock::now();
    if (!response.ok()) {
      std::cerr << "request failed: " << response.status() << "\n";
      continue;
    }
    latencies_ms.push_back(std::chrono::duration<double, std::milli>(end - start).count());
    ++result.answered;
    if (response->outcome == ServeOutcome::kDegraded) {
      ++result.degraded;
    }
    if (Fnv1a64(response->presentation) != response->presentation_hash) {
      ++result.mismatches;
    } else if (expected != nullptr && response->outcome != ServeOutcome::kDegraded) {
      auto it = expected->find({wire_request.document, wire_request.profile});
      if (it == expected->end() || it->second != response->presentation_hash) {
        ++result.mismatches;
      }
    }
  }
  auto total = std::chrono::duration<double>(std::chrono::steady_clock::now() - begin).count();
  result.throughput_rps = total > 0 ? static_cast<double>(result.answered) / total : 0;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  result.p50_ms = Percentile(latencies_ms, 0.50);
  result.p95_ms = Percentile(latencies_ms, 0.95);
  result.p99_ms = Percentile(latencies_ms, 0.99);
  return result;
}

void PrintFigure(const std::string& bench_json) {
  auto corpus = api::BuildNewsCorpus(kDocuments);
  if (!corpus.ok()) {
    std::cerr << corpus.status() << "\n";
    std::abort();
  }
  ServeOptions options = BaseOptions();
  std::vector<ServeRequest> trace = api::GenerateTrace(kDocuments, kRequests, options);
  auto expected = ExpectedHashes(**corpus, options);
  if (!expected.ok()) {
    std::cerr << expected.status() << "\n";
    std::abort();
  }

  std::cout << "==== Figure 13: networked delivery over the CMIF wire protocol ====\n";
  std::cout << "corpus " << kDocuments << " documents, trace " << kRequests
            << " requests, Zipf(1.0), loopback TCP, 2 server workers\n\n";

  ServeLoop loop(**corpus, options);
  api::NetServer server(loop);
  if (Status s = server.Start(); !s.ok()) {
    std::cerr << s << "\n";
    std::abort();
  }
  api::NetClientOptions client_options;
  client_options.port = server.port();
  api::NetClient client(client_options);

  // Cold: the server loop's mapping cache is empty, every request compiles.
  ReplayResult cold = Replay(client, **corpus, options, trace, &*expected);
  // Warm: same trace again — every compile is a cache hit; what is left is
  // socket + framing + serialization.
  ReplayResult warm = Replay(client, **corpus, options, trace, &*expected);
  server.Stop();
  if (cold.answered != kRequests || warm.answered != kRequests) {
    std::cerr << "loopback replay dropped requests: cold " << cold.answered << ", warm "
              << warm.answered << " of " << kRequests << "\n";
    std::abort();
  }
  if (cold.mismatches != 0 || warm.mismatches != 0) {
    std::cerr << "wire responses diverged from in-process compile: cold " << cold.mismatches
              << ", warm " << warm.mismatches << "\n";
    std::abort();
  }

  std::cout << "  cold: " << cold.throughput_rps << " req/s, p50 " << cold.p50_ms << " ms, p95 "
            << cold.p95_ms << " ms, p99 " << cold.p99_ms << " ms\n";
  std::cout << "  warm: " << warm.throughput_rps << " req/s, p50 " << warm.p50_ms << " ms, p95 "
            << warm.p95_ms << " ms, p99 " << warm.p99_ms << " ms\n";
  std::cout << "  all " << kRequests << " responses byte-identical to in-process compile "
            << "(hash-checked)\n";

  // Chaos replay over the socket: level-3 faults hit both the serve-side
  // compile sites and the net.* sites (accept drops, read/write failures,
  // frame corruption). The client's reconnect-and-resend ladder plus the
  // server's recovery ladder must still answer every request.
  std::size_t chaos_answered = 0;
  std::size_t chaos_degraded = 0;
  std::uint64_t chaos_reconnects = 0;
  {
    ServeOptions chaos_options = BaseOptions();
    chaos_options.enable_degraded = true;
    ServeLoop chaos_loop(**corpus, chaos_options);
    api::NetServer chaos_server(chaos_loop);
    if (Status s = chaos_server.Start(); !s.ok()) {
      std::cerr << s << "\n";
      std::abort();
    }
    fault::ResetCounts();
    fault::ScopedPlan chaos(fault::StandardChaosPlan(3));
    api::NetClientOptions chaos_client_options;
    chaos_client_options.port = chaos_server.port();
    chaos_client_options.retry.max_attempts = 8;
    api::NetClient chaos_client(chaos_client_options);
    ReplayResult replay = Replay(chaos_client, **corpus, chaos_options, trace, nullptr);
    chaos_answered = replay.answered;
    chaos_degraded = replay.degraded;
    chaos_reconnects = chaos_client.reconnects();
    chaos_server.Stop();
  }
  std::cout << "\n  chaos (level 3): " << chaos_answered << "/" << kRequests << " answered, "
            << chaos_degraded << " degraded, " << chaos_reconnects << " reconnects\n";
  if (chaos_answered != kRequests) {
    std::cerr << "chaos replay lost requests\n";
    std::abort();
  }

  bench::AppendBenchJson(
      bench_json, "fig13_net",
      {{"requests", static_cast<double>(kRequests)},
       {"cold_rps", cold.throughput_rps},
       {"cold_p50_ms", cold.p50_ms},
       {"cold_p95_ms", cold.p95_ms},
       {"cold_p99_ms", cold.p99_ms},
       {"warm_rps", warm.throughput_rps},
       {"warm_p50_ms", warm.p50_ms},
       {"warm_p95_ms", warm.p95_ms},
       {"warm_p99_ms", warm.p99_ms},
       {"hash_mismatches", static_cast<double>(cold.mismatches + warm.mismatches)},
       {"chaos_answered", static_cast<double>(chaos_answered)},
       {"chaos_degraded", static_cast<double>(chaos_degraded)},
       {"chaos_reconnects", static_cast<double>(chaos_reconnects)}});
}

void BM_LoopbackWarmRequest(benchmark::State& state) {
  static ServeCorpus* const kCorpus = [] {
    auto corpus = api::BuildNewsCorpus(2);
    if (!corpus.ok()) {
      std::abort();
    }
    return corpus->release();
  }();
  static ServeLoop* const kLoop = new ServeLoop(*kCorpus, BaseOptions());
  static api::NetServer* const kServer = [] {
    auto* server = new api::NetServer(*kLoop);
    if (!server->Start().ok()) {
      std::abort();
    }
    return server;
  }();
  api::NetClientOptions client_options;
  client_options.port = kServer->port();
  api::NetClient client(client_options);
  api::PresentRequest request;
  request.document = kCorpus->document(0).name;
  if (!client.Present(request).ok()) {
    std::abort();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.Present(request));
  }
}
BENCHMARK(BM_LoopbackWarmRequest);

void BM_LoopbackPing(benchmark::State& state) {
  static ServeCorpus* const kCorpus = [] {
    auto corpus = api::BuildNewsCorpus(1);
    if (!corpus.ok()) {
      std::abort();
    }
    return corpus->release();
  }();
  static ServeLoop* const kLoop = new ServeLoop(*kCorpus, BaseOptions());
  static api::NetServer* const kServer = [] {
    auto* server = new api::NetServer(*kLoop);
    if (!server->Start().ok()) {
      std::abort();
    }
    return server;
  }();
  api::NetClientOptions client_options;
  client_options.port = kServer->port();
  api::NetClient client(client_options);
  for (auto _ : state) {
    if (!client.Ping().ok()) {
      std::abort();
    }
  }
}
BENCHMARK(BM_LoopbackPing);

}  // namespace
}  // namespace cmif

int main(int argc, char** argv) {
  std::string bench_json = cmif::bench::ExtractBenchJsonPath(&argc, argv);
  cmif::PrintFigure(bench_json);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
